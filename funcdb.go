// Package funcdb is a functional (applicative) database engine: the public
// API of this repository's reproduction of Keller & Lindstrom,
// "Approaching Distributed Database Implementations through Functional
// Programming Concepts", Proc. 5th ICDCS, 1985.
//
// A Store is a stream of immutable database versions. Every transaction is
// a function from one version to the next; updates share all untouched
// structure with their predecessor, old versions remain readable forever
// (time travel), and concurrency arises implicitly: submitted transactions
// become futures over per-relation lenient cells, so independent
// transactions run in parallel and conflicting ones pipeline — with no
// user-visible locks.
//
//	store := funcdb.Open(funcdb.WithRelations("parts"))
//	resp, err := store.Exec(`insert (1, "widget", 250) into parts`)
//	future := store.ExecAsync(`find 1 in parts`)
//	...
//	resp = future.Force()
//
// For the distributed form (the paper's primary-site model over a
// simulated network), see OpenCluster.
package funcdb

import (
	"fmt"
	"sync"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/netsim"
	"funcdb/internal/primarysite"
	"funcdb/internal/query"
	"funcdb/internal/relation"
	"funcdb/internal/topo"
	"funcdb/internal/value"
)

// Re-exported core types. The internal packages carry the implementation;
// these aliases are the supported public surface.
type (
	// Transaction is a function from a database version to a response and
	// a successor version, plus its origin tag and read/write sets.
	Transaction = core.Transaction
	// Response is a tagged transaction result.
	Response = core.Response
	// Database is one immutable database version.
	Database = database.Database
	// History retains the version stream (complete archive or bounded).
	History = database.History
	// Item is a scalar data item.
	Item = value.Item
	// Tuple is an immutable tuple of items keyed by its first field.
	Tuple = value.Tuple
	// Rep selects a relation representation.
	Rep = relation.Rep
	// Future is an unresolved response: Force blocks until available.
	Future = lenient.Cell[core.Response]
	// SiteID names a site in a cluster.
	SiteID = netsim.SiteID
)

// Relation representations.
const (
	RepList  = relation.RepList
	RepAVL   = relation.RepAVL
	Rep23    = relation.Rep23
	RepPaged = relation.RepPaged
)

// Int builds an integer item.
func Int(v int64) Item { return value.Int(v) }

// Str builds a string item.
func Str(s string) Item { return value.Str(s) }

// NewTuple builds a tuple.
func NewTuple(items ...Item) Tuple { return value.NewTuple(items...) }

// Parse translates a symbolic query into a transaction without executing
// it (the paper's translate function).
func Parse(q string) (Transaction, error) { return query.Translate(q) }

// config collects Open options.
type config struct {
	rep     Rep
	names   []string
	data    map[string][]Tuple
	history int // -1 = disabled, 0 = unbounded archive, n = keep n
	origin  string
	initial *database.Database
}

// Option configures Open.
type Option func(*cfgError, *config)

// cfgError accumulates option validation problems.
type cfgError struct{ err error }

// WithRelations declares the store's initial (empty) relations.
func WithRelations(names ...string) Option {
	return func(_ *cfgError, c *config) { c.names = append(c.names, names...) }
}

// WithRepresentation selects the relation representation (default list,
// the paper's experimental choice).
func WithRepresentation(rep Rep) Option {
	return func(_ *cfgError, c *config) { c.rep = rep }
}

// WithData seeds a relation with initial tuples (implies the relation).
func WithData(rel string, tuples ...Tuple) Option {
	return func(_ *cfgError, c *config) {
		if c.data == nil {
			c.data = map[string][]Tuple{}
		}
		c.data[rel] = append(c.data[rel], tuples...)
	}
}

// WithDatabase opens the store at an explicit initial version (overrides
// WithRelations/WithData).
func WithDatabase(db *Database) Option {
	return func(_ *cfgError, c *config) { c.initial = db }
}

// WithHistory retains database versions: limit 0 keeps every version (a
// complete archive, Section 3.3), limit n keeps the newest n. Without this
// option no history is kept. Each retained version is materialized at
// write time, which serializes the pipeline at every write — use it for
// interactive stores, not throughput benchmarks.
func WithHistory(limit int) Option {
	return func(e *cfgError, c *config) {
		if limit < 0 {
			e.err = fmt.Errorf("funcdb: negative history limit %d", limit)
			return
		}
		c.history = limit
	}
}

// WithOrigin sets the tag attached to this store's transactions (default
// "local").
func WithOrigin(origin string) Option {
	return func(_ *cfgError, c *config) { c.origin = origin }
}

// Store is a single-process functional database: one transaction stream,
// one version stream.
type Store struct {
	engine  *core.Engine
	stats   *eval.Stats
	history *History
	origin  string

	mu  sync.Mutex
	seq int
}

// Open creates a store.
func Open(opts ...Option) (*Store, error) {
	c := config{rep: RepList, history: -1, origin: "local"}
	var ce cfgError
	for _, opt := range opts {
		opt(&ce, &c)
	}
	if ce.err != nil {
		return nil, ce.err
	}

	initial := c.initial
	if initial == nil {
		names := append([]string(nil), c.names...)
		data := map[string][]value.Tuple{}
		for _, n := range names {
			data[n] = nil
		}
		for rel, tuples := range c.data {
			if _, ok := data[rel]; !ok {
				names = append(names, rel)
			}
			data[rel] = tuples
		}
		initial = database.FromData(c.rep, names, data)
	}

	s := &Store{
		stats:  &eval.Stats{},
		origin: c.origin,
	}
	s.engine = core.NewEngine(initial, core.WithStats(s.stats))
	if c.history >= 0 {
		s.history = database.NewHistory(c.history)
		s.history.Append(initial)
	}
	return s, nil
}

// MustOpen is Open for statically valid configurations; it panics on
// error.
func MustOpen(opts ...Option) *Store {
	s, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// nextSeq issues the next per-store sequence number.
func (s *Store) nextSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seq
	s.seq++
	return seq
}

// Submit admits a transaction into the store's merged stream and returns
// its response future. The transaction's Origin/Seq are filled in when
// empty.
func (s *Store) Submit(tx Transaction) *Future {
	if tx.Origin == "" {
		tx.Origin = s.origin
	}
	tx.Seq = s.nextSeq()
	fut := s.engine.Submit(tx)
	if s.history != nil && !tx.IsReadOnly() {
		// Materialize the new version for the archive. This forces the
		// write (and everything before it), trading pipelining for a
		// complete, queryable version stream.
		fut = lenient.Map(fut, func(r Response) Response {
			if r.Err == nil {
				s.history.Append(s.engine.Current())
			}
			return r
		})
		fut.Force()
	}
	return fut
}

// ExecAsync translates and submits a symbolic query, returning the
// response future.
func (s *Store) ExecAsync(q string) (*Future, error) {
	tx, err := query.Translate(q)
	if err != nil {
		return nil, err
	}
	return s.Submit(tx), nil
}

// Exec translates, submits and waits.
func (s *Store) Exec(q string) (Response, error) {
	fut, err := s.ExecAsync(q)
	if err != nil {
		return Response{}, err
	}
	return fut.Force(), nil
}

// Current materializes the store's present database version.
func (s *Store) Current() *Database { return s.engine.Current() }

// Barrier waits for every submitted transaction to finish.
func (s *Store) Barrier() { s.engine.Barrier() }

// History returns the retained version stream, or nil when history is
// disabled.
func (s *Store) History() *History { return s.history }

// SharingStats reports the structure-sharing counters of Section 2.2.
type SharingStats struct {
	Created int64
	Shared  int64
	Visited int64
	// Fraction is Shared / (Shared + Created).
	Fraction float64
}

// Stats returns the accumulated sharing statistics.
func (s *Store) Stats() SharingStats {
	return SharingStats{
		Created:  s.stats.Created.Load(),
		Shared:   s.stats.Shared.Load(),
		Visited:  s.stats.Visited.Load(),
		Fraction: s.stats.SharingFraction(),
	}
}

// ClusterConfig configures the distributed (primary-site) form.
type ClusterConfig struct {
	// Sites is the number of network sites.
	Sites int
	// Hypercube, when > 0, uses a binary hypercube of that dimension as
	// the site topology (Sites must be 2^Hypercube); otherwise sites are
	// fully connected.
	Hypercube int
	// Databases maps database names to their initial versions; each gets a
	// primary site round-robin.
	Databases map[string]*Database
}

// Cluster is the distributed store: clients at any site, primary-site
// coordination, responses routed by origin tag.
type Cluster = primarysite.Cluster

// Client submits queries from one cluster site.
type Client = primarysite.Client

// OpenCluster starts a primary-site cluster.
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	pcfg := primarysite.Config{
		Sites:     cfg.Sites,
		Databases: cfg.Databases,
	}
	if cfg.Hypercube > 0 {
		h := topo.NewHypercube(cfg.Hypercube)
		if h.Size() != cfg.Sites {
			return nil, fmt.Errorf("funcdb: hypercube(%d) has %d sites, config says %d",
				cfg.Hypercube, h.Size(), cfg.Sites)
		}
		pcfg.Topology = h
	}
	return primarysite.New(pcfg)
}
