// Package funcdb is a functional (applicative) database engine: the public
// API of this repository's reproduction of Keller & Lindstrom,
// "Approaching Distributed Database Implementations through Functional
// Programming Concepts", Proc. 5th ICDCS, 1985.
//
// A Store is a stream of immutable database versions. Every transaction is
// a function from one version to the next; updates share all untouched
// structure with their predecessor, old versions remain readable forever
// (time travel), and concurrency arises implicitly: submitted transactions
// become futures over per-relation lenient cells, so independent
// transactions run in parallel and conflicting ones pipeline — with no
// user-visible locks.
//
//	store := funcdb.Open(funcdb.WithRelations("parts"))
//	resp, err := store.Exec(`insert (1, "widget", 250) into parts`)
//	future := store.ExecAsync(`find 1 in parts`)
//	...
//	resp = future.Force()
//
// For the distributed form (the paper's primary-site model over a
// simulated network), see OpenCluster.
package funcdb

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"funcdb/internal/archive"
	"funcdb/internal/cluster"
	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/metrics"
	"funcdb/internal/netsim"
	"funcdb/internal/primarysite"
	"funcdb/internal/query"
	"funcdb/internal/relation"
	"funcdb/internal/reqtrace"
	"funcdb/internal/server"
	"funcdb/internal/session"
	"funcdb/internal/topo"
	"funcdb/internal/value"
)

// Re-exported core types. The internal packages carry the implementation;
// these aliases are the supported public surface.
type (
	// Transaction is a function from a database version to a response and
	// a successor version, plus its origin tag and read/write sets.
	Transaction = core.Transaction
	// Response is a tagged transaction result.
	Response = core.Response
	// Database is one immutable database version.
	Database = database.Database
	// History retains the version stream (complete archive or bounded).
	History = database.History
	// Item is a scalar data item.
	Item = value.Item
	// Tuple is an immutable tuple of items keyed by its first field.
	Tuple = value.Tuple
	// Rep selects a relation representation.
	Rep = relation.Rep
	// Future is an unresolved response: Force blocks until available.
	Future = lenient.Cell[core.Response]
	// SiteID names a site in a cluster.
	SiteID = netsim.SiteID
	// VersionInfo describes one element of a durable version stream.
	VersionInfo = archive.VersionInfo
	// DurabilityOption tunes the on-disk archive of WithDurability.
	DurabilityOption = archive.Option
	// BatchError reports which statement of an ExecBatch failed to
	// translate or bind (batches are all-or-nothing; nothing was
	// submitted). Recover it with errors.As to read the failing index.
	BatchError = session.BatchError
	// MetricsSnapshot is a point-in-time reading of every layer's
	// counters and latency histograms (see Store.MetricsSnapshot). It is
	// the document the wire Stats frame, the --debug-addr endpoints, and
	// fdbrepl's .stats all render.
	MetricsSnapshot = metrics.Snapshot
	// TracingConfig tunes request tracing: sampling rate, slow-request
	// threshold, and buffer sizes (see WithTracing).
	TracingConfig = reqtrace.Config
	// RequestTrace is one published request trace — the span timeline
	// Store.Traces returns, the wire Traces frame ships, and /debug/trace
	// serves.
	RequestTrace = reqtrace.Trace
	// TraceCtx is the trace context that crosses the wire: id, hop and
	// the sampled bit. The zero value means "not traced".
	TraceCtx = reqtrace.Ctx
)

// Relation representations.
const (
	RepList  = relation.RepList
	RepAVL   = relation.RepAVL
	Rep23    = relation.Rep23
	RepPaged = relation.RepPaged
)

// Int builds an integer item.
func Int(v int64) Item { return value.Int(v) }

// Str builds a string item.
func Str(s string) Item { return value.Str(s) }

// NewTuple builds a tuple.
func NewTuple(items ...Item) Tuple { return value.NewTuple(items...) }

// Parse translates a symbolic query into a transaction without executing
// it (the paper's translate function).
func Parse(q string) (Transaction, error) { return query.Translate(q) }

// config collects Open options.
type config struct {
	rep      Rep
	names    []string
	data     map[string][]Tuple
	history  int // -1 = disabled, 0 = unbounded archive, n = keep n
	origin   string
	initial  *database.Database
	dir      string // "" = no durability
	archOpts []archive.Option
	lanes    int              // 0 = default (from GOMAXPROCS)
	tracing  *reqtrace.Config // nil = tracing off
}

// Option configures Open.
type Option func(*cfgError, *config)

// cfgError accumulates option validation problems.
type cfgError struct{ err error }

// WithRelations declares the store's initial (empty) relations.
func WithRelations(names ...string) Option {
	return func(_ *cfgError, c *config) { c.names = append(c.names, names...) }
}

// WithRepresentation selects the relation representation (default list,
// the paper's experimental choice).
func WithRepresentation(rep Rep) Option {
	return func(_ *cfgError, c *config) { c.rep = rep }
}

// WithData seeds a relation with initial tuples (implies the relation).
func WithData(rel string, tuples ...Tuple) Option {
	return func(_ *cfgError, c *config) {
		if c.data == nil {
			c.data = map[string][]Tuple{}
		}
		c.data[rel] = append(c.data[rel], tuples...)
	}
}

// WithDatabase opens the store at an explicit initial version (overrides
// WithRelations/WithData).
func WithDatabase(db *Database) Option {
	return func(_ *cfgError, c *config) { c.initial = db }
}

// WithHistory retains database versions in memory: limit 0 keeps every
// version (a complete archive, Section 3.3), limit n keeps the newest n.
// Without this option no history is kept. Versions are appended from the
// engine's post-commit observer, off the submission path — history rides
// the lenient pipeline instead of serializing it. For a settled view after
// asynchronous submissions, History() waits on a barrier.
func WithHistory(limit int) Option {
	return func(e *cfgError, c *config) {
		if limit < 0 {
			e.err = fmt.Errorf("funcdb: negative history limit %d", limit)
			return
		}
		c.history = limit
	}
}

// WithOrigin sets the tag attached to this store's transactions (default
// "local").
func WithOrigin(origin string) Option {
	return func(_ *cfgError, c *config) { c.origin = origin }
}

// WithLanes sets the number of admission lanes the engine shards its merge
// point into. A write commits under the lane locks its relations hash
// into, so writes on disjoint lanes admit in parallel; n = 1 reproduces
// the single-mutex merge. The default (n = 0) picks the next power of two
// at or above GOMAXPROCS, capped at 64. Lane count affects only internal
// parallelism — any lane count yields the same responses and version
// contents for the same submission order.
func WithLanes(n int) Option {
	return func(e *cfgError, c *config) {
		if n < 0 {
			e.err = fmt.Errorf("funcdb: negative lane count %d", n)
			return
		}
		c.lanes = n
	}
}

// WithDurability makes the version stream durable in dir: an initial
// snapshot plus an append-only transaction log (internal/archive), written
// from the engine's post-commit observer so durability rides the lenient
// pipeline. If dir already holds an archive, the store recovers from it
// (newest snapshot + log suffix) and any WithRelations/WithData/
// WithDatabase options are superseded by the recovered version. Close the
// store to flush and release the archive.
func WithDurability(dir string, opts ...DurabilityOption) Option {
	return func(e *cfgError, c *config) {
		if dir == "" {
			e.err = fmt.Errorf("funcdb: empty durability directory")
			return
		}
		c.dir = dir
		c.archOpts = append(c.archOpts, opts...)
	}
}

// WithTracing enables per-request span tracing: every request gets a
// trace handle the pipeline brackets its stages onto (conn-read through
// group-commit-fsync), and completed traces are published to a
// fixed-size ring by head sampling (default 1 in 1024) plus an
// always-keep slow-request reservoir (default 10ms). Read them with
// Traces, the wire Traces frame, or /debug/trace. The zero TracingConfig
// selects every default; tracing off (the default) costs zero
// allocations and zero clock reads on the request path.
func WithTracing(cfg TracingConfig) Option {
	return func(_ *cfgError, c *config) {
		tc := cfg
		c.tracing = &tc
	}
}

// SnapshotEvery snapshots the full version every n logged writes, bounding
// recovery replay time (and enabling compaction past old segments).
func SnapshotEvery(n int) DurabilityOption { return archive.SnapshotEvery(n) }

// SyncEveryWrite fsyncs the log on every committed write: durability
// against power loss, not just process crashes, at a per-write fsync cost.
func SyncEveryWrite() DurabilityOption { return archive.Fsync(true) }

// GroupCommit batches durable log appends: committed records accumulate in
// memory and are flushed — one write, and one fsync when SyncEveryWrite is
// on — at least every window. Group commit multiplies durable-write
// throughput at the cost that a crash may lose the commits of the current
// window (the in-memory database is never affected). Barrier and Close
// flush the pending batch.
func GroupCommit(window time.Duration) DurabilityOption { return archive.GroupCommit(window) }

// Store is a single-process functional database: one transaction stream,
// one version stream. Its query surface (Exec, ExecAsync, ExecBatch) is a
// thin wrapper over a session (internal/session) — the same execution
// layer every other front end (the REPL, the network server) drives — so
// there is exactly one exec/parse path from any client to the admission
// lanes.
type Store struct {
	engine  *core.Engine
	stats   *eval.Stats
	history *History
	archive *archive.Archive
	origin  string
	session *session.Session
	tracer  *reqtrace.Recorder // nil = tracing off

	// Per-layer metric sinks, always allocated: recording is a handful of
	// atomic adds, and the snapshot API must work on every store. All
	// sessions over this store share sessionM.
	engineM  *metrics.Engine
	archiveM *metrics.Archive
	sessionM *metrics.Session

	seq atomic.Int64 // per-store sequence tags; atomic keeps reads lock-free
}

// Open creates a store.
func Open(opts ...Option) (*Store, error) {
	c := config{rep: RepList, history: -1, origin: "local"}
	var ce cfgError
	for _, opt := range opts {
		opt(&ce, &c)
	}
	if ce.err != nil {
		return nil, ce.err
	}

	s := &Store{
		stats:    &eval.Stats{},
		origin:   c.origin,
		engineM:  &metrics.Engine{},
		archiveM: &metrics.Archive{},
		sessionM: &metrics.Session{},
	}
	if c.tracing != nil {
		s.tracer = reqtrace.New(c.origin, *c.tracing)
	}
	engineOpts := []core.EngineOption{
		core.WithStats(s.stats),
		core.WithEngineMetrics(s.engineM),
	}
	if c.lanes > 0 {
		engineOpts = append(engineOpts, core.WithLanes(c.lanes))
	}
	c.archOpts = append(c.archOpts, archive.WithMetrics(s.archiveM))

	initial := c.initial
	if c.dir != "" && archive.Exists(c.dir) {
		// Recovery: the durable stream supersedes any configured initial
		// state.
		arch, db, err := archive.Open(c.dir, c.archOpts...)
		if err != nil {
			return nil, err
		}
		s.archive = arch
		initial = db
	}
	if initial == nil {
		names := append([]string(nil), c.names...)
		data := map[string][]value.Tuple{}
		for _, n := range names {
			data[n] = nil
		}
		for rel, tuples := range c.data {
			if _, ok := data[rel]; !ok {
				names = append(names, rel)
			}
			data[rel] = tuples
		}
		initial = database.FromData(c.rep, names, data)
	}
	if c.dir != "" && s.archive == nil {
		arch, err := archive.Create(c.dir, initial, c.archOpts...)
		if err != nil {
			return nil, err
		}
		s.archive = arch
	}
	if s.archive != nil {
		engineOpts = append(engineOpts, core.WithCommitObserver(s.archive.Observer()))
	}
	if c.history >= 0 {
		s.history = database.NewHistory(c.history)
		s.history.Append(initial)
		engineOpts = append(engineOpts, core.WithCommitObserver(func(cm core.Commit) {
			s.history.Append(cm.Version())
		}))
	}
	s.engine = core.NewEngine(initial, engineOpts...)
	s.session = session.New(s,
		session.WithOrigin(s.origin),
		session.WithSeqs(s.nextSeqs),
		session.WithMetrics(s.sessionM))
	return s, nil
}

// OpenDir reopens a store from an existing archive directory, recovering
// the last durable version (newest snapshot + log suffix) and continuing
// the version stream from there. It fails if dir holds no archive — create
// one by opening with WithDurability first.
func OpenDir(dir string, opts ...Option) (*Store, error) {
	if !archive.Exists(dir) {
		return nil, fmt.Errorf("funcdb: no archive in %q (open with WithDurability to create one)", dir)
	}
	return Open(append([]Option{WithDurability(dir)}, opts...)...)
}

// MustOpen is Open for statically valid configurations; it panics on
// error.
func MustOpen(opts ...Option) *Store {
	s, err := Open(opts...)
	if err != nil {
		panic(err)
	}
	return s
}

// nextSeq issues the next per-store sequence number.
func (s *Store) nextSeq() int {
	return int(s.seq.Add(1)) - 1
}

// nextSeqs issues n consecutive per-store sequence numbers, returning the
// first.
func (s *Store) nextSeqs(n int) int {
	return int(s.seq.Add(int64(n))) - n
}

// Submit admits a transaction into the store's merged stream and returns
// its response future. The transaction's Origin/Seq are filled in when
// empty. History and durability, when enabled, are appended from the
// engine's post-commit observer — the write pipelines like any other.
func (s *Store) Submit(tx Transaction) *Future {
	if tx.Origin == "" {
		tx.Origin = s.origin
	}
	tx.Seq = s.nextSeq()
	return s.engine.Submit(tx)
}

// SubmitBatch admits a slice of transactions in one merge arbitration —
// the lane locks are taken once per run — and returns their response
// futures in submission order. Origin/Seq tags are filled in when empty,
// exactly as Submit does.
func (s *Store) SubmitBatch(txs []Transaction) []*Future {
	batch := make([]Transaction, len(txs))
	copy(batch, txs)
	first := s.nextSeqs(len(batch))
	for i := range batch {
		if batch[i].Origin == "" {
			batch[i].Origin = s.origin
		}
		batch[i].Seq = first + i
	}
	return s.SubmitTagged(batch)
}

// SubmitTagged admits a slice of already-tagged transactions: the raw
// admission surface the session layer (and through it every front end)
// feeds. Unlike Submit/SubmitBatch it never rewrites Origin or Seq — the
// session owns the tag space, which is what makes a network connection's
// response stream deterministic regardless of how other connections
// interleave. A single transaction takes the engine's one-off path, so a
// lone read keeps the lock-free fast path; a batch hints the archive's
// adaptive group-commit window with its write count before admission.
func (s *Store) SubmitTagged(txs []Transaction) []*Future {
	if len(txs) == 1 {
		return []*Future{s.engine.Submit(txs[0])}
	}
	if s.archive != nil {
		writes := 0
		for i := range txs {
			if !txs[i].IsReadOnly() {
				writes++
			}
		}
		s.archive.ExpectBatch(writes)
	}
	return s.engine.SubmitBatch(txs)
}

// ExecAsync translates and submits a symbolic query through the store's
// session (cached statements, one exec path), returning the response
// future.
func (s *Store) ExecAsync(q string) (*Future, error) {
	return s.session.ExecAsync(q)
}

// Exec translates, submits and waits.
func (s *Store) Exec(q string) (Response, error) {
	return s.session.Exec(q)
}

// ExecBatch translates a slice of queries, submits them all in one merge
// arbitration, and waits for every response. Translation is all-or-nothing:
// a syntax error in any query fails the whole batch before anything is
// submitted, and the returned error is a *BatchError carrying the failing
// statement's index.
func (s *Store) ExecBatch(queries []string) ([]Response, error) {
	return s.session.ExecBatch(queries)
}

// Session opens a fresh session over the store with its own origin tag
// and sequence space: the per-connection execution context of the network
// server, also usable in-process for a client that wants deterministic
// per-client response tags. The session shares the store's statement
// cache.
func (s *Store) Session(origin string) *session.Session {
	return session.New(s,
		session.WithOrigin(origin),
		session.WithCache(s.session.Cache()),
		session.WithMetrics(s.sessionM))
}

// Stmt is a prepared query bound to a store: parsed once, executed many
// times with different bind parameters ('?' placeholders in data-item
// positions). A Stmt is immutable and safe for concurrent use.
type Stmt struct {
	store *Store
	prep  *query.Prepared
}

// Prepare parses q once into a reusable statement, taking the lexer and
// parser off the submission hot path:
//
//	ins, _ := store.Prepare("insert (?, ?) into R")
//	for i, name := range names {
//		ins.Exec(funcdb.Int(int64(i)), funcdb.Str(name))
//	}
func (s *Store) Prepare(q string) (*Stmt, error) {
	prep, err := s.session.Prepare(q) // store-wide statement cache
	if err != nil {
		return nil, err
	}
	return &Stmt{store: s, prep: prep}, nil
}

// Query returns the statement's source text.
func (st *Stmt) Query() string { return st.prep.Src() }

// NumParams returns the number of '?' placeholders.
func (st *Stmt) NumParams() int { return st.prep.NumParams() }

// Bind substitutes args into the placeholders and returns the transaction
// without submitting it.
func (st *Stmt) Bind(args ...Item) (Transaction, error) {
	return st.prep.Bind(args...)
}

// ExecAsync binds and submits, returning the response future.
func (st *Stmt) ExecAsync(args ...Item) (*Future, error) {
	tx, err := st.prep.Bind(args...)
	if err != nil {
		return nil, err
	}
	return st.store.Submit(tx), nil
}

// Exec binds, submits and waits.
func (st *Stmt) Exec(args ...Item) (Response, error) {
	fut, err := st.ExecAsync(args...)
	if err != nil {
		return Response{}, err
	}
	return fut.Force(), nil
}

// ExecBatch binds every argument set and submits the lot in one merge
// arbitration, waiting for all responses. Binding is all-or-nothing.
func (st *Stmt) ExecBatch(argSets ...[]Item) ([]Response, error) {
	txs := make([]Transaction, len(argSets))
	for i, args := range argSets {
		tx, err := st.prep.Bind(args...)
		if err != nil {
			return nil, &BatchError{Index: i, Query: st.prep.Src(), Err: err}
		}
		txs[i] = tx
	}
	futures := st.store.SubmitBatch(txs)
	out := make([]Response, len(futures))
	for i, f := range futures {
		out[i] = f.Force()
	}
	return out, nil
}

// Current materializes the store's present database version.
func (s *Store) Current() *Database { return s.engine.Current() }

// Lanes returns the number of admission lanes the store's engine shards
// its merge point into (see WithLanes).
func (s *Store) Lanes() int { return s.engine.Lanes() }

// Barrier waits for every submitted transaction to finish, including its
// durable record: with group commit, the pending batch is flushed to the
// log before Barrier returns.
func (s *Store) Barrier() {
	s.engine.Barrier()
	if s.archive != nil {
		_ = s.archive.Flush() // failures are sticky; DurabilityErr reports them
	}
}

// History returns the retained version stream, or nil when history is
// disabled. It waits for pending commits to be recorded, so the returned
// stream reflects everything submitted before the call.
func (s *Store) History() *History {
	if s.history != nil {
		s.engine.Barrier()
	}
	return s.history
}

// Close waits for every submitted transaction (and its durable record),
// then flushes and closes the archive. It reports the first durability
// failure, if any occurred. Closing a store without durability is a no-op.
func (s *Store) Close() error {
	s.engine.Barrier()
	if s.archive == nil {
		return nil
	}
	return s.archive.Close()
}

// Durable reports whether the store writes a durable archive.
func (s *Store) Durable() bool { return s.archive != nil }

// DurabilityErr reports the archive's sticky failure: non-nil when some
// committed write could not be made durable. Nil without durability.
func (s *Store) DurabilityErr() error {
	if s.archive == nil {
		return nil
	}
	return s.archive.Err()
}

// VersionAt materializes the database version numbered seq: from the
// on-disk archive when the store is durable, falling back to the
// in-memory history. This is time travel over the full retained stream.
func (s *Store) VersionAt(seq int64) (*Database, error) {
	var archErr error
	if s.archive != nil {
		s.engine.Barrier()
		db, err := s.archive.VersionAt(seq)
		if err == nil {
			return db, nil
		}
		archErr = err
	}
	if h := s.History(); h != nil {
		db, err := h.Version(seq)
		if err == nil {
			return db, nil
		}
		if archErr == nil {
			archErr = err
		}
	}
	if archErr != nil {
		return nil, archErr
	}
	return nil, fmt.Errorf("funcdb: version %d not retained (no history or archive configured)", seq)
}

// ArchivedVersions lists the durable version stream oldest-first, or an
// error when the store has no archive.
func (s *Store) ArchivedVersions() ([]VersionInfo, error) {
	if s.archive == nil {
		return nil, fmt.Errorf("funcdb: store has no archive (open with WithDurability)")
	}
	s.engine.Barrier()
	// Flush the group-commit batch explicitly: a flush failure must fail
	// the listing rather than silently omit the buffered versions.
	if err := s.archive.Flush(); err != nil {
		return nil, err
	}
	return archive.Versions(s.archive.Dir())
}

// Snapshot forces a full durable snapshot of the current version and
// rotates the log, bounding the next recovery's replay.
func (s *Store) Snapshot() error {
	if s.archive == nil {
		return fmt.Errorf("funcdb: store has no archive (open with WithDurability)")
	}
	s.engine.Barrier()
	return s.archive.Snapshot(s.engine.Current())
}

// SubscribeLog streams the store's committed-transaction log: every
// durable-format record with sequence > after, in commit order, with no
// gap between the replayed history and the live tail. It is the primary
// side of cluster log shipping — the archive's durability log doubling as
// the replication stream — and requires durability (the log is the
// stream; without an archive there is nothing to ship). The callback runs
// on the commit path under the archive mutex: hand the record off (copy
// it; the slice is reused), never block or call back into the store.
// Decode records with the archive's transaction codec; cancel
// unregisters.
func (s *Store) SubscribeLog(after int64, fn func(seq int64, record []byte)) (cancel func(), err error) {
	if s.archive == nil {
		return nil, fmt.Errorf("funcdb: store has no archive to subscribe to (open with WithDurability)")
	}
	return s.archive.SubscribeTxns(after, fn)
}

// TraceRecorder returns the store's request-trace recorder, nil when
// tracing is off: the server layer's TraceSource capability. The
// recorder is nil-safe — callers may use the result unconditionally.
func (s *Store) TraceRecorder() *reqtrace.Recorder { return s.tracer }

// Traces snapshots the store's published request traces, newest first:
// the head-sampled ring plus the always-keep slow reservoir (entries
// flagged Slow). Nil when tracing is off (see WithTracing).
func (s *Store) Traces() []RequestTrace { return s.tracer.Traces() }

// LogTraceCtxOf reports the trace context recorded for a committed
// sequence (zero when untraced): the server layer's LogTraceSource
// capability, backing trace propagation onto the replication stream.
func (s *Store) LogTraceCtxOf(seq int64) TraceCtx {
	if s.archive == nil || s.tracer == nil {
		return TraceCtx{}
	}
	return s.archive.TraceCtxOf(seq)
}

// SharingStats reports the structure-sharing counters of Section 2.2.
type SharingStats struct {
	Created int64
	Shared  int64
	Visited int64
	// Fraction is Shared / (Shared + Created).
	Fraction float64
}

// Stats returns the accumulated sharing statistics.
func (s *Store) Stats() SharingStats {
	return SharingStats{
		Created:  s.stats.Created.Load(),
		Shared:   s.stats.Shared.Load(),
		Visited:  s.stats.Visited.Load(),
		Fraction: s.stats.SharingFraction(),
	}
}

// MetricsSnapshot reads every layer's counters and latency histograms at
// this instant: admission lanes, commit latency, the durable archive,
// session flushing, structure sharing, and the Go runtime's heap/GC
// numbers. Layer counters read lock-free — atomic loads only — and the
// runtime section costs one runtime.ReadMemStats; safe to call from a
// monitoring loop while the store is under full load. (Named
// MetricsSnapshot, not Snapshot: Snapshot forces a durable on-disk
// snapshot.)
func (s *Store) MetricsSnapshot() MetricsSnapshot {
	snap := metrics.Snapshot{
		Origin:  s.origin,
		Version: s.engine.Version(),
		Lanes:   s.engine.Lanes(),
		Durable: s.archive != nil,
		Engine:  s.engineM.Snapshot(),
		Session: s.sessionM.Snapshot(),
		Sharing: metrics.SharingSnapshot{
			NodesCreated: s.stats.Created.Load(),
			NodesShared:  s.stats.Shared.Load(),
			NodesVisited: s.stats.Visited.Load(),
		},
	}
	if s.archive != nil {
		a := s.archiveM.Snapshot()
		snap.Archive = &a
	}
	if s.tracer != nil {
		ts := s.tracer.Stats()
		snap.Trace = &metrics.TraceSnapshot{
			Started:    ts.Started,
			Sampled:    ts.Sampled,
			Slow:       ts.Slow,
			Propagated: ts.Propagated,
		}
	}
	rt := metrics.ReadRuntime()
	snap.Runtime = &rt
	return snap
}

// ClusterNodeConfig configures one node of a real-network cluster: the
// paper's primary-copy model over TCP (internal/cluster). Every node of
// a cluster must be opened with the same Nodes list and Relations schema;
// placement is then a pure function both of them compute identically —
// relation rel's primary is node core.LaneOf(rel, len(Nodes)), the same
// hash that shards a store's admission lanes.
type ClusterNodeConfig struct {
	// ID is this node's index into Nodes.
	ID int
	// Nodes lists every node's advertised address, in cluster order. The
	// list is the membership and the placement domain.
	Nodes []string
	// Listen is the bind address (defaults to Nodes[ID]).
	Listen string
	// Listener, when non-nil, serves on an already-bound listener instead
	// of binding Listen — the clean way to bootstrap an in-process
	// cluster: bind every port first, collect the addresses into Nodes,
	// then open the nodes. Ownership transfers to the node.
	Listener net.Listener
	// Dir is the node's archive directory. Required: the durability log
	// doubles as the replication stream, so a cluster node is always
	// durable.
	Dir string
	// Relations is the cluster-wide schema; this node's store holds the
	// subset that hashes to ID, and its mirrors hold each peer's subset.
	Relations []string
	// Lanes sets the store's admission lane count (0 = default).
	Lanes int
	// DisableReplication turns off log-shipped replicas (and with them
	// replica reads on this node).
	DisableReplication bool
	// Durability tunes the node's archive (group commit, fsync, snapshot
	// cadence).
	Durability []DurabilityOption
	// Tracing enables request tracing on the node's store (see
	// WithTracing): the node records its own spans for every request it
	// serves and propagates sampled trace contexts on forwards and the
	// replication stream, so one trace id stitches across the cluster.
	Tracing *TracingConfig
	// Failover enables lease-based failure detection, promotion of the
	// most-caught-up mirror when a primary dies, and epoch fencing.
	// Requires replication; every node of the cluster should enable it
	// with the same parameters. See cluster.FailoverConfig.
	Failover *cluster.FailoverConfig
	// Dialer overrides how the node opens outbound connections (fault
	// injection in tests). Nil means plain TCP.
	Dialer cluster.DialFunc
}

// ClusterNode is one running member of a real-network cluster: primary
// for its owned relations, gateway for the rest, and (unless disabled)
// a log-shipped replica of its peers. Drive it with Serve, point clients
// at Addr (funcdb/client.DialCluster, or a plain Dial — the node
// forwards transparently), and stop it with Shutdown.
type ClusterNode struct {
	store *Store
	node  *cluster.Node
	srv   *server.Server
}

// OpenClusterNode opens the node's durable store (recovering it if the
// archive already exists), assembles the cluster routing around it, and
// binds the listener. Call Serve to start accepting connections.
func OpenClusterNode(cfg ClusterNodeConfig) (*ClusterNode, error) {
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("funcdb: cluster node needs the Nodes list")
	}
	if cfg.ID < 0 || cfg.ID >= len(cfg.Nodes) {
		return nil, fmt.Errorf("funcdb: cluster node id %d outside 0..%d", cfg.ID, len(cfg.Nodes)-1)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("funcdb: cluster node needs an archive directory (the log is the replication stream)")
	}
	owned := cluster.OwnedRelations(cfg.Relations, cfg.ID, len(cfg.Nodes))
	opts := []Option{
		WithRelations(owned...),
		WithOrigin(fmt.Sprintf("node%d", cfg.ID)),
		WithDurability(cfg.Dir, cfg.Durability...),
	}
	if cfg.Lanes > 0 {
		opts = append(opts, WithLanes(cfg.Lanes))
	}
	if cfg.Tracing != nil {
		opts = append(opts, WithTracing(*cfg.Tracing))
	}
	store, err := Open(opts...)
	if err != nil {
		return nil, err
	}
	ccfg := cluster.Config{
		ID:        cfg.ID,
		Addrs:     cfg.Nodes,
		Store:     store,
		Relations: cfg.Relations,
		Replicate: !cfg.DisableReplication,
		Failover:  cfg.Failover,
		Dialer:    cfg.Dialer,
	}
	if cfg.Failover != nil {
		// The takeover store: the mirror's database at the promotion base
		// becomes the initial version of a fresh durable store under the
		// node's own directory, so the adopted slot's log is subscribable
		// exactly like a born-primary's — from the base onward.
		ccfg.Promote = func(slot int, epoch uint64, db *Database) (cluster.LocalStore, error) {
			dir := filepath.Join(cfg.Dir, fmt.Sprintf("takeover-%d-e%d", slot, epoch))
			if err := os.RemoveAll(dir); err != nil {
				return nil, err
			}
			topts := []Option{
				WithDatabase(db),
				WithOrigin(fmt.Sprintf("node%d-takeover%d", cfg.ID, slot)),
				WithDurability(dir, cfg.Durability...),
			}
			if cfg.Lanes > 0 {
				topts = append(topts, WithLanes(cfg.Lanes))
			}
			return Open(topts...)
		}
	}
	node, err := cluster.New(ccfg)
	if err != nil {
		store.Close()
		return nil, err
	}
	srv := server.New(node)
	if cfg.Listener != nil {
		srv.AttachListener(cfg.Listener)
	} else {
		listen := cfg.Listen
		if listen == "" {
			listen = cfg.Nodes[cfg.ID]
		}
		if err := srv.Listen(listen); err != nil {
			node.Close()
			store.Close()
			return nil, err
		}
	}
	node.Start()
	return &ClusterNode{store: store, node: node, srv: srv}, nil
}

// Serve accepts connections until Shutdown; it returns nil on a clean
// drain.
func (cn *ClusterNode) Serve() error { return cn.srv.Serve() }

// Addr returns the bound listener address.
func (cn *ClusterNode) Addr() net.Addr { return cn.srv.Addr() }

// Store returns the node's primary store (the owned relations).
func (cn *ClusterNode) Store() *Store { return cn.store }

// ID returns the node's cluster index.
func (cn *ClusterNode) ID() int { return cn.node.ID() }

// Owner reports the advertised address of rel's primary and whether it
// is this node: the placement function, for introspection.
func (cn *ClusterNode) Owner(rel string) (addr string, self bool) { return cn.node.Owner(rel) }

// ReplicaVersion reports how far this node's replica of a peer has
// caught up (the newest applied primary sequence), or -1 without one.
func (cn *ClusterNode) ReplicaVersion(peer int) int64 { return cn.node.ReplicaVersion(peer) }

// Traces snapshots this node's published request traces, newest first —
// the node's own spans only; fetch each node's and stitch by trace id
// (reqtrace.Stitch) for the cluster-wide timeline. Nil when the node was
// opened without Tracing.
func (cn *ClusterNode) Traces() []RequestTrace { return cn.store.Traces() }

// MetricsSnapshot reads the node's full metric state: the store's layers
// plus cluster routing (forwards, redirects), per-peer link counters,
// replica progress, and the network server's per-connection and
// per-frame-type histograms. This is the document the wire Stats frame
// returns and --debug-addr serves.
func (cn *ClusterNode) MetricsSnapshot() MetricsSnapshot {
	snap := cn.node.MetricsSnapshot()
	srv := cn.srv.Metrics().Snapshot()
	snap.Server = &srv
	return snap
}

// Kill hard-stops the node without draining, barriering, or closing the
// store: connections are cut mid-request and nothing pending is
// flushed. It is the in-process stand-in for SIGKILL — whatever a real
// crash would lose, Kill loses too — used by fault-injection tests and
// fdbload's kill smoke. The store is intentionally left unclosed.
func (cn *ClusterNode) Kill() {
	cn.node.Close()
	cn.srv.Abort()
}

// FailoverInfo reports who serves a slot (and in which epoch) as this
// node believes it, and whether this node serves it locally. Epoch 0
// with owner==slot is the static placement (no promotion yet, or
// failover off).
func (cn *ClusterNode) FailoverInfo(slot int) (owner int, epoch uint64, servingHere bool) {
	return cn.node.FailoverInfo(slot)
}

// WaitReady blocks until the node's failover boot probation resolves (a
// no-op without failover): after it returns, the node either serves its
// slot or knows who does.
func (cn *ClusterNode) WaitReady(timeout time.Duration) error {
	return cn.node.WaitReady(timeout)
}

// Shutdown drains the listener (every acked response is flushed to the
// archive), stops replication, and closes the store. The first
// durability failure, if any, is returned.
func (cn *ClusterNode) Shutdown() error {
	err := cn.srv.Shutdown()
	cn.node.Close()
	if cerr := cn.store.Close(); err == nil {
		err = cerr
	}
	return err
}

// ClusterConfig configures the distributed (primary-site) form.
type ClusterConfig struct {
	// Sites is the number of network sites.
	Sites int
	// Hypercube, when > 0, uses a binary hypercube of that dimension as
	// the site topology (Sites must be 2^Hypercube); otherwise sites are
	// fully connected.
	Hypercube int
	// Databases maps database names to their initial versions; each gets a
	// primary site round-robin.
	Databases map[string]*Database
}

// Cluster is the distributed store: clients at any site, primary-site
// coordination, responses routed by origin tag.
type Cluster = primarysite.Cluster

// Client submits queries from one cluster site.
type Client = primarysite.Client

// OpenCluster starts a primary-site cluster.
func OpenCluster(cfg ClusterConfig) (*Cluster, error) {
	pcfg := primarysite.Config{
		Sites:     cfg.Sites,
		Databases: cfg.Databases,
	}
	if cfg.Hypercube > 0 {
		h := topo.NewHypercube(cfg.Hypercube)
		if h.Size() != cfg.Sites {
			return nil, fmt.Errorf("funcdb: hypercube(%d) has %d sites, config says %d",
				cfg.Hypercube, h.Size(), cfg.Sites)
		}
		pcfg.Topology = h
	}
	return primarysite.New(pcfg)
}
