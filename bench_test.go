// Repository-level benchmarks: one benchmark per table and figure of the
// paper, plus the ablations of DESIGN.md. The ply/speedup benchmarks report
// the paper's measures via b.ReportMetric (max_ply, avg_ply, speedup), so
// `go test -bench . -benchmem` regenerates every published number alongside
// the wall-clock cost of computing it.
package funcdb_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"funcdb"
	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/experiments"
	"funcdb/internal/lockdb"
	"funcdb/internal/merge"
	"funcdb/internal/relation"
	"funcdb/internal/sched"
	"funcdb/internal/topo"
	"funcdb/internal/trace"
	"funcdb/internal/value"
	"funcdb/internal/workload"
)

// BenchmarkTableI regenerates Table I: maximum and average ply width per
// (relations, update%) cell.
func BenchmarkTableI(b *testing.B) {
	for _, rels := range experiments.PaperRelationCounts {
		for _, pct := range experiments.PaperUpdatePcts {
			b.Run(fmt.Sprintf("rels=%d/updates=%d", rels, pct), func(b *testing.B) {
				var cell experiments.Cell
				var err error
				for i := 0; i < b.N; i++ {
					cell, err = experiments.CellI(pct, rels, experiments.DefaultSeed)
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(cell.MaxPly), "max_ply")
				b.ReportMetric(cell.AvgPly, "avg_ply")
				b.ReportMetric(float64(cell.Work), "tasks")
			})
		}
	}
}

// BenchmarkTableII regenerates Table II: speedup on the 8-node binary
// hypercube.
func BenchmarkTableII(b *testing.B) {
	benchSpeedup(b, topo.NewHypercube(3))
}

// BenchmarkTableIII regenerates Table III: speedup on the 27-node 3x3x3
// Euclidean cube.
func BenchmarkTableIII(b *testing.B) {
	benchSpeedup(b, topo.NewMesh3D(3, 3, 3))
}

func benchSpeedup(b *testing.B, tp topo.Topology) {
	b.Helper()
	for _, rels := range experiments.PaperRelationCounts {
		for _, pct := range experiments.PaperUpdatePcts {
			b.Run(fmt.Sprintf("rels=%d/updates=%d", rels, pct), func(b *testing.B) {
				var cell experiments.Cell
				var err error
				for i := 0; i < b.N; i++ {
					cell, err = experiments.CellSpeedup(pct, rels, experiments.SpeedupConfig{
						Topo: tp, Seed: experiments.DefaultSeed,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(cell.Speedup, "speedup")
				b.ReportMetric(cell.Efficiency, "efficiency")
			})
		}
	}
}

// BenchmarkFigure21 regenerates the Figure 2-1 equation demo.
func BenchmarkFigure21(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Figure21(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure22PageSharing regenerates Figure 2-2: page sharing after
// one insert, across relation sizes.
func BenchmarkFigure22PageSharing(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("tuples=%d", n), func(b *testing.B) {
			var res experiments.Figure22Result
			for i := 0; i < b.N; i++ {
				res = experiments.Figure22(8, n)
			}
			b.ReportMetric(res.SharedFraction, "shared_frac")
			b.ReportMetric(float64(res.CopiedPages), "copied_pages")
		})
	}
}

// BenchmarkFigure23 regenerates the merge/decomposition example.
func BenchmarkFigure23(b *testing.B) {
	var res experiments.Figure23Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Figure23()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Plies.MaxWidth), "max_ply")
	b.ReportMetric(float64(res.Plies.Depth), "depth")
}

// BenchmarkFigure31 measures the network-as-merge round trip.
func BenchmarkFigure31(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure31(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLeniency quantifies Section 2.3: strict sequencing
// versus lenient pipelining of the same workload.
func BenchmarkAblationLeniency(b *testing.B) {
	var res experiments.LeniencyAblation
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunLeniencyAblation(14, 3, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Lenient.AvgWidth, "lenient_avg_ply")
	b.ReportMetric(res.Strict.AvgWidth, "strict_avg_ply")
	b.ReportMetric(float64(res.Strict.Depth)/float64(res.Lenient.Depth), "depth_ratio")
}

// BenchmarkAblationRepresentation compares relation representations on the
// paper workload (Section 2.2's tree-sharing argument).
func BenchmarkAblationRepresentation(b *testing.B) {
	for _, rep := range []relation.Rep{relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged} {
		b.Run(rep.String(), func(b *testing.B) {
			var out []experiments.RepresentationAblation
			var err error
			for i := 0; i < b.N; i++ {
				out, err = experiments.RunRepresentationAblation(14, 3, experiments.DefaultSeed)
				if err != nil {
					b.Fatal(err)
				}
			}
			for _, r := range out {
				if r.Rep == rep {
					b.ReportMetric(float64(r.Created), "nodes_created")
					b.ReportMetric(r.Plies.AvgWidth, "avg_ply")
				}
			}
		})
	}
}

// BenchmarkAblationPlacement compares scheduler placement policies
// (Rediflow's load management, paper [14]).
func BenchmarkAblationPlacement(b *testing.B) {
	for _, pol := range []sched.Policy{
		sched.PolicyPressure, sched.PolicyBestFit, sched.PolicyLocality,
		sched.PolicyRoundRobin, sched.PolicyRandom,
	} {
		b.Run(pol.String(), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				out, err := experiments.RunPlacementAblation(14, 3, topo.NewHypercube(3), experiments.DefaultSeed)
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range out {
					if p.Policy == pol {
						speedup = p.Result.Speedup
					}
				}
			}
			b.ReportMetric(speedup, "speedup")
		})
	}
}

// BenchmarkAblationDynamicScheduling compares static list scheduling with
// the dynamic work-diffusion simulation.
func BenchmarkAblationDynamicScheduling(b *testing.B) {
	var res experiments.DynamicAblation
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunDynamicAblation(14, 3, topo.NewHypercube(3), experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Static.Speedup, "static_speedup")
	b.ReportMetric(res.Dynamic.Speedup, "dynamic_speedup")
	b.ReportMetric(float64(res.Dynamic.Steals), "exports")
}

// BenchmarkAblationMergeOrder compares arrival-order and relation-grouped
// merges (Section 2.4's future-work optimization).
func BenchmarkAblationMergeOrder(b *testing.B) {
	var res experiments.MergeOrderAblation
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunMergeOrderAblation(24, 5, 4, experiments.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Arrival.AvgWidth, "arrival_avg_ply")
	b.ReportMetric(res.Grouped.AvgWidth, "grouped_avg_ply")
}

// bankingMerged builds one merged banking stream for the wall-clock
// engine comparisons.
func bankingMerged(clients, accounts, ops int) []core.Transaction {
	streams := workload.Banking(clients, accounts, ops, 7)
	return merge.Interleave(7, streams...)
}

// BenchmarkAblationLocking is Ablation C: wall-clock throughput of the
// pipelined functional engine, the sequential functional engine, and the
// conventional lock-based baseline on the same merged banking workload.
func BenchmarkAblationLocking(b *testing.B) {
	const clients, accounts, ops = 8, 64, 50
	txns := bankingMerged(clients, accounts, ops)
	initial := workload.BankingInitial(relation.RepList, accounts)

	b.Run("functional-pipelined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ApplyStreamPipelined(initial, txns)
		}
		b.ReportMetric(float64(len(txns)), "txns")
	})
	b.Run("functional-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ApplySequential(initial, txns)
		}
	})
	b.Run("lockdb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := lockdb.FromDatabase(initial)
			var wg sync.WaitGroup
			per := (len(txns) + clients - 1) / clients
			for c := 0; c < clients; c++ {
				lo := c * per
				hi := min(lo+per, len(txns))
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(part []core.Transaction) {
					defer wg.Done()
					for _, tx := range part {
						db.Exec(tx)
					}
				}(txns[lo:hi])
			}
			wg.Wait()
		}
	})
}

// heavyReadWorkload builds a multi-relation, scan-dominated merged stream
// over large relations: per-transaction bodies heavy enough for goroutine
// futures to amortize.
func heavyReadWorkload(rels, tuplesPerRel, ops int) (*database.Database, []core.Transaction) {
	names := make([]string, 0, rels)
	data := map[string][]value.Tuple{}
	for r := 0; r < rels; r++ {
		name := fmt.Sprintf("R%d", r)
		names = append(names, name)
		tuples := make([]value.Tuple, 0, tuplesPerRel)
		for i := 0; i < tuplesPerRel; i++ {
			tuples = append(tuples, value.NewTuple(value.Int(int64(i)), value.Str("v")))
		}
		data[name] = tuples
	}
	init := database.FromData(relation.RepList, names, data)
	txns := make([]core.Transaction, 0, ops)
	for i := 0; i < ops; i++ {
		name := names[i%rels]
		var tx core.Transaction
		if i%10 == 0 {
			tx = core.Insert(name, value.NewTuple(value.Int(int64(tuplesPerRel+i)), value.Str("new")))
		} else {
			tx = core.Count(name) // full enumeration on the list representation
		}
		tx.Origin, tx.Seq = "bench", i
		txns = append(txns, tx)
	}
	return init, txns
}

// BenchmarkAblationLockingHeavyReads is Ablation C's second axis: with
// heavy read bodies across several relations, the pipelined engine's
// parallel futures overlap where the sequential engine cannot.
func BenchmarkAblationLockingHeavyReads(b *testing.B) {
	init, txns := heavyReadWorkload(8, 4000, 96)
	b.Run("functional-pipelined", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ApplyStreamPipelined(init, txns)
		}
	})
	b.Run("functional-sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ApplySequential(init, txns)
		}
	})
	b.Run("lockdb", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db := lockdb.FromDatabase(init)
			var wg sync.WaitGroup
			const workers = 8
			per := (len(txns) + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo := w * per
				hi := min(lo+per, len(txns))
				if lo >= hi {
					continue
				}
				wg.Add(1)
				go func(part []core.Transaction) {
					defer wg.Done()
					for _, tx := range part {
						db.Exec(tx)
					}
				}(txns[lo:hi])
			}
			wg.Wait()
		}
	})
}

// BenchmarkEngineThroughput measures the goroutine engine end to end
// through the public API, with concurrent submitters.
func BenchmarkEngineThroughput(b *testing.B) {
	for _, submitters := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("submitters=%d", submitters), func(b *testing.B) {
			store := funcdb.MustOpen(funcdb.WithRelations("R", "S", "T"))
			rels := []string{"R", "S", "T"}
			b.ResetTimer()
			var wg sync.WaitGroup
			per := b.N/submitters + 1
			for s := 0; s < submitters; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						tx := core.Insert(rels[(s+i)%3], value.NewTuple(value.Int(int64(s*1_000_000+i))))
						store.Submit(tx)
					}
				}(s)
			}
			wg.Wait()
			store.Barrier()
		})
	}
}

// BenchmarkDurableWrites measures the commit path with durability off and
// on: the cost of archiving the version stream from the post-commit
// observer. Keys wrap so the relation stays small and the log append —
// not the in-memory insert — dominates the durable variants.
func BenchmarkDurableWrites(b *testing.B) {
	cases := []struct {
		name string
		opts func(dir string) []funcdb.Option
	}{
		{"archive=off", func(string) []funcdb.Option { return nil }},
		{"archive=on", func(dir string) []funcdb.Option {
			return []funcdb.Option{funcdb.WithDurability(dir)}
		}},
		{"archive=on/snapshot=1024", func(dir string) []funcdb.Option {
			return []funcdb.Option{funcdb.WithDurability(dir, funcdb.SnapshotEvery(1024))}
		}},
		{"archive=fsync", func(dir string) []funcdb.Option {
			return []funcdb.Option{funcdb.WithDurability(dir, funcdb.SyncEveryWrite())}
		}},
		{"archive=fsync/group=2ms", func(dir string) []funcdb.Option {
			return []funcdb.Option{funcdb.WithDurability(dir,
				funcdb.SyncEveryWrite(), funcdb.GroupCommit(2*time.Millisecond))}
		}},
		{"archive=on/group=2ms", func(dir string) []funcdb.Option {
			return []funcdb.Option{funcdb.WithDurability(dir, funcdb.GroupCommit(2*time.Millisecond))}
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			opts := append(tc.opts(b.TempDir()),
				funcdb.WithRelations("R"), funcdb.WithRepresentation(funcdb.RepAVL))
			store := funcdb.MustOpen(opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := core.Insert("R", value.NewTuple(value.Int(int64(i%1024)), value.Str("v")))
				store.Submit(tx)
			}
			store.Barrier() // include the observer/archive drain
			b.StopTimer()
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRecovery measures OpenDir (newest snapshot + log replay) as a
// function of log length: the persistence hot path future PRs must keep
// honest.
func BenchmarkRecovery(b *testing.B) {
	for _, logLen := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("log=%d", logLen), func(b *testing.B) {
			dir := b.TempDir()
			store := funcdb.MustOpen(
				funcdb.WithDurability(dir),
				funcdb.WithRelations("R"), funcdb.WithRepresentation(funcdb.RepAVL))
			for i := 0; i < logLen; i++ {
				store.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
			}
			if err := store.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := funcdb.OpenDir(dir)
				if err != nil {
					b.Fatal(err)
				}
				if err := s.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReadFastPath measures read-only throughput while writers are
// continuously committing: the lock-free snapshot fast path against the
// serialized (mutex) read path on the same engine and workload. This is
// the acceptance number for the admission pipeline — reads must not queue
// behind the merge.
func BenchmarkReadFastPath(b *testing.B) {
	modes := []struct {
		name string
		opts []core.EngineOption
	}{
		{"fastpath", nil},
		{"mutex", []core.EngineOption{core.WithSerializedReads()}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			names := []string{"R", "W"}
			data := map[string][]value.Tuple{"W": nil}
			var tuples []value.Tuple
			for i := 0; i < 1024; i++ {
				tuples = append(tuples, value.NewTuple(value.Int(int64(i)), value.Str("v")))
			}
			data["R"] = tuples
			eng := core.NewEngine(database.FromData(relation.RepAVL, names, data), mode.opts...)

			stop := make(chan struct{})
			var wwg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wwg.Add(1)
				go func(w int) {
					defer wwg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						eng.Submit(core.Insert("W", value.NewTuple(value.Int(int64(w*1_000_000+i%4096)), value.Str("x"))))
					}
				}(w)
			}
			var key atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					k := key.Add(1) % 1024
					eng.Submit(core.Find("R", value.Int(k))).Force()
				}
			})
			b.StopTimer()
			close(stop)
			wwg.Wait()
			eng.Barrier()
		})
	}
}

// BenchmarkSubmitBatch measures merge arbitration under contention: each
// parallel worker commits 64-transaction batches to its own relation,
// either one Submit (one mutex acquisition) per transaction or one
// SubmitBatch per batch. The last future of each batch is forced, so
// outstanding work is bounded and the measured delta is admission cost.
func BenchmarkSubmitBatch(b *testing.B) {
	const batch = 64
	setup := func() (*core.Engine, []string) {
		names := make([]string, 16)
		for i := range names {
			names[i] = fmt.Sprintf("R%d", i)
		}
		return core.NewEngine(database.New(relation.RepAVL, names...)), names
	}
	mkTxns := func(rel string) []core.Transaction {
		txns := make([]core.Transaction, batch)
		for i := range txns {
			txns[i] = core.Insert(rel, value.NewTuple(value.Int(int64(i%1024)), value.Str("v")))
			txns[i].Origin, txns[i].Seq = "bench", i
		}
		return txns
	}
	b.Run("submit", func(b *testing.B) {
		eng, names := setup()
		var wid atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			txns := mkTxns(names[int(wid.Add(1))%len(names)])
			for pb.Next() {
				var last *funcdb.Future
				for _, tx := range txns {
					last = eng.Submit(tx)
				}
				last.Force()
			}
		})
		b.StopTimer()
		eng.Barrier()
		b.ReportMetric(float64(batch), "txns/op")
	})
	b.Run("batch", func(b *testing.B) {
		eng, names := setup()
		var wid atomic.Int64
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			txns := mkTxns(names[int(wid.Add(1))%len(names)])
			for pb.Next() {
				futs := eng.SubmitBatch(txns)
				futs[len(futs)-1].Force()
			}
		})
		b.StopTimer()
		eng.Barrier()
		b.ReportMetric(float64(batch), "txns/op")
	})
}

// laneBenchNames returns `writers` relation names that hash to distinct
// admission lanes under `lanes` lanes, so the disjoint workload is
// disjoint by construction in every engine configuration.
func laneBenchNames(writers, lanes int) []string {
	used := make(map[int]bool, writers)
	var names []string
	for i := 0; len(names) < writers; i++ {
		name := fmt.Sprintf("W%d", i)
		if l := core.LaneOf(name, lanes); !used[l] {
			used[l] = true
			names = append(names, name)
		}
	}
	return names
}

// benchLaneWriters drives `writers` concurrent submitters through an
// engine with the given lane count. Disjoint mode gives each writer its
// own relation (one lane per writer); crossing mode makes every
// transaction a two-relation custom spanning two lanes, paying the
// ordered multi-lane lock. Responses are forced every few submissions so
// outstanding work stays bounded and admission cost dominates.
func benchLaneWriters(b *testing.B, lanes int, crossing bool) {
	const writers = 8
	names := laneBenchNames(writers, writers)
	// List representation: an insert body is one O(1) prepend, so the
	// measured cost is the admission path itself, not the relation update.
	eng := core.NewEngine(database.New(relation.RepAVL, names...), core.WithLanes(lanes))
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N/writers + 1
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a, bb := names[w], names[(w+1)%writers]
			var last *funcdb.Future
			for i := 0; i < per; i++ {
				if crossing {
					k := int64(i % 1024)
					last = eng.Submit(core.Custom(func(ctx *eval.Ctx, db *funcdb.Database, after trace.TaskID) (core.Response, *funcdb.Database, trace.Op) {
						next, _, err := db.Insert(ctx, bb, value.NewTuple(value.Int(k), value.Str("x")), after)
						if err != nil {
							return core.Response{Err: err}, db, trace.Op{}
						}
						return core.Response{}, next, trace.Op{}
					}, []string{a}, []string{bb}))
				} else {
					last = eng.Submit(core.Insert(a, value.NewTuple(value.Int(int64(i%1024)), value.Str("v"))))
				}
				if i%32 == 31 {
					last.Force()
				}
			}
			last.Force()
		}(w)
	}
	wg.Wait()
	eng.Barrier()
	b.StopTimer()
	b.ReportMetric(float64(eng.Lanes()), "lanes")
}

// BenchmarkLanesDisjoint is the tentpole's acceptance number: concurrent
// writers whose relations hash to distinct admission lanes, under the
// single merge mutex (lanes=1) and the sharded merge point (lanes=8). With
// one lane every admission serializes; with eight, each writer owns a lane
// and admissions only meet at the snapshot CAS.
func BenchmarkLanesDisjoint(b *testing.B) {
	for _, lanes := range []int{1, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			benchLaneWriters(b, lanes, false)
		})
	}
}

// BenchmarkLanesCrossing is the counterweight: every transaction spans two
// lanes, so the sharded engine pays the ordered multi-lane lock on every
// commit. The gap between this and BenchmarkLanesDisjoint is the price of
// cross-lane transactions.
func BenchmarkLanesCrossing(b *testing.B) {
	for _, lanes := range []int{1, 8} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) {
			benchLaneWriters(b, lanes, true)
		})
	}
}

// BenchmarkPrepared measures the parser's share of the submission hot
// path: Exec (lex+parse per call) against a prepared statement (parse
// once, bind per call).
func BenchmarkPrepared(b *testing.B) {
	newStore := func(b *testing.B) *funcdb.Store {
		store := funcdb.MustOpen(funcdb.WithRelations("R"), funcdb.WithRepresentation(funcdb.RepAVL))
		for i := 0; i < 1024; i++ {
			store.Submit(core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v"))))
		}
		store.Barrier()
		return store
	}
	b.Run("exec", func(b *testing.B) {
		store := newStore(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := store.Exec(fmt.Sprintf("find %d in R", i%1024)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepared", func(b *testing.B) {
		store := newStore(b)
		find, err := store.Prepare("find ? in R")
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := find.Exec(funcdb.Int(int64(i % 1024))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRelationInsert measures one insert into a 1000-tuple relation
// per representation: the allocation story behind Section 2.2.
func BenchmarkRelationInsert(b *testing.B) {
	var tuples []value.Tuple
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, value.NewTuple(value.Int(int64(i*2)), value.Str("v")))
	}
	for _, rep := range []relation.Rep{relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged} {
		b.Run(rep.String(), func(b *testing.B) {
			rel := relation.FromTuples(rep, tuples)
			tu := value.NewTuple(value.Int(999), value.Str("new"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel.Insert(nil, tu, 0)
			}
		})
	}
}

// BenchmarkRelationFind measures lookups per representation.
func BenchmarkRelationFind(b *testing.B) {
	var tuples []value.Tuple
	for i := 0; i < 1000; i++ {
		tuples = append(tuples, value.NewTuple(value.Int(int64(i)), value.Str("v")))
	}
	for _, rep := range []relation.Rep{relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged} {
		b.Run(rep.String(), func(b *testing.B) {
			rel := relation.FromTuples(rep, tuples)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rel.Find(nil, value.Int(int64(i%1000)), 0)
			}
		})
	}
}
