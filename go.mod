module funcdb

go 1.24
