// Tests for the batched admission pipeline at the public surface:
// ExecBatch, prepared statements, and group-commit durability semantics.
package funcdb_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"funcdb"
)

func TestExecBatch(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	resps, err := store.ExecBatch([]string{
		`insert (1, "a") into R`,
		`insert (2, "b") into R`,
		"find 1 in R",
		"count R",
		"delete 1 from R",
		"find 1 in R",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 6 {
		t.Fatalf("got %d responses", len(resps))
	}
	if !resps[2].Found || resps[3].Count != 2 || resps[5].Found {
		t.Errorf("batch responses wrong: %+v", resps)
	}
	// Batch sequence numbers are consecutive and in submission order.
	for i := 1; i < len(resps); i++ {
		if resps[i].Seq != resps[i-1].Seq+1 {
			t.Errorf("non-consecutive seqs: %d then %d", resps[i-1].Seq, resps[i].Seq)
		}
	}
}

func TestExecBatchAllOrNothingTranslation(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	_, err := store.ExecBatch([]string{`insert (1, "a") into R`, "not a query"})
	if err == nil {
		t.Fatal("syntax error in batch not surfaced")
	}
	if got := store.Current().TotalTuples(); got != 0 {
		t.Errorf("failed batch still submitted %d writes", got)
	}
}

// TestExecBatchErrorIndex: a rejected batch reports WHICH statement
// failed, programmatically — errors.As recovers the index and query text,
// not just an error string.
func TestExecBatchErrorIndex(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	_, err := store.ExecBatch([]string{
		"count R",
		`insert (1, "a") into R`,
		"definitely not a query",
		"count R",
	})
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	var be *funcdb.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("ExecBatch error is %T, want *funcdb.BatchError", err)
	}
	if be.Index != 2 {
		t.Errorf("failing index = %d, want 2", be.Index)
	}
	if be.Query != "definitely not a query" {
		t.Errorf("failing query = %q", be.Query)
	}
	if be.Unwrap() == nil {
		t.Error("BatchError hides the underlying parse error")
	}
	// All-or-nothing still holds.
	if got := store.Current().TotalTuples(); got != 0 {
		t.Errorf("failed batch submitted %d writes", got)
	}

	// Prepared-statement batches report bind failures the same way.
	ins := mustPrepare(t, store, "insert (?, ?) into R")
	_, err = ins.ExecBatch(
		[]funcdb.Item{funcdb.Int(1), funcdb.Str("a")},
		[]funcdb.Item{funcdb.Int(2)}, // arity mismatch
	)
	if !errors.As(err, &be) || be.Index != 1 {
		t.Errorf("stmt batch error = %v (index %d), want BatchError at 1", err, be.Index)
	}
}

func TestExecBatchMatchesExec(t *testing.T) {
	queries := []string{
		"create X using avl",
		`insert (1, "a") into X`,
		`insert (2, "b") into X`,
		"range 1 2 in X",
		"scan X",
		"find 9 in X",
		"count X",
	}
	one := funcdb.MustOpen(funcdb.WithRelations("R"))
	var oneResps []funcdb.Response
	for _, q := range queries {
		r, err := one.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		oneResps = append(oneResps, r)
	}
	batch := funcdb.MustOpen(funcdb.WithRelations("R"))
	batchResps, err := batch.ExecBatch(queries)
	if err != nil {
		t.Fatal(err)
	}
	if !one.Current().Equal(batch.Current()) {
		t.Fatal("batched and one-at-a-time stores diverged")
	}
	for i := range queries {
		a, b := oneResps[i], batchResps[i]
		if a.Found != b.Found || a.Count != b.Count || !a.Tuple.Equal(b.Tuple) {
			t.Errorf("query %q: %+v vs %+v", queries[i], a, b)
		}
	}
}

func TestPreparedStatements(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("parts"))
	ins, err := store.Prepare("insert (?, ?) into parts")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 || ins.Query() != "insert (?, ?) into parts" {
		t.Fatalf("stmt metadata wrong: %d params", ins.NumParams())
	}
	for i := 0; i < 10; i++ {
		resp, err := ins.Exec(funcdb.Int(int64(i)), funcdb.Str(fmt.Sprintf("part-%d", i)))
		if err != nil || resp.Err != nil {
			t.Fatalf("prepared insert %d: %v %v", i, err, resp.Err)
		}
	}
	find, err := store.Prepare("find ? in parts")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := find.Exec(funcdb.Int(7))
	if err != nil || !resp.Found || !resp.Tuple.Field(1).Equal(funcdb.Str("part-7")) {
		t.Fatalf("prepared find: %v %+v", err, resp)
	}
	if _, err := find.Exec(); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestPreparedExecBatch(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	ins := mustPrepare(t, store, "insert (?, ?) into R")
	var sets [][]funcdb.Item
	for i := 0; i < 20; i++ {
		sets = append(sets, []funcdb.Item{funcdb.Int(int64(i)), funcdb.Str("v")})
	}
	resps, err := ins.ExecBatch(sets...)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 20 {
		t.Fatalf("got %d responses", len(resps))
	}
	if got := store.Current().TotalTuples(); got != 20 {
		t.Errorf("tuples = %d, want 20", got)
	}
	// All-or-nothing binding: one bad argument set submits nothing.
	before := store.Current().TotalTuples()
	if _, err := ins.ExecBatch([]funcdb.Item{funcdb.Int(99), funcdb.Str("v")}, []funcdb.Item{funcdb.Int(100)}); err == nil {
		t.Error("bad bind set accepted")
	}
	if got := store.Current().TotalTuples(); got != before {
		t.Errorf("failed batch submitted writes: %d -> %d", before, got)
	}
}

func mustPrepare(t *testing.T, s *funcdb.Store, q string) *funcdb.Stmt {
	t.Helper()
	st, err := s.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGroupCommitStore(t *testing.T) {
	dir := t.TempDir()
	store, err := funcdb.Open(
		funcdb.WithRelations("R"),
		funcdb.WithDurability(dir, funcdb.GroupCommit(time.Hour), funcdb.SyncEveryWrite()))
	if err != nil {
		t.Fatal(err)
	}
	ins := mustPrepare(t, store, "insert (?, ?) into R")
	for i := 0; i < 30; i++ {
		if _, err := ins.Exec(funcdb.Int(int64(i)), funcdb.Str("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Barrier flushes the pending batch: the durable listing must already
	// hold every commit even though the window never fired.
	infos, err := store.ArchivedVersions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 31 { // initial snapshot + 30 writes
		t.Fatalf("archived versions = %d, want 31", len(infos))
	}
	db, err := store.VersionAt(15)
	if err != nil {
		t.Fatal(err)
	}
	if db.TotalTuples() != 15 {
		t.Errorf("VersionAt(15) sees %d tuples", db.TotalTuples())
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the full stream was durable.
	re, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Current().TotalTuples(); got != 30 {
		t.Errorf("recovered %d tuples, want 30", got)
	}
}
