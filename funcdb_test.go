package funcdb_test

import (
	"strings"
	"sync"
	"testing"

	"funcdb"
)

func TestOpenAndExec(t *testing.T) {
	store, err := funcdb.Open(funcdb.WithRelations("R", "S"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := store.Exec(`insert (1, "a") into R`)
	if err != nil || resp.Err != nil {
		t.Fatalf("insert: %v %v", err, resp.Err)
	}
	resp, err = store.Exec("find 1 in R")
	if err != nil || !resp.Found {
		t.Fatalf("find: %v %+v", err, resp)
	}
	if _, err := store.Exec("not a query"); err == nil {
		t.Error("parse error not surfaced")
	}
	if got := store.Current().TotalTuples(); got != 1 {
		t.Errorf("tuples = %d", got)
	}
}

func TestOpenWithData(t *testing.T) {
	store := funcdb.MustOpen(
		funcdb.WithData("parts", funcdb.NewTuple(funcdb.Int(1), funcdb.Str("bolt"))),
		funcdb.WithRepresentation(funcdb.RepPaged),
	)
	resp, _ := store.Exec("find 1 in parts")
	if !resp.Found || resp.Tuple.Field(1).AsString() != "bolt" {
		t.Errorf("find = %+v", resp)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := funcdb.Open(funcdb.WithHistory(-2)); err == nil {
		t.Error("negative history accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustOpen did not panic")
		}
	}()
	funcdb.MustOpen(funcdb.WithHistory(-2))
}

func TestExecAsyncPipelines(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	var futures []*funcdb.Future
	for i := 0; i < 20; i++ {
		fut, err := store.ExecAsync(`insert ` + funcdb.Int(int64(i)).String() + ` into R`)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, fut)
	}
	for _, f := range futures {
		if resp := f.Force(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	resp, _ := store.Exec("count R")
	if resp.Count != 20 {
		t.Errorf("count = %d", resp.Count)
	}
}

func TestHistoryTimeTravel(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"), funcdb.WithHistory(0))
	for i := 0; i < 5; i++ {
		if _, err := store.Exec(`insert ` + funcdb.Int(int64(i)).String() + ` into R`); err != nil {
			t.Fatal(err)
		}
	}
	h := store.History()
	if h == nil {
		t.Fatal("history disabled")
	}
	if h.Len() != 6 { // initial + 5 writes
		t.Fatalf("history kept %d versions", h.Len())
	}
	v2, err := h.Version(2)
	if err != nil {
		t.Fatal(err)
	}
	if v2.TotalTuples() != 2 {
		t.Errorf("version 2 has %d tuples", v2.TotalTuples())
	}
	// Reads do not create versions.
	if _, err := store.Exec("count R"); err != nil {
		t.Fatal(err)
	}
	if h.Len() != 6 {
		t.Error("read created a version")
	}
}

func TestStatsAccumulate(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	for i := 0; i < 10; i++ {
		if _, err := store.Exec(`insert ` + funcdb.Int(int64(i)).String() + ` into R`); err != nil {
			t.Fatal(err)
		}
	}
	store.Barrier()
	stats := store.Stats()
	if stats.Created == 0 {
		t.Error("no creations recorded")
	}
	if stats.Fraction < 0 || stats.Fraction > 1 {
		t.Errorf("fraction = %v", stats.Fraction)
	}
}

func TestParse(t *testing.T) {
	tx, err := funcdb.Parse("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	if tx.Rel != "R" {
		t.Errorf("Rel = %q", tx.Rel)
	}
	if _, err := funcdb.Parse("bogus"); err == nil {
		t.Error("bad query parsed")
	}
}

func TestConcurrentStoreUse(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R", "S"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rel := []string{"R", "S"}[w%2]
			for i := 0; i < 50; i++ {
				k := funcdb.Int(int64(w*1000 + i)).String()
				if _, err := store.Exec("insert " + k + " into " + rel); err != nil {
					t.Errorf("insert: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	store.Barrier()
	if got := store.Current().TotalTuples(); got != 8*50 {
		t.Errorf("tuples = %d, want 400", got)
	}
}

func TestWithLanes(t *testing.T) {
	if _, err := funcdb.Open(funcdb.WithLanes(-1)); err == nil {
		t.Error("negative lane count accepted")
	}
	one := funcdb.MustOpen(funcdb.WithLanes(1), funcdb.WithRelations("R"))
	if got := one.Lanes(); got != 1 {
		t.Errorf("Lanes() = %d, want 1", got)
	}
	if def := funcdb.MustOpen(); def.Lanes() < 1 {
		t.Errorf("default Lanes() = %d", def.Lanes())
	}

	// The same queries through 1-lane and 8-lane stores (with history on,
	// so the sequencer feeds the version stream) agree on responses, final
	// contents, and the retained history length.
	queries := []string{
		"insert (1, \"a\") into R", "insert (2, \"b\") into S",
		"create T using avl", "insert (3, \"c\") into T",
		"find 1 in R", "delete 2 from S", "count S", "scan T",
	}
	run := func(lanes int) ([]funcdb.Response, *funcdb.Database, int) {
		store := funcdb.MustOpen(funcdb.WithLanes(lanes),
			funcdb.WithRelations("R", "S"), funcdb.WithHistory(0))
		var resps []funcdb.Response
		for _, q := range queries {
			r, err := store.Exec(q)
			if err != nil {
				t.Fatal(err)
			}
			resps = append(resps, r)
		}
		store.Barrier()
		return resps, store.Current(), store.History().Len()
	}
	r1, db1, h1 := run(1)
	r8, db8, h8 := run(8)
	if !db1.Equal(db8) || db1.Version() != db8.Version() {
		t.Fatalf("lane count changed the final database: v%d vs v%d", db1.Version(), db8.Version())
	}
	if h1 != h8 {
		t.Fatalf("history lengths differ: %d vs %d", h1, h8)
	}
	for i := range r1 {
		if r1[i].Found != r8[i].Found || r1[i].Count != r8[i].Count || (r1[i].Err == nil) != (r8[i].Err == nil) {
			t.Fatalf("query %d (%q) differs across lane counts", i, queries[i])
		}
	}
}

func TestOpenCluster(t *testing.T) {
	cluster, err := funcdb.OpenCluster(funcdb.ClusterConfig{
		Sites:     8,
		Hypercube: 3,
		Databases: map[string]*funcdb.Database{
			"main": funcdb.MustOpen(funcdb.WithRelations("R")).Current(),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	cl, err := cluster.NewClient(5, "tester")
	if err != nil {
		t.Fatal(err)
	}
	if resp := cl.Exec("main", "insert 1 into R"); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := cl.Exec("main", "find 1 in R"); !resp.Found {
		t.Error("cluster find failed")
	}
}

func TestOpenClusterBadHypercube(t *testing.T) {
	_, err := funcdb.OpenCluster(funcdb.ClusterConfig{
		Sites:     5,
		Hypercube: 3,
		Databases: map[string]*funcdb.Database{"m": funcdb.MustOpen().Current()},
	})
	if err == nil || !strings.Contains(err.Error(), "hypercube") {
		t.Errorf("err = %v", err)
	}
}
