// Package topo models the processing-element interconnection topologies of
// the paper's mode-2 simulations: the 8-node binary hypercube of Table II,
// the 27-node (3x3x3) Euclidean cube of Table III, and a few comparison
// topologies for the ablation studies.
//
// A topology exposes hop distances (used by the scheduler to charge
// communication delay for cross-PE dependencies), neighbor lists (used by
// the Rediflow-style pressure-diffusion placement policy of Keller & Lin
// [14]) and explicit routing paths (used by the network substrate and
// tested against the hop metric).
package topo

import "fmt"

// Topology describes a set of PEs numbered 0..Size-1 and their
// interconnection.
type Topology interface {
	// Name identifies the topology for reports, e.g. "hypercube(3)".
	Name() string
	// Size is the number of PEs.
	Size() int
	// Hops returns the minimum number of link traversals from a to b.
	Hops(a, b int) int
	// Neighbors returns the PEs directly linked to p.
	Neighbors(p int) []int
}

// Hypercube is a binary hypercube of the given dimension: 2^dim PEs, with
// PEs adjacent iff their indices differ in exactly one bit. Table II uses
// Hypercube(3) — the paper's "8-node binary hypercube".
type Hypercube struct {
	dim int
}

// NewHypercube builds a hypercube of dimension dim >= 0.
func NewHypercube(dim int) Hypercube {
	if dim < 0 || dim > 20 {
		panic(fmt.Sprintf("topo: hypercube dimension %d out of range", dim))
	}
	return Hypercube{dim: dim}
}

// Name implements Topology.
func (h Hypercube) Name() string { return fmt.Sprintf("hypercube(%d)", h.dim) }

// Size implements Topology.
func (h Hypercube) Size() int { return 1 << h.dim }

// Dim returns the hypercube's dimension.
func (h Hypercube) Dim() int { return h.dim }

// Hops is the Hamming distance between the PE indices.
func (h Hypercube) Hops(a, b int) int {
	h.check(a)
	h.check(b)
	x := uint(a ^ b)
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// Neighbors returns the PEs differing from p in one bit.
func (h Hypercube) Neighbors(p int) []int {
	h.check(p)
	out := make([]int, 0, h.dim)
	for d := 0; d < h.dim; d++ {
		out = append(out, p^(1<<d))
	}
	return out
}

func (h Hypercube) check(p int) {
	if p < 0 || p >= h.Size() {
		panic(fmt.Sprintf("topo: PE %d out of range for %s", p, h.Name()))
	}
}

// Mesh3D is an X x Y x Z Euclidean mesh (no wraparound): PEs adjacent iff
// their coordinates differ by one in exactly one axis. Table III uses
// Mesh3D(3,3,3) — the paper's "27 node (Euclidean) cube".
type Mesh3D struct {
	x, y, z int
}

// NewMesh3D builds a mesh with the given positive extents.
func NewMesh3D(x, y, z int) Mesh3D {
	if x <= 0 || y <= 0 || z <= 0 {
		panic(fmt.Sprintf("topo: mesh extents (%d,%d,%d) must be positive", x, y, z))
	}
	return Mesh3D{x: x, y: y, z: z}
}

// Name implements Topology.
func (m Mesh3D) Name() string { return fmt.Sprintf("mesh(%dx%dx%d)", m.x, m.y, m.z) }

// Size implements Topology.
func (m Mesh3D) Size() int { return m.x * m.y * m.z }

// Coords maps a PE index to its (x,y,z) coordinates.
func (m Mesh3D) Coords(p int) (int, int, int) {
	m.check(p)
	return p % m.x, (p / m.x) % m.y, p / (m.x * m.y)
}

// Index maps coordinates to a PE index.
func (m Mesh3D) Index(x, y, z int) int {
	if x < 0 || x >= m.x || y < 0 || y >= m.y || z < 0 || z >= m.z {
		panic(fmt.Sprintf("topo: coords (%d,%d,%d) out of range for %s", x, y, z, m.Name()))
	}
	return x + m.x*(y+m.y*z)
}

// Hops is the Manhattan distance between PE coordinates.
func (m Mesh3D) Hops(a, b int) int {
	ax, ay, az := m.Coords(a)
	bx, by, bz := m.Coords(b)
	return abs(ax-bx) + abs(ay-by) + abs(az-bz)
}

// Neighbors returns the axis-adjacent PEs.
func (m Mesh3D) Neighbors(p int) []int {
	x, y, z := m.Coords(p)
	out := make([]int, 0, 6)
	if x > 0 {
		out = append(out, m.Index(x-1, y, z))
	}
	if x < m.x-1 {
		out = append(out, m.Index(x+1, y, z))
	}
	if y > 0 {
		out = append(out, m.Index(x, y-1, z))
	}
	if y < m.y-1 {
		out = append(out, m.Index(x, y+1, z))
	}
	if z > 0 {
		out = append(out, m.Index(x, y, z-1))
	}
	if z < m.z-1 {
		out = append(out, m.Index(x, y, z+1))
	}
	return out
}

func (m Mesh3D) check(p int) {
	if p < 0 || p >= m.Size() {
		panic(fmt.Sprintf("topo: PE %d out of range for %s", p, m.Name()))
	}
}

// Ring is a cycle of n PEs; hop distance is the shorter way around.
type Ring struct {
	n int
}

// NewRing builds a ring of n >= 1 PEs.
func NewRing(n int) Ring {
	if n < 1 {
		panic("topo: ring size must be >= 1")
	}
	return Ring{n: n}
}

// Name implements Topology.
func (r Ring) Name() string { return fmt.Sprintf("ring(%d)", r.n) }

// Size implements Topology.
func (r Ring) Size() int { return r.n }

// Hops implements Topology.
func (r Ring) Hops(a, b int) int {
	r.check(a)
	r.check(b)
	d := abs(a - b)
	if other := r.n - d; other < d {
		return other
	}
	return d
}

// Neighbors implements Topology.
func (r Ring) Neighbors(p int) []int {
	r.check(p)
	if r.n == 1 {
		return nil
	}
	if r.n == 2 {
		return []int{1 - p}
	}
	return []int{(p + r.n - 1) % r.n, (p + 1) % r.n}
}

func (r Ring) check(p int) {
	if p < 0 || p >= r.n {
		panic(fmt.Sprintf("topo: PE %d out of range for %s", p, r.Name()))
	}
}

// Star has PE 0 as a hub connected to every other PE; leaves reach each
// other through the hub. It models the primary-site bottleneck in the
// extreme.
type Star struct {
	n int
}

// NewStar builds a star of n >= 1 PEs (PE 0 is the hub).
func NewStar(n int) Star {
	if n < 1 {
		panic("topo: star size must be >= 1")
	}
	return Star{n: n}
}

// Name implements Topology.
func (s Star) Name() string { return fmt.Sprintf("star(%d)", s.n) }

// Size implements Topology.
func (s Star) Size() int { return s.n }

// Hops implements Topology.
func (s Star) Hops(a, b int) int {
	s.check(a)
	s.check(b)
	switch {
	case a == b:
		return 0
	case a == 0 || b == 0:
		return 1
	default:
		return 2
	}
}

// Neighbors implements Topology.
func (s Star) Neighbors(p int) []int {
	s.check(p)
	if p == 0 {
		out := make([]int, 0, s.n-1)
		for i := 1; i < s.n; i++ {
			out = append(out, i)
		}
		return out
	}
	return []int{0}
}

func (s Star) check(p int) {
	if p < 0 || p >= s.n {
		panic(fmt.Sprintf("topo: PE %d out of range for %s", p, s.Name()))
	}
}

// Complete is a fully connected set of n PEs: every pair one hop apart. It
// is the "communication is cheap" end of the ablation spectrum.
type Complete struct {
	n int
}

// NewComplete builds a complete graph of n >= 1 PEs.
func NewComplete(n int) Complete {
	if n < 1 {
		panic("topo: complete size must be >= 1")
	}
	return Complete{n: n}
}

// Name implements Topology.
func (c Complete) Name() string { return fmt.Sprintf("complete(%d)", c.n) }

// Size implements Topology.
func (c Complete) Size() int { return c.n }

// Hops implements Topology.
func (c Complete) Hops(a, b int) int {
	c.check(a)
	c.check(b)
	if a == b {
		return 0
	}
	return 1
}

// Neighbors implements Topology.
func (c Complete) Neighbors(p int) []int {
	c.check(p)
	out := make([]int, 0, c.n-1)
	for i := 0; i < c.n; i++ {
		if i != p {
			out = append(out, i)
		}
	}
	return out
}

func (c Complete) check(p int) {
	if p < 0 || p >= c.n {
		panic(fmt.Sprintf("topo: PE %d out of range for %s", p, c.Name()))
	}
}

// Diameter returns the maximum hop distance over all PE pairs.
func Diameter(t Topology) int {
	d := 0
	for a := 0; a < t.Size(); a++ {
		for b := a + 1; b < t.Size(); b++ {
			if h := t.Hops(a, b); h > d {
				d = h
			}
		}
	}
	return d
}

// AvgHops returns the mean hop distance over distinct ordered PE pairs, or
// zero for a single PE.
func AvgHops(t Topology) float64 {
	n := t.Size()
	if n < 2 {
		return 0
	}
	sum, pairs := 0, 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				sum += t.Hops(a, b)
				pairs++
			}
		}
	}
	return float64(sum) / float64(pairs)
}

// Route returns a minimal path from a to b inclusive of both endpoints,
// using dimension-ordered routing for hypercubes, axis-ordered (XYZ)
// routing for meshes, and greedy neighbor descent otherwise.
func Route(t Topology, a, b int) []int {
	path := []int{a}
	cur := a
	for cur != b {
		next := -1
		bestHops := t.Hops(cur, b)
		for _, n := range t.Neighbors(cur) {
			if h := t.Hops(n, b); h < bestHops {
				next, bestHops = n, h
				// Taking the first improving neighbor yields
				// dimension-ordered routing for hypercubes (lowest differing
				// bit first) and X-then-Y-then-Z routing for meshes, because
				// Neighbors enumerates axes in order.
				break
			}
		}
		if next < 0 {
			panic(fmt.Sprintf("topo: no improving neighbor from %d toward %d in %s", cur, b, t.Name()))
		}
		path = append(path, next)
		cur = next
	}
	return path
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
