package topo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func allTopologies() []Topology {
	return []Topology{
		NewHypercube(0),
		NewHypercube(1),
		NewHypercube(3),
		NewMesh3D(3, 3, 3),
		NewMesh3D(1, 1, 1),
		NewMesh3D(4, 2, 1),
		NewRing(1),
		NewRing(2),
		NewRing(5),
		NewStar(1),
		NewStar(6),
		NewComplete(1),
		NewComplete(7),
	}
}

func TestSizes(t *testing.T) {
	tests := []struct {
		topo Topology
		want int
	}{
		{NewHypercube(3), 8},
		{NewHypercube(0), 1},
		{NewMesh3D(3, 3, 3), 27},
		{NewMesh3D(2, 3, 4), 24},
		{NewRing(5), 5},
		{NewStar(6), 6},
		{NewComplete(7), 7},
	}
	for _, tc := range tests {
		if got := tc.topo.Size(); got != tc.want {
			t.Errorf("%s Size = %d, want %d", tc.topo.Name(), got, tc.want)
		}
	}
}

func TestHypercubeHops(t *testing.T) {
	h := NewHypercube(3)
	tests := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 7, 3},
		{5, 6, 2}, // 101 ^ 110 = 011
		{3, 4, 3}, // 011 ^ 100 = 111
	}
	for _, tc := range tests {
		if got := h.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestHypercubeNeighbors(t *testing.T) {
	h := NewHypercube(3)
	n := h.Neighbors(5) // 101 -> 100, 111, 001
	want := map[int]bool{4: true, 7: true, 1: true}
	if len(n) != 3 {
		t.Fatalf("Neighbors(5) = %v", n)
	}
	for _, v := range n {
		if !want[v] {
			t.Errorf("unexpected neighbor %d", v)
		}
	}
}

func TestMeshCoordsRoundTrip(t *testing.T) {
	m := NewMesh3D(3, 4, 5)
	for p := 0; p < m.Size(); p++ {
		x, y, z := m.Coords(p)
		if got := m.Index(x, y, z); got != p {
			t.Errorf("Index(Coords(%d)) = %d", p, got)
		}
	}
}

func TestMeshHops(t *testing.T) {
	m := NewMesh3D(3, 3, 3)
	if got := m.Hops(m.Index(0, 0, 0), m.Index(2, 2, 2)); got != 6 {
		t.Errorf("corner-to-corner hops = %d, want 6", got)
	}
	if got := m.Hops(m.Index(1, 1, 1), m.Index(1, 1, 1)); got != 0 {
		t.Errorf("self hops = %d", got)
	}
	if got := m.Hops(m.Index(1, 1, 1), m.Index(2, 1, 1)); got != 1 {
		t.Errorf("adjacent hops = %d", got)
	}
}

func TestMeshNeighborCounts(t *testing.T) {
	m := NewMesh3D(3, 3, 3)
	// Corner has 3 neighbors, center has 6.
	if got := len(m.Neighbors(m.Index(0, 0, 0))); got != 3 {
		t.Errorf("corner degree = %d, want 3", got)
	}
	if got := len(m.Neighbors(m.Index(1, 1, 1))); got != 6 {
		t.Errorf("center degree = %d, want 6", got)
	}
	if got := len(m.Neighbors(m.Index(1, 0, 0))); got != 4 {
		t.Errorf("edge degree = %d, want 4", got)
	}
}

func TestRingHops(t *testing.T) {
	r := NewRing(6)
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 5, 1}, {1, 4, 3}, {5, 1, 2},
	}
	for _, tc := range tests {
		if got := r.Hops(tc.a, tc.b); got != tc.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestRingSmall(t *testing.T) {
	if n := NewRing(1).Neighbors(0); len(n) != 0 {
		t.Errorf("ring(1) neighbors = %v", n)
	}
	if n := NewRing(2).Neighbors(0); len(n) != 1 || n[0] != 1 {
		t.Errorf("ring(2) neighbors = %v", n)
	}
}

func TestStar(t *testing.T) {
	s := NewStar(5)
	if got := s.Hops(1, 2); got != 2 {
		t.Errorf("leaf-leaf hops = %d, want 2", got)
	}
	if got := s.Hops(0, 3); got != 1 {
		t.Errorf("hub-leaf hops = %d, want 1", got)
	}
	if got := len(s.Neighbors(0)); got != 4 {
		t.Errorf("hub degree = %d, want 4", got)
	}
	if got := s.Neighbors(2); len(got) != 1 || got[0] != 0 {
		t.Errorf("leaf neighbors = %v", got)
	}
}

func TestComplete(t *testing.T) {
	c := NewComplete(4)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			want := 1
			if a == b {
				want = 0
			}
			if got := c.Hops(a, b); got != want {
				t.Errorf("Hops(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
	if got := len(c.Neighbors(2)); got != 3 {
		t.Errorf("degree = %d", got)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		topo Topology
		want int
	}{
		{NewHypercube(3), 3},
		{NewMesh3D(3, 3, 3), 6},
		{NewRing(6), 3},
		{NewRing(5), 2},
		{NewStar(5), 2},
		{NewComplete(9), 1},
		{NewComplete(1), 0},
	}
	for _, tc := range tests {
		if got := Diameter(tc.topo); got != tc.want {
			t.Errorf("%s Diameter = %d, want %d", tc.topo.Name(), got, tc.want)
		}
	}
}

func TestAvgHopsBounds(t *testing.T) {
	for _, tp := range allTopologies() {
		avg := AvgHops(tp)
		d := Diameter(tp)
		if tp.Size() < 2 {
			if avg != 0 {
				t.Errorf("%s AvgHops = %v for single PE", tp.Name(), avg)
			}
			continue
		}
		if avg <= 0 || avg > float64(d) {
			t.Errorf("%s AvgHops = %v outside (0, %d]", tp.Name(), avg, d)
		}
	}
}

func TestHopsMetricProperties(t *testing.T) {
	// Identity, symmetry, triangle inequality on every topology.
	for _, tp := range allTopologies() {
		n := tp.Size()
		for a := 0; a < n; a++ {
			if tp.Hops(a, a) != 0 {
				t.Errorf("%s: Hops(%d,%d) != 0", tp.Name(), a, a)
			}
			for b := 0; b < n; b++ {
				if tp.Hops(a, b) != tp.Hops(b, a) {
					t.Errorf("%s: Hops not symmetric at (%d,%d)", tp.Name(), a, b)
				}
				if a != b && tp.Hops(a, b) < 1 {
					t.Errorf("%s: distinct PEs at distance %d", tp.Name(), tp.Hops(a, b))
				}
			}
		}
		// Triangle inequality on sampled triples (full cube is O(n^3)).
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 200 && n > 0; i++ {
			a, b, c := r.Intn(n), r.Intn(n), r.Intn(n)
			if tp.Hops(a, c) > tp.Hops(a, b)+tp.Hops(b, c) {
				t.Errorf("%s: triangle inequality violated (%d,%d,%d)", tp.Name(), a, b, c)
			}
		}
	}
}

func TestNeighborsConsistentWithHops(t *testing.T) {
	// Every neighbor is at distance exactly 1, and every PE at distance 1
	// appears in Neighbors.
	for _, tp := range allTopologies() {
		n := tp.Size()
		for p := 0; p < n; p++ {
			seen := map[int]bool{}
			for _, q := range tp.Neighbors(p) {
				if tp.Hops(p, q) != 1 {
					t.Errorf("%s: neighbor %d of %d at distance %d", tp.Name(), q, p, tp.Hops(p, q))
				}
				if q == p {
					t.Errorf("%s: PE %d is its own neighbor", tp.Name(), p)
				}
				if seen[q] {
					t.Errorf("%s: duplicate neighbor %d of %d", tp.Name(), q, p)
				}
				seen[q] = true
			}
			for q := 0; q < n; q++ {
				if tp.Hops(p, q) == 1 && !seen[q] {
					t.Errorf("%s: %d at distance 1 from %d but not a neighbor", tp.Name(), q, p)
				}
			}
		}
	}
}

func TestRouteLengthEqualsHops(t *testing.T) {
	for _, tp := range allTopologies() {
		n := tp.Size()
		r := rand.New(rand.NewSource(11))
		for i := 0; i < 100; i++ {
			a, b := r.Intn(n), r.Intn(n)
			path := Route(tp, a, b)
			if path[0] != a || path[len(path)-1] != b {
				t.Fatalf("%s: Route(%d,%d) endpoints wrong: %v", tp.Name(), a, b, path)
			}
			if got, want := len(path)-1, tp.Hops(a, b); got != want {
				t.Errorf("%s: Route(%d,%d) length %d, want %d", tp.Name(), a, b, got, want)
			}
			for j := 0; j+1 < len(path); j++ {
				if tp.Hops(path[j], path[j+1]) != 1 {
					t.Errorf("%s: route step %d->%d not a link", tp.Name(), path[j], path[j+1])
				}
			}
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"hypercube hops", func() { NewHypercube(2).Hops(0, 4) }},
		{"mesh coords", func() { NewMesh3D(2, 2, 2).Coords(8) }},
		{"mesh index", func() { NewMesh3D(2, 2, 2).Index(2, 0, 0) }},
		{"ring", func() { NewRing(3).Neighbors(3) }},
		{"star", func() { NewStar(3).Hops(-1, 0) }},
		{"complete", func() { NewComplete(3).Neighbors(5) }},
		{"bad hypercube", func() { NewHypercube(-1) }},
		{"bad mesh", func() { NewMesh3D(0, 1, 1) }},
		{"bad ring", func() { NewRing(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestPropertyHypercubeHopsIsPopcount(t *testing.T) {
	h := NewHypercube(6)
	f := func(a, b uint8) bool {
		x, y := int(a)%64, int(b)%64
		want := 0
		for v := uint(x ^ y); v != 0; v &= v - 1 {
			want++
		}
		return h.Hops(x, y) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
