package workload

import (
	"strings"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/relation"
)

func TestPaperSpecShape(t *testing.T) {
	for _, rels := range []int{1, 3, 5} {
		for _, pct := range []int{0, 4, 7, 14, 24, 38} {
			spec := DefaultPaper(rels, pct, 7)
			queries := spec.Queries()
			if len(queries) != 50 {
				t.Fatalf("%d rels %d%%: %d queries", rels, pct, len(queries))
			}
			inserts := 0
			for _, q := range queries {
				if strings.HasPrefix(q, "insert") {
					inserts++
				} else if !strings.HasPrefix(q, "find") {
					t.Fatalf("unexpected query %q", q)
				}
			}
			if want := 50 * pct / 100; inserts != want {
				t.Errorf("%d rels %d%%: %d inserts, want %d", rels, pct, inserts, want)
			}
			db := spec.InitialDatabase(relation.RepList)
			if db.TotalTuples() != 50 {
				t.Errorf("initial tuples = %d", db.TotalTuples())
			}
			if got := len(db.RelationNames()); got != rels {
				t.Errorf("relations = %d", got)
			}
		}
	}
}

func TestPaperSpecDeterministic(t *testing.T) {
	a := DefaultPaper(3, 14, 42).Queries()
	b := DefaultPaper(3, 14, 42).Queries()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := DefaultPaper(3, 14, 43).Queries()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestPaperWorkloadExecutes(t *testing.T) {
	// Every generated stream must run without errors: finds hit existing
	// keys (always found), inserts use fresh keys.
	spec := DefaultPaper(3, 24, 5)
	txns, err := spec.TransactionStream()
	if err != nil {
		t.Fatal(err)
	}
	responses, final := core.ApplySequential(spec.InitialDatabase(relation.RepList), txns)
	inserted := 0
	for i, r := range responses {
		if r.Err != nil {
			t.Fatalf("txn %d failed: %v", i, r.Err)
		}
		if r.Kind == core.KindFind && !r.Found {
			t.Errorf("find %d missed (%s)", i, txns[i].Query)
		}
		if r.Kind == core.KindInsert {
			inserted++
		}
	}
	if final.TotalTuples() != 50+inserted {
		t.Errorf("final tuples = %d, want %d", final.TotalTuples(), 50+inserted)
	}
}

func TestBankingStreams(t *testing.T) {
	streams := Banking(4, 10, 25, 9)
	if len(streams) != 4 {
		t.Fatalf("%d streams", len(streams))
	}
	for c, stream := range streams {
		if len(stream) != 25 {
			t.Fatalf("stream %d has %d ops", c, len(stream))
		}
		for i, tx := range stream {
			if tx.Seq != i {
				t.Errorf("stream %d op %d has seq %d", c, i, tx.Seq)
			}
			if tx.Rel != "accounts" {
				t.Errorf("unexpected relation %q", tx.Rel)
			}
			if err := tx.Validate(); err != nil {
				t.Error(err)
			}
		}
	}
	db := BankingInitial(relation.RepAVL, 10)
	if db.TotalTuples() != 10 {
		t.Errorf("initial accounts = %d", db.TotalTuples())
	}
}

func TestInventoryWorkload(t *testing.T) {
	txns := Inventory(100, 60, 3)
	if len(txns) != 60 {
		t.Fatalf("%d ops", len(txns))
	}
	db := InventoryInitial(100)
	responses, _ := core.ApplySequential(db, txns)
	for i, r := range responses {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	if rel, _ := db.RelationFast("parts"); rel.Rep() != relation.RepPaged {
		t.Error("inventory not paged")
	}
}
