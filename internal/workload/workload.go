// Package workload generates the transaction workloads of the paper's
// evaluation and of the example applications.
//
// Section 4: "An experiment was performed which processed 50 transactions
// on three versions of a database, with 1, 3, and 5 relations respectively,
// having a total of 50 tuples among them initially. The transactions were
// all either single-tuple inserts or finds, and the percentage of inserts
// was varied through 4, 7, 14, 24, and 38 percent."
//
// Generation is seeded and fully deterministic, so every table in
// EXPERIMENTS.md regenerates bit-identically.
package workload

import (
	"fmt"
	"math/rand"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/query"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// PaperSpec describes one cell of the paper's experiment grid.
type PaperSpec struct {
	// Transactions is the stream length (the paper uses 50).
	Transactions int
	// Tuples is the total initial tuple count across relations (50).
	Tuples int
	// Relations is the number of relations (1, 3 or 5).
	Relations int
	// UpdatePct is the percentage of transactions that are single-tuple
	// inserts; the rest are single-tuple finds ({0,4,7,14,24,38}).
	UpdatePct int
	// Seed drives all random choices.
	Seed int64
}

// DefaultPaper returns the paper's base configuration for a given relation
// count and update percentage.
func DefaultPaper(relations, updatePct int, seed int64) PaperSpec {
	return PaperSpec{
		Transactions: 50,
		Tuples:       50,
		Relations:    relations,
		UpdatePct:    updatePct,
		Seed:         seed,
	}
}

// RelationNames returns R1..Rn.
func (s PaperSpec) RelationNames() []string {
	names := make([]string, 0, s.Relations)
	for i := 1; i <= s.Relations; i++ {
		names = append(names, fmt.Sprintf("R%d", i))
	}
	return names
}

// keySpacing leaves gaps between initial keys so inserts land at uniformly
// distributed interior positions.
const keySpacing = 10

// InitialData distributes the initial tuples round-robin over the
// relations, keys spaced within each relation.
func (s PaperSpec) InitialData() map[string][]value.Tuple {
	names := s.RelationNames()
	data := make(map[string][]value.Tuple, len(names))
	counts := make([]int, len(names))
	for i := 0; i < s.Tuples; i++ {
		counts[i%len(names)]++
	}
	for ri, name := range names {
		tuples := make([]value.Tuple, 0, counts[ri])
		for k := 0; k < counts[ri]; k++ {
			key := int64((k + 1) * keySpacing)
			tuples = append(tuples, value.NewTuple(value.Int(key), value.Str(fmt.Sprintf("%s-t%d", name, k))))
		}
		data[name] = tuples
	}
	return data
}

// InitialDatabase builds version 0 with the given representation.
func (s PaperSpec) InitialDatabase(rep relation.Rep) *database.Database {
	return database.FromData(rep, s.RelationNames(), s.InitialData())
}

// Queries generates the symbolic query stream: the terminal input of the
// paper's model. Inserts use fresh interior keys; finds target existing
// keys of the chosen relation.
func (s PaperSpec) Queries() []string {
	r := rand.New(rand.NewSource(s.Seed))
	names := s.RelationNames()

	// Track the key population per relation as the stream mutates it.
	keys := make(map[string][]int64, len(names))
	for name, tuples := range s.InitialData() {
		for _, tu := range tuples {
			keys[name] = append(keys[name], tu.Key().AsInt())
		}
	}

	inserts := s.Transactions * s.UpdatePct / 100
	isInsert := make([]bool, s.Transactions)
	for _, i := range r.Perm(s.Transactions)[:inserts] {
		isInsert[i] = true
	}

	queries := make([]string, 0, s.Transactions)
	for i := 0; i < s.Transactions; i++ {
		rel := names[r.Intn(len(names))]
		if isInsert[i] {
			// A fresh key at a random interior position: base key plus a
			// unique non-multiple offset.
			pop := keys[rel]
			base := pop[r.Intn(len(pop))]
			key := base + 1 + int64(r.Intn(keySpacing-2))
			for contains(pop, key) {
				key++
			}
			keys[rel] = append(pop, key)
			queries = append(queries, fmt.Sprintf("insert (%d, \"new\") into %s", key, rel))
		} else {
			pop := keys[rel]
			key := pop[r.Intn(len(pop))]
			queries = append(queries, fmt.Sprintf("find %d in %s", key, rel))
		}
	}
	return queries
}

// Transactions translates the query stream and tags it with a single
// terminal origin, ready for apply-stream.
func (s PaperSpec) TransactionStream() ([]core.Transaction, error) {
	return query.TranslateAll("term", s.Queries())
}

func contains(xs []int64, v int64) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Banking generates nClients teller streams over one "accounts" relation:
// balance lookups and deposit upserts, for the serializability example and
// benches. It returns one stream per client.
func Banking(nClients, nAccounts, opsPerClient int, seed int64) [][]core.Transaction {
	r := rand.New(rand.NewSource(seed))
	streams := make([][]core.Transaction, nClients)
	for c := range streams {
		origin := fmt.Sprintf("teller%d", c)
		txns := make([]core.Transaction, 0, opsPerClient)
		for i := 0; i < opsPerClient; i++ {
			acct := int64(r.Intn(nAccounts))
			var tx core.Transaction
			if r.Intn(2) == 0 {
				tx = core.Find("accounts", value.Int(acct))
			} else {
				amount := int64(r.Intn(100))
				tx = core.Insert("accounts", value.NewTuple(value.Int(acct), value.Int(amount)))
			}
			tx.Origin, tx.Seq = origin, i
			txns = append(txns, tx)
		}
		streams[c] = txns
	}
	return streams
}

// BankingInitial builds the accounts relation with nAccounts zero balances.
func BankingInitial(rep relation.Rep, nAccounts int) *database.Database {
	tuples := make([]value.Tuple, 0, nAccounts)
	for i := 0; i < nAccounts; i++ {
		tuples = append(tuples, value.NewTuple(value.Int(int64(i)), value.Int(0)))
	}
	return database.FromData(rep, []string{"accounts"}, map[string][]value.Tuple{"accounts": tuples})
}

// Inventory generates a parts-catalog stream over a paged relation:
// lookups, restocks (upserts) and range scans, exercising the Figure 2-2
// page structure.
func Inventory(nParts, nOps int, seed int64) []core.Transaction {
	r := rand.New(rand.NewSource(seed))
	txns := make([]core.Transaction, 0, nOps)
	for i := 0; i < nOps; i++ {
		part := int64(r.Intn(nParts))
		var tx core.Transaction
		switch r.Intn(4) {
		case 0:
			tx = core.Insert("parts", value.NewTuple(value.Int(part), value.Str("part"), value.Int(int64(r.Intn(500)))))
		case 1, 2:
			tx = core.Find("parts", value.Int(part))
		default:
			lo := int64(r.Intn(nParts))
			hi := lo + int64(r.Intn(nParts/4+1))
			tx = core.Range("parts", value.Int(lo), value.Int(hi))
		}
		tx.Origin, tx.Seq = "clerk", i
		txns = append(txns, tx)
	}
	return txns
}

// InventoryInitial builds the parts relation (paged representation) with
// nParts entries.
func InventoryInitial(nParts int) *database.Database {
	tuples := make([]value.Tuple, 0, nParts)
	for i := 0; i < nParts; i++ {
		tuples = append(tuples, value.NewTuple(value.Int(int64(i)), value.Str("part"), value.Int(100)))
	}
	return database.FromData(relation.RepPaged, []string{"parts"}, map[string][]value.Tuple{"parts": tuples})
}
