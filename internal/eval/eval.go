// Package eval carries the per-execution context threaded through every
// operation of the functional engine: the optional dataflow tracer and the
// structure-sharing statistics.
//
// A nil *Ctx (or a Ctx with a nil Graph) runs the engine untraced at full
// speed; the persistent data structures behave identically either way. This
// is how the same code serves both the "runtime" engine used by examples
// and wall-clock benchmarks, and the "simulated" engine whose recorded task
// graph reproduces the paper's Rediflow measurements.
package eval

import (
	"sync/atomic"

	"funcdb/internal/trace"
)

// Stats counts structure-sharing effects during execution, supporting the
// paper's Section 2.2 claim that full logical reconstruction needs only
// partial physical reconstruction. Counters are atomic so the pipelined
// engine can update them from concurrent transactions.
type Stats struct {
	// Created counts cells/nodes/pages newly allocated by updates.
	Created atomic.Int64
	// Shared counts cells/nodes/pages reused (shared) from the previous
	// version instead of being copied.
	Shared atomic.Int64
	// Visited counts cells/nodes/pages inspected by searches.
	Visited atomic.Int64
}

// SharingFraction returns Shared / (Shared + Created): the fraction of the
// result structure that was reused from the input structure. It returns 0
// when nothing was allocated or shared.
func (s *Stats) SharingFraction() float64 {
	if s == nil {
		return 0
	}
	sh, cr := s.Shared.Load(), s.Created.Load()
	if sh+cr == 0 {
		return 0
	}
	return float64(sh) / float64(sh+cr)
}

// Reset zeroes all counters.
func (s *Stats) Reset() {
	if s == nil {
		return
	}
	s.Created.Store(0)
	s.Shared.Store(0)
	s.Visited.Store(0)
}

// Ctx is the execution context. The zero value (and nil) disable tracing
// and statistics.
type Ctx struct {
	// Graph, when non-nil, records one unit task per primitive operation.
	Graph *trace.Graph
	// Stats, when non-nil, accumulates sharing counters.
	Stats *Stats
}

// Task records a unit task on the context's graph (no-op when untraced).
func (c *Ctx) Task(kind trace.Kind, deps ...trace.TaskID) trace.TaskID {
	if c == nil {
		return trace.None
	}
	return c.Graph.Task(kind, deps...)
}

// Join returns a single task handle standing for all of deps (no-op when
// untraced).
func (c *Ctx) Join(deps ...trace.TaskID) trace.TaskID {
	if c == nil {
		return trace.None
	}
	return c.Graph.Join(deps...)
}

// Created notes n allocations.
func (c *Ctx) Created(n int64) {
	if c != nil && c.Stats != nil {
		c.Stats.Created.Add(n)
	}
}

// SharedN notes n reused structures.
func (c *Ctx) SharedN(n int64) {
	if c != nil && c.Stats != nil {
		c.Stats.Shared.Add(n)
	}
}

// VisitedN notes n inspected structures.
func (c *Ctx) VisitedN(n int64) {
	if c != nil && c.Stats != nil {
		c.Stats.Visited.Add(n)
	}
}
