package eval

import (
	"sync"
	"testing"

	"funcdb/internal/trace"
)

func TestNilCtxIsInert(t *testing.T) {
	var c *Ctx
	if id := c.Task(trace.KindVisit); id != trace.None {
		t.Errorf("nil ctx Task = %d", id)
	}
	if id := c.Join(1, 2); id != trace.None {
		t.Errorf("nil ctx Join = %d", id)
	}
	// Counter methods must not panic on nil.
	c.Created(1)
	c.SharedN(1)
	c.VisitedN(1)
}

func TestCtxWithoutGraphStillCounts(t *testing.T) {
	stats := &Stats{}
	c := &Ctx{Stats: stats}
	if id := c.Task(trace.KindVisit); id != trace.None {
		t.Errorf("graphless Task = %d", id)
	}
	c.Created(2)
	c.SharedN(3)
	c.VisitedN(5)
	if stats.Created.Load() != 2 || stats.Shared.Load() != 3 || stats.Visited.Load() != 5 {
		t.Errorf("counters = %d/%d/%d", stats.Created.Load(), stats.Shared.Load(), stats.Visited.Load())
	}
}

func TestCtxWithGraphRecords(t *testing.T) {
	g := trace.New()
	c := &Ctx{Graph: g}
	a := c.Task(trace.KindVisit)
	b := c.Task(trace.KindConstruct, a)
	if a == trace.None || b == trace.None {
		t.Error("tasks not recorded")
	}
	if got := c.Join(a, b); got == trace.None {
		t.Error("join not recorded")
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestSharingFraction(t *testing.T) {
	var nilStats *Stats
	if f := nilStats.SharingFraction(); f != 0 {
		t.Errorf("nil stats fraction = %v", f)
	}
	s := &Stats{}
	if f := s.SharingFraction(); f != 0 {
		t.Errorf("empty stats fraction = %v", f)
	}
	s.Created.Store(1)
	s.Shared.Store(3)
	if f := s.SharingFraction(); f != 0.75 {
		t.Errorf("fraction = %v, want 0.75", f)
	}
}

func TestStatsReset(t *testing.T) {
	s := &Stats{}
	s.Created.Store(5)
	s.Shared.Store(5)
	s.Visited.Store(5)
	s.Reset()
	if s.Created.Load() != 0 || s.Shared.Load() != 0 || s.Visited.Load() != 0 {
		t.Error("Reset incomplete")
	}
	var nilStats *Stats
	nilStats.Reset() // must not panic
}

func TestStatsConcurrentUpdates(t *testing.T) {
	stats := &Stats{}
	c := &Ctx{Stats: stats}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Created(1)
				c.SharedN(1)
				c.VisitedN(1)
			}
		}()
	}
	wg.Wait()
	if stats.Created.Load() != 8000 {
		t.Errorf("Created = %d", stats.Created.Load())
	}
}
