package primarysite

import (
	"strings"
	"sync"
	"testing"

	"funcdb/internal/database"
	"funcdb/internal/netsim"
	"funcdb/internal/relation"
	"funcdb/internal/topo"
	"funcdb/internal/value"
)

func mkCluster(t *testing.T, sites int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites: sites,
		Databases: map[string]*database.Database{
			"main": database.FromData(relation.RepList, []string{"R", "S"}, map[string][]value.Tuple{
				"R": {value.NewTuple(value.Int(1), value.Str("seed"))},
				"S": nil,
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestBadConfigs(t *testing.T) {
	if _, err := New(Config{Sites: 0}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := New(Config{Sites: 2}); err == nil {
		t.Error("no databases accepted")
	}
}

func TestClientQueryRoundTrip(t *testing.T) {
	c := mkCluster(t, 4)
	cl, err := c.NewClient(2, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if resp := cl.Exec("main", "find 1 in R"); !resp.Found {
		t.Errorf("find = %+v", resp)
	}
	if resp := cl.Exec("main", `insert (2, "x") into R`); resp.Err != nil {
		t.Errorf("insert = %+v", resp)
	}
	if resp := cl.Exec("main", "find 2 in R"); !resp.Found {
		t.Errorf("find after insert = %+v", resp)
	}
	if resp := cl.Exec("main", "count R"); resp.Count != 2 {
		t.Errorf("count = %+v", resp)
	}
}

func TestResponsesTaggedWithOrigin(t *testing.T) {
	c := mkCluster(t, 3)
	cl, _ := c.NewClient(1, "bob")
	r0 := cl.Exec("main", "find 1 in R")
	r1 := cl.Exec("main", "count R")
	if r0.Origin != "bob" || r0.Seq != 0 {
		t.Errorf("r0 tag = %s", r0.Tag())
	}
	if r1.Origin != "bob" || r1.Seq != 1 {
		t.Errorf("r1 tag = %s", r1.Tag())
	}
}

func TestRootDirectoryLookup(t *testing.T) {
	c, err := New(Config{
		Sites: 5,
		Databases: map[string]*database.Database{
			"inv":   database.New(relation.RepList, "parts"),
			"sales": database.New(relation.RepList, "orders"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()

	invSite, ok1 := c.PrimaryOf("inv")
	salesSite, ok2 := c.PrimaryOf("sales")
	if !ok1 || !ok2 {
		t.Fatal("primaries unassigned")
	}
	if invSite == salesSite {
		t.Errorf("both databases on site %d", invSite)
	}
	cl, _ := c.NewClient(0, "cli")
	if resp := cl.Exec("inv", "count parts"); resp.Err != nil {
		t.Errorf("inv query: %v", resp.Err)
	}
	if resp := cl.Exec("sales", "count orders"); resp.Err != nil {
		t.Errorf("sales query: %v", resp.Err)
	}
	if resp := cl.Exec("nope", "count x"); resp.Err == nil {
		t.Error("unknown database accepted")
	} else if !strings.Contains(resp.Err.Error(), "root directory") {
		t.Errorf("err = %v", resp.Err)
	}
}

func TestParseErrorsReturnToClient(t *testing.T) {
	c := mkCluster(t, 2)
	cl, _ := c.NewClient(0, "cli")
	if resp := cl.Exec("main", "gibberish"); resp.Err == nil {
		t.Error("parse error swallowed")
	}
}

func TestClientBadSite(t *testing.T) {
	c := mkCluster(t, 2)
	if _, err := c.NewClient(9, "x"); err == nil {
		t.Error("bad site accepted")
	}
}

func TestConcurrentClientsSerialize(t *testing.T) {
	// Many clients hammer one account-like key; the final value must be
	// one of the written values and every response well-formed (the
	// serializability smoke test at the cluster level; the strict
	// equivalence test lives in core).
	c := mkCluster(t, 4)
	const clients, each = 3, 25
	var wg sync.WaitGroup
	for cli := 0; cli < clients; cli++ {
		cl, err := c.NewClient(netsim.SiteID(1+cli%3), "cli")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *Client, base int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				k := base*1000 + i
				if resp := cl.Exec("main", "insert "+itoa(k)+" into S"); resp.Err != nil {
					t.Errorf("insert: %v", resp.Err)
				}
			}
		}(cl, cli)
	}
	wg.Wait()
	final, err := c.Current("main")
	if err != nil {
		t.Fatal(err)
	}
	rel, _ := final.RelationFast("S")
	if rel.Len() != clients*each {
		t.Errorf("S has %d tuples, want %d", rel.Len(), clients*each)
	}
}

func TestTopologyHopsCounted(t *testing.T) {
	c, err := New(Config{
		Sites:    8,
		Topology: topo.NewHypercube(3),
		Databases: map[string]*database.Database{
			"main": database.New(relation.RepList, "R"),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cl, _ := c.NewClient(7, "far")
	if resp := cl.Exec("main", "count R"); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	_, hops := c.Network().Stats()
	if hops == 0 {
		t.Error("no hops recorded on a hypercube cluster")
	}
}

func TestCurrentUnknownDatabase(t *testing.T) {
	c := mkCluster(t, 2)
	if _, err := c.Current("nope"); err == nil {
		t.Error("unknown database materialized")
	}
}

// itoa avoids strconv import noise in the test.
func itoa(v int) string {
	return value.Int(int64(v)).String()
}
