// Package primarysite implements the paper's primary-site distribution
// model (Section 3.1) on the netsim substrate: "at every instant of time,
// some site plays the role of the primary site, through which all
// transactions must pass for coordination, regardless of origin. This
// creates a bottleneck which is temporary, in the sense that once a
// transaction passes through the site, finer grain actions associated with
// it may be done concurrently."
//
// Each database is owned by one primary site running a core.Engine. The
// medium's arrival order at the primary *is* the merge; the engine's
// lenient cells recover the concurrency after the momentary serialization.
// Clients at any site submit symbolic queries; the primary translates,
// processes, and routes tagged responses back. A root directory site maps
// database names to their primaries — the paper's site-addressing
// suggestion ("it could consult the root directory for the overall database
// to obtain any necessary site values", Section 3.2).
package primarysite

import (
	"errors"
	"fmt"
	"sync"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/netsim"
	"funcdb/internal/query"
	"funcdb/internal/topo"
	"funcdb/internal/trace"
)

// DirectorySite is the fixed site hosting the root directory.
const DirectorySite netsim.SiteID = 0

// ErrNotPrimary reports a query routed to a site that is not (or no longer)
// the primary for its database — the signal clients use to refresh their
// cached root-directory answers after a failover.
var ErrNotPrimary = errors.New("not the primary site")

// queryReq is the payload of a "query" message.
type queryReq struct {
	DB     string
	Text   string
	Origin string
	Seq    int
}

// Config describes a cluster.
type Config struct {
	// Sites is the number of network sites (>= 1).
	Sites int
	// Topology optionally shapes hop accounting (defaults to complete).
	Topology topo.Topology
	// Databases assigns each database an initial version. Primaries are
	// assigned round-robin across sites starting after the directory site.
	Databases map[string]*database.Database
	// Stats optionally accumulates engine sharing statistics.
	Stats *eval.Stats
	// Replicas, when > 0, gives each database that many read replicas on
	// sites other than its primary. The primary ships each committed
	// version to the replicas (the functional model makes this a pointer
	// in-process: versions are immutable, so no copying or invalidation is
	// needed); clients route read-only queries to the nearest replica via
	// ExecRO. Reads are eventually consistent but each one observes a
	// single consistent version — the "replication transparency" the paper
	// lists as a future opportunity. Shipping materializes each committed
	// version, which serializes the primary's pipeline per write.
	Replicas int
}

// versionShip is the payload announcing a new committed version to a
// replica.
type versionShip struct {
	DB       string
	Version  int64
	Snapshot *database.Database
}

// Cluster is a running primary-site system.
type Cluster struct {
	net   *netsim.Network
	sites []*netsim.Site

	mu       sync.Mutex
	primary  map[string]netsim.SiteID   // root directory contents
	replicas map[string][]netsim.SiteID // read replicas per database
	engines  map[string]*core.Engine    // engines hosted on this process
	siteDone sync.WaitGroup
}

// New starts a cluster per cfg.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, errors.New("primarysite: need at least one site")
	}
	if len(cfg.Databases) == 0 {
		return nil, errors.New("primarysite: need at least one database")
	}
	var opts []netsim.Option
	if cfg.Topology != nil {
		opts = append(opts, netsim.WithTopology(cfg.Topology))
	}
	if cfg.Replicas >= cfg.Sites {
		return nil, fmt.Errorf("primarysite: %d replicas need more than %d sites", cfg.Replicas, cfg.Sites)
	}
	c := &Cluster{
		net:      netsim.NewNetwork(cfg.Sites, opts...),
		primary:  map[string]netsim.SiteID{},
		replicas: map[string][]netsim.SiteID{},
		engines:  map[string]*core.Engine{},
	}
	for i := 0; i < cfg.Sites; i++ {
		c.sites = append(c.sites, netsim.NewSite(c.net, netsim.SiteID(i)))
	}

	// Assign primaries round-robin (deterministically by sorted name), and
	// replicas on the sites following each primary.
	names := sortedKeys(cfg.Databases)
	for i, name := range names {
		site := netsim.SiteID(1+i) % netsim.SiteID(cfg.Sites)
		c.primary[name] = site
		for r := 1; r <= cfg.Replicas; r++ {
			c.replicas[name] = append(c.replicas[name],
				(site+netsim.SiteID(r))%netsim.SiteID(cfg.Sites))
		}
		var engOpts []core.EngineOption
		if cfg.Stats != nil {
			engOpts = append(engOpts, core.WithStats(cfg.Stats))
		}
		c.engines[name] = core.NewEngine(cfg.Databases[name], engOpts...)
	}

	// The root directory lives at the directory site as registered
	// functions, reachable via the RESULT-ON pragma.
	c.sites[DirectorySite].RegisterFunc("whereis", func(arg any) any {
		name, _ := arg.(string)
		c.mu.Lock()
		defer c.mu.Unlock()
		if site, ok := c.primary[name]; ok {
			return site
		}
		return netsim.SiteID(-1)
	})
	c.sites[DirectorySite].RegisterFunc("readset", func(arg any) any {
		// The sites able to answer read-only queries: primary first, then
		// replicas.
		name, _ := arg.(string)
		c.mu.Lock()
		defer c.mu.Unlock()
		site, ok := c.primary[name]
		if !ok {
			return []netsim.SiteID(nil)
		}
		return append([]netsim.SiteID{site}, c.replicas[name]...)
	})

	// Every site can receive queries for the databases it hosts. The
	// handler is the merge point: engine submission order is medium arrival
	// order. The reply is sent when the response future fills, so the site
	// loop never blocks on transaction bodies. Replica state is owned by
	// each site's handler closures and only ever touched from that site's
	// Run loop, so it needs no locking.
	for _, s := range c.sites {
		latest := map[string]*database.Database{}
		for name, reps := range c.replicas {
			for _, r := range reps {
				if r == s.MySite() {
					latest[name] = cfg.Databases[name]
				}
			}
		}

		s.Register("query", func(s *netsim.Site, m netsim.Message) any {
			req, ok := m.Payload.(queryReq)
			if !ok {
				return core.Response{Err: errors.New("primarysite: malformed query payload")}
			}
			eng := c.engineAt(req.DB, s.MySite())
			if eng == nil {
				return core.Response{
					Origin: req.Origin, Seq: req.Seq,
					Err: fmt.Errorf("primarysite: site %d, database %q: %w", s.MySite(), req.DB, ErrNotPrimary),
				}
			}
			tx, err := query.Translate(req.Text)
			if err != nil {
				return core.Response{Origin: req.Origin, Seq: req.Seq, Err: err}
			}
			tx.Origin, tx.Seq = req.Origin, req.Seq
			future := eng.Submit(tx)
			src, corr := m.Src, m.Corr
			ship := !tx.IsReadOnly() && len(c.replicaSitesOf(req.DB)) > 0
			go func() {
				resp := future.Force()
				if ship && resp.Err == nil {
					// Ship the committed version to the replicas. Versions
					// are immutable, so "shipping" is sharing a pointer —
					// the functional model's free replication.
					snap := eng.Current()
					for _, r := range c.replicaSitesOf(req.DB) {
						_ = c.net.Send(netsim.Message{
							Src: s.MySite(), Dst: r, Kind: "version",
							Payload: versionShip{DB: req.DB, Version: snap.Version(), Snapshot: snap},
						})
					}
				}
				_ = c.net.Send(netsim.Message{
					Src: s.MySite(), Dst: src, Kind: "reply", Corr: corr,
					Payload: resp,
				})
			}()
			return nil // reply sent asynchronously above
		})

		s.Register("version", func(_ *netsim.Site, m netsim.Message) any {
			ship, ok := m.Payload.(versionShip)
			if !ok {
				return nil
			}
			if cur, have := latest[ship.DB]; !have || cur.Version() < ship.Version {
				latest[ship.DB] = ship.Snapshot
			}
			return nil
		})

		s.Register("promote", func(s *netsim.Site, m netsim.Message) any {
			// Failover (Section 1's "failure transparency" future work):
			// this replica becomes the primary for the named database,
			// building a fresh engine from its latest shipped version.
			//
			// Because the old primary shipped each version *before*
			// acknowledging the corresponding write, and inboxes are FIFO,
			// the promote message (sent after the failure was observed)
			// arrives behind every shipped version: no acknowledged write
			// is lost. In-flight unacknowledged requests at the failed
			// primary are simply retried by clients (at-most-once at the
			// old primary, whose engine is discarded).
			name, ok := m.Payload.(string)
			if !ok {
				return false
			}
			snap, have := latest[name]
			if !have {
				return false
			}
			eng := core.NewEngine(snap)
			c.mu.Lock()
			c.primary[name] = s.MySite()
			c.engines[name] = eng
			// Drop this site from the replica set; remaining replicas keep
			// receiving shipped versions from the new primary.
			reps := c.replicas[name][:0]
			for _, r := range c.replicas[name] {
				if r != s.MySite() {
					reps = append(reps, r)
				}
			}
			c.replicas[name] = reps
			c.mu.Unlock()
			return true
		})

		s.Register("roquery", func(s *netsim.Site, m netsim.Message) any {
			req, ok := m.Payload.(queryReq)
			if !ok {
				return core.Response{Err: errors.New("primarysite: malformed roquery payload")}
			}
			snap, have := latest[req.DB]
			if !have {
				return core.Response{
					Origin: req.Origin, Seq: req.Seq,
					Err: fmt.Errorf("primarysite: site %d holds no replica of %q", s.MySite(), req.DB),
				}
			}
			tx, err := query.Translate(req.Text)
			if err != nil {
				return core.Response{Origin: req.Origin, Seq: req.Seq, Err: err}
			}
			if !tx.IsReadOnly() {
				return core.Response{
					Origin: req.Origin, Seq: req.Seq,
					Err: errors.New("primarysite: replicas answer read-only queries; route writes to the primary"),
				}
			}
			tx.Origin, tx.Seq = req.Origin, req.Seq
			resp, _, _ := tx.Apply(nil, snap, trace.None)
			resp.Version = snap.Version()
			return resp
		})
	}

	for _, s := range c.sites {
		s := s
		c.siteDone.Add(1)
		go func() {
			defer c.siteDone.Done()
			s.Run()
		}()
	}
	return c, nil
}

// engineAt returns the engine for name if site is its primary.
func (c *Cluster) engineAt(name string, site netsim.SiteID) *core.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.primary[name] != site {
		return nil
	}
	return c.engines[name]
}

// replicaSitesOf returns the replica sites of a database.
func (c *Cluster) replicaSitesOf(name string) []netsim.SiteID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]netsim.SiteID(nil), c.replicas[name]...)
}

// ReplicasOf returns the replica sites of a database.
func (c *Cluster) ReplicasOf(name string) []netsim.SiteID { return c.replicaSitesOf(name) }

// PrimaryOf returns the primary site for a database.
func (c *Cluster) PrimaryOf(name string) (netsim.SiteID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.primary[name]
	return s, ok
}

// FailPrimary simulates the loss of a database's primary site and promotes
// its first replica. The failed engine is discarded (its unacknowledged
// in-flight work with it — clients retry); every acknowledged write is
// already at the replica because versions ship before acknowledgements.
// It returns the new primary. Databases without replicas cannot fail over.
func (c *Cluster) FailPrimary(name string) (netsim.SiteID, error) {
	c.mu.Lock()
	old, ok := c.primary[name]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("primarysite: unknown database %q", name)
	}
	reps := append([]netsim.SiteID(nil), c.replicas[name]...)
	if len(reps) == 0 {
		c.mu.Unlock()
		return 0, fmt.Errorf("primarysite: database %q has no replicas to promote", name)
	}
	// Discard the failed engine so the old primary rejects further queries
	// ("is not the primary") rather than serving a forked history.
	delete(c.engines, name)
	c.primary[name] = -1 // no primary until the promotion lands
	c.mu.Unlock()

	promoted := c.sites[old] // any live site can issue the promote message
	v := promoted.Call(reps[0], "promote", name)
	if okResp, _ := v.Force().(bool); !okResp {
		return 0, fmt.Errorf("primarysite: promotion of %q at site %d failed", name, reps[0])
	}
	return reps[0], nil
}

// Network exposes the medium (for stats and taps).
func (c *Cluster) Network() *netsim.Network { return c.net }

// Current materializes the present version of a database.
func (c *Cluster) Current(name string) (*database.Database, error) {
	c.mu.Lock()
	eng, ok := c.engines[name]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("primarysite: unknown database %q", name)
	}
	return eng.Current(), nil
}

// Shutdown stops all sites and the medium.
func (c *Cluster) Shutdown() {
	for _, name := range sortedKeys(c.engines) {
		c.engines[name].Barrier()
	}
	for _, s := range c.sites {
		s.Stop()
	}
	c.siteDone.Wait()
	c.net.Close()
}

// Client submits queries from one site. Concurrent use is safe; sequence
// numbers serialize per client.
type Client struct {
	cluster *Cluster
	site    *netsim.Site
	origin  string

	mu    sync.Mutex
	seq   int
	where map[string]netsim.SiteID // cached root-directory answers
}

// NewClient creates a client homed at the given site.
func (c *Cluster) NewClient(site netsim.SiteID, origin string) (*Client, error) {
	if int(site) < 0 || int(site) >= len(c.sites) {
		return nil, fmt.Errorf("primarysite: no site %d", site)
	}
	return &Client{
		cluster: c,
		site:    c.sites[site],
		origin:  origin,
		where:   map[string]netsim.SiteID{},
	}, nil
}

// Site returns the client's home site (the MY-SITE pragma).
func (cl *Client) Site() netsim.SiteID { return cl.site.MySite() }

// lookup resolves a database's primary via the root directory, caching the
// answer.
func (cl *Client) lookup(db string) (netsim.SiteID, error) {
	cl.mu.Lock()
	if s, ok := cl.where[db]; ok {
		cl.mu.Unlock()
		return s, nil
	}
	cl.mu.Unlock()

	v := cl.site.ResultOn(DirectorySite, "whereis", db).Force()
	site, ok := v.(netsim.SiteID)
	if !ok || site < 0 {
		return 0, fmt.Errorf("primarysite: database %q not in root directory", db)
	}
	cl.mu.Lock()
	cl.where[db] = site
	cl.mu.Unlock()
	return site, nil
}

// ExecAsync submits a symbolic query and returns a future for its tagged
// response.
func (cl *Client) ExecAsync(db, text string) *lenient.Cell[core.Response] {
	primary, err := cl.lookup(db)
	if err != nil {
		return lenient.Ready(core.Response{Origin: cl.origin, Err: err})
	}
	cl.mu.Lock()
	seq := cl.seq
	cl.seq++
	cl.mu.Unlock()

	raw := cl.site.Call(primary, "query", queryReq{DB: db, Text: text, Origin: cl.origin, Seq: seq})
	return lenient.Map(raw, func(v any) core.Response {
		if resp, ok := v.(core.Response); ok {
			return resp
		}
		if err, ok := v.(error); ok {
			return core.Response{Origin: cl.origin, Seq: seq, Err: err}
		}
		return core.Response{Origin: cl.origin, Seq: seq, Err: errors.New("primarysite: malformed reply")}
	})
}

// Exec submits a query and waits for the response. A query bounced with
// ErrNotPrimary (stale routing after a failover) refreshes the cached root
// directory entry and retries once.
func (cl *Client) Exec(db, text string) core.Response {
	resp := cl.ExecAsync(db, text).Force()
	if errors.Is(resp.Err, ErrNotPrimary) {
		cl.forget(db)
		resp = cl.ExecAsync(db, text).Force()
	}
	return resp
}

// forget drops a cached root-directory answer.
func (cl *Client) forget(db string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	delete(cl.where, db)
}

// ExecRO routes a read-only query to the nearest read site (replica or
// primary, by hop distance from the client). The answer is a consistent
// snapshot but may trail the primary (eventual consistency); the response's
// Version field reports the version observed. Writes and non-read queries
// return an error.
func (cl *Client) ExecRO(db, text string) core.Response {
	tx, err := query.Translate(text)
	if err != nil {
		return core.Response{Origin: cl.origin, Err: err}
	}
	if !tx.IsReadOnly() {
		return core.Response{Origin: cl.origin, Err: errors.New("primarysite: ExecRO requires a read-only query")}
	}
	target, isPrimary, err := cl.nearestReadSite(db)
	if err != nil {
		return core.Response{Origin: cl.origin, Err: err}
	}
	if isPrimary {
		return cl.Exec(db, text)
	}
	cl.mu.Lock()
	seq := cl.seq
	cl.seq++
	cl.mu.Unlock()
	raw := cl.site.Call(target, "roquery", queryReq{DB: db, Text: text, Origin: cl.origin, Seq: seq})
	v := raw.Force()
	if resp, ok := v.(core.Response); ok {
		return resp
	}
	return core.Response{Origin: cl.origin, Seq: seq, Err: errors.New("primarysite: malformed replica reply")}
}

// nearestReadSite picks the closest site able to answer reads for db,
// reporting whether it is the primary.
func (cl *Client) nearestReadSite(db string) (netsim.SiteID, bool, error) {
	v := cl.site.ResultOn(DirectorySite, "readset", db).Force()
	sites, ok := v.([]netsim.SiteID)
	if !ok || len(sites) == 0 {
		return 0, false, fmt.Errorf("primarysite: database %q not in root directory", db)
	}
	net := cl.cluster.net
	best, bestHops := sites[0], net.Hops(cl.site.MySite(), sites[0])
	for _, s := range sites[1:] {
		if h := net.Hops(cl.site.MySite(), s); h < bestHops {
			best, bestHops = s, h
		}
	}
	return best, best == sites[0], nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// insertion sort: tiny maps
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
