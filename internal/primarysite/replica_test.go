package primarysite

import (
	"strings"
	"testing"

	"funcdb/internal/database"
	"funcdb/internal/relation"
	"funcdb/internal/topo"
	"funcdb/internal/value"
)

func mkReplicated(t *testing.T, sites, replicas int) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites:    sites,
		Topology: topo.NewHypercube(3),
		Replicas: replicas,
		Databases: map[string]*database.Database{
			"main": database.FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{
				"R": {value.NewTuple(value.Int(1), value.Str("seed"))},
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestReplicaAssignment(t *testing.T) {
	c := mkReplicated(t, 8, 2)
	primary, _ := c.PrimaryOf("main")
	reps := c.ReplicasOf("main")
	if len(reps) != 2 {
		t.Fatalf("replicas = %v", reps)
	}
	for _, r := range reps {
		if r == primary {
			t.Error("replica placed on the primary")
		}
	}
}

func TestTooManyReplicasRejected(t *testing.T) {
	_, err := New(Config{
		Sites:    2,
		Replicas: 2,
		Databases: map[string]*database.Database{
			"m": database.New(relation.RepList, "R"),
		},
	})
	if err == nil {
		t.Error("replicas >= sites accepted")
	}
}

func TestReplicaServesInitialVersion(t *testing.T) {
	c := mkReplicated(t, 8, 2)
	reps := c.ReplicasOf("main")
	// A client colocated with a replica reads locally without any write
	// having happened.
	cl, err := c.NewClient(reps[0], "reader")
	if err != nil {
		t.Fatal(err)
	}
	resp := cl.ExecRO("main", "find 1 in R")
	if resp.Err != nil || !resp.Found {
		t.Fatalf("replica read = %+v", resp)
	}
}

func TestReadYourWritesThroughMediumOrder(t *testing.T) {
	// The primary ships versions before replying, and inboxes are FIFO, so
	// a client that saw its write acknowledged reads its own write from any
	// replica reached through the medium afterwards.
	c := mkReplicated(t, 8, 2)
	reps := c.ReplicasOf("main")
	cl, err := c.NewClient(reps[0], "writer")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		k := value.Int(int64(100 + i)).String()
		if resp := cl.Exec("main", "insert "+k+" into R"); resp.Err != nil {
			t.Fatal(resp.Err)
		}
		resp := cl.ExecRO("main", "find "+k+" in R")
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		if !resp.Found {
			t.Fatalf("write %d not visible at replica", i)
		}
		if resp.Version == 0 {
			t.Error("replica response missing version")
		}
	}
}

func TestExecRORejectsWrites(t *testing.T) {
	c := mkReplicated(t, 8, 1)
	cl, _ := c.NewClient(3, "cli")
	resp := cl.ExecRO("main", "insert 9 into R")
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "read-only") {
		t.Errorf("err = %v", resp.Err)
	}
	if resp := cl.ExecRO("main", "bad query"); resp.Err == nil {
		t.Error("parse error swallowed")
	}
	if resp := cl.ExecRO("nope", "count R"); resp.Err == nil {
		t.Error("unknown database accepted")
	}
}

func TestExecROWithoutReplicasFallsBackToPrimary(t *testing.T) {
	c := mkCluster(t, 4) // no replicas
	cl, _ := c.NewClient(2, "cli")
	resp := cl.ExecRO("main", "find 1 in R")
	if resp.Err != nil || !resp.Found {
		t.Fatalf("fallback read = %+v", resp)
	}
}

func TestNearestReadSitePrefersColocatedReplica(t *testing.T) {
	c := mkReplicated(t, 8, 2)
	reps := c.ReplicasOf("main")
	cl, err := c.NewClient(reps[1], "near")
	if err != nil {
		t.Fatal(err)
	}
	target, isPrimary, err := cl.nearestReadSite("main")
	if err != nil {
		t.Fatal(err)
	}
	if isPrimary {
		t.Error("colocated replica not chosen over remote primary")
	}
	if target != reps[1] {
		t.Errorf("nearest = %d, want %d", target, reps[1])
	}
}

func TestFailoverLosesNoAcknowledgedWrite(t *testing.T) {
	// Failure transparency: versions ship before acknowledgements, so after
	// promoting a replica, every write the client saw acknowledged is
	// present in the new primary.
	c := mkReplicated(t, 8, 2)
	oldPrimary, _ := c.PrimaryOf("main")
	cl, err := c.NewClient(5, "writer")
	if err != nil {
		t.Fatal(err)
	}
	const writes = 25
	for i := 0; i < writes; i++ {
		k := value.Int(int64(1000 + i)).String()
		if resp := cl.Exec("main", "insert "+k+" into R"); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}

	newPrimary, err := c.FailPrimary("main")
	if err != nil {
		t.Fatal(err)
	}
	if newPrimary == oldPrimary {
		t.Fatal("promotion did not move the primary")
	}
	if got, _ := c.PrimaryOf("main"); got != newPrimary {
		t.Errorf("root directory not updated: %d", got)
	}

	// The client's cached route is stale; Exec must recover transparently.
	for i := 0; i < writes; i++ {
		k := value.Int(int64(1000 + i)).String()
		resp := cl.Exec("main", "find "+k+" in R")
		if resp.Err != nil {
			t.Fatalf("post-failover find: %v", resp.Err)
		}
		if !resp.Found {
			t.Fatalf("acknowledged write %d lost in failover", i)
		}
	}
	// And the new primary accepts writes.
	if resp := cl.Exec("main", "insert 9999 into R"); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := cl.Exec("main", "find 9999 in R"); !resp.Found {
		t.Error("write to promoted primary lost")
	}
}

func TestFailoverWithoutReplicasFails(t *testing.T) {
	c := mkCluster(t, 3)
	if _, err := c.FailPrimary("main"); err == nil {
		t.Error("failover without replicas succeeded")
	}
	if _, err := c.FailPrimary("nope"); err == nil {
		t.Error("failover of unknown database succeeded")
	}
}

func TestReplicaReadsAreConsistentSnapshots(t *testing.T) {
	// Even if stale, a replica scan never observes a torn state: the count
	// equals the tuple count of a single version.
	c := mkReplicated(t, 8, 1)
	// Home the client on the replica so ExecRO resolves there rather than
	// falling back to the (equally near) primary.
	cl, _ := c.NewClient(c.ReplicasOf("main")[0], "cli")
	for i := 0; i < 20; i++ {
		k := value.Int(int64(200 + i)).String()
		if resp := cl.Exec("main", "insert "+k+" into R"); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	resp := cl.ExecRO("main", "scan R")
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp.Count != len(resp.Tuples) {
		t.Error("torn scan")
	}
	// The version stream: scanning version v must show exactly v tuples
	// beyond the seed... (each insert adds one, version increments by one).
	want := int(resp.Version) + 1 // seed tuple + one per committed write
	if resp.Count != want {
		t.Errorf("scan of version %d has %d tuples, want %d", resp.Version, resp.Count, want)
	}
}
