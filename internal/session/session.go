// Package session is the transport-agnostic execution layer between a
// client (a REPL, a network connection, the public Store API) and the
// admission pipeline. One Session owns what used to be duplicated between
// funcdb.Store's Exec methods and cmd/fdbrepl:
//
//   - a prepared-statement cache (query.StmtCache): each distinct query
//     text is lexed and parsed once per session scope, and a committed
//     `create` invalidates cached statements touching the new relation;
//   - origin/sequence tagging: every statement the session admits carries
//     the session's origin and a dense per-session sequence number, so a
//     connection's response stream is deterministic regardless of how
//     other sessions interleave with it;
//   - pipelined submission: Queue turns a statement into a response
//     future immediately without submitting it, and Flush admits every
//     queued statement in ONE batched arbitration (Submitter.SubmitTagged
//     → Engine.SubmitBatch), so one network read's worth of requests
//     becomes one lane-split admission. Forcing any queued future flushes
//     first; responses are forced in submission order by the callers that
//     need ordering (the wire server, ExecBatch).
//
// The session is the paper's stream-merge client made explicit: it
// assembles a tagged transaction stream and hands it to the merge point
// in batches, instead of one call at a time.
package session

import (
	"fmt"
	"sync"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/lenient"
	"funcdb/internal/metrics"
	"funcdb/internal/query"
	"funcdb/internal/reqtrace"
)

// Future is an unresolved response, as the engine returns it.
type Future = lenient.Cell[core.Response]

// Submitter is the admission surface a session executes against: a batch
// of fully tagged transactions admitted in one merge arbitration, with
// response futures in submission order. funcdb.Store implements it over
// the sharded-lane engine; tests implement it in-memory.
//
// SubmitTagged must NOT retain the txs slice past its return: the
// session reuses it for the next flush (transactions themselves are
// values — copying an element is fine, keeping the slice is not). Every
// in-tree implementation either consumes the batch synchronously or
// copies what it defers.
type Submitter interface {
	SubmitTagged(txs []core.Transaction) []*Future
}

// BatchError reports which statement of a batch failed to translate or
// bind. Batches are all-or-nothing: nothing was submitted.
type BatchError struct {
	// Index is the position of the failing statement within the batch.
	Index int
	// Query is the failing statement's source text.
	Query string
	// Err is the underlying translation or bind error.
	Err error
}

// Error renders the failure with its batch position.
func (e *BatchError) Error() string { return fmt.Sprintf("batch query %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *BatchError) Unwrap() error { return e.Err }

// Option configures New.
type Option func(*Session)

// WithOrigin sets the tag attached to the session's transactions (filled
// in only when a queued transaction carries none).
func WithOrigin(origin string) Option {
	return func(s *Session) { s.origin = origin }
}

// WithSeqs supplies the sequence allocator: next(n) must return the first
// of n consecutive fresh sequence numbers. The default is a private
// per-session counter starting at 0; funcdb.Store shares its store-wide
// counter so transaction-level Submit and session-level Exec draw from
// one tag space.
func WithSeqs(next func(n int) int) Option {
	return func(s *Session) { s.nextSeqs = next }
}

// WithMetrics records flush metrics into m — statement counts and the
// per-flush pipeline depth. Nil (the default) records nothing. Sessions
// over one store conventionally share one *metrics.Session, so the depth
// histogram describes the store's whole admission feed.
func WithMetrics(m *metrics.Session) Option {
	return func(s *Session) { s.metrics = m }
}

// WithCache shares a statement cache (e.g. one store-wide cache across
// many sessions). The default gives the session a private cache.
func WithCache(c *query.StmtCache) Option {
	return func(s *Session) { s.cache = c }
}

// pendingStmt is one queued-but-not-yet-admitted statement. fut is nil
// until the flush that admits it. tagged marks a statement whose
// Origin/Seq were assigned elsewhere (a forwarded cluster statement):
// flush must submit it verbatim instead of drawing from this session's
// tag space, so the response carries the tag the originating client
// expects.
type pendingStmt struct {
	tx     core.Transaction
	fut    *Future
	tagged bool
	// at is the enqueue instant, read only when the transaction carries a
	// trace handle (an untraced statement never touches the clock here):
	// the flush turns it into the session-queue span.
	at time.Time
}

// Session is one client's execution context. Safe for concurrent use;
// statements queued concurrently flush together in queue order.
type Session struct {
	sub      Submitter
	origin   string
	nextSeqs func(n int) int
	cache    *query.StmtCache
	metrics  *metrics.Session

	mu      sync.Mutex
	seq     int // default allocator state (when nextSeqs is private)
	pending []*pendingStmt
	// txScratch is the flush's reused submission slice — the load
	// profile's top session-layer allocation site. Safe because
	// Submitter.SubmitTagged must not retain it.
	txScratch []core.Transaction
	// createScratch collects relations created by a flush (almost always
	// empty) without allocating.
	createScratch []string
}

// New opens a session over a submitter.
func New(sub Submitter, opts ...Option) *Session {
	s := &Session{sub: sub, origin: "session"}
	for _, opt := range opts {
		opt(s)
	}
	if s.nextSeqs == nil {
		s.nextSeqs = s.ownSeqs
	}
	if s.cache == nil {
		s.cache = query.NewStmtCache(0)
	}
	return s
}

// ownSeqs is the default sequence allocator. Callers hold s.mu (flush is
// the only allocation site).
func (s *Session) ownSeqs(n int) int {
	first := s.seq
	s.seq += n
	return first
}

// Cache returns the session's statement cache (for stats surfaces).
func (s *Session) Cache() *query.StmtCache { return s.cache }

// Prepare returns the cached prepared form of src.
func (s *Session) Prepare(src string) (*query.Prepared, error) {
	return s.cache.Get(src)
}

// Register prepares src and returns its dense statement id alongside the
// plan — the wire server's Prepare-frame entry point. Ids are issued by
// the session's cache (store- or node-wide), so they stay valid across
// connections to the same store until the entry is evicted or
// invalidated.
func (s *Session) Register(src string) (uint64, *query.Prepared, error) {
	return s.cache.Register(src)
}

// PreparedByID resolves a dense statement id from Register without
// touching the text-keyed map — the ExecPrepared hot path. ok is false
// once the entry has been evicted or invalidated; callers must answer
// with query.ErrUnknownStmt, never a reparse.
func (s *Session) PreparedByID(id uint64) (*query.Prepared, bool) {
	return s.cache.ByID(id)
}

// PreparedByHash resolves a statement by the FNV-1a hash of its text —
// the lookup a forwarded prepared statement uses when it ships no text.
func (s *Session) PreparedByHash(h uint64) (*query.Prepared, bool) {
	return s.cache.ByHash(h)
}

// Translate turns a symbolic query into an untagged transaction through
// the statement cache: parse once per distinct text, bind zero
// parameters. A query with '?' placeholders cannot execute directly and
// reports its arity here.
func (s *Session) Translate(src string) (core.Transaction, error) {
	prep, err := s.cache.Get(src)
	if err != nil {
		return core.Transaction{}, err
	}
	return prep.Bind()
}

// Queue translates q and enqueues it without admitting it, returning a
// response future immediately. The statement is admitted by the next
// Flush — or implicitly when the returned future is forced, so a client
// may queue a pipeline of statements and force the responses in order.
func (s *Session) Queue(q string) (*Future, error) {
	tx, err := s.Translate(q)
	if err != nil {
		return nil, err
	}
	return s.QueueTx(tx), nil
}

// QueueTx enqueues an already-constructed transaction, returning its
// response future immediately (see Queue).
func (s *Session) QueueTx(tx core.Transaction) *Future {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queueLocked(tx, false)
}

// QueueTagged enqueues a transaction whose Origin/Seq tags are already
// final — the routing hook the cluster's forward path uses: a statement
// tagged by the gateway's session executes here with that exact tag
// (and never consumes one of this session's sequence numbers), so its
// response is byte-identical to local execution at the gateway. The
// statement still rides this session's pipeline: it is admitted by the
// next Flush, batched with whatever else is queued, and a queued create
// still invalidates the statement cache.
func (s *Session) QueueTagged(tx core.Transaction) *Future {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queueLocked(tx, true)
}

// queueLocked appends tx to the pending pipeline and returns a future
// that flushes the pipeline on demand. Must hold s.mu.
func (s *Session) queueLocked(tx core.Transaction, tagged bool) *Future {
	ps := &pendingStmt{tx: tx, tagged: tagged}
	if tx.Trace != nil {
		ps.at = time.Now()
	}
	s.pending = append(s.pending, ps)
	return lenient.Lazy(func() core.Response {
		s.mu.Lock()
		if ps.fut == nil {
			s.flushLocked()
		}
		fut := ps.fut
		s.mu.Unlock()
		return fut.Force()
	})
}

// Pending returns the number of queued, not yet admitted statements.
func (s *Session) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Flush admits every queued statement in one batched arbitration. A
// no-op with an empty pipeline.
func (s *Session) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.flushLocked()
}

// flushLocked tags and submits the pending pipeline. Must hold s.mu.
// Pre-tagged statements (QueueTagged) keep their tags; the session's
// sequence allocator covers only the untagged ones, so a forwarded
// statement passing through never perturbs this session's tag space.
func (s *Session) flushLocked() {
	if len(s.pending) == 0 {
		return
	}
	s.metrics.Flush(len(s.pending))
	// Session-queue spans: how long each traced statement sat in the
	// pipeline before this flush. One request's statements share a trace
	// handle, so consecutive duplicates record once.
	var lastTr *reqtrace.T
	var flushAt time.Time
	for _, ps := range s.pending {
		if tr := ps.tx.Trace; tr != nil && tr != lastTr && !ps.at.IsZero() {
			if flushAt.IsZero() {
				flushAt = time.Now()
			}
			tr.Span(reqtrace.StageSessionQueue, ps.at, flushAt)
			lastTr = tr
		}
	}
	if cap(s.txScratch) < len(s.pending) {
		s.txScratch = make([]core.Transaction, len(s.pending))
	}
	txs := s.txScratch[:len(s.pending)]
	untagged := 0
	for _, ps := range s.pending {
		if !ps.tagged {
			untagged++
		}
	}
	next := 0
	if untagged > 0 {
		next = s.nextSeqs(untagged)
	}
	created := s.createScratch[:0]
	for i, ps := range s.pending {
		tx := ps.tx
		if !ps.tagged {
			if tx.Origin == "" {
				tx.Origin = s.origin
			}
			tx.Seq = next
			next++
		}
		if tx.Kind == core.KindCreate {
			created = append(created, tx.Rel)
		}
		txs[i] = tx
	}
	futs := s.sub.SubmitTagged(txs)
	for i, ps := range s.pending {
		ps.fut = futs[i]
	}
	s.pending = s.pending[:0]
	s.createScratch = created[:0]
	// A submitted create changes the directory: drop cached statements
	// touching the new relation so no retained translation can straddle
	// the directory change.
	for _, rel := range created {
		s.cache.InvalidateRel(rel)
	}
}

// ExecAsync translates and admits a single statement now (flushing any
// queued pipeline with it — one arbitration), returning the response
// future.
func (s *Session) ExecAsync(q string) (*Future, error) {
	tx, err := s.Translate(q)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	ps := &pendingStmt{tx: tx}
	if tx.Trace != nil {
		ps.at = time.Now()
	}
	s.pending = append(s.pending, ps)
	s.flushLocked()
	s.mu.Unlock()
	return ps.fut, nil
}

// Exec translates, admits and waits.
func (s *Session) Exec(q string) (core.Response, error) {
	fut, err := s.ExecAsync(q)
	if err != nil {
		return core.Response{}, err
	}
	return fut.Force(), nil
}

// ExecBatch translates a slice of queries, admits them all in one merge
// arbitration, and waits for every response. Translation is
// all-or-nothing: a failure anywhere reports a *BatchError carrying the
// failing statement's index, and nothing is submitted.
func (s *Session) ExecBatch(queries []string) ([]core.Response, error) {
	txs := make([]core.Transaction, len(queries))
	for i, q := range queries {
		tx, err := s.Translate(q)
		if err != nil {
			return nil, &BatchError{Index: i, Query: q, Err: err}
		}
		txs[i] = tx
	}
	s.mu.Lock()
	stmts := make([]*pendingStmt, len(txs))
	for i, tx := range txs {
		ps := &pendingStmt{tx: tx}
		if tx.Trace != nil {
			ps.at = time.Now()
		}
		s.pending = append(s.pending, ps)
		stmts[i] = ps
	}
	s.flushLocked()
	s.mu.Unlock()

	out := make([]core.Response, len(stmts))
	for i, ps := range stmts {
		out[i] = ps.fut.Force()
	}
	return out, nil
}
