package session

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// engineSubmitter adapts a raw core.Engine to the Submitter interface,
// recording every batch it admits.
type engineSubmitter struct {
	e       *core.Engine
	mu      sync.Mutex
	batches [][]core.Transaction
}

func (es *engineSubmitter) SubmitTagged(txs []core.Transaction) []*Future {
	es.mu.Lock()
	cp := make([]core.Transaction, len(txs))
	copy(cp, txs)
	es.batches = append(es.batches, cp)
	es.mu.Unlock()
	return es.e.SubmitBatch(txs)
}

func newSession(t *testing.T, opts ...Option) (*Session, *engineSubmitter) {
	t.Helper()
	es := &engineSubmitter{e: core.NewEngine(database.New(relation.RepList, "R", "S"))}
	return New(es, opts...), es
}

func TestExecTagsOriginAndSeq(t *testing.T) {
	s, _ := newSession(t, WithOrigin("c7"))
	r1, err := s.Exec(`insert (1, "a") into R`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Exec("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tag() != "c7#0" || r2.Tag() != "c7#1" {
		t.Errorf("tags = %s, %s; want c7#0, c7#1", r1.Tag(), r2.Tag())
	}
	if !r2.Found {
		t.Error("session read missed its own write")
	}
}

func TestQueueIsPipelined(t *testing.T) {
	s, es := newSession(t)
	f1, err := s.Queue(`insert (1, "a") into R`)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Queue("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	f3, err := s.Queue("count R")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	if len(es.batches) != 0 {
		t.Fatal("queueing admitted transactions before any flush")
	}
	// Forcing ANY queued future flushes the whole pipeline in one batch.
	if resp := f2.Force(); !resp.Found {
		t.Error("pipelined read missed the pipelined write before it")
	}
	if len(es.batches) != 1 || len(es.batches[0]) != 3 {
		t.Fatalf("flush admitted %d batches: %v", len(es.batches), es.batches)
	}
	if resp := f1.Force(); resp.Err != nil {
		t.Errorf("insert response: %v", resp.Err)
	}
	if resp := f3.Force(); resp.Count != 1 {
		t.Errorf("count = %d, want 1", resp.Count)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("pending after flush = %d", got)
	}
}

func TestFlushBatchesQueuedStatements(t *testing.T) {
	s, es := newSession(t)
	for i := 0; i < 5; i++ {
		if _, err := s.Queue("count R"); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if len(es.batches) != 1 || len(es.batches[0]) != 5 {
		t.Fatalf("one flush must be one admission: %d batches", len(es.batches))
	}
	s.Flush() // empty flush is a no-op
	if len(es.batches) != 1 {
		t.Error("empty flush submitted a batch")
	}
}

func TestExecBatchReportsFailingIndex(t *testing.T) {
	s, _ := newSession(t)
	_, err := s.ExecBatch([]string{"count R", "count S", "not a query", "count R"})
	if err == nil {
		t.Fatal("bad batch accepted")
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("error is %T, want *BatchError", err)
	}
	if be.Index != 2 || be.Query != "not a query" || be.Err == nil {
		t.Errorf("BatchError = %+v", be)
	}
	if !strings.Contains(be.Error(), "batch query 2") {
		t.Errorf("Error() = %q", be.Error())
	}
}

func TestExecBatchAllOrNothing(t *testing.T) {
	s, es := newSession(t)
	if _, err := s.ExecBatch([]string{`insert (1, "a") into R`, "garbage"}); err == nil {
		t.Fatal("bad batch accepted")
	}
	if len(es.batches) != 0 {
		t.Error("failed batch still admitted transactions")
	}
}

func TestStatementCacheInvalidatedByCreate(t *testing.T) {
	s, _ := newSession(t)
	// Prime the cache with a statement on a relation that does not exist.
	resp, err := s.Exec("count X")
	if err != nil || resp.Err == nil {
		t.Fatalf("count of absent relation: %v / %+v", err, resp)
	}
	hits0, _ := s.Cache().Stats()
	if _, err := s.Exec("count X"); err != nil {
		t.Fatal(err)
	}
	if hits1, _ := s.Cache().Stats(); hits1 != hits0+1 {
		t.Fatal("second count X did not hit the cache")
	}
	// The create must invalidate every cached statement touching X.
	if resp, err := s.Exec("create X using avl"); err != nil || resp.Err != nil {
		t.Fatalf("create: %v / %v", err, resp.Err)
	}
	before, missesBefore := s.Cache().Stats()
	if resp, err := s.Exec("count X"); err != nil || resp.Err != nil {
		t.Fatalf("count after create: %v / %+v", err, resp)
	}
	after, missesAfter := s.Cache().Stats()
	if after != before || missesAfter != missesBefore+1 {
		t.Errorf("count X after create hit a stale cache entry (hits %d->%d, misses %d->%d)",
			before, after, missesBefore, missesAfter)
	}
}

func TestTranslatePlaceholderArity(t *testing.T) {
	s, _ := newSession(t)
	if _, err := s.Exec("find ? in R"); err == nil {
		t.Error("placeholder query executed without bind arguments")
	}
	// The prepared form is still reachable through the session cache.
	prep, err := s.Prepare("find ? in R")
	if err != nil {
		t.Fatal(err)
	}
	if prep.NumParams() != 1 {
		t.Errorf("NumParams = %d", prep.NumParams())
	}
}

func TestConcurrentSessionsShareOneSubmitter(t *testing.T) {
	es := &engineSubmitter{e: core.NewEngine(database.New(relation.RepAVL, "R"))}
	const sessions, ops = 4, 100
	var wg sync.WaitGroup
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := New(es, WithOrigin("g"))
			for i := 0; i < ops; i++ {
				k := int64(g*ops + i)
				if _, err := s.Exec(`insert (` + itoa(k) + `, "v") into R`); err != nil {
					t.Errorf("exec: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	es.e.Barrier()
	if got := es.e.Current().TotalTuples(); got != sessions*ops {
		t.Errorf("tuples = %d, want %d", got, sessions*ops)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func TestScriptHelpers(t *testing.T) {
	qs := ParseScript("# comment\ncreate R;\n\n  insert (1, \"a\") into R\ncount R\n")
	if len(qs) != 3 || qs[0] != "create R" || qs[2] != "count R" {
		t.Errorf("ParseScript = %q", qs)
	}
	if got := SplitQueries(" a ; ; b;c "); len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("SplitQueries = %q", got)
	}
}

func TestScriptAsOneBatch(t *testing.T) {
	s, es := newSession(t)
	resps, err := s.ExecBatch(ParseScript("insert (1, \"a\") into R\nfind 1 in R\n# done\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 2 || !resps[1].Found {
		t.Fatalf("script responses: %+v", resps)
	}
	if len(es.batches) != 1 {
		t.Error("script was not one admission")
	}
	out := Render(resps)
	if lines := strings.Split(out, "\n"); len(lines) != 2 || !strings.Contains(lines[1], "found") {
		t.Errorf("Render = %q", out)
	}
}

// TestQueueTaggedPreservesForeignTags: pre-tagged statements (the
// cluster forward path) keep their Origin/Seq verbatim, never consume
// the session's own sequence numbers, and still flush in one batch with
// the session's untagged statements.
func TestQueueTaggedPreservesForeignTags(t *testing.T) {
	s, es := newSession(t, WithOrigin("gw"))

	local1, err := s.Queue(`insert (1, "a") into R`)
	if err != nil {
		t.Fatal(err)
	}
	fwd := core.Insert("S", mustTuple(2, "b"))
	fwd.Origin, fwd.Seq = "c9", 41
	fwdFut := s.QueueTagged(fwd)
	local2, err := s.Queue("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	s.Flush()

	if r := fwdFut.Force(); r.Tag() != "c9#41" {
		t.Errorf("forwarded tag = %s, want c9#41", r.Tag())
	}
	if r1, r2 := local1.Force(), local2.Force(); r1.Tag() != "gw#0" || r2.Tag() != "gw#1" {
		t.Errorf("local tags = %s, %s; want gw#0, gw#1 (forwarded stmt must not consume a seq)", r1.Tag(), r2.Tag())
	}
	es.mu.Lock()
	defer es.mu.Unlock()
	if len(es.batches) != 1 || len(es.batches[0]) != 3 {
		t.Fatalf("expected one 3-statement batch, got %v", es.batches)
	}
	if es.batches[0][1].Tag() != "c9#41" {
		t.Errorf("submitted forwarded tx tagged %s", es.batches[0][1].Tag())
	}
}

// TestQueueTaggedCreateInvalidatesCache: a forwarded create must drop
// cached statements touching the new relation, exactly like a local one.
func TestQueueTaggedCreateInvalidatesCache(t *testing.T) {
	s, _ := newSession(t)
	if _, err := s.Queue("find 1 in N7"); err == nil {
		// Unknown relations translate fine (the error is operational), so
		// prime the cache with a statement touching N7.
	}
	before := s.Cache().Len()
	tx, err := s.Translate("create N7 using avl")
	if err != nil {
		t.Fatal(err)
	}
	tx.Origin, tx.Seq = "c1", 0
	s.QueueTagged(tx)
	s.Flush()
	if after := s.Cache().Len(); after >= before && before > 0 {
		t.Errorf("cache %d -> %d: forwarded create did not invalidate statements on N7", before, after)
	}
}

func mustTuple(k int64, v string) value.Tuple {
	return value.NewTuple(value.Int(k), value.Str(v))
}
