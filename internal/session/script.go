package session

import (
	"strings"

	"funcdb/internal/core"
)

// Text helpers shared by every front end (REPL, script mode, wire
// server): they used to live inside cmd/fdbrepl, duplicated from the
// Store's exec path.

// SplitQueries splits a semicolon-separated query list, dropping empties.
func SplitQueries(s string) []string {
	var out []string
	for _, q := range strings.Split(s, ";") {
		if q = strings.TrimSpace(q); q != "" {
			out = append(out, q)
		}
	}
	return out
}

// ParseScript extracts the queries of a script: one query per line (a
// trailing ';' is tolerated), blank lines and #-comments skipped.
func ParseScript(src string) []string {
	var out []string
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(line), ";"))
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	return out
}

// Render formats a batch's responses one per line, in order — the wire
// format every front end prints.
func Render(resps []core.Response) string {
	var b strings.Builder
	for i, r := range resps {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}
