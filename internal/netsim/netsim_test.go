package netsim

import (
	"sync"
	"testing"
	"time"

	"funcdb/internal/topo"
)

func TestMessageDelivery(t *testing.T) {
	n := NewNetwork(3)
	defer n.Close()
	if err := n.Send(Message{Src: 0, Dst: 2, Kind: "ping", Payload: "hello"}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-n.Inbox(2):
		if m.Payload != "hello" || m.Src != 0 {
			t.Errorf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("message not delivered")
	}
}

func TestChooseSelectsOwnTag(t *testing.T) {
	// Figure 3-1: each site's substream is exactly the messages tagged for
	// it, in medium order.
	n := NewNetwork(3)
	n.EnableTap()
	defer n.Close()
	for i := 0; i < 9; i++ {
		if err := n.Send(Message{Src: 0, Dst: SiteID(i % 3), Kind: "m", Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain inboxes to ensure routing completed.
	for site := 0; site < 3; site++ {
		for j := 0; j < 3; j++ {
			select {
			case m := <-n.Inbox(SiteID(site)):
				if int(m.Dst) != site {
					t.Errorf("site %d chose a message tagged %d", site, m.Dst)
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("site %d starved", site)
			}
		}
	}
	log := n.Tap()
	if len(log) != 9 {
		t.Fatalf("tap recorded %d messages", len(log))
	}
	for site := SiteID(0); site < 3; site++ {
		chosen := Choose(log, site)
		if len(chosen) != 3 {
			t.Errorf("Choose(site %d) = %d messages", site, len(chosen))
		}
		for _, m := range chosen {
			if m.Dst != site {
				t.Errorf("Choose leaked a message for %d to %d", m.Dst, site)
			}
		}
	}
}

func TestHopAccounting(t *testing.T) {
	n := NewNetwork(8, WithTopology(topo.NewHypercube(3)))
	defer n.Close()
	if err := n.Send(Message{Src: 0, Dst: 7, Kind: "x"}); err != nil { // 3 hops
		t.Fatal(err)
	}
	<-n.Inbox(7)
	msgs, hops := n.Stats()
	if msgs != 1 || hops != 3 {
		t.Errorf("stats = %d msgs %d hops, want 1/3", msgs, hops)
	}
}

func TestUnknownDestinationDropped(t *testing.T) {
	n := NewNetwork(2)
	defer n.Close()
	if err := n.Send(Message{Src: 0, Dst: 99, Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(Message{Src: 0, Dst: 1, Kind: "x"}); err != nil {
		t.Fatal(err)
	}
	// The second message arrives; the first vanished (no site chooses it).
	select {
	case m := <-n.Inbox(1):
		if m.Dst != 1 {
			t.Errorf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("valid message lost behind invalid one")
	}
	msgs, _ := n.Stats()
	if msgs != 1 {
		t.Errorf("stats counted dropped message: %d", msgs)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	n := NewNetwork(2)
	n.Close()
	if err := n.Send(Message{Src: 0, Dst: 1}); err == nil {
		t.Error("Send after Close succeeded")
	}
}

func TestBadNetworkConfigPanics(t *testing.T) {
	cases := []func(){
		func() { NewNetwork(0) },
		func() { NewNetwork(9, WithTopology(topo.NewHypercube(2))) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSiteRequestReply(t *testing.T) {
	n := NewNetwork(2)
	defer n.Close()
	server := NewSite(n, 0)
	client := NewSite(n, 1)
	server.Register("double", func(_ *Site, m Message) any {
		return m.Payload.(int) * 2
	})
	go server.Run()
	go client.Run()
	defer server.Stop()
	defer client.Stop()

	got := client.Call(0, "double", 21).Force()
	if got != 42 {
		t.Errorf("Call = %v", got)
	}
}

func TestMySitePragma(t *testing.T) {
	n := NewNetwork(2)
	defer n.Close()
	s := NewSite(n, 1)
	if s.MySite() != 1 {
		t.Errorf("MySite = %d", s.MySite())
	}
	if s.Network() != n {
		t.Error("Network accessor broken")
	}
}

func TestResultOnRemote(t *testing.T) {
	// RESULT-ON evaluates the expression at the named site.
	n := NewNetwork(3)
	defer n.Close()
	var evalSite SiteID = -1
	var mu sync.Mutex
	worker := NewSite(n, 2)
	worker.RegisterFunc("where", func(arg any) any {
		mu.Lock()
		evalSite = worker.MySite()
		mu.Unlock()
		return int(worker.MySite())*100 + arg.(int)
	})
	caller := NewSite(n, 0)
	go worker.Run()
	go caller.Run()
	defer worker.Stop()
	defer caller.Stop()

	got := caller.ResultOn(2, "where", 7).Force()
	if got != 207 {
		t.Errorf("ResultOn = %v", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if evalSite != 2 {
		t.Errorf("function evaluated at site %d, want 2", evalSite)
	}
}

func TestResultOnLocal(t *testing.T) {
	n := NewNetwork(1)
	defer n.Close()
	s := NewSite(n, 0)
	s.RegisterFunc("inc", func(arg any) any { return arg.(int) + 1 })
	// Local ResultOn needs no running loop: it evaluates in place.
	got := s.ResultOn(0, "inc", 5).Force()
	if got != 6 {
		t.Errorf("local ResultOn = %v", got)
	}
	v := s.ResultOn(0, "missing", 1).Force()
	if _, isErr := v.(error); !isErr {
		t.Errorf("missing function returned %v", v)
	}
}

func TestResultOnIsAFuture(t *testing.T) {
	// The caller can keep computing while the remote evaluation runs.
	n := NewNetwork(2)
	defer n.Close()
	release := make(chan struct{})
	worker := NewSite(n, 1)
	worker.RegisterFunc("slow", func(arg any) any {
		<-release
		return "done"
	})
	caller := NewSite(n, 0)
	go worker.Run()
	go caller.Run()
	defer worker.Stop()
	defer caller.Stop()

	fut := caller.ResultOn(1, "slow", nil)
	// Not forced yet: we get here without blocking.
	close(release)
	if got := fut.Force(); got != "done" {
		t.Errorf("ResultOn = %v", got)
	}
}

func TestUnknownKindDropped(t *testing.T) {
	n := NewNetwork(2)
	defer n.Close()
	s := NewSite(n, 0)
	s.Register("ping", func(*Site, Message) any { return "pong" })
	go s.Run()
	defer s.Stop()
	if err := n.Send(Message{Src: 1, Dst: 0, Kind: "nobody-handles-this", Corr: 1}); err != nil {
		t.Fatal(err)
	}
	// A handled request proves the loop survived the dropped message.
	s2 := NewSite(n, 1)
	go s2.Run()
	defer s2.Stop()
	if got := s2.Call(0, "ping", nil).Force(); got != "pong" {
		t.Errorf("Call after dropped message = %v", got)
	}
}

func TestConcurrentCallers(t *testing.T) {
	n := NewNetwork(4)
	defer n.Close()
	server := NewSite(n, 0)
	server.RegisterFunc("id", func(arg any) any { return arg })
	go server.Run()
	defer server.Stop()

	var wg sync.WaitGroup
	for c := 1; c < 4; c++ {
		cl := NewSite(n, SiteID(c))
		go cl.Run()
		defer cl.Stop()
		for i := 0; i < 20; i++ {
			wg.Add(1)
			go func(cl *Site, i int) {
				defer wg.Done()
				if got := cl.ResultOn(0, "id", i).Force(); got != i {
					t.Errorf("id(%d) = %v", i, got)
				}
			}(cl, i)
		}
	}
	wg.Wait()
}
