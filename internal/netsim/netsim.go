// Package netsim simulates the paper's distributed substrate (Section 3):
// a local network whose medium is one large merge of tagged messages, with
// per-site choose functions selecting each site's substream.
//
// "An important observation is that the network medium acts as one large
// merge pseudo-function. The stream of messages which appear on it over
// time will not be deterministic, but will consist of an interleaving of
// messages generated at different nodes. ... A site effectively selects the
// messages directed to it by applying a choose function to the entire
// message stream, which selects those messages having a tag which coincides
// with the site tag." (Section 3.1, Figure 3-1.)
//
// Sites also implement the paper's site pragmas (Section 3.2): MY-SITE
// returns the local site, and RESULT-ON evaluates a registered function at
// a named site, returning its value as a lenient future — "yields the value
// of the first argument, but requires the outermost function to be computed
// on the specified site."
package netsim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"funcdb/internal/lenient"
	"funcdb/internal/topo"
)

// SiteID names a site (PE) in the network.
type SiteID int

// Message is one tagged unit on the medium. Dst is the tag choose matches
// on; Corr correlates replies with requests.
type Message struct {
	Src     SiteID
	Dst     SiteID
	Kind    string
	Corr    int64
	Payload any
}

// Stats aggregates medium-level counters.
type Stats struct {
	// Messages is the number of messages that crossed the medium.
	Messages atomic.Int64
	// Hops is the total hop count of all routed messages (0 hops for
	// self-sends).
	Hops atomic.Int64
}

// Network is the in-memory medium connecting a fixed set of sites.
type Network struct {
	topo    topo.Topology
	medium  chan Message
	inboxes []chan Message
	stats   Stats

	tapMu sync.Mutex
	tap   []Message // optional medium log for figures/tests

	closeOnce sync.Once
	done      chan struct{}
	routed    sync.WaitGroup
}

// Option configures a Network.
type Option func(*Network)

// WithTopology makes the network charge hop counts according to a PE
// topology (sites are PEs). Without it, all distinct sites are one hop
// apart.
func WithTopology(t topo.Topology) Option {
	return func(n *Network) { n.topo = t }
}

// NewNetwork creates a network of nSites sites. The medium is a single
// channel — the "one large merge": arrival order is the serialization.
func NewNetwork(nSites int, opts ...Option) *Network {
	if nSites <= 0 {
		panic("netsim: network needs at least one site")
	}
	n := &Network{
		medium:  make(chan Message, nSites*4),
		inboxes: make([]chan Message, nSites),
		done:    make(chan struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	if n.topo == nil {
		n.topo = topo.NewComplete(nSites)
	}
	if n.topo.Size() < nSites {
		panic(fmt.Sprintf("netsim: topology %s too small for %d sites", n.topo.Name(), nSites))
	}
	for i := range n.inboxes {
		n.inboxes[i] = make(chan Message, 64)
	}
	n.routed.Add(1)
	go n.route()
	return n
}

// route drains the medium, applying the choose function: each message is
// delivered to the inbox whose site tag matches its destination.
func (n *Network) route() {
	defer n.routed.Done()
	for {
		select {
		case m := <-n.medium:
			n.deliver(m)
		case <-n.done:
			// Drain anything already on the medium, then stop.
			for {
				select {
				case m := <-n.medium:
					n.deliver(m)
				default:
					return
				}
			}
		}
	}
}

func (n *Network) deliver(m Message) {
	if int(m.Dst) < 0 || int(m.Dst) >= len(n.inboxes) {
		return // dropped: no such tag, nothing chooses it
	}
	n.stats.Messages.Add(1)
	n.stats.Hops.Add(int64(n.topo.Hops(int(m.Src), int(m.Dst))))
	n.tapMu.Lock()
	if n.tap != nil {
		n.tap = append(n.tap, m)
	}
	n.tapMu.Unlock()
	select {
	case n.inboxes[m.Dst] <- m:
	case <-n.done:
	}
}

// Size returns the number of sites.
func (n *Network) Size() int { return len(n.inboxes) }

// Hops returns the hop distance between two sites under the network's
// topology.
func (n *Network) Hops(a, b SiteID) int { return n.topo.Hops(int(a), int(b)) }

// Stats returns the medium counters.
func (n *Network) Stats() (messages, hops int64) {
	return n.stats.Messages.Load(), n.stats.Hops.Load()
}

// EnableTap starts recording every delivered message (for tests and the
// Figure 3-1 demo).
func (n *Network) EnableTap() {
	n.tapMu.Lock()
	defer n.tapMu.Unlock()
	if n.tap == nil {
		n.tap = []Message{}
	}
}

// Tap returns a copy of the recorded medium log.
func (n *Network) Tap() []Message {
	n.tapMu.Lock()
	defer n.tapMu.Unlock()
	out := make([]Message, len(n.tap))
	copy(out, n.tap)
	return out
}

// Send puts a message on the medium. It fails once the network is closed.
func (n *Network) Send(m Message) error {
	select {
	case <-n.done:
		return errors.New("netsim: network closed")
	default:
	}
	select {
	case n.medium <- m:
		return nil
	case <-n.done:
		return errors.New("netsim: network closed")
	}
}

// Inbox returns the chosen substream for a site.
func (n *Network) Inbox(s SiteID) <-chan Message {
	return n.inboxes[s]
}

// Close shuts the medium down. Pending messages are dropped after a final
// drain; sites block forever on their inboxes unless they also select on
// their own shutdown signals, so call Site.Stop first.
func (n *Network) Close() {
	n.closeOnce.Do(func() { close(n.done) })
	n.routed.Wait()
}

// Choose filters a recorded message stream by site tag — the literal
// functional form of the paper's choose, used on medium logs.
func Choose(messages []Message, site SiteID) []Message {
	var out []Message
	for _, m := range messages {
		if m.Dst == site {
			out = append(out, m)
		}
	}
	return out
}

// HandlerFunc processes one request message at a site and returns the reply
// payload (nil for one-way messages).
type HandlerFunc func(s *Site, m Message) any

// Site is one network participant: an inbox loop, a handler table, and the
// request/reply plumbing behind RESULT-ON.
type Site struct {
	id  SiteID
	net *Network

	handlers map[string]HandlerFunc

	mu      sync.Mutex
	nextID  int64
	pending map[int64]func(any)

	stopOnce sync.Once
	stopped  chan struct{}
	loopDone chan struct{}
}

// NewSite attaches a site runtime to network slot id. Register handlers
// before calling Run.
func NewSite(n *Network, id SiteID) *Site {
	return &Site{
		id:       id,
		net:      n,
		handlers: map[string]HandlerFunc{},
		pending:  map[int64]func(any){},
		stopped:  make(chan struct{}),
		loopDone: make(chan struct{}),
	}
}

// MySite is the paper's MY-SITE:[] pragma.
func (s *Site) MySite() SiteID { return s.id }

// Network returns the site's network.
func (s *Site) Network() *Network { return s.net }

// Register installs the handler for a message kind. It must be called
// before Run.
func (s *Site) Register(kind string, h HandlerFunc) {
	s.handlers[kind] = h
}

// Run processes the site's chosen substream until Stop. It is typically
// run in its own goroutine.
func (s *Site) Run() {
	defer close(s.loopDone)
	inbox := s.net.Inbox(s.id)
	for {
		select {
		case <-s.stopped:
			return
		case m := <-inbox:
			s.dispatch(m)
		}
	}
}

func (s *Site) dispatch(m Message) {
	if m.Kind == "reply" {
		s.mu.Lock()
		resolve := s.pending[m.Corr]
		delete(s.pending, m.Corr)
		s.mu.Unlock()
		if resolve != nil {
			resolve(m.Payload)
		}
		return
	}
	h, ok := s.handlers[m.Kind]
	if !ok {
		return // unknown kind: dropped, like an unchosen tag
	}
	result := h(s, m)
	if result != nil && m.Corr != 0 {
		_ = s.net.Send(Message{
			Src: s.id, Dst: m.Src, Kind: "reply", Corr: m.Corr, Payload: result,
		})
	}
}

// Stop terminates the site loop.
func (s *Site) Stop() {
	s.stopOnce.Do(func() { close(s.stopped) })
	<-s.loopDone
}

// Call sends a request to another site and returns a future for the reply
// payload. It is the plumbing beneath ResultOn.
func (s *Site) Call(dst SiteID, kind string, payload any) *lenient.Cell[any] {
	s.mu.Lock()
	s.nextID++
	corr := s.nextID
	ch := make(chan any, 1)
	s.pending[corr] = func(v any) { ch <- v }
	s.mu.Unlock()

	if err := s.net.Send(Message{Src: s.id, Dst: dst, Kind: kind, Corr: corr, Payload: payload}); err != nil {
		s.mu.Lock()
		delete(s.pending, corr)
		s.mu.Unlock()
		return lenient.Ready[any](err)
	}
	return lenient.Lazy(func() any { return <-ch })
}

// ResultOn is the paper's RESULT-ON:[functional-expression, site] pragma:
// evaluate the function registered under name at the target site, with the
// given argument, and return the value as a lenient future. When the target
// is the local site the call degenerates to local evaluation, preserving
// the pragma's transparency.
func (s *Site) ResultOn(target SiteID, name string, arg any) *lenient.Cell[any] {
	if target == s.id {
		h, ok := s.handlers["eval:"+name]
		if !ok {
			return lenient.Ready[any](fmt.Errorf("netsim: function %q not registered at site %d", name, s.id))
		}
		arg := arg
		return lenient.Spawn(func() any {
			return h(s, Message{Src: s.id, Dst: s.id, Kind: "eval:" + name, Payload: arg})
		})
	}
	return s.Call(target, "eval:"+name, arg)
}

// RegisterFunc exposes a named function to remote ResultOn calls.
func (s *Site) RegisterFunc(name string, f func(arg any) any) {
	s.Register("eval:"+name, func(_ *Site, m Message) any { return f(m.Payload) })
}
