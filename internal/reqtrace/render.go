package reqtrace

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// FormatID renders a trace id the way every surface prints it: 16 hex
// digits, zero-padded, stable for grepping across nodes.
func FormatID(id uint64) string { return fmt.Sprintf("%016x", id) }

// ParseID reverses FormatID; ok is false for anything else.
func ParseID(s string) (uint64, bool) {
	id, err := strconv.ParseUint(s, 16, 64)
	return id, err == nil
}

// Stitch groups published traces by id: one group per distributed
// request, the per-node fragments sorted by hop (then node name). The
// groups come back newest-first by the origin fragment's start time.
func Stitch(traces []Trace) [][]Trace {
	byID := make(map[string][]Trace)
	order := make([]string, 0, len(traces))
	for _, tr := range traces {
		if _, ok := byID[tr.ID]; !ok {
			order = append(order, tr.ID)
		}
		byID[tr.ID] = append(byID[tr.ID], tr)
	}
	out := make([][]Trace, 0, len(byID))
	for _, id := range order {
		g := byID[id]
		sort.SliceStable(g, func(i, j int) bool {
			if g[i].Hop != g[j].Hop {
				return g[i].Hop < g[j].Hop
			}
			return g[i].Node < g[j].Node
		})
		out = append(out, g)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i][0].Start > out[j][0].Start })
	return out
}

// fmtNS rounds a nanosecond count for the timeline (microsecond grain
// under a millisecond, 10µs grain above).
func fmtNS(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// Render draws the human timeline for a set of published traces: one
// block per trace id, one indented line per node fragment (the hop
// tree), each span with its offset from the trace's first recorded
// instant and its duration. This is what fdbrepl's .trace prints, what
// /debug/trace serves as text, and what fdbload appends to its report.
func Render(traces []Trace) string {
	var b strings.Builder
	for gi, group := range Stitch(traces) {
		if gi > 0 {
			b.WriteByte('\n')
		}
		RenderGroup(&b, group)
	}
	return b.String()
}

// RenderGroup draws one stitched trace (every fragment shares the id).
func RenderGroup(b *strings.Builder, group []Trace) {
	// The epoch for offsets: the earliest span start anywhere in the
	// group (clocks are per-node unix nanos; on one host they align, and
	// even across hosts the offsets stay readable).
	epoch := int64(0)
	total := int64(0)
	for _, tr := range group {
		for _, sp := range tr.Spans {
			if epoch == 0 || sp.Start < epoch {
				epoch = sp.Start
			}
		}
		if tr.Hop == 0 && tr.Total > total {
			total = tr.Total
		}
	}
	if total == 0 && len(group) > 0 {
		total = group[0].Total
	}
	mark := ""
	for _, tr := range group {
		if tr.Slow {
			mark = "  SLOW"
			break
		}
	}
	fmt.Fprintf(b, "trace %s  total %s  hops %d%s\n", group[0].ID, fmtNS(total), len(group), mark)
	for _, tr := range group {
		fmt.Fprintf(b, "  hop %d  %s", tr.Hop, tr.Node)
		if tr.Dropped > 0 {
			fmt.Fprintf(b, "  (%d spans dropped)", tr.Dropped)
		}
		b.WriteByte('\n')
		spans := append([]SpanInfo(nil), tr.Spans...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
		for _, sp := range spans {
			fmt.Fprintf(b, "    %-20s +%-10s %s\n", sp.Stage, fmtNS(sp.Start-epoch), fmtNS(sp.Dur))
		}
	}
}
