package reqtrace

import (
	"sync"
	"testing"
	"time"
)

// TestRingConcurrencyExactTotals hammers one recorder from many
// goroutines — every request sampled, every trace carrying the same
// span shape — and checks the accounting is exact: no trace lost, no
// span lost, no double admission. Run under -race this is also the
// recorder's concurrency proof.
func TestRingConcurrencyExactTotals(t *testing.T) {
	const workers, per, spansEach = 8, 50, 3
	r := New("n0", Config{
		SampleEvery:   1,
		SlowThreshold: -1, // reservoir off: everything goes through the ring
		Ring:          workers * per,
	})
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr := r.Start()
				now := time.Now().UnixNano()
				tr.SpanNS(StageConnRead, now, 10)
				tr.SpanNS(StageDecode, now+10, 5)
				tr.SpanNS(StageLaneCommit, now+15, 20)
				r.Finish(tr)
			}
		}()
	}
	wg.Wait()

	st := r.Stats()
	if st.Started != workers*per || st.Sampled != workers*per || st.Slow != 0 {
		t.Fatalf("stats = %+v, want started=sampled=%d slow=0", st, workers*per)
	}
	ts := r.Traces()
	if len(ts) != workers*per {
		t.Fatalf("published %d traces, want %d", len(ts), workers*per)
	}
	seen := make(map[string]bool, len(ts))
	for _, tr := range ts {
		if len(tr.Spans) != spansEach {
			t.Fatalf("trace %s has %d spans, want %d", tr.ID, len(tr.Spans), spansEach)
		}
		if tr.Dropped != 0 || tr.Slow || !tr.Sampled || tr.Node != "n0" {
			t.Fatalf("trace %s published wrong: %+v", tr.ID, tr)
		}
		if seen[tr.ID] {
			t.Fatalf("trace %s published twice", tr.ID)
		}
		seen[tr.ID] = true
	}
}

// TestRingEviction fills a small ring past capacity and checks the
// newest survive, newest first.
func TestRingEviction(t *testing.T) {
	r := New("n0", Config{SampleEvery: 1, SlowThreshold: -1, Ring: 4})
	var ids []uint64
	for i := 0; i < 10; i++ {
		tr := r.Start()
		ids = append(ids, tr.ID())
		r.Finish(tr)
	}
	ts := r.Traces()
	if len(ts) != 4 {
		t.Fatalf("ring kept %d traces, want 4", len(ts))
	}
	for i, tr := range ts {
		want := FormatID(ids[len(ids)-1-i])
		if tr.ID != want {
			t.Fatalf("trace[%d] = %s, want %s (newest first)", i, tr.ID, want)
		}
	}
}

// TestSlowReservoirNeverEvicted admits slow traces, floods the recorder
// with fast head-sampled ones, and checks every slow trace is still
// published — the reservoir is separate storage that ring churn cannot
// touch.
func TestSlowReservoirNeverEvicted(t *testing.T) {
	r := New("n0", Config{SampleEvery: 1, SlowThreshold: time.Millisecond, Ring: 4, SlowRing: 8})
	slowIDs := make(map[string]bool)
	for i := 0; i < 3; i++ {
		tr := r.Start()
		slowIDs[FormatID(tr.ID())] = true
		time.Sleep(2 * time.Millisecond)
		r.Finish(tr)
	}
	for i := 0; i < 500; i++ {
		r.Finish(r.Start()) // sub-microsecond total: head-sampled, not slow
	}
	if st := r.Stats(); st.Slow != 3 {
		t.Fatalf("slow count = %d, want 3", st.Slow)
	}
	ts := r.Traces()
	found := 0
	for _, tr := range ts {
		if slowIDs[tr.ID] {
			if !tr.Slow {
				t.Fatalf("trace %s not flagged slow", tr.ID)
			}
			if tr.Total < time.Millisecond.Nanoseconds() {
				t.Fatalf("slow trace %s total %dns under the threshold", tr.ID, tr.Total)
			}
			found++
		}
	}
	if found != 3 {
		t.Fatalf("%d of 3 slow traces survived the flood", found)
	}
	// Slow entries lead the listing so the tail is visible at a glance.
	for i := 0; i < found; i++ {
		if !ts[i].Slow {
			t.Fatalf("trace[%d] is not slow; slow reservoir must be listed first", i)
		}
	}
}

// TestDisabledZeroAllocs is the disabled-path gate: a nil recorder's
// whole per-request lifecycle — start, spans, finish, context — must
// not allocate.
func TestDisabledZeroAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(100, func() {
		tr := r.Start()
		tr.SpanNS(StageConnRead, 0, 1)
		tr.Span(StageDecode, time.Time{}, time.Time{})
		_ = tr.Ctx()
		_ = tr.Sampled()
		r.Finish(tr)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing costs %.1f allocs/request, want 0", allocs)
	}
}

// TestSampledAllocBudget is the enabled-path gate: a fully sampled
// request costs at most 2 allocations for its whole lifecycle (the one
// trace handle, plus slack for the ring append), and recording a span
// on a live handle costs zero.
func TestSampledAllocBudget(t *testing.T) {
	r := New("n0", Config{SampleEvery: 1, SlowThreshold: -1, Ring: 8})
	lifecycle := testing.AllocsPerRun(100, func() {
		tr := r.Start()
		now := time.Now().UnixNano()
		tr.SpanNS(StageConnRead, now, 1)
		tr.SpanNS(StageDecode, now, 1)
		tr.SpanNS(StageLaneCommit, now, 1)
		tr.SpanNS(StageFlush, now, 1)
		r.Finish(tr)
	})
	if lifecycle > 2 {
		t.Fatalf("sampled trace lifecycle costs %.1f allocs, want <= 2", lifecycle)
	}
	tr := r.Start()
	perSpan := testing.AllocsPerRun(100, func() {
		tr.SpanNS(StageLaneWait, 0, 1)
	})
	if perSpan != 0 {
		t.Fatalf("recording a span costs %.1f allocs, want 0", perSpan)
	}
}

// TestStartCtx checks hop continuation: same id, hop+1, the origin's
// sampling decision — and the fallback to a fresh local trace when the
// context is invalid.
func TestStartCtx(t *testing.T) {
	r := New("n1", Config{SampleEvery: 1 << 30, SlowThreshold: -1}) // local sampling ~never fires
	tr := r.StartCtx(Ctx{ID: 42, Hop: 1, Sampled: true})
	if tr.ID() != 42 || tr.Ctx().Hop != 2 || !tr.Sampled() {
		t.Fatalf("continued trace = %+v, want id 42 hop 2 sampled", tr.Ctx())
	}
	r.Finish(tr)
	if st := r.Stats(); st.Propagated != 1 {
		t.Fatalf("propagated = %d, want 1", st.Propagated)
	}
	ts := r.Traces()
	if len(ts) != 1 || ts[0].ID != FormatID(42) || ts[0].Hop != 2 {
		t.Fatalf("published = %+v, want the propagated trace at hop 2", ts)
	}
	// An unsampled context still records (the slow reservoir needs it)
	// but is not admitted to the ring.
	r.Finish(r.StartCtx(Ctx{ID: 43, Hop: 0, Sampled: false}))
	if got := len(r.Traces()); got != 1 {
		t.Fatalf("unsampled propagated trace admitted: %d published", got)
	}
	// Invalid context: a fresh local trace, not id 0.
	if fresh := r.StartCtx(Ctx{}); fresh.ID() == 0 || fresh.Ctx().Hop != 0 {
		t.Fatalf("invalid ctx continuation = %+v, want a fresh local trace", fresh.Ctx())
	}
}

// TestFinishIdempotent double-finishes one trace and checks it is
// admitted exactly once, and that MaxSpans overflow counts instead of
// corrupting.
func TestFinishIdempotent(t *testing.T) {
	r := New("n0", Config{SampleEvery: 1, SlowThreshold: -1})
	tr := r.Start()
	for i := 0; i < MaxSpans+5; i++ {
		tr.SpanNS(StagePlan, int64(i), 1)
	}
	r.Finish(tr)
	r.Finish(tr)
	ts := r.Traces()
	if len(ts) != 1 {
		t.Fatalf("double Finish published %d traces, want 1", len(ts))
	}
	if len(ts[0].Spans) != MaxSpans || ts[0].Dropped != 5 {
		t.Fatalf("overflow: %d spans dropped %d, want %d/%d", len(ts[0].Spans), ts[0].Dropped, MaxSpans, 5)
	}
}

// TestLateSpanAttaches records a span after Finish (the group-commit
// fsync pattern) and checks a later snapshot carries it.
func TestLateSpanAttaches(t *testing.T) {
	r := New("n0", Config{SampleEvery: 1, SlowThreshold: -1})
	tr := r.Start()
	tr.SpanNS(StageLaneCommit, 1, 1)
	r.Finish(tr)
	tr.SpanNS(StageGroupCommitFsync, 2, 3)
	ts := r.Traces()
	if len(ts) != 1 || len(ts[0].Spans) != 2 {
		t.Fatalf("late span lost: %+v", ts)
	}
	if ts[0].Spans[1].Stage != "group-commit-fsync" {
		t.Fatalf("late span stage = %s", ts[0].Spans[1].Stage)
	}
}

// TestIDRoundTrip checks FormatID/ParseID are inverses and StageByName
// resolves the whole catalogue.
func TestIDRoundTrip(t *testing.T) {
	for _, id := range []uint64{1, 42, 0xdeadbeefcafef00d, ^uint64(0)} {
		got, ok := ParseID(FormatID(id))
		if !ok || got != id {
			t.Fatalf("ParseID(FormatID(%d)) = %d, %v", id, got, ok)
		}
	}
	if _, ok := ParseID("xyz"); ok {
		t.Fatal("ParseID accepted garbage")
	}
	for s := Stage(0); s < numStages; s++ {
		back, ok := StageByName(s.String())
		if !ok || back != s {
			t.Fatalf("StageByName(%q) = %v, %v", s.String(), back, ok)
		}
	}
}
