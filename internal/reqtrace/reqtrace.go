// Package reqtrace records per-request span timelines across the
// distributed request path: the observability counterpart to
// internal/metrics' aggregate histograms. A metrics histogram says the
// p99 is 30× the p50; a trace says WHERE one slow request spent it — in
// the lane lock, the group-commit fsync, the forward hop, or the wire.
//
// The design mirrors the metrics discipline:
//
//   - Disabled is free. A nil *Recorder and a nil *T are both valid
//     receivers; every recording method is one pointer comparison and
//     zero allocations when tracing is off.
//   - Enabled is cheap. Every request gets one heap-allocated trace
//     handle (*T) with a fixed inline span array — recording a span is
//     a mutex'd array write, no allocation — so the always-keep slow
//     reservoir can catch ANY slow request, not just head-sampled ones.
//   - Publication is sampled. A completed trace is admitted to the ring
//     buffer only when head sampling picked it (default 1 in 1024) or it
//     ran over the slow threshold (default 10ms, kept in a separate
//     reservoir that head samples can never evict).
//
// Cross-node stitching is by trace id: the wire's v5 trace-context
// suffix carries (id, hop, sampled) to the owning primary and on to the
// mirror, each node records its own spans under the shared id, and the
// renderer (Render) merges the per-node timelines into one hop tree.
package reqtrace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage tags one span with the pipeline step it measures.
type Stage uint8

// The stage catalogue, in pipeline order. Client-side stages come first
// (recorded by traced load drivers), then the server request path, the
// engine, the archive, and the cross-node hops.
const (
	StageClientDial Stage = iota // client: TCP dial + handshake
	StageClientSend              // client: request sent → response decoded
	StageConnRead                // server: blocking read of the request frame
	StageDecode                  // server: frame payload → transactions
	StageSessionQueue            // session: queued → flushed into one batch
	StagePlan                    // engine: read/write-set planning under the lane locks
	StageLaneWait                // engine: waiting to acquire the lane locks
	StageLaneCommit              // engine: lane locks held → snapshot published
	StageGroupCommitFsync        // archive: commit buffered → group flush (+fsync) done
	StageEncode                  // server: response forced + encoded into the out buffer
	StageFlush                   // server: out buffer handed to the socket
	StageForwardHop              // gateway: forward frame sent → peer reply arrived
	StageReplicaApply            // mirror: log record decoded → applied to the replica
	numStages
)

var stageNames = [numStages]string{
	"client-dial", "client-send",
	"conn-read", "decode", "session-queue",
	"plan", "lane-wait", "lane-commit", "group-commit-fsync",
	"encode", "flush",
	"forward-hop", "replica-apply",
}

// String returns the stage's catalogue name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage-?"
}

// StageByName resolves a catalogue name back to its Stage; ok reports
// whether the name is known.
func StageByName(name string) (Stage, bool) {
	for i, n := range stageNames {
		if n == name {
			return Stage(i), true
		}
	}
	return 0, false
}

// Ctx is the trace context that crosses the wire: the v5 suffix decoded
// into Go. The zero Ctx (ID 0) means "not traced".
type Ctx struct {
	ID      uint64 // trace id, shared by every node's spans
	Hop     uint8  // distance from the client: 0 = first server, +1 per hop
	Sampled bool   // head-sampled at the origin: every node keeps the trace
}

// Valid reports whether the context names a trace.
func (c Ctx) Valid() bool { return c.ID != 0 }

// MaxSpans bounds the inline span array of one trace handle. Spans past
// the cap are counted in Dropped, never recorded — a trace is a fixed-
// size object so recording can never allocate.
const MaxSpans = 24

// span is one recorded stage interval.
type span struct {
	stage Stage
	start int64 // unix nanoseconds
	dur   int64 // nanoseconds
}

// T is one live trace: the handle threaded through the request path
// (server reply, core.Transaction, archive pending list). All methods
// are nil-safe; recording on a nil *T is the disabled path and costs one
// comparison. A *T is safe for concurrent use — server goroutine, engine
// and the archive's flusher may record spans at the same time.
type T struct {
	id      uint64
	hop     uint8
	sampled bool  // head-sampled (locally or at the origin): publish to the ring
	start   int64 // unix ns at Start/StartCtx
	rec     *Recorder

	mu      sync.Mutex
	n       int
	spans   [MaxSpans]span
	dropped int
	total   int64 // set at Finish; later spans may still extend the timeline
	done    bool
}

// Ctx returns the wire context for propagating this trace to the next
// hop. Nil-safe: a nil trace yields the zero (untraced) context.
func (t *T) Ctx() Ctx {
	if t == nil {
		return Ctx{}
	}
	return Ctx{ID: t.id, Hop: t.hop, Sampled: t.sampled}
}

// ID returns the trace id (0 on nil).
func (t *T) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// Sampled reports whether the trace was head-sampled — the bit that
// decides wire propagation and ring admission. Nil-safe.
func (t *T) Sampled() bool { return t != nil && t.sampled }

// Span records one completed stage interval. Nil-safe and allocation-
// free: the span lands in the handle's inline array (or bumps the
// dropped counter past MaxSpans).
func (t *T) Span(st Stage, start, end time.Time) {
	if t == nil {
		return
	}
	t.SpanNS(st, start.UnixNano(), end.Sub(start).Nanoseconds())
}

// SpanNS is Span on pre-read clocks: start in unix nanoseconds, dur in
// nanoseconds. Negative durations clamp to zero (clock skew must not
// corrupt the timeline).
func (t *T) SpanNS(st Stage, startNS, durNS int64) {
	if t == nil {
		return
	}
	if durNS < 0 {
		durNS = 0
	}
	t.mu.Lock()
	if t.n < MaxSpans {
		t.spans[t.n] = span{stage: st, start: startNS, dur: durNS}
		t.n++
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Config tunes a Recorder. The zero value selects every default.
type Config struct {
	// SampleEvery head-samples one request in N for ring publication
	// (default 1024; 1 publishes every request).
	SampleEvery int
	// SlowThreshold is the always-keep bar: any trace whose total runtime
	// meets it lands in the slow reservoir regardless of sampling
	// (default 10ms; negative disables the reservoir).
	SlowThreshold time.Duration
	// Ring is the head-sampled ring capacity (default 256).
	Ring int
	// SlowRing is the slow reservoir capacity (default 64).
	SlowRing int
}

// Defaults for Config's zero fields.
const (
	DefaultSampleEvery   = 1024
	DefaultSlowThreshold = 10 * time.Millisecond
	DefaultRing          = 256
	DefaultSlowRing      = 64
)

// Recorder owns one node's trace buffers: the head-sampled ring and the
// slow reservoir. A nil Recorder is the disabled state — every method is
// nil-safe and free.
type Recorder struct {
	node        string
	sampleEvery uint64
	slowNS      int64 // 0 = reservoir disabled
	ctr         atomic.Uint64
	idState     atomic.Uint64

	mu        sync.Mutex
	ring      []*T // circular; newest at head-1
	head      int
	slowRing  []*T
	slowHead  int
	started   int64
	sampled   int64
	slow      int64
	propagated int64
}

// New builds a Recorder for one node (the name stamps every published
// trace, so merged cluster views attribute spans to hosts).
func New(node string, cfg Config) *Recorder {
	if cfg.SampleEvery <= 0 {
		cfg.SampleEvery = DefaultSampleEvery
	}
	if cfg.SlowThreshold == 0 {
		cfg.SlowThreshold = DefaultSlowThreshold
	}
	slowNS := cfg.SlowThreshold.Nanoseconds()
	if cfg.SlowThreshold < 0 {
		slowNS = 0
	}
	if cfg.Ring <= 0 {
		cfg.Ring = DefaultRing
	}
	if cfg.SlowRing <= 0 {
		cfg.SlowRing = DefaultSlowRing
	}
	r := &Recorder{
		node:        node,
		sampleEvery: uint64(cfg.SampleEvery),
		slowNS:      slowNS,
		ring:        make([]*T, 0, cfg.Ring),
		slowRing:    make([]*T, 0, cfg.SlowRing),
	}
	// Seed the id generator off the wall clock once, at construction;
	// ids only need to be distinct within a debugging session.
	r.idState.Store(uint64(time.Now().UnixNano()) | 1)
	return r
}

// Enabled reports whether tracing is on. Nil-safe — this is THE check
// every instrumentation site guards with.
func (r *Recorder) Enabled() bool { return r != nil }

// Node returns the recorder's node name ("" on nil).
func (r *Recorder) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// nextID draws a fresh trace id (splitmix64 over an atomic counter:
// well-mixed, lock-free, never zero).
func (r *Recorder) nextID() uint64 {
	x := r.idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		x = 1
	}
	return x
}

// Start opens a trace for a request that originated at this node,
// deciding head sampling here. Returns nil only on a nil recorder —
// when tracing is enabled every request is traced, so the slow
// reservoir sees everything; sampling gates ring publication and wire
// propagation, not recording.
func (r *Recorder) Start() *T {
	if r == nil {
		return nil
	}
	atomic.AddInt64(&r.started, 1)
	sampled := r.ctr.Add(1)%r.sampleEvery == 0
	return &T{
		id:      r.nextID(),
		sampled: sampled,
		start:   time.Now().UnixNano(),
		rec:     r,
	}
}

// StartCtx opens a trace continuing a propagated wire context at the
// next hop: same id, hop+1, the origin's sampling decision. An invalid
// context falls back to Start (the request reached us untraced).
func (r *Recorder) StartCtx(c Ctx) *T {
	if r == nil {
		return nil
	}
	if !c.Valid() {
		return r.Start()
	}
	atomic.AddInt64(&r.started, 1)
	if c.Sampled {
		atomic.AddInt64(&r.propagated, 1)
	}
	return &T{
		id:      c.ID,
		hop:     c.Hop + 1,
		sampled: c.Sampled,
		start:   time.Now().UnixNano(),
		rec:     r,
	}
}

// Finish completes the trace and runs admission: the slow reservoir for
// anything at or over the threshold, the ring for head samples,
// discard otherwise. Nil-safe on both receivers. Spans recorded after
// Finish (the group-commit fsync completes after the response is on the
// wire) still attach — the buffers hold the live handle and Traces()
// snapshots under its lock.
func (r *Recorder) Finish(t *T) {
	if r == nil || t == nil {
		return
	}
	now := time.Now().UnixNano()
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.total = now - t.start
	isSlow := r.slowNS > 0 && t.total >= r.slowNS
	t.mu.Unlock()

	if !isSlow && !t.sampled {
		return
	}
	r.mu.Lock()
	if isSlow {
		atomic.AddInt64(&r.slow, 1)
		if len(r.slowRing) < cap(r.slowRing) {
			r.slowRing = append(r.slowRing, t)
		} else {
			r.slowRing[r.slowHead] = t
			r.slowHead = (r.slowHead + 1) % cap(r.slowRing)
		}
	} else {
		atomic.AddInt64(&r.sampled, 1)
		if len(r.ring) < cap(r.ring) {
			r.ring = append(r.ring, t)
		} else {
			r.ring[r.head] = t
			r.head = (r.head + 1) % cap(r.ring)
		}
	}
	r.mu.Unlock()
}

// SpanInfo is one published span: plain data, JSON-encodable.
type SpanInfo struct {
	Stage string `json:"stage"`
	Start int64  `json:"start_unix_ns"`
	Dur   int64  `json:"dur_ns"`
}

// Trace is one published trace: the document Traces() returns, the wire
// Traces frame ships, and /debug/trace serves.
type Trace struct {
	ID      string     `json:"id"` // %016x — JSON numbers lose uint64 precision
	Node    string     `json:"node,omitempty"`
	Hop     int        `json:"hop"`
	Sampled bool       `json:"sampled,omitempty"`
	Slow    bool       `json:"slow,omitempty"`
	Start   int64      `json:"start_unix_ns"`
	Total   int64      `json:"total_ns"`
	Dropped int        `json:"dropped_spans,omitempty"`
	Spans   []SpanInfo `json:"spans"`
}

// publish copies a live handle into its published form under its lock.
func (t *T) publish(node string, slow bool) Trace {
	t.mu.Lock()
	out := Trace{
		ID:      FormatID(t.id),
		Node:    node,
		Hop:     int(t.hop),
		Sampled: t.sampled,
		Slow:    slow,
		Start:   t.start,
		Total:   t.total,
		Dropped: t.dropped,
		Spans:   make([]SpanInfo, t.n),
	}
	for i := 0; i < t.n; i++ {
		s := t.spans[i]
		out.Spans[i] = SpanInfo{Stage: s.stage.String(), Start: s.start, Dur: s.dur}
	}
	t.mu.Unlock()
	return out
}

// Traces snapshots both buffers, newest first, slow reservoir entries
// flagged. Nil-safe (returns nil).
func (r *Recorder) Traces() []Trace {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ring := make([]*T, len(r.ring))
	head := r.head
	copy(ring, r.ring)
	slowRing := make([]*T, len(r.slowRing))
	slowHead := r.slowHead
	copy(slowRing, r.slowRing)
	r.mu.Unlock()

	out := make([]Trace, 0, len(ring)+len(slowRing))
	// Newest first: walk each circular buffer backwards from its head.
	for i := len(slowRing) - 1; i >= 0; i-- {
		out = append(out, slowRing[(i+slowHead)%len(slowRing)].publish(r.node, true))
	}
	for i := len(ring) - 1; i >= 0; i-- {
		out = append(out, ring[(i+head)%len(ring)].publish(r.node, false))
	}
	return out
}

// Stats is the recorder's own accounting, for the metrics snapshot.
type Stats struct {
	Started    int64 `json:"started"`    // traces opened (≈ requests while enabled)
	Sampled    int64 `json:"sampled"`    // admitted to the ring by head sampling
	Slow       int64 `json:"slow"`       // admitted to the slow reservoir
	Propagated int64 `json:"propagated"` // opened from a sampled wire context
}

// Stats reads the counters. Nil-safe (zeros).
func (r *Recorder) Stats() Stats {
	if r == nil {
		return Stats{}
	}
	return Stats{
		Started:    atomic.LoadInt64(&r.started),
		Sampled:    atomic.LoadInt64(&r.sampled),
		Slow:       atomic.LoadInt64(&r.slow),
		Propagated: atomic.LoadInt64(&r.propagated),
	}
}
