// Package plist implements the persistent, key-sorted linked list used by
// the paper's experiments: "For simplicity, a linked-list implementation of
// both the database and individual relations was used" (Section 4).
//
// The list is purely functional. An update never modifies an existing cell;
// it copies the spine up to the affected position and shares the entire
// suffix with the previous version ("selective object copying ... with
// references to components of previously constructed data objects achieving
// a sharing effect", Section 1). Old versions therefore remain valid
// forever.
//
// Every cell remembers the trace task that constructed it. A traversal step
// depends both on the previous step and on the visited cell's constructor,
// so a reader of a version still being built by an earlier transaction
// pipelines one wavefront behind the builder — precisely the lenient
// pipelining of Section 2.3, recovered here as DAG structure.
package plist

import (
	"funcdb/internal/eval"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// cell is one immutable list cell.
type cell struct {
	tuple value.Tuple
	next  *cell
	task  trace.TaskID // constructor task; None for pre-existing data
}

// cellArena hands out cells from chunked allocations: a copied spine of n
// cells costs O(n/chunkSize) mallocs instead of n. Handed-out pointers are
// stable — a full chunk is replaced, never grown. Chunks start small (most
// updates under a skewed key distribution copy only a short prefix) and the
// cap bounds how much dead prefix a still-shared cell can pin: every cell
// in a chunk was built for one version, so at worst chunkMax-1 superseded
// neighbors stay reachable alongside a live one.
type cellArena struct{ chunk []cell }

const (
	chunkMin = 4
	chunkMax = 64
)

func (a *cellArena) take() *cell {
	if len(a.chunk) == cap(a.chunk) {
		n := cap(a.chunk) * 2
		if n < chunkMin {
			n = chunkMin
		}
		if n > chunkMax {
			n = chunkMax
		}
		a.chunk = make([]cell, 0, n)
	}
	a.chunk = a.chunk[:len(a.chunk)+1]
	return &a.chunk[len(a.chunk)-1]
}

// List is a persistent sorted list of tuples keyed by Tuple.Key. The zero
// List is empty and ready to use.
type List struct {
	head *cell
	size int
}

// Len returns the number of tuples.
func (l List) Len() int { return l.size }

// IsEmpty reports whether the list holds no tuples.
func (l List) IsEmpty() bool { return l.size == 0 }

// HeadTask returns the constructor task of the head cell: the moment this
// version of the list became accessible as a value. None for empty or
// pre-existing lists.
func (l List) HeadTask() trace.TaskID {
	if l.head == nil {
		return trace.None
	}
	return l.head.task
}

// FromTuples builds a list from pre-existing data (e.g. the initial
// database). Tuples are inserted untraced, as if the structure predated the
// computation; duplicates by key replace earlier tuples.
func FromTuples(tuples []value.Tuple) List {
	l := List{}
	for _, t := range tuples {
		l, _ = l.Insert(nil, t, trace.None)
	}
	return l
}

// Find searches for key. It returns the tuple (zero Tuple when absent),
// whether it was found, and the trace task of the final step, which the
// caller threads into response construction. after is the caller's control
// predecessor (e.g. the transaction dispatch task).
func (l List) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	step := after
	for c := l.head; c != nil; c = c.next {
		step = ctx.Task(trace.KindVisit, step, c.task)
		ctx.VisitedN(1)
		switch cmp := c.tuple.Key().Compare(key); {
		case cmp == 0:
			return c.tuple, true, step
		case cmp > 0:
			// Sorted order: key cannot appear later.
			return value.Tuple{}, false, step
		}
	}
	return value.Tuple{}, false, step
}

// Insert returns a new list containing t (replacing any tuple with the same
// key), sharing every cell at or after the insertion point's successor.
//
// The copied spine is built front to back, mirroring the lenient recursion
//
//	insert(x, l) = cons(first(l), {insert(x, rest(l))})
//
// in which the head copy is constructed *first* with a still-uncomputed
// tail. The returned task is therefore the constructor of the new head cell
// — the moment the new version exists as an object — and a subsequent
// reader's visit of each copied cell depends on that cell's own
// constructor, producing the paper's pipeline wavefront.
func (l List) Insert(ctx *eval.Ctx, t value.Tuple, after trace.TaskID) (List, trace.Op) {
	key := t.Key()

	var arena cellArena
	var newHead, prevNew *cell
	link := func(n *cell) {
		if prevNew == nil {
			newHead = n
		} else {
			prevNew.next = n
		}
		prevNew = n
	}

	headTask := trace.None
	step := after
	c := l.head
	replaced := false
	for c != nil {
		step = ctx.Task(trace.KindVisit, step, c.task)
		ctx.VisitedN(1)
		cmp := c.tuple.Key().Compare(key)
		if cmp >= 0 {
			replaced = cmp == 0
			break
		}
		// Copy this cell; its tail is lenient (linked as the walk
		// continues).
		step = ctx.Task(trace.KindConstruct, step)
		if headTask == trace.None {
			headTask = step
		}
		n := arena.take()
		n.tuple, n.task = c.tuple, step
		link(n)
		ctx.Created(1)
		c = c.next
	}

	suffix := c
	if replaced {
		suffix = c.next
	}
	shared := 0
	for s := suffix; s != nil; s = s.next {
		shared++
	}
	ctx.SharedN(int64(shared))

	step = ctx.Task(trace.KindConstruct, step)
	if headTask == trace.None {
		headTask = step
	}
	n := arena.take()
	n.tuple, n.next, n.task = t, suffix, step
	link(n)
	ctx.Created(1)

	size := l.size + 1
	if replaced {
		size = l.size
	}
	return List{head: newHead, size: size}, trace.Op{Ready: headTask, Done: step}
}

// Delete returns a new list without the tuple keyed by key, sharing the
// suffix past the removed cell. When the key is absent the receiver itself
// is returned (no reconstruction for a no-op, mirroring read-only
// transactions).
func (l List) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (List, bool, trace.Op) {
	var arena cellArena
	var newHead, prevNew *cell
	link := func(n *cell) {
		if prevNew == nil {
			newHead = n
		} else {
			prevNew.next = n
		}
		prevNew = n
	}

	headTask := trace.None
	step := after
	c := l.head
	found := false
	for c != nil {
		step = ctx.Task(trace.KindVisit, step, c.task)
		ctx.VisitedN(1)
		cmp := c.tuple.Key().Compare(key)
		if cmp == 0 {
			found = true
			break
		}
		if cmp > 0 {
			break
		}
		step = ctx.Task(trace.KindConstruct, step)
		if headTask == trace.None {
			headTask = step
		}
		n := arena.take()
		n.tuple, n.task = c.tuple, step
		link(n)
		ctx.Created(1)
		c = c.next
	}
	if !found {
		if prevNew == nil {
			// Nothing was copied (empty list or key below the head): the
			// old version is the result.
			return l, false, trace.Op{Done: step}
		}
		// Key absent mid-list: the functional recursion has already built
		// the copied prefix, so the result is a new (equal) version sharing
		// the remainder — it cannot retract the copies it made before the
		// outcome was known.
		shared := 0
		for s := c; s != nil; s = s.next {
			shared++
		}
		ctx.SharedN(int64(shared))
		prevNew.next = c
		return List{head: newHead, size: l.size}, false, trace.Op{Ready: headTask, Done: step}
	}

	suffix := c.next
	shared := 0
	for s := suffix; s != nil; s = s.next {
		shared++
	}
	ctx.SharedN(int64(shared))

	if prevNew == nil {
		// Deleting the head: the new version is the shared suffix itself;
		// it becomes available at the decision visit.
		return List{head: suffix, size: l.size - 1}, true, trace.Op{Ready: step, Done: step}
	}
	prevNew.next = suffix
	return List{head: newHead, size: l.size - 1}, true, trace.Op{Ready: headTask, Done: step}
}

// Tuples returns the list contents in key order.
func (l List) Tuples() []value.Tuple {
	out := make([]value.Tuple, 0, l.size)
	for c := l.head; c != nil; c = c.next {
		out = append(out, c.tuple)
	}
	return out
}

// Range calls visit for each tuple with lo <= key <= hi, in key order,
// recording one traced visit per inspected cell.
func (l List) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	step := after
	for c := l.head; c != nil; c = c.next {
		step = ctx.Task(trace.KindVisit, step, c.task)
		ctx.VisitedN(1)
		if c.tuple.Key().Compare(hi) > 0 {
			break
		}
		if c.tuple.Key().Compare(lo) >= 0 {
			visit(c.tuple)
		}
	}
	return step
}

// SharedCellsWith counts the cells of l that are physically shared with
// other (pointer-identical), measuring the paper's partial physical
// reconstruction. It is O(len(l) * 1) using suffix identity: once the two
// lists join they share everything after the join.
func (l List) SharedCellsWith(other List) int {
	set := make(map[*cell]struct{}, other.size)
	for c := other.head; c != nil; c = c.next {
		set[c] = struct{}{}
	}
	n := 0
	for c := l.head; c != nil; c = c.next {
		if _, ok := set[c]; ok {
			n++
		}
	}
	return n
}
