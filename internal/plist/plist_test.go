package plist

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"funcdb/internal/eval"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

func tup(k int64, rest ...string) value.Tuple {
	items := []value.Item{value.Int(k)}
	for _, s := range rest {
		items = append(items, value.Str(s))
	}
	return value.NewTuple(items...)
}

func keysOf(l List) []int64 {
	var out []int64
	for _, t := range l.Tuples() {
		out = append(out, t.Key().AsInt())
	}
	return out
}

func TestEmptyList(t *testing.T) {
	var l List
	if !l.IsEmpty() || l.Len() != 0 {
		t.Error("zero List not empty")
	}
	if _, ok, _ := l.Find(nil, value.Int(1), trace.None); ok {
		t.Error("Find on empty list succeeded")
	}
	if got, found, _ := l.Delete(nil, value.Int(1), trace.None); found || got.Len() != 0 {
		t.Error("Delete on empty list claimed success")
	}
	if l.HeadTask() != trace.None {
		t.Error("empty list HeadTask not None")
	}
}

func TestInsertMaintainsSortedOrder(t *testing.T) {
	var l List
	for _, k := range []int64{5, 1, 9, 3, 7} {
		l, _ = l.Insert(nil, tup(k), trace.None)
	}
	got := keysOf(l)
	want := []int64{1, 3, 5, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("keys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("keys = %v, want %v", got, want)
		}
	}
}

func TestInsertReplacesSameKey(t *testing.T) {
	var l List
	l, _ = l.Insert(nil, tup(1, "old"), trace.None)
	l, _ = l.Insert(nil, tup(1, "new"), trace.None)
	if l.Len() != 1 {
		t.Fatalf("Len = %d after upsert", l.Len())
	}
	got, ok, _ := l.Find(nil, value.Int(1), trace.None)
	if !ok || got.Field(1).AsString() != "new" {
		t.Errorf("Find = %v, %v", got, ok)
	}
}

func TestFind(t *testing.T) {
	l := FromTuples([]value.Tuple{tup(1), tup(3), tup(5)})
	tests := []struct {
		key  int64
		want bool
	}{
		{0, false}, {1, true}, {2, false}, {3, true}, {4, false}, {5, true}, {6, false},
	}
	for _, tc := range tests {
		got, ok, _ := l.Find(nil, value.Int(tc.key), trace.None)
		if ok != tc.want {
			t.Errorf("Find(%d) = %v, want %v", tc.key, ok, tc.want)
		}
		if ok && got.Key().AsInt() != tc.key {
			t.Errorf("Find(%d) returned tuple %v", tc.key, got)
		}
	}
}

func TestDelete(t *testing.T) {
	base := FromTuples([]value.Tuple{tup(1), tup(3), tup(5)})
	tests := []struct {
		key       int64
		found     bool
		remaining []int64
	}{
		{1, true, []int64{3, 5}},
		{3, true, []int64{1, 5}},
		{5, true, []int64{1, 3}},
		{2, false, []int64{1, 3, 5}},
		{9, false, []int64{1, 3, 5}},
	}
	for _, tc := range tests {
		got, found, _ := base.Delete(nil, value.Int(tc.key), trace.None)
		if found != tc.found {
			t.Errorf("Delete(%d) found = %v, want %v", tc.key, found, tc.found)
		}
		keys := keysOf(got)
		if len(keys) != len(tc.remaining) {
			t.Errorf("Delete(%d) left %v, want %v", tc.key, keys, tc.remaining)
			continue
		}
		for i := range keys {
			if keys[i] != tc.remaining[i] {
				t.Errorf("Delete(%d) left %v, want %v", tc.key, keys, tc.remaining)
			}
		}
	}
}

func TestOldVersionsUnchanged(t *testing.T) {
	// The heart of the functional approach: updates never disturb prior
	// versions (Section 2.2: each transaction "conceptually produces a new
	// instance" while the old one remains).
	v0 := FromTuples([]value.Tuple{tup(2), tup(4)})
	v1, _ := v0.Insert(nil, tup(3), trace.None)
	v2, _, _ := v1.Delete(nil, value.Int(2), trace.None)
	v3, _ := v2.Insert(nil, tup(2, "back"), trace.None)

	check := func(name string, l List, want []int64) {
		t.Helper()
		got := keysOf(l)
		if len(got) != len(want) {
			t.Errorf("%s = %v, want %v", name, got, want)
			return
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%s = %v, want %v", name, got, want)
				return
			}
		}
	}
	check("v0", v0, []int64{2, 4})
	check("v1", v1, []int64{2, 3, 4})
	check("v2", v2, []int64{3, 4})
	check("v3", v3, []int64{2, 3, 4})
}

func TestStructureSharing(t *testing.T) {
	// Inserting at the front shares the entire old list; inserting at the
	// back shares nothing (full spine copy); middle shares the suffix.
	mk := func(n int) List {
		tuples := make([]value.Tuple, 0, n)
		for i := 0; i < n; i++ {
			tuples = append(tuples, tup(int64(2*i+10)))
		}
		return FromTuples(tuples)
	}
	const n = 10
	tests := []struct {
		name       string
		key        int64
		wantShared int
	}{
		{"front insert shares all", 1, n},
		{"back insert shares none", 99, 0},
		{"middle insert shares suffix", 19, 5}, // keys 10..28; 19 goes before 20: shares {20,22,24,26,28}
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			base := mk(n)
			next, _ := base.Insert(nil, tup(tc.key), trace.None)
			if got := next.SharedCellsWith(base); got != tc.wantShared {
				t.Errorf("shared cells = %d, want %d", got, tc.wantShared)
			}
		})
	}
}

func TestStatsCounters(t *testing.T) {
	stats := &eval.Stats{}
	ctx := &eval.Ctx{Stats: stats}
	base := FromTuples([]value.Tuple{tup(10), tup(20), tup(30), tup(40)})

	// Insert before 30: visits 10,20,30; copies 10,20 + new cell; shares 30,40.
	_, _ = base.Insert(ctx, tup(25), trace.None)
	if got := stats.Visited.Load(); got != 3 {
		t.Errorf("Visited = %d, want 3", got)
	}
	if got := stats.Created.Load(); got != 3 {
		t.Errorf("Created = %d, want 3", got)
	}
	if got := stats.Shared.Load(); got != 2 {
		t.Errorf("Shared = %d, want 2", got)
	}
	if f := stats.SharingFraction(); f != 2.0/5.0 {
		t.Errorf("SharingFraction = %v", f)
	}
}

func TestTracedFindProducesVisitChain(t *testing.T) {
	g := trace.New()
	ctx := &eval.Ctx{Graph: g}
	l := FromTuples([]value.Tuple{tup(1), tup(2), tup(3)})
	_, ok, last := l.Find(ctx, value.Int(3), trace.None)
	if !ok {
		t.Fatal("Find failed")
	}
	p := g.Analyze()
	if p.Work != 3 {
		t.Errorf("Work = %d, want 3 visits", p.Work)
	}
	if p.Depth != 3 {
		t.Errorf("Depth = %d, want 3 (sequential scan)", p.Depth)
	}
	if last == trace.None {
		t.Error("Find returned no final task under tracing")
	}
}

func TestTracedInsertWavefront(t *testing.T) {
	// Build a list traced, then trace a find on the NEW version: the find's
	// visit of each copied cell must depend on that cell's constructor,
	// producing a pipeline (depth < sum of both chains).
	g := trace.New()
	ctx := &eval.Ctx{Graph: g}
	base := FromTuples([]value.Tuple{tup(1), tup(2), tup(3), tup(4)})
	v1, op := base.Insert(ctx, tup(5), trace.None)
	if op.Ready == trace.None {
		t.Fatal("traced insert returned no Ready task")
	}
	if op.Done == trace.None || op.Done < op.Ready {
		t.Fatalf("Done task %d should follow Ready task %d", op.Done, op.Ready)
	}
	_, ok, _ := v1.Find(ctx, value.Int(5), op.Ready)
	if !ok {
		t.Fatal("Find on new version failed")
	}
	p := g.Analyze()
	// Insert: 4 visits + 5 constructs = 9 tasks; find: 5 visits. Work 14.
	if p.Work != 14 {
		t.Errorf("Work = %d, want 14", p.Work)
	}
	// Max width must exceed 1: the find overlaps the insert's construction.
	if p.MaxWidth < 2 {
		t.Errorf("MaxWidth = %d, want >= 2 (pipelining)", p.MaxWidth)
	}
	// And depth must be well under work (parallelism exists).
	if p.Depth >= p.Work {
		t.Errorf("Depth %d not less than Work %d", p.Depth, p.Work)
	}
}

func TestRange(t *testing.T) {
	l := FromTuples([]value.Tuple{tup(1), tup(3), tup(5), tup(7)})
	var got []int64
	l.Range(nil, value.Int(2), value.Int(6), trace.None, func(tu value.Tuple) {
		got = append(got, tu.Key().AsInt())
	})
	want := []int64{3, 5}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range = %v, want %v", got, want)
		}
	}
}

func TestDeleteHeadReturnsSharedSuffix(t *testing.T) {
	base := FromTuples([]value.Tuple{tup(1), tup(2), tup(3)})
	next, found, _ := base.Delete(nil, value.Int(1), trace.None)
	if !found {
		t.Fatal("Delete(1) not found")
	}
	if got := next.SharedCellsWith(base); got != 2 {
		t.Errorf("shared = %d, want 2 (whole suffix)", got)
	}
}

// model-based property test: the persistent list behaves exactly like a
// sorted map under a random operation sequence, and no historical version
// is ever disturbed.
func TestPropertyMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var l List
		model := map[int64]value.Tuple{}
		type version struct {
			list List
			snap []int64
		}
		var history []version

		snapshot := func() []int64 {
			keys := make([]int64, 0, len(model))
			for k := range model {
				keys = append(keys, k)
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			return keys
		}

		for op := 0; op < 60; op++ {
			k := int64(r.Intn(20))
			switch r.Intn(3) {
			case 0: // insert
				tu := tup(k, "v")
				l, _ = l.Insert(nil, tu, trace.None)
				model[k] = tu
			case 1: // delete
				var found bool
				l, found, _ = l.Delete(nil, value.Int(k), trace.None)
				if _, inModel := model[k]; inModel != found {
					return false
				}
				delete(model, k)
			case 2: // find
				_, ok, _ := l.Find(nil, value.Int(k), trace.None)
				if _, inModel := model[k]; inModel != ok {
					return false
				}
			}
			if l.Len() != len(model) {
				return false
			}
			history = append(history, version{list: l, snap: snapshot()})
		}

		// Every historical version still matches its snapshot.
		for _, v := range history {
			got := keysOf(v.list)
			if len(got) != len(v.snap) {
				return false
			}
			for i := range got {
				if got[i] != v.snap[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertySharingPlusCreatedCoversResult(t *testing.T) {
	// For any single insert: created + shared == len(result), i.e. the new
	// version is exactly "copied prefix + new cell + shared suffix".
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(30)
		tuples := make([]value.Tuple, 0, n)
		for i := 0; i < n; i++ {
			tuples = append(tuples, tup(int64(r.Intn(50))))
		}
		base := FromTuples(tuples)
		stats := &eval.Stats{}
		ctx := &eval.Ctx{Stats: stats}
		next, _ := base.Insert(ctx, tup(int64(r.Intn(50))), trace.None)
		return stats.Created.Load()+stats.Shared.Load() == int64(next.Len())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
