package relalg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"funcdb/internal/lenient"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

func mkRel(keys ...int64) relation.Relation {
	tuples := make([]value.Tuple, 0, len(keys))
	for _, k := range keys {
		tuples = append(tuples, value.NewTuple(value.Int(k), value.Str("v")))
	}
	return relation.FromTuples(relation.RepList, tuples)
}

func keysOf(rows Rows) []int64 {
	var out []int64
	lenient.ForEach(rows, func(t value.Tuple) { out = append(out, t.Key().AsInt()) })
	return out
}

func eq(t *testing.T, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	eq(t, keysOf(Scan(mkRel(3, 1, 2))), []int64{1, 2, 3})
	eq(t, keysOf(Scan(mkRel())), nil)
}

func TestSelect(t *testing.T) {
	even := func(tu value.Tuple) bool { return tu.Key().AsInt()%2 == 0 }
	eq(t, keysOf(Select(even, Scan(mkRel(1, 2, 3, 4, 5, 6)))), []int64{2, 4, 6})
}

func TestProject(t *testing.T) {
	rel := relation.FromTuples(relation.RepList, []value.Tuple{
		value.NewTuple(value.Int(1), value.Str("a"), value.Int(10)),
		value.NewTuple(value.Int(2), value.Str("b"), value.Int(20)),
	})
	rows := lenient.ToSlice(Project([]int{2, 1}, Scan(rel)))
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Field(0).AsInt() != 10 || rows[0].Field(1).AsString() != "a" {
		t.Errorf("row 0 = %v", rows[0])
	}
	if err := ValidateFields(rel, []int{0, 2}); err != nil {
		t.Error(err)
	}
	if err := ValidateFields(rel, []int{3}); err == nil {
		t.Error("out-of-range projection validated")
	}
	if err := ValidateFields(mkRel(), []int{99}); err != nil {
		t.Error("empty relation rejected projection")
	}
}

func TestPipelineIsLazy(t *testing.T) {
	// Take(2) over select-of-scan must not enumerate the whole relation's
	// filter applications.
	var tested int
	pred := func(tu value.Tuple) bool {
		tested++
		return tu.Key().AsInt()%2 == 0
	}
	rel := mkRel(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	got := lenient.TakeSlice(Select(pred, Scan(rel)), 2)
	if len(got) != 2 {
		t.Fatalf("got %d rows", len(got))
	}
	// Finding the first two evens (2, 4) requires testing keys 1..4 plus
	// at most one more for the strict head of the next cell.
	if tested > 6 {
		t.Errorf("predicate ran %d times for Take(2)", tested)
	}
}

func TestEquiJoin(t *testing.T) {
	emp := relation.FromTuples(relation.RepList, []value.Tuple{
		value.NewTuple(value.Int(1), value.Str("ada"), value.Int(100)),   // dept 100
		value.NewTuple(value.Int(2), value.Str("grace"), value.Int(200)), // dept 200
		value.NewTuple(value.Int(3), value.Str("alan"), value.Int(100)),
		value.NewTuple(value.Int(4), value.Str("edsger"), value.Int(999)), // no dept
	})
	dept := relation.FromTuples(relation.RepList, []value.Tuple{
		value.NewTuple(value.Int(100), value.Str("eng")),
		value.NewTuple(value.Int(200), value.Str("sys")),
	})
	joined := lenient.ToSlice(EquiJoin(Scan(emp), 2, Scan(dept), 0))
	if len(joined) != 3 {
		t.Fatalf("joined %d rows: %v", len(joined), joined)
	}
	// Each joined row: emp fields then dept fields.
	for _, row := range joined {
		if row.Arity() != 5 {
			t.Fatalf("row arity %d", row.Arity())
		}
		if !row.Field(2).Equal(row.Field(3)) {
			t.Errorf("join key mismatch in %v", row)
		}
	}
	if joined[0].Field(1).AsString() != "ada" || joined[0].Field(4).AsString() != "eng" {
		t.Errorf("first row = %v", joined[0])
	}
}

func TestEquiJoinEmptySides(t *testing.T) {
	if got := lenient.ToSlice(EquiJoin(Scan(mkRel()), 0, Scan(mkRel(1)), 0)); len(got) != 0 {
		t.Errorf("join with empty left = %v", got)
	}
	if got := lenient.ToSlice(EquiJoin(Scan(mkRel(1)), 0, Scan(mkRel()), 0)); len(got) != 0 {
		t.Errorf("join with empty right = %v", got)
	}
}

func TestUnionDedupes(t *testing.T) {
	got := keysOf(Union(Scan(mkRel(1, 2, 3)), Scan(mkRel(2, 3, 4))))
	eq(t, got, []int64{1, 2, 3, 4})
}

func TestDifferenceAndIntersect(t *testing.T) {
	a := Scan(mkRel(1, 2, 3, 4))
	b := Scan(mkRel(2, 4, 6))
	eq(t, keysOf(Difference(a, b)), []int64{1, 3})
	eq(t, keysOf(Intersect(Scan(mkRel(1, 2, 3, 4)), Scan(mkRel(2, 4, 6)))), []int64{2, 4})
}

func TestCountAndMaterialize(t *testing.T) {
	rows := Select(func(tu value.Tuple) bool { return tu.Key().AsInt() > 2 }, Scan(mkRel(1, 2, 3, 4, 5)))
	if got := Count(rows); got != 3 {
		t.Errorf("Count = %d", got)
	}
	rel := Materialize(relation.RepAVL, Select(func(tu value.Tuple) bool { return tu.Key().AsInt() > 2 }, Scan(mkRel(1, 2, 3, 4, 5))))
	if rel.Rep() != relation.RepAVL || rel.Len() != 3 {
		t.Errorf("materialized %v with %d tuples", rel.Rep(), rel.Len())
	}
}

func TestGroupCount(t *testing.T) {
	rel := relation.FromTuples(relation.RepList, []value.Tuple{
		value.NewTuple(value.Int(1), value.Str("eng")),
		value.NewTuple(value.Int(2), value.Str("sys")),
		value.NewTuple(value.Int(3), value.Str("eng")),
		value.NewTuple(value.Int(4), value.Str("eng")),
	})
	groups := GroupCount(1, Scan(rel))
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0].Field(0).AsString() != "eng" || groups[0].Field(1).AsInt() != 3 {
		t.Errorf("group 0 = %v", groups[0])
	}
	if groups[1].Field(0).AsString() != "sys" || groups[1].Field(1).AsInt() != 1 {
		t.Errorf("group 1 = %v", groups[1])
	}
}

func TestPropertySetOperationLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() relation.Relation {
			n := r.Intn(15)
			keys := make([]int64, 0, n)
			for i := 0; i < n; i++ {
				keys = append(keys, int64(r.Intn(12)))
			}
			return mkRel(keys...)
		}
		a, b := mk(), mk()
		// |A ∖ B| + |A ∩ B| == |A|
		diff := Count(Difference(Scan(a), Scan(b)))
		inter := Count(Intersect(Scan(a), Scan(b)))
		if diff+inter != a.Len() {
			return false
		}
		// Union is idempotent on identical inputs.
		if Count(Union(Scan(a), Scan(a))) != a.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPropertyJoinSizeBound(t *testing.T) {
	// |A ⋈ B| on a key field of A is at most |A| when B has unique join
	// keys (each left row matches at most one right row).
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		na, nb := r.Intn(12), r.Intn(12)
		aT := make([]value.Tuple, 0, na)
		for i := 0; i < na; i++ {
			aT = append(aT, value.NewTuple(value.Int(int64(i)), value.Int(int64(r.Intn(6)))))
		}
		bT := make([]value.Tuple, 0, nb)
		for i := 0; i < nb; i++ {
			bT = append(bT, value.NewTuple(value.Int(int64(i)), value.Str("d")))
		}
		a := relation.FromTuples(relation.RepList, aT)
		b := relation.FromTuples(relation.RepList, bT)
		joined := Count(EquiJoin(Scan(a), 1, Scan(b), 0))
		return joined <= a.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
