// Package relalg provides functional relational algebra over relation
// values, in the spirit of the paper's reference [15] (J. Kim, "Set
// abstraction and databases in a Function Equation Language"): queries are
// compositions of pure operators over tuple streams, not plans mutating
// cursors.
//
// Every operator consumes and produces lenient tuple streams, so pipelines
// are demand-driven end to end: Take(5) over a selection of a projection of
// a scan reads only as much of the underlying relation as those five
// results require. Because relation versions are immutable, a pipeline
// constructed against a version is a stable query — it can be re-run,
// shared across goroutines, or kept alongside newer versions, and it always
// answers from its version.
package relalg

import (
	"fmt"

	"funcdb/internal/lenient"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// Rows is a lazy stream of tuples.
type Rows = *lenient.Stream[value.Tuple]

// Scan produces the tuples of a relation version in key order, lazily: the
// relation is enumerated only as far as the stream is demanded.
func Scan(rel relation.Relation) Rows {
	// Relations expose ordered enumeration via Tuples; wrap it lazily so a
	// prefix demand costs a prefix walk. (Tuples() itself is O(n); for the
	// list representation we avoid it by walking the stream cells through
	// Range with an early exit — but Range has no early exit, so buffer
	// once per scan. The buffering is per-Scan, not per-demand.)
	tuples := rel.Tuples()
	return lenient.Generate(func(i int) (value.Tuple, bool) {
		if i >= len(tuples) {
			return value.Tuple{}, false
		}
		return tuples[i], true
	})
}

// Select keeps the tuples satisfying pred (σ).
func Select(pred func(value.Tuple) bool, in Rows) Rows {
	return lenient.Filter(pred, in)
}

// Project maps each tuple to the given field indices (π). Out-of-range
// indices are an error surfaced by panic at construction of the offending
// tuple; use Validate beforehand for untrusted indices.
func Project(fields []int, in Rows) Rows {
	idx := append([]int(nil), fields...)
	return lenient.ApplyToAll(func(t value.Tuple) value.Tuple {
		items := make([]value.Item, 0, len(idx))
		for _, f := range idx {
			items = append(items, t.Field(f))
		}
		return value.NewTuple(items...)
	}, in)
}

// ValidateFields checks a projection list against a relation's arity by
// sampling its first tuple; empty relations accept any projection.
func ValidateFields(rel relation.Relation, fields []int) error {
	tuples := rel.Tuples()
	if len(tuples) == 0 {
		return nil
	}
	arity := tuples[0].Arity()
	for _, f := range fields {
		if f < 0 || f >= arity {
			return fmt.Errorf("relalg: field %d out of range for arity %d", f, arity)
		}
	}
	return nil
}

// EquiJoin joins two streams on left.Field(lf) == right.Field(rf),
// concatenating the matched tuples (⋈). The right side is materialized
// into a hash index at construction; the left side streams lazily.
func EquiJoin(left Rows, lf int, right Rows, rf int) Rows {
	index := map[uint64][]value.Tuple{}
	lenient.ForEach(right, func(t value.Tuple) {
		k := value.NewTuple(t.Field(rf)).Hash()
		index[k] = append(index[k], t)
	})

	// emit walks the left stream, holding the pending matches of the
	// current left tuple. Pending slices are freshly allocated per left
	// tuple and never mutated, so the lazy tails may safely retain views
	// of them.
	var emit func(l Rows, lt value.Tuple, pending []value.Tuple) Rows
	emit = func(l Rows, lt value.Tuple, pending []value.Tuple) Rows {
		for {
			if len(pending) > 0 {
				match, rest := pending[0], pending[1:]
				out := value.NewTuple(append(lt.Fields(), match.Fields()...)...)
				tailL, tailLT := l, lt
				return lenient.FollowedBy(out, func() Rows {
					return emit(tailL, tailLT, rest)
				})
			}
			if l.IsEmpty() {
				return nil
			}
			lt = l.First()
			l = l.Rest()
			// Hash collisions are resolved by exact comparison.
			var fresh []value.Tuple
			for _, m := range index[value.NewTuple(lt.Field(lf)).Hash()] {
				if m.Field(rf).Equal(lt.Field(lf)) {
					fresh = append(fresh, m)
				}
			}
			pending = fresh
		}
	}
	return emit(left, value.Tuple{}, nil)
}

// Union concatenates two streams, dropping duplicate tuples (first
// occurrence wins); inputs need not be sorted. The second stream's
// deduplication is constructed only after the first is exhausted, since the
// dedup state is shared.
func Union(a, b Rows) Rows {
	seen := map[uint64]bool{}
	pred := func(t value.Tuple) bool {
		k := t.Hash()
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	}
	return lenient.AppendLazy(lenient.Filter(pred, a), func() Rows {
		return lenient.Filter(pred, b)
	})
}

// Difference yields the tuples of a that do not appear in b (full-tuple
// equality). b is materialized at construction; a streams lazily.
func Difference(a, b Rows) Rows {
	drop := map[uint64][]value.Tuple{}
	lenient.ForEach(b, func(t value.Tuple) {
		drop[t.Hash()] = append(drop[t.Hash()], t)
	})
	return lenient.Filter(func(t value.Tuple) bool {
		for _, d := range drop[t.Hash()] {
			if d.Equal(t) {
				return false
			}
		}
		return true
	}, a)
}

// Intersect yields the tuples of a that also appear in b (full-tuple
// equality). b is materialized at construction; a streams lazily.
func Intersect(a, b Rows) Rows {
	keep := map[uint64][]value.Tuple{}
	lenient.ForEach(b, func(t value.Tuple) {
		keep[t.Hash()] = append(keep[t.Hash()], t)
	})
	return lenient.Filter(func(t value.Tuple) bool {
		for _, d := range keep[t.Hash()] {
			if d.Equal(t) {
				return true
			}
		}
		return false
	}, a)
}

// Count fully demands the stream and returns its length.
func Count(in Rows) int { return lenient.Length(in) }

// Materialize builds a relation of the given representation from a stream
// (fully demanding it).
func Materialize(rep relation.Rep, in Rows) relation.Relation {
	var tuples []value.Tuple
	lenient.ForEach(in, func(t value.Tuple) { tuples = append(tuples, t) })
	return relation.FromTuples(rep, tuples)
}

// GroupCount groups by the given field and counts group sizes, returning
// (groupValue, count) tuples sorted by first appearance.
func GroupCount(field int, in Rows) []value.Tuple {
	counts := map[uint64]int{}
	var order []value.Item
	byHash := map[uint64]value.Item{}
	lenient.ForEach(in, func(t value.Tuple) {
		it := t.Field(field)
		h := value.NewTuple(it).Hash()
		if _, ok := counts[h]; !ok {
			order = append(order, it)
			byHash[h] = it
		}
		counts[h]++
	})
	out := make([]value.Tuple, 0, len(order))
	for _, it := range order {
		h := value.NewTuple(it).Hash()
		out = append(out, value.NewTuple(it, value.Int(int64(counts[h]))))
	}
	return out
}
