package ptree

import (
	"errors"
	"fmt"

	"funcdb/internal/eval"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// DefaultPageCap is the default tuple/child capacity of a page: the paper's
// "balanced tree strategy in which the size of a tree node is one physical
// page" (Section 3.3). The small default keeps toy relations multi-page so
// the Figure 2-2 sharing structure is visible; production embedders tune it
// to their real page size.
const DefaultPageCap = 8

// page is one immutable page: either a data page of sorted tuples or a
// directory page of separator keys and children (Figure 2-2's "data pages"
// and "directory pages").
type page struct {
	leaf   bool
	tuples []value.Tuple // data pages: sorted by key
	seps   []value.Item  // directory pages: len(kids)-1 separators
	kids   []*page
	task   trace.TaskID
}

// Paged is a persistent B+-tree of fixed-capacity pages. Updating re-creates
// only the pages on the root-to-leaf path ("If an insertion or modification
// affects only a few pages, then all other pages can be shared. A new
// directory structure is created, the old one being left intact." —
// Section 2.2). The zero Paged is invalid; use NewPaged or PagedFromTuples.
type Paged struct {
	root *page
	size int
	cap  int
}

// NewPaged returns an empty paged tree with the given page capacity
// (DefaultPageCap if cap <= 0; minimum useful capacity is 2).
func NewPaged(pageCap int) Paged {
	if pageCap <= 0 {
		pageCap = DefaultPageCap
	}
	if pageCap < 2 {
		pageCap = 2
	}
	return Paged{root: &page{leaf: true}, cap: pageCap}
}

// PagedFromTuples bulk-builds a paged tree untraced from initial data.
func PagedFromTuples(pageCap int, tuples []value.Tuple) Paged {
	t := NewPaged(pageCap)
	for _, tu := range tuples {
		t, _ = t.Insert(nil, tu, trace.None)
	}
	return t
}

// Len returns the number of tuples.
func (t Paged) Len() int { return t.size }

// PageCap returns the page capacity.
func (t Paged) PageCap() int { return t.cap }

// HeadTask returns the root directory page's constructor task.
func (t Paged) HeadTask() trace.TaskID {
	if t.root == nil {
		return trace.None
	}
	return t.root.task
}

// PageCount returns the total number of pages in this version.
func (t Paged) PageCount() int {
	var count func(p *page) int
	count = func(p *page) int {
		n := 1
		for _, k := range p.kids {
			n += count(k)
		}
		return n
	}
	if t.root == nil {
		return 0
	}
	return count(t.root)
}

// Height returns the number of page levels.
func (t Paged) Height() int {
	h := 0
	for p := t.root; p != nil; {
		h++
		if p.leaf {
			break
		}
		p = p.kids[0]
	}
	return h
}

// childIndex returns the child slot covering key within a directory page:
// the first i with key < seps[i], else the last child.
func childIndex(p *page, key value.Item) int {
	i := 0
	for ; i < len(p.seps); i++ {
		if key.Compare(p.seps[i]) < 0 {
			break
		}
	}
	return i
}

// Find searches for key with one visit task per page on the path — the
// paper's point that "the transit time of a page from secondary to main
// memory is likely to dominate the processing time", so the page is the
// honest unit of work.
func (t Paged) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	step := after
	p := t.root
	for {
		step = ctx.Task(trace.KindVisit, step, p.task)
		ctx.VisitedN(1)
		if p.leaf {
			for _, tu := range p.tuples {
				if c := tu.Key().Compare(key); c == 0 {
					return tu, true, step
				} else if c > 0 {
					break
				}
			}
			return value.Tuple{}, false, step
		}
		p = p.kids[childIndex(p, key)]
	}
}

// pagedOp threads tracing through one update and counts copied pages for
// the Figure 2-2 sharing measurements.
type pagedOp struct {
	ctx      *eval.Ctx
	step     trace.TaskID
	created  int64
	capacity int
}

func (o *pagedOp) visit(p *page) {
	o.step = o.ctx.Task(trace.KindVisit, o.step, p.task)
	o.ctx.VisitedN(1)
}

func (o *pagedOp) build(p *page) *page {
	deps := []trace.TaskID{o.step}
	for _, k := range p.kids {
		if k != nil && k.task != trace.None {
			deps = append(deps, k.task)
		}
	}
	p.task = o.ctx.Task(trace.KindConstruct, deps...)
	o.step = p.task
	o.created++
	o.ctx.Created(1)
	return p
}

// pagedSplit carries a page split upward: the child became [left, right]
// separated by sep.
type pagedSplit struct {
	sep         value.Item
	left, right *page
}

// Insert returns a new tree containing tu (replacing an equal-keyed tuple).
// Exactly the root-to-leaf path is copied; on overflow a page splits and
// the split propagates.
func (t Paged) Insert(ctx *eval.Ctx, tu value.Tuple, after trace.TaskID) (Paged, trace.Op) {
	op := &pagedOp{ctx: ctx, step: after, capacity: t.cap}
	root, split, replaced := op.insert(t.root, tu)
	if split != nil {
		root = op.build(&page{
			seps: []value.Item{split.sep},
			kids: []*page{split.left, split.right},
		})
	}
	size := t.size + 1
	if replaced {
		size = t.size
	}
	nt := Paged{root: root, size: size, cap: t.cap}
	ctx.SharedN(int64(nt.PageCount()) - op.created)
	return nt, trace.Op{Ready: root.task, Done: op.step}
}

func (o *pagedOp) insertInLeaf(p *page, tu value.Tuple) (tuples []value.Tuple, replaced bool) {
	key := tu.Key()
	tuples = make([]value.Tuple, 0, len(p.tuples)+1)
	inserted := false
	for _, cur := range p.tuples {
		if !inserted {
			switch c := cur.Key().Compare(key); {
			case c == 0:
				tuples = append(tuples, tu)
				inserted, replaced = true, true
				continue
			case c > 0:
				tuples = append(tuples, tu)
				inserted = true
			}
		}
		tuples = append(tuples, cur)
	}
	if !inserted {
		tuples = append(tuples, tu)
	}
	return tuples, replaced
}

func (o *pagedOp) insert(p *page, tu value.Tuple) (*page, *pagedSplit, bool) {
	o.visit(p)
	if p.leaf {
		tuples, replaced := o.insertInLeaf(p, tu)
		if len(tuples) <= o.capacity {
			return o.build(&page{leaf: true, tuples: tuples}), nil, replaced
		}
		mid := len(tuples) / 2
		left := o.build(&page{leaf: true, tuples: tuples[:mid:mid]})
		right := o.build(&page{leaf: true, tuples: tuples[mid:]})
		return nil, &pagedSplit{sep: tuples[mid].Key(), left: left, right: right}, replaced
	}

	i := childIndex(p, tu.Key())
	child, split, replaced := o.insert(p.kids[i], tu)
	if split == nil {
		kids := append([]*page(nil), p.kids...)
		kids[i] = child
		return o.build(&page{seps: p.seps, kids: kids}), nil, replaced
	}
	seps := make([]value.Item, 0, len(p.seps)+1)
	kids := make([]*page, 0, len(p.kids)+1)
	seps = append(seps, p.seps[:i]...)
	seps = append(seps, split.sep)
	seps = append(seps, p.seps[i:]...)
	kids = append(kids, p.kids[:i]...)
	kids = append(kids, split.left, split.right)
	kids = append(kids, p.kids[i+1:]...)
	if len(kids) <= o.capacity {
		return o.build(&page{seps: seps, kids: kids}), nil, replaced
	}
	// Directory overflow: split around the middle separator.
	mid := len(kids) / 2
	leftSeps := append([]value.Item(nil), seps[:mid-1]...)
	rightSeps := append([]value.Item(nil), seps[mid:]...)
	left := o.build(&page{seps: leftSeps, kids: append([]*page(nil), kids[:mid]...)})
	right := o.build(&page{seps: rightSeps, kids: append([]*page(nil), kids[mid:]...)})
	return nil, &pagedSplit{sep: seps[mid-1], left: left, right: right}, replaced
}

// Delete removes key if present. In the spirit of append-only functional
// stores (and the paper's archive view of old versions), pages may
// underflow: an emptied data page is unlinked from its directory and a
// directory left with a single child collapses, but no borrow/merge
// rebalancing is performed. Height never grows and lookups remain correct;
// see DESIGN.md for the deviation note.
func (t Paged) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (Paged, bool, trace.Op) {
	op := &pagedOp{ctx: ctx, step: after, capacity: t.cap}
	root, found := op.delete(t.root, key)
	if !found {
		return t, false, trace.Op{Done: op.step}
	}
	if root == nil {
		root = op.build(&page{leaf: true})
	}
	for !root.leaf && len(root.kids) == 1 {
		root = root.kids[0]
	}
	nt := Paged{root: root, size: t.size - 1, cap: t.cap}
	if shared := int64(nt.PageCount()) - op.created; shared > 0 {
		ctx.SharedN(shared)
	}
	ready := root.task
	if ready == trace.None {
		ready = op.step
	}
	return nt, true, trace.Op{Ready: ready, Done: op.step}
}

// delete returns the rebuilt page (nil if it became empty) and whether the
// key was found.
func (o *pagedOp) delete(p *page, key value.Item) (*page, bool) {
	o.visit(p)
	if p.leaf {
		for i, tu := range p.tuples {
			c := tu.Key().Compare(key)
			if c > 0 {
				break
			}
			if c == 0 {
				if len(p.tuples) == 1 {
					return nil, true
				}
				tuples := make([]value.Tuple, 0, len(p.tuples)-1)
				tuples = append(tuples, p.tuples[:i]...)
				tuples = append(tuples, p.tuples[i+1:]...)
				return o.build(&page{leaf: true, tuples: tuples}), true
			}
		}
		return p, false
	}
	i := childIndex(p, key)
	child, found := o.delete(p.kids[i], key)
	if !found {
		return p, false
	}
	if child != nil {
		kids := append([]*page(nil), p.kids...)
		kids[i] = child
		return o.build(&page{seps: p.seps, kids: kids}), true
	}
	// The child page emptied: unlink it and drop one separator.
	if len(p.kids) == 1 {
		return nil, true
	}
	kids := make([]*page, 0, len(p.kids)-1)
	kids = append(kids, p.kids[:i]...)
	kids = append(kids, p.kids[i+1:]...)
	sepDrop := i
	if sepDrop == len(p.seps) {
		sepDrop = len(p.seps) - 1
	}
	seps := make([]value.Item, 0, len(p.seps)-1)
	seps = append(seps, p.seps[:sepDrop]...)
	seps = append(seps, p.seps[sepDrop+1:]...)
	return o.build(&page{seps: seps, kids: kids}), true
}

// Range visits tuples with lo <= key <= hi in key order.
func (t Paged) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	step := after
	var walk func(p *page)
	walk = func(p *page) {
		step = ctx.Task(trace.KindVisit, step, p.task)
		ctx.VisitedN(1)
		if p.leaf {
			for _, tu := range p.tuples {
				k := tu.Key()
				if k.Compare(hi) > 0 {
					return
				}
				if k.Compare(lo) >= 0 {
					visit(tu)
				}
			}
			return
		}
		for i, kid := range p.kids {
			okLeft := i == 0 || p.seps[i-1].Compare(hi) <= 0
			okRight := i == len(p.seps) || p.seps[i].Compare(lo) > 0
			if okLeft && okRight {
				walk(kid)
			}
		}
	}
	walk(t.root)
	return step
}

// Tuples returns the contents in key order.
func (t Paged) Tuples() []value.Tuple {
	out := make([]value.Tuple, 0, t.size)
	var walk func(p *page)
	walk = func(p *page) {
		if p.leaf {
			out = append(out, p.tuples...)
			return
		}
		for _, kid := range p.kids {
			walk(kid)
		}
	}
	walk(t.root)
	return out
}

// SharedPagesWith counts pages physically shared with another version —
// the measured form of Figure 2-2.
func (t Paged) SharedPagesWith(other Paged) int {
	set := map[*page]struct{}{}
	var collect func(p *page)
	collect = func(p *page) {
		set[p] = struct{}{}
		for _, k := range p.kids {
			collect(k)
		}
	}
	if other.root != nil {
		collect(other.root)
	}
	n := 0
	var count func(p *page)
	count = func(p *page) {
		if _, ok := set[p]; ok {
			n++
		}
		for _, k := range p.kids {
			count(k)
		}
	}
	if t.root != nil {
		count(t.root)
	}
	return n
}

// checkInvariants verifies page shape: sorted leaves, correct separator
// bounds, size consistency, and capacity limits; used by tests.
func (t Paged) checkInvariants() error {
	if t.root == nil {
		return errors.New("ptree: nil root")
	}
	var walk func(p *page, lo, hi *value.Item) (int, error)
	walk = func(p *page, lo, hi *value.Item) (int, error) {
		if p.leaf {
			if len(p.tuples) > t.cap {
				return 0, fmt.Errorf("ptree: data page over capacity: %d > %d", len(p.tuples), t.cap)
			}
			for i, tu := range p.tuples {
				if i > 0 && p.tuples[i-1].Key().Compare(tu.Key()) >= 0 {
					return 0, errors.New("ptree: data page out of order")
				}
				if lo != nil && tu.Key().Compare(*lo) < 0 {
					return 0, errors.New("ptree: tuple below separator bound")
				}
				if hi != nil && tu.Key().Compare(*hi) >= 0 {
					return 0, errors.New("ptree: tuple above separator bound")
				}
			}
			return len(p.tuples), nil
		}
		if len(p.kids) > t.cap {
			return 0, fmt.Errorf("ptree: directory page over capacity: %d > %d", len(p.kids), t.cap)
		}
		if len(p.seps) != len(p.kids)-1 {
			return 0, fmt.Errorf("ptree: %d separators for %d children", len(p.seps), len(p.kids))
		}
		total := 0
		for i, kid := range p.kids {
			var klo, khi *value.Item
			if i > 0 {
				klo = &p.seps[i-1]
			} else {
				klo = lo
			}
			if i < len(p.seps) {
				khi = &p.seps[i]
			} else {
				khi = hi
			}
			n, err := walk(kid, klo, khi)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	}
	n, err := walk(t.root, nil, nil)
	if err != nil {
		return err
	}
	if n != t.size {
		return fmt.Errorf("ptree: size %d but %d tuples", t.size, n)
	}
	return nil
}
