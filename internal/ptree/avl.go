// Package ptree implements the persistent balanced-tree relation
// representations discussed in Section 2.2 of the paper: "The technique
// extends with even further sharing possibilities by making the directory
// structure into a tree. ... all but a proportion (log n)/n of a relation
// can be shared during updating."
//
// Three structures are provided:
//
//   - AVL: a persistent AVL tree, after Myers [18] ("Efficient applicative
//     data types").
//   - Tree23: a persistent 2-3 tree, after Hoffman & O'Donnell [8], whose
//     equational code the paper notes was transcribed to FEL.
//   - Paged: a persistent B-tree of fixed-capacity pages with separate
//     directory pages, the structure of Figure 2-2 and Section 3.3.
//
// All updates are by path copying: the nodes/pages on the search path are
// re-created, everything else is shared with the previous version. Unlike
// the linked list, a tree node's constructor depends on its new children's
// constructors (balance decisions need completed subtrees), so updates
// contribute short bottom-up chains of log n tasks rather than long
// pipelined spines — which is why the paper projects trees to be "even more
// efficient, since fewer nodes need to be modified on insertion".
package ptree

import (
	"funcdb/internal/eval"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// avlNode is one immutable AVL node.
type avlNode struct {
	tuple  value.Tuple
	left   *avlNode
	right  *avlNode
	height int8
	task   trace.TaskID
}

// AVL is a persistent AVL tree of tuples keyed by Tuple.Key. The zero AVL
// is empty and ready to use.
type AVL struct {
	root *avlNode
	size int
}

// AVLFromTuples builds a tree untraced from initial data; equal keys
// replace.
func AVLFromTuples(tuples []value.Tuple) AVL {
	t := AVL{}
	for _, tu := range tuples {
		t, _ = t.Insert(nil, tu, trace.None)
	}
	return t
}

// Len returns the number of tuples.
func (t AVL) Len() int { return t.size }

// HeadTask returns the root's constructor task (None when empty or
// pre-existing).
func (t AVL) HeadTask() trace.TaskID {
	if t.root == nil {
		return trace.None
	}
	return t.root.task
}

// Height returns the tree height (0 when empty).
func (t AVL) Height() int { return int(height(t.root)) }

func height(n *avlNode) int8 {
	if n == nil {
		return 0
	}
	return n.height
}

func balanceOf(n *avlNode) int { return int(height(n.left)) - int(height(n.right)) }

// Find searches for key with one visit task per node on the path.
func (t AVL) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	step := after
	for n := t.root; n != nil; {
		step = ctx.Task(trace.KindVisit, step, n.task)
		ctx.VisitedN(1)
		switch cmp := key.Compare(n.tuple.Key()); {
		case cmp == 0:
			return n.tuple, true, step
		case cmp < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return value.Tuple{}, false, step
}

// Insert returns a new tree containing tu (replacing an equal-keyed tuple).
// The op's Ready and Done coincide at the new root's constructor: tree
// shape depends on subtree balance, so the root cannot exist leniently
// before its children.
func (t AVL) Insert(ctx *eval.Ctx, tu value.Tuple, after trace.TaskID) (AVL, trace.Op) {
	ins := &avlOp{ctx: ctx, step: after}
	root, replaced := ins.insert(t.root, tu)
	size := t.size + 1
	if replaced {
		size = t.size
	}
	newSize := size
	ctx.SharedN(int64(newSize) - ins.created)
	return AVL{root: root, size: size}, trace.Op{Ready: root.task, Done: ins.step}
}

// avlOp threads the trace chain and allocation count through one update.
type avlOp struct {
	ctx     *eval.Ctx
	step    trace.TaskID
	created int64
}

func (o *avlOp) visit(n *avlNode) {
	o.step = o.ctx.Task(trace.KindVisit, o.step, n.task)
	o.ctx.VisitedN(1)
}

// mk constructs a new node whose task depends on the walk so far and on the
// constructors of its new children (old children contribute through the
// structure itself when later visited).
func (o *avlOp) mk(tu value.Tuple, l, r *avlNode) *avlNode {
	h := height(l)
	if hr := height(r); hr > h {
		h = hr
	}
	deps := []trace.TaskID{o.step}
	if l != nil {
		deps = append(deps, l.task)
	}
	if r != nil {
		deps = append(deps, r.task)
	}
	task := o.ctx.Task(trace.KindConstruct, deps...)
	o.step = task
	o.created++
	o.ctx.Created(1)
	return &avlNode{tuple: tu, left: l, right: r, height: h + 1, task: task}
}

// rebalance restores the AVL invariant for a freshly built node, creating
// the usual single/double rotations persistently.
func (o *avlOp) rebalance(n *avlNode) *avlNode {
	switch b := balanceOf(n); {
	case b > 1:
		if balanceOf(n.left) < 0 {
			// left-right: rotate left child left, then node right.
			n = o.mk(n.tuple, o.rotateLeft(n.left), n.right)
		}
		return o.rotateRight(n)
	case b < -1:
		if balanceOf(n.right) > 0 {
			n = o.mk(n.tuple, n.left, o.rotateRight(n.right))
		}
		return o.rotateLeft(n)
	default:
		return n
	}
}

func (o *avlOp) rotateRight(n *avlNode) *avlNode {
	l := n.left
	return o.mk(l.tuple, l.left, o.mk(n.tuple, l.right, n.right))
}

func (o *avlOp) rotateLeft(n *avlNode) *avlNode {
	r := n.right
	return o.mk(r.tuple, o.mk(n.tuple, n.left, r.left), r.right)
}

func (o *avlOp) insert(n *avlNode, tu value.Tuple) (*avlNode, bool) {
	if n == nil {
		return o.mk(tu, nil, nil), false
	}
	o.visit(n)
	switch cmp := tu.Key().Compare(n.tuple.Key()); {
	case cmp == 0:
		return o.mk(tu, n.left, n.right), true
	case cmp < 0:
		nl, replaced := o.insert(n.left, tu)
		return o.rebalance(o.mk(n.tuple, nl, n.right)), replaced
	default:
		nr, replaced := o.insert(n.right, tu)
		return o.rebalance(o.mk(n.tuple, n.left, nr)), replaced
	}
}

// Delete returns a new tree without key (reporting whether it was found).
// Like a strict functional deletion it path-copies down to the target and
// promotes the in-order successor when both children exist.
func (t AVL) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (AVL, bool, trace.Op) {
	op := &avlOp{ctx: ctx, step: after}
	root, found := op.delete(t.root, key)
	if !found {
		return t, false, trace.Op{Done: op.step}
	}
	size := t.size - 1
	ctx.SharedN(int64(size) - op.created)
	res := AVL{root: root, size: size}
	ready := trace.None
	if root != nil {
		ready = root.task
	} else {
		ready = op.step
	}
	return res, true, trace.Op{Ready: ready, Done: op.step}
}

func (o *avlOp) delete(n *avlNode, key value.Item) (*avlNode, bool) {
	if n == nil {
		return nil, false
	}
	o.visit(n)
	switch cmp := key.Compare(n.tuple.Key()); {
	case cmp < 0:
		nl, found := o.delete(n.left, key)
		if !found {
			return n, false
		}
		return o.rebalance(o.mk(n.tuple, nl, n.right)), true
	case cmp > 0:
		nr, found := o.delete(n.right, key)
		if !found {
			return n, false
		}
		return o.rebalance(o.mk(n.tuple, n.left, nr)), true
	default:
		switch {
		case n.left == nil:
			return n.right, true
		case n.right == nil:
			return n.left, true
		default:
			succ, nr := o.popMin(n.right)
			return o.rebalance(o.mk(succ, n.left, nr)), true
		}
	}
}

// popMin removes and returns the minimum tuple of a non-empty subtree.
func (o *avlOp) popMin(n *avlNode) (value.Tuple, *avlNode) {
	o.visit(n)
	if n.left == nil {
		return n.tuple, n.right
	}
	minTu, nl := o.popMin(n.left)
	return minTu, o.rebalance(o.mk(n.tuple, nl, n.right))
}

// Range visits tuples with lo <= key <= hi in key order, pruning subtrees
// outside the bounds.
func (t AVL) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	step := after
	var walk func(n *avlNode)
	walk = func(n *avlNode) {
		if n == nil {
			return
		}
		step = ctx.Task(trace.KindVisit, step, n.task)
		ctx.VisitedN(1)
		k := n.tuple.Key()
		if k.Compare(lo) > 0 {
			walk(n.left)
		}
		if k.Compare(lo) >= 0 && k.Compare(hi) <= 0 {
			visit(n.tuple)
		}
		if k.Compare(hi) < 0 {
			walk(n.right)
		}
	}
	walk(t.root)
	return step
}

// Tuples returns the contents in key order.
func (t AVL) Tuples() []value.Tuple {
	out := make([]value.Tuple, 0, t.size)
	var walk func(n *avlNode)
	walk = func(n *avlNode) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, n.tuple)
		walk(n.right)
	}
	walk(t.root)
	return out
}

// SharedNodesWith counts nodes physically shared with another version.
func (t AVL) SharedNodesWith(other AVL) int {
	set := map[*avlNode]struct{}{}
	var collect func(n *avlNode)
	collect = func(n *avlNode) {
		if n == nil {
			return
		}
		set[n] = struct{}{}
		collect(n.left)
		collect(n.right)
	}
	collect(other.root)
	n := 0
	var count func(nd *avlNode)
	count = func(nd *avlNode) {
		if nd == nil {
			return
		}
		if _, ok := set[nd]; ok {
			n++
		}
		count(nd.left)
		count(nd.right)
	}
	count(t.root)
	return n
}

// checkInvariants verifies AVL ordering and balance; used by tests.
func (t AVL) checkInvariants() error {
	var check func(n *avlNode) (int8, error)
	check = func(n *avlNode) (int8, error) {
		if n == nil {
			return 0, nil
		}
		hl, err := check(n.left)
		if err != nil {
			return 0, err
		}
		hr, err := check(n.right)
		if err != nil {
			return 0, err
		}
		if d := hl - hr; d < -1 || d > 1 {
			return 0, errImbalance{at: n.tuple.Key()}
		}
		h := hl
		if hr > h {
			h = hr
		}
		if n.height != h+1 {
			return 0, errHeight{at: n.tuple.Key()}
		}
		if n.left != nil && n.left.tuple.Key().Compare(n.tuple.Key()) >= 0 {
			return 0, errOrder{at: n.tuple.Key()}
		}
		if n.right != nil && n.right.tuple.Key().Compare(n.tuple.Key()) <= 0 {
			return 0, errOrder{at: n.tuple.Key()}
		}
		return h + 1, nil
	}
	_, err := check(t.root)
	return err
}

type errImbalance struct{ at value.Item }

func (e errImbalance) Error() string { return "ptree: AVL imbalance at " + e.at.String() }

type errHeight struct{ at value.Item }

func (e errHeight) Error() string { return "ptree: stale height at " + e.at.String() }

type errOrder struct{ at value.Item }

func (e errOrder) Error() string { return "ptree: ordering violation at " + e.at.String() }
