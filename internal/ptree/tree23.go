package ptree

import (
	"errors"
	"fmt"

	"funcdb/internal/eval"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// t23 is one immutable 2-3 tree node. A 2-node holds one tuple and (if
// internal) two children; a 3-node holds two sorted tuples and three
// children. All leaves are at the same depth.
type t23 struct {
	tuples [2]value.Tuple
	ntup   int8
	kids   [3]*t23 // all nil for terminal nodes
	task   trace.TaskID
}

func (n *t23) terminal() bool { return n.kids[0] == nil }

// Tree23 is a persistent 2-3 tree of tuples keyed by Tuple.Key, after the
// equational formulation of Hoffman & O'Donnell that the paper cites as
// having been transcribed to FEL. The zero Tree23 is empty and ready to
// use.
type Tree23 struct {
	root *t23
	size int
}

// Tree23FromTuples builds a tree untraced from initial data.
func Tree23FromTuples(tuples []value.Tuple) Tree23 {
	t := Tree23{}
	for _, tu := range tuples {
		t, _ = t.Insert(nil, tu, trace.None)
	}
	return t
}

// Len returns the number of tuples.
func (t Tree23) Len() int { return t.size }

// HeadTask returns the root's constructor task.
func (t Tree23) HeadTask() trace.TaskID {
	if t.root == nil {
		return trace.None
	}
	return t.root.task
}

// Height returns the number of levels (0 when empty).
func (t Tree23) Height() int {
	h := 0
	for n := t.root; n != nil; n = n.kids[0] {
		h++
		if n.terminal() {
			break
		}
	}
	return h
}

// t23op threads tracing state through one operation.
type t23op struct {
	ctx     *eval.Ctx
	step    trace.TaskID
	created int64
}

func (o *t23op) visit(n *t23) {
	o.step = o.ctx.Task(trace.KindVisit, o.step, n.task)
	o.ctx.VisitedN(1)
}

func (o *t23op) mk2(tu value.Tuple, l, r *t23) *t23 {
	return o.build(&t23{tuples: [2]value.Tuple{tu}, ntup: 1, kids: [3]*t23{l, r}})
}

func (o *t23op) mk3(tu1, tu2 value.Tuple, l, m, r *t23) *t23 {
	return o.build(&t23{tuples: [2]value.Tuple{tu1, tu2}, ntup: 2, kids: [3]*t23{l, m, r}})
}

func (o *t23op) build(n *t23) *t23 {
	deps := []trace.TaskID{o.step}
	for _, k := range n.kids {
		if k != nil {
			deps = append(deps, k.task)
		}
	}
	n.task = o.ctx.Task(trace.KindConstruct, deps...)
	o.step = n.task
	o.created++
	o.ctx.Created(1)
	return n
}

// Find searches for key.
func (t Tree23) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	step := after
	n := t.root
	for n != nil {
		step = ctx.Task(trace.KindVisit, step, n.task)
		ctx.VisitedN(1)
		i := int8(0)
		for ; i < n.ntup; i++ {
			cmp := key.Compare(n.tuples[i].Key())
			if cmp == 0 {
				return n.tuples[i], true, step
			}
			if cmp < 0 {
				break
			}
		}
		if n.terminal() {
			return value.Tuple{}, false, step
		}
		n = n.kids[i]
	}
	return value.Tuple{}, false, step
}

// kick carries a subtree split upward during insertion: the subtree became
// [left, mid, right] and the parent must absorb mid.
type kick struct {
	mid         value.Tuple
	left, right *t23
}

// Insert returns a new tree containing tu (replacing an equal-keyed tuple).
func (t Tree23) Insert(ctx *eval.Ctx, tu value.Tuple, after trace.TaskID) (Tree23, trace.Op) {
	op := &t23op{ctx: ctx, step: after}
	if t.root == nil {
		root := op.mk2(tu, nil, nil)
		ctx.SharedN(0)
		return Tree23{root: root, size: 1}, trace.Op{Ready: root.task, Done: op.step}
	}
	node, up, replaced := op.insert(t.root, tu)
	if up != nil {
		node = op.mk2(up.mid, up.left, up.right)
	}
	size := t.size + 1
	if replaced {
		size = t.size
	}
	ctx.SharedN(int64(countNodes(node)) - op.created)
	return Tree23{root: node, size: size}, trace.Op{Ready: node.task, Done: op.step}
}

// insert returns either a rebuilt node (kick == nil) or a split.
func (o *t23op) insert(n *t23, tu value.Tuple) (*t23, *kick, bool) {
	o.visit(n)
	key := tu.Key()

	// Position i: index of first tuple with key <= tuples[i].key; replace
	// in place on equality.
	i := int8(0)
	for ; i < n.ntup; i++ {
		cmp := key.Compare(n.tuples[i].Key())
		if cmp == 0 {
			if n.ntup == 1 {
				return o.mk2(tu, n.kids[0], n.kids[1]), nil, true
			}
			if i == 0 {
				return o.mk3(tu, n.tuples[1], n.kids[0], n.kids[1], n.kids[2]), nil, true
			}
			return o.mk3(n.tuples[0], tu, n.kids[0], n.kids[1], n.kids[2]), nil, true
		}
		if cmp < 0 {
			break
		}
	}

	if n.terminal() {
		if n.ntup == 1 {
			// 2-node absorbs the tuple, becoming a 3-node.
			if i == 0 {
				return o.mk3(tu, n.tuples[0], nil, nil, nil), nil, false
			}
			return o.mk3(n.tuples[0], tu, nil, nil, nil), nil, false
		}
		// 3-node splits; middle kicks up.
		a, b := n.tuples[0], n.tuples[1]
		var lo, mid, hi value.Tuple
		switch i {
		case 0:
			lo, mid, hi = tu, a, b
		case 1:
			lo, mid, hi = a, tu, b
		default:
			lo, mid, hi = a, b, tu
		}
		l := o.mk2(lo, nil, nil)
		r := o.mk2(hi, nil, nil)
		return nil, &kick{mid: mid, left: l, right: r}, false
	}

	child, up, replaced := o.insert(n.kids[i], tu)
	if up == nil {
		// Child rebuilt without splitting: copy this node with the new
		// child in place.
		kids := n.kids
		kids[i] = child
		if n.ntup == 1 {
			return o.mk2(n.tuples[0], kids[0], kids[1]), nil, replaced
		}
		return o.mk3(n.tuples[0], n.tuples[1], kids[0], kids[1], kids[2]), nil, replaced
	}

	// Child split: absorb the kicked tuple.
	if n.ntup == 1 {
		// 2-node becomes a 3-node.
		if i == 0 {
			return o.mk3(up.mid, n.tuples[0], up.left, up.right, n.kids[1]), nil, replaced
		}
		return o.mk3(n.tuples[0], up.mid, n.kids[0], up.left, up.right), nil, replaced
	}
	// 3-node splits in turn.
	a, b := n.tuples[0], n.tuples[1]
	switch i {
	case 0:
		l := o.mk2(up.mid, up.left, up.right)
		r := o.mk2(b, n.kids[1], n.kids[2])
		return nil, &kick{mid: a, left: l, right: r}, replaced
	case 1:
		l := o.mk2(a, n.kids[0], up.left)
		r := o.mk2(b, up.right, n.kids[2])
		return nil, &kick{mid: up.mid, left: l, right: r}, replaced
	default:
		l := o.mk2(a, n.kids[0], n.kids[1])
		r := o.mk2(up.mid, up.left, up.right)
		return nil, &kick{mid: b, left: l, right: r}, replaced
	}
}

// Delete returns a new tree without key, reporting whether it was found.
// Underflow ("holes") propagates upward with the standard borrow/merge
// repairs, all performed persistently.
func (t Tree23) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (Tree23, bool, trace.Op) {
	if t.root == nil {
		return t, false, trace.Op{}
	}
	op := &t23op{ctx: ctx, step: after}
	node, shrunk, found := op.delete(t.root, key)
	if !found {
		return t, false, trace.Op{Done: op.step}
	}
	if shrunk {
		// The root lost its only tuple; its single surviving child (or
		// nothing) becomes the root.
		node = node.kids[0]
	}
	size := t.size - 1
	if node != nil {
		// Holes and pre-fix copies are transient values not present in the
		// final tree, so the sharing estimate is clamped at zero.
		if shared := int64(countNodes(node)) - op.created; shared > 0 {
			ctx.SharedN(shared)
		}
		return Tree23{root: node, size: size}, true, trace.Op{Ready: node.task, Done: op.step}
	}
	return Tree23{size: 0}, true, trace.Op{Ready: op.step, Done: op.step}
}

// delete removes key from the subtree at n. The returned node is the
// rebuilt subtree; shrunk reports that it is a "hole": a pseudo-node with
// ntup == 0 and exactly one child (kids[0]) that is one level shorter than
// the original subtree.
func (o *t23op) delete(n *t23, key value.Item) (node *t23, shrunk, found bool) {
	o.visit(n)

	i := int8(0)
	match := int8(-1)
	for ; i < n.ntup; i++ {
		cmp := key.Compare(n.tuples[i].Key())
		if cmp == 0 {
			match = i
			break
		}
		if cmp < 0 {
			break
		}
	}

	if n.terminal() {
		if match < 0 {
			return n, false, false
		}
		if n.ntup == 2 {
			keep := n.tuples[1-match]
			return o.mk2(keep, nil, nil), false, true
		}
		// Removing the only tuple of a terminal 2-node leaves a hole.
		return o.hole(nil), true, true
	}

	if match >= 0 {
		// Interior match: replace with the in-order successor (min of the
		// child right of the match), then treat as deletion in that child.
		succ, child, shrunkChild := o.popMin23(n.kids[match+1])
		swapped := o.replaceTuple(n, match, succ)
		fixed := o.fix(swapped, match+1, child, shrunkChild)
		return fixed, fixed.ntup == 0, true
	}

	child, shrunkChild, found := o.delete(n.kids[i], key)
	if !found {
		return n, false, false
	}
	fixed := o.fix(n, i, child, shrunkChild)
	return fixed, fixed.ntup == 0, true
}

// hole builds the pseudo-node representing an underflowed subtree.
func (o *t23op) hole(child *t23) *t23 {
	return o.build(&t23{ntup: 0, kids: [3]*t23{child, nil, nil}})
}

// replaceTuple copies n with tuple i replaced (children unchanged; the
// caller immediately re-fixes the affected child slot).
func (o *t23op) replaceTuple(n *t23, i int8, tu value.Tuple) *t23 {
	cp := *n
	cp.tuples[i] = tu
	return o.build(&cp)
}

// popMin23 removes the minimum tuple of the subtree, returning it plus the
// rebuilt subtree and whether it shrunk.
func (o *t23op) popMin23(n *t23) (value.Tuple, *t23, bool) {
	o.visit(n)
	if n.terminal() {
		if n.ntup == 2 {
			return n.tuples[0], o.mk2(n.tuples[1], nil, nil), false
		}
		return n.tuples[0], o.hole(nil), true
	}
	minTu, child, shrunk := o.popMin23(n.kids[0])
	fixed := o.fix(n, 0, child, shrunk)
	return minTu, fixed, fixed.ntup == 0
}

// fix rebuilds n with child slot i replaced by child; when the child is a
// hole (shrunk), it repairs by borrowing from or merging with a sibling.
// The result may itself be a hole (ntup == 0 with one child).
func (o *t23op) fix(n *t23, i int8, child *t23, shrunk bool) *t23 {
	if !shrunk {
		kids := n.kids
		kids[i] = child
		if n.ntup == 1 {
			return o.mk2(n.tuples[0], kids[0], kids[1])
		}
		return o.mk3(n.tuples[0], n.tuples[1], kids[0], kids[1], kids[2])
	}
	// child is a hole: its single subtree is child.kids[0].
	h := child.kids[0]
	if n.ntup == 1 {
		// Parent is a 2-node with sibling s.
		if i == 0 {
			s := n.kids[1]
			if s.ntup == 2 {
				// Borrow: rotate s's left tuple through the parent.
				l := o.mk2(n.tuples[0], h, s.kids[0])
				r := o.mk2(s.tuples[1], s.kids[1], s.kids[2])
				return o.mk2(s.tuples[0], l, r)
			}
			// Merge parent tuple + sibling into a 3-node; hole moves up.
			m := o.mk3(n.tuples[0], s.tuples[0], h, s.kids[0], s.kids[1])
			return o.hole(m)
		}
		s := n.kids[0]
		if s.ntup == 2 {
			l := o.mk2(s.tuples[0], s.kids[0], s.kids[1])
			r := o.mk2(n.tuples[0], s.kids[2], h)
			return o.mk2(s.tuples[1], l, r)
		}
		m := o.mk3(s.tuples[0], n.tuples[0], s.kids[0], s.kids[1], h)
		return o.hole(m)
	}
	// Parent is a 3-node: always repairable without propagating.
	switch i {
	case 0:
		s := n.kids[1]
		if s.ntup == 2 {
			l := o.mk2(n.tuples[0], h, s.kids[0])
			m := o.mk2(s.tuples[1], s.kids[1], s.kids[2])
			return o.mk3(s.tuples[0], n.tuples[1], l, m, n.kids[2])
		}
		m := o.mk3(n.tuples[0], s.tuples[0], h, s.kids[0], s.kids[1])
		return o.mk2(n.tuples[1], m, n.kids[2])
	case 1:
		s := n.kids[0]
		if s.ntup == 2 {
			l := o.mk2(s.tuples[0], s.kids[0], s.kids[1])
			m := o.mk2(n.tuples[0], s.kids[2], h)
			return o.mk3(s.tuples[1], n.tuples[1], l, m, n.kids[2])
		}
		right := n.kids[2]
		if right.ntup == 2 {
			m := o.mk2(n.tuples[1], h, right.kids[0])
			r := o.mk2(right.tuples[1], right.kids[1], right.kids[2])
			return o.mk3(n.tuples[0], right.tuples[0], n.kids[0], m, r)
		}
		m := o.mk3(s.tuples[0], n.tuples[0], s.kids[0], s.kids[1], h)
		return o.mk2(n.tuples[1], m, n.kids[2])
	default:
		s := n.kids[1]
		if s.ntup == 2 {
			m := o.mk2(s.tuples[0], s.kids[0], s.kids[1])
			r := o.mk2(n.tuples[1], s.kids[2], h)
			return o.mk3(n.tuples[0], s.tuples[1], n.kids[0], m, r)
		}
		m := o.mk3(s.tuples[0], n.tuples[1], s.kids[0], s.kids[1], h)
		return o.mk2(n.tuples[0], n.kids[0], m)
	}
}

// Range visits tuples with lo <= key <= hi in key order.
func (t Tree23) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	step := after
	inRange := func(k value.Item) bool {
		return k.Compare(lo) >= 0 && k.Compare(hi) <= 0
	}
	var walk func(n *t23)
	walk = func(n *t23) {
		step = ctx.Task(trace.KindVisit, step, n.task)
		ctx.VisitedN(1)
		if n.terminal() {
			for i := int8(0); i < n.ntup; i++ {
				if inRange(n.tuples[i].Key()) {
					visit(n.tuples[i])
				}
			}
			return
		}
		for i := int8(0); i <= n.ntup; i++ {
			// Child i holds keys in (tuples[i-1], tuples[i]); prune
			// subtrees wholly outside [lo, hi].
			couldHold := (i == 0 || n.tuples[i-1].Key().Compare(hi) < 0) &&
				(i == n.ntup || n.tuples[i].Key().Compare(lo) > 0)
			if couldHold {
				walk(n.kids[i])
			}
			if i < n.ntup && inRange(n.tuples[i].Key()) {
				visit(n.tuples[i])
			}
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return step
}

// Tuples returns the contents in key order.
func (t Tree23) Tuples() []value.Tuple {
	out := make([]value.Tuple, 0, t.size)
	var walk func(n *t23)
	walk = func(n *t23) {
		if n == nil {
			return
		}
		for i := int8(0); i < n.ntup; i++ {
			walk(n.kids[i])
			out = append(out, n.tuples[i])
		}
		walk(n.kids[n.ntup])
	}
	walk(t.root)
	return out
}

func countNodes(n *t23) int {
	if n == nil {
		return 0
	}
	c := 1
	for _, k := range n.kids {
		c += countNodes(k)
	}
	return c
}

// checkInvariants verifies 2-3 shape: uniform leaf depth and 1-2 tuples
// per node with correctly interleaved keys; used by tests.
func (t Tree23) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	var depth func(n *t23) (int, error)
	depth = func(n *t23) (int, error) {
		if n.ntup < 1 || n.ntup > 2 {
			return 0, fmt.Errorf("ptree: node with %d tuples", n.ntup)
		}
		if n.terminal() {
			for i := n.ntup; i < 3; i++ {
				if n.kids[i] != nil {
					return 0, errors.New("ptree: terminal node with children")
				}
			}
			return 1, nil
		}
		want := -1
		for i := int8(0); i <= n.ntup; i++ {
			if n.kids[i] == nil {
				return 0, errors.New("ptree: internal node missing child")
			}
			d, err := depth(n.kids[i])
			if err != nil {
				return 0, err
			}
			if want == -1 {
				want = d
			} else if d != want {
				return 0, errors.New("ptree: leaves at differing depths")
			}
		}
		return want + 1, nil
	}
	if _, err := depth(t.root); err != nil {
		return err
	}
	tuples := t.Tuples()
	for i := 1; i < len(tuples); i++ {
		if tuples[i-1].Key().Compare(tuples[i].Key()) >= 0 {
			return errors.New("ptree: keys out of order")
		}
	}
	if len(tuples) != t.size {
		return fmt.Errorf("ptree: size %d but %d tuples", t.size, len(tuples))
	}
	return nil
}
