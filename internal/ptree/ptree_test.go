package ptree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"funcdb/internal/eval"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

func tup(k int64) value.Tuple { return value.NewTuple(value.Int(k), value.Str("v")) }

// tree is the common interface the three structures share, letting the
// model-based tests run over all of them.
type tree interface {
	Len() int
	Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID)
	Tuples() []value.Tuple
}

func keys(ts []value.Tuple) []int64 {
	out := make([]int64, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Key().AsInt())
	}
	return out
}

func sortedEqual(got []int64, want map[int64]bool) bool {
	wantKeys := make([]int64, 0, len(want))
	for k := range want {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	if len(got) != len(wantKeys) {
		return false
	}
	for i := range got {
		if got[i] != wantKeys[i] {
			return false
		}
	}
	return true
}

// --- AVL ---

func TestAVLBasics(t *testing.T) {
	var tr AVL
	if tr.Len() != 0 || tr.Height() != 0 || tr.HeadTask() != trace.None {
		t.Error("zero AVL not empty")
	}
	for _, k := range []int64{5, 2, 8, 1, 3, 7, 9, 6, 4} {
		tr, _ = tr.Insert(nil, tup(k), trace.None)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", k, err)
		}
	}
	if tr.Len() != 9 {
		t.Errorf("Len = %d", tr.Len())
	}
	got := keys(tr.Tuples())
	for i := int64(1); i <= 9; i++ {
		if got[i-1] != i {
			t.Fatalf("Tuples = %v", got)
		}
	}
	for i := int64(1); i <= 9; i++ {
		if _, ok, _ := tr.Find(nil, value.Int(i), trace.None); !ok {
			t.Errorf("Find(%d) failed", i)
		}
	}
	if _, ok, _ := tr.Find(nil, value.Int(99), trace.None); ok {
		t.Error("Find(99) succeeded")
	}
}

func TestAVLHeightLogarithmic(t *testing.T) {
	var tr AVL
	for i := int64(0); i < 1024; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None) // worst case: sorted input
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// AVL height <= 1.44 log2(n+2); for n=1024 that is ~15.
	if h := tr.Height(); h > 15 {
		t.Errorf("height %d too large for 1024 sorted inserts", h)
	}
}

func TestAVLUpsertReplaces(t *testing.T) {
	var tr AVL
	tr, _ = tr.Insert(nil, value.NewTuple(value.Int(1), value.Str("a")), trace.None)
	tr, _ = tr.Insert(nil, value.NewTuple(value.Int(1), value.Str("b")), trace.None)
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, _, _ := tr.Find(nil, value.Int(1), trace.None)
	if got.Field(1).AsString() != "b" {
		t.Errorf("tuple = %v", got)
	}
}

func TestAVLDelete(t *testing.T) {
	var tr AVL
	for i := int64(0); i < 64; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None)
	}
	for _, k := range []int64{31, 0, 63, 32, 16, 48} {
		var found bool
		tr, found, _ = tr.Delete(nil, value.Int(k), trace.None)
		if !found {
			t.Fatalf("Delete(%d) not found", k)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", k, err)
		}
		if _, ok, _ := tr.Find(nil, value.Int(k), trace.None); ok {
			t.Errorf("key %d still present", k)
		}
	}
	if tr.Len() != 58 {
		t.Errorf("Len = %d", tr.Len())
	}
	_, found, _ := tr.Delete(nil, value.Int(1000), trace.None)
	if found {
		t.Error("Delete(1000) claimed found")
	}
}

func TestAVLPersistence(t *testing.T) {
	var v0 AVL
	for i := int64(0); i < 20; i++ {
		v0, _ = v0.Insert(nil, tup(i), trace.None)
	}
	v1, _ := v0.Insert(nil, tup(100), trace.None)
	v2, _, _ := v1.Delete(nil, value.Int(0), trace.None)
	if v0.Len() != 20 || v1.Len() != 21 || v2.Len() != 20 {
		t.Fatalf("lens = %d,%d,%d", v0.Len(), v1.Len(), v2.Len())
	}
	if _, ok, _ := v0.Find(nil, value.Int(100), trace.None); ok {
		t.Error("v0 sees v1's insert")
	}
	if _, ok, _ := v2.Find(nil, value.Int(0), trace.None); ok {
		t.Error("v2 still has deleted key")
	}
	if _, ok, _ := v1.Find(nil, value.Int(0), trace.None); !ok {
		t.Error("v1 lost key 0")
	}
}

func TestAVLLogarithmicSharing(t *testing.T) {
	// The paper's claim: "all but a proportion (log n)/n of a relation can
	// be shared during updating."
	var tr AVL
	const n = 512
	for i := int64(0); i < n; i++ {
		tr, _ = tr.Insert(nil, tup(i*2), trace.None)
	}
	stats := &eval.Stats{}
	ctx := &eval.Ctx{Stats: stats}
	next, _ := tr.Insert(ctx, tup(101), trace.None)
	created := stats.Created.Load()
	// Path copying: created nodes <= ~1.5 * height + rotations.
	if maxCreated := int64(2*tr.Height() + 3); created > maxCreated {
		t.Errorf("created %d nodes, want <= %d (log n path)", created, maxCreated)
	}
	if shared := next.SharedNodesWith(tr); shared < n-int(created) {
		t.Errorf("shared %d nodes, want >= %d", shared, n-int(created))
	}
}

func TestAVLTracedOpHandles(t *testing.T) {
	g := trace.New()
	ctx := &eval.Ctx{Graph: g}
	var tr AVL
	tr, op := tr.Insert(ctx, tup(1), trace.None)
	if op.Ready == trace.None || op.Done == trace.None {
		t.Error("traced insert returned empty op handles")
	}
	if op.Ready != tr.HeadTask() {
		t.Error("Ready is not the new root's constructor")
	}
	_, found, dop := tr.Delete(ctx, value.Int(1), trace.None)
	if !found || dop.Done == trace.None {
		t.Error("traced delete lost its op handle")
	}
}

func TestAVLRange(t *testing.T) {
	var tr AVL
	for i := int64(0); i < 50; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None)
	}
	var got []int64
	tr.Range(nil, value.Int(10), value.Int(15), trace.None, func(tu value.Tuple) {
		got = append(got, tu.Key().AsInt())
	})
	want := []int64{10, 11, 12, 13, 14, 15}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range = %v", got)
		}
	}
	// Range prunes: visited nodes must be far fewer than n.
	stats := &eval.Stats{}
	tr.Range(&eval.Ctx{Stats: stats}, value.Int(10), value.Int(15), trace.None, func(value.Tuple) {})
	if v := stats.Visited.Load(); v > 20 {
		t.Errorf("Range visited %d nodes of 50", v)
	}
}

// --- 2-3 tree ---

func TestTree23Basics(t *testing.T) {
	var tr Tree23
	if tr.Len() != 0 || tr.Height() != 0 {
		t.Error("zero Tree23 not empty")
	}
	for _, k := range []int64{5, 2, 8, 1, 3, 7, 9, 6, 4, 0} {
		tr, _ = tr.Insert(nil, tup(k), trace.None)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", k, err)
		}
	}
	if tr.Len() != 10 {
		t.Errorf("Len = %d", tr.Len())
	}
	for i := int64(0); i <= 9; i++ {
		if _, ok, _ := tr.Find(nil, value.Int(i), trace.None); !ok {
			t.Errorf("Find(%d) failed", i)
		}
	}
}

func TestTree23UpsertReplaces(t *testing.T) {
	var tr Tree23
	// Exercise replacement in 2-nodes and 3-nodes at several positions.
	for _, k := range []int64{1, 2, 3, 4, 5} {
		tr, _ = tr.Insert(nil, value.NewTuple(value.Int(k), value.Str("old")), trace.None)
	}
	for _, k := range []int64{1, 2, 3, 4, 5} {
		tr, _ = tr.Insert(nil, value.NewTuple(value.Int(k), value.Str("new")), trace.None)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after upsert %d: %v", k, err)
		}
	}
	if tr.Len() != 5 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for _, k := range []int64{1, 2, 3, 4, 5} {
		got, ok, _ := tr.Find(nil, value.Int(k), trace.None)
		if !ok || got.Field(1).AsString() != "new" {
			t.Errorf("Find(%d) = %v, %v", k, got, ok)
		}
	}
}

func TestTree23HeightLogarithmic(t *testing.T) {
	var tr Tree23
	for i := int64(0); i < 1024; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None)
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	// 2-3 tree height <= log2(n+1); for n=1024 that is 10 (and >= log3 n ~ 7).
	if h := tr.Height(); h < 7 || h > 10 {
		t.Errorf("height %d out of [7,10] for 1024 keys", h)
	}
}

func TestTree23DeleteExhaustiveSmall(t *testing.T) {
	// For every size n <= 24 and every deletion target, delete from the
	// tree of 0..n-1 and verify shape + contents. This sweeps all
	// borrow/merge cases deterministically.
	for n := 1; n <= 24; n++ {
		for target := 0; target < n; target++ {
			var tr Tree23
			for i := int64(0); i < int64(n); i++ {
				tr, _ = tr.Insert(nil, tup(i), trace.None)
			}
			nt, found, _ := tr.Delete(nil, value.Int(int64(target)), trace.None)
			if !found {
				t.Fatalf("n=%d delete %d not found", n, target)
			}
			if err := nt.checkInvariants(); err != nil {
				t.Fatalf("n=%d delete %d: %v", n, target, err)
			}
			if nt.Len() != n-1 {
				t.Fatalf("n=%d delete %d: len %d", n, target, nt.Len())
			}
			if _, ok, _ := nt.Find(nil, value.Int(int64(target)), trace.None); ok {
				t.Fatalf("n=%d delete %d: key still present", n, target)
			}
			// Old version untouched.
			if tr.Len() != n {
				t.Fatalf("n=%d delete %d disturbed the old version", n, target)
			}
		}
	}
}

func TestTree23DeleteMissing(t *testing.T) {
	var tr Tree23
	for i := int64(0); i < 10; i++ {
		tr, _ = tr.Insert(nil, tup(i*2), trace.None)
	}
	for _, k := range []int64{-1, 1, 5, 19} {
		nt, found, _ := tr.Delete(nil, value.Int(k), trace.None)
		if found {
			t.Errorf("Delete(%d) claimed found", k)
		}
		if nt.Len() != 10 {
			t.Errorf("Delete(%d) changed size", k)
		}
	}
	var empty Tree23
	if _, found, _ := empty.Delete(nil, value.Int(0), trace.None); found {
		t.Error("delete from empty tree found something")
	}
}

func TestTree23Range(t *testing.T) {
	var tr Tree23
	for i := int64(0); i < 40; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None)
	}
	var got []int64
	tr.Range(nil, value.Int(7), value.Int(13), trace.None, func(tu value.Tuple) {
		got = append(got, tu.Key().AsInt())
	})
	want := []int64{7, 8, 9, 10, 11, 12, 13}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range = %v", got)
		}
	}
}

// --- Paged B-tree ---

func TestPagedBasics(t *testing.T) {
	tr := NewPaged(4)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty paged tree: len %d height %d", tr.Len(), tr.Height())
	}
	for i := int64(0); i < 64; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i, err)
		}
	}
	if tr.Len() != 64 {
		t.Errorf("Len = %d", tr.Len())
	}
	for i := int64(0); i < 64; i++ {
		if _, ok, _ := tr.Find(nil, value.Int(i), trace.None); !ok {
			t.Errorf("Find(%d) failed", i)
		}
	}
	if _, ok, _ := tr.Find(nil, value.Int(-1), trace.None); ok {
		t.Error("Find(-1) succeeded")
	}
	got := keys(tr.Tuples())
	for i := int64(0); i < 64; i++ {
		if got[i] != i {
			t.Fatalf("Tuples out of order: %v", got[:10])
		}
	}
}

func TestPagedDefaultCap(t *testing.T) {
	if got := NewPaged(0).PageCap(); got != DefaultPageCap {
		t.Errorf("default cap = %d", got)
	}
	if got := NewPaged(1).PageCap(); got != 2 {
		t.Errorf("minimum cap = %d", got)
	}
}

func TestPagedUpsertReplaces(t *testing.T) {
	tr := NewPaged(4)
	for i := int64(0); i < 20; i++ {
		tr, _ = tr.Insert(nil, value.NewTuple(value.Int(i), value.Str("old")), trace.None)
	}
	tr, _ = tr.Insert(nil, value.NewTuple(value.Int(7), value.Str("new")), trace.None)
	if tr.Len() != 20 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got, _, _ := tr.Find(nil, value.Int(7), trace.None)
	if got.Field(1).AsString() != "new" {
		t.Errorf("tuple = %v", got)
	}
}

func TestPagedFigure22Sharing(t *testing.T) {
	// Figure 2-2: one insert copies only the root-to-leaf path; all other
	// data pages are shared between old and new directories.
	tr := PagedFromTuples(4, nil)
	for i := int64(0); i < 256; i++ {
		tr, _ = tr.Insert(nil, tup(i*2), trace.None)
	}
	total := tr.PageCount()
	next, _ := tr.Insert(nil, tup(101), trace.None)
	shared := next.SharedPagesWith(tr)
	copied := next.PageCount() - shared
	if copied > tr.Height()+1 {
		t.Errorf("copied %d pages, want <= height+1 = %d", copied, tr.Height()+1)
	}
	if shared < total-copied-1 {
		t.Errorf("shared %d of %d pages", shared, total)
	}
}

func TestPagedDelete(t *testing.T) {
	tr := NewPaged(4)
	const n = 100
	for i := int64(0); i < n; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None)
	}
	r := rand.New(rand.NewSource(2))
	perm := r.Perm(n)
	for idx, k := range perm {
		var found bool
		tr, found, _ = tr.Delete(nil, value.Int(int64(k)), trace.None)
		if !found {
			t.Fatalf("Delete(%d) not found", k)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("after %d deletes: %v", idx+1, err)
		}
		if _, ok, _ := tr.Find(nil, value.Int(int64(k)), trace.None); ok {
			t.Fatalf("key %d still present", k)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d after deleting all", tr.Len())
	}
	// Deleting from empty tree.
	if _, found, _ := tr.Delete(nil, value.Int(0), trace.None); found {
		t.Error("delete from empty tree found something")
	}
}

func TestPagedRange(t *testing.T) {
	tr := NewPaged(4)
	for i := int64(0); i < 60; i++ {
		tr, _ = tr.Insert(nil, tup(i), trace.None)
	}
	var got []int64
	tr.Range(nil, value.Int(25), value.Int(31), trace.None, func(tu value.Tuple) {
		got = append(got, tu.Key().AsInt())
	})
	want := []int64{25, 26, 27, 28, 29, 30, 31}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Range = %v", got)
		}
	}
	// Pruning: visits far fewer pages than the whole tree.
	stats := &eval.Stats{}
	tr.Range(&eval.Ctx{Stats: stats}, value.Int(25), value.Int(31), trace.None, func(value.Tuple) {})
	if v := stats.Visited.Load(); v > int64(tr.PageCount()/2) {
		t.Errorf("Range visited %d of %d pages", v, tr.PageCount())
	}
}

func TestPagedPersistence(t *testing.T) {
	v0 := PagedFromTuples(4, nil)
	for i := int64(0); i < 50; i++ {
		v0, _ = v0.Insert(nil, tup(i), trace.None)
	}
	v1, _ := v0.Insert(nil, tup(500), trace.None)
	v2, _, _ := v1.Delete(nil, value.Int(10), trace.None)
	if v0.Len() != 50 || v1.Len() != 51 || v2.Len() != 50 {
		t.Fatalf("lens = %d,%d,%d", v0.Len(), v1.Len(), v2.Len())
	}
	if _, ok, _ := v0.Find(nil, value.Int(500), trace.None); ok {
		t.Error("v0 sees v1's insert")
	}
	if _, ok, _ := v1.Find(nil, value.Int(10), trace.None); !ok {
		t.Error("v1 lost key 10")
	}
}

// --- model-based property tests over all three trees ---

type treeOps struct {
	name   string
	insert func(tree, value.Tuple) tree
	delete func(tree, value.Item) (tree, bool)
	check  func(tree) error
}

func allTreeOps() []treeOps {
	return []treeOps{
		{
			name: "avl",
			insert: func(t tree, tu value.Tuple) tree {
				nt, _ := t.(AVL).Insert(nil, tu, trace.None)
				return nt
			},
			delete: func(t tree, k value.Item) (tree, bool) {
				nt, found, _ := t.(AVL).Delete(nil, k, trace.None)
				return nt, found
			},
			check: func(t tree) error { return t.(AVL).checkInvariants() },
		},
		{
			name: "2-3",
			insert: func(t tree, tu value.Tuple) tree {
				nt, _ := t.(Tree23).Insert(nil, tu, trace.None)
				return nt
			},
			delete: func(t tree, k value.Item) (tree, bool) {
				nt, found, _ := t.(Tree23).Delete(nil, k, trace.None)
				return nt, found
			},
			check: func(t tree) error { return t.(Tree23).checkInvariants() },
		},
		{
			name: "paged",
			insert: func(t tree, tu value.Tuple) tree {
				nt, _ := t.(Paged).Insert(nil, tu, trace.None)
				return nt
			},
			delete: func(t tree, k value.Item) (tree, bool) {
				nt, found, _ := t.(Paged).Delete(nil, k, trace.None)
				return nt, found
			},
			check: func(t tree) error { return t.(Paged).checkInvariants() },
		},
	}
}

func emptyTreeFor(name string) tree {
	switch name {
	case "avl":
		return AVL{}
	case "2-3":
		return Tree23{}
	case "paged":
		return NewPaged(3)
	}
	panic("unknown tree " + name)
}

func TestPropertyTreesMatchModel(t *testing.T) {
	for _, ops := range allTreeOps() {
		ops := ops
		t.Run(ops.name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				tr := emptyTreeFor(ops.name)
				model := map[int64]bool{}
				for i := 0; i < 150; i++ {
					k := int64(r.Intn(40))
					switch r.Intn(3) {
					case 0:
						tr = ops.insert(tr, tup(k))
						model[k] = true
					case 1:
						var found bool
						tr, found = ops.delete(tr, value.Int(k))
						if model[k] != found {
							return false
						}
						delete(model, k)
					case 2:
						_, ok, _ := tr.Find(nil, value.Int(k), trace.None)
						if model[k] != ok {
							return false
						}
					}
					if tr.Len() != len(model) {
						return false
					}
					if err := ops.check(tr); err != nil {
						t.Logf("invariant: %v", err)
						return false
					}
				}
				return sortedEqual(keys(tr.Tuples()), model)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestPropertyTreePersistenceUnderRandomOps(t *testing.T) {
	// Snapshot every version; after all operations, every snapshot must
	// still enumerate exactly what it enumerated when taken.
	for _, ops := range allTreeOps() {
		ops := ops
		t.Run(ops.name, func(t *testing.T) {
			f := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				tr := emptyTreeFor(ops.name)
				type snap struct {
					tr   tree
					want []int64
				}
				var snaps []snap
				for i := 0; i < 60; i++ {
					k := int64(r.Intn(25))
					if r.Intn(2) == 0 {
						tr = ops.insert(tr, tup(k))
					} else {
						tr, _ = ops.delete(tr, value.Int(k))
					}
					snaps = append(snaps, snap{tr: tr, want: keys(tr.Tuples())})
				}
				for _, s := range snaps {
					got := keys(s.tr.Tuples())
					if len(got) != len(s.want) {
						return false
					}
					for i := range got {
						if got[i] != s.want[i] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}
