// Package query implements the symbolic query language and its translation
// into transactions.
//
// Section 2.1: "By a query we mean a symbolic description of a transaction
// which, for a given database, will produce a response and a new database.
// Thus, we assume a function
//
//	translate: queries --> transactions
//
// which provides such functions from their symbolic descriptions. Thus,
// translate must parse the query and produce a function which is the
// transaction itself. Here is where a language capability for
// 'higher-order' (or function-producing) functions is very useful."
//
// Translate returns a core.Transaction, whose Apply method is exactly that
// produced function. The grammar covers the paper's examples plus the
// natural extensions:
//
//	insert (1, "widget", 3) into R      insert x into R
//	find 1 in R                         find x in R
//	delete 1 from R
//	scan R
//	count R
//	range 1 9 in R
//	create R [using list|avl|2-3|paged]
//
// Bare identifiers denote string items, so the paper's symbolic examples
// ("insert x into R") parse unchanged.
package query

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokWord tokenKind = iota + 1 // keywords and identifiers
	tokInt
	tokString
	tokLParen
	tokRParen
	tokComma
	tokParam // '?', a bind placeholder in a prepared statement
	tokEOF
)

func (k tokenKind) String() string {
	switch k {
	case tokWord:
		return "word"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokParam:
		return "'?'"
	case tokEOF:
		return "end of query"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

// token is one lexical token with its source position (byte offset).
type token struct {
	kind tokenKind
	text string
	i    int64
	pos  int
}

// SyntaxError reports a malformed query with position information.
type SyntaxError struct {
	Query string
	Pos   int
	Msg   string
}

// Error implements error.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query: %s at position %d in %q", e.Msg, e.Pos, e.Query)
}

// lex tokenizes a query string.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case c == '?':
			toks = append(toks, token{kind: tokParam, pos: i})
			i++
		case c == '"':
			j := i + 1
			var b strings.Builder
			for {
				if j >= len(src) {
					return nil, &SyntaxError{Query: src, Pos: i, Msg: "unterminated string literal"}
				}
				if src[j] == '\\' && j+1 < len(src) {
					b.WriteByte(src[j+1])
					j += 2
					continue
				}
				if src[j] == '"' {
					break
				}
				b.WriteByte(src[j])
				j++
			}
			toks = append(toks, token{kind: tokString, text: b.String(), pos: i})
			i = j + 1
		case c == '-' || (c >= '0' && c <= '9'):
			j := i
			if c == '-' {
				j++
				if j >= len(src) || src[j] < '0' || src[j] > '9' {
					return nil, &SyntaxError{Query: src, Pos: i, Msg: "stray '-'"}
				}
			}
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			v, err := strconv.ParseInt(src[i:j], 10, 64)
			if err != nil {
				return nil, &SyntaxError{Query: src, Pos: i, Msg: "integer out of range"}
			}
			toks = append(toks, token{kind: tokInt, i: v, pos: i})
			i = j
		case isWordRune(rune(c)):
			j := i
			for j < len(src) && isWordRune(rune(src[j])) {
				j++
			}
			toks = append(toks, token{kind: tokWord, text: src[i:j], pos: i})
			i = j
		default:
			return nil, &SyntaxError{Query: src, Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

// isWordRune admits identifier characters, including '-' inside words so
// the representation name "2-3" lexes as one token... but a leading digit
// is consumed by the number case first, so "2-3" is handled specially in
// the parser via the rep name table.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}
