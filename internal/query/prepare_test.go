package query

import (
	"strings"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

func TestPrepareBindKinds(t *testing.T) {
	tests := []struct {
		src    string
		params int
		args   []value.Item
		check  func(t *testing.T, tx core.Transaction)
	}{
		{"find ? in R", 1, []value.Item{value.Int(7)}, func(t *testing.T, tx core.Transaction) {
			if tx.Kind != core.KindFind || tx.Rel != "R" || !tx.Key.Equal(value.Int(7)) {
				t.Errorf("bound find wrong: %+v", tx)
			}
		}},
		{"delete ? from S", 1, []value.Item{value.Str("k")}, func(t *testing.T, tx core.Transaction) {
			if tx.Kind != core.KindDelete || !tx.Key.Equal(value.Str("k")) {
				t.Errorf("bound delete wrong: %+v", tx)
			}
		}},
		{"range ? ? in R", 2, []value.Item{value.Int(1), value.Int(9)}, func(t *testing.T, tx core.Transaction) {
			if !tx.Lo.Equal(value.Int(1)) || !tx.Hi.Equal(value.Int(9)) {
				t.Errorf("bound range wrong: %+v", tx)
			}
		}},
		{`insert (?, "name", ?) into R`, 2, []value.Item{value.Int(3), value.Int(250)}, func(t *testing.T, tx core.Transaction) {
			if tx.Tuple.Arity() != 3 || !tx.Tuple.Field(0).Equal(value.Int(3)) ||
				!tx.Tuple.Field(1).Equal(value.Str("name")) || !tx.Tuple.Field(2).Equal(value.Int(250)) {
				t.Errorf("bound insert tuple wrong: %+v", tx.Tuple)
			}
		}},
		{"insert ? into R", 1, []value.Item{value.Int(5)}, func(t *testing.T, tx core.Transaction) {
			if tx.Tuple.Arity() != 1 || !tx.Tuple.Field(0).Equal(value.Int(5)) {
				t.Errorf("bound 1-tuple insert wrong: %+v", tx.Tuple)
			}
		}},
		{"count R", 0, nil, func(t *testing.T, tx core.Transaction) {
			if tx.Kind != core.KindCount {
				t.Errorf("no-param statement wrong: %+v", tx)
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.src, func(t *testing.T) {
			p, err := Prepare(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumParams() != tc.params {
				t.Fatalf("NumParams = %d, want %d", p.NumParams(), tc.params)
			}
			tx, err := p.Bind(tc.args...)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.Validate(); err != nil {
				t.Fatalf("bound transaction invalid: %v", err)
			}
			tc.check(t, tx)
		})
	}
}

func TestPrepareBindIsReusable(t *testing.T) {
	p, err := Prepare("find ? in R")
	if err != nil {
		t.Fatal(err)
	}
	a := p.MustBind(value.Int(1))
	b := p.MustBind(value.Int(2))
	if !a.Key.Equal(value.Int(1)) || !b.Key.Equal(value.Int(2)) {
		t.Error("later binds disturbed earlier ones")
	}
}

func TestPrepareErrors(t *testing.T) {
	if _, err := Translate("find ? in R"); err == nil || !strings.Contains(err.Error(), "prepared") {
		t.Errorf("Translate accepted a placeholder: %v", err)
	}
	if _, err := Prepare("create ?"); err == nil {
		t.Error("placeholder in a relation-name position prepared")
	}
	p, err := Prepare("range ? ? in R")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Bind(value.Int(1)); err == nil {
		t.Error("arity mismatch bound")
	}
	if _, err := p.Bind(value.Int(1), value.Item{}); err == nil {
		t.Error("zero item bound")
	}
}
