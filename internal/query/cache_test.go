package query

import (
	"fmt"
	"sync"
	"testing"

	"funcdb/internal/core"
)

func TestStmtCacheHitReturnsSamePrepared(t *testing.T) {
	c := NewStmtCache(8)
	a, err := c.Get("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Get did not hit the cache")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if a.Rel() != "R" || a.Kind() != core.KindFind {
		t.Errorf("accessors: rel %q kind %v", a.Rel(), a.Kind())
	}
}

func TestStmtCacheErrorNotCached(t *testing.T) {
	c := NewStmtCache(8)
	if _, err := c.Get("not a query"); err == nil {
		t.Fatal("bad query prepared")
	}
	if c.Len() != 0 {
		t.Errorf("error cached: len = %d", c.Len())
	}
}

func TestStmtCacheEvictsLRU(t *testing.T) {
	c := NewStmtCache(4)
	for i := 0; i < 8; i++ {
		if _, err := c.Get(fmt.Sprintf("find %d in R", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	// The newest four survive; the oldest four were evicted.
	c.Get("find 7 in R")
	if hits, _ := c.Stats(); hits != 1 {
		t.Errorf("newest entry evicted: hits = %d", hits)
	}
	c.Get("find 0 in R")
	if _, misses := c.Stats(); misses != 9 {
		t.Errorf("oldest entry survived eviction: misses = %d", misses)
	}
}

func TestStmtCacheInvalidateRel(t *testing.T) {
	c := NewStmtCache(16)
	c.Get("find 1 in R")
	c.Get("count R")
	c.Get("count S")
	c.InvalidateRel("R")
	if c.Len() != 1 {
		t.Fatalf("len after invalidate = %d, want 1", c.Len())
	}
	c.Get("count S")
	if hits, _ := c.Stats(); hits != 1 {
		t.Error("statement on another relation was invalidated")
	}
	c.Get("count R")
	if _, misses := c.Stats(); misses != 4 {
		t.Errorf("invalidated statement still cached: misses = %d", misses)
	}
}

func TestStmtCacheConcurrent(t *testing.T) {
	c := NewStmtCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := fmt.Sprintf("find %d in R%d", i%10, g%3)
				if _, err := c.Get(src); err != nil {
					t.Errorf("Get(%q): %v", src, err)
					return
				}
				if i%50 == 0 {
					c.InvalidateRel(fmt.Sprintf("R%d", g%3))
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestStmtCacheRegisterStableID(t *testing.T) {
	c := NewStmtCache(8)
	id, prep, err := c.Register("find ? in R")
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("Register issued the reserved id 0")
	}
	id2, prep2, err := c.Register("find ? in R")
	if err != nil || id2 != id || prep2 != prep {
		t.Fatalf("re-register diverged: id %d vs %d, err %v", id2, id, err)
	}
	if got, ok := c.ByID(id); !ok || got != prep {
		t.Fatal("ByID did not resolve a live registration")
	}
	if got, ok := c.ByHash(HashText("find ? in R")); !ok || got != prep {
		t.Fatal("ByHash did not resolve a live registration")
	}
	if prep.Hash() != HashText("find ? in R") {
		t.Fatal("Prepared.Hash diverged from HashText")
	}
	// A plain Get on registered text shares the entry (and its id).
	if got, err := c.Get("find ? in R"); err != nil || got != prep {
		t.Fatalf("Get after Register re-prepared: %v", err)
	}
}

func TestStmtCacheEvictionForgetsID(t *testing.T) {
	c := NewStmtCache(2)
	id, _, err := c.Register("find ? in R")
	if err != nil {
		t.Fatal(err)
	}
	// Two younger statements push the registration out of the LRU.
	c.Get("count R")
	c.Get("count S")
	if _, ok := c.ByID(id); ok {
		t.Fatal("evicted id still resolves — a stale id must be unknown, never a stale plan")
	}
	if _, ok := c.ByHash(HashText("find ? in R")); ok {
		t.Fatal("evicted hash still resolves")
	}
	// Re-registering mints a FRESH id: the old one stays dead forever.
	id2, _, err := c.Register("find ? in R")
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("re-register after eviction reused id %d", id)
	}
	if _, ok := c.ByID(id); ok {
		t.Fatal("dead id resurrected by re-registration")
	}
	if _, ok := c.ByID(id2); !ok {
		t.Fatal("fresh id does not resolve")
	}
}

func TestStmtCacheInvalidateRelForgetsID(t *testing.T) {
	c := NewStmtCache(8)
	id, _, err := c.Register("find ? in R")
	if err != nil {
		t.Fatal(err)
	}
	other, _, err := c.Register("count S")
	if err != nil {
		t.Fatal(err)
	}
	c.InvalidateRel("R")
	if _, ok := c.ByID(id); ok {
		t.Fatal("invalidated id still resolves")
	}
	if _, ok := c.ByHash(HashText("find ? in R")); ok {
		t.Fatal("invalidated hash still resolves")
	}
	if _, ok := c.ByID(other); !ok {
		t.Fatal("invalidation of R dropped a statement on S")
	}
	id2, _, err := c.Register("find ? in R")
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("re-register after invalidation reused id %d", id)
	}
}
