package query

import (
	"fmt"
	"sync"
	"testing"

	"funcdb/internal/core"
)

func TestStmtCacheHitReturnsSamePrepared(t *testing.T) {
	c := NewStmtCache(8)
	a, err := c.Get("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get("find 1 in R")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("second Get did not hit the cache")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses; want 1, 1", hits, misses)
	}
	if a.Rel() != "R" || a.Kind() != core.KindFind {
		t.Errorf("accessors: rel %q kind %v", a.Rel(), a.Kind())
	}
}

func TestStmtCacheErrorNotCached(t *testing.T) {
	c := NewStmtCache(8)
	if _, err := c.Get("not a query"); err == nil {
		t.Fatal("bad query prepared")
	}
	if c.Len() != 0 {
		t.Errorf("error cached: len = %d", c.Len())
	}
}

func TestStmtCacheEvictsLRU(t *testing.T) {
	c := NewStmtCache(4)
	for i := 0; i < 8; i++ {
		if _, err := c.Get(fmt.Sprintf("find %d in R", i)); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	// The newest four survive; the oldest four were evicted.
	c.Get("find 7 in R")
	if hits, _ := c.Stats(); hits != 1 {
		t.Errorf("newest entry evicted: hits = %d", hits)
	}
	c.Get("find 0 in R")
	if _, misses := c.Stats(); misses != 9 {
		t.Errorf("oldest entry survived eviction: misses = %d", misses)
	}
}

func TestStmtCacheInvalidateRel(t *testing.T) {
	c := NewStmtCache(16)
	c.Get("find 1 in R")
	c.Get("count R")
	c.Get("count S")
	c.InvalidateRel("R")
	if c.Len() != 1 {
		t.Fatalf("len after invalidate = %d, want 1", c.Len())
	}
	c.Get("count S")
	if hits, _ := c.Stats(); hits != 1 {
		t.Error("statement on another relation was invalidated")
	}
	c.Get("count R")
	if _, misses := c.Stats(); misses != 4 {
		t.Errorf("invalidated statement still cached: misses = %d", misses)
	}
}

func TestStmtCacheConcurrent(t *testing.T) {
	c := NewStmtCache(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				src := fmt.Sprintf("find %d in R%d", i%10, g%3)
				if _, err := c.Get(src); err != nil {
					t.Errorf("Get(%q): %v", src, err)
					return
				}
				if i%50 == 0 {
					c.InvalidateRel(fmt.Sprintf("R%d", g%3))
				}
			}
		}(g)
	}
	wg.Wait()
}
