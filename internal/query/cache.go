package query

import (
	"container/list"
	"errors"
	"sync"
)

// ErrUnknownStmt reports a statement-id (or text-hash) lookup that found
// no live cache entry: the id was never registered here, or its entry has
// since been evicted or invalidated. Over the wire the server answers a
// stale ExecPrepared with this error's text, and clients detect it by
// substring and transparently re-prepare — a stale id must never resolve
// to a stale plan.
var ErrUnknownStmt = errors.New("query: unknown prepared statement")

// StmtCache is a bounded, concurrency-safe LRU cache of prepared
// statements keyed by source text: the per-session (and store-wide)
// statement cache of the session layer. Preparing is pure parsing today,
// so a hit only saves the lexer and parser — but the cache is also the
// one place a statement's translation is retained across submissions, so
// it owns the invalidation discipline: a committed `create` changes the
// directory, the only global state a retained translation could ever
// depend on, and InvalidateRel drops every cached statement touching the
// created name before a representation- or directory-dependent prepare
// step could go stale.
//
// Translation errors are not cached: a failing statement pays the parse
// again, which keeps the cache free of negative entries that a later
// create could make spuriously sticky.
type StmtCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used

	// Prepared-statement indexes: dense ids handed to wire clients by
	// Register, and FNV-1a text hashes for forwarded statements that ship
	// a hash instead of text. Both point at live LRU elements and are
	// unlinked on eviction/invalidation, so a stale id or hash resolves to
	// "unknown", never to a stale plan.
	nextID uint64
	ids    map[uint64]*list.Element
	hashes map[uint64]*list.Element

	hits   int64
	misses int64
}

// cacheEntry is one cached statement, keyed by its source text.
type cacheEntry struct {
	src  string
	prep *Prepared
	id   uint64 // dense statement id (0 until Register assigns one)
	hash uint64 // FNV-1a of src
}

// DefaultStmtCacheSize bounds a statement cache when no explicit capacity
// is given: large enough for any realistic working set of distinct
// statement templates, small enough that a query-text-per-key workload
// (no templates, unique literals) cannot grow without bound.
const DefaultStmtCacheSize = 256

// NewStmtCache returns a statement cache holding at most capacity
// statements (capacity <= 0 selects DefaultStmtCacheSize).
func NewStmtCache(capacity int) *StmtCache {
	if capacity <= 0 {
		capacity = DefaultStmtCacheSize
	}
	return &StmtCache{
		cap:    capacity,
		m:      make(map[string]*list.Element),
		ids:    make(map[uint64]*list.Element),
		hashes: make(map[uint64]*list.Element),
		order:  list.New(),
	}
}

// removeLocked unlinks el from the LRU order and every index. The hash
// index entry is only deleted when it still points at el: a (vanishingly
// unlikely) 64-bit collision lets a newer statement own the hash slot.
func (c *StmtCache) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.order.Remove(el)
	delete(c.m, e.src)
	if e.id != 0 {
		delete(c.ids, e.id)
	}
	if c.hashes[e.hash] == el {
		delete(c.hashes, e.hash)
	}
}

// insertLocked adds a fresh entry for src at the front of the LRU and
// evicts past capacity. Callers hold c.mu.
func (c *StmtCache) insertLocked(src string, prep *Prepared) *list.Element {
	e := &cacheEntry{src: src, prep: prep, hash: HashText(src)}
	el := c.order.PushFront(e)
	c.m[src] = el
	c.hashes[e.hash] = el
	for c.order.Len() > c.cap {
		c.removeLocked(c.order.Back())
	}
	return el
}

// Get returns the prepared form of src, preparing and caching it on a
// miss. The returned Prepared is immutable and safe to use after the
// cache evicts or invalidates it.
func (c *StmtCache) Get(src string) (*Prepared, error) {
	c.mu.Lock()
	if el, ok := c.m[src]; ok {
		c.order.MoveToFront(el)
		c.hits++
		prep := el.Value.(*cacheEntry).prep
		c.mu.Unlock()
		return prep, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: preparing is pure, and a slow parse must not
	// stall concurrent hits. A racing miss on the same text just prepares
	// twice; the second insert finds the entry present and keeps it.
	prep, err := Prepare(src)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[src]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).prep, nil
	}
	c.insertLocked(src, prep)
	return prep, nil
}

// Register is Get plus a dense statement id: the wire server calls it on a
// Prepare frame and hands the id to the client, whose later ExecPrepared
// frames resolve through ByID without touching the string map. Registering
// the same text again returns the existing id; a re-register after
// eviction or invalidation mints a fresh id, so ids held across an
// eviction fail with ErrUnknownStmt instead of resolving stale.
func (c *StmtCache) Register(src string) (uint64, *Prepared, error) {
	c.mu.Lock()
	if el, ok := c.m[src]; ok {
		c.order.MoveToFront(el)
		c.hits++
		e := el.Value.(*cacheEntry)
		if e.id == 0 {
			c.nextID++
			e.id = c.nextID
			c.ids[e.id] = el
		}
		id, prep := e.id, e.prep
		c.mu.Unlock()
		return id, prep, nil
	}
	c.misses++
	c.mu.Unlock()

	prep, err := Prepare(src) // parse outside the lock, as in Get
	if err != nil {
		return 0, nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[src]
	if !ok {
		el = c.insertLocked(src, prep)
	} else {
		c.order.MoveToFront(el)
	}
	e := el.Value.(*cacheEntry)
	if e.id == 0 {
		c.nextID++
		e.id = c.nextID
		c.ids[e.id] = el
	}
	return e.id, e.prep, nil
}

// ByID resolves a dense statement id from Register, touching the entry's
// LRU position. ok is false when the id was never issued here or its entry
// has been evicted or invalidated since — callers translate that into
// ErrUnknownStmt, never into a reparse under the stale id.
func (c *StmtCache) ByID(id uint64) (*Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ids[id]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).prep, true
}

// ByHash resolves a statement by the FNV-1a hash of its source text —
// the lookup forwarded prepared statements use when they ship a hash in
// place of the text. ok is false when no live entry carries the hash.
func (c *StmtCache) ByHash(h uint64) (*Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.hashes[h]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return el.Value.(*cacheEntry).prep, true
}

// InvalidateRel drops every cached statement whose access set touches
// rel. Sessions call it after submitting a create for rel: statements
// prepared while the relation did not exist must not outlive the
// directory change that introduced it.
func (c *StmtCache) InvalidateRel(rel string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.prep.Rel() == rel {
			c.removeLocked(el)
		}
	}
}

// Len returns the number of cached statements.
func (c *StmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cache hits and misses since creation.
func (c *StmtCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
