package query

import (
	"container/list"
	"sync"
)

// StmtCache is a bounded, concurrency-safe LRU cache of prepared
// statements keyed by source text: the per-session (and store-wide)
// statement cache of the session layer. Preparing is pure parsing today,
// so a hit only saves the lexer and parser — but the cache is also the
// one place a statement's translation is retained across submissions, so
// it owns the invalidation discipline: a committed `create` changes the
// directory, the only global state a retained translation could ever
// depend on, and InvalidateRel drops every cached statement touching the
// created name before a representation- or directory-dependent prepare
// step could go stale.
//
// Translation errors are not cached: a failing statement pays the parse
// again, which keeps the cache free of negative entries that a later
// create could make spuriously sticky.
type StmtCache struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used

	hits   int64
	misses int64
}

// cacheEntry is one cached statement, keyed by its source text.
type cacheEntry struct {
	src  string
	prep *Prepared
}

// DefaultStmtCacheSize bounds a statement cache when no explicit capacity
// is given: large enough for any realistic working set of distinct
// statement templates, small enough that a query-text-per-key workload
// (no templates, unique literals) cannot grow without bound.
const DefaultStmtCacheSize = 256

// NewStmtCache returns a statement cache holding at most capacity
// statements (capacity <= 0 selects DefaultStmtCacheSize).
func NewStmtCache(capacity int) *StmtCache {
	if capacity <= 0 {
		capacity = DefaultStmtCacheSize
	}
	return &StmtCache{
		cap:   capacity,
		m:     make(map[string]*list.Element),
		order: list.New(),
	}
}

// Get returns the prepared form of src, preparing and caching it on a
// miss. The returned Prepared is immutable and safe to use after the
// cache evicts or invalidates it.
func (c *StmtCache) Get(src string) (*Prepared, error) {
	c.mu.Lock()
	if el, ok := c.m[src]; ok {
		c.order.MoveToFront(el)
		c.hits++
		prep := el.Value.(*cacheEntry).prep
		c.mu.Unlock()
		return prep, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: preparing is pure, and a slow parse must not
	// stall concurrent hits. A racing miss on the same text just prepares
	// twice; the second insert finds the entry present and keeps it.
	prep, err := Prepare(src)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[src]; ok {
		c.order.MoveToFront(el)
		return el.Value.(*cacheEntry).prep, nil
	}
	c.m[src] = c.order.PushFront(&cacheEntry{src: src, prep: prep})
	for c.order.Len() > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).src)
	}
	return prep, nil
}

// InvalidateRel drops every cached statement whose access set touches
// rel. Sessions call it after submitting a create for rel: statements
// prepared while the relation did not exist must not outlive the
// directory change that introduced it.
func (c *StmtCache) InvalidateRel(rel string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for el := c.order.Front(); el != nil; el = next {
		next = el.Next()
		e := el.Value.(*cacheEntry)
		if e.prep.Rel() == rel {
			c.order.Remove(el)
			delete(c.m, e.src)
		}
	}
}

// Len returns the number of cached statements.
func (c *StmtCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats reports cache hits and misses since creation.
func (c *StmtCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
