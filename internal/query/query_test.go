package query

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

func TestTranslateValidQueries(t *testing.T) {
	tests := []struct {
		src   string
		kind  core.Kind
		rel   string
		check func(t *testing.T, tx core.Transaction)
	}{
		{"insert 5 into R", core.KindInsert, "R", func(t *testing.T, tx core.Transaction) {
			if tx.Tuple.Arity() != 1 || !tx.Tuple.Key().Equal(value.Int(5)) {
				t.Errorf("tuple = %v", tx.Tuple)
			}
		}},
		{`insert (1, "widget", 3) into inventory`, core.KindInsert, "inventory", func(t *testing.T, tx core.Transaction) {
			if tx.Tuple.Arity() != 3 || tx.Tuple.Field(1).AsString() != "widget" {
				t.Errorf("tuple = %v", tx.Tuple)
			}
		}},
		{"insert x into R", core.KindInsert, "R", func(t *testing.T, tx core.Transaction) {
			if !tx.Tuple.Key().Equal(value.Str("x")) {
				t.Errorf("bare word key = %v", tx.Tuple.Key())
			}
		}},
		{"find 7 in R", core.KindFind, "R", func(t *testing.T, tx core.Transaction) {
			if !tx.Key.Equal(value.Int(7)) {
				t.Errorf("key = %v", tx.Key)
			}
		}},
		{"find x in R", core.KindFind, "R", func(t *testing.T, tx core.Transaction) {
			if !tx.Key.Equal(value.Str("x")) {
				t.Errorf("key = %v", tx.Key)
			}
		}},
		{`find "spaced key" in R`, core.KindFind, "R", func(t *testing.T, tx core.Transaction) {
			if tx.Key.AsString() != "spaced key" {
				t.Errorf("key = %v", tx.Key)
			}
		}},
		{"delete -3 from S", core.KindDelete, "S", func(t *testing.T, tx core.Transaction) {
			if !tx.Key.Equal(value.Int(-3)) {
				t.Errorf("key = %v", tx.Key)
			}
		}},
		{"scan R", core.KindScan, "R", nil},
		{"count S", core.KindCount, "S", nil},
		{"range 1 9 in R", core.KindRange, "R", func(t *testing.T, tx core.Transaction) {
			if !tx.Lo.Equal(value.Int(1)) || !tx.Hi.Equal(value.Int(9)) {
				t.Errorf("bounds = %v %v", tx.Lo, tx.Hi)
			}
		}},
		{"create T", core.KindCreate, "T", func(t *testing.T, tx core.Transaction) {
			if tx.Rep != relation.RepList {
				t.Errorf("default rep = %v", tx.Rep)
			}
		}},
		{"create T using avl", core.KindCreate, "T", func(t *testing.T, tx core.Transaction) {
			if tx.Rep != relation.RepAVL {
				t.Errorf("rep = %v", tx.Rep)
			}
		}},
		{"create T using 2-3", core.KindCreate, "T", func(t *testing.T, tx core.Transaction) {
			if tx.Rep != relation.Rep23 {
				t.Errorf("rep = %v", tx.Rep)
			}
		}},
		{"create T using tree23", core.KindCreate, "T", func(t *testing.T, tx core.Transaction) {
			if tx.Rep != relation.Rep23 {
				t.Errorf("rep = %v", tx.Rep)
			}
		}},
		{"create T using paged", core.KindCreate, "T", func(t *testing.T, tx core.Transaction) {
			if tx.Rep != relation.RepPaged {
				t.Errorf("rep = %v", tx.Rep)
			}
		}},
		{"  find   1   in   R  ", core.KindFind, "R", nil},
	}
	for _, tc := range tests {
		t.Run(tc.src, func(t *testing.T) {
			tx, err := Translate(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			if tx.Kind != tc.kind {
				t.Errorf("Kind = %v, want %v", tx.Kind, tc.kind)
			}
			if tx.Rel != tc.rel {
				t.Errorf("Rel = %q, want %q", tx.Rel, tc.rel)
			}
			if tx.Query != tc.src {
				t.Errorf("Query not preserved: %q", tx.Query)
			}
			if err := tx.Validate(); err != nil {
				t.Errorf("translated transaction invalid: %v", err)
			}
			if tc.check != nil {
				tc.check(t, tx)
			}
		})
	}
}

func TestTranslateErrors(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"", "expected a query verb"},
		{"frobnicate R", "unknown query verb"},
		{"insert into R", "expected"},
		{"insert 5 from R", `expected "into"`},
		{"insert 5 into", "expected a relation name"},
		{"find in R", "expected"},
		{"find 1 R", `expected "in"`},
		{"delete 1 in R", `expected "from"`},
		{"scan", "expected a relation name"},
		{"range 1 in R", "expected"},
		{"create T using heap", "unknown representation"},
		{"find 1 in R extra", "unexpected trailing input"},
		{"insert (1, into R", "expected"},
		{"insert (1 2) into R", "expected ',' or ')'"},
		{`find "unterminated in R`, "unterminated string"},
		{"find 99999999999999999999 in R", "integer out of range"},
		{"insert - into R", "stray '-'"},
		{"find @ in R", "unexpected character"},
		{"()", "expected a query verb"},
	}
	for _, tc := range tests {
		t.Run(tc.src, func(t *testing.T) {
			_, err := Translate(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			var syn *SyntaxError
			if !errors.As(err, &syn) {
				t.Errorf("error is not a *SyntaxError: %T", err)
			}
		})
	}
}

func TestTokenKindStrings(t *testing.T) {
	kinds := []tokenKind{tokWord, tokInt, tokString, tokLParen, tokRParen, tokComma, tokEOF}
	want := []string{"word", "integer", "string", "'('", "')'", "','", "end of query"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want[i])
		}
	}
	if s := tokenKind(99).String(); !strings.Contains(s, "token(") {
		t.Errorf("unknown kind = %q", s)
	}
}

func TestMoreParseErrors(t *testing.T) {
	cases := []string{
		"insert ( into R",      // item expected inside tuple
		"insert (1,) into R",   // trailing comma
		"find (1) in R",        // parenthesized key where item expected
		"range (1) 2 in R",     // tuple as range bound
		"range 1 (2) in R",     // tuple as second bound
		"create T using (",     // punctuation as rep name
		"create T using 2",     // dangling 2 of "2-3"
		"create T using 2 - 3", // spaced-out 2-3
		"delete (1) from R",    // tuple as delete key
		"scan (R)",             // punctuation as relation
		"count 7",              // number as relation
		"insert \"x into R",    // unterminated string mid-query
	}
	for _, src := range cases {
		if _, err := Translate(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	tx := MustTranslate(`insert (1, "a\"b\\c") into R`)
	if got := tx.Tuple.Field(1).AsString(); got != `a"b\c` {
		t.Errorf("escaped string = %q", got)
	}
}

func TestSyntaxErrorPositions(t *testing.T) {
	_, err := Translate("find 1 in R extra")
	var syn *SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("not a syntax error: %v", err)
	}
	if syn.Pos != 12 {
		t.Errorf("Pos = %d, want 12 (start of 'extra')", syn.Pos)
	}
}

func TestTranslateAllTagsSequentially(t *testing.T) {
	txns, err := TranslateAll("alice", []string{"insert 1 into R", "find 1 in R"})
	if err != nil {
		t.Fatal(err)
	}
	for i, tx := range txns {
		if tx.Origin != "alice" || tx.Seq != i {
			t.Errorf("txn %d tag = %s", i, tx.Tag())
		}
	}
	if _, err := TranslateAll("bob", []string{"find 1 in R", "bogus"}); err == nil {
		t.Error("TranslateAll swallowed a parse error")
	} else if !strings.Contains(err.Error(), "bob") {
		t.Errorf("error lacks origin context: %v", err)
	}
}

func TestMustTranslate(t *testing.T) {
	tx := MustTranslate("count R")
	if tx.Kind != core.KindCount {
		t.Errorf("Kind = %v", tx.Kind)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTranslate did not panic on bad input")
		}
	}()
	MustTranslate("nonsense query")
}

func TestEndToEndTranslateAndApply(t *testing.T) {
	// The paper's pipeline: queries -> translate || -> apply-stream.
	queries := []string{
		"create R",
		`insert (1, "first") into R`,
		`insert (2, "second") into R`,
		"find 1 in R",
		"count R",
		"delete 1 from R",
		"find 1 in R",
		"scan R",
	}
	txns, err := TranslateAll("term", queries)
	if err != nil {
		t.Fatal(err)
	}
	responses, final := core.ApplySequential(database.New(relation.RepList), txns)
	if !responses[3].Found {
		t.Error("find after insert failed")
	}
	if responses[4].Count != 2 {
		t.Errorf("count = %d", responses[4].Count)
	}
	if !responses[5].Found {
		t.Error("delete missed")
	}
	if responses[6].Found {
		t.Error("find after delete succeeded")
	}
	if responses[7].Count != 1 {
		t.Errorf("final scan = %d", responses[7].Count)
	}
	if final.TotalTuples() != 1 {
		t.Errorf("final tuples = %d", final.TotalTuples())
	}
	_ = trace.None
}

func TestPropertyTranslateNeverPanics(t *testing.T) {
	// Arbitrary byte soup must produce either a transaction or an error,
	// never a panic.
	f := func(src string) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("panic on %q", src)
			}
		}()
		tx, err := Translate(src)
		if err == nil {
			return tx.Validate() == nil
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRoundTripInsertFind(t *testing.T) {
	// For arbitrary small ints: translate-insert then translate-find agree.
	f := func(k int16) bool {
		db := database.New(relation.RepList, "R")
		ins := MustTranslate("insert " + value.Int(int64(k)).String() + " into R")
		fnd := MustTranslate("find " + value.Int(int64(k)).String() + " in R")
		resp, db2, _ := ins.Apply(nil, db, trace.None)
		if resp.Err != nil {
			return false
		}
		r2, _, _ := fnd.Apply(nil, db2, trace.None)
		return r2.Found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
