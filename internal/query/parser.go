package query

import (
	"fmt"

	"funcdb/internal/core"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// parser is a recursive-descent parser over the token stream.
type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) fail(t token, format string, args ...any) error {
	return &SyntaxError{Query: p.src, Pos: t.pos, Msg: fmt.Sprintf(format, args...)}
}

// expectWord consumes a specific keyword.
func (p *parser) expectWord(word string) error {
	t := p.next()
	if t.kind != tokWord || t.text != word {
		return p.fail(t, "expected %q", word)
	}
	return nil
}

// ident consumes a relation name.
func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokWord {
		return "", p.fail(t, "expected a relation name, got %v", t.kind)
	}
	return t.text, nil
}

// item consumes one scalar item: an integer, a quoted string, or a bare
// word (which denotes a string item, so the paper's symbolic "x" works).
func (p *parser) item() (value.Item, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return value.Int(t.i), nil
	case tokString:
		return value.Str(t.text), nil
	case tokWord:
		return value.Str(t.text), nil
	default:
		return value.Item{}, p.fail(t, "expected a data item, got %v", t.kind)
	}
}

// tuple consumes either a parenthesized tuple or a single item (a 1-tuple).
func (p *parser) tuple() (value.Tuple, error) {
	if p.peek().kind != tokLParen {
		it, err := p.item()
		if err != nil {
			return value.Tuple{}, err
		}
		return value.NewTuple(it), nil
	}
	p.next() // consume '('
	var items []value.Item
	for {
		it, err := p.item()
		if err != nil {
			return value.Tuple{}, err
		}
		items = append(items, it)
		t := p.next()
		switch t.kind {
		case tokComma:
			continue
		case tokRParen:
			return value.NewTuple(items...), nil
		default:
			return value.Tuple{}, p.fail(t, "expected ',' or ')' in tuple")
		}
	}
}

// rep consumes a representation name after "using".
func (p *parser) rep() (relation.Rep, error) {
	t := p.next()
	if t.kind == tokInt && t.i == 2 && p.peek().kind == tokInt && p.peek().i == -3 {
		// "2-3" lexes as the integers 2 and -3.
		p.next()
		return relation.Rep23, nil
	}
	if t.kind != tokWord {
		return 0, p.fail(t, "expected a representation name")
	}
	switch t.text {
	case "list":
		return relation.RepList, nil
	case "avl":
		return relation.RepAVL, nil
	case "tree23":
		return relation.Rep23, nil
	case "paged":
		return relation.RepPaged, nil
	default:
		return 0, p.fail(t, "unknown representation %q (want list, avl, 2-3/tree23 or paged)", t.text)
	}
}

// end verifies the query has no trailing tokens.
func (p *parser) end() error {
	if t := p.peek(); t.kind != tokEOF {
		return p.fail(t, "unexpected trailing input")
	}
	return nil
}

// Translate parses a symbolic query and produces the transaction — the
// paper's higher-order translate. The returned Transaction's Apply method
// is the function databases -> responses x databases.
func Translate(src string) (core.Transaction, error) {
	toks, err := lex(src)
	if err != nil {
		return core.Transaction{}, err
	}
	p := &parser{src: src, toks: toks}
	verb := p.next()
	if verb.kind != tokWord {
		return core.Transaction{}, p.fail(verb, "expected a query verb")
	}

	var tx core.Transaction
	switch verb.text {
	case "insert":
		tu, err := p.tuple()
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("into"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Insert(rel, tu)

	case "find":
		key, err := p.item()
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("in"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Find(rel, key)

	case "delete":
		key, err := p.item()
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("from"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Delete(rel, key)

	case "scan":
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Scan(rel)

	case "count":
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Count(rel)

	case "range":
		lo, err := p.item()
		if err != nil {
			return core.Transaction{}, err
		}
		hi, err := p.item()
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("in"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Range(rel, lo, hi)

	case "create":
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		rep := relation.RepList
		if p.peek().kind == tokWord && p.peek().text == "using" {
			p.next()
			rep, err = p.rep()
			if err != nil {
				return core.Transaction{}, err
			}
		}
		tx = core.Create(rel, rep)

	default:
		return core.Transaction{}, p.fail(verb, "unknown query verb %q", verb.text)
	}

	if err := p.end(); err != nil {
		return core.Transaction{}, err
	}
	tx.Query = src
	return tx, nil
}

// TranslateAll maps Translate over a query stream, tagging each transaction
// with the given origin and its sequence number — the paper's
// "transactions = translate || queries" with the tagging of Section 2.4.
func TranslateAll(origin string, queries []string) ([]core.Transaction, error) {
	out := make([]core.Transaction, 0, len(queries))
	for i, q := range queries {
		tx, err := Translate(q)
		if err != nil {
			return nil, fmt.Errorf("query %d from %s: %w", i, origin, err)
		}
		tx.Origin, tx.Seq = origin, i
		out = append(out, tx)
	}
	return out, nil
}

// MustTranslate is Translate for statically known queries (tests,
// examples); it panics on error.
func MustTranslate(src string) core.Transaction {
	tx, err := Translate(src)
	if err != nil {
		panic(err)
	}
	return tx
}
