package query

import (
	"fmt"

	"funcdb/internal/core"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// parser is a recursive-descent parser over the token stream. When prep is
// non-nil the parser is building a prepared statement: '?' placeholders are
// legal in data-item positions and record bind slots into prep.
type parser struct {
	src  string
	toks []token
	pos  int
	prep *Prepared
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) fail(t token, format string, args ...any) error {
	return &SyntaxError{Query: p.src, Pos: t.pos, Msg: fmt.Sprintf(format, args...)}
}

// expectWord consumes a specific keyword.
func (p *parser) expectWord(word string) error {
	t := p.next()
	if t.kind != tokWord || t.text != word {
		return p.fail(t, "expected %q", word)
	}
	return nil
}

// ident consumes a relation name.
func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokWord {
		return "", p.fail(t, "expected a relation name, got %v", t.kind)
	}
	return t.text, nil
}

// item consumes one scalar item: an integer, a quoted string, or a bare
// word (which denotes a string item, so the paper's symbolic "x" works).
func (p *parser) item() (value.Item, error) {
	t := p.next()
	switch t.kind {
	case tokInt:
		return value.Int(t.i), nil
	case tokString:
		return value.Str(t.text), nil
	case tokWord:
		return value.Str(t.text), nil
	default:
		return value.Item{}, p.fail(t, "expected a data item, got %v", t.kind)
	}
}

// paramItem consumes one data-item position that may be a '?' placeholder
// in a prepared statement: the slot is recorded and a zero item stands in.
func (p *parser) paramItem(field slotField, index int) (value.Item, error) {
	if p.peek().kind == tokParam {
		t := p.next()
		if p.prep == nil {
			return value.Item{}, p.fail(t, "'?' placeholder outside a prepared statement (use Prepare)")
		}
		p.prep.slots = append(p.prep.slots, paramSlot{field: field, index: index})
		return value.Item{}, nil
	}
	return p.item()
}

// tupleItems consumes either a parenthesized tuple or a single item (a
// 1-tuple), returning the field items. Placeholders are legal per field
// when preparing.
func (p *parser) tupleItems() ([]value.Item, error) {
	if p.peek().kind != tokLParen {
		it, err := p.paramItem(slotTuple, 0)
		if err != nil {
			return nil, err
		}
		return []value.Item{it}, nil
	}
	p.next() // consume '('
	var items []value.Item
	for {
		it, err := p.paramItem(slotTuple, len(items))
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		t := p.next()
		switch t.kind {
		case tokComma:
			continue
		case tokRParen:
			return items, nil
		default:
			return nil, p.fail(t, "expected ',' or ')' in tuple")
		}
	}
}

// rep consumes a representation name after "using".
func (p *parser) rep() (relation.Rep, error) {
	t := p.next()
	if t.kind == tokInt && t.i == 2 && p.peek().kind == tokInt && p.peek().i == -3 {
		// "2-3" lexes as the integers 2 and -3.
		p.next()
		return relation.Rep23, nil
	}
	if t.kind != tokWord {
		return 0, p.fail(t, "expected a representation name")
	}
	switch t.text {
	case "list":
		return relation.RepList, nil
	case "avl":
		return relation.RepAVL, nil
	case "tree23":
		return relation.Rep23, nil
	case "paged":
		return relation.RepPaged, nil
	default:
		return 0, p.fail(t, "unknown representation %q (want list, avl, 2-3/tree23 or paged)", t.text)
	}
}

// end verifies the query has no trailing tokens.
func (p *parser) end() error {
	if t := p.peek(); t.kind != tokEOF {
		return p.fail(t, "unexpected trailing input")
	}
	return nil
}

// Translate parses a symbolic query and produces the transaction — the
// paper's higher-order translate. The returned Transaction's Apply method
// is the function databases -> responses x databases.
func Translate(src string) (core.Transaction, error) {
	return translate(src, nil)
}

// translate is the shared parse: with prep nil it is the plain Translate;
// with prep non-nil it builds a prepared statement, recording '?' slots.
func translate(src string, prep *Prepared) (core.Transaction, error) {
	toks, err := lex(src)
	if err != nil {
		return core.Transaction{}, err
	}
	p := &parser{src: src, toks: toks, prep: prep}
	verb := p.next()
	if verb.kind != tokWord {
		return core.Transaction{}, p.fail(verb, "expected a query verb")
	}

	var tx core.Transaction
	switch verb.text {
	case "insert":
		items, err := p.tupleItems()
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("into"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		if prep != nil {
			prep.items = items
		}
		tx = core.Insert(rel, value.NewTuple(items...))

	case "find":
		key, err := p.paramItem(slotKey, 0)
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("in"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Find(rel, key)

	case "delete":
		key, err := p.paramItem(slotKey, 0)
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("from"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Delete(rel, key)

	case "scan":
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Scan(rel)

	case "count":
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Count(rel)

	case "range":
		lo, err := p.paramItem(slotLo, 0)
		if err != nil {
			return core.Transaction{}, err
		}
		hi, err := p.paramItem(slotHi, 0)
		if err != nil {
			return core.Transaction{}, err
		}
		if err := p.expectWord("in"); err != nil {
			return core.Transaction{}, err
		}
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		tx = core.Range(rel, lo, hi)

	case "create":
		rel, err := p.ident()
		if err != nil {
			return core.Transaction{}, err
		}
		rep := relation.RepList
		if p.peek().kind == tokWord && p.peek().text == "using" {
			p.next()
			rep, err = p.rep()
			if err != nil {
				return core.Transaction{}, err
			}
		}
		tx = core.Create(rel, rep)

	default:
		return core.Transaction{}, p.fail(verb, "unknown query verb %q", verb.text)
	}

	if err := p.end(); err != nil {
		return core.Transaction{}, err
	}
	tx.Query = src
	return tx, nil
}

// TranslateAll maps Translate over a query stream, tagging each transaction
// with the given origin and its sequence number — the paper's
// "transactions = translate || queries" with the tagging of Section 2.4.
func TranslateAll(origin string, queries []string) ([]core.Transaction, error) {
	out := make([]core.Transaction, 0, len(queries))
	for i, q := range queries {
		tx, err := Translate(q)
		if err != nil {
			return nil, fmt.Errorf("query %d from %s: %w", i, origin, err)
		}
		tx.Origin, tx.Seq = origin, i
		out = append(out, tx)
	}
	return out, nil
}

// MustTranslate is Translate for statically known queries (tests,
// examples); it panics on error.
func MustTranslate(src string) core.Transaction {
	tx, err := Translate(src)
	if err != nil {
		panic(err)
	}
	return tx
}
