package query

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"funcdb/internal/value"
)

// fuzzSeeds is the seed corpus for FuzzPrepare, mirrored on disk under
// testdata/fuzz/FuzzPrepare so `go test -fuzz=FuzzPrepare` starts from it
// and plain `go test` regression-checks it (TestPrepareFuzzCorpus). The
// seeds cover every verb, every placeholder position, and the malformed
// shapes that have to fail cleanly instead of panicking in the REPL's
// .batch path.
var fuzzSeeds = []string{
	"insert (?, ?) into R",
	"insert ? into R",
	"insert (1, \"v\", ?) into parts",
	"find ? in R",
	"delete ? from R",
	"range ? ? in R",
	"range 1 ? in R",
	"count R",
	"scan R",
	"create R using avl",
	// Malformed: placeholders where no data item belongs, dangling
	// syntax, arity traps.
	"insert (?,) into R",
	"insert () into R",
	"insert (?",
	"find ? in",
	"find ?? in R",
	"? find in R",
	"range ? in R",
	"insert (?, ?, ?, ?, ?, ?, ?, ?) into R",
	"delete ? from ?",
	"create ? using ?",
	"insert (\"unterminated) into R",
	"find -9223372036854775808 in R",
	"",
	"?",
}

// checkPrepared exercises every Prepared entry point on a successfully
// prepared statement: none may panic, arity violations and zero items must
// surface as errors, and a full valid binding must produce a structurally
// valid transaction.
func checkPrepared(t *testing.T, src string, prep *Prepared) {
	t.Helper()
	n := prep.NumParams()
	if n < 0 {
		t.Fatalf("%q: negative NumParams %d", src, n)
	}
	if prep.Src() != src {
		t.Fatalf("%q: Src reports %q", src, prep.Src())
	}

	// Wrong arity must error, never panic or silently bind.
	if n > 0 {
		if _, err := prep.Bind(); err == nil {
			t.Fatalf("%q: Bind() with %d params missing did not error", src, n)
		}
	}
	wrong := make([]value.Item, n+1)
	for i := range wrong {
		wrong[i] = value.Int(1)
	}
	if _, err := prep.Bind(wrong...); err == nil {
		t.Fatalf("%q: Bind with %d args for %d params did not error", src, n+1, n)
	}

	// Zero items in any slot must error.
	if n > 0 {
		zeros := make([]value.Item, n)
		if _, err := prep.Bind(zeros...); err == nil {
			t.Fatalf("%q: Bind with zero items did not error", src)
		}
	}

	// A full valid binding must produce a transaction that validates, and
	// binding must not mutate the template (a second bind with different
	// args must be independent).
	args := make([]value.Item, n)
	for i := range args {
		args[i] = value.Int(int64(i + 1))
	}
	tx, err := prep.Bind(args...)
	if err != nil {
		t.Fatalf("%q: valid Bind failed: %v", src, err)
	}
	if err := tx.Validate(); err != nil {
		t.Fatalf("%q: bound transaction invalid: %v", src, err)
	}
	args2 := make([]value.Item, n)
	for i := range args2 {
		args2[i] = value.Str("other")
	}
	if _, err := prep.Bind(args2...); err != nil {
		t.Fatalf("%q: rebind failed: %v", src, err)
	}
	tx3, err := prep.Bind(args...)
	if err != nil {
		t.Fatalf("%q: rebinding failed: %v", src, err)
	}
	if !itemEq(tx.Key, tx3.Key) || !itemEq(tx.Lo, tx3.Lo) || !itemEq(tx.Hi, tx3.Hi) ||
		!tx.Tuple.Equal(tx3.Tuple) || tx.Rel != tx3.Rel || tx.Kind != tx3.Kind {
		t.Fatalf("%q: rebinding mutated the template", src)
	}
}

// itemEq compares two possibly-zero items (Item.Equal treats zero items as
// comparable min-keys, which is fine here; this just spells the intent).
func itemEq(a, b value.Item) bool {
	return a.Kind() == b.Kind() && a.Compare(b) == 0
}

// FuzzPrepare fuzzes the prepared-statement path end to end: Prepare must
// never panic on any input, and when it succeeds, Bind must enforce
// placeholder arity and typing with errors, not panics. This guards the
// REPL's .batch path, which feeds user text straight into Prepare.
func FuzzPrepare(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prep, err := Prepare(src)
		if err != nil {
			// Errors are the expected outcome for malformed input; the
			// property is simply that we got one instead of a panic.
			return
		}
		checkPrepared(t, src, prep)

		// Prepare succeeding with no placeholders implies the plain
		// translation succeeds too and agrees on the verb.
		if prep.NumParams() == 0 {
			tx, terr := Translate(src)
			if terr != nil {
				t.Fatalf("%q: Prepare ok but Translate fails: %v", src, terr)
			}
			bound, _ := prep.Bind()
			if tx.Kind != bound.Kind || tx.Rel != bound.Rel {
				t.Fatalf("%q: Prepare/Translate disagree: %v/%q vs %v/%q",
					src, bound.Kind, bound.Rel, tx.Kind, tx.Rel)
			}
		}
	})
}

// TestPrepareFuzzCorpus replays the checked-in fuzz corpus (seed list and
// any files under testdata/fuzz/FuzzPrepare) deterministically under plain
// `go test`, so a regression caught by fuzzing stays caught without the
// fuzzer.
func TestPrepareFuzzCorpus(t *testing.T) {
	inputs := append([]string(nil), fuzzSeeds...)
	dir := filepath.Join("testdata", "fuzz", "FuzzPrepare")
	entries, err := os.ReadDir(dir)
	if err == nil {
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			src, ok := decodeCorpusFile(string(data))
			if !ok {
				t.Fatalf("corpus file %s is not a v1 string corpus entry", e.Name())
			}
			inputs = append(inputs, src)
		}
	}
	for _, src := range inputs {
		prep, err := Prepare(src)
		if err != nil {
			continue
		}
		checkPrepared(t, src, prep)
	}
}

// decodeCorpusFile parses the `go test fuzz v1` corpus format for a single
// string argument.
func decodeCorpusFile(data string) (string, bool) {
	lines := strings.Split(strings.TrimSpace(data), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return "", false
	}
	arg := strings.TrimSpace(lines[1])
	if !strings.HasPrefix(arg, "string(") || !strings.HasSuffix(arg, ")") {
		return "", false
	}
	s, err := strconv.Unquote(arg[len("string(") : len(arg)-1])
	if err != nil {
		return "", false
	}
	return s, true
}
