package query

import (
	"fmt"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

// slotField names the transaction field a bind parameter fills.
type slotField uint8

const (
	slotKey   slotField = iota + 1 // find/delete key
	slotLo                         // range lower bound
	slotHi                         // range upper bound
	slotTuple                      // insert tuple field (index says which)
)

// paramSlot is one '?' placeholder: where its bound item lands.
type paramSlot struct {
	field slotField
	index int // tuple field index when field == slotTuple
}

// Prepared is a parsed query template with '?' bind placeholders: the
// parser has run once, and Bind substitutes data items into the recorded
// slots to mint submittable transactions — parse once, bind many, so the
// lexer and parser are off the submission hot path. Placeholders stand for
// data items only (keys, range bounds, tuple fields); relation names and
// verbs are fixed at prepare time, which is what lets the access set be
// planned without reparsing.
//
// A Prepared value is immutable after Prepare returns and safe for
// concurrent Bind calls.
type Prepared struct {
	src   string
	hash  uint64           // FNV-1a of src, the statement's wire identity
	tx    core.Transaction // template; slot positions hold zero items
	items []value.Item     // insert tuple template (nil for other verbs)
	slots []paramSlot
}

// HashText returns the FNV-1a 64-bit hash of a statement's source text:
// the identity a forwarded prepared statement ships on the wire so the
// owning node can resolve it against its own cache without the text.
func HashText(src string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(src); i++ {
		h ^= uint64(src[i])
		h *= prime64
	}
	return h
}

// Prepare parses src once into a bindable statement. Queries with no
// placeholders prepare fine (NumParams reports 0) — Bind with no arguments
// then returns the plain translation.
func Prepare(src string) (*Prepared, error) {
	prep := &Prepared{src: src, hash: HashText(src)}
	tx, err := translate(src, prep)
	if err != nil {
		return nil, err
	}
	prep.tx = tx
	return prep, nil
}

// Src returns the prepared query text.
func (p *Prepared) Src() string { return p.src }

// Hash returns HashText(Src()): the statement's wire identity.
func (p *Prepared) Hash() uint64 { return p.hash }

// Rel returns the relation the statement touches ("" for statements with
// no relation). Relation names are fixed at prepare time — placeholders
// stand for data items only — so the statement's access set is static,
// which is what lets a statement cache invalidate by relation name.
func (p *Prepared) Rel() string { return p.tx.Rel }

// Kind returns the statement's transaction kind.
func (p *Prepared) Kind() core.Kind { return p.tx.Kind }

// NumParams returns the number of '?' placeholders.
func (p *Prepared) NumParams() int { return len(p.slots) }

// Bind substitutes args into the placeholders, left to right, and returns
// the resulting transaction. The receiver is not modified.
func (p *Prepared) Bind(args ...value.Item) (core.Transaction, error) {
	if len(args) != len(p.slots) {
		return core.Transaction{}, fmt.Errorf("query: %q needs %d bind parameters, got %d",
			p.src, len(p.slots), len(args))
	}
	tx := p.tx
	var items []value.Item
	if p.items != nil {
		items = append([]value.Item(nil), p.items...)
	}
	for i, s := range p.slots {
		if !args[i].IsValid() {
			return core.Transaction{}, fmt.Errorf("query: bind parameter %d of %q is the zero item", i+1, p.src)
		}
		switch s.field {
		case slotKey:
			tx.Key = args[i]
		case slotLo:
			tx.Lo = args[i]
		case slotHi:
			tx.Hi = args[i]
		case slotTuple:
			items[s.index] = args[i]
		}
	}
	if items != nil {
		tx.Tuple = value.NewTuple(items...)
	}
	return tx, nil
}

// MustBind is Bind for statically valid arguments; it panics on error.
func (p *Prepared) MustBind(args ...value.Item) core.Transaction {
	tx, err := p.Bind(args...)
	if err != nil {
		panic(err)
	}
	return tx
}
