package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"funcdb/internal/reqtrace"
)

// NewDebugMux builds the --debug-addr HTTP handler: the metrics snapshot
// as JSON plus the standard pprof endpoints, on a private mux (never
// http.DefaultServeMux — a library must not mutate global state).
//
//	/debug/stats  — snapshot() marshaled with indentation
//	/debug/vars   — the same document, expvar-style (flat, compact)
//	/debug/trace  — published request traces: JSON by default,
//	                ?format=text for the human timeline, ?id=<16-hex>
//	                to select one trace
//	/debug/pprof/ — net/http/pprof's index, profile, trace, …
//
// snapshot is called per request; it should return a metrics.Snapshot
// (or any JSON-encodable aggregate — fdbserver composes one document
// across its hosted databases). traces is called per /debug/trace
// request; nil means tracing is not wired and the endpoint serves an
// empty list.
func NewDebugMux(snapshot func() any, traces func() []reqtrace.Trace) *http.ServeMux {
	mux := http.NewServeMux()
	serve := func(indent bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			if indent {
				enc.SetIndent("", "  ")
			}
			if err := enc.Encode(snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	}
	mux.HandleFunc("/debug/stats", serve(true))
	mux.HandleFunc("/debug/vars", serve(false))
	mux.HandleFunc("/debug/trace", serveTraces(traces))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveTraces answers /debug/trace: the recorder's published traces,
// newest first, optionally narrowed to one id and optionally rendered
// as the human hop-tree timeline instead of JSON.
func serveTraces(traces func() []reqtrace.Trace) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var ts []reqtrace.Trace
		if traces != nil {
			ts = traces()
		}
		if ts == nil {
			ts = []reqtrace.Trace{}
		}
		if want := r.URL.Query().Get("id"); want != "" {
			kept := ts[:0]
			for _, tr := range ts {
				if tr.ID == want {
					kept = append(kept, tr)
				}
			}
			ts = kept
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_, _ = w.Write([]byte(reqtrace.Render(ts)))
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(ts); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
}
