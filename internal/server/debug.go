package server

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the --debug-addr HTTP handler: the metrics snapshot
// as JSON plus the standard pprof endpoints, on a private mux (never
// http.DefaultServeMux — a library must not mutate global state).
//
//	/debug/stats  — snapshot() marshaled with indentation
//	/debug/vars   — the same document, expvar-style (flat, compact)
//	/debug/pprof/ — net/http/pprof's index, profile, trace, …
//
// snapshot is called per request; it should return a metrics.Snapshot
// (or any JSON-encodable aggregate — fdbserver composes one document
// across its hosted databases).
func NewDebugMux(snapshot func() any) *http.ServeMux {
	mux := http.NewServeMux()
	serve := func(indent bool) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			if indent {
				enc.SetIndent("", "  ")
			}
			if err := enc.Encode(snapshot()); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	}
	mux.HandleFunc("/debug/stats", serve(true))
	mux.HandleFunc("/debug/vars", serve(false))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
