// Package server is the network front end over funcdb stores: a TCP
// listener whose connections each drive one session (internal/session)
// speaking the framed protocol of internal/wire.
//
// The server exists so that disjoint network clients land on disjoint
// admission lanes: each connection is its own goroutine and its own
// session, and a connection's buffered requests are admitted through
// Session.Flush as ONE lane-split SubmitBatch — one network read becomes
// one merge arbitration, the Calvin-style batched sequencing the ROADMAP
// names. Pipelining is adaptive: the handler keeps queueing statements
// while more frames are already buffered on the socket, and flushes —
// admitting and answering everything queued, in order — the moment the
// read would block.
//
// One listener can host many stores: the Hello frame names a database
// (protocol version 2; version-1 clients land on "main"), and each
// connection is bound to that database's Host for its lifetime.
//
// A Host may additionally implement the cluster capabilities:
//
//   - Placer: the host knows which node owns each relation's primary, so
//     the handler can answer a misrouted Forward with a Redirect instead
//     of executing it;
//   - ReplicaReader: the host keeps log-shipped replicas of other nodes'
//     relations and can serve read-only statements from them, stamped
//     with the replica's version (the client's staleness bound);
//   - LogSource: the host can stream its committed-transaction log, which
//     is how a Subscribe frame turns a connection into the replication
//     stream (LogRecord frames — the archive's records, reframed).
//
// Shutdown drains gracefully: stop accepting, unblock every connection's
// pending read, let each handler answer what it has fully read, then
// barrier the stores so every acked commit is durable before the process
// exits.
package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/metrics"
	"funcdb/internal/query"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
	"funcdb/internal/value"
	"funcdb/internal/wire"
)

// Host is the store surface a server hosts: the session factory plus the
// handshake and drain hooks. *funcdb.Store implements it; a cluster node
// implements it over its routing submitter.
type Host interface {
	// Session opens a per-connection execution context with its own
	// origin tag and sequence space.
	Session(origin string) *session.Session
	// Lanes reports the admission lane count (Welcome carries it).
	Lanes() int
	// Durable reports whether committed writes reach an archive.
	Durable() bool
	// Barrier waits for every admitted transaction, including its durable
	// record.
	Barrier()
	// DurabilityErr reports the sticky durability failure, if any.
	DurabilityErr() error
}

// Placer is implemented by hosts that know the cluster placement of each
// relation (the lane hash over node count). Owner reports the owning
// node's advertised address and whether that node is this host.
type Placer interface {
	Owner(rel string) (addr string, self bool)
}

// ReplicaReader is implemented by hosts that keep log-shipped replicas of
// relations owned elsewhere. ReplicaRead serves a read-only transaction
// from the local replica, stamping Response.Version with the replica's
// applied version; ok=false means no replica covers the relation.
type ReplicaReader interface {
	ReplicaRead(tx core.Transaction) (fut *session.Future, ok bool)
}

// LogSource is implemented by hosts whose committed-transaction log can
// be subscribed to (funcdb.Store with durability; the primary side of
// replication). The callback contract is archive.TailFunc's: records
// arrive in commit order, under the log mutex — hand off, don't block.
type LogSource interface {
	SubscribeLog(after int64, fn func(seq int64, record []byte)) (cancel func(), err error)
}

// StatsProvider is implemented by hosts that can report their metrics
// snapshot (funcdb.Store, a cluster node). A Stats frame on a host
// without it still answers — with the server's own section only.
type StatsProvider interface {
	MetricsSnapshot() metrics.Snapshot
}

// TraceSource is implemented by hosts with request tracing enabled: the
// handler opens a trace per request (continuing a version-5 wire context
// when the client propagated one), brackets the conn-read, decode,
// encode and flush stages onto it, and a Traces frame answers with the
// recorder's published traces. A host without it serves every request
// untraced at zero cost.
type TraceSource interface {
	TraceRecorder() *reqtrace.Recorder
}

// LogTraceSource is implemented by hosts that remember the trace context
// of recent commits (funcdb.Store over its archive's ring): the
// log-shipping stream stamps that context onto the records it sends a
// version-5 subscriber, so a replica's apply spans join the trace.
type LogTraceSource interface {
	LogTraceCtxOf(seq int64) reqtrace.Ctx
}

// HeartbeatSink is implemented by hosts that participate in failover: a
// FrameHeartbeat merges the sender's view and answers with the host's
// own (ok=false answers nothing — the host has no failover state).
type HeartbeatSink interface {
	HandleHeartbeat(hb wire.Heartbeat) (ack wire.Heartbeat, ok bool)
}

// Fencer is implemented by hosts that enforce epoch fencing on
// forwarded writes: FenceForward refuses a statement for a slot the
// host does not serve in the frame's epoch, and OwnerEpoch reports the
// newest known epoch for a relation's slot (stamped into Redirects on
// v3 connections so the sender re-resolves with it).
type Fencer interface {
	FenceForward(rel string, epoch uint64, hasEpoch bool) error
	OwnerEpoch(rel string) uint64
}

// SlotLogSource is implemented by hosts that serve slot-addressed,
// epoch-stamped log subscriptions (a failover cluster node: its own
// slot or a takeover slot). Subscriber acks flow back through
// SubscriberAck and feed the host's replication-ack write gate.
type SlotLogSource interface {
	SubscribeSlotLog(slot, subscriber int, after int64, fn func(seq int64, epoch uint64, record []byte)) (cancel func(), err error)
	SubscriberAttached(slot, subscriber int)
	SubscriberAck(slot, subscriber int, seq int64)
	SubscriberGone(slot, subscriber int)
}

// Server serves the wire protocol over one or more hosts.
type Server struct {
	hosts map[string]Host
	ln    net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup // one per live connection handler
	draining atomic.Bool
	nconn    atomic.Int64

	// m is always allocated: the wire front end is instrumented
	// unconditionally, because every cost here is already dwarfed by a
	// network round trip. Hot-path opt-outs live below (engine, archive).
	m *metrics.Server
}

// New wraps a single store in a server, hosted under the default
// database name ("main"). The server does not own the store: the caller
// closes it after Shutdown.
func New(store Host) *Server {
	return NewMulti(map[string]Host{wire.DefaultDatabase: store})
}

// NewMulti wraps several stores in one server, each hosted under its
// database name: one listener, many stores. Connections choose with the
// Hello database field; version-1 clients land on wire.DefaultDatabase.
func NewMulti(hosts map[string]Host) *Server {
	hs := make(map[string]Host, len(hosts))
	for name, h := range hosts {
		hs[name] = h
	}
	return &Server{hosts: hs, conns: make(map[net.Conn]struct{}), m: &metrics.Server{}}
}

// Metrics returns the server's own instrumentation, for aggregation into
// a host-level snapshot.
func (s *Server) Metrics() *metrics.Server { return s.m }

// Listen binds the listener. addr is a TCP address; ":0" picks a free
// port (Addr reports it).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	return nil
}

// AttachListener serves on an already-bound listener (ownership
// transfers to the server). It solves cluster bootstrap: every node
// needs the full membership's addresses before any node is constructed,
// so the caller binds all listeners first and hands them over.
func (s *Server) AttachListener(ln net.Listener) { s.ln = ln }

// Addr returns the bound listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until the listener closes (Shutdown). Each
// connection runs in its own goroutine. Serve returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.draining.Load() {
			// Shutdown won the race: refuse rather than start a handler
			// the drain will not see.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains the server: stop accepting, unblock every connection's
// pending read so its handler can answer what it has fully read and
// close, wait for all handlers, then barrier every host — with
// durability, the group-commit buffers are flushed, so every response a
// client received is on disk when Shutdown returns. The stores themselves
// stay open.
func (s *Server) Shutdown() error {
	s.draining.Store(true)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		// A handler blocked in read wakes immediately with a timeout and
		// runs its drain path; a handler mid-request finishes writing its
		// replies first (the deadline only gates reads).
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, h := range s.hosts {
		h.Barrier()
		if derr := h.DurabilityErr(); derr != nil {
			return derr
		}
	}
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// Abort hard-stops the server: the listener and every live connection
// close immediately, with no drain and no host barrier — in-flight
// requests are simply cut. It is the in-process stand-in for a process
// crash (fault-injection tests, fdbload's kill smoke); everything a
// real SIGKILL would lose, Abort loses too.
func (s *Server) Abort() {
	s.draining.Store(true)
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// reply is one pending answer on a connection, kept in request order.
type reply struct {
	id       uint64
	fut      *session.Future   // FrameExec / single-statement Forward
	futs     []*session.Future // FrameBatch / multi-statement Forward
	qerr     error             // translation/bind failure: nothing admitted
	index    int               // failing statement index (batches), else -1
	redirect string            // FrameRedirect: the owning node's address
	rel      string            // FrameRedirect: the relation being placed
	rdEpoch  uint64            // FrameRedirect: owner epoch (v3 conns, failover hosts)
	stats    []byte            // FrameStatsResponse: the snapshot document
	traces   []byte            // FrameTracesResponse: the trace document
	raw      []byte            // pre-encoded payload (heartbeat acks)
	rawType  byte              // frame type for raw
	reqType  byte              // request frame type, keys the latency histogram
	start    time.Time         // request read off the socket (latency epoch)
	tr       *reqtrace.T       // live trace (nil untraced): encode/flush spans, Finish
}

// handle drives one connection: handshake, then a read loop that queues
// statements into the session and flushes (admit + answer, in order)
// whenever the socket has no more buffered frames.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReaderSize(conn, connReadBufSize)
	bw := bufio.NewWriterSize(conn, connWriteBufSize)
	rd := wire.NewReader(br)

	typ, payload, err := rd.Next()
	if err != nil || typ != wire.FrameHello {
		return // not speaking our protocol; nothing was admitted
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		return
	}
	connVer := hello.Version
	host, ok := s.hosts[hello.Database]
	if !ok {
		// The handshake has no request id yet; id 0 with index -1 is the
		// conventional pre-session failure.
		msg := wire.AppendErrorMsg(nil, 0, -1, fmt.Sprintf("server: unknown database %q", hello.Database))
		if wire.WriteFrame(bw, wire.FrameError, msg) == nil {
			bw.Flush()
		}
		return
	}
	origin := hello.Origin
	if origin == "" {
		origin = fmt.Sprintf("conn%d", s.nconn.Add(1))
	}
	welcome := wire.AppendWelcome(nil, wire.Welcome{
		Lanes:    host.Lanes(),
		Durable:  host.Durable(),
		Origin:   origin,
		Database: hello.Database,
	})
	if err := wire.WriteFrame(bw, wire.FrameWelcome, welcome); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	s.m.ConnsTotal.Inc()
	s.m.Conns.Add(1)
	var nreq int64
	defer func() {
		s.m.Conns.Add(-1)
		s.m.ReqPerConn.Observe(nreq)
	}()

	sess := host.Session(origin)
	// rec is the host's trace recorder; nil means tracing off, and every
	// instrumentation site below is one pointer comparison.
	var rec *reqtrace.Recorder
	if ts, ok := host.(TraceSource); ok {
		rec = ts.TraceRecorder()
	}
	var (
		pending []reply
		// trs collects the live traces of one flush so their flush span and
		// Finish run after the batch leaves the socket.
		trs []*reqtrace.T
		// out is the connection's reused response buffer: every reply of a
		// flush is framed in place (BeginFrame + payload appenders +
		// EndFrame) and the whole batch leaves in ONE bw.Write — no
		// per-reply staging buffer, no per-frame allocation.
		out []byte
		// respScratch is reused across batch replies; AppendResponses
		// copies everything it encodes, so overwriting next flush is safe.
		respScratch []core.Response
		// Prepared-statement decode scratch, reused frame to frame: args
		// decode into argScratch with zero amortized allocation, and the
		// bind copies every value out before the next frame overwrites it.
		argScratch  []value.Item
		callScratch []wire.PreparedCall
		fwdpScratch []wire.PreparedFwdStmt
		txScratch   []core.Transaction
	)

	// bindPrepared binds one resolved statement and stamps its forwarding
	// provenance: transactions bound here carry their template's hash, and
	// — only when this host would have to forward them to another owner —
	// a private copy of the args, because a bound transaction has no
	// rebindable text form to ship.
	bindPrepared := func(prep *query.Prepared, args []value.Item, onward bool) (core.Transaction, error) {
		tx, err := prep.Bind(args...)
		if err != nil {
			return tx, err
		}
		tx.PrepHash = prep.Hash()
		if onward {
			if placer, ok := host.(Placer); ok {
				if _, self := placer.Owner(tx.Rel); !self {
					tx.PrepArgs = append([]value.Item(nil), args...)
				}
			}
		}
		return tx, nil
	}

	// flush admits every queued statement in one batch and writes the
	// replies in request order. Responses are forced in order — the
	// session's pipelining discipline.
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		sess.Flush()
		out = out[:0]
		trs = trs[:0]
		for i := range pending {
			rp := &pending[i]
			var mark int
			var err error
			var encStart time.Time
			if rp.tr != nil {
				encStart = time.Now()
			}
			switch {
			case rp.qerr != nil:
				// A batch error ships the underlying message plus the
				// failing index; the client re-wraps it as a BatchError, so
				// local and remote error text come out identical.
				msg := rp.qerr.Error()
				var be *session.BatchError
				if errors.As(rp.qerr, &be) {
					msg = be.Err.Error()
				}
				out, mark = wire.BeginFrame(out, wire.FrameError)
				out = wire.AppendErrorMsg(out, rp.id, rp.index, msg)
			case rp.redirect != "":
				out, mark = wire.BeginFrame(out, wire.FrameRedirect)
				if connVer >= 3 && rp.rdEpoch > 0 {
					out = wire.AppendRedirectE(out, rp.id, rp.redirect, rp.rel, rp.rdEpoch)
				} else {
					out = wire.AppendRedirect(out, rp.id, rp.redirect, rp.rel)
				}
			case rp.raw != nil:
				out, mark = wire.BeginFrame(out, rp.rawType)
				out = append(out, rp.raw...)
			case rp.stats != nil:
				out, mark = wire.BeginFrame(out, wire.FrameStatsResponse)
				out = wire.AppendStatsResponse(out, rp.id, rp.stats)
			case rp.traces != nil:
				out, mark = wire.BeginFrame(out, wire.FrameTracesResponse)
				out = wire.AppendTracesResponse(out, rp.id, rp.traces)
			case rp.futs != nil:
				if cap(respScratch) < len(rp.futs) {
					respScratch = make([]core.Response, len(rp.futs))
				}
				resps := respScratch[:len(rp.futs)]
				for j, f := range rp.futs {
					resps[j] = f.Force()
				}
				out, mark = wire.BeginFrame(out, wire.FrameBatchResponse)
				if out, err = wire.AppendResponses(out, rp.id, resps); err != nil {
					return false
				}
			default:
				out, mark = wire.BeginFrame(out, wire.FrameResponse)
				if out, err = wire.AppendSingleResponse(out, rp.id, rp.fut.Force()); err != nil {
					return false
				}
			}
			if out, err = wire.EndFrame(out, mark); err != nil {
				return false
			}
			if rp.tr != nil {
				// Encode covers forcing the futures too: the wait for the
				// engine's response is part of what the client experiences.
				rp.tr.Span(reqtrace.StageEncode, encStart, time.Now())
				trs = append(trs, rp.tr)
			}
			// Response latency by request frame type, socket-read to
			// response-written: what the client experiences minus the
			// network, queue wait under adaptive batching included.
			switch rp.reqType {
			case wire.FrameExec, wire.FrameExecPrepared:
				s.m.LatencyExec.Since(rp.start)
			case wire.FrameBatch, wire.FrameBatchPrepared:
				s.m.LatencyBatch.Since(rp.start)
			case wire.FrameForward, wire.FrameForwardPrepared:
				s.m.LatencyForward.Since(rp.start)
			}
		}
		pending = pending[:0]
		var flushStart time.Time
		if len(trs) > 0 {
			flushStart = time.Now()
		}
		if _, err := bw.Write(out); err != nil {
			return false
		}
		if cap(out) > maxConnEncodeBuf {
			// One oversized scan response must not pin its high-water mark
			// for the connection's lifetime.
			out = nil
		}
		ok := bw.Flush() == nil
		// The batch is on the wire: close each trace's flush span and run
		// admission. A group-commit fsync span may still arrive later — the
		// recorder holds the live handle, so it attaches.
		if len(trs) > 0 {
			end := time.Now()
			for _, t := range trs {
				t.Span(reqtrace.StageFlush, flushStart, end)
				rec.Finish(t)
			}
			trs = trs[:0]
		}
		return ok
	}

	// startTrace opens the per-request trace once the frame is decoded:
	// continuing the client's propagated wire context when it carried one,
	// fresh otherwise. The conn-read and decode stages already happened —
	// readStart brackets the blocking read, start the decode; decode ends
	// here. Untraced hosts return nil and never read a clock.
	var readStart time.Time
	startTrace := func(tc wire.TraceCtx, start time.Time) *reqtrace.T {
		if rec == nil {
			return nil
		}
		var t *reqtrace.T
		if tc.ID != 0 {
			t = rec.StartCtx(reqtrace.Ctx{ID: tc.ID, Hop: tc.Hop, Sampled: tc.Sampled})
		} else {
			t = rec.Start()
		}
		t.Span(reqtrace.StageConnRead, readStart, start)
		t.Span(reqtrace.StageDecode, start, time.Now())
		return t
	}

	for {
		if rec != nil {
			readStart = time.Now()
		}
		typ, payload, err := rd.Next()
		if err != nil {
			// EOF, a drain deadline, or a broken peer: answer everything
			// fully read (those requests may already be admitted), then
			// close. Nothing half-read was ever queued.
			flush()
			return
		}
		nreq++
		start := time.Now()
		switch typ {
		case wire.FrameExec:
			var id uint64
			var q string
			var tc wire.TraceCtx
			var derr error
			if connVer >= 5 {
				id, q, tc, derr = wire.DecodeExecT(payload)
			} else {
				id, q, derr = wire.DecodeExec(payload)
			}
			if derr != nil {
				flush()
				return
			}
			s.m.Execs.Inc()
			tr := startTrace(tc, start)
			var fut *session.Future
			var qerr error
			if tr == nil {
				fut, qerr = sess.Queue(q)
			} else {
				var tx core.Transaction
				if tx, qerr = sess.Translate(q); qerr == nil {
					tx.Trace = tr
					fut = sess.QueueTx(tx)
				}
			}
			pending = append(pending, reply{id: id, fut: fut, qerr: qerr, index: -1, reqType: typ, start: start, tr: tr})

		case wire.FrameBatch:
			var id uint64
			var qs []string
			var tc wire.TraceCtx
			var derr error
			if connVer >= 5 {
				id, qs, tc, derr = wire.DecodeBatchT(payload)
			} else {
				id, qs, derr = wire.DecodeBatch(payload)
			}
			if derr != nil {
				flush()
				return
			}
			s.m.Batches.Inc()
			tr := startTrace(tc, start)
			// All-or-nothing: translate the whole batch before queueing
			// anything, so a failure admits none of it.
			rp := reply{id: id, index: -1, reqType: typ, start: start, tr: tr}
			txs := make([]core.Transaction, len(qs))
			for i, q := range qs {
				tx, terr := sess.Translate(q)
				if terr != nil {
					rp.qerr = &session.BatchError{Index: i, Query: q, Err: terr}
					rp.index = i
					break
				}
				tx.Trace = tr
				txs[i] = tx
			}
			if rp.qerr == nil {
				futs := make([]*session.Future, len(txs))
				for i, tx := range txs {
					futs[i] = sess.QueueTx(tx)
				}
				rp.futs = futs
			}
			pending = append(pending, rp)

		case wire.FrameForward:
			var id, epoch uint64
			var flags byte
			var tc wire.TraceCtx
			var stmts []wire.ForwardStmt
			var derr error
			if connVer >= 5 {
				id, flags, epoch, tc, stmts, derr = wire.DecodeForwardT(payload)
			} else {
				id, flags, epoch, stmts, derr = wire.DecodeForwardE(payload)
			}
			if derr != nil {
				flush()
				return
			}
			s.m.Forwards.Inc()
			tr := startTrace(tc, start)
			rp := s.handleForward(host, sess, id, flags, epoch, stmts, tr)
			rp.reqType, rp.start, rp.tr = typ, start, tr
			pending = append(pending, rp)

		case wire.FramePrepare:
			id, text, derr := wire.DecodePrepare(payload)
			if derr != nil {
				flush()
				return
			}
			s.m.Prepares.Inc()
			rp := reply{id: id, index: -1, reqType: typ, start: start}
			if stmtID, prep, perr := sess.Register(text); perr != nil {
				rp.qerr = perr
			} else {
				rp.raw = wire.AppendPrepared(nil, id, stmtID, prep.NumParams())
				rp.rawType = wire.FramePrepared
			}
			pending = append(pending, rp)

		case wire.FrameExecPrepared:
			var id, stmtID uint64
			var tc wire.TraceCtx
			var derr error
			if connVer >= 5 {
				id, stmtID, argScratch, tc, derr = wire.DecodeExecPreparedIntoT(payload, argScratch[:0])
			} else {
				id, stmtID, argScratch, derr = wire.DecodeExecPreparedInto(payload, argScratch[:0])
			}
			if derr != nil {
				flush()
				return
			}
			s.m.PreparedExecs.Inc()
			tr := startTrace(tc, start)
			rp := reply{id: id, index: -1, reqType: typ, start: start, tr: tr}
			if prep, ok := sess.PreparedByID(stmtID); ok {
				tx, berr := bindPrepared(prep, argScratch, true)
				if berr != nil {
					rp.qerr = berr
				} else {
					tx.Trace = tr
					rp.fut = sess.QueueTx(tx)
				}
			} else {
				s.m.UnknownStmts.Inc()
				rp.qerr = query.ErrUnknownStmt
			}
			pending = append(pending, rp)

		case wire.FrameBatchPrepared:
			var id uint64
			var tc wire.TraceCtx
			var derr error
			if connVer >= 5 {
				id, callScratch, argScratch, tc, derr = wire.DecodeBatchPreparedIntoT(payload, callScratch[:0], argScratch[:0])
			} else {
				id, callScratch, argScratch, derr = wire.DecodeBatchPreparedInto(payload, callScratch[:0], argScratch[:0])
			}
			if derr != nil {
				flush()
				return
			}
			s.m.Batches.Inc()
			s.m.PreparedExecs.Inc()
			tr := startTrace(tc, start)
			// All-or-nothing, like FrameBatch: resolve and bind the whole
			// frame before queueing anything.
			rp := reply{id: id, index: -1, reqType: typ, start: start, tr: tr}
			if cap(txScratch) < len(callScratch) {
				txScratch = make([]core.Transaction, len(callScratch))
			}
			txs := txScratch[:len(callScratch)]
			for i, c := range callScratch {
				prep, ok := sess.PreparedByID(c.Stmt)
				if !ok {
					s.m.UnknownStmts.Inc()
					rp.qerr = &session.BatchError{Index: i, Err: query.ErrUnknownStmt}
					rp.index = i
					break
				}
				tx, berr := bindPrepared(prep, c.Args, true)
				if berr != nil {
					rp.qerr = &session.BatchError{Index: i, Query: prep.Src(), Err: berr}
					rp.index = i
					break
				}
				tx.Trace = tr
				txs[i] = tx
			}
			if rp.qerr == nil {
				futs := make([]*session.Future, len(txs))
				for i := range txs {
					futs[i] = sess.QueueTx(txs[i])
				}
				rp.futs = futs
			}
			pending = append(pending, rp)

		case wire.FrameForwardPrepared:
			var id, epoch uint64
			var flags byte
			var tc wire.TraceCtx
			var derr error
			if connVer >= 5 {
				id, flags, epoch, tc, fwdpScratch, argScratch, derr = wire.DecodeForwardPreparedIntoT(payload, fwdpScratch[:0], argScratch[:0])
			} else {
				id, flags, epoch, fwdpScratch, argScratch, derr = wire.DecodeForwardPreparedInto(payload, fwdpScratch[:0], argScratch[:0])
			}
			if derr != nil {
				flush()
				return
			}
			s.m.Forwards.Inc()
			s.m.PreparedExecs.Inc()
			tr := startTrace(tc, start)
			var rp reply
			rp, txScratch = s.handleForwardPrepared(host, sess, id, flags, epoch, fwdpScratch, txScratch, tr)
			rp.reqType, rp.start, rp.tr = typ, start, tr
			pending = append(pending, rp)

		case wire.FrameHeartbeat:
			hb, derr := wire.DecodeHeartbeat(payload)
			if derr != nil {
				flush()
				return
			}
			sink, ok := host.(HeartbeatSink)
			if !ok {
				flush()
				return
			}
			ack, ok := sink.HandleHeartbeat(hb)
			if !ok {
				flush()
				return
			}
			pending = append(pending, reply{raw: wire.AppendHeartbeat(nil, ack), rawType: wire.FrameHeartbeatAck, reqType: typ, start: start})

		case wire.FrameStats:
			id, derr := wire.DecodeStats(payload)
			if derr != nil {
				flush()
				return
			}
			s.m.StatsReqs.Inc()
			pending = append(pending, reply{id: id, stats: s.statsJSON(host), reqType: typ, start: start})

		case wire.FrameTraces:
			id, derr := wire.DecodeTraces(payload)
			if derr != nil {
				flush()
				return
			}
			pending = append(pending, reply{id: id, traces: s.tracesJSON(host), reqType: typ, start: start})

		case wire.FrameSubscribe:
			after, slot, sub, derr := wire.DecodeSubscribeEx(payload)
			if derr != nil || !flush() {
				return
			}
			s.m.Subscribes.Inc()
			if slot >= 0 {
				if src, ok := host.(SlotLogSource); ok {
					s.streamSlotLog(rd, bw, src, slot, sub, after, connVer)
					return
				}
			}
			s.streamLog(conn, rd, bw, host, after, connVer)
			return

		case wire.FrameQuit:
			flush()
			return

		default:
			// Unknown frame type: protocol error, close after answering
			// what we have.
			flush()
			return
		}

		// Adaptive batching: keep queueing while the socket already holds
		// more frames; admit and answer the moment the next read would
		// block. maxPipeline bounds a connection's in-flight statements.
		if br.Buffered() == 0 || len(pending) >= maxPipeline {
			if !flush() {
				return
			}
		}
	}
}

// statsJSON builds the FrameStatsResponse document: the host's full
// snapshot when it can report one, with the server's own section stamped
// in either way. Always non-nil — a Stats request is never unanswerable.
func (s *Server) statsJSON(host Host) []byte {
	var snap metrics.Snapshot
	if sp, ok := host.(StatsProvider); ok {
		snap = sp.MetricsSnapshot()
	} else {
		snap.Lanes = host.Lanes()
		snap.Durable = host.Durable()
	}
	srv := s.m.Snapshot()
	snap.Server = &srv
	doc, err := json.Marshal(snap)
	if err != nil {
		return []byte("{}")
	}
	return doc
}

// tracesJSON builds the FrameTracesResponse document: the host
// recorder's published traces as a JSON array. Always non-nil — a host
// without tracing answers an empty array, not an error, so clients can
// probe without knowing the server's configuration.
func (s *Server) tracesJSON(host Host) []byte {
	var traces []reqtrace.Trace
	if ts, ok := host.(TraceSource); ok {
		traces = ts.TraceRecorder().Traces()
	}
	if len(traces) == 0 {
		return []byte("[]")
	}
	doc, err := json.Marshal(traces)
	if err != nil {
		return []byte("[]")
	}
	return doc
}

// handleForward queues one FrameForward: pre-tagged statements executed
// without retagging. Read-only statements with FwdReadLocal are served
// from the host's replica layer first, whoever owns them: a non-owner
// answers from its log-shipped mirror, the owner from its own store —
// both stamp Response.Version, so the client always learns its staleness
// bound (zero at the owner). Otherwise ownership is checked against the
// host's placement (when it has one): a frame for a relation owned
// elsewhere is answered with a Redirect when the sender asked not to
// chain. All statements of one frame must route the same way: senders
// group by owner, so a mixed frame is a protocol error.
//
// On a fencing host, frames that would execute here are first checked
// against the slot's epoch (FwdEpoch-stamped frames carry the sender's
// belief): a stale sender is refused, not served, and the error crosses
// back as text — the sender re-resolves placement. Replica reads skip
// the fence; they are stamped with their version and legal anywhere.
func (s *Server) handleForward(host Host, sess *session.Session, id uint64, flags byte, epoch uint64, stmts []wire.ForwardStmt, tr *reqtrace.T) reply {
	rp := reply{id: id, index: -1}
	if len(stmts) == 0 {
		rp.qerr = errors.New("server: empty forward frame")
		return rp
	}
	txs := make([]core.Transaction, len(stmts))
	for i, st := range stmts {
		tx, terr := sess.Translate(st.Query)
		if terr != nil {
			// The failing index is the position inside THIS frame; the
			// gateway that built the frame remaps it to the client's batch
			// position, so the index survives forwarding.
			rp.qerr = terr
			rp.index = i
			return rp
		}
		tx.Origin, tx.Seq = st.Origin, st.Seq
		txs[i] = tx
	}
	return s.routeForward(host, sess, rp, flags, epoch, txs, tr)
}

// routeForward is the shared tail of handleForward and
// handleForwardPrepared: placement check, replica reads, fencing, then
// tagged admission. txs is only read during the call — callers may reuse
// the slice (the session copies each transaction it queues).
func (s *Server) routeForward(host Host, sess *session.Session, rp reply, flags byte, epoch uint64, txs []core.Transaction, tr *reqtrace.T) reply {
	if tr != nil {
		for i := range txs {
			txs[i].Trace = tr
		}
	}
	var remoteAddr string
	if placer, ok := host.(Placer); ok {
		addr0, self0 := placer.Owner(txs[0].Rel)
		if !self0 {
			remoteAddr = addr0
		}
		for _, tx := range txs[1:] {
			addr, self := placer.Owner(tx.Rel)
			if self != self0 || (!self && addr != addr0) {
				rp.qerr = errors.New("server: forward frame mixes statement owners")
				return rp
			}
		}
	}

	if flags&wire.FwdReadLocal != 0 && allReadOnly(txs) {
		if rr, ok := host.(ReplicaReader); ok {
			if futs, served := replicaReads(rr, txs); served {
				return finishForward(rp, futs)
			}
			// No replica covers the relation (replication disabled or
			// still bootstrapping): fall back to redirect/forward, so
			// the owner serves a fresh read instead.
		}
	}

	fencer, fencing := host.(Fencer)
	if remoteAddr != "" {
		if flags&wire.FwdNoForward != 0 {
			rp.redirect, rp.rel = remoteAddr, txs[0].Rel
			if fencing {
				rp.rdEpoch = fencer.OwnerEpoch(txs[0].Rel)
			}
			return rp
		}
		// No flag: fall through to the session, whose submitter (the
		// cluster node) forwards onward — at most one extra hop, because
		// node-to-node forwards always set FwdNoForward.
	}

	if fencing && remoteAddr == "" {
		if ferr := fencer.FenceForward(txs[0].Rel, epoch, flags&wire.FwdEpoch != 0); ferr != nil {
			rp.qerr = ferr
			return rp
		}
	}

	if len(txs) == 1 {
		// The single-statement forward is the cluster client's hot path:
		// skip the future-slice allocation entirely.
		rp.fut = sess.QueueTagged(txs[0])
		return rp
	}
	futs := make([]*session.Future, len(txs))
	for i, tx := range txs {
		futs[i] = sess.QueueTagged(tx)
	}
	return finishForward(rp, futs)
}

// handleForwardPrepared is handleForward for FrameForwardPrepared: each
// statement resolves against the session's (node- or store-wide) cache —
// dense id first, then text hash, then the text itself when the sender
// included one, registering it so the next hash-only call hits. A
// statement that resolves nowhere answers query.ErrUnknownStmt: the
// sender re-sends with text, and a stale id never resolves to a stale
// plan. txScratch is the connection's reused bind target; the returned
// slice keeps its growth.
func (s *Server) handleForwardPrepared(host Host, sess *session.Session, id uint64, flags byte, epoch uint64, stmts []wire.PreparedFwdStmt, txScratch []core.Transaction, tr *reqtrace.T) (reply, []core.Transaction) {
	rp := reply{id: id, index: -1}
	if len(stmts) == 0 {
		rp.qerr = errors.New("server: empty forward frame")
		return rp, txScratch
	}
	if cap(txScratch) < len(stmts) {
		txScratch = make([]core.Transaction, len(stmts))
	}
	txs := txScratch[:len(stmts)]
	placer, placed := host.(Placer)
	for i, st := range stmts {
		var prep *query.Prepared
		var ok bool
		if st.Stmt != 0 {
			prep, ok = sess.PreparedByID(st.Stmt)
		}
		if !ok && st.Hash != 0 {
			prep, ok = sess.PreparedByHash(st.Hash)
		}
		var tx core.Transaction
		var terr error
		switch {
		case ok:
			tx, terr = prep.Bind(st.Args...)
		case st.HasText && st.Hash != 0:
			if _, prep, terr = sess.Register(st.Text); terr == nil {
				tx, terr = prep.Bind(st.Args...)
			}
		case st.HasText:
			// A plain text statement riding a mixed prepared run.
			tx, terr = sess.Translate(st.Text)
		default:
			s.m.UnknownStmts.Inc()
			rp.qerr, rp.index = query.ErrUnknownStmt, i
			return rp, txScratch
		}
		if terr != nil {
			rp.qerr, rp.index = terr, i
			return rp, txScratch
		}
		tx.Origin, tx.Seq = st.Origin, st.Seq
		if prep != nil {
			tx.PrepHash = prep.Hash()
			if placed && flags&wire.FwdNoForward == 0 {
				if _, self := placer.Owner(tx.Rel); !self {
					// This gateway forwards onward: the bound transaction has
					// no rebindable text form, so carry a private copy of the
					// args (st.Args aliases the connection's decode scratch).
					tx.PrepArgs = append([]value.Item(nil), st.Args...)
				}
			}
		}
		txs[i] = tx
	}
	return s.routeForward(host, sess, rp, flags, epoch, txs, tr), txScratch
}

// finishForward shapes the reply: one statement answers as a single
// FrameResponse, several as a FrameBatchResponse.
func finishForward(rp reply, futs []*session.Future) reply {
	if len(futs) == 1 {
		rp.fut = futs[0]
	} else {
		rp.futs = futs
	}
	return rp
}

// replicaReads serves every transaction from the host's replicas, or
// reports served=false (nothing submitted) if any lacks one.
func replicaReads(rr ReplicaReader, txs []core.Transaction) (futs []*session.Future, served bool) {
	futs = make([]*session.Future, len(txs))
	for i, tx := range txs {
		fut, ok := rr.ReplicaRead(tx)
		if !ok {
			return nil, false
		}
		futs[i] = fut
	}
	return futs, true
}

// allReadOnly reports whether every transaction is read-only (the
// precondition for serving from a replica).
func allReadOnly(txs []core.Transaction) bool {
	for _, tx := range txs {
		if !tx.IsReadOnly() {
			return false
		}
	}
	return true
}

// streamLog turns the connection into a log-shipping stream: every
// committed-transaction record with sequence > after, as FrameLogRecord
// frames, until either side closes. Records are handed off the commit
// path into an unbounded queue (the tail callback must never block the
// log mutex) and written from this handler goroutine; a watcher goroutine
// consumes the read side so a peer close — or the drain deadline — ends
// the stream.
func (s *Server) streamLog(conn net.Conn, rd *wire.Reader, bw *bufio.Writer, host Host, after int64, connVer byte) {
	src, ok := host.(LogSource)
	if !ok {
		msg := wire.AppendErrorMsg(nil, 0, -1, "server: host has no subscribable log (no durability)")
		if wire.WriteFrame(bw, wire.FrameError, msg) == nil {
			bw.Flush()
		}
		return
	}
	// Version-5 subscribers get sampled commits' trace contexts stamped as
	// record suffixes, so replica-apply spans join the originating trace.
	// Pre-v5 peers get the record bytes verbatim.
	var lts LogTraceSource
	if connVer >= 5 {
		lts, _ = host.(LogTraceSource)
	}
	q := &recQueue{}
	q.cond = sync.NewCond(&q.mu)
	cancel, err := src.SubscribeLog(after, func(seq int64, record []byte) {
		rec := append([]byte(nil), record...)
		if lts != nil {
			if c := lts.LogTraceCtxOf(seq); c.Valid() && c.Sampled {
				rec = wire.AppendTraceCtx(rec, wire.TraceCtx{ID: c.ID, Hop: c.Hop, Sampled: true})
			}
		}
		q.push(rec)
	})
	if err != nil {
		msg := wire.AppendErrorMsg(nil, 0, -1, err.Error())
		if wire.WriteFrame(bw, wire.FrameError, msg) == nil {
			bw.Flush()
		}
		return
	}
	defer cancel()
	go func() {
		// The subscriber sends nothing after Subscribe (Quit at most): any
		// read result — frame, EOF, drain deadline — ends the stream. The
		// handler goroutine only writes from here on, so this goroutine
		// owns the connection's Reader.
		for {
			if _, _, err := rd.Next(); err != nil {
				break
			}
		}
		q.closeQueue()
	}()
	for {
		recs, open := q.pop()
		for _, rec := range recs {
			if wire.WriteFrame(bw, wire.FrameLogRecord, rec) != nil {
				return
			}
		}
		if bw.Flush() != nil {
			return
		}
		if !open {
			return
		}
	}
}

// streamSlotLog is streamLog's slot-addressed, epoch-stamped variant:
// records leave as FrameLogRecordE, and the subscriber acks each
// applied record with FrameSubAck — the watcher goroutine feeds those
// acks back to the host, where they gate the primary's write
// acknowledgements (semi-synchronous replication).
func (s *Server) streamSlotLog(rd *wire.Reader, bw *bufio.Writer, src SlotLogSource, slot, sub int, after int64, connVer byte) {
	// Same trace-context stamping as streamLog: the suffix rides the inner
	// record, inside the epoch-stamped LogRecordE envelope.
	var lts LogTraceSource
	if connVer >= 5 {
		lts, _ = src.(LogTraceSource)
	}
	q := &recQueue{}
	q.cond = sync.NewCond(&q.mu)
	cancel, err := src.SubscribeSlotLog(slot, sub, after, func(seq int64, epoch uint64, record []byte) {
		if lts != nil {
			if c := lts.LogTraceCtxOf(seq); c.Valid() && c.Sampled {
				rec := wire.AppendTraceCtx(append([]byte(nil), record...), wire.TraceCtx{ID: c.ID, Hop: c.Hop, Sampled: true})
				q.push(wire.AppendLogRecordE(nil, epoch, rec))
				return
			}
		}
		q.push(wire.AppendLogRecordE(nil, epoch, record))
	})
	if err != nil {
		msg := wire.AppendErrorMsg(nil, 0, -1, err.Error())
		if wire.WriteFrame(bw, wire.FrameError, msg) == nil {
			bw.Flush()
		}
		return
	}
	defer cancel()
	src.SubscriberAttached(slot, sub)
	defer src.SubscriberGone(slot, sub)
	go func() {
		for {
			typ, payload, err := rd.Next()
			if err != nil || typ != wire.FrameSubAck {
				break
			}
			if seq, derr := wire.DecodeSubAck(payload); derr == nil {
				src.SubscriberAck(slot, sub, seq)
			} else {
				break
			}
		}
		q.closeQueue()
	}()
	for {
		recs, open := q.pop()
		for _, rec := range recs {
			if wire.WriteFrame(bw, wire.FrameLogRecordE, rec) != nil {
				return
			}
		}
		if bw.Flush() != nil {
			return
		}
		if !open {
			return
		}
	}
}

// recQueue is the unbounded hand-off between the commit-path tail
// callback and the stream writer.
type recQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	recs   [][]byte
	spare  [][]byte // the previously drained buffer, reused for the next fill
	closed bool
}

func (q *recQueue) push(rec []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.recs = append(q.recs, rec)
	q.cond.Signal()
}

func (q *recQueue) closeQueue() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// pop blocks until records are queued or the queue closes, returning the
// drained batch and whether the queue is still open. The returned slice is
// valid until the caller's next pop: the queue holds two buffers and swaps
// them, so the single stream-writer consumer drives a steady state with no
// per-drain allocation.
func (q *recQueue) pop() ([][]byte, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.recs) == 0 && !q.closed {
		q.cond.Wait()
	}
	recs := q.recs
	q.recs = q.spare[:0]
	q.spare = recs
	return recs, !q.closed
}

// maxPipeline bounds the replies a connection may have outstanding before
// the handler forces a flush.
const maxPipeline = 1024

// Per-connection buffer sizing. The read buffer is the adaptive-batching
// window: Buffered() only sees frames that fit, so it is sized for a deep
// pipeline of small request frames. The write buffer stays small because
// replies are pre-assembled into the connection's reused encode buffer
// and leave in one Write — bufio passes any write larger than the buffer
// straight through to the socket.
const (
	connReadBufSize  = 16 << 10
	connWriteBufSize = 4 << 10
	// maxConnEncodeBuf caps the response buffer retained between
	// flushes.
	maxConnEncodeBuf = 256 << 10
)
