// Package server is the network front end over a funcdb store: a TCP
// listener whose connections each drive one session (internal/session)
// speaking the framed protocol of internal/wire.
//
// The server exists so that disjoint network clients land on disjoint
// admission lanes: each connection is its own goroutine and its own
// session, and a connection's buffered requests are admitted through
// Session.Flush as ONE lane-split SubmitBatch — one network read becomes
// one merge arbitration, the Calvin-style batched sequencing the ROADMAP
// names. Pipelining is adaptive: the handler keeps queueing statements
// while more frames are already buffered on the socket, and flushes —
// admitting and answering everything queued, in order — the moment the
// read would block.
//
// Shutdown drains gracefully: stop accepting, unblock every connection's
// pending read, let each handler answer what it has fully read, then
// barrier the store so every acked commit is durable before the process
// exits.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"funcdb"
	"funcdb/internal/core"
	"funcdb/internal/session"
	"funcdb/internal/wire"
)

// Server serves the wire protocol over a store.
type Server struct {
	store *funcdb.Store
	ln    net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup // one per live connection handler
	draining atomic.Bool
	nconn    atomic.Int64
}

// New wraps a store in a server. The server does not own the store: the
// caller closes it after Shutdown.
func New(store *funcdb.Store) *Server {
	return &Server{store: store, conns: make(map[net.Conn]struct{})}
}

// Listen binds the listener. addr is a TCP address; ":0" picks a free
// port (Addr reports it).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until the listener closes (Shutdown). Each
// connection runs in its own goroutine. Serve returns nil on a clean
// shutdown.
func (s *Server) Serve() error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return fmt.Errorf("server: accept: %w", err)
		}
		s.mu.Lock()
		if s.draining.Load() {
			// Shutdown won the race: refuse rather than start a handler
			// the drain will not see.
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe(addr string) error {
	if err := s.Listen(addr); err != nil {
		return err
	}
	return s.Serve()
}

// Shutdown drains the server: stop accepting, unblock every connection's
// pending read so its handler can answer what it has fully read and
// close, wait for all handlers, then barrier the store — with durability,
// the group-commit buffer is flushed, so every response a client received
// is on disk when Shutdown returns. The store itself stays open.
func (s *Server) Shutdown() error {
	s.draining.Store(true)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		// A handler blocked in read wakes immediately with a timeout and
		// runs its drain path; a handler mid-request finishes writing its
		// replies first (the deadline only gates reads).
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	s.wg.Wait()
	s.store.Barrier()
	if derr := s.store.DurabilityErr(); derr != nil {
		return derr
	}
	if err != nil && !errors.Is(err, net.ErrClosed) {
		return err
	}
	return nil
}

// reply is one pending answer on a connection, kept in request order.
type reply struct {
	id    uint64
	fut   *session.Future   // FrameExec: the statement's response future
	futs  []*session.Future // FrameBatch: response futures in order
	qerr  error             // translation/bind failure: nothing admitted
	index int               // failing statement index (batches), else -1
}

// handle drives one connection: handshake, then a read loop that queues
// statements into the session and flushes (admit + answer, in order)
// whenever the socket has no more buffered frames.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()

	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	typ, payload, err := wire.ReadFrame(br)
	if err != nil || typ != wire.FrameHello {
		return // not speaking our protocol; nothing was admitted
	}
	hello, err := wire.DecodeHello(payload)
	if err != nil {
		return
	}
	origin := hello.Origin
	if origin == "" {
		origin = fmt.Sprintf("conn%d", s.nconn.Add(1))
	}
	welcome := wire.AppendWelcome(nil, wire.Welcome{
		Lanes:   s.store.Lanes(),
		Durable: s.store.Durable(),
		Origin:  origin,
	})
	if err := wire.WriteFrame(bw, wire.FrameWelcome, welcome); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}

	sess := s.store.Session(origin)
	var pending []reply

	// flush admits every queued statement in one batch and writes the
	// replies in request order. Responses are forced in order — the
	// session's pipelining discipline.
	flush := func() bool {
		if len(pending) == 0 {
			return true
		}
		sess.Flush()
		for _, rp := range pending {
			var frame byte
			var payload []byte
			var err error
			switch {
			case rp.qerr != nil:
				// A batch error ships the underlying message plus the
				// failing index; the client re-wraps it as a BatchError, so
				// local and remote error text come out identical.
				msg := rp.qerr.Error()
				var be *session.BatchError
				if errors.As(rp.qerr, &be) {
					msg = be.Err.Error()
				}
				frame = wire.FrameError
				payload = wire.AppendErrorMsg(nil, rp.id, rp.index, msg)
			case rp.futs != nil:
				resps := make([]core.Response, len(rp.futs))
				for i, f := range rp.futs {
					resps[i] = f.Force()
				}
				frame = wire.FrameBatchResponse
				if payload, err = wire.AppendResponses(nil, rp.id, resps); err != nil {
					return false
				}
			default:
				frame = wire.FrameResponse
				if payload, err = wire.AppendSingleResponse(nil, rp.id, rp.fut.Force()); err != nil {
					return false
				}
			}
			if err := wire.WriteFrame(bw, frame, payload); err != nil {
				return false
			}
		}
		pending = pending[:0]
		return bw.Flush() == nil
	}

	for {
		typ, payload, err := wire.ReadFrame(br)
		if err != nil {
			// EOF, a drain deadline, or a broken peer: answer everything
			// fully read (those requests may already be admitted), then
			// close. Nothing half-read was ever queued.
			flush()
			return
		}
		switch typ {
		case wire.FrameExec:
			id, q, derr := wire.DecodeExec(payload)
			if derr != nil {
				flush()
				return
			}
			fut, qerr := sess.Queue(q)
			pending = append(pending, reply{id: id, fut: fut, qerr: qerr, index: -1})

		case wire.FrameBatch:
			id, qs, derr := wire.DecodeBatch(payload)
			if derr != nil {
				flush()
				return
			}
			// All-or-nothing: translate the whole batch before queueing
			// anything, so a failure admits none of it.
			rp := reply{id: id, index: -1}
			txs := make([]core.Transaction, len(qs))
			for i, q := range qs {
				tx, terr := sess.Translate(q)
				if terr != nil {
					rp.qerr = &session.BatchError{Index: i, Query: q, Err: terr}
					rp.index = i
					break
				}
				txs[i] = tx
			}
			if rp.qerr == nil {
				futs := make([]*session.Future, len(txs))
				for i, tx := range txs {
					futs[i] = sess.QueueTx(tx)
				}
				rp.futs = futs
			}
			pending = append(pending, rp)

		case wire.FrameQuit:
			flush()
			return

		default:
			// Unknown frame type: protocol error, close after answering
			// what we have.
			flush()
			return
		}

		// Adaptive batching: keep queueing while the socket already holds
		// more frames; admit and answer the moment the next read would
		// block. maxPipeline bounds a connection's in-flight statements.
		if br.Buffered() == 0 || len(pending) >= maxPipeline {
			if !flush() {
				return
			}
		}
	}
}

// maxPipeline bounds the replies a connection may have outstanding before
// the handler forces a flush.
const maxPipeline = 1024
