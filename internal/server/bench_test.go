package server_test

import (
	"fmt"
	"testing"

	"funcdb"
	"funcdb/client"
)

// benchClient spins a server over a seeded store and dials it.
func benchClient(b *testing.B) *client.Client {
	b.Helper()
	store := funcdb.MustOpen(funcdb.WithRelations("R"), funcdb.WithRepresentation(funcdb.RepAVL))
	for i := 0; i < 256; i++ {
		if _, err := store.Exec(fmt.Sprintf("insert (%d, \"v\") into R", i)); err != nil {
			b.Fatal(err)
		}
	}
	srv := startServer(b, store)
	b.Cleanup(func() { store.Close() })
	c, err := client.Dial(srv.Addr().String(), client.WithOrigin("bench"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkServerPingPong is the round-trip baseline: one request on the
// wire at a time, each paying a full network round trip.
func BenchmarkServerPingPong(b *testing.B) {
	c := benchClient(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := c.Exec(fmt.Sprintf("find %d in R", i%256))
		if err != nil || resp.Err != nil {
			b.Fatalf("%v / %v", err, resp.Err)
		}
	}
}

// BenchmarkServerPipelined keeps a window of requests in flight: the
// server's adaptive batching turns buffered frames into one lane-split
// admission, and the round trip amortizes across the window.
func BenchmarkServerPipelined(b *testing.B) {
	c := benchClient(b)
	const window = 64
	pend := make([]*client.Pending, 0, window)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := c.ExecAsync(fmt.Sprintf("find %d in R", i%256))
		if err != nil {
			b.Fatal(err)
		}
		pend = append(pend, p)
		if len(pend) == window {
			for _, p := range pend {
				if resp, err := p.Force(); err != nil || resp.Err != nil {
					b.Fatalf("%v / %v", err, resp.Err)
				}
			}
			pend = pend[:0]
		}
	}
	for _, p := range pend {
		if _, err := p.Force(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerBatch ships whole batches as single frames: the wire
// form of ExecBatch, one admission arbitration per 64 statements.
func BenchmarkServerBatch(b *testing.B) {
	c := benchClient(b)
	const batch = 64
	queries := make([]string, batch)
	for i := range queries {
		queries[i] = fmt.Sprintf("find %d in R", i%256)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		resps, err := c.ExecBatch(queries)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range resps {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
