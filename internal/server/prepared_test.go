// Prepared statements over the wire: the three execution surfaces —
// in-process, wire text, and wire prepared (id + positional args, no
// text after the first frame) — must be indistinguishable: byte-identical
// rendered responses and equal final databases. On top of equivalence,
// the statement-id lifecycle: an id evicted from the server's cache (or
// invalidated by a create) is refused with ErrUnknownStmt and the client
// re-prepares transparently, never executing a stale plan.
package server_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/query"
	"funcdb/internal/value"
)

// preparedOp is one workload step in template form: the text rendering
// drives the text surfaces, the (template, args) pair drives the
// prepared surface.
type preparedOp struct {
	text     string
	template string
	args     []funcdb.Item
}

// seededPreparedOps renders the seeded mixed workload in both forms at
// once. Every statement shape with a literal becomes a '?' template, so
// the prepared run reuses a handful of statements across the whole
// workload — the intended production shape.
func seededPreparedOps(r *rand.Rand, n int, rels []string) []preparedOp {
	out := make([]preparedOp, 0, n)
	for i := 0; i < n; i++ {
		rel := rels[r.Intn(len(rels))]
		k := r.Intn(12)
		switch r.Intn(8) {
		case 0, 1:
			out = append(out, preparedOp{
				text:     fmt.Sprintf("insert (%d, \"v%d\") into %s", k, k, rel),
				template: "insert (?, ?) into " + rel,
				args:     []funcdb.Item{value.Int(int64(k)), value.Str(fmt.Sprintf("v%d", k))},
			})
		case 2:
			out = append(out, preparedOp{
				text:     fmt.Sprintf("delete %d from %s", k, rel),
				template: "delete ? from " + rel,
				args:     []funcdb.Item{value.Int(int64(k))},
			})
		case 3, 4:
			out = append(out, preparedOp{
				text:     fmt.Sprintf("find %d in %s", k, rel),
				template: "find ? in " + rel,
				args:     []funcdb.Item{value.Int(int64(k))},
			})
		case 5:
			out = append(out, preparedOp{text: "count " + rel, template: "count " + rel})
		case 6:
			out = append(out, preparedOp{
				text:     fmt.Sprintf("range 2 %d in %s", 5+k, rel),
				template: "range 2 ? in " + rel,
				args:     []funcdb.Item{value.Int(int64(5 + k))},
			})
		default:
			out = append(out, preparedOp{
				text:     fmt.Sprintf("find %d in NOPE", k), // unknown relation: error response
				template: "find ? in NOPE",
				args:     []funcdb.Item{value.Int(int64(k))},
			})
		}
	}
	return out
}

// runPrepared drives the workload through Stmt handles (one per distinct
// template, prepared lazily on first use), mixing single executions and
// same-template batches drawn from the chunk seed.
func runPrepared(c *client.Client, ops []preparedOp, chunkSeed int64) ([]string, error) {
	r := rand.New(rand.NewSource(chunkSeed))
	stmts := make(map[string]*client.Stmt)
	handle := func(template string) *client.Stmt {
		s, ok := stmts[template]
		if !ok {
			s = c.Prepare(template)
			stmts[template] = s
		}
		return s
	}
	var out []string
	for i := 0; i < len(ops); {
		// A batch groups consecutive ops sharing one template.
		n := 1 + r.Intn(4)
		j := i + 1
		for j < i+n && j < len(ops) && ops[j].template == ops[i].template {
			j++
		}
		s := handle(ops[i].template)
		if j-i == 1 {
			resp, err := s.Exec(ops[i].args...)
			if err != nil {
				return nil, fmt.Errorf("prepared exec %q: %w", ops[i].text, err)
			}
			out = append(out, resp.String())
		} else {
			argSets := make([][]funcdb.Item, j-i)
			for k := i; k < j; k++ {
				argSets[k-i] = ops[k].args
			}
			resps, err := s.ExecBatch(argSets...)
			if err != nil {
				return nil, fmt.Errorf("prepared batch at %d: %w", i, err)
			}
			for _, resp := range resps {
				out = append(out, resp.String())
			}
		}
		i = j
	}
	return out, nil
}

// runText drives the identical workload as plain text, with the same
// chunking stream so the batch boundaries line up.
func runText(ex executor, ops []preparedOp, chunkSeed int64) ([]string, error) {
	r := rand.New(rand.NewSource(chunkSeed))
	var out []string
	for i := 0; i < len(ops); {
		n := 1 + r.Intn(4)
		j := i + 1
		for j < i+n && j < len(ops) && ops[j].template == ops[i].template {
			j++
		}
		if j-i == 1 {
			resp, err := ex.Exec(ops[i].text)
			if err != nil {
				return nil, fmt.Errorf("exec %q: %w", ops[i].text, err)
			}
			out = append(out, resp.String())
		} else {
			qs := make([]string, j-i)
			for k := i; k < j; k++ {
				qs[k-i] = ops[k].text
			}
			resps, err := ex.ExecBatch(qs)
			if err != nil {
				return nil, fmt.Errorf("batch at %d: %w", i, err)
			}
			for _, resp := range resps {
				out = append(out, resp.String())
			}
		}
		i = j
	}
	return out, nil
}

// TestPreparedEquivalence: the same seeded workload three ways —
// in-process text, wire text, wire prepared — must render byte-identical
// responses and leave equal final databases.
func TestPreparedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			ops := seededPreparedOps(r, 150+r.Intn(50), []string{"R", "S", "T"})

			open := func() *funcdb.Store {
				return funcdb.MustOpen(
					funcdb.WithRelations("R", "S", "T"),
					funcdb.WithOrigin("c0"),
					funcdb.WithLanes(4))
			}

			local := open()
			defer local.Close()
			localOut, err := runText(local, ops, seed*11)
			if err != nil {
				t.Fatal(err)
			}

			textStore := open()
			defer textStore.Close()
			textSrv := startServer(t, textStore)
			tc, err := client.Dial(textSrv.Addr().String(), client.WithOrigin("c0"))
			if err != nil {
				t.Fatal(err)
			}
			defer tc.Close()
			textOut, err := runText(tc, ops, seed*11)
			if err != nil {
				t.Fatal(err)
			}

			prepStore := open()
			defer prepStore.Close()
			prepSrv := startServer(t, prepStore)
			pc, err := client.Dial(prepSrv.Addr().String(), client.WithOrigin("c0"))
			if err != nil {
				t.Fatal(err)
			}
			defer pc.Close()
			prepOut, err := runPrepared(pc, ops, seed*11)
			if err != nil {
				t.Fatal(err)
			}

			if len(localOut) != len(textOut) || len(localOut) != len(prepOut) {
				t.Fatalf("response counts diverged: %d local, %d text, %d prepared",
					len(localOut), len(textOut), len(prepOut))
			}
			for i := range localOut {
				if localOut[i] != textOut[i] || localOut[i] != prepOut[i] {
					t.Fatalf("response %d (%q) differs:\n  local:    %s\n  text:     %s\n  prepared: %s",
						i, ops[i].text, localOut[i], textOut[i], prepOut[i])
				}
			}
			local.Barrier()
			textStore.Barrier()
			prepStore.Barrier()
			if !local.Current().Equal(textStore.Current()) || !local.Current().Equal(prepStore.Current()) {
				t.Fatal("final databases diverged across execution surfaces")
			}

			// The prepared run must actually have run prepared: a handful of
			// registrations, one per distinct template, and id-resolved
			// executions for the rest of the workload.
			snap, err := pc.Stats()
			if err != nil {
				t.Fatal(err)
			}
			if snap.Server.Prepares == 0 || snap.Server.PreparedExecs == 0 {
				t.Fatalf("prepared run did not exercise the prepared path: %d prepares, %d prepared execs",
					snap.Server.Prepares, snap.Server.PreparedExecs)
			}
			if snap.Server.Prepares >= snap.Server.PreparedExecs {
				t.Fatalf("statement reuse missing: %d prepares vs %d prepared execs",
					snap.Server.Prepares, snap.Server.PreparedExecs)
			}
		})
	}
}

// TestPreparedConcurrentConnections: four connections share one server,
// each driving its own relation's prepared workload on its own admission
// lane — the -race exercise for the per-connection decode scratch and the
// shared statement cache.
func TestPreparedConcurrentConnections(t *testing.T) {
	const lanes, conns = 8, 4
	rels := distinctLaneRelations(t, conns, lanes)

	serverStore := funcdb.MustOpen(funcdb.WithRelations(rels...), funcdb.WithLanes(lanes))
	defer serverStore.Close()
	srv := startServer(t, serverStore)

	workloads := make([][]preparedOp, conns)
	for i := range workloads {
		r := rand.New(rand.NewSource(int64(300 + i)))
		workloads[i] = seededPreparedOps(r, 150, []string{rels[i]})
	}

	wireOut := make([][]string, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String(), client.WithOrigin(fmt.Sprintf("c%d", i)))
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			wireOut[i], errs[i] = runPrepared(c, workloads[i], int64(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}

	refStore := funcdb.MustOpen(funcdb.WithRelations(rels...), funcdb.WithLanes(lanes))
	defer refStore.Close()
	for i := 0; i < conns; i++ {
		sess := refStore.Session(fmt.Sprintf("c%d", i))
		refOut, err := runText(sessionExecutor{sess}, workloads[i], int64(i))
		if err != nil {
			t.Fatal(err)
		}
		for j := range refOut {
			if refOut[j] != wireOut[i][j] {
				t.Fatalf("conn %d response %d (%q) differs:\n  ref:  %s\n  wire: %s",
					i, j, workloads[i][j].text, refOut[j], wireOut[i][j])
			}
		}
	}
	serverStore.Barrier()
	refStore.Barrier()
	if !serverStore.Current().Equal(refStore.Current()) {
		t.Fatal("concurrent prepared connections diverged from the sequential reference")
	}
}

// TestPreparedEvictionOverWire: filling the server's statement cache past
// capacity evicts the oldest registration; the next execution under the
// dead id is refused with ErrUnknownStmt (visible in the server's
// unknown_stmts counter) and the client re-prepares transparently — the
// caller sees correct responses throughout.
func TestPreparedEvictionOverWire(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := startServer(t, store)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stmt := c.Prepare("insert (?, ?) into R")
	if _, err := stmt.Exec(value.Int(1), value.Str("one")); err != nil {
		t.Fatal(err)
	}

	// Register DefaultStmtCacheSize distinct statements: the cache is full
	// of younger entries and the insert statement's id is evicted.
	for i := 0; i < query.DefaultStmtCacheSize; i++ {
		filler := c.Prepare(fmt.Sprintf("find %d in R", i))
		if _, err := filler.NumParams(); err != nil {
			t.Fatalf("filler %d: %v", i, err)
		}
	}

	resp, err := stmt.Exec(value.Int(2), value.Str("two"))
	if err != nil {
		t.Fatalf("exec after eviction: %v", err)
	}
	if resp.Err != nil {
		t.Fatalf("exec after eviction answered %v", resp.Err)
	}
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Server.UnknownStmts == 0 {
		t.Fatal("eviction was never refused: the stale id resolved (or the cache never evicted)")
	}

	// Both inserts landed despite the id churn.
	cnt, err := c.Exec("count R")
	if err != nil || cnt.Err != nil {
		t.Fatalf("count: %v / %v", err, cnt.Err)
	}
	if cnt.Count != 2 {
		t.Fatalf("count = %d, want 2", cnt.Count)
	}
}

// TestPreparedCreateInvalidation: a create invalidates every registered
// statement touching the relation — end to end, over TCP: the old id is
// refused (never served the pre-create plan) and the client re-prepares
// against the post-create directory.
func TestPreparedCreateInvalidation(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := startServer(t, store)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	stmt := c.Prepare("find ? in FRESH")
	resp, err := stmt.Exec(value.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Err == nil {
		t.Fatal("find in a not-yet-created relation should answer an error response")
	}

	if resp, err = c.Exec("create FRESH using avl"); err != nil || resp.Err != nil {
		t.Fatalf("create: %v / %v", err, resp.Err)
	}
	if resp, err = c.Exec(`insert (1, "x") into FRESH`); err != nil || resp.Err != nil {
		t.Fatalf("insert: %v / %v", err, resp.Err)
	}

	// The create invalidated the registration: the old id must be refused,
	// the handle re-prepares, and the execution sees the new relation.
	resp, err = stmt.Exec(value.Int(1))
	if err != nil {
		t.Fatalf("exec after create: %v", err)
	}
	if resp.Err != nil {
		t.Fatalf("post-create execution still failing: %v", resp.Err)
	}
	snap, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Server.UnknownStmts == 0 {
		t.Fatal("create did not invalidate the registered statement")
	}
}
