// The loopback equivalence harness: the PR 3 seeded workloads, run
// through funcdb/client against a live fdbserver, must produce
// byte-identical responses and identical final databases to in-process
// Store execution — under -race, including concurrent connections mapped
// to disjoint admission lanes. The wire protocol must be invisible:
// same tags, same rendering, same error text, same final contents.
package server_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/core"
)

// executor is the surface the harness drives: both the in-process store
// and the wire client satisfy it.
type executor interface {
	Exec(q string) (funcdb.Response, error)
	ExecBatch(qs []string) ([]funcdb.Response, error)
}

// seededQueries builds the deterministic mixed workload of the PR 3
// equivalence harness at the query-text level (the form that can cross a
// wire): reads, writes, ranges, creates (including duplicate creates,
// which are error responses) and unknown-relation probes.
func seededQueries(r *rand.Rand, n int, rels []string, allowCreate bool) []string {
	names := append([]string(nil), rels...)
	created := 0
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		rel := names[r.Intn(len(names))]
		k := r.Intn(12)
		switch r.Intn(10) {
		case 0, 1:
			out = append(out, fmt.Sprintf("insert (%d, \"v%d\") into %s", k, k, rel))
		case 2:
			out = append(out, fmt.Sprintf("delete %d from %s", k, rel))
		case 3:
			out = append(out, fmt.Sprintf("find %d in %s", k, rel))
		case 4:
			out = append(out, "count "+rel)
		case 5:
			out = append(out, "scan "+rel)
		case 6:
			out = append(out, fmt.Sprintf("range 2 9 in %s", rel))
		case 7:
			if allowCreate && r.Intn(2) == 0 && created < 3 {
				name := fmt.Sprintf("N%d", created)
				created++
				names = append(names, name)
				out = append(out, "create "+name+" using avl")
			} else {
				// Duplicate create: a deterministic error response.
				out = append(out, "create "+names[r.Intn(len(names))])
			}
		case 8:
			out = append(out, fmt.Sprintf("find %d in NOPE", k)) // unknown relation
		default:
			out = append(out, fmt.Sprintf("insert (%d, \"w\") into %s", 20+k, rel))
		}
	}
	return out
}

// runChunked drives the workload the way a real client would: mixed
// single statements and batches, with chunk boundaries drawn from the
// same seed so every executor sees the identical call sequence.
func runChunked(ex executor, queries []string, chunkSeed int64) ([]string, error) {
	r := rand.New(rand.NewSource(chunkSeed))
	var out []string
	for i := 0; i < len(queries); {
		n := 1 + r.Intn(16)
		if i+n > len(queries) {
			n = len(queries) - i
		}
		if n == 1 {
			resp, err := ex.Exec(queries[i])
			if err != nil {
				return nil, fmt.Errorf("exec %q: %w", queries[i], err)
			}
			out = append(out, resp.String())
		} else {
			resps, err := ex.ExecBatch(queries[i : i+n])
			if err != nil {
				return nil, fmt.Errorf("batch at %d: %w", i, err)
			}
			for _, resp := range resps {
				out = append(out, resp.String())
			}
		}
		i += n
	}
	return out, nil
}

// TestLoopbackEquivalence: the same seeded workload, the same chunking,
// one run in-process and one over loopback — responses must render
// byte-identically and the final databases must be equal.
func TestLoopbackEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			queries := seededQueries(r, 120+r.Intn(80), []string{"R", "S", "T"}, true)

			open := func() *funcdb.Store {
				return funcdb.MustOpen(
					funcdb.WithRelations("R", "S", "T"),
					funcdb.WithOrigin("c0"),
					funcdb.WithLanes(4))
			}
			local := open()
			defer local.Close()
			localOut, err := runChunked(local, queries, seed*7)
			if err != nil {
				t.Fatal(err)
			}

			remoteStore := open()
			defer remoteStore.Close()
			srv := startServer(t, remoteStore)
			c, err := client.Dial(srv.Addr().String(), client.WithOrigin("c0"))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			wireOut, err := runChunked(c, queries, seed*7)
			if err != nil {
				t.Fatal(err)
			}

			if len(localOut) != len(wireOut) {
				t.Fatalf("%d local responses vs %d wire responses", len(localOut), len(wireOut))
			}
			for i := range localOut {
				if localOut[i] != wireOut[i] {
					t.Fatalf("response %d (%q) differs:\n  local: %s\n  wire:  %s",
						i, queries[i], localOut[i], wireOut[i])
				}
			}
			local.Barrier()
			remoteStore.Barrier()
			if !local.Current().Equal(remoteStore.Current()) {
				t.Fatal("final databases diverged between in-process and loopback execution")
			}
			if lv, rv := local.Current().Version(), remoteStore.Current().Version(); lv != rv {
				t.Fatalf("final versions differ: local %d, wire %d", lv, rv)
			}
		})
	}
}

// distinctLaneRelations returns n relation names that hash to n distinct
// admission lanes, so concurrent connections are disjoint by
// construction.
func distinctLaneRelations(t *testing.T, n, lanes int) []string {
	t.Helper()
	used := make(map[int]bool, n)
	var out []string
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("D%d", i)
		if l := core.LaneOf(name, lanes); !used[l] {
			used[l] = true
			out = append(out, name)
		}
		if i > 10000 {
			t.Fatal("lane hash never covered enough lanes")
		}
	}
	return out
}

// TestConcurrentConnectionsDisjointLanes: four concurrent connections,
// each confined to a relation on its own admission lane, run seeded
// workloads against one server. Each connection's responses must match a
// sequential in-process run of the same workload, and the server's final
// database must equal a sequential run of all four — disjoint
// transactions commute, so any lane interleaving yields the same
// contents. Runs under -race in CI.
func TestConcurrentConnectionsDisjointLanes(t *testing.T) {
	const lanes, conns = 8, 4
	rels := distinctLaneRelations(t, conns, lanes)

	serverStore := funcdb.MustOpen(funcdb.WithRelations(rels...), funcdb.WithLanes(lanes))
	defer serverStore.Close()
	srv := startServer(t, serverStore)

	// Per-connection workloads: each touches ONLY its own relation (plus
	// the deterministic unknown-relation probes), so connections are
	// pairwise disjoint. No creates: the directory stays fixed.
	workloads := make([][]string, conns)
	for i := range workloads {
		r := rand.New(rand.NewSource(int64(100 + i)))
		workloads[i] = seededQueries(r, 150, []string{rels[i]}, false)
	}

	// Concurrent wire runs, one connection per goroutine.
	wireOut := make([][]string, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String(), client.WithOrigin(fmt.Sprintf("c%d", i)))
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			wireOut[i], errs[i] = runChunked(c, workloads[i], int64(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("conn %d: %v", i, err)
		}
	}

	// Reference: sequential in-process runs with the same directory and
	// the same per-connection tags.
	refStore := funcdb.MustOpen(funcdb.WithRelations(rels...), funcdb.WithLanes(lanes))
	defer refStore.Close()
	for i := 0; i < conns; i++ {
		sess := refStore.Session(fmt.Sprintf("c%d", i))
		refOut, err := runChunked(sessionExecutor{sess}, workloads[i], int64(i))
		if err != nil {
			t.Fatal(err)
		}
		for j := range refOut {
			if refOut[j] != wireOut[i][j] {
				t.Fatalf("conn %d response %d (%q) differs:\n  ref:  %s\n  wire: %s",
					i, j, workloads[i][j], refOut[j], wireOut[i][j])
			}
		}
	}
	serverStore.Barrier()
	refStore.Barrier()
	if !serverStore.Current().Equal(refStore.Current()) {
		t.Fatal("concurrent disjoint connections diverged from the sequential reference")
	}
}

// sessionExecutor adapts an internal session (deterministic per-client
// tags) to the executor surface.
type sessionExecutor struct {
	s interface {
		Exec(q string) (core.Response, error)
		ExecBatch(qs []string) ([]core.Response, error)
	}
}

func (se sessionExecutor) Exec(q string) (funcdb.Response, error) { return se.s.Exec(q) }
func (se sessionExecutor) ExecBatch(qs []string) ([]funcdb.Response, error) {
	return se.s.ExecBatch(qs)
}
