package server_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/server"
)

// startServer spins a server over store on a loopback port and tears it
// down with the test.
func startServer(t testing.TB, store *funcdb.Store) *server.Server {
	t.Helper()
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Shutdown() })
	return srv
}

func TestExecOverWire(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := startServer(t, store)

	c, err := client.Dial(srv.Addr().String(), client.WithOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Origin() != "c0" || c.Lanes() != store.Lanes() || c.Durable() {
		t.Fatalf("welcome metadata: origin %q lanes %d durable %v", c.Origin(), c.Lanes(), c.Durable())
	}

	resp, err := c.Exec(`insert (1, "widget") into R`)
	if err != nil || resp.Err != nil {
		t.Fatalf("insert: %v / %v", err, resp.Err)
	}
	if resp.Tag() != "c0#0" {
		t.Errorf("tag = %s, want c0#0", resp.Tag())
	}
	resp, err = c.Exec("find 1 in R")
	if err != nil || !resp.Found {
		t.Fatalf("find: %v / %+v", err, resp)
	}
	// Operation-level errors arrive inside the response.
	resp, err = c.Exec("find 1 in NOPE")
	if err != nil || resp.Err == nil {
		t.Fatalf("unknown relation: %v / %+v", err, resp)
	}
	// Translation errors arrive as call errors.
	if _, err := c.Exec("not a query"); err == nil {
		t.Error("parse error not surfaced")
	}
}

func TestPipelinedRequestsAnswerInOrder(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := startServer(t, store)
	c, err := client.Dial(srv.Addr().String(), client.WithOrigin("p"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fire a pipeline without forcing anything, then force out of order:
	// request ids make the responses land correctly anyway.
	var pend []*client.Pending
	for i := 0; i < 32; i++ {
		p, err := c.ExecAsync(fmt.Sprintf("insert (%d, \"v\") into R", i))
		if err != nil {
			t.Fatal(err)
		}
		pend = append(pend, p)
	}
	tail, err := c.ExecAsync("count R")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tail.Force() // force the LAST first
	if err != nil || resp.Count != 32 {
		t.Fatalf("pipelined count: %v / %+v", err, resp)
	}
	for i := len(pend) - 1; i >= 0; i-- {
		resp, err := pend[i].Force()
		if err != nil || resp.Err != nil {
			t.Fatalf("pipelined insert %d: %v / %v", i, err, resp.Err)
		}
		if resp.Seq != i {
			t.Errorf("insert %d answered with seq %d", i, resp.Seq)
		}
	}
}

func TestBatchErrorIndexOverWire(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := startServer(t, store)
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	qs := []string{"count R", "garbage here", "count R"}
	_, err = c.ExecBatch(qs)
	if err == nil {
		t.Fatal("bad batch accepted over the wire")
	}
	var be *funcdb.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("wire batch error is %T, want *funcdb.BatchError", err)
	}
	if be.Index != 1 || be.Query != "garbage here" {
		t.Errorf("BatchError = %+v", be)
	}
	// Nothing was admitted, and the error text matches the in-process one.
	local := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer local.Close()
	_, lerr := local.ExecBatch(qs)
	if lerr == nil || lerr.Error() != err.Error() {
		t.Errorf("error text differs: wire %q vs local %q", err, lerr)
	}
	store.Barrier()
	if got := store.Current().TotalTuples(); got != 0 {
		t.Errorf("failed batch admitted %d writes", got)
	}
}

// TestDrainMakesAckedCommitsDurable: Shutdown flushes the group-commit
// buffer, so every response a client received is on disk — verified by
// recovery.
func TestDrainMakesAckedCommitsDurable(t *testing.T) {
	dir := t.TempDir()
	store, err := funcdb.Open(
		funcdb.WithRelations("R"),
		funcdb.WithDurability(dir, funcdb.GroupCommit(time.Hour))) // window never fires
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(store)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()

	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		resp, err := c.Exec(fmt.Sprintf("insert (%d, \"v\") into R", i))
		if err != nil || resp.Err != nil {
			t.Fatalf("insert %d: %v / %v", i, err, resp.Err)
		}
	}
	// All n are acked. Drain and close.
	if err := srv.Shutdown(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := funcdb.OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Current().TotalTuples(); got != n {
		t.Fatalf("recovered %d tuples, want %d", got, n)
	}
}

// TestServerRefusesGarbageConnection: a peer that never says Hello is
// dropped without admitting anything.
func TestServerRefusesGarbageConnection(t *testing.T) {
	store := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer store.Close()
	srv := startServer(t, store)

	// A Dial that skips the handshake: raw TCP write of junk.
	c, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The server is still healthy for the next well-behaved client.
	c2, err := client.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if resp, err := c2.Exec("count R"); err != nil || resp.Err != nil {
		t.Fatalf("healthy client after quit: %v / %v", err, resp.Err)
	}
}

// TestMultiStoreHosting: one listener, many stores. Connections bind to
// a store by the Hello database field; the default database keeps
// pre-protocol-v2 semantics, and an unknown name is refused at the
// handshake.
func TestMultiStoreHosting(t *testing.T) {
	main := funcdb.MustOpen(funcdb.WithRelations("R"))
	defer main.Close()
	aux := funcdb.MustOpen(funcdb.WithRelations("A"))
	defer aux.Close()

	srv := server.NewMulti(map[string]server.Host{"main": main, "aux": aux})
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	defer srv.Shutdown()

	cm, err := client.Dial(srv.Addr().String(), client.WithOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cm.Close()
	if cm.Database() != "main" {
		t.Fatalf("default connection bound to %q", cm.Database())
	}
	ca, err := client.Dial(srv.Addr().String(), client.WithOrigin("c0"), client.WithDatabase("aux"))
	if err != nil {
		t.Fatal(err)
	}
	defer ca.Close()
	if ca.Database() != "aux" {
		t.Fatalf("aux connection bound to %q", ca.Database())
	}

	if _, err := cm.Exec(`insert (1, "m") into R`); err != nil {
		t.Fatal(err)
	}
	if _, err := ca.Exec(`insert (1, "a") into A`); err != nil {
		t.Fatal(err)
	}
	// Each connection sees only its own store's relations.
	if resp, err := ca.Exec("count R"); err != nil || resp.Err == nil {
		t.Fatalf("aux connection reached main's relation: %+v, %v", resp, err)
	}
	if resp, err := cm.Exec("count R"); err != nil || resp.Err != nil || resp.Count != 1 {
		t.Fatalf("main count R: %+v, %v", resp, err)
	}
	main.Barrier()
	aux.Barrier()
	if n := aux.Current().TotalTuples(); n != 1 {
		t.Fatalf("aux store has %d tuples, want 1", n)
	}

	// Unknown database: handshake refused with a clear error.
	if _, err := client.Dial(srv.Addr().String(), client.WithDatabase("nope")); err == nil {
		t.Fatal("dial of unknown database succeeded")
	}
}
