package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"funcdb/internal/topo"
	"funcdb/internal/trace"
)

// chainGraph builds a pure chain of n tasks.
func chainGraph(n int) *trace.Graph {
	g := trace.New()
	prev := trace.None
	for i := 0; i < n; i++ {
		prev = g.Task(trace.KindVisit, prev)
	}
	return g
}

// floodGraph builds n independent tasks.
func floodGraph(n int) *trace.Graph {
	g := trace.New()
	for i := 0; i < n; i++ {
		g.Task(trace.KindVisit)
	}
	return g
}

// forkJoinGraph builds a root, n parallel children, and a join.
func forkJoinGraph(n int) *trace.Graph {
	g := trace.New()
	root := g.Task(trace.KindDispatch)
	kids := make([]trace.TaskID, n)
	for i := range kids {
		kids[i] = g.Task(trace.KindVisit, root)
	}
	g.Task(trace.KindRespond, kids...)
	return g
}

func allPolicies() []Policy {
	return []Policy{PolicyPressure, PolicyBestFit, PolicyLocality, PolicyRoundRobin, PolicyRandom}
}

func TestEmptyGraph(t *testing.T) {
	res := Schedule(trace.New(), Config{Topo: topo.NewComplete(4)})
	if res.Makespan != 0 || res.Work != 0 {
		t.Errorf("empty graph result = %+v", res)
	}
}

func TestNilTopoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil topo did not panic")
		}
	}()
	Schedule(trace.New(), Config{})
}

func TestUnknownPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown policy did not panic")
		}
	}()
	Schedule(floodGraph(2), Config{Topo: topo.NewComplete(2), Policy: Policy(99)})
}

func TestChainIsSequentialEverywhere(t *testing.T) {
	// A chain has no parallelism: makespan == work on any topology with any
	// policy that keeps the chain on one PE. Locality and pressure must.
	g := chainGraph(20)
	for _, pol := range []Policy{PolicyLocality, PolicyPressure, PolicyBestFit} {
		res := Schedule(g, Config{Topo: topo.NewHypercube(3), HopDelay: 2, Policy: pol})
		if res.Makespan != 20 {
			t.Errorf("%v: chain makespan = %d, want 20", pol, res.Makespan)
		}
		if res.Speedup != 1 {
			t.Errorf("%v: chain speedup = %v, want 1", pol, res.Speedup)
		}
		if res.CommEvents != 0 {
			t.Errorf("%v: chain communicated %d times", pol, res.CommEvents)
		}
	}
}

func TestFloodSpeedupApproachesPECount(t *testing.T) {
	// 64 independent unit tasks on 8 PEs: perfect speedup 8 for any
	// load-spreading policy.
	g := floodGraph(64)
	for _, pol := range []Policy{PolicyBestFit, PolicyRoundRobin, PolicyPressure} {
		res := Schedule(g, Config{Topo: topo.NewHypercube(3), HopDelay: 1, Policy: pol})
		if res.Makespan != 8 {
			t.Errorf("%v: flood makespan = %d, want 8", pol, res.Makespan)
		}
		if res.Speedup != 8 {
			t.Errorf("%v: flood speedup = %v, want 8", pol, res.Speedup)
		}
	}
}

func TestLocalityPolicySerializesFloodOntoOnePE(t *testing.T) {
	// Locality puts every root on PE 0: no parallelism at all.
	res := Schedule(floodGraph(10), Config{Topo: topo.NewComplete(4), Policy: PolicyLocality})
	if res.Makespan != 10 {
		t.Errorf("makespan = %d, want 10", res.Makespan)
	}
	if res.PEBusy[0] != 10 {
		t.Errorf("PE0 busy = %d, want 10", res.PEBusy[0])
	}
}

func TestCommunicationDelayCharged(t *testing.T) {
	// Two-task chain forced across PEs by round-robin on a 2-PE ring with
	// hop delay 5: makespan = 1 (t1) + 5 (hop) + 1 (t2) = 7.
	g := chainGraph(2)
	res := Schedule(g, Config{Topo: topo.NewRing(2), HopDelay: 5, Policy: PolicyRoundRobin})
	if res.Makespan != 7 {
		t.Errorf("makespan = %d, want 7", res.Makespan)
	}
	if res.CommEvents != 1 || res.CommHops != 1 {
		t.Errorf("comm = %d events %d hops, want 1/1", res.CommEvents, res.CommHops)
	}
}

func TestHopDelayScalesWithDistance(t *testing.T) {
	// Star topology: leaf-to-leaf is 2 hops. Build a 3-task chain and pin
	// placement with round-robin: t1 on PE0(hub), t2 on PE1, t3 on PE2.
	// t2 starts at 1+1*d(0,1)=1+d; t3 at finish(t2)+d(1,2)*delay.
	g := chainGraph(3)
	res := Schedule(g, Config{Topo: topo.NewStar(3), HopDelay: 3, Policy: PolicyRoundRobin})
	// t1: [0,1) on hub. t2: start 1+3=4, [4,5) on PE1. t3: 5 + 2*3 = 11, [11,12).
	if res.Makespan != 12 {
		t.Errorf("makespan = %d, want 12", res.Makespan)
	}
	if res.CommHops != 1+2 {
		t.Errorf("CommHops = %d, want 3", res.CommHops)
	}
}

func TestMakespanLowerBounds(t *testing.T) {
	// Makespan >= critical path and >= work / nPE for every policy.
	graphs := map[string]*trace.Graph{
		"chain":    chainGraph(30),
		"flood":    floodGraph(30),
		"forkjoin": forkJoinGraph(30),
	}
	topos := []topo.Topology{topo.NewHypercube(3), topo.NewMesh3D(3, 3, 3), topo.NewRing(5)}
	for name, g := range graphs {
		for _, tp := range topos {
			for _, pol := range allPolicies() {
				res := Schedule(g, Config{Topo: tp, HopDelay: 1, Policy: pol, Seed: 42})
				if res.Makespan < res.CriticalPath {
					t.Errorf("%s/%s/%v: makespan %d < critical path %d", name, tp.Name(), pol, res.Makespan, res.CriticalPath)
				}
				if lb := (res.Work + tp.Size() - 1) / tp.Size(); res.Makespan < lb {
					t.Errorf("%s/%s/%v: makespan %d < work bound %d", name, tp.Name(), pol, res.Makespan, lb)
				}
				if res.Speedup > float64(tp.Size()) {
					t.Errorf("%s/%s/%v: speedup %v exceeds PE count", name, tp.Name(), pol, res.Speedup)
				}
			}
		}
	}
}

func TestBusyTimeAccounting(t *testing.T) {
	g := forkJoinGraph(17)
	res := Schedule(g, Config{Topo: topo.NewHypercube(2), HopDelay: 1})
	total := 0
	for _, b := range res.PEBusy {
		total += b
	}
	if total != res.Work {
		t.Errorf("sum busy = %d, want work %d", total, res.Work)
	}
}

func TestTaskLenScalesWork(t *testing.T) {
	g := chainGraph(5)
	res := Schedule(g, Config{Topo: topo.NewComplete(2), TaskLen: 3})
	if res.Work != 15 {
		t.Errorf("Work = %d, want 15", res.Work)
	}
	if res.Makespan != 15 {
		t.Errorf("Makespan = %d, want 15", res.Makespan)
	}
	if res.CriticalPath != 15 {
		t.Errorf("CriticalPath = %d, want 15", res.CriticalPath)
	}
}

func TestBestFitAtLeastAsGoodAsOthersOnAverage(t *testing.T) {
	// BestFit considers strictly more candidates than Pressure and must not
	// lose to round-robin/random on a batch of random DAGs (it can tie).
	r := rand.New(rand.NewSource(3))
	var bfTotal, rrTotal int
	for trial := 0; trial < 20; trial++ {
		g := randomDAG(r, 120)
		cfg := Config{Topo: topo.NewHypercube(3), HopDelay: 1}
		cfg.Policy = PolicyBestFit
		bfTotal += Schedule(g, cfg).Makespan
		cfg.Policy = PolicyRoundRobin
		rrTotal += Schedule(g, cfg).Makespan
	}
	if bfTotal > rrTotal {
		t.Errorf("bestfit total makespan %d worse than roundrobin %d", bfTotal, rrTotal)
	}
}

func TestPressureStaysNearParent(t *testing.T) {
	// With pressure policy, every non-root task runs on its parent's PE or
	// a direct neighbor: per-dependency hops for the *latest* parent <= 1.
	// We verify indirectly: on a ring with huge hop delay, pressure beats
	// random placement because it never pays multi-hop latency from the
	// critical parent.
	r := rand.New(rand.NewSource(9))
	g := randomDAG(r, 150)
	ringCfg := Config{Topo: topo.NewRing(8), HopDelay: 10}
	ringCfg.Policy = PolicyPressure
	pressure := Schedule(g, ringCfg)
	ringCfg.Policy = PolicyRandom
	ringCfg.Seed = 1
	random := Schedule(g, ringCfg)
	if pressure.Makespan > random.Makespan {
		t.Errorf("pressure makespan %d worse than random %d under expensive comm", pressure.Makespan, random.Makespan)
	}
}

func TestMoreProcessorsNeverSlower(t *testing.T) {
	// With BestFit, growing the machine must not increase makespan (the
	// scheduler can always ignore extra PEs). This mirrors Table II vs III:
	// the 27-node cube achieves higher speedups than the 8-node hypercube.
	r := rand.New(rand.NewSource(5))
	g := randomDAG(r, 200)
	small := Schedule(g, Config{Topo: topo.NewComplete(4), HopDelay: 1, Policy: PolicyBestFit})
	large := Schedule(g, Config{Topo: topo.NewComplete(16), HopDelay: 1, Policy: PolicyBestFit})
	if large.Makespan > small.Makespan {
		t.Errorf("16 PEs makespan %d > 4 PEs %d", large.Makespan, small.Makespan)
	}
}

func TestZeroHopDelayMatchesModeOneOnWideMachine(t *testing.T) {
	// With free communication and at least MaxWidth PEs, bestfit should hit
	// the critical path exactly: that is mode 1.
	g := forkJoinGraph(12)
	p := g.Analyze()
	res := Schedule(g, Config{Topo: topo.NewComplete(p.MaxWidth), HopDelay: 0, Policy: PolicyBestFit})
	if res.Makespan != p.Depth {
		t.Errorf("makespan = %d, want depth %d", res.Makespan, p.Depth)
	}
}

func TestPolicyString(t *testing.T) {
	for _, pol := range allPolicies() {
		if s := pol.String(); s == "" || s[0] == 'P' {
			t.Errorf("policy string %q", s)
		}
	}
	if s := Policy(99).String(); s != "Policy(99)" {
		t.Errorf("unknown policy string %q", s)
	}
}

// randomDAG builds a graph of n tasks with random dependencies on earlier
// tasks.
func randomDAG(r *rand.Rand, n int) *trace.Graph {
	g := trace.New()
	var ids []trace.TaskID
	for i := 0; i < n; i++ {
		var deps []trace.TaskID
		for j := 0; j < r.Intn(3); j++ {
			if len(ids) > 0 {
				deps = append(deps, ids[r.Intn(len(ids))])
			}
		}
		ids = append(ids, g.Task(trace.KindOther, deps...))
	}
	return g
}

func TestPropertySchedulesAreValid(t *testing.T) {
	// For random DAGs, topologies and policies: makespan within
	// [max(critical path, work/P), work + comm slack] and speedup <= P.
	f := func(seed int64, polPick, topoPick uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 80)
		pols := allPolicies()
		topos := []topo.Topology{
			topo.NewHypercube(2), topo.NewMesh3D(2, 2, 2), topo.NewRing(4),
			topo.NewStar(4), topo.NewComplete(5),
		}
		tp := topos[int(topoPick)%len(topos)]
		delay := int(seed % 3)
		if delay < 0 {
			delay = -delay
		}
		cfg := Config{
			Topo:     tp,
			HopDelay: delay,
			Policy:   pols[int(polPick)%len(pols)],
			Seed:     seed,
		}
		res := Schedule(g, cfg)
		if res.Makespan < res.CriticalPath {
			return false
		}
		if res.Speedup > float64(tp.Size())+1e-9 {
			return false
		}
		total := 0
		for _, b := range res.PEBusy {
			total += b
		}
		return total == res.Work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestNegativeHopDelayPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"static":  func() { Schedule(chainGraph(2), Config{Topo: topo.NewRing(2), HopDelay: -1}) },
		"dynamic": func() { ScheduleDynamic(chainGraph(2), Config{Topo: topo.NewRing(2), HopDelay: -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: negative HopDelay did not panic", name)
				}
			}()
			fn()
		}()
	}
}
