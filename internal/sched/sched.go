// Package sched is the reproduction of the Rediflow simulator's second
// mode (Keller & Lindstrom 1985, Section 4): "A second simulation mode
// specifies a network topology and a specific number of processors. In this
// mode, communication delay is taken into account."
//
// Given the unit-task DAG recorded by internal/trace and a topology from
// internal/topo, Schedule performs greedy earliest-finish-time list
// scheduling: tasks are placed on PEs in a topological order; a dependency
// whose producer ran on a different PE delays the consumer by
// HopDelay x hop distance. The resulting makespan yields the paper's
// speedup figure (total work / makespan), which is what Tables II and III
// report.
//
// Placement policies model different load-management strategies, including
// the pressure-gradient diffusion of Rediflow (paper reference [14], Keller
// & Lin, "Simulated performance of a reduction-based multiprocessor"),
// where a task spawned by a parent may only stay local or diffuse to a
// neighboring PE chosen by load.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"funcdb/internal/topo"
	"funcdb/internal/trace"
)

// Policy selects how tasks are placed on PEs.
type Policy uint8

// Placement policies.
const (
	// PolicyPressure restricts each task to its parent PE or a neighbor,
	// picking whichever allows the earliest start (ties to lowest load).
	// This is the Rediflow diffusion model: work flows down the load
	// gradient one hop at a time.
	PolicyPressure Policy = iota + 1
	// PolicyBestFit considers every PE and picks the earliest finish time.
	// It is an idealized global scheduler (upper bound for list scheduling).
	PolicyBestFit
	// PolicyLocality always places a task on the PE of its latest-finishing
	// dependency (or PE 0 for roots): communication-free but load-blind.
	PolicyLocality
	// PolicyRoundRobin ignores structure and deals tasks out cyclically.
	PolicyRoundRobin
	// PolicyRandom places tasks uniformly at random (seeded).
	PolicyRandom
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case PolicyPressure:
		return "pressure"
	case PolicyBestFit:
		return "bestfit"
	case PolicyLocality:
		return "locality"
	case PolicyRoundRobin:
		return "roundrobin"
	case PolicyRandom:
		return "random"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Config parameterizes one scheduling run.
type Config struct {
	// Topo is the PE interconnection. Required.
	Topo topo.Topology
	// HopDelay is the communication delay charged per hop for a
	// cross-PE dependency. The default 0 means communication is free
	// (degenerates toward mode 1 with limited PEs); the paper's tables use
	// a positive delay. A typical setting is 1 (one task time per hop).
	HopDelay int
	// TaskLen is the service time of one task; defaults to 1 (the paper's
	// unit task length).
	TaskLen int
	// Policy selects placement; defaults to PolicyPressure.
	Policy Policy
	// Seed drives PolicyRandom.
	Seed int64
}

// Result reports one scheduling run.
type Result struct {
	// Makespan is the finish time of the last task.
	Makespan int
	// Work is total computation (tasks x TaskLen): the serial time T1.
	Work int
	// Speedup is Work / Makespan: the paper's reported measure.
	Speedup float64
	// Efficiency is Speedup / number of PEs.
	Efficiency float64
	// CriticalPath is the DAG depth x TaskLen: the T_inf lower bound.
	CriticalPath int
	// PEBusy is per-PE total busy time.
	PEBusy []int
	// CommEvents counts dependencies that crossed PEs.
	CommEvents int
	// CommHops sums hop counts over crossing dependencies.
	CommHops int
	// Steals counts backlog exports in the dynamic (work-diffusion)
	// simulation; always zero for the static list scheduler.
	Steals int
}

// Schedule runs the mode-2 simulation of g under cfg.
func Schedule(g *trace.Graph, cfg Config) Result {
	if cfg.Topo == nil {
		panic("sched: Config.Topo is required")
	}
	if cfg.HopDelay < 0 {
		panic("sched: negative HopDelay")
	}
	if cfg.TaskLen <= 0 {
		cfg.TaskLen = 1
	}
	if cfg.Policy == 0 {
		cfg.Policy = PolicyPressure
	}
	nPE := cfg.Topo.Size()
	_, deps := g.Snapshot()
	n := len(deps)
	res := Result{
		Work:         n * cfg.TaskLen,
		CriticalPath: g.CriticalPath() * cfg.TaskLen,
		PEBusy:       make([]int, nPE),
	}
	if n == 0 {
		return res
	}

	// Process tasks in a topological order that prefers earlier-ready
	// tasks: sort by (level, id). Levels give a valid order because every
	// dependency has a strictly smaller level.
	levels := g.Levels()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if levels[order[a]] != levels[order[b]] {
			return levels[order[a]] < levels[order[b]]
		}
		return order[a] < order[b]
	})

	finish := make([]int, n) // finish time per task
	peOf := make([]int, n)   // PE per task
	freeAt := make([]int, nPE)
	rng := rand.New(rand.NewSource(cfg.Seed))

	// startOn computes the earliest start of task i on PE p given dep
	// placement and the PE's availability.
	startOn := func(i, p int) int {
		start := freeAt[p]
		for _, d := range deps[i] {
			di := int(d) - 1
			ready := finish[di] + cfg.HopDelay*cfg.Topo.Hops(peOf[di], p)
			if ready > start {
				start = ready
			}
		}
		return start
	}
	// parentPE returns the PE of the latest-finishing dependency, or -1.
	parentPE := func(i int) int {
		best, bestFinish := -1, -1
		for _, d := range deps[i] {
			di := int(d) - 1
			if finish[di] > bestFinish {
				best, bestFinish = peOf[di], finish[di]
			}
		}
		return best
	}

	rr := 0
	for _, i := range order {
		var pe int
		switch cfg.Policy {
		case PolicyBestFit:
			pe = bestOf(nPE, func(p int) int { return startOn(i, p) }, freeAt)
		case PolicyPressure:
			home := parentPE(i)
			if home < 0 {
				// Roots diffuse round-robin so independent entry points
				// spread across the machine.
				home = rr % nPE
				rr++
			}
			cands := append([]int{home}, cfg.Topo.Neighbors(home)...)
			pe = bestOfSet(cands, func(p int) int { return startOn(i, p) }, freeAt)
		case PolicyLocality:
			if pe = parentPE(i); pe < 0 {
				pe = 0
			}
		case PolicyRoundRobin:
			pe = rr % nPE
			rr++
		case PolicyRandom:
			pe = rng.Intn(nPE)
		default:
			panic(fmt.Sprintf("sched: unknown policy %v", cfg.Policy))
		}

		start := startOn(i, pe)
		finish[i] = start + cfg.TaskLen
		peOf[i] = pe
		freeAt[pe] = finish[i]
		res.PEBusy[pe] += cfg.TaskLen
		if finish[i] > res.Makespan {
			res.Makespan = finish[i]
		}
		for _, d := range deps[i] {
			if h := cfg.Topo.Hops(peOf[int(d)-1], pe); h > 0 {
				res.CommEvents++
				res.CommHops += h
			}
		}
	}

	res.Speedup = float64(res.Work) / float64(res.Makespan)
	res.Efficiency = res.Speedup / float64(nPE)
	return res
}

// bestOf returns the PE in [0,n) minimizing cost, breaking ties by lower
// current load then lower index.
func bestOf(n int, cost func(int) int, freeAt []int) int {
	best, bestCost := 0, cost(0)
	for p := 1; p < n; p++ {
		c := cost(p)
		if c < bestCost || (c == bestCost && freeAt[p] < freeAt[best]) {
			best, bestCost = p, c
		}
	}
	return best
}

// bestOfSet is bestOf over an explicit candidate set.
func bestOfSet(cands []int, cost func(int) int, freeAt []int) int {
	best, bestCost := cands[0], cost(cands[0])
	for _, p := range cands[1:] {
		c := cost(p)
		if c < bestCost || (c == bestCost && freeAt[p] < freeAt[best]) {
			best, bestCost = p, c
		}
	}
	return best
}
