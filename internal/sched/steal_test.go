package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"funcdb/internal/topo"
	"funcdb/internal/trace"
)

func TestDynamicEmptyGraph(t *testing.T) {
	res := ScheduleDynamic(trace.New(), Config{Topo: topo.NewComplete(4)})
	if res.Makespan != 0 || res.Work != 0 {
		t.Errorf("empty result = %+v", res)
	}
}

func TestDynamicNilTopoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil topo did not panic")
		}
	}()
	ScheduleDynamic(trace.New(), Config{})
}

func TestDynamicChainIsSequential(t *testing.T) {
	res := ScheduleDynamic(chainGraph(20), Config{Topo: topo.NewHypercube(3), HopDelay: 2})
	if res.Makespan != 20 {
		t.Errorf("chain makespan = %d, want 20", res.Makespan)
	}
	if res.CommEvents != 0 {
		t.Errorf("chain communicated %d times", res.CommEvents)
	}
	// A chain offers nothing to export: successors enable on the only busy
	// PE with an empty backlog.
	if res.Steals != 0 {
		t.Errorf("chain stole %d times", res.Steals)
	}
}

func TestDynamicFloodSpreads(t *testing.T) {
	res := ScheduleDynamic(floodGraph(64), Config{Topo: topo.NewHypercube(3), HopDelay: 1})
	if res.Makespan != 8 {
		t.Errorf("flood makespan = %d, want 8 (64 tasks on 8 PEs)", res.Makespan)
	}
	if res.Speedup != 8 {
		t.Errorf("flood speedup = %v", res.Speedup)
	}
}

func TestDynamicForkJoinDiffuses(t *testing.T) {
	// A root spawning 30 children: the children all enable on the root's
	// PE; diffusion must export work to neighbors.
	res := ScheduleDynamic(forkJoinGraph(30), Config{Topo: topo.NewHypercube(3), HopDelay: 1})
	if res.Steals == 0 {
		t.Error("no diffusion on a fork-join burst")
	}
	// With 8 PEs and diffusion the fan-out phase must beat serial.
	if res.Makespan >= 32 {
		t.Errorf("makespan = %d: diffusion failed (serial would be 32)", res.Makespan)
	}
	if res.Makespan < res.CriticalPath {
		t.Errorf("makespan %d below critical path %d", res.Makespan, res.CriticalPath)
	}
}

func TestDynamicBusyAccounting(t *testing.T) {
	res := ScheduleDynamic(forkJoinGraph(17), Config{Topo: topo.NewHypercube(2), HopDelay: 1})
	total := 0
	for _, b := range res.PEBusy {
		total += b
	}
	if total != res.Work {
		t.Errorf("busy sum %d != work %d", total, res.Work)
	}
}

func TestDynamicDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := randomDAG(r, 300)
	cfg := Config{Topo: topo.NewMesh3D(3, 3, 3), HopDelay: 1}
	a := ScheduleDynamic(g, cfg)
	b := ScheduleDynamic(g, cfg)
	if a.Makespan != b.Makespan || a.Steals != b.Steals || a.CommHops != b.CommHops {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestDynamicComparableToStatic(t *testing.T) {
	// The dynamic scheduler has less information than the static one (no
	// lookahead), but on the paper-like DAGs it should stay within a factor
	// of the pressure list scheduler.
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 10; trial++ {
		g := randomDAG(r, 250)
		cfg := Config{Topo: topo.NewHypercube(3), HopDelay: 1}
		static := Schedule(g, cfg)
		dynamic := ScheduleDynamic(g, cfg)
		if dynamic.Makespan > static.Makespan*3 {
			t.Errorf("trial %d: dynamic %d vs static %d", trial, dynamic.Makespan, static.Makespan)
		}
	}
}

func TestPropertyDynamicBounds(t *testing.T) {
	f := func(seed int64, topoPick uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 100)
		topos := []topo.Topology{
			topo.NewHypercube(2), topo.NewMesh3D(2, 2, 2), topo.NewRing(4), topo.NewComplete(5),
		}
		tp := topos[int(topoPick)%len(topos)]
		delay := int(seed % 3)
		if delay < 0 {
			delay = -delay
		}
		res := ScheduleDynamic(g, Config{Topo: tp, HopDelay: delay})
		if res.Makespan < res.CriticalPath {
			return false
		}
		if lb := (res.Work + tp.Size() - 1) / tp.Size(); res.Makespan < lb {
			return false
		}
		if res.Speedup > float64(tp.Size())+1e-9 {
			return false
		}
		total := 0
		for _, b := range res.PEBusy {
			total += b
		}
		return total == res.Work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
