package sched

import (
	"container/heap"

	"funcdb/internal/trace"
)

// ScheduleDynamic is the discrete-event counterpart of Schedule: instead of
// placing tasks in a precomputed order, it simulates Rediflow's dynamic
// execution. Keller & Lin [14] describe the load-management problem as
// "overloaded PEs can export portions of their activity backlog to less
// burdened neighbors"; here that is literal:
//
//   - A task is enabled when its last dependency completes, and joins the
//     backlog of the PE where that dependency ran (its data's home).
//   - Root tasks are dealt round-robin at time zero.
//   - A PE starting a task charges each input's transfer from the PE that
//     produced it (HopDelay x hops).
//   - After every completion, a PE with excess backlog exports queued tasks
//     to idle empty neighbors, one hop down the pressure gradient; the
//     exported task pays one hop of delay before it can start.
//
// The policy field of cfg is ignored (diffusion is the policy). Result's
// CommEvents/CommHops count input transfers, and Steals counts exports.
func ScheduleDynamic(g *trace.Graph, cfg Config) Result {
	if cfg.Topo == nil {
		panic("sched: Config.Topo is required")
	}
	if cfg.HopDelay < 0 {
		panic("sched: negative HopDelay")
	}
	if cfg.TaskLen <= 0 {
		cfg.TaskLen = 1
	}
	nPE := cfg.Topo.Size()
	_, deps := g.Snapshot()
	n := len(deps)
	res := Result{
		Work:         n * cfg.TaskLen,
		CriticalPath: g.CriticalPath() * cfg.TaskLen,
		PEBusy:       make([]int, nPE),
	}
	if n == 0 {
		return res
	}

	// Successor lists and dependency counters.
	succs := make([][]int32, n)
	remaining := make([]int32, n)
	for i, ds := range deps {
		remaining[i] = int32(len(ds))
		for _, d := range ds {
			di := int32(d) - 1
			succs[di] = append(succs[di], int32(i))
		}
	}

	finish := make([]int, n)
	peOf := make([]int, n)
	// extraReady[t] delays a task's start beyond its inputs (export hop).
	extraReady := make([]int, n)
	queues := make([][]int32, nPE) // FIFO backlogs
	busy := make([]bool, nPE)

	events := &eventHeap{}
	heap.Init(events)

	// readyOn computes when task i could start on PE p (inputs shipped).
	readyOn := func(i int, p int, now int) int {
		start := now
		if extraReady[i] > start {
			start = extraReady[i]
		}
		for _, d := range deps[i] {
			di := int(d) - 1
			arrive := finish[di] + cfg.HopDelay*cfg.Topo.Hops(peOf[di], p)
			if arrive > start {
				start = arrive
			}
		}
		return start
	}

	var tryStart func(p int, now int)
	tryStart = func(p int, now int) {
		if busy[p] || len(queues[p]) == 0 {
			return
		}
		task := queues[p][0]
		queues[p] = queues[p][1:]
		start := readyOn(int(task), p, now)
		end := start + cfg.TaskLen
		busy[p] = true
		finish[task] = end
		peOf[task] = p
		res.PEBusy[p] += cfg.TaskLen
		for _, d := range deps[task] {
			if h := cfg.Topo.Hops(peOf[int(d)-1], p); h > 0 {
				res.CommEvents++
				res.CommHops += h
			}
		}
		heap.Push(events, event{t: end, pe: p, task: task})
	}

	// diffuse exports backlog from p to idle, empty neighbors — the
	// pressure gradient at work.
	diffuse := func(p int, now int) {
		if len(queues[p]) <= 1 {
			return
		}
		for _, nb := range cfg.Topo.Neighbors(p) {
			if len(queues[p]) <= 1 {
				return
			}
			if busy[nb] || len(queues[nb]) > 0 {
				continue
			}
			// Export the newest queued task (the oldest stays for p).
			last := len(queues[p]) - 1
			task := queues[p][last]
			queues[p] = queues[p][:last]
			if t := now + cfg.HopDelay; t > extraReady[task] {
				extraReady[task] = t
			}
			queues[nb] = append(queues[nb], task)
			res.Steals++
			tryStart(nb, now)
		}
	}

	// Seed the roots round-robin.
	rr := 0
	for i := 0; i < n; i++ {
		if remaining[i] == 0 {
			queues[rr%nPE] = append(queues[rr%nPE], int32(i))
			rr++
		}
	}
	for p := 0; p < nPE; p++ {
		tryStart(p, 0)
	}
	for p := 0; p < nPE; p++ {
		diffuse(p, 0)
	}

	// Event loop.
	done := 0
	for events.Len() > 0 {
		ev := heap.Pop(events).(event)
		p, t := ev.pe, ev.t
		busy[p] = false
		done++
		if t > res.Makespan {
			res.Makespan = t
		}
		// Enable successors; they join this PE's backlog when this was
		// their last outstanding dependency.
		for _, s := range succs[ev.task] {
			remaining[s]--
			if remaining[s] == 0 {
				queues[p] = append(queues[p], s)
			}
		}
		tryStart(p, t)
		diffuse(p, t)
	}
	if done != n {
		panic("sched: dynamic simulation deadlocked (cyclic graph?)")
	}

	res.Speedup = float64(res.Work) / float64(res.Makespan)
	res.Efficiency = res.Speedup / float64(nPE)
	return res
}

// event is one task completion.
type event struct {
	t    int
	pe   int
	task int32
}

// eventHeap orders events by time (ties by PE then task for determinism).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	if h[i].pe != h[j].pe {
		return h[i].pe < h[j].pe
	}
	return h[i].task < h[j].task
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
