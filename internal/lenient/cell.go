// Package lenient implements the paper's "lenient data constructors": data
// structures that are usable as objects before their components are fully
// computed.
//
// Keller & Lindstrom 1985, Section 1: "Through the use of lenient data
// constructors ... data structures need not be constructed in their entirety
// before they are used as components in other structures. ... a lenient
// tuple constructor creates a tuple which itself is an object, the
// components of which are made positionally accessible before any of the
// components are necessarily completely computed."
//
// Two constructors are provided:
//
//   - Cell[T]: a single lenient component (a future). Lazy cells compute on
//     first demand; Spawn cells begin computing immediately in their own
//     goroutine, which is the operational reading of leniency used by the
//     paper's pipelined transaction processing.
//   - Stream[T]: the lenient cons-stream built from FollowedBy (the paper's
//     infix "followed-by" used in the apply-stream equations), with first,
//     rest, apply-to-all and the usual derived operators.
package lenient

import (
	"sync"
	"sync/atomic"
)

// Cell is a lenient component: a value of type T that may still be under
// computation. Force blocks until the value is available. A Cell computes
// its thunk at most once; Force is safe for concurrent use.
type Cell[T any] struct {
	once sync.Once
	fn   func() T
	val  T
	done atomic.Bool
}

// Lazy returns a cell that computes fn on first demand (call-by-need).
func Lazy[T any](fn func() T) *Cell[T] {
	if fn == nil {
		panic("lenient: Lazy with nil thunk")
	}
	return &Cell[T]{fn: fn}
}

// Ready returns an already-computed cell holding v.
func Ready[T any](v T) *Cell[T] {
	c := &Cell[T]{val: v}
	c.once.Do(func() {})
	c.done.Store(true)
	return c
}

// Spawn returns a cell whose thunk starts computing immediately in its own
// goroutine. This is the anticipatory demand of the paper's evaluation
// mechanism: "many elements of the output sequence are demanded in an
// anticipatory fashion, to generate as much parallel execution as possible"
// (Section 2.3). The goroutine's lifetime is bounded by the thunk itself.
func Spawn[T any](fn func() T) *Cell[T] {
	c := Lazy(fn)
	go c.Force()
	return c
}

// Force returns the cell's value, computing it if necessary and blocking if
// another goroutine is already computing it.
func (c *Cell[T]) Force() T {
	c.once.Do(func() {
		c.val = c.fn()
		c.fn = nil // release the closure and anything it captured
		c.done.Store(true)
	})
	return c.val
}

// Poll returns the cell's value without blocking: ok is false while the
// value is still under computation (Poll never demands it). A true result
// carries the same value every Force observes.
func (c *Cell[T]) Poll() (v T, ok bool) {
	if !c.done.Load() {
		var zero T
		return zero, false
	}
	return c.val, true
}

// Map returns a lazy cell holding f of c's value.
func Map[T, U any](c *Cell[T], f func(T) U) *Cell[U] {
	return Lazy(func() U { return f(c.Force()) })
}

// Join flattens a cell of a cell.
func Join[T any](c *Cell[*Cell[T]]) *Cell[T] {
	return Lazy(func() T { return c.Force().Force() })
}

// Pair is a lenient 2-tuple: both components are independently demandable.
// It models the paper's bracketed pairs such as [response, new-database]:
// a consumer of Second need not wait for First and vice versa.
type Pair[A, B any] struct {
	first  *Cell[A]
	second *Cell[B]
}

// NewPair builds a lenient pair from two cells.
func NewPair[A, B any](a *Cell[A], b *Cell[B]) Pair[A, B] {
	return Pair[A, B]{first: a, second: b}
}

// First demands and returns the first component.
func (p Pair[A, B]) First() A { return p.first.Force() }

// Second demands and returns the second component.
func (p Pair[A, B]) Second() B { return p.second.Force() }

// FirstCell returns the first component's cell without demanding it.
func (p Pair[A, B]) FirstCell() *Cell[A] { return p.first }

// SecondCell returns the second component's cell without demanding it.
func (p Pair[A, B]) SecondCell() *Cell[B] { return p.second }
