package lenient

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestLazyComputesOnce(t *testing.T) {
	var calls atomic.Int32
	c := Lazy(func() int {
		calls.Add(1)
		return 41
	})
	if calls.Load() != 0 {
		t.Error("Lazy evaluated eagerly")
	}
	if got := c.Force(); got != 41 {
		t.Errorf("Force = %d", got)
	}
	if got := c.Force(); got != 41 {
		t.Errorf("second Force = %d", got)
	}
	if calls.Load() != 1 {
		t.Errorf("thunk ran %d times, want 1", calls.Load())
	}
}

func TestLazyNilThunkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Lazy(nil) did not panic")
		}
	}()
	Lazy[int](nil)
}

func TestReady(t *testing.T) {
	c := Ready("x")
	if got := c.Force(); got != "x" {
		t.Errorf("Force = %q", got)
	}
}

func TestSpawnComputesInBackground(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	c := Spawn(func() int {
		close(started)
		<-release
		return 7
	})
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("Spawn did not start its thunk")
	}
	close(release)
	if got := c.Force(); got != 7 {
		t.Errorf("Force = %d", got)
	}
}

func TestForceIsConcurrencySafe(t *testing.T) {
	var calls atomic.Int32
	c := Lazy(func() int {
		calls.Add(1)
		time.Sleep(time.Millisecond)
		return 1
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := c.Force(); got != 1 {
				t.Errorf("Force = %d", got)
			}
		}()
	}
	wg.Wait()
	if calls.Load() != 1 {
		t.Errorf("thunk ran %d times under contention", calls.Load())
	}
}

func TestCellMapAndJoin(t *testing.T) {
	base := Ready(10)
	doubled := Map(base, func(v int) int { return v * 2 })
	if got := doubled.Force(); got != 20 {
		t.Errorf("Map Force = %d", got)
	}
	nested := Ready(Ready(5))
	if got := Join(nested).Force(); got != 5 {
		t.Errorf("Join Force = %d", got)
	}
}

func TestPairComponentsIndependent(t *testing.T) {
	// Demanding Second must not force First: the essence of leniency.
	var firstForced atomic.Bool
	p := NewPair(
		Lazy(func() int { firstForced.Store(true); return 1 }),
		Ready("ok"),
	)
	if got := p.Second(); got != "ok" {
		t.Errorf("Second = %q", got)
	}
	if firstForced.Load() {
		t.Error("demanding Second forced First")
	}
	if got := p.First(); got != 1 {
		t.Errorf("First = %d", got)
	}
	if p.FirstCell() == nil || p.SecondCell() == nil {
		t.Error("component cells not exposed")
	}
}

func TestEmptyStream(t *testing.T) {
	var s *Stream[int]
	if !s.IsEmpty() {
		t.Error("nil stream not empty")
	}
	if got := ToSlice(s); len(got) != 0 {
		t.Errorf("ToSlice(empty) = %v", got)
	}
	if got := Length(s); got != 0 {
		t.Errorf("Length(empty) = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("First of empty stream did not panic")
		}
	}()
	s.First()
}

func TestRestOfEmptyPanics(t *testing.T) {
	var s *Stream[int]
	defer func() {
		if recover() == nil {
			t.Error("Rest of empty stream did not panic")
		}
	}()
	s.Rest()
}

func TestFromSliceToSliceRoundTrip(t *testing.T) {
	tests := [][]int{nil, {}, {1}, {1, 2, 3}, {5, 4, 3, 2, 1}}
	for _, in := range tests {
		out := ToSlice(FromSlice(in))
		if len(out) != len(in) {
			t.Errorf("round trip %v -> %v", in, out)
			continue
		}
		for i := range in {
			if out[i] != in[i] {
				t.Errorf("round trip %v -> %v", in, out)
				break
			}
		}
	}
}

func TestFollowedByIsLazyInTail(t *testing.T) {
	var tailBuilt atomic.Bool
	s := FollowedBy(1, func() *Stream[int] {
		tailBuilt.Store(true)
		return Cons(2, nil)
	})
	if got := s.First(); got != 1 {
		t.Errorf("First = %d", got)
	}
	if tailBuilt.Load() {
		t.Error("tail was demanded by First")
	}
	if got := s.Rest().First(); got != 2 {
		t.Errorf("Rest().First() = %d", got)
	}
	if !tailBuilt.Load() {
		t.Error("tail thunk never ran")
	}
}

func TestGenerateBounded(t *testing.T) {
	s := Generate(func(i int) (int, bool) { return i * i, i < 5 })
	got := ToSlice(s)
	want := []int{0, 1, 4, 9, 16}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got %v, want %v", got, want)
			break
		}
	}
}

func TestGenerateInfiniteWithTake(t *testing.T) {
	nat := Generate(func(i int) (int, bool) { return i, true })
	got := ToSlice(Take(nat, 4))
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Take(nat,4) = %v", got)
		}
	}
	if got := TakeSlice(nat, 3); len(got) != 3 {
		t.Errorf("TakeSlice = %v", got)
	}
}

func TestGenerateCallsProducerOnDemandOnly(t *testing.T) {
	var calls atomic.Int32
	s := Generate(func(i int) (int, bool) {
		calls.Add(1)
		return i, true
	})
	_ = s.First()
	if calls.Load() != 1 {
		t.Errorf("producer called %d times after one demand, want 1", calls.Load())
	}
	_ = s.Rest().First()
	if calls.Load() != 2 {
		t.Errorf("producer called %d times after two demands, want 2", calls.Load())
	}
}

func TestTakeDoesNotOverDemand(t *testing.T) {
	// Taking n elements must invoke the producer exactly n times — one
	// extra demand would run transaction n+1 in the apply-stream equations.
	var calls atomic.Int32
	s := Generate(func(i int) (int, bool) {
		calls.Add(1)
		return i, true
	})
	// Generate's construction produces element 0 (strict head).
	if got := TakeSlice(s, 3); len(got) != 3 {
		t.Fatalf("TakeSlice = %v", got)
	}
	if calls.Load() != 3 {
		t.Errorf("TakeSlice(3) invoked producer %d times", calls.Load())
	}
	calls.Store(0)
	s2 := Generate(func(i int) (int, bool) {
		calls.Add(1)
		return i, true
	})
	if got := ToSlice(Take(s2, 4)); len(got) != 4 {
		t.Fatalf("Take = %v", got)
	}
	if calls.Load() != 4 {
		t.Errorf("ToSlice(Take(4)) invoked producer %d times", calls.Load())
	}
}

func TestFromChan(t *testing.T) {
	ch := make(chan int, 3)
	ch <- 1
	ch <- 2
	ch <- 3
	close(ch)
	got := ToSlice(FromChan(ch))
	want := []int{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("FromChan = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FromChan = %v", got)
		}
	}
}

func TestApplyToAll(t *testing.T) {
	s := FromSlice([]int{1, 2, 3})
	got := ToSlice(ApplyToAll(func(v int) int { return v * 10 }, s))
	want := []int{10, 20, 30}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ApplyToAll = %v", got)
		}
	}
	if ApplyToAll(func(v int) int { return v }, nil) != nil {
		t.Error("ApplyToAll(empty) not empty")
	}
}

func TestApplyToAllSpawnFloods(t *testing.T) {
	// All three applications should be able to run concurrently: block each
	// until all have started.
	var started sync.WaitGroup
	started.Add(3)
	release := make(chan struct{})
	s := FromSlice([]int{1, 2, 3})
	mapped := ApplyToAllSpawn(func(v int) int {
		started.Done()
		<-release
		return v + 100
	}, s)
	// Demand the whole spine (not the heads) to spawn all futures.
	cells := ToSlice(mapped)
	done := make(chan struct{})
	go func() { started.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("spawned applications did not run concurrently")
	}
	close(release)
	want := []int{101, 102, 103}
	for i, c := range cells {
		if got := c.Force(); got != want[i] {
			t.Errorf("cell %d = %d, want %d", i, got, want[i])
		}
	}
}

func TestFilter(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5, 6})
	even := ToSlice(Filter(func(v int) bool { return v%2 == 0 }, s))
	want := []int{2, 4, 6}
	if len(even) != len(want) {
		t.Fatalf("Filter = %v", even)
	}
	for i := range want {
		if even[i] != want[i] {
			t.Errorf("Filter = %v", even)
		}
	}
	if got := ToSlice(Filter(func(int) bool { return false }, s)); len(got) != 0 {
		t.Errorf("Filter(none) = %v", got)
	}
	if Filter(func(int) bool { return true }, (*Stream[int])(nil)) != nil {
		t.Error("Filter(empty) not empty")
	}
}

func TestTakeDropAppend(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5})
	if got := ToSlice(Take(s, 0)); len(got) != 0 {
		t.Errorf("Take 0 = %v", got)
	}
	if got := ToSlice(Take(s, 99)); len(got) != 5 {
		t.Errorf("Take 99 = %v", got)
	}
	if got := ToSlice(Drop(s, 2)); len(got) != 3 || got[0] != 3 {
		t.Errorf("Drop 2 = %v", got)
	}
	if got := Drop(s, 99); got != nil {
		t.Errorf("Drop 99 = %v", ToSlice(got))
	}
	got := ToSlice(Append(FromSlice([]int{1, 2}), FromSlice([]int{3})))
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Append = %v", got)
		}
	}
	if got := ToSlice(Append(nil, FromSlice([]int{9}))); len(got) != 1 || got[0] != 9 {
		t.Errorf("Append(empty, s) = %v", got)
	}
}

func TestAppendLazy(t *testing.T) {
	var built atomic.Bool
	a := FromSlice([]int{1, 2})
	out := AppendLazy(a, func() *Stream[int] {
		built.Store(true)
		return FromSlice([]int{3})
	})
	if got := out.First(); got != 1 {
		t.Errorf("First = %d", got)
	}
	if got := out.Rest().First(); got != 2 {
		t.Errorf("second = %d", got)
	}
	if built.Load() {
		t.Error("second stream built before first exhausted")
	}
	if got := ToSlice(out); len(got) != 3 || got[2] != 3 {
		t.Errorf("ToSlice = %v", got)
	}
	if !built.Load() {
		t.Error("second stream never built")
	}
	// Empty first stream: the thunk runs immediately.
	if got := ToSlice(AppendLazy(nil, func() *Stream[int] { return FromSlice([]int{9}) })); len(got) != 1 {
		t.Errorf("AppendLazy(empty) = %v", got)
	}
}

func TestZipWith(t *testing.T) {
	a := FromSlice([]int{1, 2, 3})
	b := FromSlice([]int{10, 20})
	got := ToSlice(ZipWith(func(x, y int) int { return x + y }, a, b))
	want := []int{11, 22}
	if len(got) != len(want) {
		t.Fatalf("ZipWith = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ZipWith = %v", got)
		}
	}
}

func TestForEachAndFold(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4})
	sum := 0
	ForEach(s, func(v int) { sum += v })
	if sum != 10 {
		t.Errorf("ForEach sum = %d", sum)
	}
	if got := Fold(s, 100, func(acc, v int) int { return acc + v }); got != 110 {
		t.Errorf("Fold = %d", got)
	}
}

func TestPipelineProducerConsumerOverlap(t *testing.T) {
	// A consumer demanding a stream built over a channel observes elements
	// as the producer emits them: streams are "bona fide data objects" of
	// unknown length.
	ch := make(chan int)
	go func() {
		for i := 0; i < 3; i++ {
			ch <- i
		}
		close(ch)
	}()
	s := FromChan(ch)
	if got := s.First(); got != 0 {
		t.Errorf("First = %d", got)
	}
	if got := s.Rest().First(); got != 1 {
		t.Errorf("second = %d", got)
	}
	rest := ToSlice(s.Rest().Rest())
	if len(rest) != 1 || rest[0] != 2 {
		t.Errorf("rest = %v", rest)
	}
}

// Property tests on stream laws.

func TestPropertyMapFusion(t *testing.T) {
	// map f . map g == map (f . g)
	f := func(xs []int8) bool {
		ints := make([]int, len(xs))
		for i, v := range xs {
			ints[i] = int(v)
		}
		s := FromSlice(ints)
		double := func(v int) int { return v * 2 }
		inc := func(v int) int { return v + 1 }
		lhs := ToSlice(ApplyToAll(inc, ApplyToAll(double, s)))
		rhs := ToSlice(ApplyToAll(func(v int) int { return inc(double(v)) }, s))
		if len(lhs) != len(rhs) {
			return false
		}
		for i := range lhs {
			if lhs[i] != rhs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTakeDropSplit(t *testing.T) {
	// take n s ++ drop n s == s
	f := func(xs []int8, n uint8) bool {
		ints := make([]int, len(xs))
		for i, v := range xs {
			ints[i] = int(v)
		}
		k := int(n) % (len(ints) + 1)
		s := FromSlice(ints)
		recombined := ToSlice(Append(Take(s, k), Drop(s, k)))
		if len(recombined) != len(ints) {
			return false
		}
		for i := range ints {
			if recombined[i] != ints[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFilterIdempotent(t *testing.T) {
	f := func(xs []int8) bool {
		ints := make([]int, len(xs))
		for i, v := range xs {
			ints[i] = int(v)
		}
		even := func(v int) bool { return v%2 == 0 }
		once := ToSlice(Filter(even, FromSlice(ints)))
		twice := ToSlice(Filter(even, Filter(even, FromSlice(ints))))
		if len(once) != len(twice) {
			return false
		}
		for i := range once {
			if once[i] != twice[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyLengthInvariants(t *testing.T) {
	f := func(xs []int8, ys []int8) bool {
		a := make([]int, len(xs))
		b := make([]int, len(ys))
		s := FromSlice(a)
		u := FromSlice(b)
		return Length(Append(s, u)) == len(a)+len(b) &&
			Length(ApplyToAll(func(v int) int { return v }, s)) == len(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
