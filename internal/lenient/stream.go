package lenient

// Stream is the lenient cons-stream: a head that is available immediately
// and a tail cell that may still be under computation. A nil *Stream is the
// empty stream (the paper's []).
//
// The paper builds its whole transaction loop from this type: "The symbol ^
// is the infix form of the lenient stream-building function 'followed-by'
// which constructs a stream by following the first argument with the second
// (a stream)." Streams of unknown or infinite length are first-class values;
// consumers demand elements one at a time, and with Spawned tails the
// producer runs ahead of the consumer.
type Stream[T any] struct {
	head T
	tail *Cell[*Stream[T]]
}

// FollowedBy is the paper's `head ^ tail` constructor with a lazily
// computed tail.
func FollowedBy[T any](head T, tail func() *Stream[T]) *Stream[T] {
	return &Stream[T]{head: head, tail: Lazy(tail)}
}

// FollowedByCell is FollowedBy when the tail cell already exists.
func FollowedByCell[T any](head T, tail *Cell[*Stream[T]]) *Stream[T] {
	return &Stream[T]{head: head, tail: tail}
}

// Cons prepends head to an already-materialized tail.
func Cons[T any](head T, tail *Stream[T]) *Stream[T] {
	return &Stream[T]{head: head, tail: Ready(tail)}
}

// IsEmpty reports whether the stream is the empty stream.
func (s *Stream[T]) IsEmpty() bool { return s == nil }

// First returns the head. It panics on the empty stream, mirroring the
// partiality of the paper's first.
func (s *Stream[T]) First() T {
	if s == nil {
		panic("lenient: First of empty stream")
	}
	return s.head
}

// Rest demands and returns the tail. It panics on the empty stream.
func (s *Stream[T]) Rest() *Stream[T] {
	if s == nil {
		panic("lenient: Rest of empty stream")
	}
	return s.tail.Force()
}

// RestCell returns the tail cell without demanding it.
func (s *Stream[T]) RestCell() *Cell[*Stream[T]] {
	if s == nil {
		panic("lenient: RestCell of empty stream")
	}
	return s.tail
}

// FromSlice builds a fully-materialized stream from a slice.
func FromSlice[T any](items []T) *Stream[T] {
	var out *Stream[T]
	for i := len(items) - 1; i >= 0; i-- {
		out = Cons(items[i], out)
	}
	return out
}

// Generate builds a lazy stream whose i-th element is produced by next(i);
// the stream ends when next returns ok=false. next is invoked at most once
// per index, on demand.
func Generate[T any](next func(i int) (T, bool)) *Stream[T] {
	var gen func(i int) *Stream[T]
	gen = func(i int) *Stream[T] {
		v, ok := next(i)
		if !ok {
			return nil
		}
		return FollowedBy(v, func() *Stream[T] { return gen(i + 1) })
	}
	return gen(0)
}

// FromChan adapts a channel into a lenient stream; the stream ends when the
// channel is closed. Each element is pulled from the channel only when the
// corresponding tail is demanded, so the producer is flow-controlled by the
// consumer (plus the channel's own buffering).
func FromChan[T any](ch <-chan T) *Stream[T] {
	var pull func() *Stream[T]
	pull = func() *Stream[T] {
		v, ok := <-ch
		if !ok {
			return nil
		}
		return FollowedBy(v, pull)
	}
	return pull()
}

// ToSlice materializes the whole stream. It diverges on infinite streams;
// use TakeSlice for a bounded prefix.
func ToSlice[T any](s *Stream[T]) []T {
	var out []T
	for ; s != nil; s = s.Rest() {
		out = append(out, s.head)
	}
	return out
}

// TakeSlice materializes at most n elements. It demands no tail beyond the
// last taken element, so it is safe on expensive or infinite streams.
func TakeSlice[T any](s *Stream[T], n int) []T {
	out := make([]T, 0, max(n, 0))
	for s != nil && len(out) < n {
		out = append(out, s.head)
		if len(out) == n {
			break
		}
		s = s.Rest()
	}
	return out
}

// Length counts the elements, demanding the entire stream.
func Length[T any](s *Stream[T]) int {
	n := 0
	for ; s != nil; s = s.Rest() {
		n++
	}
	return n
}

// ApplyToAll is the paper's `f || stream` operator: it applies f to every
// element, lazily. (FEL: "transactions = translate || queries".)
func ApplyToAll[T, U any](f func(T) U, s *Stream[T]) *Stream[U] {
	if s == nil {
		return nil
	}
	return FollowedBy(f(s.head), func() *Stream[U] {
		return ApplyToAll(f, s.Rest())
	})
}

// ApplyToAllSpawn is ApplyToAll with anticipatory evaluation: each
// application runs as a spawned future, so independent elements are mapped
// concurrently ("flooding") while the stream shape is still delivered in
// order. The returned stream's heads are cells.
func ApplyToAllSpawn[T, U any](f func(T) U, s *Stream[T]) *Stream[*Cell[U]] {
	if s == nil {
		return nil
	}
	head := s.head
	return FollowedBy(Spawn(func() U { return f(head) }), func() *Stream[*Cell[U]] {
		return ApplyToAllSpawn(f, s.Rest())
	})
}

// Filter keeps the elements for which keep returns true, lazily.
func Filter[T any](keep func(T) bool, s *Stream[T]) *Stream[T] {
	for ; s != nil; s = s.Rest() {
		if keep(s.head) {
			rest := s
			return FollowedBy(rest.head, func() *Stream[T] {
				return Filter(keep, rest.Rest())
			})
		}
	}
	return nil
}

// Take returns a lazy stream of the first n elements. The source's tail is
// demanded only when a further element is actually needed, so taking n
// never computes element n+1.
func Take[T any](s *Stream[T], n int) *Stream[T] {
	if s == nil || n <= 0 {
		return nil
	}
	return FollowedBy(s.head, func() *Stream[T] {
		if n == 1 {
			return nil
		}
		return Take(s.Rest(), n-1)
	})
}

// Drop discards the first n elements, demanding them.
func Drop[T any](s *Stream[T], n int) *Stream[T] {
	for ; s != nil && n > 0; n-- {
		s = s.Rest()
	}
	return s
}

// Append concatenates two streams lazily; b's elements are not demanded
// until a ends. Note that b is already a constructed stream (its head
// exists); use AppendLazy when even constructing b must wait.
func Append[T any](a, b *Stream[T]) *Stream[T] {
	if a == nil {
		return b
	}
	return FollowedBy(a.head, func() *Stream[T] { return Append(a.Rest(), b) })
}

// AppendLazy concatenates a with a stream that is not even constructed
// until a is exhausted — needed when building the second stream has
// observable effects (e.g. a stateful filter shared across both parts).
func AppendLazy[T any](a *Stream[T], b func() *Stream[T]) *Stream[T] {
	if a == nil {
		return b()
	}
	return FollowedBy(a.head, func() *Stream[T] { return AppendLazy(a.Rest(), b) })
}

// ZipWith combines two streams elementwise with f, ending with the shorter.
func ZipWith[A, B, C any](f func(A, B) C, a *Stream[A], b *Stream[B]) *Stream[C] {
	if a == nil || b == nil {
		return nil
	}
	return FollowedBy(f(a.head, b.head), func() *Stream[C] {
		return ZipWith(f, a.Rest(), b.Rest())
	})
}

// ForEach demands every element in order, calling visit on each.
func ForEach[T any](s *Stream[T], visit func(T)) {
	for ; s != nil; s = s.Rest() {
		visit(s.head)
	}
}

// Fold accumulates the stream left-to-right, demanding every element.
func Fold[T, A any](s *Stream[T], acc A, f func(A, T) A) A {
	for ; s != nil; s = s.Rest() {
		acc = f(acc, s.head)
	}
	return acc
}
