// Package pmap implements the persistent association map used for the
// database directory: the paper's mapping "names --> relations" (Section
// 2.1).
//
// The map is a persistent association list in insertion order. Updating one
// binding copies the entries in front of it and shares every entry behind
// it, exactly the "new directory / old directory" picture of Figure 2-2:
// after an update both directory versions coexist, sharing all unmodified
// entries. With the handful of relations the paper's experiments use, the
// association list is the honest functional cost model; tree directories
// (Section 2.2's (log n)/n argument) are provided by internal/ptree for
// relations themselves.
//
// Like plist, every entry records its constructor task, and lookups record
// one visit per inspected entry depending on that entry's constructor — so
// a transaction reading the directory of a version still under construction
// pipelines behind the transaction building it.
package pmap

import (
	"funcdb/internal/eval"
	"funcdb/internal/trace"
)

// entry is one immutable directory binding.
type entry[V any] struct {
	name string
	val  V
	next *entry[V]
	task trace.TaskID
}

// Map is a persistent name->V association. The zero Map is empty and ready
// to use.
type Map[V any] struct {
	head *entry[V]
	size int
}

// Len returns the number of bindings.
func (m Map[V]) Len() int { return m.size }

// HeadTask returns the constructor task of the newest directory entry cell,
// i.e. when this version of the directory became available. None for empty
// or pre-existing directories.
func (m Map[V]) HeadTask() trace.TaskID {
	if m.head == nil {
		return trace.None
	}
	return m.head.task
}

// FromPairs builds a map untraced from pre-existing bindings; later names
// win over earlier duplicates.
func FromPairs[V any](names []string, vals []V) Map[V] {
	if len(names) != len(vals) {
		panic("pmap: FromPairs length mismatch")
	}
	var m Map[V]
	for i := range names {
		m, _ = m.Set(nil, names[i], vals[i], trace.None)
	}
	return m
}

// Get looks name up, recording one visit per inspected entry. It returns
// the value, whether it was bound, and the final visit task.
func (m Map[V]) Get(ctx *eval.Ctx, name string, after trace.TaskID) (V, bool, trace.TaskID) {
	step := after
	for e := m.head; e != nil; e = e.next {
		step = ctx.Task(trace.KindDirectory, step, e.task)
		ctx.VisitedN(1)
		if e.name == name {
			return e.val, true, step
		}
	}
	var zero V
	return zero, false, step
}

// Names returns binding names in directory order.
func (m Map[V]) Names() []string {
	out := make([]string, 0, m.size)
	for e := m.head; e != nil; e = e.next {
		out = append(out, e.name)
	}
	return out
}

// Set returns a new map with name bound to val, copying the entries in
// front of the binding and sharing the rest. A fresh name is prepended (the
// new directory cell is the only new allocation). Construction is front to
// back so the new directory's head — the new database version's identity —
// exists after one task.
func (m Map[V]) Set(ctx *eval.Ctx, name string, val V, after trace.TaskID) (Map[V], trace.Op) {
	// Unbound names prepend: one new cell, everything shared.
	if _, exists := m.lookup(name); !exists {
		t := ctx.Task(trace.KindDirectory, after)
		ctx.Created(1)
		ctx.SharedN(int64(m.size))
		return Map[V]{
			head: &entry[V]{name: name, val: val, next: m.head, task: t},
			size: m.size + 1,
		}, trace.Op{Ready: t, Done: t}
	}

	var newHead, prevNew *entry[V]
	link := func(e *entry[V]) {
		if prevNew == nil {
			newHead = e
		} else {
			prevNew.next = e
		}
		prevNew = e
	}
	headTask := trace.None
	step := after
	for e := m.head; e != nil; e = e.next {
		step = ctx.Task(trace.KindDirectory, step, e.task)
		ctx.VisitedN(1)
		if e.name == name {
			step = ctx.Task(trace.KindDirectory, step)
			if headTask == trace.None {
				headTask = step
			}
			link(&entry[V]{name: name, val: val, next: e.next, task: step})
			ctx.Created(1)
			shared := 0
			for s := e.next; s != nil; s = s.next {
				shared++
			}
			ctx.SharedN(int64(shared))
			return Map[V]{head: newHead, size: m.size}, trace.Op{Ready: headTask, Done: step}
		}
		step = ctx.Task(trace.KindDirectory, step)
		if headTask == trace.None {
			headTask = step
		}
		link(&entry[V]{name: e.name, val: e.val, task: step})
		ctx.Created(1)
	}
	panic("pmap: unreachable — binding disappeared during Set")
}

// lookup is the untraced fast path used to decide between prepend and
// replace.
func (m Map[V]) lookup(name string) (V, bool) {
	for e := m.head; e != nil; e = e.next {
		if e.name == name {
			return e.val, true
		}
	}
	var zero V
	return zero, false
}

// GetFast is an untraced lookup for engine bookkeeping that must not
// perturb the recorded task graph (e.g. validation and reporting).
func (m Map[V]) GetFast(name string) (V, bool) { return m.lookup(name) }

// SharedEntriesWith counts entries physically shared between two versions.
func (m Map[V]) SharedEntriesWith(other Map[V]) int {
	set := make(map[*entry[V]]struct{}, other.size)
	for e := other.head; e != nil; e = e.next {
		set[e] = struct{}{}
	}
	n := 0
	for e := m.head; e != nil; e = e.next {
		if _, ok := set[e]; ok {
			n++
		}
	}
	return n
}
