package pmap

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"funcdb/internal/eval"
	"funcdb/internal/trace"
)

func TestEmptyMap(t *testing.T) {
	var m Map[int]
	if m.Len() != 0 {
		t.Error("zero map not empty")
	}
	if _, ok, _ := m.Get(nil, "x", trace.None); ok {
		t.Error("Get on empty map succeeded")
	}
	if m.HeadTask() != trace.None {
		t.Error("empty map HeadTask not None")
	}
	if names := m.Names(); len(names) != 0 {
		t.Errorf("Names = %v", names)
	}
}

func TestSetAndGet(t *testing.T) {
	var m Map[int]
	m, _ = m.Set(nil, "R", 1, trace.None)
	m, _ = m.Set(nil, "S", 2, trace.None)
	m, _ = m.Set(nil, "T", 3, trace.None)
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	for name, want := range map[string]int{"R": 1, "S": 2, "T": 3} {
		got, ok, _ := m.Get(nil, name, trace.None)
		if !ok || got != want {
			t.Errorf("Get(%s) = %d, %v", name, got, ok)
		}
	}
	if _, ok, _ := m.Get(nil, "U", trace.None); ok {
		t.Error("Get(U) succeeded")
	}
}

func TestSetReplacesBinding(t *testing.T) {
	var m Map[string]
	m, _ = m.Set(nil, "R", "old", trace.None)
	m2, _ := m.Set(nil, "R", "new", trace.None)
	if m2.Len() != 1 {
		t.Fatalf("Len = %d", m2.Len())
	}
	got, _, _ := m2.Get(nil, "R", trace.None)
	if got != "new" {
		t.Errorf("Get = %q", got)
	}
	// Old version unchanged.
	old, _, _ := m.Get(nil, "R", trace.None)
	if old != "old" {
		t.Errorf("old version Get = %q", old)
	}
}

func TestFromPairs(t *testing.T) {
	m := FromPairs([]string{"a", "b", "a"}, []int{1, 2, 3})
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	got, _, _ := m.Get(nil, "a", trace.None)
	if got != 3 {
		t.Errorf("later binding did not win: %d", got)
	}
}

func TestFromPairsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched FromPairs did not panic")
		}
	}()
	FromPairs([]string{"a"}, []int{1, 2})
}

func TestDirectorySharing(t *testing.T) {
	// Replacing one binding shares all entries behind it (Figure 2-2's
	// new/old directory picture).
	var m Map[int]
	names := []string{"A", "B", "C", "D", "E"}
	for i, n := range names {
		m, _ = m.Set(nil, n, i, trace.None)
	}
	// Directory order is reverse insertion (prepend): E D C B A.
	m2, _ := m.Set(nil, "C", 99, trace.None)
	if got := m2.SharedEntriesWith(m); got != 2 {
		t.Errorf("shared entries = %d, want 2 (B and A)", got)
	}
	// Prepending a new binding shares everything.
	m3, _ := m.Set(nil, "F", 6, trace.None)
	if got := m3.SharedEntriesWith(m); got != 5 {
		t.Errorf("shared entries after prepend = %d, want 5", got)
	}
}

func TestStatsAndTraceTasks(t *testing.T) {
	g := trace.New()
	stats := &eval.Stats{}
	ctx := &eval.Ctx{Graph: g, Stats: stats}
	var m Map[int]
	m, op := m.Set(ctx, "R", 1, trace.None)
	if op.Ready == trace.None || op.Ready != op.Done {
		t.Errorf("prepend op = %+v", op)
	}
	if stats.Created.Load() != 1 {
		t.Errorf("Created = %d", stats.Created.Load())
	}
	m, _ = m.Set(ctx, "S", 2, trace.None)
	// Replace S (head): visit S, construct; shares R.
	before := stats.Shared.Load()
	_, op = m.Set(ctx, "S", 3, trace.None)
	if stats.Shared.Load()-before != 1 {
		t.Errorf("Shared delta = %d", stats.Shared.Load()-before)
	}
	if op.Ready == trace.None {
		t.Error("replace op has no Ready")
	}
	if g.Len() == 0 {
		t.Error("no tasks recorded")
	}
}

func TestGetRecordsVisits(t *testing.T) {
	g := trace.New()
	ctx := &eval.Ctx{Graph: g}
	m := FromPairs([]string{"A", "B", "C"}, []int{1, 2, 3})
	// Directory order: C B A; getting A walks 3 entries.
	_, ok, last := m.Get(ctx, "A", trace.None)
	if !ok {
		t.Fatal("Get failed")
	}
	if g.Len() != 3 {
		t.Errorf("recorded %d tasks, want 3", g.Len())
	}
	if last == trace.None {
		t.Error("Get returned no task")
	}
}

func TestGetFast(t *testing.T) {
	m := FromPairs([]string{"x"}, []int{7})
	if v, ok := m.GetFast("x"); !ok || v != 7 {
		t.Errorf("GetFast = %d, %v", v, ok)
	}
	if _, ok := m.GetFast("y"); ok {
		t.Error("GetFast(y) succeeded")
	}
}

func TestPropertyMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var m Map[int]
		model := map[string]int{}
		type version struct {
			m    Map[int]
			snap map[string]int
		}
		var history []version
		for i := 0; i < 50; i++ {
			name := "rel" + strconv.Itoa(r.Intn(8))
			switch r.Intn(2) {
			case 0:
				v := r.Intn(100)
				m, _ = m.Set(nil, name, v, trace.None)
				model[name] = v
			case 1:
				got, ok, _ := m.Get(nil, name, trace.None)
				want, inModel := model[name]
				if ok != inModel || (ok && got != want) {
					return false
				}
			}
			if m.Len() != len(model) {
				return false
			}
			snap := make(map[string]int, len(model))
			for k, v := range model {
				snap[k] = v
			}
			history = append(history, version{m: m, snap: snap})
		}
		for _, v := range history {
			if v.m.Len() != len(v.snap) {
				return false
			}
			for name, want := range v.snap {
				got, ok := v.m.GetFast(name)
				if !ok || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
