package relation

import (
	"math/rand"
	"testing"
	"testing/quick"

	"funcdb/internal/eval"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

func tup(k int64) value.Tuple { return value.NewTuple(value.Int(k), value.Str("v")) }

func allReps() []Rep { return []Rep{RepList, RepAVL, Rep23, RepPaged} }

func TestRepString(t *testing.T) {
	for _, r := range allReps() {
		if s := r.String(); s == "" || s[0] == 'R' {
			t.Errorf("Rep %d string %q", r, s)
		}
	}
	if Rep(99).String() != "Rep(99)" {
		t.Error("unknown rep string")
	}
}

func TestUnknownRepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown rep did not panic")
		}
	}()
	New(Rep(42))
}

func TestAllRepsBehaveIdentically(t *testing.T) {
	// Every representation must produce the same answers for the same
	// operation sequence: the representation is an implementation detail
	// behind the functional interface.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rels := make([]Relation, 0, len(allReps()))
		for _, rep := range allReps() {
			rels = append(rels, New(rep))
		}
		for i := 0; i < 80; i++ {
			k := int64(r.Intn(30))
			switch r.Intn(3) {
			case 0:
				for j := range rels {
					rels[j], _ = rels[j].Insert(nil, tup(k), trace.None)
				}
			case 1:
				var ref bool
				for j := range rels {
					var found bool
					rels[j], found, _ = rels[j].Delete(nil, value.Int(k), trace.None)
					if j == 0 {
						ref = found
					} else if found != ref {
						return false
					}
				}
			case 2:
				var ref bool
				for j := range rels {
					_, found, _ := rels[j].Find(nil, value.Int(k), trace.None)
					if j == 0 {
						ref = found
					} else if found != ref {
						return false
					}
				}
			}
			n := rels[0].Len()
			for _, rel := range rels[1:] {
				if rel.Len() != n {
					return false
				}
			}
		}
		// Final contents identical and sorted.
		ref := rels[0].Tuples()
		for _, rel := range rels[1:] {
			got := rel.Tuples()
			if len(got) != len(ref) {
				return false
			}
			for i := range got {
				if !got[i].Equal(ref[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFromTuplesAllReps(t *testing.T) {
	tuples := []value.Tuple{tup(3), tup(1), tup(2)}
	for _, rep := range allReps() {
		rel := FromTuples(rep, tuples)
		if rel.Rep() != rep {
			t.Errorf("%v: Rep = %v", rep, rel.Rep())
		}
		if rel.Len() != 3 {
			t.Errorf("%v: Len = %d", rep, rel.Len())
		}
		got := rel.Tuples()
		for i, want := range []int64{1, 2, 3} {
			if got[i].Key().AsInt() != want {
				t.Errorf("%v: Tuples = %v", rep, got)
			}
		}
	}
}

func TestRangeAllReps(t *testing.T) {
	var tuples []value.Tuple
	for i := int64(0); i < 30; i++ {
		tuples = append(tuples, tup(i))
	}
	for _, rep := range allReps() {
		rel := FromTuples(rep, tuples)
		var got []int64
		rel.Range(nil, value.Int(5), value.Int(8), trace.None, func(tu value.Tuple) {
			got = append(got, tu.Key().AsInt())
		})
		want := []int64{5, 6, 7, 8}
		if len(got) != len(want) {
			t.Errorf("%v: Range = %v", rep, got)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: Range = %v", rep, got)
			}
		}
	}
}

func TestTreesCostLessPerUpdateThanList(t *testing.T) {
	// Section 2.2's argument quantified: per-insert allocation on a large
	// relation is O(n) for the sorted list but O(log n) for trees.
	const n = 400
	var tuples []value.Tuple
	for i := int64(0); i < n; i++ {
		tuples = append(tuples, tup(i*2))
	}
	cost := func(rep Rep) int64 {
		rel := FromTuples(rep, tuples)
		stats := &eval.Stats{}
		ctx := &eval.Ctx{Stats: stats}
		rel.Insert(ctx, tup(n), trace.None) // middle of the key space
		return stats.Created.Load()
	}
	listCost := cost(RepList)
	for _, rep := range []Rep{RepAVL, Rep23, RepPaged} {
		if c := cost(rep); c*5 >= listCost {
			t.Errorf("%v created %d nodes vs list %d — not logarithmic", rep, c, listCost)
		}
	}
}

func TestPagedUnwrap(t *testing.T) {
	rel := FromTuples(RepPaged, []value.Tuple{tup(1)})
	if _, ok := Paged(rel); !ok {
		t.Error("Paged() failed on paged relation")
	}
	if _, ok := Paged(FromTuples(RepList, nil)); ok {
		t.Error("Paged() succeeded on list relation")
	}
	if rel2 := NewPagedWithCap(4, []value.Tuple{tup(1), tup(2)}); rel2.Len() != 2 {
		t.Error("NewPagedWithCap lost tuples")
	}
}

func TestHeadTaskPropagates(t *testing.T) {
	for _, rep := range allReps() {
		g := trace.New()
		ctx := &eval.Ctx{Graph: g}
		rel := New(rep)
		rel2, op := rel.Insert(ctx, tup(1), trace.None)
		if op.Ready == trace.None {
			t.Errorf("%v: no Ready task", rep)
		}
		if rel2.HeadTask() != op.Ready {
			t.Errorf("%v: HeadTask %d != Ready %d", rep, rel2.HeadTask(), op.Ready)
		}
	}
}
