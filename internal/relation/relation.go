// Package relation abstracts the persistent representations a relation can
// take. The paper's experiments use the linked list (Section 4); Section
// 2.2 argues tree and paged representations share even more structure
// ("all but a proportion (log n)/n of a relation can be shared during
// updating"). The Relation interface lets the rest of the engine — and the
// experiments — swap representations without change, which is how the
// representation ablation is run.
//
// All implementations are purely functional: updates return new relation
// values and never disturb old ones.
package relation

import (
	"fmt"

	"funcdb/internal/eval"
	"funcdb/internal/plist"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// Rep names a relation representation.
type Rep uint8

// Available representations.
const (
	// RepList is the paper's experimental representation: a key-sorted
	// persistent linked list.
	RepList Rep = iota + 1
	// RepAVL is a persistent AVL tree (Myers [18], "Efficient applicative
	// data types").
	RepAVL
	// Rep23 is a persistent 2-3 tree (Hoffman & O'Donnell [8]).
	Rep23
	// RepPaged is a persistent paged B-tree with directory pages (Figure
	// 2-2, Section 3.3).
	RepPaged
)

// String returns the representation name.
func (r Rep) String() string {
	switch r {
	case RepList:
		return "list"
	case RepAVL:
		return "avl"
	case Rep23:
		return "2-3"
	case RepPaged:
		return "paged"
	default:
		return fmt.Sprintf("Rep(%d)", uint8(r))
	}
}

// Relation is one persistent relation: a set of tuples keyed by their first
// field. Implementations are immutable; operations return new values.
type Relation interface {
	// Rep identifies the representation.
	Rep() Rep
	// Len returns the number of tuples.
	Len() int
	// HeadTask is the constructor task of this version's root, i.e. when
	// the version became available as an object (None if pre-existing).
	HeadTask() trace.TaskID
	// Find searches for key, returning the tuple, whether it was found,
	// and the determining task.
	Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID)
	// Insert adds t (replacing an equal-keyed tuple), returning the new
	// version and its op trace.
	Insert(ctx *eval.Ctx, t value.Tuple, after trace.TaskID) (Relation, trace.Op)
	// Delete removes the tuple keyed key if present, returning the new
	// version, whether a tuple was removed, and the op trace.
	Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (Relation, bool, trace.Op)
	// Range visits tuples with lo <= key <= hi in key order and returns
	// the final task.
	Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID
	// Tuples returns the contents in key order.
	Tuples() []value.Tuple
}

// New returns an empty relation of the given representation.
func New(rep Rep) Relation {
	return FromTuples(rep, nil)
}

// FromTuples builds a relation of the given representation from
// pre-existing tuples (untraced, as initial data).
func FromTuples(rep Rep, tuples []value.Tuple) Relation {
	switch rep {
	case RepList:
		return listRelation{l: plist.FromTuples(tuples)}
	case RepAVL:
		return avlFromTuples(tuples)
	case Rep23:
		return tree23FromTuples(tuples)
	case RepPaged:
		return pagedFromTuples(tuples)
	default:
		panic(fmt.Sprintf("relation: unknown representation %v", rep))
	}
}

// listRelation adapts plist.List to the Relation interface.
type listRelation struct {
	l plist.List
}

var _ Relation = listRelation{}

func (r listRelation) Rep() Rep               { return RepList }
func (r listRelation) Len() int               { return r.l.Len() }
func (r listRelation) HeadTask() trace.TaskID { return r.l.HeadTask() }
func (r listRelation) Tuples() []value.Tuple  { return r.l.Tuples() }

func (r listRelation) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	return r.l.Find(ctx, key, after)
}

func (r listRelation) Insert(ctx *eval.Ctx, t value.Tuple, after trace.TaskID) (Relation, trace.Op) {
	nl, op := r.l.Insert(ctx, t, after)
	return listRelation{l: nl}, op
}

func (r listRelation) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (Relation, bool, trace.Op) {
	nl, found, op := r.l.Delete(ctx, key, after)
	return listRelation{l: nl}, found, op
}

func (r listRelation) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	return r.l.Range(ctx, lo, hi, after, visit)
}
