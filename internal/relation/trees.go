package relation

import (
	"funcdb/internal/eval"
	"funcdb/internal/ptree"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// avlRelation adapts ptree.AVL to the Relation interface.
type avlRelation struct {
	t ptree.AVL
}

var _ Relation = avlRelation{}

func avlFromTuples(tuples []value.Tuple) Relation {
	return avlRelation{t: ptree.AVLFromTuples(tuples)}
}

func (r avlRelation) Rep() Rep               { return RepAVL }
func (r avlRelation) Len() int               { return r.t.Len() }
func (r avlRelation) HeadTask() trace.TaskID { return r.t.HeadTask() }
func (r avlRelation) Tuples() []value.Tuple  { return r.t.Tuples() }

func (r avlRelation) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	return r.t.Find(ctx, key, after)
}

func (r avlRelation) Insert(ctx *eval.Ctx, t value.Tuple, after trace.TaskID) (Relation, trace.Op) {
	nt, op := r.t.Insert(ctx, t, after)
	return avlRelation{t: nt}, op
}

func (r avlRelation) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (Relation, bool, trace.Op) {
	nt, found, op := r.t.Delete(ctx, key, after)
	return avlRelation{t: nt}, found, op
}

func (r avlRelation) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	return r.t.Range(ctx, lo, hi, after, visit)
}

// tree23Relation adapts ptree.Tree23 to the Relation interface.
type tree23Relation struct {
	t ptree.Tree23
}

var _ Relation = tree23Relation{}

func tree23FromTuples(tuples []value.Tuple) Relation {
	return tree23Relation{t: ptree.Tree23FromTuples(tuples)}
}

func (r tree23Relation) Rep() Rep               { return Rep23 }
func (r tree23Relation) Len() int               { return r.t.Len() }
func (r tree23Relation) HeadTask() trace.TaskID { return r.t.HeadTask() }
func (r tree23Relation) Tuples() []value.Tuple  { return r.t.Tuples() }

func (r tree23Relation) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	return r.t.Find(ctx, key, after)
}

func (r tree23Relation) Insert(ctx *eval.Ctx, t value.Tuple, after trace.TaskID) (Relation, trace.Op) {
	nt, op := r.t.Insert(ctx, t, after)
	return tree23Relation{t: nt}, op
}

func (r tree23Relation) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (Relation, bool, trace.Op) {
	nt, found, op := r.t.Delete(ctx, key, after)
	return tree23Relation{t: nt}, found, op
}

func (r tree23Relation) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	return r.t.Range(ctx, lo, hi, after, visit)
}

// pagedRelation adapts ptree.Paged to the Relation interface.
type pagedRelation struct {
	t ptree.Paged
}

var _ Relation = pagedRelation{}

func pagedFromTuples(tuples []value.Tuple) Relation {
	return pagedRelation{t: ptree.PagedFromTuples(ptree.DefaultPageCap, tuples)}
}

// NewPagedWithCap returns an empty paged relation with an explicit page
// capacity, used by the Figure 2-2 experiments to sweep page sizes.
func NewPagedWithCap(pageCap int, tuples []value.Tuple) Relation {
	return pagedRelation{t: ptree.PagedFromTuples(pageCap, tuples)}
}

func (r pagedRelation) Rep() Rep               { return RepPaged }
func (r pagedRelation) Len() int               { return r.t.Len() }
func (r pagedRelation) HeadTask() trace.TaskID { return r.t.HeadTask() }
func (r pagedRelation) Tuples() []value.Tuple  { return r.t.Tuples() }

func (r pagedRelation) Find(ctx *eval.Ctx, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID) {
	return r.t.Find(ctx, key, after)
}

func (r pagedRelation) Insert(ctx *eval.Ctx, t value.Tuple, after trace.TaskID) (Relation, trace.Op) {
	nt, op := r.t.Insert(ctx, t, after)
	return pagedRelation{t: nt}, op
}

func (r pagedRelation) Delete(ctx *eval.Ctx, key value.Item, after trace.TaskID) (Relation, bool, trace.Op) {
	nt, found, op := r.t.Delete(ctx, key, after)
	return pagedRelation{t: nt}, found, op
}

func (r pagedRelation) Range(ctx *eval.Ctx, lo, hi value.Item, after trace.TaskID, visit func(value.Tuple)) trace.TaskID {
	return r.t.Range(ctx, lo, hi, after, visit)
}

// Paged unwraps a paged relation for page-level statistics (Figure 2-2);
// ok is false for other representations.
func Paged(r Relation) (ptree.Paged, bool) {
	pr, ok := r.(pagedRelation)
	return pr.t, ok
}
