package database

import (
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"funcdb/internal/eval"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

func tup(k int64, rest ...string) value.Tuple {
	items := []value.Item{value.Int(k)}
	for _, s := range rest {
		items = append(items, value.Str(s))
	}
	return value.NewTuple(items...)
}

func TestNewDatabase(t *testing.T) {
	db := New(relation.RepList, "R", "S")
	if db.Version() != 0 {
		t.Errorf("Version = %d", db.Version())
	}
	names := db.RelationNames()
	if len(names) != 2 || names[0] != "R" || names[1] != "S" {
		t.Errorf("RelationNames = %v", names)
	}
	if db.TotalTuples() != 0 {
		t.Errorf("TotalTuples = %d", db.TotalTuples())
	}
}

func TestFromData(t *testing.T) {
	db := FromData(relation.RepList, []string{"R", "S"}, map[string][]value.Tuple{
		"R": {tup(1), tup(2)},
		"S": {tup(3)},
	})
	if db.TotalTuples() != 3 {
		t.Errorf("TotalTuples = %d", db.TotalTuples())
	}
	r, ok := db.RelationFast("R")
	if !ok || r.Len() != 2 {
		t.Errorf("R missing or wrong size")
	}
}

func TestFromDataMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{"R": nil, "S": nil})
}

func TestInsertProducesNewVersionSharingOthers(t *testing.T) {
	// The paper's D0/D1/D2 example: updating R shares S; updating S next
	// shares the new R.
	d0 := FromData(relation.RepList, []string{"R", "S"}, map[string][]value.Tuple{
		"R": {tup(1)},
		"S": {tup(2)},
	})
	d1, _, err := d0.Insert(nil, "R", tup(10), trace.None)
	if err != nil {
		t.Fatal(err)
	}
	d2, _, err := d1.Insert(nil, "S", tup(20), trace.None)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Version() != 0 || d1.Version() != 1 || d2.Version() != 2 {
		t.Errorf("versions = %d,%d,%d", d0.Version(), d1.Version(), d2.Version())
	}
	// D0 and D1 share S0; D1 and D2 share R1.
	if n := d1.SharedRelationsWith(d0); n != 1 {
		t.Errorf("d1 shares %d relations with d0, want 1 (S)", n)
	}
	if n := d2.SharedRelationsWith(d1); n != 1 {
		t.Errorf("d2 shares %d relations with d1, want 1 (R)", n)
	}
	// Old versions are unchanged.
	if d0.TotalTuples() != 2 || d1.TotalTuples() != 3 || d2.TotalTuples() != 4 {
		t.Errorf("tuple counts = %d,%d,%d", d0.TotalTuples(), d1.TotalTuples(), d2.TotalTuples())
	}
}

func TestFindIsReadOnly(t *testing.T) {
	db := FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{"R": {tup(1, "x")}})
	got, found, _, err := db.Find(nil, "R", value.Int(1), trace.None)
	if err != nil || !found || got.Field(1).AsString() != "x" {
		t.Errorf("Find = %v, %v, %v", got, found, err)
	}
	_, found, _, err = db.Find(nil, "R", value.Int(2), trace.None)
	if err != nil || found {
		t.Errorf("Find(2) = %v, %v", found, err)
	}
}

func TestUnknownRelationErrors(t *testing.T) {
	db := New(relation.RepList, "R")
	if _, _, err := db.Insert(nil, "X", tup(1), trace.None); !errors.Is(err, ErrNoRelation) {
		t.Errorf("Insert err = %v", err)
	}
	if _, _, _, err := db.Find(nil, "X", value.Int(1), trace.None); !errors.Is(err, ErrNoRelation) {
		t.Errorf("Find err = %v", err)
	}
	if _, _, _, err := db.Delete(nil, "X", value.Int(1), trace.None); !errors.Is(err, ErrNoRelation) {
		t.Errorf("Delete err = %v", err)
	}
	if _, _, err := db.Count(nil, "X", trace.None); !errors.Is(err, ErrNoRelation) {
		t.Errorf("Count err = %v", err)
	}
	if _, _, err := db.Scan(nil, "X", trace.None); !errors.Is(err, ErrNoRelation) {
		t.Errorf("Scan err = %v", err)
	}
	if _, _, err := db.RangeScan(nil, "X", value.Int(0), value.Int(1), trace.None); !errors.Is(err, ErrNoRelation) {
		t.Errorf("RangeScan err = %v", err)
	}
	if _, _, err := db.ReplaceRelation(nil, "X", relation.New(relation.RepList), trace.None); !errors.Is(err, ErrNoRelation) {
		t.Errorf("ReplaceRelation err = %v", err)
	}
}

func TestDeleteMissReturnsSameVersion(t *testing.T) {
	db := FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{"R": {tup(1)}})
	next, found, _, err := db.Delete(nil, "R", value.Int(99), trace.None)
	if err != nil || found {
		t.Fatalf("Delete = %v, %v", found, err)
	}
	if next != db {
		t.Error("miss delete produced a new database version")
	}
	next, found, _, err = db.Delete(nil, "R", value.Int(1), trace.None)
	if err != nil || !found {
		t.Fatalf("Delete(1) = %v, %v", found, err)
	}
	if next == db || next.Version() != 1 {
		t.Error("hit delete did not produce a new version")
	}
}

func TestCountScanRange(t *testing.T) {
	db := FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{
		"R": {tup(1), tup(2), tup(3), tup(4)},
	})
	n, _, err := db.Count(nil, "R", trace.None)
	if err != nil || n != 4 {
		t.Errorf("Count = %d, %v", n, err)
	}
	all, _, err := db.Scan(nil, "R", trace.None)
	if err != nil || len(all) != 4 {
		t.Errorf("Scan = %v, %v", all, err)
	}
	some, _, err := db.RangeScan(nil, "R", value.Int(2), value.Int(3), trace.None)
	if err != nil || len(some) != 2 {
		t.Errorf("RangeScan = %v, %v", some, err)
	}
}

func TestCreateRelation(t *testing.T) {
	db := New(relation.RepList, "R")
	db2, _, err := db.CreateRelation(nil, "S", relation.RepAVL, trace.None)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Version() != 1 || len(db2.RelationNames()) != 2 {
		t.Errorf("create failed: v%d %v", db2.Version(), db2.RelationNames())
	}
	if _, _, err := db2.CreateRelation(nil, "S", relation.RepAVL, trace.None); !errors.Is(err, ErrRelationExists) {
		t.Errorf("duplicate create err = %v", err)
	}
	// Old version does not see the new relation.
	if len(db.RelationNames()) != 1 {
		t.Error("old version gained a relation")
	}
}

func TestReplaceRelation(t *testing.T) {
	db := New(relation.RepList, "R")
	nr := relation.FromTuples(relation.RepList, []value.Tuple{tup(5)})
	db2, _, err := db.ReplaceRelation(nil, "R", nr, trace.None)
	if err != nil {
		t.Fatal(err)
	}
	if db2.TotalTuples() != 1 || db.TotalTuples() != 0 {
		t.Error("ReplaceRelation leaked into old version")
	}
}

func TestEqual(t *testing.T) {
	a := FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{"R": {tup(1)}})
	b := FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{"R": {tup(1)}})
	c := FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{"R": {tup(2)}})
	d := FromData(relation.RepList, []string{"S"}, map[string][]value.Tuple{"S": {tup(1)}})
	if !a.Equal(b) {
		t.Error("equal databases reported unequal")
	}
	if a.Equal(c) || a.Equal(d) {
		t.Error("unequal databases reported equal")
	}
}

func TestTracedInsertRecordsDirectoryAndRelationWork(t *testing.T) {
	g := trace.New()
	ctx := &eval.Ctx{Graph: g}
	db := FromData(relation.RepList, []string{"R", "S"}, map[string][]value.Tuple{
		"R": {tup(1), tup(2)},
		"S": {tup(3)},
	})
	next, op, err := db.Insert(ctx, "R", tup(5), trace.None)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("no tasks recorded")
	}
	if op.Ready == trace.None || op.Done == trace.None {
		t.Errorf("op = %+v", op)
	}
	if next.Ready() == trace.None {
		t.Error("new version has no ready task")
	}
	p := g.Analyze()
	if p.KindCounts[trace.KindDirectory] == 0 {
		t.Error("no directory tasks recorded")
	}
	if p.KindCounts[trace.KindVisit] == 0 || p.KindCounts[trace.KindConstruct] == 0 {
		t.Error("no relation work recorded")
	}
}

func TestPropertyDatabaseMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		names := []string{"R", "S", "T"}
		db := New(relation.RepList, names...)
		model := map[string]map[int64]bool{"R": {}, "S": {}, "T": {}}
		for i := 0; i < 100; i++ {
			name := names[r.Intn(len(names))]
			k := int64(r.Intn(20))
			switch r.Intn(3) {
			case 0:
				var err error
				db, _, err = db.Insert(nil, name, tup(k), trace.None)
				if err != nil {
					return false
				}
				model[name][k] = true
			case 1:
				var found bool
				var err error
				db, found, _, err = db.Delete(nil, name, value.Int(k), trace.None)
				if err != nil || found != model[name][k] {
					return false
				}
				delete(model[name], k)
			case 2:
				_, found, _, err := db.Find(nil, name, value.Int(k), trace.None)
				if err != nil || found != model[name][k] {
					return false
				}
			}
		}
		for _, name := range names {
			n, _, err := db.Count(nil, name, trace.None)
			if err != nil || n != len(model[name]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHistoryArchiveMode(t *testing.T) {
	h := NewHistory(0)
	db := New(relation.RepList, "R")
	h.Append(db)
	for i := 0; i < 10; i++ {
		var err error
		db, _, err = db.Insert(nil, "R", tup(int64(i)), trace.None)
		if err != nil {
			t.Fatal(err)
		}
		h.Append(db)
	}
	if h.Len() != 11 {
		t.Errorf("archive kept %d versions", h.Len())
	}
	if h.Dropped() != 0 {
		t.Errorf("archive dropped %d", h.Dropped())
	}
	// Time travel: version 5 has exactly 5 tuples.
	v5, err := h.Version(5)
	if err != nil {
		t.Fatal(err)
	}
	if v5.TotalTuples() != 5 {
		t.Errorf("version 5 has %d tuples", v5.TotalTuples())
	}
	if h.Latest().TotalTuples() != 10 {
		t.Errorf("latest has %d tuples", h.Latest().TotalTuples())
	}
}

func TestHistoryBoundedRetention(t *testing.T) {
	h := NewHistory(3)
	db := New(relation.RepList, "R")
	h.Append(db)
	for i := 0; i < 10; i++ {
		var err error
		db, _, err = db.Insert(nil, "R", tup(int64(i)), trace.None)
		if err != nil {
			t.Fatal(err)
		}
		h.Append(db)
	}
	if h.Len() != 3 {
		t.Errorf("kept %d versions, want 3", h.Len())
	}
	if h.Dropped() != 8 {
		t.Errorf("dropped %d, want 8", h.Dropped())
	}
	if _, err := h.Version(2); err == nil {
		t.Error("dropped version still retrievable")
	}
	if _, err := h.Version(10); err != nil {
		t.Errorf("latest version lost: %v", err)
	}
	all := h.All()
	if len(all) != 3 || all[0].Version() != 8 {
		t.Errorf("All = %d versions starting at %d", len(all), all[0].Version())
	}
}

func TestDroppedVersionsAreCollectable(t *testing.T) {
	// Section 3.3: "garbage collection must be used to reclaim data, the
	// access to which is dropped." With bounded retention the Go GC is that
	// collector: a version dropped from the history (and referenced nowhere
	// else) becomes unreachable and is reclaimed.
	h := NewHistory(1)
	collected := make(chan struct{})
	func() {
		db := New(relation.RepList, "R")
		runtime.SetFinalizer(db, func(*Database) { close(collected) })
		h.Append(db)
		next, _, err := db.Insert(nil, "R", tup(1), trace.None)
		if err != nil {
			t.Fatal(err)
		}
		h.Append(next) // limit 1: db (version 0) is dropped here
	}()
	deadline := time.After(5 * time.Second)
	for {
		runtime.GC()
		select {
		case <-collected:
			return
		case <-deadline:
			t.Fatal("dropped version was never collected")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestHistoryEmptyAndNegative(t *testing.T) {
	h := NewHistory(1)
	if h.Latest() != nil {
		t.Error("empty history has a latest version")
	}
	defer func() {
		if recover() == nil {
			t.Error("negative limit did not panic")
		}
	}()
	NewHistory(-1)
}
