// Package database implements the functional database object: a persistent
// directory mapping relation names to persistent relations, plus the
// update functions of Section 2.2 of the paper:
//
//	insert-in-db: databases x relation-names x tuples --> databases
//
// A database value is immutable. Updates build a new database that shares
// every unmodified relation with its predecessor ("DO and D1 both share the
// relation SO, while D1 and D2 share the relation S1. Thus, a net
// reconstruction of two relations, rather than four, has taken place").
// Read-only operations return the receiver itself — "For such transactions,
// no physical modification is necessary."
package database

import (
	"errors"
	"fmt"
	"sort"

	"funcdb/internal/eval"
	"funcdb/internal/pmap"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// ErrNoRelation reports a reference to an unknown relation name.
var ErrNoRelation = errors.New("no such relation")

// ErrRelationExists reports creating a relation that already exists.
var ErrRelationExists = errors.New("relation already exists")

// Database is one immutable database version.
type Database struct {
	dir     pmap.Map[relation.Relation]
	version int64
	ready   trace.TaskID
}

// New returns version 0 of a database with the named (empty) relations, all
// using representation rep.
func New(rep relation.Rep, names ...string) *Database {
	db := &Database{}
	for _, n := range names {
		db.dir, _ = db.dir.Set(nil, n, relation.New(rep), trace.None)
	}
	return db
}

// FromData builds version 0 with initial contents. names fixes the
// directory order (and must cover every key of data).
func FromData(rep relation.Rep, names []string, data map[string][]value.Tuple) *Database {
	db := &Database{}
	for _, n := range names {
		db.dir, _ = db.dir.Set(nil, n, relation.FromTuples(rep, data[n]), trace.None)
	}
	if len(names) != len(data) {
		panic(fmt.Sprintf("database: FromData got %d names for %d relations", len(names), len(data)))
	}
	return db
}

// FromRelations assembles a database view directly from relation values
// (untraced), preserving the given directory order. It is used by the
// pipelined engine to materialize versions from per-relation futures and
// by custom transactions to build scoped views.
func FromRelations(names []string, rels []relation.Relation, version int64) *Database {
	if len(names) != len(rels) {
		panic(fmt.Sprintf("database: FromRelations got %d names for %d relations", len(names), len(rels)))
	}
	db := &Database{version: version}
	for i, n := range names {
		db.dir, _ = db.dir.Set(nil, n, rels[i], trace.None)
	}
	return db
}

// Version returns the version number (0 for the initial database, +1 per
// update).
func (db *Database) Version() int64 { return db.version }

// Ready returns the task at which this version's directory became available
// (None for pre-existing versions).
func (db *Database) Ready() trace.TaskID { return db.ready }

// RelationNames returns the relation names in sorted order.
func (db *Database) RelationNames() []string {
	names := db.dir.Names()
	sort.Strings(names)
	return names
}

// RelationFast returns a relation without recording trace tasks, for
// reporting and validation.
func (db *Database) RelationFast(name string) (relation.Relation, bool) {
	return db.dir.GetFast(name)
}

// TotalTuples returns the number of tuples across all relations.
func (db *Database) TotalTuples() int {
	n := 0
	for _, name := range db.dir.Names() {
		rel, _ := db.dir.GetFast(name)
		n += rel.Len()
	}
	return n
}

// lookup resolves a relation with directory tracing.
func (db *Database) lookup(ctx *eval.Ctx, name string, after trace.TaskID) (relation.Relation, trace.TaskID, error) {
	rel, ok, step := db.dir.Get(ctx, name, after)
	if !ok {
		return nil, step, fmt.Errorf("%w: %q", ErrNoRelation, name)
	}
	return rel, step, nil
}

// withUpdated builds the successor database with one relation replaced. The
// directory rebuild starts as soon as the new relation exists as an object
// (relReady), not when the update completes.
func (db *Database) withUpdated(ctx *eval.Ctx, name string, rel relation.Relation, relReady trace.TaskID) (*Database, trace.TaskID) {
	dir, op := db.dir.Set(ctx, name, rel, relReady)
	return &Database{dir: dir, version: db.version + 1, ready: op.Ready}, op.Ready
}

// Insert adds tuple t to relation name, returning the successor database.
func (db *Database) Insert(ctx *eval.Ctx, name string, t value.Tuple, after trace.TaskID) (*Database, trace.Op, error) {
	rel, step, err := db.lookup(ctx, name, after)
	if err != nil {
		return db, trace.Op{Done: step}, err
	}
	newRel, op := rel.Insert(ctx, t, step)
	next, ready := db.withUpdated(ctx, name, newRel, op.Ready)
	return next, trace.Op{Ready: ready, Done: op.Done}, nil
}

// Find looks key up in relation name. The database is unchanged (and the
// receiver is the result database, shared in its entirety).
func (db *Database) Find(ctx *eval.Ctx, name string, key value.Item, after trace.TaskID) (value.Tuple, bool, trace.TaskID, error) {
	rel, step, err := db.lookup(ctx, name, after)
	if err != nil {
		return value.Tuple{}, false, step, err
	}
	tu, found, done := rel.Find(ctx, key, step)
	return tu, found, done, nil
}

// Delete removes key from relation name, returning the successor database
// and whether a tuple was removed. A miss still returns a (shared) valid
// database.
func (db *Database) Delete(ctx *eval.Ctx, name string, key value.Item, after trace.TaskID) (*Database, bool, trace.Op, error) {
	rel, step, err := db.lookup(ctx, name, after)
	if err != nil {
		return db, false, trace.Op{Done: step}, err
	}
	newRel, found, op := rel.Delete(ctx, key, step)
	if !found {
		// Nothing removed: the old database remains the current version.
		return db, false, trace.Op{Done: op.Done}, nil
	}
	next, ready := db.withUpdated(ctx, name, newRel, op.Ready)
	return next, true, trace.Op{Ready: ready, Done: op.Done}, nil
}

// Count returns the cardinality of relation name.
func (db *Database) Count(ctx *eval.Ctx, name string, after trace.TaskID) (int, trace.TaskID, error) {
	rel, step, err := db.lookup(ctx, name, after)
	if err != nil {
		return 0, step, err
	}
	// Counting demands the whole relation: one visit per tuple for the
	// list; tree representations still enumerate (an honest functional
	// count; cached cardinalities would be a different design).
	n := 0
	done := rel.Range(ctx, minItem(), maxItem(), step, func(value.Tuple) { n++ })
	return n, done, nil
}

// Scan returns the full contents of relation name in key order.
func (db *Database) Scan(ctx *eval.Ctx, name string, after trace.TaskID) ([]value.Tuple, trace.TaskID, error) {
	rel, step, err := db.lookup(ctx, name, after)
	if err != nil {
		return nil, step, err
	}
	var out []value.Tuple
	done := rel.Range(ctx, minItem(), maxItem(), step, func(tu value.Tuple) { out = append(out, tu) })
	return out, done, nil
}

// RangeScan returns the tuples of relation name with lo <= key <= hi.
func (db *Database) RangeScan(ctx *eval.Ctx, name string, lo, hi value.Item, after trace.TaskID) ([]value.Tuple, trace.TaskID, error) {
	rel, step, err := db.lookup(ctx, name, after)
	if err != nil {
		return nil, step, err
	}
	var out []value.Tuple
	done := rel.Range(ctx, lo, hi, step, func(tu value.Tuple) { out = append(out, tu) })
	return out, done, nil
}

// CreateRelation returns a successor database with a new empty relation.
func (db *Database) CreateRelation(ctx *eval.Ctx, name string, rep relation.Rep, after trace.TaskID) (*Database, trace.Op, error) {
	if _, exists := db.dir.GetFast(name); exists {
		return db, trace.Op{Done: after}, fmt.Errorf("%w: %q", ErrRelationExists, name)
	}
	dir, op := db.dir.Set(ctx, name, relation.New(rep), after)
	next := &Database{dir: dir, version: db.version + 1, ready: op.Ready}
	return next, op, nil
}

// ReplaceRelation returns a successor database with relation name bound to
// rel. It is the building block for custom (multi-operation) transactions.
func (db *Database) ReplaceRelation(ctx *eval.Ctx, name string, rel relation.Relation, relReady trace.TaskID) (*Database, trace.Op, error) {
	if _, exists := db.dir.GetFast(name); !exists {
		return db, trace.Op{}, fmt.Errorf("%w: %q", ErrNoRelation, name)
	}
	next, ready := db.withUpdated(ctx, name, rel, relReady)
	return next, trace.Op{Ready: ready, Done: ready}, nil
}

// Relation resolves a relation with directory tracing, for custom
// transactions that operate on relations directly.
func (db *Database) Relation(ctx *eval.Ctx, name string, after trace.TaskID) (relation.Relation, trace.TaskID, error) {
	return db.lookup(ctx, name, after)
}

// Equal reports whether two database versions have identical logical
// contents (same relations, same tuples).
func (db *Database) Equal(other *Database) bool {
	a, b := db.RelationNames(), other.RelationNames()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
		ra, _ := db.dir.GetFast(a[i])
		rb, _ := other.dir.GetFast(a[i])
		ta, tb := ra.Tuples(), rb.Tuples()
		if len(ta) != len(tb) {
			return false
		}
		for j := range ta {
			if !ta[j].Equal(tb[j]) {
				return false
			}
		}
	}
	return true
}

// SharedRelationsWith counts relations physically shared (identical values)
// between two versions — the paper's "net reconstruction of two relations,
// rather than four" measurement.
func (db *Database) SharedRelationsWith(other *Database) int {
	n := 0
	for _, name := range db.dir.Names() {
		ra, ok1 := db.dir.GetFast(name)
		rb, ok2 := other.dir.GetFast(name)
		if ok1 && ok2 && ra == rb {
			n++
		}
	}
	return n
}

// minItem and maxItem bound the key space for full scans.
func minItem() value.Item { return value.MinKey() }

func maxItem() value.Item { return value.MaxKey() }
