package database

import (
	"encoding/binary"
	"fmt"

	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// Snapshot codec: a full database version in the binary wire format of
// internal/value, the record the archive's snapshot files carry (the
// "complete archives" of Section 3.3 made durable).
//
//	snapshot := version:varint
//	            nrels:uvarint
//	            nrels x (name:string rep:uint8 tuples:EncodeTuples)
//
// Relations are encoded in sorted name order so equal versions have equal
// encodings.

// AppendSnapshot appends the wire form of db to dst.
func AppendSnapshot(dst []byte, db *Database) ([]byte, error) {
	dst = binary.AppendVarint(dst, db.Version())
	names := db.RelationNames()
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		rel, ok := db.RelationFast(name)
		if !ok {
			return dst, fmt.Errorf("database: snapshot lost relation %q", name)
		}
		dst = value.AppendString(dst, name)
		dst = append(dst, byte(rel.Rep()))
		enc, err := value.EncodeTuples(rel.Tuples())
		if err != nil {
			return dst, fmt.Errorf("database: snapshot of %q: %w", name, err)
		}
		dst = binary.AppendUvarint(dst, uint64(len(enc)))
		dst = append(dst, enc...)
	}
	return dst, nil
}

// DecodeSnapshot rebuilds a database version from its wire form. Corrupt
// input yields an error wrapping value.ErrCorrupt, never a panic.
func DecodeSnapshot(buf []byte) (*Database, error) {
	version, n := binary.Varint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad snapshot version", value.ErrCorrupt)
	}
	buf = buf[n:]
	nrels, n := binary.Uvarint(buf)
	if n <= 0 || nrels > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: bad relation count", value.ErrCorrupt)
	}
	buf = buf[n:]
	names := make([]string, 0, nrels)
	rels := make([]relation.Relation, 0, nrels)
	for i := uint64(0); i < nrels; i++ {
		name, rest, err := value.DecodeString(buf)
		if err != nil {
			return nil, err
		}
		buf = rest
		if len(buf) == 0 {
			return nil, fmt.Errorf("%w: missing representation byte", value.ErrCorrupt)
		}
		rep := relation.Rep(buf[0])
		buf = buf[1:]
		switch rep {
		case relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged:
		default:
			return nil, fmt.Errorf("%w: unknown representation %d", value.ErrCorrupt, rep)
		}
		size, n := binary.Uvarint(buf)
		if n <= 0 || size > uint64(len(buf)-n) {
			return nil, fmt.Errorf("%w: bad tuple block length", value.ErrCorrupt)
		}
		tuples, err := value.DecodeTuples(buf[n : n+int(size)])
		if err != nil {
			return nil, fmt.Errorf("relation %q: %w", name, err)
		}
		buf = buf[n+int(size):]
		names = append(names, name)
		rels = append(rels, relation.FromTuples(rep, tuples))
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing snapshot bytes", value.ErrCorrupt, len(buf))
	}
	return FromRelations(names, rels, version), nil
}

// AtVersion returns a view of db carrying the given version number. The
// directory is shared in its entirety; only the version label changes. The
// archive uses it to keep replayed versions on the engine's numbering (the
// engine counts every committed write, including no-op deletes that leave
// the database value itself unchanged).
func (db *Database) AtVersion(v int64) *Database {
	if db.version == v {
		return db
	}
	return &Database{dir: db.dir, version: v, ready: db.ready}
}
