package database

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"funcdb/internal/relation"
	"funcdb/internal/value"
)

func snapshotOf(t *testing.T, db *Database) []byte {
	t.Helper()
	buf, err := AppendSnapshot(nil, db)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestSnapshotRoundTrip(t *testing.T) {
	for _, rep := range []relation.Rep{relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged} {
		t.Run(rep.String(), func(t *testing.T) {
			data := map[string][]value.Tuple{
				"parts":  {value.NewTuple(value.Int(1), value.Str("bolt")), value.NewTuple(value.Int(2), value.Str("nut"))},
				"empty":  nil,
				"quotes": {value.NewTuple(value.Str(`a"b\c`), value.Int(-7))},
			}
			db := FromData(rep, []string{"parts", "empty", "quotes"}, data)
			got, err := DecodeSnapshot(snapshotOf(t, db))
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(db) {
				t.Fatal("round trip lost contents")
			}
			if got.Version() != db.Version() {
				t.Fatalf("version %d -> %d", db.Version(), got.Version())
			}
			rel, ok := got.RelationFast("parts")
			if !ok || rel.Rep() != rep {
				t.Fatalf("representation lost: %v", rel)
			}
		})
	}
}

func TestSnapshotKeepsVersionNumber(t *testing.T) {
	db := New(relation.RepList, "R")
	next, _, err := db.Insert(nil, "R", value.NewTuple(value.Int(1)), 0)
	if err != nil {
		t.Fatal(err)
	}
	next = next.AtVersion(41)
	got, err := DecodeSnapshot(snapshotOf(t, next))
	if err != nil {
		t.Fatal(err)
	}
	if got.Version() != 41 {
		t.Fatalf("version %d", got.Version())
	}
}

func TestAtVersionShares(t *testing.T) {
	db := New(relation.RepList, "R")
	v := db.AtVersion(7)
	if v.Version() != 7 {
		t.Fatalf("version %d", v.Version())
	}
	if db.Version() != 0 {
		t.Fatal("receiver mutated")
	}
	if db.AtVersion(0) != db {
		t.Error("no-op relabel allocated")
	}
	ra, _ := db.RelationFast("R")
	rb, _ := v.RelationFast("R")
	if ra != rb {
		t.Error("directory not shared")
	}
}

func TestDecodeSnapshotCorruptInputs(t *testing.T) {
	db := FromData(relation.RepList, []string{"R"}, map[string][]value.Tuple{
		"R": {value.NewTuple(value.Int(1), value.Str("x"))},
	})
	clean := snapshotOf(t, db)

	// Truncations at every boundary fail cleanly.
	for cut := 0; cut < len(clean); cut++ {
		if _, err := DecodeSnapshot(clean[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage is rejected.
	if _, err := DecodeSnapshot(append(append([]byte(nil), clean...), 0)); !errors.Is(err, value.ErrCorrupt) {
		t.Errorf("trailing byte: %v", err)
	}
}

// TestPropertyDecodeSnapshotNeverPanics mirrors the value codec's property
// test: arbitrary and mutated bytes must error, never panic.
func TestPropertyDecodeSnapshotNeverPanics(t *testing.T) {
	db := FromData(relation.Rep23, []string{"R", "S"}, map[string][]value.Tuple{
		"R": {value.NewTuple(value.Int(1), value.Str("x")), value.NewTuple(value.Int(2))},
		"S": {value.NewTuple(value.Str("k"), value.Int(9))},
	})
	clean, err := AppendSnapshot(nil, db)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, raw []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic: %v", r)
				ok = false
			}
		}()
		_, _ = DecodeSnapshot(raw)
		r := rand.New(rand.NewSource(seed))
		mut := append([]byte(nil), clean...)
		mut[r.Intn(len(mut))] ^= byte(1 + r.Intn(255))
		if got, err := DecodeSnapshot(mut); err == nil {
			// A mutation may land in string content and still decode; it
			// must at least decode to a structurally valid database.
			_ = got.TotalTuples()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
