package database

import "testing"

func TestDirectoryBasics(t *testing.T) {
	d := NewDirectory("S", "R", "T")
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if got := d.Names(); got[0] != "S" || got[1] != "R" || got[2] != "T" {
		t.Errorf("Names = %v (creation order lost)", got)
	}
	if got := d.Sorted(); got[0] != "R" || got[1] != "S" || got[2] != "T" {
		t.Errorf("Sorted = %v", got)
	}
	if i, ok := d.Index("R"); !ok || i != 1 {
		t.Errorf("Index(R) = %d, %v", i, ok)
	}
	if d.Has("X") {
		t.Error("Has(X) on absent name")
	}
}

func TestDirectoryWithIsPersistent(t *testing.T) {
	d := NewDirectory("R")
	d2 := d.With("S")
	if d.Len() != 1 || d.Has("S") {
		t.Error("With mutated the receiver")
	}
	if d2.Len() != 2 || !d2.Has("S") || !d2.Has("R") {
		t.Errorf("successor wrong: %v", d2.Names())
	}
	if i, ok := d2.Index("S"); !ok || i != 1 {
		t.Errorf("Index(S) = %d, %v", i, ok)
	}
	if d.With("R") != d {
		t.Error("With of an existing member should return the receiver")
	}
}

func TestDirectoryDuplicates(t *testing.T) {
	d := NewDirectory("R", "R", "S")
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (duplicate collapsed)", d.Len())
	}
	if i, _ := d.Index("R"); i != 0 {
		t.Errorf("duplicate lost first position: %d", i)
	}
}

func TestDirectoryEmpty(t *testing.T) {
	d := NewDirectory()
	if d.Len() != 0 || len(d.Sorted()) != 0 {
		t.Error("empty directory misbehaves")
	}
	if d.With("R").Len() != 1 {
		t.Error("growing an empty directory failed")
	}
}
