package database

import (
	"fmt"
	"sync"
)

// History retains the stream of database versions produced by transaction
// processing. Section 3.3 of the paper discusses the space cost of the
// functional approach: "there is reason to believe that some applications
// will permit 'complete archives' to be constructed ... For others, garbage
// collection must be used to reclaim data, the access to which is dropped."
//
// History models both policies: with Limit == 0 it is a complete archive
// (every version remains reachable); with Limit == n only the newest n
// versions stay reachable and older ones are released to Go's garbage
// collector — which reclaims exactly the cells not shared by surviving
// versions, the functional analogue of the paper's GC. It is safe for
// concurrent use.
type History struct {
	mu       sync.Mutex
	limit    int
	versions []*Database
	dropped  int64
}

// NewHistory returns a history retaining at most limit versions (0 = keep
// everything: a complete archive).
func NewHistory(limit int) *History {
	if limit < 0 {
		panic("database: negative history limit")
	}
	return &History{limit: limit}
}

// Append records a new version.
func (h *History) Append(db *Database) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.versions = append(h.versions, db)
	if h.limit > 0 && len(h.versions) > h.limit {
		over := len(h.versions) - h.limit
		// Release references so the Go GC can reclaim unshared structure.
		for i := 0; i < over; i++ {
			h.versions[i] = nil
		}
		h.versions = append(h.versions[:0:0], h.versions[over:]...)
		h.dropped += int64(over)
	}
}

// Len returns the number of retained versions.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.versions)
}

// Dropped returns how many versions have been released.
func (h *History) Dropped() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// Latest returns the newest retained version, or nil when empty.
func (h *History) Latest() *Database {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.versions) == 0 {
		return nil
	}
	return h.versions[len(h.versions)-1]
}

// Version returns the database with the given version number, if retained.
// This is the time-travel read the version stream makes free: any retained
// version can be queried exactly like the current one.
func (h *History) Version(v int64) (*Database, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := len(h.versions) - 1; i >= 0; i-- {
		if h.versions[i] != nil && h.versions[i].Version() == v {
			return h.versions[i], nil
		}
	}
	return nil, fmt.Errorf("database: version %d not retained (dropped %d, kept %d)", v, h.dropped, len(h.versions))
}

// All returns the retained versions oldest-first.
func (h *History) All() []*Database {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Database, len(h.versions))
	copy(out, h.versions)
	return out
}
