package database

import "sort"

// Directory is an immutable relation-name directory: the names of one
// database version in creation order, with a cached sorted order and an
// index for O(1) lookup. It is the shared, atomically publishable shape of
// the engine's directory state — a version's membership, separated from the
// (possibly still-computing) relation values themselves.
//
// A Directory never changes after construction; With builds a successor
// that shares nothing mutable with its predecessor, so a pointer to a
// Directory may be published across goroutines without synchronization.
type Directory struct {
	names  []string       // creation order
	sorted []string       // names, sorted (cached for full-barrier plans)
	index  map[string]int // name -> position in names
}

// NewDirectory builds a directory over the given names in order. Duplicate
// names keep their first position.
func NewDirectory(names ...string) *Directory {
	d := &Directory{
		names: make([]string, 0, len(names)),
		index: make(map[string]int, len(names)),
	}
	for _, n := range names {
		if _, dup := d.index[n]; dup {
			continue
		}
		d.index[n] = len(d.names)
		d.names = append(d.names, n)
	}
	d.sorted = sortedCopy(d.names)
	return d
}

// With returns a successor directory with name appended, or the receiver
// itself if name is already a member.
func (d *Directory) With(name string) *Directory {
	if _, ok := d.index[name]; ok {
		return d
	}
	nd := &Directory{
		names: append(append(make([]string, 0, len(d.names)+1), d.names...), name),
		index: make(map[string]int, len(d.names)+1),
	}
	for i, n := range nd.names {
		nd.index[n] = i
	}
	nd.sorted = sortedCopy(nd.names)
	return nd
}

// Index returns name's position in creation order.
func (d *Directory) Index(name string) (int, bool) {
	i, ok := d.index[name]
	return i, ok
}

// Has reports directory membership.
func (d *Directory) Has(name string) bool {
	_, ok := d.index[name]
	return ok
}

// Len returns the number of relations.
func (d *Directory) Len() int { return len(d.names) }

// Names returns the names in creation order. The slice is shared with the
// directory and must not be modified.
func (d *Directory) Names() []string { return d.names }

// Sorted returns the names in sorted order, computed once at construction.
// The slice is shared with the directory and must not be modified.
func (d *Directory) Sorted() []string { return d.sorted }

// Epoch returns the directory's membership epoch: a stamp that strictly
// increases whenever membership grows and is equal between directories
// with the same membership history. Because directories only ever append
// (With never removes or reorders), the epoch is simply the name count —
// but callers should treat it as an opaque monotone stamp. Consumers of
// atomically published directory snapshots (the engine publishes one per
// admitted version) can compare epochs across two loads to detect
// membership growth without comparing name sets; the consistency tests
// in internal/core assert exactly that monotonicity.
func (d *Directory) Epoch() int64 { return int64(len(d.names)) }

func sortedCopy(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}
