package trace

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestNilGraphIsInert(t *testing.T) {
	var g *Graph
	if g.Enabled() {
		t.Error("nil graph reports enabled")
	}
	if id := g.Task(KindVisit); id != None {
		t.Errorf("nil graph Task returned %d, want None", id)
	}
	if id := g.Join(1, 2); id != None {
		t.Errorf("nil graph Join returned %d, want None", id)
	}
	if n := g.Len(); n != 0 {
		t.Errorf("nil graph Len = %d", n)
	}
	p := g.Analyze()
	if p.Work != 0 || p.MaxWidth != 0 || p.Depth != 0 {
		t.Errorf("nil graph Analyze = %+v", p)
	}
	if lv := g.Levels(); lv != nil {
		t.Errorf("nil graph Levels = %v", lv)
	}
}

func TestTaskIDsAreSequential(t *testing.T) {
	g := New()
	a := g.Task(KindVisit)
	b := g.Task(KindVisit, a)
	c := g.Task(KindConstruct, a, b)
	if a != 1 || b != 2 || c != 3 {
		t.Errorf("ids = %d,%d,%d, want 1,2,3", a, b, c)
	}
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
}

func TestNoneDependenciesDropped(t *testing.T) {
	g := New()
	a := g.Task(KindVisit, None, None)
	if deps := g.Deps(a); len(deps) != 0 {
		t.Errorf("deps = %v, want empty", deps)
	}
	b := g.Task(KindVisit, None, a, None)
	if deps := g.Deps(b); len(deps) != 1 || deps[0] != a {
		t.Errorf("deps = %v, want [%d]", deps, a)
	}
}

func TestJoin(t *testing.T) {
	g := New()
	a := g.Task(KindVisit)
	b := g.Task(KindVisit)

	if got := g.Join(); got != None {
		t.Errorf("Join() = %d, want None", got)
	}
	if got := g.Join(None); got != None {
		t.Errorf("Join(None) = %d, want None", got)
	}
	if got := g.Join(a); got != a {
		t.Errorf("Join(a) = %d, want %d (no task created)", got, a)
	}
	if got := g.Join(a, None); got != a {
		t.Errorf("Join(a, None) = %d, want %d", got, a)
	}
	before := g.Len()
	j := g.Join(a, b)
	if g.Len() != before+1 {
		t.Error("Join(a,b) did not create exactly one task")
	}
	deps := g.Deps(j)
	if len(deps) != 2 {
		t.Errorf("join deps = %v", deps)
	}
}

func TestForwardReferencePanics(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Error("forward dependency did not panic")
		}
	}()
	g.Task(KindVisit, TaskID(99))
}

func TestAnalyzeChain(t *testing.T) {
	// A pure chain of n tasks: depth n, every ply width 1.
	g := New()
	prev := None
	const n = 10
	for i := 0; i < n; i++ {
		prev = g.Task(KindVisit, prev)
	}
	p := g.Analyze()
	if p.Depth != n {
		t.Errorf("Depth = %d, want %d", p.Depth, n)
	}
	if p.MaxWidth != 1 {
		t.Errorf("MaxWidth = %d, want 1", p.MaxWidth)
	}
	if p.AvgWidth != 1 {
		t.Errorf("AvgWidth = %v, want 1", p.AvgWidth)
	}
	if p.Work != n {
		t.Errorf("Work = %d, want %d", p.Work, n)
	}
}

func TestAnalyzeFlood(t *testing.T) {
	// n independent tasks: depth 1, width n.
	g := New()
	const n = 17
	for i := 0; i < n; i++ {
		g.Task(KindCompare)
	}
	p := g.Analyze()
	if p.Depth != 1 || p.MaxWidth != n || p.AvgWidth != n {
		t.Errorf("flood analysis = %+v", p)
	}
}

func TestAnalyzeDiamond(t *testing.T) {
	//    a
	//   / \
	//  b   c
	//   \ /
	//    d
	g := New()
	a := g.Task(KindVisit)
	b := g.Task(KindVisit, a)
	c := g.Task(KindVisit, a)
	d := g.Task(KindVisit, b, c)
	_ = d
	p := g.Analyze()
	if p.Depth != 3 {
		t.Errorf("Depth = %d, want 3", p.Depth)
	}
	wantWidths := []int{1, 2, 1}
	for i, w := range wantWidths {
		if p.Widths[i] != w {
			t.Errorf("Widths[%d] = %d, want %d", i, p.Widths[i], w)
		}
	}
	if p.MaxWidth != 2 {
		t.Errorf("MaxWidth = %d, want 2", p.MaxWidth)
	}
}

func TestAnalyzeWavefront(t *testing.T) {
	// Two chains of length n where chain 2's step i depends on chain 1's
	// step i (a pipeline wavefront). Depth should be n+1 and the interior
	// plies should have width 2.
	g := New()
	const n = 8
	chain1 := make([]TaskID, n)
	prev := None
	for i := 0; i < n; i++ {
		prev = g.Task(KindVisit, prev)
		chain1[i] = prev
	}
	prev = None
	for i := 0; i < n; i++ {
		prev = g.Task(KindVisit, prev, chain1[i])
	}
	p := g.Analyze()
	if p.Depth != n+1 {
		t.Errorf("Depth = %d, want %d", p.Depth, n+1)
	}
	if p.MaxWidth != 2 {
		t.Errorf("MaxWidth = %d, want 2", p.MaxWidth)
	}
}

func TestKindCounts(t *testing.T) {
	g := New()
	g.Task(KindVisit)
	g.Task(KindVisit)
	g.Task(KindMerge)
	p := g.Analyze()
	if p.KindCounts[KindVisit] != 2 || p.KindCounts[KindMerge] != 1 {
		t.Errorf("KindCounts = %v", p.KindCounts)
	}
}

func TestKindString(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind(%d).String() = %q", k, s)
		}
	}
	if s := Kind(200).String(); !strings.HasPrefix(s, "Kind(") {
		t.Errorf("out-of-range kind String() = %q", s)
	}
}

func TestLevelsMatchAnalyze(t *testing.T) {
	g := New()
	r := rand.New(rand.NewSource(1))
	var ids []TaskID
	for i := 0; i < 200; i++ {
		var deps []TaskID
		for j := 0; j < r.Intn(3); j++ {
			if len(ids) > 0 {
				deps = append(deps, ids[r.Intn(len(ids))])
			}
		}
		ids = append(ids, g.Task(KindOther, deps...))
	}
	levels := g.Levels()
	widths := map[int32]int{}
	var maxLv int32
	for _, lv := range levels {
		widths[lv]++
		if lv > maxLv {
			maxLv = lv
		}
	}
	p := g.Analyze()
	if p.Depth != int(maxLv)+1 {
		t.Errorf("Depth = %d, Levels max = %d", p.Depth, maxLv)
	}
	for lv, w := range widths {
		if p.Widths[lv] != w {
			t.Errorf("ply %d: Analyze width %d, Levels width %d", lv, p.Widths[lv], w)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	// Concurrent Task calls must not race or corrupt the table. Run with
	// -race to exercise the mutex.
	g := New()
	var wg sync.WaitGroup
	const workers, each = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			prev := None
			for i := 0; i < each; i++ {
				prev = g.Task(KindVisit, prev)
			}
		}()
	}
	wg.Wait()
	if g.Len() != workers*each {
		t.Errorf("Len = %d, want %d", g.Len(), workers*each)
	}
	p := g.Analyze()
	if p.Work != workers*each {
		t.Errorf("Work = %d", p.Work)
	}
	// Each worker built a chain of length `each`, so depth >= each.
	if p.Depth < each {
		t.Errorf("Depth = %d, want >= %d", p.Depth, each)
	}
}

func TestWriteDOT(t *testing.T) {
	g := New()
	a := g.Task(KindMerge)
	g.Task(KindDispatch, a)
	var b strings.Builder
	if err := g.WriteDOT(&b, "test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"digraph", "t1", "t2", "t1 -> t2", "merge", "dispatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	var nb strings.Builder
	var nilG *Graph
	if err := nilG.WriteDOT(&nb, "x"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nb.String(), "digraph") {
		t.Error("nil graph DOT not rendered")
	}
}

func TestWidthHistogram(t *testing.T) {
	p := Plies{Widths: []int{1, 3, 3, 1, 2}}
	h := p.WidthHistogram()
	want := [][2]int{{1, 2}, {2, 1}, {3, 2}}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v, want %v", h, want)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("histogram[%d] = %v, want %v", i, h[i], want[i])
		}
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	g := New()
	a := g.Task(KindVisit)
	g.Task(KindVisit, a)
	kinds, deps := g.Snapshot()
	kinds[0] = KindMerge
	deps[1][0] = TaskID(42)
	if g.KindOf(1) != KindVisit {
		t.Error("Snapshot kinds alias internal state")
	}
	if g.Deps(2)[0] != a {
		t.Error("Snapshot deps alias internal state")
	}
}

func TestPropertyDepthAtMostWork(t *testing.T) {
	// For any DAG, depth <= work, max width <= work, and sum of widths ==
	// work.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := New()
		var ids []TaskID
		n := 1 + r.Intn(60)
		for i := 0; i < n; i++ {
			var deps []TaskID
			for j := 0; j < r.Intn(4); j++ {
				if len(ids) > 0 {
					deps = append(deps, ids[r.Intn(len(ids))])
				}
			}
			ids = append(ids, g.Task(KindOther, deps...))
		}
		p := g.Analyze()
		sum := 0
		for _, w := range p.Widths {
			sum += w
		}
		return p.Depth <= p.Work && p.MaxWidth <= p.Work && sum == p.Work
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
