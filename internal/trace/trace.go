// Package trace records the dataflow task graph of a functional database
// execution and analyzes its parallelism.
//
// It is the reproduction of "mode 1" of the Rediflow simulator used in
// Section 4 of Keller & Lindstrom 1985: "The first mode assumes an arbitrary
// degree of parallelism (effectively infinitely-many processors), unit task
// lengths, and zero communication costs. ... the simulator measures maximum
// and average concurrency in the form of 'ply width', where a ply is a
// maximal set of tasks, all of which can be executed in parallel."
//
// Every primitive step of the engine (visiting a list cell, constructing a
// new cell, one merge arbitration, one apply-stream unfolding, building a
// response, ...) registers one unit task together with the tasks it depends
// on. Because dependencies always refer to previously created tasks, the
// recorded graph is a DAG by construction. Ply p is the set of tasks whose
// longest dependency chain from a root has length p; the width profile of
// the plies is exactly the paper's concurrency measure.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// TaskID names one recorded task. The zero TaskID means "no task" and is
// accepted (and ignored) anywhere a dependency may be passed, so callers can
// thread "previous task" values without checking for the untraced case.
type TaskID int32

// None is the absent task, usable as a dependency placeholder.
const None TaskID = 0

// Kind classifies a task by the primitive operation it models. Kinds do not
// affect the analysis (all tasks have unit length, per the paper's mode 1);
// they exist for reporting, DOT rendering and per-kind statistics.
type Kind uint8

// Task kinds, one per primitive operation of the engine.
const (
	KindOther     Kind = iota // unclassified unit work
	KindVisit                 // inspecting one cell/node of a structure
	KindConstruct             // allocating one new cell/node
	KindCompare               // one key comparison
	KindDirectory             // building one directory (database version) cell
	KindMerge                 // one merge arbitration step
	KindUnfold                // one apply-stream unfolding step
	KindRespond               // constructing one transaction response
	KindDispatch              // starting one transaction
	KindRoute                 // routing one message in the network substrate
	KindChoose                // one choose selection at a site
	numKinds
)

var kindNames = [numKinds]string{
	"other", "visit", "construct", "compare", "directory",
	"merge", "unfold", "respond", "dispatch", "route", "choose",
}

// String returns the kind name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// task is one recorded unit task.
type task struct {
	kind Kind
	deps []TaskID
}

// Graph accumulates tasks. A nil *Graph is a valid "tracing off" graph: all
// recording methods are no-ops returning None, so engine code can thread a
// graph unconditionally. Methods are safe for concurrent use.
type Graph struct {
	mu    sync.Mutex
	tasks []task
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Enabled reports whether the graph records tasks (i.e. is non-nil).
func (g *Graph) Enabled() bool { return g != nil }

// Task records one unit task of the given kind depending on deps. Zero
// (None) dependencies are dropped. It returns the new task's ID, or None on
// a nil graph.
func (g *Graph) Task(kind Kind, deps ...TaskID) TaskID {
	if g == nil {
		return None
	}
	var kept []TaskID
	for _, d := range deps {
		if d != None {
			kept = append(kept, d)
		}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, d := range kept {
		if int(d) > len(g.tasks) {
			panic(fmt.Sprintf("trace: dependency %d refers to a task that does not exist yet (have %d)", d, len(g.tasks)))
		}
	}
	g.tasks = append(g.tasks, task{kind: kind, deps: kept})
	return TaskID(len(g.tasks)) // IDs are 1-based; 0 is None
}

// Join records a no-op task depending on all the given tasks, used to give a
// single handle for "all of these have happened". With zero or one live
// dependency it avoids creating a task and returns the dependency directly.
func (g *Graph) Join(deps ...TaskID) TaskID {
	if g == nil {
		return None
	}
	live := deps[:0:0]
	for _, d := range deps {
		if d != None {
			live = append(live, d)
		}
	}
	switch len(live) {
	case 0:
		return None
	case 1:
		return live[0]
	}
	return g.Task(KindOther, live...)
}

// Len returns the number of recorded tasks.
func (g *Graph) Len() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.tasks)
}

// KindOf returns the kind of task id. It panics on an invalid id.
func (g *Graph) KindOf(id TaskID) Kind {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.tasks[id-1].kind
}

// Deps returns a copy of the dependencies of task id.
func (g *Graph) Deps(id TaskID) []TaskID {
	g.mu.Lock()
	defer g.mu.Unlock()
	d := g.tasks[id-1].deps
	out := make([]TaskID, len(d))
	copy(out, d)
	return out
}

// Plies is the mode-1 analysis result: the paper's concurrency profile.
type Plies struct {
	// Widths[p] is the number of tasks whose longest dependency chain has
	// length p (ply p). len(Widths) is the schedule depth (critical path
	// length in plies).
	Widths []int
	// MaxWidth is the paper's "maximum concurrency": the widest ply.
	MaxWidth int
	// AvgWidth is the paper's "average concurrency": total work divided by
	// depth.
	AvgWidth float64
	// Depth is the number of plies (critical path length, in unit tasks).
	Depth int
	// Work is the total number of tasks.
	Work int
	// KindCounts tallies tasks per kind.
	KindCounts map[Kind]int
}

// Analyze levels the DAG: each task is assigned ply = 1 + max ply of its
// dependencies (roots at ply 0), then plies are tallied into a width
// profile. This is valid because dependencies always precede dependents in
// recording order, so a single forward pass suffices.
func (g *Graph) Analyze() Plies {
	if g == nil {
		return Plies{KindCounts: map[Kind]int{}}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	level := make([]int32, len(g.tasks))
	depth := int32(0)
	for i, t := range g.tasks {
		lv := int32(0)
		for _, d := range t.deps {
			if dl := level[d-1] + 1; dl > lv {
				lv = dl
			}
		}
		level[i] = lv
		if lv > depth {
			depth = lv
		}
	}
	widths := make([]int, depth+1)
	for _, lv := range level {
		widths[lv]++
	}
	maxW := 0
	for _, w := range widths {
		if w > maxW {
			maxW = w
		}
	}
	kinds := make(map[Kind]int, numKinds)
	for _, t := range g.tasks {
		kinds[t.kind]++
	}
	p := Plies{
		Widths:     widths,
		MaxWidth:   maxW,
		Depth:      len(widths),
		Work:       len(g.tasks),
		KindCounts: kinds,
	}
	if p.Depth > 0 {
		p.AvgWidth = float64(p.Work) / float64(p.Depth)
	}
	return p
}

// CriticalPath returns the length (in unit tasks) of the longest dependency
// chain, i.e. the minimum possible schedule length on unlimited processors.
func (g *Graph) CriticalPath() int { return g.Analyze().Depth }

// Levels returns the ply index of every task, in task order. It is used by
// the mode-2 scheduler to process tasks in a valid topological order.
func (g *Graph) Levels() []int32 {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	level := make([]int32, len(g.tasks))
	for i, t := range g.tasks {
		lv := int32(0)
		for _, d := range t.deps {
			if dl := level[d-1] + 1; dl > lv {
				lv = dl
			}
		}
		level[i] = lv
	}
	return level
}

// Snapshot returns the raw task table as parallel slices (kinds, deps),
// giving analysis code (the scheduler) lock-free access to a consistent
// view. The returned slices are copies.
func (g *Graph) Snapshot() (kinds []Kind, deps [][]TaskID) {
	if g == nil {
		return nil, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	kinds = make([]Kind, len(g.tasks))
	deps = make([][]TaskID, len(g.tasks))
	for i, t := range g.tasks {
		kinds[i] = t.kind
		d := make([]TaskID, len(t.deps))
		copy(d, t.deps)
		deps[i] = d
	}
	return kinds, deps
}

// WriteDOT renders the graph in Graphviz DOT format, one node per task
// colored by kind, for the figure reproductions. Graphs above a few
// thousand tasks are unwieldy to render; callers should restrict DOT output
// to small demonstration runs.
func (g *Graph) WriteDOT(w io.Writer, title string) error {
	if g == nil {
		_, err := fmt.Fprintln(w, "digraph empty {}")
		return err
	}
	kinds, deps := g.Snapshot()
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=9];\n", title); err != nil {
		return err
	}
	for i, k := range kinds {
		if _, err := fmt.Fprintf(w, "  t%d [label=\"%d:%s\"];\n", i+1, i+1, k); err != nil {
			return err
		}
	}
	for i, ds := range deps {
		for _, d := range ds {
			if _, err := fmt.Fprintf(w, "  t%d -> t%d;\n", d, i+1); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Op is the trace handle returned by one structure-level operation
// (insert, delete, directory update). It separates two moments that
// leniency distinguishes:
//
//   - Ready: when the operation's *result version* exists as an object and
//     may be handed to later transactions (the head-cell constructor).
//     None means the result is a pre-existing object (e.g. a no-op delete).
//   - Done: when the operation's *outcome* (found/not-found, completion) is
//     fully determined, gating the response to the submitting user.
//
// A strict system would have Ready == Done; the gap between them is exactly
// the pipelining the paper measures.
type Op struct {
	Ready TaskID
	Done  TaskID
}

// WidthHistogram summarizes a ply profile as sorted (width, number of plies
// with that width) pairs, for compact reporting.
func (p Plies) WidthHistogram() [][2]int {
	counts := map[int]int{}
	for _, w := range p.Widths {
		counts[w]++
	}
	keys := make([]int, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][2]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, [2]int{k, counts[k]})
	}
	return out
}
