// The cluster equivalence harness: seeded mixed workloads through a
// 3-node real-network (TCP) cluster must produce byte-identical
// responses and equal final databases to one in-process Store — the
// distribution layer (placement, forwarding, redirects, the wire) must
// be invisible to a client. Runs under -race in CI.
package cluster_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/cluster"
)

// testCluster is an in-process 3-node real-TCP cluster.
type testCluster struct {
	addrs []string
	nodes []*funcdb.ClusterNode
}

// startCluster binds n listeners first (so every node knows the full
// membership), then opens and serves the nodes. Each node's archive
// lives in its own temp directory.
func startCluster(t testing.TB, n int, relations []string) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tc := &testCluster{addrs: addrs, nodes: make([]*funcdb.ClusterNode, n)}
	for i := range lns {
		node, err := funcdb.OpenClusterNode(funcdb.ClusterNodeConfig{
			ID:        i,
			Nodes:     addrs,
			Listener:  lns[i],
			Dir:       t.TempDir(),
			Relations: relations,
			Durability: []funcdb.DurabilityOption{
				funcdb.GroupCommit(2 * time.Millisecond),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[i] = node
		go node.Serve()
	}
	t.Cleanup(tc.shutdown)
	return tc
}

func (tc *testCluster) shutdown() {
	for _, n := range tc.nodes {
		if n != nil {
			n.Shutdown()
		}
	}
	tc.nodes = nil
}

// merged gathers the cluster's final state: relation name -> rendered
// tuples, assembled from every primary.
func (tc *testCluster) merged(t *testing.T) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	for _, n := range tc.nodes {
		cur := n.Store().Current()
		for _, name := range cur.RelationNames() {
			rel, _ := cur.RelationFast(name)
			var tuples []string
			for _, tu := range rel.Tuples() {
				tuples = append(tuples, tu.String())
			}
			if _, dup := out[name]; dup {
				t.Fatalf("relation %q present on two primaries", name)
			}
			out[name] = tuples
		}
	}
	return out
}

// storeContents renders one store the same way.
func storeContents(s *funcdb.Store) map[string][]string {
	out := map[string][]string{}
	cur := s.Current()
	for _, name := range cur.RelationNames() {
		rel, _ := cur.RelationFast(name)
		var tuples []string
		for _, tu := range rel.Tuples() {
			tuples = append(tuples, tu.String())
		}
		out[name] = tuples
	}
	return out
}

func diffContents(t *testing.T, want, got map[string][]string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("relation sets differ: %d in-process vs %d cluster", len(want), len(got))
	}
	for name, wtuples := range want {
		gtuples, ok := got[name]
		if !ok {
			t.Fatalf("relation %q missing from the cluster", name)
		}
		if strings.Join(wtuples, " ") != strings.Join(gtuples, " ") {
			t.Fatalf("relation %q diverged:\n  in-process: %v\n  cluster:    %v", name, wtuples, gtuples)
		}
	}
}

// executor is the surface the harness drives; the in-process store, the
// cluster client, and a plain gateway connection all satisfy it.
type executor interface {
	Exec(q string) (funcdb.Response, error)
	ExecBatch(qs []string) ([]funcdb.Response, error)
}

// seededQueries is the PR 4 mixed workload at the query-text level:
// reads, writes, ranges, creates (including duplicate creates — error
// responses) and unknown-relation probes.
func seededQueries(r *rand.Rand, n int, rels []string, allowCreate bool) []string {
	names := append([]string(nil), rels...)
	created := 0
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		rel := names[r.Intn(len(names))]
		k := r.Intn(12)
		switch r.Intn(10) {
		case 0, 1:
			out = append(out, fmt.Sprintf("insert (%d, \"v%d\") into %s", k, k, rel))
		case 2:
			out = append(out, fmt.Sprintf("delete %d from %s", k, rel))
		case 3:
			out = append(out, fmt.Sprintf("find %d in %s", k, rel))
		case 4:
			out = append(out, "count "+rel)
		case 5:
			out = append(out, "scan "+rel)
		case 6:
			out = append(out, fmt.Sprintf("range 2 9 in %s", rel))
		case 7:
			if allowCreate && r.Intn(2) == 0 && created < 3 {
				name := fmt.Sprintf("N%d", created)
				created++
				names = append(names, name)
				out = append(out, "create "+name+" using avl")
			} else {
				out = append(out, "create "+names[r.Intn(len(names))])
			}
		case 8:
			out = append(out, fmt.Sprintf("find %d in NOPE", k))
		default:
			out = append(out, fmt.Sprintf("insert (%d, \"w\") into %s", 20+k, rel))
		}
	}
	return out
}

// runChunked drives mixed single statements and batches with seeded
// chunk boundaries, so every executor sees the identical call sequence.
func runChunked(ex executor, queries []string, chunkSeed int64) ([]string, error) {
	r := rand.New(rand.NewSource(chunkSeed))
	var out []string
	for i := 0; i < len(queries); {
		n := 1 + r.Intn(16)
		if i+n > len(queries) {
			n = len(queries) - i
		}
		if n == 1 {
			resp, err := ex.Exec(queries[i])
			if err != nil {
				return nil, fmt.Errorf("exec %q: %w", queries[i], err)
			}
			out = append(out, resp.String())
		} else {
			resps, err := ex.ExecBatch(queries[i : i+n])
			if err != nil {
				return nil, fmt.Errorf("batch at %d: %w", i, err)
			}
			for _, resp := range resps {
				out = append(out, resp.String())
			}
		}
		i += n
	}
	return out, nil
}

// clusterRels covers all three nodes of the test clusters: under the
// placement hash with n=3, S/U/V land on node 0, R/T on node 1, W on
// node 2.
var clusterRels = []string{"R", "S", "T", "U", "V", "W"}

// referenceRun executes the workload on one in-process store with the
// same origin and returns the rendered responses plus the final state.
func referenceRun(t *testing.T, queries []string, chunkSeed int64) ([]string, map[string][]string) {
	t.Helper()
	ref := funcdb.MustOpen(funcdb.WithRelations(clusterRels...), funcdb.WithOrigin("c0"))
	defer ref.Close()
	out, err := runChunked(ref, queries, chunkSeed)
	if err != nil {
		t.Fatal(err)
	}
	ref.Barrier()
	return out, storeContents(ref)
}

func compareRuns(t *testing.T, queries, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%d reference responses vs %d cluster responses", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("response %d (%q) differs:\n  in-process: %s\n  cluster:    %s",
				i, queries[i], want[i], got[i])
		}
	}
}

// TestClusterEquivalence: the same seeded workload, the same chunking,
// one run in-process and one through DialCluster against a 3-node
// real-TCP cluster — responses must render byte-identically and the
// merged final databases must be equal. The cluster client is given the
// full membership, so it routes every statement straight to its owner.
func TestClusterEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			queries := seededQueries(r, 120+r.Intn(60), clusterRels, true)
			want, wantState := referenceRun(t, queries, seed*7)

			tc := startCluster(t, 3, clusterRels)
			cc, err := client.DialCluster(tc.addrs, client.WithClusterOrigin("c0"))
			if err != nil {
				t.Fatal(err)
			}
			defer cc.Close()
			got, err := runChunked(cc, queries, seed*7)
			if err != nil {
				t.Fatal(err)
			}
			compareRuns(t, queries, want, got)
			for _, n := range tc.nodes {
				n.Store().Barrier()
			}
			diffContents(t, wantState, tc.merged(t))
		})
	}
}

// TestClusterSeedDiscovery: a cluster client given ONE seed address
// (not the full membership) must still complete the workload — placement
// is discovered by chasing one Redirect per relation and cached, so a
// relation's second statement goes straight to its owner.
func TestClusterSeedDiscovery(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	queries := seededQueries(r, 150, clusterRels, true)
	want, wantState := referenceRun(t, queries, 99)

	tc := startCluster(t, 3, clusterRels)
	cc, err := client.DialCluster(tc.addrs[:1], client.WithClusterOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	got, err := runChunked(cc, queries, 99)
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, queries, want, got)
	for _, n := range tc.nodes {
		n.Store().Barrier()
	}
	diffContents(t, wantState, tc.merged(t))
}

// TestClusterGatewayEquivalence: a PLAIN client (no cluster awareness)
// dialed into one node must see the identical response stream too — the
// node is a transparent gateway, forwarding statements for relations it
// does not own over its persistent peer connections.
func TestClusterGatewayEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	queries := seededQueries(r, 160, clusterRels, true)
	want, wantState := referenceRun(t, queries, 13)

	tc := startCluster(t, 3, clusterRels)
	// Dial the node that owns none of ... any node works; pick node 1.
	c, err := client.Dial(tc.addrs[1], client.WithOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := runChunked(c, queries, 13)
	if err != nil {
		t.Fatal(err)
	}
	compareRuns(t, queries, want, got)
	for _, n := range tc.nodes {
		n.Store().Barrier()
	}
	diffContents(t, wantState, tc.merged(t))
}

// relOwnedBy finds a relation name owned by the given node index.
func relOwnedBy(t *testing.T, tc *testCluster, node int) string {
	t.Helper()
	for _, rel := range clusterRels {
		if cluster.OwnerIndex(rel, len(tc.addrs)) == node {
			return rel
		}
	}
	t.Fatalf("no test relation owned by node %d", node)
	return ""
}

// TestReplicaStaleness: a replica read is stamped with a version that
// never exceeds the primary's, and after the primary settles the replica
// catches up to the exact primary version and contents.
func TestReplicaStaleness(t *testing.T) {
	tc := startCluster(t, 3, clusterRels)
	rel := relOwnedBy(t, tc, 2)
	owner := tc.nodes[2]

	// Writes go to the owner; a client anchored at node 0 reads the
	// replica.
	cc, err := client.DialCluster(tc.addrs, client.WithClusterOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	const writes = 60
	for i := 0; i < writes; i++ {
		if _, err := cc.Exec(fmt.Sprintf("insert (%d, \"v\") into %s", i, rel)); err != nil {
			t.Fatal(err)
		}
		if i%10 != 0 {
			continue
		}
		resp, err := cc.ExecReplica("count " + rel)
		if err != nil {
			t.Fatal(err)
		}
		primary := owner.Store().Current().Version()
		if resp.Version > primary {
			t.Fatalf("replica read version %d exceeds primary version %d", resp.Version, primary)
		}
		if int64(resp.Count) > primary {
			t.Fatalf("replica count %d exceeds primary version %d", resp.Count, primary)
		}
	}

	// Settle the primary, then wait for the replica to catch up: the
	// stream is asynchronous, but it must converge.
	owner.Store().Barrier()
	primary := owner.Store().Current().Version()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if v := tc.nodes[0].ReplicaVersion(2); v == primary {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at %d, primary at %d", tc.nodes[0].ReplicaVersion(2), primary)
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp, err := cc.ExecReplica("count " + rel)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Version != primary {
		t.Fatalf("caught-up replica read stamped %d, primary at %d", resp.Version, primary)
	}
	if resp.Count != writes {
		t.Fatalf("caught-up replica sees %d tuples, want %d", resp.Count, writes)
	}
	// The primary path never stamps a version: reads at the owner are
	// current by construction.
	direct, err := cc.Exec("count " + rel)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Version != 0 {
		t.Fatalf("primary read unexpectedly stamped version %d", direct.Version)
	}
}

// TestForwardedBatchErrorIndex: a batch with an unparseable statement
// must report the statement's ORIGINAL index wherever translation
// happens — at the cluster client, or at a gateway node that would have
// forwarded the rest of the batch to other owners.
func TestForwardedBatchErrorIndex(t *testing.T) {
	tc := startCluster(t, 3, clusterRels)
	// Build a batch whose statements belong to different owners, with the
	// broken statement NOT first, so the failure crosses the split/
	// forward machinery.
	batch := []string{
		"insert (1, \"a\") into " + relOwnedBy(t, tc, 0),
		"insert (2, \"b\") into " + relOwnedBy(t, tc, 1),
		"insert (3 BROKEN",
		"insert (4, \"d\") into " + relOwnedBy(t, tc, 2),
	}

	cc, err := client.DialCluster(tc.addrs, client.WithClusterOrigin("cc"))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	_, err = cc.ExecBatch(batch)
	var be *funcdb.BatchError
	if !asBatchError(err, &be) || be.Index != 2 {
		t.Fatalf("cluster client: want BatchError index 2, got %v", err)
	}

	// Same through a plain gateway connection: the node translates the
	// batch before routing any of it, so the index survives even though
	// the healthy statements would have been forwarded.
	c, err := client.Dial(tc.addrs[0], client.WithOrigin("pc"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.ExecBatch(batch)
	if !asBatchError(err, &be) || be.Index != 2 {
		t.Fatalf("gateway: want BatchError index 2, got %v", err)
	}
	// Nothing of the failed batch was admitted anywhere.
	for _, n := range tc.nodes {
		n.Store().Barrier()
		if tuples := n.Store().Current().TotalTuples(); tuples != 0 {
			t.Fatalf("node %d admitted %d tuples from a failed batch", n.ID(), tuples)
		}
	}
}

// asBatchError unwraps err into a *funcdb.BatchError.
func asBatchError(err error, be **funcdb.BatchError) bool {
	return errors.As(err, be)
}
