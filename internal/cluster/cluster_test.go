package cluster

import (
	"errors"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/relation"
	"funcdb/internal/session"
	"funcdb/internal/value"
)

// fakeStore is a minimal LocalStore: a bare engine, recording batches.
type fakeStore struct {
	eng     *core.Engine
	batches [][]core.Transaction
}

func newFakeStore(rels ...string) *fakeStore {
	return &fakeStore{eng: core.NewEngine(database.New(relation.RepList, rels...))}
}

func (f *fakeStore) SubmitTagged(txs []core.Transaction) []*session.Future {
	cp := make([]core.Transaction, len(txs))
	copy(cp, txs)
	f.batches = append(f.batches, cp)
	return f.eng.SubmitBatch(txs)
}
func (f *fakeStore) Lanes() int                  { return 1 }
func (f *fakeStore) Durable() bool               { return false }
func (f *fakeStore) Barrier()                    { f.eng.Barrier() }
func (f *fakeStore) DurabilityErr() error        { return nil }
func (f *fakeStore) Current() *database.Database { return f.eng.Current() }
func (f *fakeStore) SubscribeLog(int64, func(int64, []byte)) (func(), error) {
	return nil, errors.New("fake store has no log")
}

// threeNode builds a node 0 of a fictitious 3-node cluster whose peers
// are never dialed (tests stay on the local path).
func threeNode(t *testing.T, rels ...string) (*Node, *fakeStore) {
	t.Helper()
	fs := newFakeStore(rels...)
	n, err := New(Config{
		ID:    0,
		Addrs: []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"},
		Store: fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(n.Close)
	return n, fs
}

func TestOwnedRelationsPartition(t *testing.T) {
	rels := []string{"R", "S", "T", "U", "V", "W", "N0", "N1"}
	seen := map[string]int{}
	for id := 0; id < 3; id++ {
		for _, rel := range OwnedRelations(rels, id, 3) {
			if owner, dup := seen[rel]; dup {
				t.Fatalf("%q owned by both %d and %d", rel, owner, id)
			}
			seen[rel] = id
			if OwnerIndex(rel, 3) != id {
				t.Fatalf("OwnedRelations disagrees with OwnerIndex for %q", rel)
			}
		}
	}
	if len(seen) != len(rels) {
		t.Fatalf("partition covers %d of %d relations", len(seen), len(rels))
	}
}

// TestLocalRunsBatchTogether: consecutive same-owner statements reach
// the store as one batch — the router must not break up a local run.
func TestLocalRunsBatchTogether(t *testing.T) {
	// S, U, V all hash to node 0 of 3.
	n, fs := threeNode(t, "S", "U", "V")
	sess := n.Session("c0")
	resps, err := sess.ExecBatch([]string{
		`insert (1, "a") into S`,
		`insert (2, "b") into U`,
		"count V",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resps {
		if r.Err != nil {
			t.Fatalf("stmt %d: %v", i, r.Err)
		}
	}
	if len(fs.batches) != 1 || len(fs.batches[0]) != 3 {
		t.Fatalf("expected one 3-statement local batch, got %d batches", len(fs.batches))
	}
	if got := resps[2].Tag(); got != "c0#2" {
		t.Fatalf("tags drifted through the router: %s", got)
	}
}

// TestCustomTransactionRouting: a custom transaction confined to local
// relations runs; one spanning owners (or owned elsewhere — a closure
// cannot be forwarded) resolves with the deferred-coordination error.
func TestCustomTransactionRouting(t *testing.T) {
	n, _ := threeNode(t, "S", "U")
	local := core.Custom(nil, []string{"S"}, nil)
	if got := n.routeOf(local); got != 0 {
		t.Fatalf("local custom routed to %d", got)
	}
	// R hashes to node 1: a local+remote read set cannot be coordinated.
	spanning := core.Custom(nil, []string{"S", "R"}, nil)
	if got := n.routeOf(spanning); got != -1 {
		t.Fatalf("spanning custom routed to %d, want -1", got)
	}
	remote := core.Custom(nil, []string{"R"}, nil)
	if got := n.routeOf(remote); got != -1 {
		t.Fatalf("remote custom routed to %d, want -1 (closures have no wire form)", got)
	}

	futs := n.SubmitTagged([]core.Transaction{spanning})
	if resp := futs[0].Force(); resp.Err == nil {
		t.Fatal("spanning custom transaction admitted")
	}
}

// TestForwardWithoutQueryText: a constructed (non-symbolic) transaction
// for a remote owner resolves with a clear error instead of crossing the
// wire half-described.
func TestForwardWithoutQueryText(t *testing.T) {
	n, _ := threeNode(t, "S")
	tx := core.Insert("R", value.NewTuple(value.Int(1), value.Str("a"))) // R is node 1's; no Query text
	tx.Origin, tx.Seq = "c0", 0
	resp := n.SubmitTagged([]core.Transaction{tx})[0].Force()
	if resp.Err == nil || resp.Origin != "c0" {
		t.Fatalf("expected tagged no-wire-form error, got %+v", resp)
	}
}
