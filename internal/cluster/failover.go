package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"funcdb/internal/archive"
	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/lenient"
	"funcdb/internal/session"
	"funcdb/internal/wire"
)

// This file is the failover state machine: lease-based failure detection
// over dedicated heartbeat connections, self-promotion of the
// most-caught-up mirror when a slot's owner dies, epoch fencing of the
// deposed owner, and the rejoin path that rewinds it to the promotion
// base and re-attaches it as a replica.
//
// Terminology: a SLOT is an original owner index — the placement hash
// names slots, and without failover slot s is served by node s. Under
// failover an (epoch, owner) pair per slot says who serves it now;
// epochs only grow, and the higher epoch always wins a disagreement, so
// a deposed primary that comes back cannot split-brain: every frame
// class that moves its data (Forward, LogRecord, Redirect) carries the
// epoch, and the stale side is refused or redirected.

// DialFunc opens an outbound cluster connection. The default is
// net.Dial("tcp", addr); tests substitute a FaultTransport dialer to
// drop, delay, or partition traffic deterministically.
type DialFunc func(addr string) (net.Conn, error)

// PromoteFunc builds the takeover store for a promoted slot from the
// mirror's database at the promotion base. funcdb supplies one that
// opens a durable store (snapshot at the base + fresh log) under the
// node's data directory, so the winner's log for the slot is
// subscribable exactly like a born-primary's.
type PromoteFunc func(slot int, epoch uint64, db *database.Database) (LocalStore, error)

// FailoverConfig enables and tunes failover on a node. All nodes of a
// cluster should agree on the values.
type FailoverConfig struct {
	// Heartbeat is the peer heartbeat interval.
	Heartbeat time.Duration
	// Lease is how long after the last heartbeat (in either direction) a
	// peer is still presumed alive. Promotion happens only after the
	// owner's lease expired AND a majority of the cluster is reachable.
	Lease time.Duration
	// SyncReplicas is the write-ack gate: a write is acknowledged only
	// after at least this many live mirrors acked its record (0 disables
	// the gate — acked writes may be lost if the primary dies before the
	// stream drains). Clamped to cluster size − 1.
	SyncReplicas int
}

const (
	defaultHeartbeat    = 250 * time.Millisecond
	defaultSyncReplicas = 1
	// failoverTailCap bounds the per-mirror ring of raw record bytes kept
	// for post-promotion catch-up of subscribers that are behind the
	// takeover store's log floor.
	failoverTailCap = 65536
)

func (c FailoverConfig) withDefaults(clusterSize int) FailoverConfig {
	if c.Heartbeat <= 0 {
		c.Heartbeat = defaultHeartbeat
	}
	if c.Lease <= 0 {
		c.Lease = 4 * c.Heartbeat
	}
	if c.SyncReplicas == 0 {
		c.SyncReplicas = defaultSyncReplicas
	}
	if c.SyncReplicas > clusterSize-1 {
		c.SyncReplicas = clusterSize - 1
	}
	return c
}

// ErrFenced reports a request refused by the failover fence: the node is
// not (or no longer, or not yet) the serving owner of the statement's
// slot in the newest epoch it knows, or an acked write could not be
// replicated while the node still held a quorum. The sentinel crosses
// the wire by message text ("cluster: fenced"); clients re-resolve
// placement and retry against the current owner.
var ErrFenced = errors.New("cluster: fenced")

// Rewinder is implemented by stores that can materialize an arbitrary
// retained version (funcdb.Store replays its archive). The rejoin path
// uses it to rewind a deposed primary to the winner's promotion base —
// everything after the base is history only this node ever had, and the
// epoch rule says the winner's history wins.
type Rewinder interface {
	VersionAt(seq int64) (*database.Database, error)
}

// recordTail is a frozen run of raw log-record bytes ending at the
// promotion base: records (from, from+len] in slot sequence order. The
// takeover store's archive floor is the base, so a subscriber starting
// below it is bridged from here.
type recordTail struct {
	from int64
	recs [][]byte
}

func (t *recordTail) end() int64 { return t.from + int64(len(t.recs)) }

// failover is one node's failover state. All vector state is per slot
// and guarded by mu; cond broadcasts on every state change and every
// heartbeat tick, which is what wakes the write-ack gate.
type failover struct {
	n   *Node
	cfg FailoverConfig

	mu      sync.Mutex
	cond    *sync.Cond
	started time.Time

	epochs []uint64
	owners []int
	bases  []int64

	serving   bool // this node may serve its own slot
	probation bool // fresh boot: awaiting a majority view with no higher epoch
	demoted   bool // own slot lost to a higher epoch
	rejoining bool

	lastSeen []time.Time
	views    []wire.Heartbeat
	haveView []bool

	takeovers map[int]LocalStore
	tails     map[int]*recordTail
	subs      map[int]map[int]int64 // slot → subscriber node → acked seq
}

func newFailover(n *Node, cfg FailoverConfig) *failover {
	size := len(n.addrs)
	f := &failover{
		n:         n,
		cfg:       cfg.withDefaults(size),
		epochs:    make([]uint64, size),
		owners:    make([]int, size),
		bases:     make([]int64, size),
		lastSeen:  make([]time.Time, size),
		views:     make([]wire.Heartbeat, size),
		haveView:  make([]bool, size),
		takeovers: make(map[int]LocalStore),
		tails:     make(map[int]*recordTail),
		subs:      make(map[int]map[int]int64),
		probation: true,
	}
	for s := range f.owners {
		f.owners[s] = s
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *failover) start() {
	f.mu.Lock()
	f.started = time.Now()
	f.mu.Unlock()
	for i := range f.n.addrs {
		if i == f.n.id {
			continue
		}
		f.n.wg.Add(1)
		go f.heartbeatLoop(i)
	}
}

// ownerOf returns the node currently serving a slot.
func (f *failover) ownerOf(slot int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.owners[slot]
}

// epochOf returns the newest known epoch for a slot.
func (f *failover) epochOf(slot int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epochs[slot]
}

// aliveLocked reports whether a node is presumed alive. A peer never
// heard from counts as alive during the first lease after start (the
// boot grace period: leases must have had a chance to form before
// anyone is declared dead).
func (f *failover) aliveLocked(id int) bool {
	if id == f.n.id {
		return true
	}
	if id < 0 || id >= len(f.lastSeen) {
		return false
	}
	if f.lastSeen[id].IsZero() {
		return time.Since(f.started) < f.cfg.Lease
	}
	return time.Since(f.lastSeen[id]) < f.cfg.Lease
}

// majorityLocked reports whether this node can reach a majority of the
// cluster (itself included): the serve/promote precondition that keeps a
// minority partition from acking writes or electing a second winner.
func (f *failover) majorityLocked() bool {
	alive := 1
	for id := range f.lastSeen {
		if id != f.n.id && f.aliveLocked(id) {
			alive++
		}
	}
	return alive >= len(f.lastSeen)/2+1
}

// viewLocked assembles this node's heartbeat payload.
func (f *failover) viewLocked() wire.Heartbeat {
	n := f.n
	size := len(n.addrs)
	hb := wire.Heartbeat{
		From:    n.id,
		Epochs:  append([]uint64(nil), f.epochs...),
		Owners:  append([]int(nil), f.owners...),
		Bases:   append([]int64(nil), f.bases...),
		Applied: make([]int64, size),
	}
	for s := 0; s < size; s++ {
		switch {
		case s == n.id && !f.demoted:
			hb.Applied[s] = n.store.Current().Version()
		case f.owners[s] == n.id && s != n.id:
			if st := f.takeovers[s]; st != nil {
				hb.Applied[s] = st.Current().Version()
			}
		default:
			if m := n.mirrorRef(s); m != nil {
				hb.Applied[s] = m.version()
			}
		}
	}
	return hb
}

func (f *failover) view() wire.Heartbeat {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.viewLocked()
}

// merge folds a peer's heartbeat (or ack) into local state: refresh the
// sender's lease, adopt any newer epoch, resolve boot probation, and
// re-check promotion conditions. This is the gossip step — a node two
// hops from a promotion still learns it within a heartbeat interval.
func (f *failover) merge(hb wire.Heartbeat) {
	f.mu.Lock()
	if hb.From >= 0 && hb.From < len(f.lastSeen) && hb.From != f.n.id {
		f.lastSeen[hb.From] = time.Now()
		f.views[hb.From] = hb
		f.haveView[hb.From] = true
	}
	for s := 0; s < len(f.epochs) && s < len(hb.Epochs); s++ {
		newer := hb.Epochs[s] > f.epochs[s]
		// Same epoch, different owner: deterministic tiebreak (lower node
		// id) so concurrent equal-epoch claims converge everywhere.
		tie := hb.Epochs[s] == f.epochs[s] && hb.Epochs[s] > 0 && hb.Owners[s] < f.owners[s]
		if newer || tie {
			f.adoptLocked(s, hb.Epochs[s], hb.Owners[s], hb.Bases[s])
		}
	}
	f.resolveProbationLocked()
	f.mu.Unlock()
	f.cond.Broadcast()
	f.maybePromote()
}

// adoptLocked installs a newer (epoch, owner) for a slot. Adopting a
// higher epoch for OUR OWN slot is the fence closing on us: stop
// serving, and rejoin as a replica of the winner.
func (f *failover) adoptLocked(s int, epoch uint64, owner int, base int64) {
	f.epochs[s], f.owners[s], f.bases[s] = epoch, owner, base
	if owner == f.n.id {
		return
	}
	if s == f.n.id {
		f.serving = false
		f.probation = false
		f.demoted = true
		if !f.rejoining && !f.n.closing.Load() {
			f.rejoining = true
			f.n.wg.Add(1)
			go f.rejoin(base)
		}
		return
	}
	// A slot we had promoted was claimed by a higher epoch elsewhere:
	// stop serving it (the store stays open until node Close).
	delete(f.takeovers, s)
	delete(f.tails, s)
}

// resolveProbationLocked ends the fresh-boot probation once a majority
// of the cluster has reported views and none deposed us: only then may
// the node serve its own slot, so a restarted dead primary cannot serve
// a single stale statement before hearing about its succession.
func (f *failover) resolveProbationLocked() {
	if !f.probation {
		return
	}
	fresh := 1
	for id := range f.haveView {
		if id != f.n.id && f.haveView[id] && f.aliveLocked(id) {
			fresh++
		}
	}
	if fresh >= len(f.lastSeen)/2+1 {
		f.probation = false
		if !f.demoted {
			f.serving = true
		}
	}
}

// heartbeatLoop drives one peer's heartbeat connection: dial (through
// the node's dialer, so fault injection sees it), handshake, then one
// Heartbeat→Ack round trip per interval. Heartbeats are written one
// frame per Write — unbuffered — so a fault transport can drop them at
// frame granularity. Either direction of traffic refreshes the lease;
// the loop also ticks the promotion check and wakes gate waiters even
// while the peer is unreachable.
func (f *failover) heartbeatLoop(peerIdx int) {
	n := f.n
	defer n.wg.Done()
	var conn net.Conn
	var rd *wire.Reader
	drop := func() {
		if conn != nil {
			n.untrackConn(conn)
			conn.Close()
			conn, rd = nil, nil
		}
	}
	defer drop()
	for !n.closing.Load() {
		if conn == nil {
			if c, crd, err := f.dialHeartbeat(peerIdx); err == nil {
				conn, rd = c, crd
			}
		}
		if conn != nil {
			start := time.Now()
			if err := f.heartbeatRound(conn, rd); err != nil {
				drop()
			} else {
				n.m.HeartbeatRTT.Since(start)
			}
		}
		f.tick()
		time.Sleep(f.cfg.Heartbeat)
	}
}

// dialHeartbeat opens and handshakes one heartbeat connection.
func (f *failover) dialHeartbeat(peerIdx int) (net.Conn, *wire.Reader, error) {
	n := f.n
	conn, err := n.dial(n.addrs[peerIdx])
	if err != nil {
		return nil, nil, err
	}
	if !n.trackConn(conn) {
		conn.Close()
		return nil, nil, errNodeClosing
	}
	fail := func(err error) (net.Conn, *wire.Reader, error) {
		n.untrackConn(conn)
		conn.Close()
		return nil, nil, err
	}
	hello := wire.AppendHello(nil, wire.Hello{Origin: fmt.Sprintf("%s-hb", n.origin)})
	if err := wire.WriteFrame(conn, wire.FrameHello, hello); err != nil {
		return fail(err)
	}
	rd := wire.NewReader(bufio.NewReaderSize(conn, 4096))
	conn.SetReadDeadline(time.Now().Add(f.cfg.Lease))
	typ, payload, err := rd.Next()
	if err != nil || typ != wire.FrameWelcome {
		return fail(fmt.Errorf("cluster: heartbeat handshake with node %d failed: %v", peerIdx, err))
	}
	if _, err := wire.DecodeWelcome(payload); err != nil {
		return fail(err)
	}
	return conn, rd, nil
}

// heartbeatRound is one Heartbeat→Ack exchange.
func (f *failover) heartbeatRound(conn net.Conn, rd *wire.Reader) error {
	if err := wire.WriteFrame(conn, wire.FrameHeartbeat, wire.AppendHeartbeat(nil, f.view())); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(f.cfg.Lease))
	typ, payload, err := rd.Next()
	if err != nil {
		return err
	}
	if typ != wire.FrameHeartbeatAck {
		return fmt.Errorf("cluster: unexpected frame %#x on heartbeat link", typ)
	}
	ack, err := wire.DecodeHeartbeat(payload)
	if err != nil {
		return err
	}
	f.merge(ack)
	return nil
}

// tick runs the periodic obligations of a heartbeat interval: promotion
// checks (leases expire by time, not by traffic) and a broadcast so gate
// waiters re-evaluate liveness.
func (f *failover) tick() {
	f.maybePromote()
	f.cond.Broadcast()
}

// maybePromote promotes this node into any slot whose owner's lease has
// expired, IF a majority of the cluster is reachable and this node's
// mirror is the most caught up among the live candidates (ties break to
// the lowest node id). Every live node runs the same deterministic rule
// over gossiped applied-sequences, so they agree on the winner; only the
// winner acts.
func (f *failover) maybePromote() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.n.closing.Load() || !f.majorityLocked() {
		return
	}
	for s := range f.owners {
		owner := f.owners[s]
		if owner == f.n.id || s == f.n.id || f.aliveLocked(owner) {
			continue
		}
		m := f.n.mirrorRef(s)
		if m == nil {
			continue
		}
		best, bestApplied := f.n.id, m.version()
		for p := range f.views {
			if p == f.n.id || p == owner || !f.haveView[p] || !f.aliveLocked(p) {
				continue
			}
			v := f.views[p]
			if s < len(v.Applied) && (v.Applied[s] > bestApplied || (v.Applied[s] == bestApplied && p < best)) {
				best, bestApplied = p, v.Applied[s]
			}
		}
		if best != f.n.id {
			continue
		}
		f.promoteLocked(s, m)
	}
}

// promoteLocked turns this node into slot s's serving owner: bump the
// epoch, snapshot the mirror's database as the takeover store's initial
// version (its log floor is the promotion base), and freeze the mirror's
// record tail so subscribers below the floor can still catch up. Runs
// under f.mu: promotion is rare and must be atomic against routing.
func (f *failover) promoteLocked(s int, m *mirror) {
	epoch := f.epochs[s] + 1
	db := m.eng.Current()
	base := db.Version()
	st, err := f.n.promote(s, epoch, db)
	if err != nil {
		// Promotion failed locally (disk trouble); leave the slot dark and
		// let a later tick — or another candidate — retry.
		return
	}
	f.tails[s] = m.freezeTail()
	f.takeovers[s] = st
	f.epochs[s], f.owners[s], f.bases[s] = epoch, f.n.id, base
	f.n.m.Promotions.Inc()
}

// localStore resolves the store this node serves a slot from, fencing
// requests for slots it does not (or may not yet) serve.
func (f *failover) localStore(slot int) (LocalStore, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.owners[slot] != f.n.id {
		return nil, fmt.Errorf("%w: slot %d is served by node %d (epoch %d)", ErrFenced, slot, f.owners[slot], f.epochs[slot])
	}
	if slot == f.n.id {
		if !f.serving {
			return nil, fmt.Errorf("%w: node %d is not serving its slot (probation or demoted)", ErrFenced, f.n.id)
		}
		return f.n.store, nil
	}
	st := f.takeovers[slot]
	if st == nil {
		return nil, fmt.Errorf("%w: no takeover store for slot %d yet", ErrFenced, slot)
	}
	return st, nil
}

// authorityStore returns the store this node serves a slot from, or nil
// when it is not the serving owner (replica reads then fall back to the
// mirrors).
func (f *failover) authorityStore(slot int) LocalStore {
	st, err := f.localStore(slot)
	if err != nil {
		return nil
	}
	return st
}

// gated wraps a write future in the replication-ack gate: the response
// is surfaced only after SyncReplicas live mirrors acked a sequence at
// or beyond the write's commit. If the node loses its quorum while
// waiting, the write is answered with ErrFenced — it applied locally,
// but the winner's history will not contain it, and an un-acked write is
// allowed to vanish.
func (f *failover) gated(slot int, st LocalStore, fut *session.Future) *session.Future {
	return lenient.Lazy(func() core.Response {
		r := fut.Force()
		if r.Err != nil {
			return r
		}
		// The store's current version bounds this write's commit sequence
		// from above: waiting for it is conservative and monotone.
		v := st.Current().Version()
		if err := f.waitReplicated(slot, v); err != nil {
			r.Err = err
		}
		return r
	})
}

// waitReplicated blocks until SyncReplicas live subscribers of the slot
// have acked sequence v, erroring out if the node cannot hold a quorum.
func (f *failover) waitReplicated(slot int, v int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.n.closing.Load() {
			return fmt.Errorf("%w: node closing before write was replicated", ErrFenced)
		}
		acked := 0
		for sub, seq := range f.subs[slot] {
			if seq >= v && f.aliveLocked(sub) {
				acked++
			}
		}
		if acked >= f.cfg.SyncReplicas {
			return nil
		}
		if !f.majorityLocked() {
			return fmt.Errorf("%w: lost quorum for slot %d; write not replicated", ErrFenced, slot)
		}
		f.cond.Wait()
	}
}

// subscribeSlot serves a slot's log to one subscriber: the frozen
// pre-promotion tail first (for subscribers behind the takeover store's
// log floor), then the authoritative store's log. Records are stamped
// with the slot's serving epoch at subscribe time — if this node is
// later deposed, subscribers see the stale epoch and drop the stream.
func (f *failover) subscribeSlot(slot, sub int, after int64, fn func(seq int64, epoch uint64, record []byte)) (func(), error) {
	f.mu.Lock()
	if f.owners[slot] != f.n.id {
		owner, epoch := f.owners[slot], f.epochs[slot]
		f.mu.Unlock()
		return nil, fmt.Errorf("cluster: node %d does not serve slot %d (owner %d, epoch %d)", f.n.id, slot, owner, epoch)
	}
	epoch := f.epochs[slot]
	var st LocalStore
	var tail *recordTail
	if slot == f.n.id {
		st = f.n.store
	} else {
		st, tail = f.takeovers[slot], f.tails[slot]
	}
	f.mu.Unlock()
	if st == nil {
		return nil, fmt.Errorf("cluster: slot %d has no serving store yet", slot)
	}
	if tail != nil && after < tail.end() {
		if after < tail.from {
			return nil, fmt.Errorf("%w: takeover tail for slot %d starts at %d, subscriber wants %d",
				archive.ErrLogTrimmed, slot, tail.from, after)
		}
		for i := after - tail.from; i < int64(len(tail.recs)); i++ {
			fn(tail.from+i+1, epoch, tail.recs[i])
		}
		after = tail.end()
	}
	return st.SubscribeLog(after, func(seq int64, record []byte) {
		fn(seq, epoch, record)
	})
}

// Subscriber-ack bookkeeping (the server's slot-log stream calls these
// through the Node).

func (f *failover) subAttached(slot, sub int) {
	f.mu.Lock()
	if f.subs[slot] == nil {
		f.subs[slot] = make(map[int]int64)
	}
	if _, ok := f.subs[slot][sub]; !ok {
		f.subs[slot][sub] = -1
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

func (f *failover) subAck(slot, sub int, seq int64) {
	f.mu.Lock()
	if m := f.subs[slot]; m != nil && seq > m[sub] {
		m[sub] = seq
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

func (f *failover) subGone(slot, sub int) {
	f.mu.Lock()
	if m := f.subs[slot]; m != nil {
		delete(m, sub)
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// fence validates an inbound Forward against the slot's epoch. A frame
// stamped with an older epoch is from a peer (or client) that has not
// heard about a promotion: refuse it so the sender re-resolves. A frame
// for a slot this node serves is additionally gated on the node actually
// serving (probation, demotion).
func (f *failover) fence(slot int, epoch uint64, hasEpoch bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if hasEpoch && epoch < f.epochs[slot] {
		f.n.m.FencingRejections.Inc()
		return fmt.Errorf("%w: stale epoch %d for slot %d (current %d, owner %d)",
			ErrFenced, epoch, slot, f.epochs[slot], f.owners[slot])
	}
	if f.owners[slot] == f.n.id && slot == f.n.id && !f.serving {
		return fmt.Errorf("%w: node %d is not serving its slot (probation or demoted)", ErrFenced, f.n.id)
	}
	return nil
}

// noteStreamEpoch records an epoch observed on an inbound replication
// stream that is newer than gossip has delivered: the dialed node serves
// the slot in that epoch.
func (f *failover) noteStreamEpoch(slot, owner int, epoch uint64) {
	f.mu.Lock()
	if epoch > f.epochs[slot] {
		f.adoptLocked(slot, epoch, owner, f.bases[slot])
	}
	f.mu.Unlock()
	f.cond.Broadcast()
}

// rejoin is the deposed primary's path back into the cluster: rewind the
// local history to the winner's promotion base (everything beyond it is
// history only this node ever had — the epoch rule discards it), build a
// mirror of our own former slot at that version, and pull the winner's
// log like any other replica. The node keeps answering for slots it
// still serves throughout.
func (f *failover) rejoin(base int64) {
	n := f.n
	defer n.wg.Done()
	cur := n.store.Current()
	db := cur
	if cur.Version() > base {
		rw, ok := n.store.(Rewinder)
		if !ok {
			return // cannot rewind: stay fenced, serve nothing for the slot
		}
		var err error
		if db, err = rw.VersionAt(base); err != nil {
			return
		}
	}
	m := newMirrorFromDB(n.id, db)
	m.keepTail = true
	n.setMirror(n.id, m)
	if n.closing.Load() {
		return
	}
	n.wg.Add(1)
	go n.replicateFrom(n.id, m)
}

// Node surface for the failover machinery (server capabilities and
// introspection).

// HandleHeartbeat implements server.HeartbeatSink: merge the sender's
// view, answer with ours. ok=false without failover.
func (n *Node) HandleHeartbeat(hb wire.Heartbeat) (wire.Heartbeat, bool) {
	if n.fo == nil {
		return wire.Heartbeat{}, false
	}
	n.fo.merge(hb)
	return n.fo.view(), true
}

// FenceForward implements server.Fencer.
func (n *Node) FenceForward(rel string, epoch uint64, hasEpoch bool) error {
	if n.fo == nil {
		return nil
	}
	return n.fo.fence(OwnerIndex(rel, len(n.addrs)), epoch, hasEpoch)
}

// OwnerEpoch implements server.Fencer: the newest known epoch for the
// relation's slot, stamped into Redirect frames on v3 connections.
func (n *Node) OwnerEpoch(rel string) uint64 {
	if n.fo == nil {
		return 0
	}
	return n.fo.epochOf(OwnerIndex(rel, len(n.addrs)))
}

// SubscribeSlotLog implements server.SlotLogSource: a slot-addressed,
// epoch-stamped log subscription. Without failover only the node's own
// slot is subscribable, epoch 0.
func (n *Node) SubscribeSlotLog(slot, sub int, after int64, fn func(seq int64, epoch uint64, record []byte)) (func(), error) {
	if slot < 0 || slot >= len(n.addrs) {
		return nil, fmt.Errorf("cluster: no such slot %d", slot)
	}
	if n.fo == nil {
		if slot != n.id {
			return nil, fmt.Errorf("cluster: node %d does not serve slot %d", n.id, slot)
		}
		return n.store.SubscribeLog(after, func(seq int64, record []byte) {
			fn(seq, 0, record)
		})
	}
	return n.fo.subscribeSlot(slot, sub, after, fn)
}

// SubscriberAttached implements server.SlotLogSource.
func (n *Node) SubscriberAttached(slot, sub int) {
	if n.fo != nil {
		n.fo.subAttached(slot, sub)
	}
}

// SubscriberAck implements server.SlotLogSource.
func (n *Node) SubscriberAck(slot, sub int, seq int64) {
	if n.fo != nil {
		n.fo.subAck(slot, sub, seq)
	}
}

// SubscriberGone implements server.SlotLogSource.
func (n *Node) SubscriberGone(slot, sub int) {
	if n.fo != nil {
		n.fo.subGone(slot, sub)
	}
}

// FailoverInfo reports a slot's serving owner and epoch as this node
// believes them, and whether THIS node is currently serving the slot
// (introspection for tests and operators). Without failover the static
// placement is reported with epoch 0.
func (n *Node) FailoverInfo(slot int) (owner int, epoch uint64, servingHere bool) {
	if n.fo == nil {
		return slot, 0, slot == n.id
	}
	f := n.fo
	f.mu.Lock()
	defer f.mu.Unlock()
	owner, epoch = f.owners[slot], f.epochs[slot]
	if owner != n.id {
		return owner, epoch, false
	}
	if slot == n.id {
		return owner, epoch, f.serving
	}
	return owner, epoch, f.takeovers[slot] != nil
}

// WaitReady blocks until the node's boot probation has resolved (it may
// serve its slot, or it learned it was deposed), or the timeout expires.
// A no-op without failover.
func (n *Node) WaitReady(timeout time.Duration) error {
	if n.fo == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	f := n.fo
	for {
		f.mu.Lock()
		done := !f.probation
		f.mu.Unlock()
		if done {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cluster: node %d still in probation after %v", n.id, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// heartbeatAge reports how long ago a peer was last heard from, in
// milliseconds (-1 when never, or without failover), plus the peer's
// applied lag behind this node's own log per its last heartbeat.
func (n *Node) heartbeatAge(peerIdx int) (ageMs float64, lag int64) {
	if n.fo == nil {
		return -1, -1
	}
	f := n.fo
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.lastSeen[peerIdx].IsZero() {
		return -1, -1
	}
	ageMs = float64(time.Since(f.lastSeen[peerIdx]).Microseconds()) / 1000
	lag = -1
	if f.haveView[peerIdx] {
		v := f.views[peerIdx]
		if n.id < len(v.Applied) {
			own := n.store.Current().Version()
			if l := own - v.Applied[n.id]; l >= 0 {
				lag = l
			}
		}
	}
	return ageMs, lag
}

// failoverVectors copies the epoch/owner vectors for the metrics
// snapshot (nil without failover).
func (n *Node) failoverVectors() (epochs []uint64, owners []int) {
	if n.fo == nil {
		return nil, nil
	}
	n.fo.mu.Lock()
	defer n.fo.mu.Unlock()
	return append([]uint64(nil), n.fo.epochs...), append([]int(nil), n.fo.owners...)
}
