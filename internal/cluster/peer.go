package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"funcdb/internal/core"
	"funcdb/internal/lenient"
	"funcdb/internal/metrics"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
	"funcdb/internal/wire"
)

// peer is one persistent inter-node connection: the gateway side of
// frame forwarding. The connection is dialed lazily on first use and
// redialed after a failure; any number of Forward frames may be in
// flight, matched to replies by request id by a single reader goroutine.
type peer struct {
	origin string // this node's tag, for the peer handshake
	addr   string
	cm     *metrics.Cluster // node-wide routing counters (may be nil)
	dialFn DialFunc
	frames metrics.Counter // Forward frames sent to this peer
	dials  metrics.Counter // (re)connects of the forwarding link

	mu     sync.Mutex
	pc     *peerConn // the live connection, nil between failures
	enc    []byte    // reused Forward encode buffer, guarded by mu
	nextID uint64
	closed bool
}

// peerConn is one dialed connection together with the calls in flight on
// it. Pending calls are scoped to their connection: when it dies —
// whether the reader noticed first or a writer did — failing the
// connection resolves exactly the calls that were sent on it, and calls
// registered on a successor connection are untouched.
type peerConn struct {
	conn    net.Conn
	bw      *bufio.Writer
	ver     byte // peer's negotiated protocol version, from its Welcome
	pending map[uint64]*fwdCall
}

// fwdCall is one in-flight Forward frame: the statements' shared reply.
type fwdCall struct {
	n        int // statements in the frame
	done     chan struct{}
	resps    []core.Response
	err      error  // transport failure or remote FrameError
	errIndex int    // remote FrameError: failing index within the frame
	redirect string // remote FrameRedirect: placement disagreement

	tr     *reqtrace.T // gateway trace the frame belongs to (nil untraced)
	sentNS int64       // unix ns the frame hit the socket, for the hop span
}

func newPeer(origin, addr string, cm *metrics.Cluster, dial DialFunc) *peer {
	if dial == nil {
		dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return &peer{origin: origin, addr: addr, cm: cm, dialFn: dial}
}

// ensureLocked dials and handshakes if the connection is down, returning
// the live peerConn. Must hold p.mu.
func (p *peer) ensureLocked() (*peerConn, error) {
	if p.closed {
		return nil, errors.New("cluster: node closed")
	}
	if p.pc != nil {
		return p.pc, nil
	}
	conn, err := p.dialFn(p.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: node %s unreachable: %w", p.addr, err)
	}
	bw := bufio.NewWriterSize(conn, peerWriteBufSize)
	hello := wire.AppendHello(nil, wire.Hello{Origin: p.origin})
	if err := wire.WriteFrame(bw, wire.FrameHello, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", p.addr, err)
	}
	if err := bw.Flush(); err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", p.addr, err)
	}
	rd := wire.NewReader(bufio.NewReaderSize(conn, peerReadBufSize))
	typ, payload, err := rd.Next()
	if err != nil || typ != wire.FrameWelcome {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake with %s failed: %v", p.addr, err)
	}
	w, err := wire.DecodeWelcome(payload)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: handshake with %s: %w", p.addr, err)
	}
	pc := &peerConn{conn: conn, bw: bw, ver: w.Version, pending: make(map[uint64]*fwdCall)}
	p.pc = pc
	p.dials.Inc()
	go p.readLoop(pc, rd)
	return pc, nil
}

// readLoop dispatches replies by request id until the connection dies,
// then fails every call still pending on it.
func (p *peer) readLoop(pc *peerConn, rd *wire.Reader) {
	var fatal error
	for {
		typ, payload, err := rd.Next()
		if err != nil {
			fatal = fmt.Errorf("cluster: connection to %s lost: %w", p.addr, err)
			break
		}
		var call *fwdCall
		switch typ {
		case wire.FrameResponse:
			rid, resp, derr := wire.DecodeSingleResponse(payload)
			if derr != nil {
				fatal = derr
			} else if call = p.take(pc, rid); call != nil {
				call.resps = []core.Response{resp}
			}
		case wire.FrameBatchResponse:
			rid, resps, derr := wire.DecodeResponses(payload)
			if derr != nil {
				fatal = derr
			} else if call = p.take(pc, rid); call != nil {
				call.resps = resps
			}
		case wire.FrameError:
			rid, index, msg, derr := wire.DecodeErrorMsg(payload)
			if derr != nil {
				fatal = derr
			} else if call = p.take(pc, rid); call != nil {
				call.err, call.errIndex = errors.New(msg), index
			}
		case wire.FrameRedirect:
			rid, addr, _, derr := wire.DecodeRedirect(payload)
			if derr != nil {
				fatal = derr
			} else if call = p.take(pc, rid); call != nil {
				call.redirect = addr
				p.cm.Redirected()
			}
		default:
			fatal = fmt.Errorf("cluster: unexpected frame %#x from %s", typ, p.addr)
		}
		if fatal != nil {
			break
		}
		if call != nil {
			if call.tr != nil {
				// The hop span closes when the peer's reply lands, before
				// the waiting futures wake: send → reply, wire time included.
				call.tr.SpanNS(reqtrace.StageForwardHop, call.sentNS, time.Now().UnixNano()-call.sentNS)
			}
			close(call.done)
		}
	}
	p.fail(pc, fatal)
}

// take claims the pending call for a request id on one connection.
func (p *peer) take(pc *peerConn, id uint64) *fwdCall {
	p.mu.Lock()
	defer p.mu.Unlock()
	call := pc.pending[id]
	delete(pc.pending, id)
	return call
}

// fail tears down a dead connection, resolving EVERY call that was sent
// on it with the transport error — pending calls are scoped to their
// connection, so calls already registered on a successor connection are
// untouched, and no call can be left behind to block forever. A later
// forward redials.
func (p *peer) fail(pc *peerConn, err error) {
	pc.conn.Close()
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.pc == pc {
		p.pc = nil
	}
	if err == nil {
		err = fmt.Errorf("cluster: connection to %s lost", p.addr)
	}
	for id, call := range pc.pending {
		call.err, call.errIndex = err, -1
		close(call.done)
		delete(pc.pending, id)
	}
}

// close shuts the peer link for good: pending calls fail, later forwards
// refuse.
func (p *peer) close() {
	p.mu.Lock()
	p.closed = true
	pc := p.pc
	p.mu.Unlock()
	if pc != nil {
		pc.conn.Close() // readLoop notices and fails the pending calls
	}
}

// forwardTagged ships a run of pre-tagged transactions — all owned by
// this peer — as ONE Forward frame and returns their response futures in
// order. The frame sets FwdNoForward: if the peer disagrees about
// ownership (it answered Redirect), or the link dies, every future
// resolves with the error; forwarding never chains past one hop.
// With hasEpoch the frame is additionally stamped with the slot's epoch
// (FwdEpoch), so a receiver that has seen a newer promotion fences it.
// A non-nil sampled trace rides the frame as a v5 trace-context suffix
// (FwdTrace) so the owner's spans share the gateway's trace id, and the
// gateway records the whole round trip as one forward-hop span.
func (p *peer) forwardTagged(txs []core.Transaction, epoch uint64, hasEpoch bool, tr *reqtrace.T) []*session.Future {
	for _, tx := range txs {
		if tx.PrepHash != 0 {
			// At least one transaction was bound from a prepared template:
			// its Query is the '?' template, which the owner cannot re-bind
			// from text, so the whole run ships as a ForwardPrepared frame
			// (hash + args, text included for first-contact registration).
			return p.forwardPrepared(txs, epoch, hasEpoch, tr)
		}
	}
	out := make([]*session.Future, len(txs))
	stmts := make([]wire.ForwardStmt, len(txs))
	for i, tx := range txs {
		if tx.Query == "" {
			// Only symbolic statements cross the wire: the paper's
			// translate is the authoritative query → transaction function,
			// and the owner re-runs it.
			for j := range txs {
				txj := txs[j]
				out[j] = lenient.Ready(core.Response{
					Origin: txj.Origin, Seq: txj.Seq, Kind: txj.Kind,
					Err: errors.New("cluster: transaction has no symbolic form to forward"),
				})
			}
			return out
		}
		stmts[i] = wire.ForwardStmt{Origin: tx.Origin, Seq: tx.Seq, Query: tx.Query}
	}

	flags := byte(wire.FwdNoForward)
	if hasEpoch {
		flags |= wire.FwdEpoch
	}
	call := &fwdCall{n: len(txs), done: make(chan struct{}), tr: tr}
	if err := p.sendForward(call, flags, epoch, stmts); err != nil {
		call.err, call.errIndex = err, -1
		close(call.done)
	}
	for i := range txs {
		i, tx := i, txs[i]
		out[i] = lenient.Lazy(func() core.Response {
			<-call.done
			return call.response(i, tx)
		})
	}
	return out
}

// forwardPrepared is forwardTagged for runs carrying prepared-bound
// transactions: one FrameForwardPrepared frame whose statements resolve
// at the owner by text hash against its node-wide cache. The template
// text rides along (HasText) so first contact — or the owner's cache
// having evicted the plan — registers it instead of failing; plain text
// statements sharing the run ship as hash-0 text statements.
func (p *peer) forwardPrepared(txs []core.Transaction, epoch uint64, hasEpoch bool, tr *reqtrace.T) []*session.Future {
	out := make([]*session.Future, len(txs))
	stmts := make([]wire.PreparedFwdStmt, len(txs))
	for i, tx := range txs {
		if tx.Query == "" {
			for j := range txs {
				txj := txs[j]
				out[j] = lenient.Ready(core.Response{
					Origin: txj.Origin, Seq: txj.Seq, Kind: txj.Kind,
					Err: errors.New("cluster: transaction has no symbolic form to forward"),
				})
			}
			return out
		}
		stmts[i] = wire.PreparedFwdStmt{
			Origin: tx.Origin, Seq: tx.Seq,
			Hash: tx.PrepHash, Text: tx.Query, HasText: true,
			Args: tx.PrepArgs,
		}
	}

	flags := byte(wire.FwdNoForward)
	if hasEpoch {
		flags |= wire.FwdEpoch
	}
	call := &fwdCall{n: len(txs), done: make(chan struct{}), tr: tr}
	if err := p.sendForwardPrepared(call, flags, epoch, stmts); err != nil {
		call.err, call.errIndex = err, -1
		close(call.done)
	}
	for i := range txs {
		i, tx := i, txs[i]
		out[i] = lenient.Lazy(func() core.Response {
			<-call.done
			return call.response(i, tx)
		})
	}
	return out
}

// sendForwardPrepared writes one ForwardPrepared frame and registers its
// call — sendForward with the prepared statement encoding.
func (p *peer) sendForwardPrepared(call *fwdCall, flags byte, epoch uint64, stmts []wire.PreparedFwdStmt) error {
	p.mu.Lock()
	pc, err := p.ensureLocked()
	if err != nil {
		p.mu.Unlock()
		return err
	}
	id := p.nextID
	p.nextID++
	var mark int
	p.enc, mark = wire.BeginFrame(p.enc[:0], wire.FrameForwardPrepared)
	if tc := forwardTraceCtx(call.tr, pc.ver); tc.Sampled {
		p.enc, err = wire.AppendForwardPreparedT(p.enc, id, flags|wire.FwdTrace, epoch, tc, stmts)
	} else {
		p.enc, err = wire.AppendForwardPrepared(p.enc, id, flags, epoch, stmts)
	}
	if err == nil {
		p.enc, err = wire.EndFrame(p.enc, mark)
	}
	if err != nil {
		p.mu.Unlock()
		return err
	}
	pc.pending[id] = call
	if call.tr != nil {
		call.sentNS = time.Now().UnixNano()
	}
	if _, err = pc.bw.Write(p.enc); err == nil {
		err = pc.bw.Flush()
	}
	if cap(p.enc) > maxPeerEncodeBuf {
		p.enc = nil
	}
	if err == nil {
		p.frames.Inc()
		p.mu.Unlock()
		return nil
	}
	delete(pc.pending, id)
	p.mu.Unlock()
	p.fail(pc, fmt.Errorf("cluster: connection to %s lost: %w", p.addr, err))
	return fmt.Errorf("cluster: forward to %s: %w", p.addr, err)
}

// sendForward writes one Forward frame and registers its call.
func (p *peer) sendForward(call *fwdCall, flags byte, epoch uint64, stmts []wire.ForwardStmt) error {
	p.mu.Lock()
	pc, err := p.ensureLocked()
	if err != nil {
		p.mu.Unlock()
		return err
	}
	id := p.nextID
	p.nextID++
	// Frame the Forward in the peer's reused encode buffer (guarded by
	// p.mu, like everything else on the send path): zero steady-state
	// allocation per forwarded frame.
	var mark int
	p.enc, mark = wire.BeginFrame(p.enc[:0], wire.FrameForward)
	if tc := forwardTraceCtx(call.tr, pc.ver); tc.Sampled {
		p.enc = wire.AppendForwardT(p.enc, id, flags|wire.FwdTrace, epoch, tc, stmts)
	} else {
		p.enc = wire.AppendForwardE(p.enc, id, flags, epoch, stmts)
	}
	p.enc, err = wire.EndFrame(p.enc, mark)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	pc.pending[id] = call
	if call.tr != nil {
		call.sentNS = time.Now().UnixNano()
	}
	if _, err = pc.bw.Write(p.enc); err == nil {
		err = pc.bw.Flush()
	}
	if cap(p.enc) > maxPeerEncodeBuf {
		p.enc = nil // one giant batch must not pin its high-water mark
	}
	if err == nil {
		p.frames.Inc()
		p.mu.Unlock()
		return nil
	}
	// The connection is wedged. Report this call's failure to the caller,
	// then fail the connection — which resolves every OTHER call in
	// flight on it, so nothing is left blocking on a reply that can never
	// arrive. fail retakes the mutex.
	delete(pc.pending, id)
	p.mu.Unlock()
	p.fail(pc, fmt.Errorf("cluster: connection to %s lost: %w", p.addr, err))
	return fmt.Errorf("cluster: forward to %s: %w", p.addr, err)
}

// forwardTraceCtx decides whether a forward frame carries the trace
// suffix: only sampled traces propagate, and only toward peers that
// negotiated protocol version 5 — older receivers would read the suffix
// as corruption. The zero context means "stamp nothing".
func forwardTraceCtx(tr *reqtrace.T, peerVer byte) wire.TraceCtx {
	if tr == nil || peerVer < 5 {
		return wire.TraceCtx{}
	}
	c := tr.Ctx()
	if !c.Sampled || c.ID == 0 {
		return wire.TraceCtx{}
	}
	return wire.TraceCtx{ID: c.ID, Hop: c.Hop, Sampled: true}
}

// response shapes statement i's answer out of the frame's shared reply.
func (c *fwdCall) response(i int, tx core.Transaction) core.Response {
	resp := core.Response{Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind}
	switch {
	case c.redirect != "":
		resp.Err = fmt.Errorf("cluster: placement disagreement: peer redirected to %s", c.redirect)
	case c.err != nil && (c.errIndex < 0 || c.errIndex == i):
		resp.Err = c.err
	case c.err != nil:
		resp.Err = fmt.Errorf("cluster: forwarded batch failed at statement %d: %v", c.errIndex, c.err)
	case i < len(c.resps):
		return c.resps[i]
	default:
		resp.Err = fmt.Errorf("cluster: short forward reply (%d of %d)", len(c.resps), c.n)
	}
	return resp
}

// Peer-link buffer sizing: explicit rather than bufio's 4 KiB default.
// The read side carries batched responses and the replication stream;
// the write side stays small because Forward frames are pre-assembled in
// the peer's encode buffer.
const (
	peerReadBufSize  = 16 << 10
	peerWriteBufSize = 4 << 10
	// maxPeerEncodeBuf caps the Forward buffer retained between sends.
	maxPeerEncodeBuf = 256 << 10
)
