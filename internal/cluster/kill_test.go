// Node-failure durability: killing a non-primary node (SIGKILL, a real
// subprocess) mid-workload must leave every acked commit durable on the
// primary's archive. The dead node takes its own relations down with it
// — the primary-copy model has no failover in this PR — but statements
// owned by live nodes keep flowing, and nothing acked is ever lost.
package cluster_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/cluster"
)

// TestClusterNodeHelper is the subprocess body: one cluster node serving
// until killed. Gated on the env var so it never runs as a normal test.
func TestClusterNodeHelper(t *testing.T) {
	nodesEnv := os.Getenv("FDB_CLUSTER_NODES")
	if nodesEnv == "" {
		t.Skip("subprocess helper")
	}
	id, err := strconv.Atoi(os.Getenv("FDB_CLUSTER_ID"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := funcdb.ClusterNodeConfig{
		ID:        id,
		Nodes:     strings.Split(nodesEnv, ","),
		Dir:       os.Getenv("FDB_CLUSTER_DIR"),
		Relations: clusterRels,
	}
	// Failover tests run the subprocess with leases on (heartbeat in ms)
	// and group commit, so its acks carry the same durability contract as
	// the in-process survivors it will be measured against.
	if hbEnv := os.Getenv("FDB_CLUSTER_FAILOVER_MS"); hbEnv != "" {
		hb, err := strconv.Atoi(hbEnv)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Failover = &cluster.FailoverConfig{Heartbeat: time.Duration(hb) * time.Millisecond}
		cfg.Durability = []funcdb.DurabilityOption{funcdb.GroupCommit(2 * time.Millisecond)}
	}
	if lanesEnv := os.Getenv("FDB_CLUSTER_LANES"); lanesEnv != "" {
		lanes, err := strconv.Atoi(lanesEnv)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Lanes = lanes
	}
	node, err := funcdb.OpenClusterNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println("cluster-node-ready")
	_ = node.Serve() // runs until SIGKILL
}

// TestKillNonPrimaryDurability: 2 in-process nodes + 1 subprocess node;
// the subprocess (a non-primary for the relation under test) is
// SIGKILLed mid-workload; every insert the client got a response for is
// recoverable from the primary's archive afterwards.
func TestKillNonPrimaryDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	// Reserve three ports: in-process nodes keep their listeners, the
	// subprocess node's is closed for it to rebind (the window is
	// microseconds; loopback listeners rebind instantly).
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lns[2].Close()

	primaryDir := t.TempDir()
	nodes := make([]*funcdb.ClusterNode, 2)
	for i := 0; i < 2; i++ {
		dir := primaryDir
		if i != 0 {
			dir = t.TempDir()
		}
		node, err := funcdb.OpenClusterNode(funcdb.ClusterNodeConfig{
			ID: i, Nodes: addrs, Listener: lns[i], Dir: dir,
			Relations:  clusterRels,
			Durability: []funcdb.DurabilityOption{funcdb.GroupCommit(2 * time.Millisecond)},
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		go node.Serve()
	}
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.Shutdown()
			}
		}
	}()

	cmd := exec.Command(os.Args[0], "-test.run=TestClusterNodeHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"FDB_CLUSTER_NODES="+strings.Join(addrs, ","),
		"FDB_CLUSTER_ID=2",
		"FDB_CLUSTER_DIR="+t.TempDir(),
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	waitReachable(t, addrs[2])

	// The workload: inserts into a node-0-owned relation (S), some routed
	// directly by a cluster client, some through node 1 as a gateway, and
	// probes at the doomed node's relation (W) to keep it in play.
	rel := relOwnedBy(t, &testCluster{addrs: addrs}, 0)
	cc, err := client.DialCluster(addrs, client.WithClusterOrigin("cc"))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	gw, err := client.Dial(addrs[1], client.WithOrigin("gw"))
	if err != nil {
		t.Fatal(err)
	}
	defer gw.Close()
	doomedRel := relOwnedBy(t, &testCluster{addrs: addrs}, 2)

	acked := 0
	insert := func(ex executor, i int) {
		t.Helper()
		resp, err := ex.Exec(fmt.Sprintf("insert (%d, \"v\") into %s", i, rel))
		if err != nil || resp.Err != nil {
			t.Fatalf("acked path failed at %d: %v / %v", i, err, resp.Err)
		}
		acked++
	}
	const half, total = 40, 80
	for i := 0; i < half; i++ {
		if i%2 == 0 {
			insert(cc, i)
		} else {
			insert(gw, i)
		}
		if i%10 == 0 {
			// Touch the doomed node so its death happens mid-conversation.
			if _, err := cc.Exec(fmt.Sprintf("insert (%d, \"w\") into %s", i, doomedRel)); err != nil {
				t.Fatalf("pre-kill write to node 2 failed: %v", err)
			}
		}
	}

	// Kill the non-primary for rel: a real SIGKILL, no drain, no flush.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()

	for i := half; i < total; i++ {
		if i%2 == 0 {
			insert(cc, i)
		} else {
			insert(gw, i)
		}
		if i%10 == 0 {
			// The dead node's relations fail — as they must — without
			// disturbing the acked path.
			if resp, err := cc.Exec(fmt.Sprintf("insert (%d, \"w\") into %s", i, doomedRel)); err == nil && resp.Err == nil {
				t.Fatal("write to a SIGKILLed node's relation was acked")
			}
		}
	}
	if acked != total {
		t.Fatalf("acked %d inserts, expected %d", acked, total)
	}

	// Drain the primary and reopen its archive cold: every acked insert
	// must have survived.
	if err := nodes[0].Shutdown(); err != nil {
		t.Fatal(err)
	}
	nodes[0] = nil
	reopened, err := funcdb.OpenDir(primaryDir)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for i := 0; i < total; i++ {
		resp, err := reopened.Exec(fmt.Sprintf("find %d in %s", i, rel))
		if err != nil || !resp.Found {
			t.Fatalf("acked insert %d missing from the primary's archive (err %v)", i, err)
		}
	}
}

// waitReachable polls until addr accepts connections.
func waitReachable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		conn, err := net.Dial("tcp", addr)
		if err == nil {
			conn.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("node at %s never came up", addr)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
