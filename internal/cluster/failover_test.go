// Leader failover under real faults: a SIGKILLed primary's slot moves to
// the most-caught-up mirror within the lease window with zero acked
// commits lost; a partition produces exactly one epoch winner and no
// dual-serve; the promotion kill matrix crashes the primary at every
// awkward phase and the winner always holds an exact gap-free prefix of
// the acked workload. Runs under -race in CI.
package cluster_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/cluster"
)

// foOpts shapes one failover test cluster.
type foOpts struct {
	n     int
	lanes int
	hb    time.Duration          // heartbeat (lease = 4x); 0 = 40ms
	ft    *cluster.FaultTransport // optional fault injector on peer links
}

// startFailoverCluster is startCluster with leases, promotion, and epoch
// fencing on, waiting out every node's boot probation so the first
// statement already has a settled ownership view.
func startFailoverCluster(t testing.TB, o foOpts) *testCluster {
	t.Helper()
	if o.hb == 0 {
		o.hb = 40 * time.Millisecond
	}
	lns := make([]net.Listener, o.n)
	addrs := make([]string, o.n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	tc := &testCluster{addrs: addrs, nodes: make([]*funcdb.ClusterNode, o.n)}
	for i := range lns {
		cfg := funcdb.ClusterNodeConfig{
			ID: i, Nodes: addrs, Listener: lns[i], Dir: t.TempDir(),
			Relations: clusterRels, Lanes: o.lanes,
			Failover: &cluster.FailoverConfig{Heartbeat: o.hb},
			Durability: []funcdb.DurabilityOption{
				funcdb.GroupCommit(2 * time.Millisecond),
			},
		}
		if o.ft != nil {
			name := fmt.Sprintf("node%d", i)
			cfg.Dialer = o.ft.Dialer(name)
			o.ft.Locate(name, addrs[i])
		}
		node, err := funcdb.OpenClusterNode(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[i] = node
		go node.Serve()
	}
	t.Cleanup(tc.shutdown)
	for _, node := range tc.nodes {
		if err := node.WaitReady(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	return tc
}

// waitPromoted polls the given live nodes until every one of them agrees
// some NEW owner (not oldOwner) serves the slot in an epoch > atLeast,
// returning the agreed owner and epoch.
func waitPromoted(t *testing.T, tc *testCluster, live []int, slot, oldOwner int, atLeast uint64) (owner int, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		owner, epoch = -1, 0
		agreed := true
		for _, id := range live {
			o, e, _ := tc.nodes[id].FailoverInfo(slot)
			if o == oldOwner || e <= atLeast {
				agreed = false
				break
			}
			if owner == -1 {
				owner, epoch = o, e
			} else if o != owner || e != epoch {
				agreed = false
				break
			}
		}
		if agreed && owner >= 0 {
			return owner, epoch
		}
		if time.Now().After(deadline) {
			for _, id := range live {
				o, e, s := tc.nodes[id].FailoverInfo(slot)
				t.Logf("node %d: slot %d owner=%d epoch=%d serving=%v", id, slot, o, e, s)
			}
			t.Fatalf("slot %d never moved off node %d past epoch %d", slot, oldOwner, atLeast)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// servingCount returns how many of the given nodes claim to serve the
// slot locally.
func servingCount(tc *testCluster, ids []int, slot int) int {
	n := 0
	for _, id := range ids {
		if _, _, serving := tc.nodes[id].FailoverInfo(slot); serving {
			n++
		}
	}
	return n
}

// TestFailoverKillPrimary is the headline: a real subprocess primary is
// SIGKILLed mid-workload. The cluster must resume acking that
// relation's writes (a mirror self-promotes), zero acked commits may be
// lost, and the restarted old primary must demote, catch up from the
// new primary's log, and converge byte-identically as a replica.
func TestFailoverKillPrimary(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lns[2].Close() // the subprocess rebinds this port

	tc := &testCluster{addrs: addrs, nodes: make([]*funcdb.ClusterNode, 3)}
	for i := 0; i < 2; i++ {
		node, err := funcdb.OpenClusterNode(funcdb.ClusterNodeConfig{
			ID: i, Nodes: addrs, Listener: lns[i], Dir: t.TempDir(),
			Relations: clusterRels,
			Failover:  &cluster.FailoverConfig{Heartbeat: 50 * time.Millisecond},
			Durability: []funcdb.DurabilityOption{
				funcdb.GroupCommit(2 * time.Millisecond),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[i] = node
		go node.Serve()
	}
	defer tc.shutdown()

	doomedDir := t.TempDir()
	spawnVictim := func() *exec.Cmd {
		cmd := exec.Command(os.Args[0], "-test.run=TestClusterNodeHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			"FDB_CLUSTER_NODES="+strings.Join(addrs, ","),
			"FDB_CLUSTER_ID=2",
			"FDB_CLUSTER_DIR="+doomedDir,
			"FDB_CLUSTER_FAILOVER_MS=50",
		)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		waitReachable(t, addrs[2])
		return cmd
	}
	cmd := spawnVictim()
	defer cmd.Process.Kill()
	for i := 0; i < 2; i++ {
		if err := tc.nodes[i].WaitReady(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	rel := relOwnedBy(t, tc, 2) // the subprocess's relation
	slot := cluster.OwnerIndex(rel, 3)
	cc, err := client.DialCluster(addrs,
		client.WithClusterOrigin("fo"),
		client.WithFailoverRetry(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Sequential acked inserts; the SIGKILL lands mid-stream. With the
	// retry budget every statement must eventually ack — the ones in
	// flight at the crash ride through the promotion.
	const half, total = 20, 80
	acked := 0
	insert := func(i int) {
		t.Helper()
		resp, err := cc.Exec(fmt.Sprintf("insert (%d, \"v%d\") into %s", i, i, rel))
		if err != nil || resp.Err != nil {
			t.Fatalf("insert %d not acked: %v / %v", i, err, resp.Err)
		}
		acked++
	}
	for i := 0; i < half; i++ {
		insert(i)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()
	resumed := time.Now()
	for i := half; i < total; i++ {
		insert(i)
	}
	t.Logf("workload resumed %v after SIGKILL", time.Since(resumed).Round(time.Millisecond))

	// Exactly one survivor serves the slot, in a promoted epoch.
	winner, epoch := waitPromoted(t, tc, []int{0, 1}, slot, 2, 0)
	if n := servingCount(tc, []int{0, 1}, slot); n != 1 {
		t.Fatalf("%d survivors serve slot %d, want exactly 1", n, slot)
	}
	if epoch == 0 {
		t.Fatalf("promotion left epoch 0")
	}
	t.Logf("slot %d promoted to node %d in epoch %d", slot, winner, epoch)

	// Zero acked commits lost: every insert is readable from the winner.
	for i := 0; i < total; i++ {
		resp, err := cc.Exec(fmt.Sprintf("find %d in %s", i, rel))
		if err != nil || resp.Err != nil || !resp.Found {
			t.Fatalf("acked insert %d lost after failover (err %v resp %+v)", i, err, resp)
		}
	}

	// Restart the old primary cold on the same archive. It must see the
	// higher epoch, demote, rewind past anything the winner never saw,
	// and converge to the winner's exact contents as a replica.
	cmd = spawnVictim()
	defer cmd.Process.Kill()

	primaryScan, err := cc.Exec("scan " + rel)
	if err != nil || primaryScan.Err != nil {
		t.Fatalf("scan on winner: %v / %v", err, primaryScan.Err)
	}
	want := make([]string, len(primaryScan.Tuples))
	for i, tu := range primaryScan.Tuples {
		want[i] = tu.String()
	}

	rejoined, err := client.DialCluster(addrs[2:3], client.WithClusterOrigin("rejoin"))
	if err != nil {
		t.Fatal(err)
	}
	defer rejoined.Close()
	deadline := time.Now().Add(20 * time.Second)
	for {
		resp, err := rejoined.ExecReplica("scan " + rel)
		if err == nil && resp.Err == nil && len(resp.Tuples) == len(want) {
			got := make([]string, len(resp.Tuples))
			for i, tu := range resp.Tuples {
				got[i] = tu.String()
			}
			if strings.Join(got, " ") == strings.Join(want, " ") {
				break // byte-identical
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("restarted primary never converged to the winner's contents (last err %v)", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestPartitionSingleWinner cuts the primary for a slot away from the
// majority: the majority side must elect exactly one winner in a higher
// epoch, the minority primary must refuse writes (no dual-serve), and on
// heal the deposed primary must adopt the winner's epoch and demote.
func TestPartitionSingleWinner(t *testing.T) {
	if testing.Short() {
		t.Skip("lease-timing test")
	}
	ft := cluster.NewFaultTransport(1)
	tc := startFailoverCluster(t, foOpts{n: 3, ft: ft})
	const victim = 1
	rel := relOwnedBy(t, tc, victim)
	slot := cluster.OwnerIndex(rel, 3)

	cc, err := client.DialCluster(tc.addrs,
		client.WithClusterOrigin("part"),
		client.WithFailoverRetry(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	for i := 0; i < 10; i++ {
		if resp, err := cc.Exec(fmt.Sprintf("insert (%d, \"p\") into %s", i, rel)); err != nil || resp.Err != nil {
			t.Fatalf("pre-partition insert %d: %v / %v", i, err, resp.Err)
		}
	}

	ft.Partition([]string{"node1"}, []string{"node0", "node2"})

	// The majority side promotes exactly one winner in a new epoch.
	winner, epoch := waitPromoted(t, tc, []int{0, 2}, slot, victim, 0)
	if n := servingCount(tc, []int{0, 2}, slot); n != 1 {
		t.Fatalf("%d majority nodes serve slot %d, want exactly 1", n, slot)
	}
	t.Logf("majority promoted node %d for slot %d in epoch %d", winner, slot, epoch)

	// No dual-serve: the isolated primary has lost its quorum, so a write
	// sent straight to it must NOT be acked.
	iso, err := client.DialCluster(tc.addrs[victim:victim+1], client.WithClusterOrigin("iso"))
	if err != nil {
		t.Fatal(err)
	}
	defer iso.Close()
	if resp, err := iso.Exec(fmt.Sprintf("insert (901, \"x\") into %s", rel)); err == nil && resp.Err == nil {
		t.Fatalf("isolated minority primary acked a write for slot %d", slot)
	}

	// The majority side keeps acking through the winner.
	winCl, err := client.DialCluster([]string{tc.addrs[0], tc.addrs[2]},
		client.WithClusterOrigin("maj"),
		client.WithFailoverRetry(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer winCl.Close()
	for i := 10; i < 20; i++ {
		if resp, err := winCl.Exec(fmt.Sprintf("insert (%d, \"p\") into %s", i, rel)); err != nil || resp.Err != nil {
			t.Fatalf("majority insert %d during partition: %v / %v", i, err, resp.Err)
		}
	}

	// Heal: the deposed primary sees the higher epoch and demotes; all
	// three nodes converge on the same (owner, epoch) view.
	ft.Heal()
	deadline := time.Now().Add(15 * time.Second)
	for {
		o, e, serving := tc.nodes[victim].FailoverInfo(slot)
		if o == winner && e == epoch && !serving {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("deposed primary never demoted: owner=%d epoch=%d serving=%v (want owner=%d epoch=%d serving=false)",
				o, e, serving, winner, epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := servingCount(tc, []int{0, 1, 2}, slot); n != 1 {
		t.Fatalf("%d nodes serve slot %d after heal, want exactly 1", n, slot)
	}

	// Nothing acked was lost across the partition.
	for i := 0; i < 20; i++ {
		resp, err := winCl.Exec(fmt.Sprintf("find %d in %s", i, rel))
		if err != nil || resp.Err != nil || !resp.Found {
			t.Fatalf("acked insert %d lost across the partition (err %v)", i, err)
		}
	}
}

// TestPromotionKillMatrix crashes the primary (in-process Kill: no
// drain, no flush) at each awkward phase, for 1-lane and 4-lane stores.
// Every acked commit must be on the winner, and the recovered relation
// must hold an exact gap-free prefix of the sequential workload — a gap
// would mean an acked write vanished while a later one survived.
func TestPromotionKillMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-matrix test")
	}
	phases := []string{"mid-batch", "group-commit-flush", "replica-catch-up", "post-promotion"}
	for _, lanes := range []int{1, 4} {
		for _, phase := range phases {
			t.Run(fmt.Sprintf("%s/lanes=%d", phase, lanes), func(t *testing.T) {
				runKillCell(t, phase, lanes)
			})
		}
	}
}

func runKillCell(t *testing.T, phase string, lanes int) {
	n := 3
	if phase == "post-promotion" {
		// Two crashes; the three nodes left are still a majority of five.
		n = 5
	}
	tc := startFailoverCluster(t, foOpts{n: n, lanes: lanes})
	rel := clusterRels[0]
	victim := cluster.OwnerIndex(rel, n)
	slot := victim

	cc, err := client.DialCluster(tc.addrs,
		client.WithClusterOrigin("km"),
		client.WithFailoverRetry(20*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	acked := 0
	insert := func() {
		t.Helper()
		resp, err := cc.Exec(fmt.Sprintf("insert (%d, \"k%d\") into %s", acked, acked, rel))
		if err != nil || resp.Err != nil {
			t.Fatalf("insert %d not acked (phase %s): %v / %v", acked, phase, err, resp.Err)
		}
		acked++
	}
	insertBatch := func(size int) {
		t.Helper()
		qs := make([]string, size)
		for i := range qs {
			qs[i] = fmt.Sprintf("insert (%d, \"k%d\") into %s", acked+i, acked+i, rel)
		}
		resps, err := cc.ExecBatch(qs)
		if err != nil {
			t.Fatalf("batch at %d not acked (phase %s): %v", acked, phase, err)
		}
		for i, resp := range resps {
			if resp.Err != nil {
				t.Fatalf("batch statement %d failed (phase %s): %v", acked+i, phase, resp.Err)
			}
		}
		acked += size
	}

	live := make([]int, 0, n-1)
	for id := 0; id < n; id++ {
		if id != victim {
			live = append(live, id)
		}
	}
	lastEpoch := uint64(0)
	for i := 0; i < 20; i++ {
		insert()
	}
	switch phase {
	case "mid-batch":
		// Crash while a multi-statement Forward is in flight: the batch
		// itself must ride through the promotion and ack completely.
		done := make(chan struct{})
		go func() {
			defer close(done)
			time.Sleep(2 * time.Millisecond)
			tc.nodes[victim].Kill()
		}()
		insertBatch(40)
		<-done
	case "group-commit-flush":
		// Crash with writes sitting in the 2ms group-commit window: a
		// burst of acked singles, then the kill with zero settling time.
		for i := 0; i < 30; i++ {
			insert()
		}
		tc.nodes[victim].Kill()
	case "replica-catch-up":
		// Crash while the mirrors are visibly behind: hammer unacked load
		// through a batch, then kill as soon as a survivor reports lag.
		done := make(chan struct{})
		go func() {
			defer close(done)
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) {
				if tc.nodes[victim].Store().Current().Version() > tc.nodes[live[0]].ReplicaVersion(victim) {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			tc.nodes[victim].Kill()
		}()
		insertBatch(60)
		<-done
	case "post-promotion":
		// First crash, wait for the winner, then crash the winner the
		// instant it starts serving: a second promotion in a higher epoch
		// must still hold every acked commit.
		tc.nodes[victim].Kill()
		winner, epoch := waitPromoted(t, tc, live, slot, victim, 0)
		insert() // acked by the first winner
		tc.nodes[winner].Kill()
		next := make([]int, 0, len(live)-1)
		for _, id := range live {
			if id != winner {
				next = append(next, id)
			}
		}
		live, lastEpoch = next, epoch
	}

	// The cluster resumes: post-crash inserts ack against the winner.
	for i := 0; i < 20; i++ {
		insert()
	}
	winner, epoch := waitPromoted(t, tc, live, slot, victim, lastEpoch)
	if got := servingCount(tc, live, slot); got != 1 {
		t.Fatalf("%d live nodes serve slot %d, want exactly 1", got, slot)
	}
	t.Logf("phase %s lanes %d: %d acked, winner node %d epoch %d", phase, lanes, acked, winner, epoch)

	// Every acked commit on the winner, and the recovered contents are an
	// exact prefix: keys 0..acked-1 all present, nothing above the count
	// but possibly the in-flight tail (none here — the workload is
	// sequential, so the count must be exact).
	for i := 0; i < acked; i++ {
		resp, err := cc.Exec(fmt.Sprintf("find %d in %s", i, rel))
		if err != nil || resp.Err != nil || !resp.Found {
			t.Fatalf("acked insert %d lost (phase %s lanes %d): %v", i, phase, lanes, err)
		}
	}
	resp, err := cc.Exec("count " + rel)
	if err != nil || resp.Err != nil {
		t.Fatalf("count: %v / %v", err, resp.Err)
	}
	if resp.Count != acked {
		t.Fatalf("winner holds %d tuples for %d acked inserts — recovery is not an exact prefix", resp.Count, acked)
	}
}

// TestFaultTransportDeterminism: the injector's drop decisions replay
// identically for the same seed — the property that makes a partition
// test reproducible.
func TestFaultTransportDeterminism(t *testing.T) {
	pattern := func(seed int64) string {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer ln.Close()
		got := make(chan []byte, 1)
		go func() {
			conn, err := ln.Accept()
			if err != nil {
				got <- nil
				return
			}
			defer conn.Close()
			buf := make([]byte, 256)
			var all []byte
			for {
				n, err := conn.Read(buf)
				all = append(all, buf[:n]...)
				if err != nil {
					got <- all
					return
				}
			}
		}()
		ft := cluster.NewFaultTransport(seed)
		ft.Drop(0.5)
		conn, err := ft.Dialer("a")(ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if _, err := conn.Write([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		conn.Close()
		return fmt.Sprintf("%x", <-got)
	}
	a, b := pattern(42), pattern(42)
	if a != b {
		t.Fatalf("same seed diverged:\n  %s\n  %s", a, b)
	}
	if len(a) == 0 || len(a) == 2*64 {
		t.Fatalf("drop probability 0.5 dropped %d of 64 writes — injector inert", 64-len(a)/2)
	}
	if c := pattern(43); c == a {
		t.Fatalf("different seeds produced the identical drop pattern")
	}
}
