package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// FaultTransport is a deterministic fault injector for cluster links:
// every connection a node dials goes through it, and a seeded RNG
// decides — reproducibly — which writes are dropped or delayed. Network
// partitions sever live connections between the separated groups and
// refuse new dials across the cut, which is exactly what a lease-based
// failure detector sees when a switch dies.
//
// It wraps outbound dials only (heartbeats, forwards, replication
// streams all dial through the node's DialFunc), so the process under
// test still binds real listeners; the injector needs no cooperation
// from the accepting side.
type FaultTransport struct {
	mu        sync.Mutex
	rng       *rand.Rand
	dropProb  float64
	delay     time.Duration
	groups    map[string]int    // node name → partition group; empty = healed
	addrNames map[string]string // listen address → node name (via Locate)
	conns     map[*faultConn]struct{}
}

// NewFaultTransport returns an injector whose random decisions replay
// identically for the same seed.
func NewFaultTransport(seed int64) *FaultTransport {
	return &FaultTransport{
		rng:    rand.New(rand.NewSource(seed)),
		groups: make(map[string]int),
		conns:  make(map[*faultConn]struct{}),
	}
}

// Dialer returns the DialFunc for one node. The name identifies which
// side of a partition the node lives on.
func (t *FaultTransport) Dialer(from string) DialFunc {
	return func(addr string) (net.Conn, error) {
		t.mu.Lock()
		if t.severedLocked(from, addr) {
			t.mu.Unlock()
			return nil, fmt.Errorf("fault: %s is partitioned from %s", from, addr)
		}
		t.mu.Unlock()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		fc := &faultConn{Conn: conn, t: t, from: from, to: addr}
		t.mu.Lock()
		t.conns[fc] = struct{}{}
		t.mu.Unlock()
		return fc, nil
	}
}

// Drop sets the probability (0..1) that any single Write is silently
// discarded. Cluster frames are written one frame per Write on the
// paths that matter for failover (heartbeats), so a drop is a lost
// frame, not a torn one; on streamed connections a drop kills the
// connection state and forces a redial, which is also a legitimate
// fault.
func (t *FaultTransport) Drop(p float64) {
	t.mu.Lock()
	t.dropProb = p
	t.mu.Unlock()
}

// Delay sleeps every Write by d before it reaches the socket.
func (t *FaultTransport) Delay(d time.Duration) {
	t.mu.Lock()
	t.delay = d
	t.mu.Unlock()
}

// Partition splits the nodes into groups: traffic within a group flows,
// traffic between groups is cut — live connections crossing the cut are
// severed immediately and dials across it fail until Heal. Node names
// must match the `from` passed to Dialer; a node in no group can talk
// to everyone.
func (t *FaultTransport) Partition(groups ...[]string) {
	t.mu.Lock()
	t.groups = make(map[string]int)
	for i, g := range groups {
		for _, name := range g {
			t.groups[name] = i
		}
	}
	var sever []*faultConn
	for fc := range t.conns {
		if t.severedLocked(fc.from, fc.to) {
			sever = append(sever, fc)
		}
	}
	t.mu.Unlock()
	for _, fc := range sever {
		fc.Conn.Close()
	}
}

// Heal removes any partition.
func (t *FaultTransport) Heal() {
	t.mu.Lock()
	t.groups = make(map[string]int)
	t.mu.Unlock()
}

// severedLocked reports whether from→toAddr crosses a partition cut.
// Partitions are name-based (dialers know names, dials know addresses);
// tests register the name↔address mapping with Locate. An unregistered
// destination, or a node in no group, is reachable by everyone.
func (t *FaultTransport) severedLocked(from, toAddr string) bool {
	if len(t.groups) == 0 {
		return false
	}
	gf, okf := t.groups[from]
	to, known := t.addrNames[toAddr]
	if !known {
		return false
	}
	gt, okt := t.groups[to]
	return okf && okt && gf != gt
}

// Locate registers a node's listen address under its name so partitions
// can match dials by destination.
func (t *FaultTransport) Locate(name, addr string) {
	t.mu.Lock()
	if t.addrNames == nil {
		t.addrNames = make(map[string]string)
	}
	t.addrNames[addr] = name
	t.mu.Unlock()
}

// faultConn applies the injector's current drop/delay policy to writes.
type faultConn struct {
	net.Conn
	t    *FaultTransport
	from string
	to   string
}

func (c *faultConn) Write(b []byte) (int, error) {
	t := c.t
	t.mu.Lock()
	if t.severedLocked(c.from, c.to) {
		t.mu.Unlock()
		c.Conn.Close()
		return 0, fmt.Errorf("fault: connection %s→%s severed by partition", c.from, c.to)
	}
	drop := t.dropProb > 0 && t.rng.Float64() < t.dropProb
	delay := t.delay
	t.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if drop {
		// Pretend the bytes went out; the peer never sees them.
		return len(b), nil
	}
	return c.Conn.Write(b)
}

func (c *faultConn) Close() error {
	t := c.t
	t.mu.Lock()
	delete(t.conns, c)
	t.mu.Unlock()
	return c.Conn.Close()
}
