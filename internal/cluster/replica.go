package cluster

import (
	"bufio"
	"fmt"
	"strings"
	"sync"
	"time"

	"funcdb/internal/archive"
	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/metrics"
	"funcdb/internal/relation"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
	"funcdb/internal/trace"
	"funcdb/internal/wire"
)

// mirror is this node's replica of one peer's relations: a plain engine
// fed exclusively by the peer's log records, applied in sequence order.
// The peer's log sequence IS the engine's version number — the mirror
// starts from the same initial version (the peer's owned relations,
// empty, version 0) and applies exactly the peer's committed writes — so
// a read planned against the mirror carries the precise primary version
// it reflects: the client's staleness bound.
type mirror struct {
	peer     int
	eng      *core.Engine
	records  metrics.Counter // log records applied to this mirror
	connects metrics.Counter // subscription (re)connects to the peer

	// keepTail (set before Start on failover clusters) retains the raw
	// bytes of recently applied records so that, after a promotion, the
	// frozen tail can bridge subscribers below the takeover store's log
	// floor. Bounded by failoverTailCap.
	keepTail bool
	tailMu   sync.Mutex
	tailFrom int64 // seq of the record before tailRecs[0]
	tailRecs [][]byte
}

func newMirror(peerIdx int, ownedRels []string) *mirror {
	return &mirror{
		peer: peerIdx,
		eng:  core.NewEngine(database.New(relation.RepList, ownedRels...)),
	}
}

// newMirrorFromDB starts a mirror at an explicit database version: the
// rejoin path's self-mirror, rewound to the winner's promotion base.
func newMirrorFromDB(peerIdx int, db *database.Database) *mirror {
	return &mirror{peer: peerIdx, eng: core.NewEngine(db)}
}

// version is the newest primary sequence the mirror has applied.
func (m *mirror) version() int64 { return m.eng.Version() }

// apply installs one shipped record (raw is its wire form, retained for
// the post-promotion tail when keepTail is set). Records must arrive in
// exactly primary order: seq == applied+1. A gap means the stream
// skipped something the record form cannot carry (a custom transaction
// on the primary) — the mirror refuses rather than silently diverge.
func (m *mirror) apply(seq int64, tx core.Transaction, raw []byte) error {
	if have := m.version(); seq != have+1 {
		return fmt.Errorf("cluster: replication gap from node %d: record %d after %d", m.peer, seq, have)
	}
	m.eng.Submit(tx).Force()
	m.records.Inc()
	if m.keepTail {
		m.tailMu.Lock()
		if len(m.tailRecs) == 0 {
			m.tailFrom = seq - 1
		}
		m.tailRecs = append(m.tailRecs, append([]byte(nil), raw...))
		if len(m.tailRecs) > failoverTailCap {
			m.tailRecs = m.tailRecs[1:]
			m.tailFrom++
		}
		m.tailMu.Unlock()
	}
	return nil
}

// freezeTail snapshots the retained record tail at promotion time.
func (m *mirror) freezeTail() *recordTail {
	m.tailMu.Lock()
	defer m.tailMu.Unlock()
	return &recordTail{from: m.tailFrom, recs: append([][]byte(nil), m.tailRecs...)}
}

// ReplicaRead implements server.ReplicaReader: serve a read-only
// transaction version-stamped from the freshest local copy. A relation
// owned elsewhere reads from its log-shipped mirror, stamped with the
// mirror's applied version; a relation owned HERE reads from the primary
// store itself, stamped with the store's version at plan time — zero
// staleness, but the same contract, so a client's ExecReplica reports a
// meaningful Version whichever node it happens to dial. ok=false when no
// local copy can serve the read (replication off and owned elsewhere).
func (n *Node) ReplicaRead(tx core.Transaction) (*session.Future, bool) {
	if !tx.IsReadOnly() || tx.Kind == core.KindCustom {
		return nil, false
	}
	slot := OwnerIndex(tx.Rel, len(n.addrs))
	if n.fo != nil {
		// The slot this node SERVES (own store or takeover) answers with
		// zero staleness; anything else falls to its mirror — including
		// this node's own former slot after a demotion.
		if st := n.fo.authorityStore(slot); st != nil {
			return st.SubmitTagged([]core.Transaction{stampedRead(tx)})[0], true
		}
	} else if slot == n.id {
		return n.store.SubmitTagged([]core.Transaction{stampedRead(tx)})[0], true
	}
	m := n.mirrorRef(slot)
	if m == nil {
		return nil, false
	}
	return m.eng.Submit(stampedRead(tx)), true
}

// ReplicaVersion reports the mirror's applied version for a peer, or -1
// without one (introspection for staleness tests and stats).
func (n *Node) ReplicaVersion(peerIdx int) int64 {
	m := n.mirrorRef(peerIdx)
	if m == nil {
		return -1
	}
	return m.version()
}

// stampedRead wraps a built-in read-only transaction so it runs against
// one consistent mirror version and stamps that version into the
// response. The wrapper is a custom transaction with the original's
// declared read set: the engine gives its body a scoped view pinned at
// plan time, whose Version() is exactly the replica's applied primary
// sequence.
func stampedRead(tx core.Transaction) core.Transaction {
	inner := tx
	return core.Transaction{
		Origin: tx.Origin,
		Seq:    tx.Seq,
		Kind:   core.KindCustom,
		Reads:  []string{tx.Rel},
		Query:  tx.Query,
		Custom: func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (core.Response, *database.Database, trace.Op) {
			resp, _, op := inner.Apply(ctx, db, after)
			resp.Version = db.Version()
			return resp, db, op
		},
	}
}

// replicateFrom pulls one peer's log until the node closes: dial,
// subscribe from the mirror's version, apply records as they stream in,
// and retry after transient failures (the peer restarting, the link
// dropping). A replication gap is permanent for this mirror — it stops
// rather than diverge.
func (n *Node) replicateFrom(peerIdx int, m *mirror) {
	defer n.wg.Done()
	for !n.closing.Load() {
		if n.fo != nil && n.fo.ownerOf(peerIdx) == n.id {
			// This node was promoted into the slot: the takeover store is
			// now the authority and the mirror's job is done.
			return
		}
		err := n.streamFrom(peerIdx, m)
		if n.closing.Load() {
			return
		}
		if err == errReplicationGap {
			return
		}
		time.Sleep(replicaRetryDelay)
	}
}

// errReplicationGap marks the unrecoverable stream discontinuity.
var errReplicationGap = fmt.Errorf("cluster: replication gap")

// errNodeClosing reports a dial that lost the race against Close.
var errNodeClosing = fmt.Errorf("cluster: node closing")

// replicaRetryDelay paces re-subscription after a dropped stream.
const replicaRetryDelay = 100 * time.Millisecond

// streamFrom runs one subscription: handshake, Subscribe(after), then a
// LogRecord loop until the stream ends. Under failover the dial target
// is the slot's CURRENT owner (re-resolved per attempt, so a mirror
// follows its slot across promotions), the subscription is
// slot-addressed, records arrive epoch-stamped, and each applied record
// is acked back — the primary's write gate counts those acks.
func (n *Node) streamFrom(peerIdx int, m *mirror) error {
	target := peerIdx
	if n.fo != nil {
		target = n.fo.ownerOf(peerIdx)
		if target == n.id {
			return nil
		}
	}
	conn, err := n.dial(n.addrs[target])
	if err != nil {
		return err
	}
	if !n.trackConn(conn) {
		// Close won the race against this dial: the conn was refused at
		// registration (and closed), so the loop can only exit.
		conn.Close()
		return errNodeClosing
	}
	defer func() {
		n.untrackConn(conn)
		conn.Close()
	}()

	bw := bufio.NewWriterSize(conn, peerWriteBufSize)
	rd := wire.NewReader(bufio.NewReaderSize(conn, peerReadBufSize))
	hello := wire.AppendHello(nil, wire.Hello{Origin: fmt.Sprintf("%s-repl", n.origin)})
	if err := wire.WriteFrame(bw, wire.FrameHello, hello); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	typ, payload, err := rd.Next()
	if err != nil || typ != wire.FrameWelcome {
		return fmt.Errorf("cluster: replication handshake with node %d failed: %v", target, err)
	}
	if _, err := wire.DecodeWelcome(payload); err != nil {
		return err
	}
	var sub []byte
	if n.fo != nil {
		sub = wire.AppendSubscribeFrom(nil, m.version(), peerIdx, n.id)
	} else {
		sub = wire.AppendSubscribe(nil, m.version())
	}
	if err := wire.WriteFrame(bw, wire.FrameSubscribe, sub); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	m.connects.Inc()
	trRec := n.TraceRecorder()
	// The LogRecord loop reuses the Reader's body buffer across records:
	// DecodeTxnRecordTail copies everything it extracts, so the payload's
	// next-read invalidation never escapes this loop.
	for {
		typ, payload, err := rd.Next()
		if err != nil {
			return err
		}
		var record []byte
		switch typ {
		case wire.FrameLogRecord:
			record = payload
		case wire.FrameLogRecordE:
			epoch, rec, derr := wire.DecodeLogRecordE(payload)
			if derr != nil {
				return derr
			}
			if n.fo != nil {
				known := n.fo.epochOf(peerIdx)
				if epoch < known {
					// A deposed primary still streaming its old epoch: drop
					// the stream and re-resolve to the real owner.
					return fmt.Errorf("cluster: stale epoch %d on slot %d stream (know %d)", epoch, peerIdx, known)
				}
				if epoch > known {
					// The stream knows of a promotion gossip has not yet
					// delivered: the node we dialed serves this epoch.
					n.fo.noteStreamEpoch(peerIdx, target, epoch)
				}
			}
			record = rec
		case wire.FrameError:
			_, _, msg, derr := wire.DecodeErrorMsg(payload)
			if derr != nil {
				return derr
			}
			if strings.Contains(msg, "predates the retained log") {
				// The owner's log floor is above our version and no tail can
				// bridge it: this mirror cannot catch up by streaming.
				return errReplicationGap
			}
			return fmt.Errorf("cluster: node %d refused subscription: %s", target, msg)
		default:
			return fmt.Errorf("cluster: unexpected frame %#x in replication stream", typ)
		}
		seq, tx, rest, err := archive.DecodeTxnRecordTail(record)
		if err != nil {
			return err
		}
		// A version-5 primary stamps the trace-context suffix onto stream
		// records of sampled requests: open the mirror's leg of the trace
		// here, and keep the RETAINED record bytes suffix-free so a
		// post-promotion tail replay never re-ships a stale context.
		var rt *reqtrace.T
		var applyStart time.Time
		if len(rest) > 0 {
			tc, tcErr := wire.DecodeTraceCtx(rest)
			if tcErr != nil {
				return tcErr
			}
			record = record[:len(record)-len(rest)]
			if trRec != nil && tc.Sampled {
				rt = trRec.StartCtx(reqtrace.Ctx{ID: tc.ID, Hop: tc.Hop, Sampled: tc.Sampled})
				applyStart = time.Now()
			}
		}
		if err := m.apply(seq, tx, record); err != nil {
			return errReplicationGap
		}
		if rt != nil {
			rt.Span(reqtrace.StageReplicaApply, applyStart, time.Now())
			trRec.Finish(rt)
		}
		if tx.Kind == core.KindCreate {
			// A relation born on the peer: cached statements touching
			// it must re-translate, exactly as after a local create.
			n.cache.InvalidateRel(tx.Rel)
		}
		if n.fo != nil {
			if err := wire.WriteFrame(bw, wire.FrameSubAck, wire.AppendSubAck(nil, seq)); err != nil {
				return err
			}
			if err := bw.Flush(); err != nil {
				return err
			}
		}
	}
}

// trackConn registers a replication dial for Close to sever. It reports
// false — refusing the conn — when Close has already swept the list: a
// dial completing after the sweep would otherwise outlive the node and
// wedge Close's wg.Wait on a read nobody will ever unblock.
func (n *Node) trackConn(c closable) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closing.Load() {
		return false
	}
	n.subConns = append(n.subConns, c)
	return true
}

func (n *Node) untrackConn(c closable) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, have := range n.subConns {
		if have == c {
			n.subConns = append(n.subConns[:i], n.subConns[i+1:]...)
			return
		}
	}
}
