// Package cluster runs the paper's primary-copy distribution model
// (Section 3.1) over the real wire: N nodes, each an fdbserver-style
// listener wrapping a local store, with the lane hash as the placement
// function. It is the bridge the ROADMAP names between the in-memory
// distribution models (internal/primarysite, internal/primarycopy on the
// netsim medium) and the TCP stack of PR 4 (internal/wire, internal/
// server, internal/session).
//
// Placement is lane ownership: relation rel's primary lives on node
// core.LaneOf(rel, N) — the same deterministic hash that splits a store's
// admission lanes, so disjoint-relation traffic lands on disjoint nodes
// AND disjoint lanes, and every node (and every cluster-aware client)
// computes the same answer from the relation name alone, with no
// directory service to consult or keep consistent. The root directory of
// the paper's Section 3.2 degenerates to a pure function.
//
// A node is three things at once:
//
//   - the PRIMARY for the relations that hash to it: statements arrive
//     over the wire (directly, forwarded, or from local sessions) and are
//     admitted into its store's lanes;
//   - a GATEWAY for everything else: a statement for a relation owned
//     elsewhere is forwarded over a persistent inter-node wire connection
//     as a pre-tagged Forward frame, and the tagged response is relayed
//     back, so any node can serve any client;
//   - a REPLICA of its peers: each node subscribes to every peer's
//     committed-transaction log (the archive's records, shipped as
//     LogRecord frames) and applies it, in order, to a local mirror
//     engine. Read-only statements can then be answered locally, stamped
//     with the mirror's version — the client's staleness bound.
//
// The subsystem is deliberately thin glue: the durability log is the
// replication stream, the lane hash is the placement function, the
// session layer is the routing point, and the medium is real TCP.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/lenient"
	"funcdb/internal/metrics"
	"funcdb/internal/query"
	"funcdb/internal/reqtrace"
	"funcdb/internal/session"
)

// LocalStore is the node-local store surface the cluster builds on.
// *funcdb.Store satisfies it (the public OpenClusterNode constructs one);
// tests may substitute lighter implementations.
type LocalStore interface {
	// SubmitTagged admits pre-tagged transactions in one arbitration.
	SubmitTagged(txs []core.Transaction) []*session.Future
	// Lanes reports the store's admission lane count.
	Lanes() int
	// Durable reports whether committed writes reach an archive.
	Durable() bool
	// Barrier waits for every admitted transaction and flushes pending
	// durable records.
	Barrier()
	// DurabilityErr reports the sticky durability failure, if any.
	DurabilityErr() error
	// Current materializes the store's present version.
	Current() *database.Database
	// SubscribeLog streams the committed-transaction log (the archive's
	// records): the primary side of replication.
	SubscribeLog(after int64, fn func(seq int64, record []byte)) (cancel func(), err error)
}

// Config describes one node of a cluster.
type Config struct {
	// ID is this node's index into Addrs.
	ID int
	// Addrs lists every node's advertised address, in cluster order. The
	// list is the cluster membership AND the placement domain: relation
	// rel belongs to node core.LaneOf(rel, len(Addrs)).
	Addrs []string
	// Store is this node's primary store, holding exactly the relations
	// that hash to ID (OwnedRelations selects them from a shared schema).
	Store LocalStore
	// Relations is the cluster-wide schema: the initial relations across
	// all nodes. Each peer's mirror starts from the peer's owned subset.
	Relations []string
	// Replicate enables log-shipped replicas of the peers' relations
	// (required for replica reads; needs every peer to be durable).
	Replicate bool
	// Failover enables lease-based failure detection, self-promotion of
	// the most-caught-up mirror, and epoch fencing (requires Replicate
	// and Promote). Nil keeps the static placement of earlier versions.
	Failover *FailoverConfig
	// Promote builds the takeover store when this node wins a dead
	// peer's slot (funcdb supplies one; required with Failover).
	Promote PromoteFunc
	// Dialer opens outbound connections (forwards, replication streams,
	// heartbeats). Nil means net.Dial("tcp", addr); tests inject a
	// FaultTransport dialer here.
	Dialer DialFunc
}

// OwnerIndex returns the node index owning rel's primary in an n-node
// cluster: the placement function, shared with clients.
func OwnerIndex(rel string, n int) int { return core.LaneOf(rel, n) }

// OwnedRelations selects the relations of a shared schema that node id
// owns in an n-node cluster.
func OwnedRelations(relations []string, id, n int) []string {
	var out []string
	for _, rel := range relations {
		if OwnerIndex(rel, n) == id {
			out = append(out, rel)
		}
	}
	return out
}

// Node is one cluster member: primary, gateway, and replica (see the
// package comment). It implements server.Host (sessions route through
// its submitter), server.Placer (redirects), server.ReplicaReader
// (stale reads), and server.LogSource (its own log, for its replicas).
type Node struct {
	id      int
	addrs   []string
	store   LocalStore
	cache   *query.StmtCache
	origin  string
	dial    DialFunc
	promote PromoteFunc

	peers []*peer // by node index; nil at n.id
	m     *metrics.Cluster
	fo    *failover // nil without Config.Failover

	closing atomic.Bool
	wg      sync.WaitGroup // replication loops

	mu       sync.Mutex
	subConns []closable // live replication dials, closed on Close
	mirrors  []*mirror  // by node index; nil at n.id (and without Replicate); slot n.id is installed by rejoin
}

// closable is the subset of net.Conn Close needs.
type closable interface{ Close() error }

// New assembles a node. With cfg.Replicate, Start must be called to
// begin pulling the peers' logs.
func New(cfg Config) (*Node, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("cluster: no node addresses")
	}
	if cfg.ID < 0 || cfg.ID >= len(cfg.Addrs) {
		return nil, fmt.Errorf("cluster: node id %d outside 0..%d", cfg.ID, len(cfg.Addrs)-1)
	}
	if cfg.Store == nil {
		return nil, errors.New("cluster: node needs a local store")
	}
	if cfg.Failover != nil {
		if !cfg.Replicate {
			return nil, errors.New("cluster: failover requires Replicate (promotion serves from the mirrors)")
		}
		if cfg.Promote == nil {
			return nil, errors.New("cluster: failover requires a Promote factory for takeover stores")
		}
		if len(cfg.Addrs) < 2 {
			return nil, errors.New("cluster: failover needs at least two nodes")
		}
	}
	n := &Node{
		id:      cfg.ID,
		addrs:   append([]string(nil), cfg.Addrs...),
		store:   cfg.Store,
		cache:   query.NewStmtCache(0),
		origin:  fmt.Sprintf("node%d", cfg.ID),
		dial:    cfg.Dialer,
		promote: cfg.Promote,
		m:       &metrics.Cluster{},
	}
	if n.dial == nil {
		n.dial = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	n.peers = make([]*peer, len(n.addrs))
	for i, addr := range n.addrs {
		if i != n.id {
			n.peers[i] = newPeer(n.origin, addr, n.m, n.dial)
		}
	}
	if cfg.Replicate {
		n.mirrors = make([]*mirror, len(n.addrs))
		for i := range n.addrs {
			if i == n.id {
				continue
			}
			owned := OwnedRelations(cfg.Relations, i, len(n.addrs))
			m := newMirror(i, owned)
			m.keepTail = cfg.Failover != nil
			n.mirrors[i] = m
		}
	}
	if cfg.Failover != nil {
		n.fo = newFailover(n, *cfg.Failover)
	}
	return n, nil
}

// Start launches the replication loops — one subscription per peer,
// retried until Close — and, with failover, the heartbeat loops. A
// no-op without Replicate.
func (n *Node) Start() {
	for i, m := range n.mirrors {
		if m == nil {
			continue
		}
		n.wg.Add(1)
		go n.replicateFrom(i, m)
	}
	if n.fo != nil {
		n.fo.start()
	}
}

// Close stops the replication loops and the inter-node connections. The
// local store stays open (the caller owns it). The closing flag is
// published before the sweep and checked by trackConn under the same
// mutex, so a replication dial racing with Close either lands in the
// sweep or is refused at registration — no connection escapes.
func (n *Node) Close() {
	n.closing.Store(true)
	n.mu.Lock()
	for _, c := range n.subConns {
		c.Close()
	}
	n.subConns = nil
	n.mu.Unlock()
	for _, p := range n.peers {
		if p != nil {
			p.close()
		}
	}
	if n.fo != nil {
		// Wake any write gated on replication acks; it answers ErrFenced.
		n.fo.cond.Broadcast()
	}
	n.wg.Wait()
}

// ID returns the node's cluster index.
func (n *Node) ID() int { return n.id }

// Addr returns the node's advertised address.
func (n *Node) Addr() string { return n.addrs[n.id] }

// ClusterSize returns the number of nodes.
func (n *Node) ClusterSize() int { return len(n.addrs) }

// Owner implements server.Placer: the advertised address of rel's
// primary, and whether that primary is this node. With failover the
// slot's CURRENT owner answers, which may differ from the placement
// hash after a promotion.
func (n *Node) Owner(rel string) (addr string, self bool) {
	idx := OwnerIndex(rel, len(n.addrs))
	if n.fo != nil {
		idx = n.fo.ownerOf(idx)
	}
	return n.addrs[idx], idx == n.id
}

// Session implements server.Host: a per-connection execution context
// whose submitter is the node's router, sharing the node-wide statement
// cache. Local statements land in the store's lanes; remote ones are
// forwarded — the caller cannot tell which is which.
func (n *Node) Session(origin string) *session.Session {
	return session.New(n, session.WithOrigin(origin), session.WithCache(n.cache))
}

// Lanes implements server.Host.
func (n *Node) Lanes() int { return n.store.Lanes() }

// Durable implements server.Host.
func (n *Node) Durable() bool { return n.store.Durable() }

// Barrier implements server.Host: it settles the local store (admission
// and durability). Forwarded statements settle through their response
// futures — a gateway acks a remote statement only after the owner
// answered — so the local barrier is the node's full drain obligation.
func (n *Node) Barrier() { n.store.Barrier() }

// DurabilityErr implements server.Host.
func (n *Node) DurabilityErr() error { return n.store.DurabilityErr() }

// SubscribeLog implements server.LogSource by delegating to the local
// store: replicas of THIS node's relations pull from here.
func (n *Node) SubscribeLog(after int64, fn func(seq int64, record []byte)) (func(), error) {
	return n.store.SubscribeLog(after, fn)
}

// Store returns the node's primary store.
func (n *Node) Store() LocalStore { return n.store }

// TraceRecorder implements server.TraceSource by delegating to the local
// store when it traces (funcdb.Store with tracing configured; test stubs
// and untraced stores yield nil, the disabled recorder).
func (n *Node) TraceRecorder() *reqtrace.Recorder {
	if ts, ok := n.store.(interface{ TraceRecorder() *reqtrace.Recorder }); ok {
		return ts.TraceRecorder()
	}
	return nil
}

// LogTraceCtxOf implements server.LogTraceSource: the trace context a
// committed sequence carried, so the replication stream re-stamps it
// toward version-5 subscribers and the mirror's apply span joins the
// same trace.
func (n *Node) LogTraceCtxOf(seq int64) reqtrace.Ctx {
	if ls, ok := n.store.(interface{ LogTraceCtxOf(int64) reqtrace.Ctx }); ok {
		return ls.LogTraceCtxOf(seq)
	}
	return reqtrace.Ctx{}
}

// MetricsSnapshot implements server.StatsProvider: the local store's
// snapshot (when it can produce one — funcdb.Store can; test stubs need
// not) extended with this node's routing section and one row per peer.
// A peer row's ReplicaApplied is the newest primary sequence mirrored
// locally; the peer's own Version minus it is the replication lag, which
// is how fdbload and fdbrepl report lag — from snapshots of both ends.
func (n *Node) MetricsSnapshot() metrics.Snapshot {
	var snap metrics.Snapshot
	if sp, ok := n.store.(interface{ MetricsSnapshot() metrics.Snapshot }); ok {
		snap = sp.MetricsSnapshot()
	} else {
		snap.Lanes = n.store.Lanes()
		snap.Durable = n.store.Durable()
	}
	snap.Origin = n.origin
	cs := n.m.Snapshot()
	cs.Epochs, cs.Owners = n.failoverVectors()
	snap.Cluster = &cs
	for i := range n.addrs {
		if i == n.id {
			continue
		}
		ps := metrics.PeerSnapshot{Peer: i, Addr: n.addrs[i], ReplicaApplied: -1}
		if p := n.peers[i]; p != nil {
			ps.ForwardFrames = p.frames.Load()
			ps.Dials = p.dials.Load()
		}
		if m := n.mirrorRef(i); m != nil {
			ps.ReplicaApplied = m.version()
			ps.ReplicaRecords = m.records.Load()
			ps.ReplicaConnects = m.connects.Load()
		}
		ps.HeartbeatAgeMs, ps.AppliedLag = n.heartbeatAge(i)
		snap.Peers = append(snap.Peers, ps)
	}
	return snap
}

// mirrorRef returns the mirror at a slot (nil when absent). The slice
// itself is mutated only by rejoin, which installs a self-mirror.
func (n *Node) mirrorRef(i int) *mirror {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mirrors == nil || i < 0 || i >= len(n.mirrors) {
		return nil
	}
	return n.mirrors[i]
}

func (n *Node) setMirror(i int, m *mirror) {
	n.mu.Lock()
	n.mirrors[i] = m
	n.mu.Unlock()
}

// SubmitTagged implements session.Submitter: the routing point. The
// batch is split into maximal consecutive runs by owning node; local
// runs are admitted into the store in one arbitration, remote runs ship
// as one pre-tagged Forward frame each, and the response futures come
// back in submission order. Routing needs only the transaction's
// syntactic access set — the same property that makes lane placement
// computable before any lock is held.
func (n *Node) SubmitTagged(txs []core.Transaction) []*session.Future {
	out := make([]*session.Future, len(txs))
	// Runs are split by owner inline — routeOf is a cheap hash of the
	// relation name, so recomputing the boundary check beats allocating a
	// per-batch owners slice (a measurable cost at thousands of
	// connections, each flushing batches through here).
	for i := 0; i < len(txs); {
		slot := n.routeOf(txs[i])
		j := i + 1
		for j < len(txs) && n.routeOf(txs[j]) == slot {
			j++
		}
		run := txs[i:j]
		eff := slot
		if n.fo != nil && slot >= 0 {
			eff = n.fo.ownerOf(slot)
		}
		switch {
		case slot < 0:
			for k := i; k < j; k++ {
				out[k] = unroutable(txs[k])
			}
		case eff == n.id:
			futs, err := n.localSubmit(slot, run)
			if err != nil {
				for k := i; k < j; k++ {
					out[k] = lenient.Ready(core.Response{
						Origin: txs[k].Origin, Seq: txs[k].Seq, Kind: txs[k].Kind, Err: err,
					})
				}
				break
			}
			copy(out[i:j], futs)
		default:
			n.m.Forwarded(len(run))
			epoch, hasEpoch := n.slotEpoch(slot)
			// The run's trace handle (the gateway server attaches one handle
			// to every transaction of a traced request) rides to the peer so
			// the owner's spans stitch under the gateway's trace id.
			var tr *reqtrace.T
			for k := range run {
				if run[k].Trace != nil {
					tr = run[k].Trace
					break
				}
			}
			copy(out[i:j], n.peers[eff].forwardTagged(run, epoch, hasEpoch, tr))
		}
		i = j
	}
	return out
}

// localSubmit admits a run this node serves. Under failover the serving
// store is resolved per slot (the node's own store, or a takeover
// store), and write futures are wrapped in the replication-ack gate so
// an acknowledged commit is guaranteed to survive a subsequent crash of
// this node.
func (n *Node) localSubmit(slot int, run []core.Transaction) ([]*session.Future, error) {
	if n.fo == nil {
		return n.store.SubmitTagged(run), nil
	}
	st, err := n.fo.localStore(slot)
	if err != nil {
		return nil, err
	}
	futs := st.SubmitTagged(run)
	if n.fo.cfg.SyncReplicas > 0 {
		for k := range futs {
			if !run[k].IsReadOnly() {
				futs[k] = n.fo.gated(slot, st, futs[k])
			}
		}
	}
	return futs, nil
}

// slotEpoch returns the epoch to stamp into forwards for a slot, and
// whether to stamp at all (only failover clusters speak epochs).
func (n *Node) slotEpoch(slot int) (epoch uint64, ok bool) {
	if n.fo == nil {
		return 0, false
	}
	return n.fo.epochOf(slot), true
}

// routeOf places one transaction: the owning node index, n.id for local,
// or -1 for a transaction the primary-copy model cannot route (a custom
// transaction spanning relations with different owners — the
// coordination the paper defers; see internal/primarycopy).
func (n *Node) routeOf(tx core.Transaction) int {
	if tx.Kind != core.KindCustom {
		return OwnerIndex(tx.Rel, len(n.addrs))
	}
	owner := -2
	for _, rel := range append(tx.ReadSet(), tx.WriteSet()...) {
		o := OwnerIndex(rel, len(n.addrs))
		if owner == -2 {
			owner = o
		} else if o != owner {
			return -1
		}
	}
	if owner == -2 || owner != n.id {
		// A custom body is a Go closure: it has no wire form, so it can
		// only run where it was submitted.
		return -1
	}
	return owner
}

// unroutable resolves immediately with the routing error.
func unroutable(tx core.Transaction) *session.Future {
	return lenient.Ready(core.Response{
		Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind,
		Err: errors.New("cluster: transaction spans multiple owners or has no wire form; the primary-copy model defers that coordination"),
	})
}
