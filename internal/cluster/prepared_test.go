// Prepared statements across the cluster: a prepared workload must be
// indistinguishable from the same workload as text — through the
// cluster-aware client (hash-carrying ForwardPrepared frames straight to
// each owner), through a plain connection to one gateway node (the node
// re-forwards over its peer links), and across a primary SIGKILL
// mid-workload (handles forget per-owner registrations with placement
// and transparently re-prepare at the promoted owner). Runs under -race
// in CI.
package cluster_test

import (
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"funcdb"
	"funcdb/client"
	"funcdb/internal/cluster"
	"funcdb/internal/value"
)

// clusterPreparedOp is one workload step in both text and template form.
type clusterPreparedOp struct {
	text     string
	template string
	args     []funcdb.Item
}

// seededClusterPreparedOps renders the cluster mixed workload (no
// creates — the directory stays fixed) in template form: a handful of
// distinct templates reused across the run, spread over every node's
// relations.
func seededClusterPreparedOps(r *rand.Rand, n int, rels []string) []clusterPreparedOp {
	out := make([]clusterPreparedOp, 0, n)
	for i := 0; i < n; i++ {
		rel := rels[r.Intn(len(rels))]
		k := r.Intn(12)
		switch r.Intn(8) {
		case 0, 1, 2:
			out = append(out, clusterPreparedOp{
				text:     fmt.Sprintf("insert (%d, \"v%d\") into %s", k, k, rel),
				template: "insert (?, ?) into " + rel,
				args:     []funcdb.Item{value.Int(int64(k)), value.Str(fmt.Sprintf("v%d", k))},
			})
		case 3:
			out = append(out, clusterPreparedOp{
				text:     fmt.Sprintf("delete %d from %s", k, rel),
				template: "delete ? from " + rel,
				args:     []funcdb.Item{value.Int(int64(k))},
			})
		case 4, 5:
			out = append(out, clusterPreparedOp{
				text:     fmt.Sprintf("find %d in %s", k, rel),
				template: "find ? in " + rel,
				args:     []funcdb.Item{value.Int(int64(k))},
			})
		case 6:
			out = append(out, clusterPreparedOp{text: "count " + rel, template: "count " + rel})
		default:
			out = append(out, clusterPreparedOp{
				text:     fmt.Sprintf("find %d in NOPE", k), // unknown relation probe
				template: "find ? in NOPE",
				args:     []funcdb.Item{value.Int(int64(k))},
			})
		}
	}
	return out
}

// preparedExecutor is the prepared-handle surface both client flavors
// offer; the harness drives either through one code path.
type preparedExecutor interface {
	Exec(args ...funcdb.Item) (funcdb.Response, error)
}

// runClusterPrepared executes the workload through prepared handles, one
// per distinct template, created by prepare.
func runClusterPrepared(ops []clusterPreparedOp, prepare func(string) preparedExecutor) ([]string, error) {
	handles := make(map[string]preparedExecutor)
	var out []string
	for _, op := range ops {
		h, ok := handles[op.template]
		if !ok {
			h = prepare(op.template)
			handles[op.template] = h
		}
		resp, err := h.Exec(op.args...)
		if err != nil {
			return nil, fmt.Errorf("prepared exec %q: %w", op.text, err)
		}
		out = append(out, resp.String())
	}
	return out, nil
}

// referenceTextRun executes the same ops as sequential text against one
// in-process store.
func referenceTextRun(t *testing.T, ops []clusterPreparedOp) ([]string, map[string][]string) {
	t.Helper()
	ref := funcdb.MustOpen(funcdb.WithRelations(clusterRels...), funcdb.WithOrigin("c0"))
	defer ref.Close()
	var out []string
	for _, op := range ops {
		resp, err := ref.Exec(op.text)
		if err != nil {
			t.Fatalf("reference exec %q: %v", op.text, err)
		}
		out = append(out, resp.String())
	}
	ref.Barrier()
	return out, storeContents(ref)
}

func comparePreparedRuns(t *testing.T, ops []clusterPreparedOp, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%d reference responses vs %d prepared responses", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("response %d (%q) differs:\n  text:     %s\n  prepared: %s",
				i, ops[i].text, want[i], got[i])
		}
	}
}

// TestClusterPreparedEquivalence: the seeded workload once as in-process
// text, once as ClusterStmt executions against a 3-node TCP cluster.
// After the first contact per (template, owner) every frame on the wire
// carries only the hash and the positional arguments — and the response
// stream and final contents must still be byte-identical.
func TestClusterPreparedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			ops := seededClusterPreparedOps(r, 150+r.Intn(50), clusterRels)
			want, wantState := referenceTextRun(t, ops)

			tc := startCluster(t, 3, clusterRels)
			cc, err := client.DialCluster(tc.addrs, client.WithClusterOrigin("c0"))
			if err != nil {
				t.Fatal(err)
			}
			defer cc.Close()
			got, err := runClusterPrepared(ops, func(template string) preparedExecutor {
				return cc.Prepare(template)
			})
			if err != nil {
				t.Fatal(err)
			}
			comparePreparedRuns(t, ops, want, got)
			for _, n := range tc.nodes {
				n.Store().Barrier()
			}
			diffContents(t, wantState, tc.merged(t))
		})
	}
}

// TestClusterGatewayPrepared: a PLAIN client prepares on ONE node and
// executes statements for every node's relations. The gateway re-forwards
// non-owned prepared executions to each owner over its peer links as
// ForwardPrepared frames (text on first contact, hash after), and the
// response stream must match the in-process reference exactly.
func TestClusterGatewayPrepared(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	ops := seededClusterPreparedOps(r, 180, clusterRels)
	want, wantState := referenceTextRun(t, ops)

	tc := startCluster(t, 3, clusterRels)
	c, err := client.Dial(tc.addrs[1], client.WithOrigin("c0"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := runClusterPrepared(ops, func(template string) preparedExecutor {
		return c.Prepare(template)
	})
	if err != nil {
		t.Fatal(err)
	}
	comparePreparedRuns(t, ops, want, got)
	for _, n := range tc.nodes {
		n.Store().Barrier()
	}
	diffContents(t, wantState, tc.merged(t))
}

// TestPreparedFailoverPromotion is satellite 1's scenario end to end: a
// prepared workload is mid-flight when its relation's primary is
// SIGKILLed. The handle must ride through the promotion — forget the dead
// owner's registration along with the placement, re-prepare at the
// winner, and keep every acked insert — with zero caller-visible errors.
func TestPreparedFailoverPromotion(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	lns := make([]net.Listener, 3)
	addrs := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	lns[2].Close() // the subprocess rebinds this port

	tc := &testCluster{addrs: addrs, nodes: make([]*funcdb.ClusterNode, 3)}
	for i := 0; i < 2; i++ {
		node, err := funcdb.OpenClusterNode(funcdb.ClusterNodeConfig{
			ID: i, Nodes: addrs, Listener: lns[i], Dir: t.TempDir(),
			Relations: clusterRels,
			Failover:  &cluster.FailoverConfig{Heartbeat: 50 * time.Millisecond},
			Durability: []funcdb.DurabilityOption{
				funcdb.GroupCommit(2 * time.Millisecond),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		tc.nodes[i] = node
		go node.Serve()
	}
	defer tc.shutdown()

	doomedDir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestClusterNodeHelper$", "-test.v")
	cmd.Env = append(os.Environ(),
		"FDB_CLUSTER_NODES="+strings.Join(addrs, ","),
		"FDB_CLUSTER_ID=2",
		"FDB_CLUSTER_DIR="+doomedDir,
		"FDB_CLUSTER_FAILOVER_MS=50",
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()
	waitReachable(t, addrs[2])
	for i := 0; i < 2; i++ {
		if err := tc.nodes[i].WaitReady(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}

	rel := relOwnedBy(t, tc, 2) // the subprocess's relation
	slot := cluster.OwnerIndex(rel, 3)
	cc, err := client.DialCluster(addrs,
		client.WithClusterOrigin("fo"),
		client.WithFailoverRetry(15*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	insert := cc.Prepare("insert (?, ?) into " + rel)
	find := cc.Prepare("find ? in " + rel)

	// Sequential acked prepared inserts; the SIGKILL lands mid-stream.
	// Before the crash the statement is registered at the doomed owner and
	// frames carry only hash + args — exactly the state a promotion must
	// not strand.
	const half, total = 20, 80
	doInsert := func(i int) {
		t.Helper()
		resp, err := insert.Exec(value.Int(int64(i)), value.Str(fmt.Sprintf("v%d", i)))
		if err != nil || resp.Err != nil {
			t.Fatalf("prepared insert %d not acked: %v / %v", i, err, resp.Err)
		}
	}
	for i := 0; i < half; i++ {
		doInsert(i)
	}
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()
	resumed := time.Now()
	for i := half; i < total; i++ {
		doInsert(i)
	}
	t.Logf("prepared workload resumed %v after SIGKILL", time.Since(resumed).Round(time.Millisecond))

	// Exactly one survivor serves the slot, in a promoted epoch.
	winner, epoch := waitPromoted(t, tc, []int{0, 1}, slot, 2, 0)
	if n := servingCount(tc, []int{0, 1}, slot); n != 1 {
		t.Fatalf("%d survivors serve slot %d, want exactly 1", n, slot)
	}
	t.Logf("slot %d promoted to node %d in epoch %d", slot, winner, epoch)

	// Zero acked inserts lost, read back through the prepared handle (its
	// own registration also re-prepares at the winner).
	for i := 0; i < total; i++ {
		resp, err := find.Exec(value.Int(int64(i)))
		if err != nil || resp.Err != nil || !resp.Found {
			t.Fatalf("acked prepared insert %d lost after failover (err %v resp %+v)", i, err, resp)
		}
	}
}
