// Package primarycopy implements the paper's *other* distribution model
// (Section 3.1): "In the primary-copy model, a transaction simply proceeds
// without initial coordination, all required coordination being done at a
// 'primary copy' of each database object. (If the database is
// non-redundant, then each object is its own primary copy.)"
//
// The paper defers the general model because multi-object transactions
// "retain the ability to abort transactions to resolve deadlock", and
// functional representations of aborts are left "to a future exposition".
// This package implements exactly the tractable fragment the paper's own
// experiments inhabit: every built-in query touches one relation
// (syntactically derivable, Section 2.2), so coordination per object is a
// per-relation merge and no abort machinery is needed. Each relation is
// owned by one site running its own engine; transactions go straight to
// the owner — no central primary, no global bottleneck. Multi-relation
// custom transactions are rejected with ErrNeedsCoordination: that is the
// precise boundary of the deferred machinery.
//
// The price of skipping global coordination is the absence of a globally
// consistent snapshot: Current() assembles per-relation versions that were
// serialized independently. The primary-site model (package primarysite)
// offers the global version stream; this package offers per-object
// parallelism. That trade is the paper's contrast between the two models.
package primarycopy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/lenient"
	"funcdb/internal/netsim"
	"funcdb/internal/query"
	"funcdb/internal/relation"
	"funcdb/internal/topo"
)

// ErrNeedsCoordination reports a transaction outside the coordination-free
// fragment (custom or multi-relation).
var ErrNeedsCoordination = errors.New("primarycopy: transaction touches multiple objects; the primary-copy model needs abort-based coordination the paper defers")

// DirectorySite hosts the root directory mapping relations to owners.
const DirectorySite netsim.SiteID = 0

// txnReq is the payload of an "exec" message.
type txnReq struct {
	Text   string
	Origin string
	Seq    int
}

// Config describes a primary-copy cluster.
type Config struct {
	// Sites is the number of network sites.
	Sites int
	// Topology optionally shapes hop accounting.
	Topology topo.Topology
	// Initial is the initial database; each of its relations is assigned
	// an owner site round-robin.
	Initial *database.Database
}

// Cluster is a running primary-copy system.
type Cluster struct {
	net   *netsim.Network
	sites []*netsim.Site

	mu      sync.Mutex
	owner   map[string]netsim.SiteID
	engines map[string]*core.Engine // keyed by relation; each holds one relation
}

// New starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites < 1 {
		return nil, errors.New("primarycopy: need at least one site")
	}
	if cfg.Initial == nil || len(cfg.Initial.RelationNames()) == 0 {
		return nil, errors.New("primarycopy: need an initial database with relations")
	}
	var opts []netsim.Option
	if cfg.Topology != nil {
		opts = append(opts, netsim.WithTopology(cfg.Topology))
	}
	c := &Cluster{
		net:     netsim.NewNetwork(cfg.Sites, opts...),
		owner:   map[string]netsim.SiteID{},
		engines: map[string]*core.Engine{},
	}
	for i := 0; i < cfg.Sites; i++ {
		c.sites = append(c.sites, netsim.NewSite(c.net, netsim.SiteID(i)))
	}

	// Every relation is its own primary copy, owned by one site.
	for i, name := range cfg.Initial.RelationNames() {
		site := netsim.SiteID(i % cfg.Sites)
		rel, _ := cfg.Initial.RelationFast(name)
		single := database.FromRelations([]string{name}, []relation.Relation{rel}, 0)
		c.owner[name] = site
		c.engines[name] = core.NewEngine(single)
	}

	c.sites[DirectorySite].RegisterFunc("whereis", func(arg any) any {
		name, _ := arg.(string)
		c.mu.Lock()
		defer c.mu.Unlock()
		if site, ok := c.owner[name]; ok {
			return site
		}
		return netsim.SiteID(-1)
	})

	for _, s := range c.sites {
		s.Register("exec", func(s *netsim.Site, m netsim.Message) any {
			req, ok := m.Payload.(txnReq)
			if !ok {
				return core.Response{Err: errors.New("primarycopy: malformed payload")}
			}
			tx, err := query.Translate(req.Text)
			if err != nil {
				return core.Response{Origin: req.Origin, Seq: req.Seq, Err: err}
			}
			tx.Origin, tx.Seq = req.Origin, req.Seq
			eng := c.engineFor(tx.Rel, s.MySite())
			if eng == nil {
				return core.Response{
					Origin: req.Origin, Seq: req.Seq,
					Err: fmt.Errorf("primarycopy: site %d does not own %q", s.MySite(), tx.Rel),
				}
			}
			future := eng.Submit(tx)
			src, corr := m.Src, m.Corr
			go func() {
				_ = c.net.Send(netsim.Message{
					Src: s.MySite(), Dst: src, Kind: "reply", Corr: corr,
					Payload: future.Force(),
				})
			}()
			return nil
		})
	}

	for _, s := range c.sites {
		go s.Run()
	}
	return c, nil
}

// engineFor returns the engine for rel if site owns it.
func (c *Cluster) engineFor(rel string, site netsim.SiteID) *core.Engine {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.owner[rel] != site {
		return nil
	}
	return c.engines[rel]
}

// OwnerOf returns the owner site of a relation.
func (c *Cluster) OwnerOf(rel string) (netsim.SiteID, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.owner[rel]
	return s, ok
}

// Network exposes the medium.
func (c *Cluster) Network() *netsim.Network { return c.net }

// CurrentRelation materializes one relation's present version — internally
// consistent, because that relation has a single serializing owner.
func (c *Cluster) CurrentRelation(name string) (relation.Relation, error) {
	c.mu.Lock()
	eng, ok := c.engines[name]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("primarycopy: unknown relation %q", name)
	}
	db := eng.Current()
	rel, _ := db.RelationFast(name)
	return rel, nil
}

// Current assembles a database from every relation's latest version. The
// assembly is NOT a globally consistent snapshot — relations serialized
// independently — which is precisely the coordination the primary-copy
// model trades away; see the package comment.
func (c *Cluster) Current() *database.Database {
	c.mu.Lock()
	names := make([]string, 0, len(c.engines))
	for n := range c.owner {
		names = append(names, n)
	}
	c.mu.Unlock()
	sort.Strings(names)
	rels := make([]relation.Relation, len(names))
	for i, n := range names {
		rel, err := c.CurrentRelation(n)
		if err != nil {
			rel = relation.New(relation.RepList)
		}
		rels[i] = rel
	}
	return database.FromRelations(names, rels, 0)
}

// Shutdown stops all sites and the medium.
func (c *Cluster) Shutdown() {
	c.mu.Lock()
	engines := make([]*core.Engine, 0, len(c.engines))
	for _, e := range c.engines {
		engines = append(engines, e)
	}
	c.mu.Unlock()
	for _, e := range engines {
		e.Barrier()
	}
	for _, s := range c.sites {
		s.Stop()
	}
	c.net.Close()
}

// Client submits queries from one site, routing each directly to the
// owning site of its target relation — "a transaction simply proceeds
// without initial coordination".
type Client struct {
	cluster *Cluster
	site    *netsim.Site
	origin  string

	mu    sync.Mutex
	seq   int
	where map[string]netsim.SiteID
}

// NewClient creates a client homed at the given site.
func (c *Cluster) NewClient(site netsim.SiteID, origin string) (*Client, error) {
	if int(site) < 0 || int(site) >= len(c.sites) {
		return nil, fmt.Errorf("primarycopy: no site %d", site)
	}
	return &Client{
		cluster: c,
		site:    c.sites[site],
		origin:  origin,
		where:   map[string]netsim.SiteID{},
	}, nil
}

// ExecAsync translates locally (the target relation is syntactically
// derivable), resolves the owner via the root directory, and submits.
func (cl *Client) ExecAsync(text string) *lenient.Cell[core.Response] {
	tx, err := query.Translate(text)
	if err != nil {
		return lenient.Ready(core.Response{Origin: cl.origin, Err: err})
	}
	if needsCoordination(tx) {
		return lenient.Ready(core.Response{Origin: cl.origin, Err: ErrNeedsCoordination})
	}
	owner, err := cl.lookup(tx.Rel)
	if err != nil {
		return lenient.Ready(core.Response{Origin: cl.origin, Err: err})
	}
	cl.mu.Lock()
	seq := cl.seq
	cl.seq++
	cl.mu.Unlock()

	raw := cl.site.Call(owner, "exec", txnReq{Text: text, Origin: cl.origin, Seq: seq})
	return lenient.Map(raw, func(v any) core.Response {
		if resp, ok := v.(core.Response); ok {
			return resp
		}
		return core.Response{Origin: cl.origin, Seq: seq, Err: errors.New("primarycopy: malformed reply")}
	})
}

// Exec submits and waits.
func (cl *Client) Exec(text string) core.Response {
	return cl.ExecAsync(text).Force()
}

// needsCoordination reports whether a transaction falls outside the
// coordination-free fragment: anything custom or touching more than one
// primary copy.
func needsCoordination(tx core.Transaction) bool {
	return tx.Kind == core.KindCustom || len(tx.ReadSet()) > 1 || len(tx.WriteSet()) > 1
}

// lookup resolves and caches a relation's owner.
func (cl *Client) lookup(rel string) (netsim.SiteID, error) {
	cl.mu.Lock()
	if s, ok := cl.where[rel]; ok {
		cl.mu.Unlock()
		return s, nil
	}
	cl.mu.Unlock()
	v := cl.site.ResultOn(DirectorySite, "whereis", rel).Force()
	site, ok := v.(netsim.SiteID)
	if !ok || site < 0 {
		return 0, fmt.Errorf("primarycopy: relation %q not in root directory", rel)
	}
	cl.mu.Lock()
	cl.where[rel] = site
	cl.mu.Unlock()
	return site, nil
}
