package primarycopy

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/lenient"
	"funcdb/internal/netsim"
	"funcdb/internal/relation"
	"funcdb/internal/topo"
	"funcdb/internal/value"
)

func mkCluster(t *testing.T, sites int, rels ...string) *Cluster {
	t.Helper()
	c, err := New(Config{
		Sites:   sites,
		Initial: database.New(relation.RepList, rels...),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestBadConfigs(t *testing.T) {
	if _, err := New(Config{Sites: 0, Initial: database.New(relation.RepList, "R")}); err == nil {
		t.Error("zero sites accepted")
	}
	if _, err := New(Config{Sites: 2}); err == nil {
		t.Error("nil database accepted")
	}
	if _, err := New(Config{Sites: 2, Initial: database.New(relation.RepList)}); err == nil {
		t.Error("empty database accepted")
	}
}

func TestRelationsSpreadAcrossOwners(t *testing.T) {
	c := mkCluster(t, 3, "A", "B", "C")
	owners := map[netsim.SiteID]int{}
	for _, rel := range []string{"A", "B", "C"} {
		site, ok := c.OwnerOf(rel)
		if !ok {
			t.Fatalf("no owner for %s", rel)
		}
		owners[site]++
	}
	if len(owners) != 3 {
		t.Errorf("relations owned by %d sites, want 3 (no central primary)", len(owners))
	}
}

func TestExecRoundTrip(t *testing.T) {
	c := mkCluster(t, 4, "R", "S")
	cl, err := c.NewClient(3, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if resp := cl.Exec(`insert (1, "x") into R`); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := cl.Exec("find 1 in R"); !resp.Found {
		t.Error("find missed")
	}
	if resp := cl.Exec("insert 9 into S"); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := cl.Exec("count S"); resp.Count != 1 {
		t.Errorf("count S = %d", resp.Count)
	}
}

func TestUnknownRelationRejected(t *testing.T) {
	c := mkCluster(t, 2, "R")
	cl, _ := c.NewClient(1, "bob")
	resp := cl.Exec("find 1 in NOPE")
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "root directory") {
		t.Errorf("err = %v", resp.Err)
	}
}

func TestParseErrorsReturn(t *testing.T) {
	c := mkCluster(t, 2, "R")
	cl, _ := c.NewClient(0, "cli")
	if resp := cl.Exec("garbage"); resp.Err == nil {
		t.Error("parse error swallowed")
	}
}

func TestPerRelationSerialization(t *testing.T) {
	// Concurrent clients writing one relation: all writes land, count
	// exact (per-object serializability without a central coordinator).
	c := mkCluster(t, 4, "R", "S", "T")
	const clients, each = 4, 30
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		cl, err := c.NewClient(netsim.SiteID(i), "cli")
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(cl *Client, base int) {
			defer wg.Done()
			for j := 0; j < each; j++ {
				k := value.Int(int64(base*1000 + j)).String()
				rel := []string{"R", "S", "T"}[j%3]
				if resp := cl.Exec("insert " + k + " into " + rel); resp.Err != nil {
					t.Errorf("insert: %v", resp.Err)
				}
			}
		}(cl, i)
	}
	wg.Wait()
	total := 0
	for _, name := range []string{"R", "S", "T"} {
		rel, err := c.CurrentRelation(name)
		if err != nil {
			t.Fatal(err)
		}
		total += rel.Len()
	}
	if total != clients*each {
		t.Errorf("total tuples = %d, want %d", total, clients*each)
	}
	if got := c.Current().TotalTuples(); got != clients*each {
		t.Errorf("Current() tuples = %d", got)
	}
}

func TestMultiObjectTransactionsRejected(t *testing.T) {
	// The exact boundary the paper defers: anything touching more than one
	// primary copy.
	single := core.Find("R", value.Int(1))
	if needsCoordination(single) {
		t.Error("single-relation query flagged")
	}
	custom := core.Custom(nil, []string{"R"}, []string{"S"})
	if !needsCoordination(custom) {
		t.Error("custom transaction not flagged")
	}
	multiRead := core.Custom(nil, []string{"R", "S"}, nil)
	if !needsCoordination(multiRead) {
		t.Error("multi-read transaction not flagged")
	}
	// Sanity at the cluster level: queries are single-relation by
	// construction, so Exec never trips the guard.
	c := mkCluster(t, 2, "R", "S")
	cl, _ := c.NewClient(0, "cli")
	if resp := cl.Exec("find 1 in R"); errors.Is(resp.Err, ErrNeedsCoordination) {
		t.Error("single-relation query rejected")
	}
}

func TestCrossRelationParallelismAcrossOwners(t *testing.T) {
	// A slow stream on relation A (owned by one site) must not block
	// queries on relation B (owned by another): no global bottleneck.
	c := mkCluster(t, 2, "A", "B")
	ownerA, _ := c.OwnerOf("A")
	ownerB, _ := c.OwnerOf("B")
	if ownerA == ownerB {
		t.Fatal("test needs distinct owners")
	}
	clA, _ := c.NewClient(0, "a")
	clB, _ := c.NewClient(1, "b")

	// Queue many writes on A asynchronously.
	var futures []*lenient.Cell[core.Response]
	for i := 0; i < 200; i++ {
		futures = append(futures, clA.ExecAsync("insert "+value.Int(int64(i)).String()+" into A"))
	}
	// B answers immediately regardless.
	if resp := clB.Exec("count B"); resp.Err != nil || resp.Count != 0 {
		t.Errorf("count B = %+v", resp)
	}
	for _, f := range futures {
		if resp := f.Force(); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	relA, _ := c.CurrentRelation("A")
	if relA.Len() != 200 {
		t.Errorf("A has %d tuples", relA.Len())
	}
}

func TestHypercubeTopology(t *testing.T) {
	c, err := New(Config{
		Sites:    8,
		Topology: topo.NewHypercube(3),
		Initial:  database.New(relation.RepList, "R", "S", "T", "U"),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	cl, _ := c.NewClient(7, "far")
	if resp := cl.Exec("insert 1 into R"); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	_, hops := c.Network().Stats()
	if hops == 0 {
		t.Error("no hops recorded")
	}
}

func TestClientBadSite(t *testing.T) {
	c := mkCluster(t, 2, "R")
	if _, err := c.NewClient(5, "x"); err == nil {
		t.Error("bad site accepted")
	}
}

func TestCurrentRelationUnknown(t *testing.T) {
	c := mkCluster(t, 2, "R")
	if _, err := c.CurrentRelation("NOPE"); err == nil {
		t.Error("unknown relation materialized")
	}
}
