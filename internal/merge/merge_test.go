package merge

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// isSubsequence reports whether sub appears within full in order.
func isSubsequence(sub, full []int) bool {
	i := 0
	for _, v := range full {
		if i < len(sub) && sub[i] == v {
			i++
		}
	}
	return i == len(sub)
}

func TestMergeDeliversEverythingOnce(t *testing.T) {
	mk := func(vals ...int) <-chan int {
		ch := make(chan int, len(vals))
		for _, v := range vals {
			ch <- v
		}
		close(ch)
		return ch
	}
	out := Collect(Merge(mk(1, 2, 3), mk(10, 20), mk()))
	if len(out) != 5 {
		t.Fatalf("got %d items", len(out))
	}
	sorted := append([]int(nil), out...)
	sort.Ints(sorted)
	want := []int{1, 2, 3, 10, 20}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("items = %v", out)
		}
	}
}

func TestMergePreservesPerStreamOrder(t *testing.T) {
	// Two concurrent producers with disjoint values: each producer's values
	// must appear in its own order within the merged stream.
	a := make(chan int)
	b := make(chan int)
	go func() {
		for i := 0; i < 100; i++ {
			a <- i
		}
		close(a)
	}()
	go func() {
		for i := 1000; i < 1100; i++ {
			b <- i
		}
		close(b)
	}()
	out := Collect(Merge[int](a, b))
	if len(out) != 200 {
		t.Fatalf("got %d items", len(out))
	}
	var fromA, fromB []int
	for _, v := range out {
		if v < 1000 {
			fromA = append(fromA, v)
		} else {
			fromB = append(fromB, v)
		}
	}
	for i, v := range fromA {
		if v != i {
			t.Fatalf("stream A reordered: %v", fromA[:10])
		}
	}
	for i, v := range fromB {
		if v != 1000+i {
			t.Fatalf("stream B reordered: %v", fromB[:10])
		}
	}
}

func TestMergeOfNothing(t *testing.T) {
	out := Collect(Merge[int]())
	if len(out) != 0 {
		t.Errorf("merge of no streams = %v", out)
	}
}

func TestInterleaveDeterministic(t *testing.T) {
	s1 := []int{1, 2, 3}
	s2 := []int{10, 20, 30, 40}
	a := Interleave(42, s1, s2)
	b := Interleave(42, s1, s2)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different interleavings: %v vs %v", a, b)
	}
	c := Interleave(43, s1, s2)
	// Different seeds *may* coincide, but across this size it's unlikely;
	// only warn via failure if all of several seeds match.
	d := Interleave(44, s1, s2)
	if fmt.Sprint(a) == fmt.Sprint(c) && fmt.Sprint(a) == fmt.Sprint(d) {
		t.Error("interleaving ignores seed")
	}
}

func TestRoundRobin(t *testing.T) {
	got := RoundRobin([]int{1, 2, 3}, []int{10, 20}, []int{100})
	want := []int{1, 10, 100, 2, 20, 3}
	if len(got) != len(want) {
		t.Fatalf("RoundRobin = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("RoundRobin = %v, want %v", got, want)
		}
	}
}

func TestInterleaveByKeyGroupsRuns(t *testing.T) {
	type q struct {
		rel string
		id  int
	}
	s1 := []q{{"R", 1}, {"S", 2}, {"R", 3}}
	s2 := []q{{"R", 10}, {"S", 20}}
	out := InterleaveByKey(func(x q) string { return x.rel }, s1, s2)
	if len(out) != 5 {
		t.Fatalf("lost items: %v", out)
	}
	// Count key switches; grouping should produce fewer switches than the
	// worst case.
	switches := 0
	for i := 1; i < len(out); i++ {
		if out[i].rel != out[i-1].rel {
			switches++
		}
	}
	if switches > 2 {
		t.Errorf("%d key switches in %v", switches, out)
	}
	// Per-stream order: ids from s1 appear as 1,2,3; from s2 as 10,20.
	var ids1, ids2 []int
	for _, x := range out {
		if x.id < 10 {
			ids1 = append(ids1, x.id)
		} else {
			ids2 = append(ids2, x.id)
		}
	}
	if fmt.Sprint(ids1) != "[1 2 3]" || fmt.Sprint(ids2) != "[10 20]" {
		t.Errorf("stream order broken: %v %v", ids1, ids2)
	}
}

func TestPropertyInterleavePreservesStreams(t *testing.T) {
	f := func(seed int64, n1, n2, n3 uint8) bool {
		mk := func(base, n int) []int {
			out := make([]int, n%16)
			for i := range out {
				out[i] = base + i
			}
			return out
		}
		s1, s2, s3 := mk(0, int(n1)), mk(1000, int(n2)), mk(2000, int(n3))
		out := Interleave(seed, s1, s2, s3)
		if len(out) != len(s1)+len(s2)+len(s3) {
			return false
		}
		return isSubsequence(s1, out) && isSubsequence(s2, out) && isSubsequence(s3, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPropertyInterleaveByKeyPreservesStreams(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rels := []string{"R", "S", "T"}
		mk := func(base int) []int {
			out := make([]int, r.Intn(12))
			for i := range out {
				out[i] = base + i
			}
			return out
		}
		s1, s2 := mk(0), mk(1000)
		key := func(v int) string { return rels[v%3] }
		out := InterleaveByKey(key, s1, s2)
		if len(out) != len(s1)+len(s2) {
			return false
		}
		return isSubsequence(s1, out) && isSubsequence(s2, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
