// Package merge implements the paper's pseudo-functional merge: the one
// indeterminate operator in the system (Section 2.4).
//
// "Informally, a merge has as its input several query streams and its
// output is an arbitrary interleaving of those streams. ... The order of
// interleaving can be that in which the merge receives the requests."
// Processing the merged stream sequentially is the paper's sufficient
// condition for serializability; all concurrency is recovered downstream by
// leniency.
//
// Three forms are provided:
//
//   - Merge: the live, genuinely nondeterministic fan-in over channels
//     (arrival order), used by the runtime engine and the network
//     substrate;
//   - Interleave: a seeded, reproducible interleaving of materialized
//     streams, used by the experiments so every table is regenerable;
//   - InterleaveByKey: the "judiciously ordered" merge the paper leaves as
//     future research ("it is further possible to 'optimize' the
//     transactions for greater concurrency among relational components by
//     judiciously ordering the transactions to be merged, so long as the
//     order of transactions from each individual stream is maintained") —
//     it groups same-key (same-relation) requests into runs while
//     preserving every input stream's order. Ablation E measures it.
package merge

import (
	"math/rand"
	"sync"
)

// Merge fans the input channels into one output channel in arrival order.
// The output closes when every input has closed. Per-input order is
// preserved; cross-input order is whatever the scheduler delivers — the
// operator is deliberately not a function.
func Merge[T any](ins ...<-chan T) <-chan T {
	out := make(chan T)
	var wg sync.WaitGroup
	wg.Add(len(ins))
	for _, in := range ins {
		go func(in <-chan T) {
			defer wg.Done()
			for v := range in {
				out <- v
			}
		}(in)
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Interleave produces a seeded random interleaving of the given streams,
// preserving each stream's internal order. The same seed yields the same
// merged stream, which is how the experiments stay reproducible while still
// exercising a nontrivial interleaving.
func Interleave[T any](seed int64, streams ...[]T) []T {
	r := rand.New(rand.NewSource(seed))
	idx := make([]int, len(streams))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]T, 0, total)
	for len(out) < total {
		// Choose among non-exhausted streams weighted by remaining length,
		// which keeps the interleaving roughly proportional.
		remaining := 0
		for i, s := range streams {
			remaining += len(s) - idx[i]
			_ = s
		}
		pick := r.Intn(remaining)
		for i, s := range streams {
			left := len(s) - idx[i]
			if pick < left {
				out = append(out, s[idx[i]])
				idx[i]++
				break
			}
			pick -= left
		}
	}
	return out
}

// RoundRobin interleaves the streams one element at a time, preserving each
// stream's order: the fully deterministic baseline interleaving.
func RoundRobin[T any](streams ...[]T) []T {
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]T, 0, total)
	idx := make([]int, len(streams))
	for len(out) < total {
		for i, s := range streams {
			if idx[i] < len(s) {
				out = append(out, s[idx[i]])
				idx[i]++
			}
		}
	}
	return out
}

// InterleaveByKey merges the streams grouping equal-key elements into
// maximal runs, while preserving every stream's internal order (only stream
// heads are ever taken). Keys typically name the relation a transaction
// targets, so runs pipeline on one relation.
func InterleaveByKey[T any](key func(T) string, streams ...[]T) []T {
	idx := make([]int, len(streams))
	total := 0
	for _, s := range streams {
		total += len(s)
	}
	out := make([]T, 0, total)

	headKey := func(i int) (string, bool) {
		if idx[i] < len(streams[i]) {
			return key(streams[i][idx[i]]), true
		}
		return "", false
	}

	current := ""
	for len(out) < total {
		took := false
		// Extend the current run from any stream whose head matches.
		for i := range streams {
			for {
				k, ok := headKey(i)
				if !ok || k != current {
					break
				}
				out = append(out, streams[i][idx[i]])
				idx[i]++
				took = true
			}
		}
		if took {
			continue
		}
		// Start a new run: pick the key of the longest remaining stream's
		// head (a simple greedy heuristic).
		best, bestLeft := -1, -1
		for i, s := range streams {
			if left := len(s) - idx[i]; left > bestLeft && left > 0 {
				best, bestLeft = i, left
			}
		}
		k, _ := headKey(best)
		current = k
	}
	return out
}

// Collect drains a channel into a slice (a test and example helper).
func Collect[T any](in <-chan T) []T {
	var out []T
	for v := range in {
		out = append(out, v)
	}
	return out
}
