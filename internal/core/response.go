package core

import (
	"fmt"
	"strings"

	"funcdb/internal/value"
)

// Response is one element of the response stream: the result of one
// transaction, tagged with the origin of the request so it can be routed
// back (Section 2.4's tagging discipline).
type Response struct {
	Origin string
	Seq    int
	Kind   Kind

	Found  bool          // find, delete: whether the key was present
	Tuple  value.Tuple   // find: the tuple; insert: the inserted tuple
	Tuples []value.Tuple // scan, range: the matching tuples
	Count  int           // count/scan/range: cardinality
	Err    error         // operation-level failure (e.g. unknown relation)

	Note string // custom transactions: free-form result text

	// Version, when nonzero, is the database version the response was
	// computed against — set by replica reads so clients can observe
	// staleness.
	Version int64
}

// Tag returns the origin tag rendered as "origin#seq".
func (r Response) Tag() string { return fmt.Sprintf("%s#%d", r.Origin, r.Seq) }

// OK reports whether the transaction succeeded.
func (r Response) OK() bool { return r.Err == nil }

// String renders the response the way the REPL prints it.
func (r Response) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %v: ", r.Tag(), r.Kind)
	switch {
	case r.Err != nil:
		fmt.Fprintf(&b, "error: %v", r.Err)
	case r.Kind == KindFind && r.Found:
		fmt.Fprintf(&b, "found %s", r.Tuple)
	case r.Kind == KindFind:
		b.WriteString("not found")
	case r.Kind == KindInsert:
		fmt.Fprintf(&b, "inserted %s", r.Tuple)
	case r.Kind == KindDelete && r.Found:
		b.WriteString("deleted")
	case r.Kind == KindDelete:
		b.WriteString("not found")
	case r.Kind == KindScan || r.Kind == KindRange:
		fmt.Fprintf(&b, "%d tuples", r.Count)
		if len(r.Tuples) > 0 && len(r.Tuples) <= 8 {
			parts := make([]string, 0, len(r.Tuples))
			for _, tu := range r.Tuples {
				parts = append(parts, tu.String())
			}
			fmt.Fprintf(&b, ": %s", strings.Join(parts, " "))
		}
	case r.Kind == KindCount:
		fmt.Fprintf(&b, "%d", r.Count)
	case r.Kind == KindCreate:
		b.WriteString("created")
	case r.Note != "":
		b.WriteString(r.Note)
	default:
		b.WriteString("ok")
	}
	return b.String()
}
