package core_test

import (
	"fmt"
	"testing"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/metrics"
	"funcdb/internal/relation"
	"funcdb/internal/reqtrace"
	"funcdb/internal/value"
	"funcdb/internal/workload"
)

// TestMetricsEquivalence: an instrumented engine must produce
// byte-identical responses and an identical final database to the
// uninstrumented engine on the paper's workloads — metrics observe, they
// never steer.
func TestMetricsEquivalence(t *testing.T) {
	for _, rels := range []int{1, 3, 5} {
		for _, pct := range []int{4, 14, 38} {
			t.Run(fmt.Sprintf("rels=%d/pct=%d", rels, pct), func(t *testing.T) {
				spec := workload.DefaultPaper(rels, pct, 42)
				txns, err := spec.TransactionStream()
				if err != nil {
					t.Fatal(err)
				}

				plain, plainDB := core.ApplyStreamPipelined(spec.InitialDatabase(relation.RepAVL), txns)

				var m metrics.Engine
				inst, instDB := core.ApplyStreamPipelined(spec.InitialDatabase(relation.RepAVL), txns,
					core.WithEngineMetrics(&m))

				if len(plain) != len(inst) {
					t.Fatalf("response counts differ: %d vs %d", len(plain), len(inst))
				}
				for i := range plain {
					if plain[i].String() != inst[i].String() {
						t.Errorf("response %d differs:\n  plain: %s\n  inst:  %s", i, plain[i], inst[i])
					}
				}
				if plainDB.Version() != instDB.Version() {
					t.Errorf("final versions differ: %d vs %d", plainDB.Version(), instDB.Version())
				}
				if d1, d2 := dumpDB(plainDB), dumpDB(instDB); d1 != d2 {
					t.Errorf("final databases differ:\n%s\nvs\n%s", d1, d2)
				}

				// The instrumentation must also have seen the workload.
				snap := m.Snapshot()
				if snap.Admitted == 0 {
					t.Error("instrumented run recorded no admissions")
				}
				if snap.CommitLatency.Count == 0 {
					t.Error("instrumented run recorded no commit latency")
				}
				var laneTotal int64
				for _, c := range snap.LaneCommits {
					laneTotal += c
				}
				if laneTotal < snap.Admitted {
					t.Errorf("lane commits %d < admitted %d", laneTotal, snap.Admitted)
				}
			})
		}
	}
}

func dumpDB(db *database.Database) string {
	out := ""
	for _, name := range db.RelationNames() {
		rel, _ := db.RelationFast(name)
		out += name + ":"
		for _, tu := range rel.Tuples() {
			out += " " + tu.String()
		}
		out += "\n"
	}
	return out
}

// BenchmarkLaneCommit measures the admission hot path with metrics nil
// versus enabled: the acceptance bar is instrumented within 5% of
// uninstrumented. Single-lane inserts, the worst case for relative
// overhead (shortest committed path).
func BenchmarkLaneCommit(b *testing.B) {
	run := func(b *testing.B, opts ...core.EngineOption) {
		e := core.NewEngine(database.New(relation.RepAVL, "R"), opts...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v")))
			tx.Origin, tx.Seq = "bench", i
			e.Submit(tx)
		}
		e.Barrier()
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b) })
	b.Run("instrumented", func(b *testing.B) {
		var m metrics.Engine
		run(b, core.WithEngineMetrics(&m))
	})
}

// BenchmarkLaneCommitTraced measures the same single-lane admission hot
// path with request tracing attached: "off" submits with a nil trace
// handle (tracing compiled in but disabled — the production default),
// "sampled" threads a live handle through every transaction so the
// engine records its lane-wait/plan/lane-commit spans. The gap between
// "off" and BenchmarkLaneCommit's uninstrumented baseline is the cost
// of the nil checks; the gap to "sampled" is the full recording cost.
func BenchmarkLaneCommitTraced(b *testing.B) {
	run := func(b *testing.B, rec *reqtrace.Recorder) {
		e := core.NewEngine(database.New(relation.RepAVL, "R"))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tx := core.Insert("R", value.NewTuple(value.Int(int64(i)), value.Str("v")))
			tx.Origin, tx.Seq = "bench", i
			tr := rec.Start() // nil recorder → nil handle, the disabled path
			tx.Trace = tr
			e.Submit(tx)
			rec.Finish(tr)
		}
		e.Barrier()
	}
	b.Run("off", func(b *testing.B) { run(b, nil) })
	b.Run("sampled", func(b *testing.B) {
		run(b, reqtrace.New("bench", reqtrace.Config{SampleEvery: 1, SlowThreshold: -1}))
	})
}
