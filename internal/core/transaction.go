// Package core implements the paper's primary contribution: functional
// transaction processing over a stream of database versions.
//
// Section 2.1: "Our viewpoint is that each transaction reads a database,
// and conceptually produces a new instance of it. Thus, we describe
//
//	transaction: databases --> responses x databases
//
// The new database is then used for the next transaction to be processed."
// The whole system is the recursive stream program of Figure 2-1:
//
//	old-databases = initial-database ^ new-databases
//	[responses, new-databases] = apply-stream:[transactions, old-databases]
//
// Two engines execute that program:
//
//   - ApplyStreamTraced interprets it while recording the unit-task
//     dataflow DAG (internal/trace), reproducing the paper's Rediflow
//     simulations (Tables I-III).
//   - Engine executes it with real goroutine-backed lenient cells
//     (internal/lenient): each transaction is a spawned future over
//     per-relation futures, so independent transactions genuinely run in
//     parallel and conflicting ones pipeline — with no locks in user code,
//     Section 2.3's claim made operational.
package core

import (
	"fmt"

	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/relation"
	"funcdb/internal/reqtrace"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// Kind classifies a transaction's operation.
type Kind uint8

// Transaction kinds.
const (
	KindFind Kind = iota + 1
	KindInsert
	KindDelete
	KindScan
	KindCount
	KindRange
	KindCreate
	KindCustom
)

// String returns the kind's query-language verb.
func (k Kind) String() string {
	switch k {
	case KindFind:
		return "find"
	case KindInsert:
		return "insert"
	case KindDelete:
		return "delete"
	case KindScan:
		return "scan"
	case KindCount:
		return "count"
	case KindRange:
		return "range"
	case KindCreate:
		return "create"
	case KindCustom:
		return "custom"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// CustomFunc is a user-supplied transaction body: an arbitrary function
// from a database to a response and a new database, the paper's general
// transaction type. It must be pure: derive the new database only from the
// argument database via its functional operations.
type CustomFunc func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (Response, *database.Database, trace.Op)

// Transaction is one element of the transaction stream. The built-in kinds
// cover the query language; KindCustom carries an arbitrary functional
// body with declared read/write sets.
//
// Origin and Seq are the tag the merge operation pairs with each request
// "in order to direct the response for each transaction back to its
// origin" (Section 2.4). The processing engines ignore the tag but keep it
// associated with the response.
type Transaction struct {
	Origin string
	Seq    int

	Kind  Kind
	Rel   string
	Tuple value.Tuple  // insert
	Key   value.Item   // find, delete
	Lo    value.Item   // range
	Hi    value.Item   // range
	Rep   relation.Rep // create

	Custom CustomFunc
	Reads  []string // custom: relations read
	Writes []string // custom: relations written

	Query string // source text, for reports and figures

	// Prepared-statement provenance, set on transactions bound from a
	// prepared template. When such a transaction must be forwarded to
	// another node, Query holds the '?' template (unbindable as text), so
	// the cluster ships PrepHash + PrepArgs instead and the owner rebinds
	// against its own statement cache. Routing hints only: the engines
	// ignore both, and neither is persisted or part of the tag.
	PrepHash uint64
	PrepArgs []value.Item

	// Trace, when non-nil, is the request's live trace handle: the engine
	// brackets its lane-wait/plan/lane-commit stages onto it and the
	// archive's commit observer attaches the group-commit fsync span.
	// Baggage like PrepHash: the engines' semantics ignore it, it is never
	// persisted, and a nil handle costs one pointer comparison.
	Trace *reqtrace.T
}

// Tag returns the origin tag rendered as "origin#seq".
func (t Transaction) Tag() string { return fmt.Sprintf("%s#%d", t.Origin, t.Seq) }

// IsReadOnly reports whether the transaction cannot modify the database:
// "a transaction tr is read-only if it returns the same database as its
// argument" (Section 2.2).
func (t Transaction) IsReadOnly() bool {
	switch t.Kind {
	case KindFind, KindScan, KindCount, KindRange:
		return true
	case KindCustom:
		return len(t.Writes) == 0
	default:
		return false
	}
}

// ReadSet returns the relations the transaction may read. The paper:
// "Usually the specific relations are syntactically derivable from the
// query."
func (t Transaction) ReadSet() []string {
	if t.Kind == KindCustom {
		return append([]string(nil), t.Reads...)
	}
	if t.Rel == "" {
		return nil
	}
	return []string{t.Rel}
}

// WriteSet returns the relations the transaction may replace.
func (t Transaction) WriteSet() []string {
	switch t.Kind {
	case KindInsert, KindDelete:
		return []string{t.Rel}
	case KindCreate:
		return []string{t.Rel}
	case KindCustom:
		return append([]string(nil), t.Writes...)
	default:
		return nil
	}
}

// Validate reports a structurally invalid transaction.
func (t Transaction) Validate() error {
	switch t.Kind {
	case KindInsert:
		if t.Rel == "" || t.Tuple.IsZero() {
			return fmt.Errorf("core: insert needs a relation and a tuple: %+v", t)
		}
	case KindFind, KindDelete:
		if t.Rel == "" || !t.Key.IsValid() {
			return fmt.Errorf("core: %v needs a relation and a key: %+v", t.Kind, t)
		}
	case KindScan, KindCount:
		if t.Rel == "" {
			return fmt.Errorf("core: %v needs a relation: %+v", t.Kind, t)
		}
	case KindRange:
		if t.Rel == "" || !t.Lo.IsValid() || !t.Hi.IsValid() {
			return fmt.Errorf("core: range needs a relation and bounds: %+v", t)
		}
	case KindCreate:
		if t.Rel == "" || t.Rep == 0 {
			return fmt.Errorf("core: create needs a relation name and representation: %+v", t)
		}
	case KindCustom:
		if t.Custom == nil {
			return fmt.Errorf("core: custom transaction without a body: %+v", t)
		}
	default:
		return fmt.Errorf("core: unknown transaction kind %v", t.Kind)
	}
	return nil
}

// Apply runs the transaction as a function from a database version to a
// response and a successor version. Errors (e.g. unknown relations) are
// reported in the response — the database stream must keep flowing for the
// transactions behind this one.
func (t Transaction) Apply(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (Response, *database.Database, trace.Op) {
	resp := Response{Origin: t.Origin, Seq: t.Seq, Kind: t.Kind}
	switch t.Kind {
	case KindInsert:
		next, op, err := db.Insert(ctx, t.Rel, t.Tuple, after)
		if err != nil {
			resp.Err = err
			return resp, db, op
		}
		resp.Tuple = t.Tuple
		return resp, next, op

	case KindFind:
		tu, found, done, err := db.Find(ctx, t.Rel, t.Key, after)
		resp.Err = err
		resp.Found = found
		resp.Tuple = tu
		return resp, db, trace.Op{Done: done}

	case KindDelete:
		next, found, op, err := db.Delete(ctx, t.Rel, t.Key, after)
		resp.Err = err
		resp.Found = found
		return resp, next, op

	case KindScan:
		tuples, done, err := db.Scan(ctx, t.Rel, after)
		resp.Err = err
		resp.Tuples = tuples
		resp.Count = len(tuples)
		return resp, db, trace.Op{Done: done}

	case KindCount:
		n, done, err := db.Count(ctx, t.Rel, after)
		resp.Err = err
		resp.Count = n
		return resp, db, trace.Op{Done: done}

	case KindRange:
		tuples, done, err := db.RangeScan(ctx, t.Rel, t.Lo, t.Hi, after)
		resp.Err = err
		resp.Tuples = tuples
		resp.Count = len(tuples)
		return resp, db, trace.Op{Done: done}

	case KindCreate:
		next, op, err := db.CreateRelation(ctx, t.Rel, t.Rep, after)
		if err != nil {
			resp.Err = err
			return resp, db, op
		}
		return resp, next, op

	case KindCustom:
		r, next, op := t.Custom(ctx, db, after)
		r.Origin, r.Seq = t.Origin, t.Seq
		if r.Kind == 0 {
			r.Kind = KindCustom
		}
		return r, next, op

	default:
		resp.Err = fmt.Errorf("core: unknown transaction kind %v", t.Kind)
		return resp, db, trace.Op{Done: after}
	}
}

// Insert builds an insert transaction.
func Insert(rel string, tuple value.Tuple) Transaction {
	return Transaction{Kind: KindInsert, Rel: rel, Tuple: tuple}
}

// Find builds a find transaction.
func Find(rel string, key value.Item) Transaction {
	return Transaction{Kind: KindFind, Rel: rel, Key: key}
}

// Delete builds a delete transaction.
func Delete(rel string, key value.Item) Transaction {
	return Transaction{Kind: KindDelete, Rel: rel, Key: key}
}

// Scan builds a scan transaction.
func Scan(rel string) Transaction { return Transaction{Kind: KindScan, Rel: rel} }

// Count builds a count transaction.
func Count(rel string) Transaction { return Transaction{Kind: KindCount, Rel: rel} }

// Range builds a range transaction over lo <= key <= hi.
func Range(rel string, lo, hi value.Item) Transaction {
	return Transaction{Kind: KindRange, Rel: rel, Lo: lo, Hi: hi}
}

// Create builds a create-relation transaction.
func Create(rel string, rep relation.Rep) Transaction {
	return Transaction{Kind: KindCreate, Rel: rel, Rep: rep}
}

// Custom builds a custom transaction with declared read and write sets.
func Custom(body CustomFunc, reads, writes []string) Transaction {
	return Transaction{
		Kind:   KindCustom,
		Custom: body,
		Reads:  append([]string(nil), reads...),
		Writes: append([]string(nil), writes...),
	}
}
