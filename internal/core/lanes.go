package core

import (
	"runtime"
	"sort"
	"sync"
)

// Admission lanes shard the merge point. The paper's model is that any
// admission order respecting read/write dependencies yields an equivalent
// version history; a plan's access set (resolved in PR 2) makes those
// dependencies explicit, so the single merge mutex can split into N lanes
// keyed by a hash of the relation name:
//
//   - a transaction whose reads and writes land entirely in one lane
//     commits under that lane's lock alone (disjoint-access parallelism);
//   - a cross-lane transaction takes all its lanes in ascending lane-id
//     order, so multi-lane admissions cannot deadlock;
//   - publication of the successor snapshot is a CAS on the engine's
//     epoch-stamped pointer: lanes that finished admission concurrently
//     race to publish, and a loser rebases its (lane-private) cell changes
//     onto the winner's snapshot — its own cells cannot have moved, because
//     every writer of those relations needs its lane locks.
//
// Lane ids are stable for the engine's lifetime: laneOf depends only on
// the relation name and the lane count, never on the directory, so a plan
// can compute its lane set from the transaction's syntactic access set
// before any lock is held (and before the relations even exist, for
// creates).

// maxLanes bounds the default lane count; WithLanes may exceed it
// explicitly.
const maxLanes = 64

// DefaultLanes returns the lane count used when WithLanes is not given:
// the next power of two at or above GOMAXPROCS, capped at 64. One lane
// reproduces the single-mutex engine exactly.
func DefaultLanes() int {
	n := runtime.GOMAXPROCS(0)
	lanes := 1
	for lanes < n && lanes < maxLanes {
		lanes <<= 1
	}
	return lanes
}

// LaneOf returns the admission lane a relation name hashes to under a
// given lane count. The hash (FNV-1a) is deterministic across processes
// and releases: LaneOf doubles as the cluster placement function —
// internal/cluster places a relation's primary on node LaneOf(rel, N) —
// so every node of a real-network cluster must compute the same answer
// from the name alone. Exported for tests, benchmarks, and cluster
// clients that compute placement locally.
func LaneOf(name string, lanes int) int {
	if lanes <= 1 {
		return 0
	}
	// FNV-1a, inlined: the submission hot path computes a lane set per
	// transaction, so this must not allocate (hash/fnv's Hash64 would).
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= prime64
	}
	return int(h % uint64(lanes))
}

// WithLanes sets the number of admission lanes. n < 1 is clamped to 1
// (the single-mutex engine); the default is DefaultLanes().
func WithLanes(n int) EngineOption {
	return func(e *Engine) {
		if n < 1 {
			n = 1
		}
		e.nlanes = n
	}
}

// Lanes returns the engine's admission lane count.
func (e *Engine) Lanes() int { return e.nlanes }

// laneSet is a sorted, deduplicated set of lane ids: the locks an
// admission must hold, in the order it must take them.
type laneSet []int

// laneSetOf computes the lanes tx's admission must lock, from the
// transaction's syntactic access set (ReadSet/WriteSet — no snapshot or
// lock needed). A custom transaction with no declared sets touches the
// whole directory, so it locks every lane: the full-barrier case. The
// common single-relation case returns a precomputed singleton, so the
// submission hot path allocates nothing for lane bookkeeping.
func (e *Engine) laneSetOf(tx Transaction) laneSet {
	if e.nlanes == 1 {
		return e.allLanes
	}
	if tx.Kind != KindCustom {
		// Built-ins touch exactly one relation (possibly invalid/empty,
		// which still serializes fine on lane 0's singleton).
		return e.laneSingle[LaneOf(tx.Rel, e.nlanes)]
	}
	if len(tx.Reads) == 0 && len(tx.Writes) == 0 {
		return e.allLanes
	}
	var set laneSet
	add := func(name string) {
		l := LaneOf(name, e.nlanes)
		for _, have := range set {
			if have == l {
				return
			}
		}
		set = append(set, l)
	}
	for _, name := range tx.Reads {
		add(name)
	}
	for _, name := range tx.Writes {
		add(name)
	}
	if len(set) == 1 {
		return e.laneSingle[set[0]]
	}
	sort.Ints(set)
	return set
}

// subsetOf reports whether every lane in sub is in super (both sorted).
func (sub laneSet) subsetOf(super laneSet) bool {
	i := 0
	for _, l := range sub {
		for i < len(super) && super[i] < l {
			i++
		}
		if i >= len(super) || super[i] != l {
			return false
		}
	}
	return true
}

// lockLanes acquires the set's lane mutexes in ascending lane-id order —
// the deterministic total order that makes cross-lane admissions
// deadlock-free.
func (e *Engine) lockLanes(ls laneSet) {
	for _, l := range ls {
		e.lanes[l].Lock()
	}
}

// unlockLanes releases the set's lane mutexes (reverse order, by
// convention).
func (e *Engine) unlockLanes(ls laneSet) {
	for i := len(ls) - 1; i >= 0; i-- {
		e.lanes[ls[i]].Unlock()
	}
}

// initLanes sizes the engine's lane array once options have run.
func (e *Engine) initLanes() {
	if e.nlanes < 1 {
		e.nlanes = 1
	}
	e.lanes = make([]sync.Mutex, e.nlanes)
	e.allLanes = make(laneSet, e.nlanes)
	e.laneSingle = make([]laneSet, e.nlanes)
	for i := range e.allLanes {
		e.allLanes[i] = i
		e.laneSingle[i] = e.allLanes[i : i+1]
	}
}
