package core

import (
	"funcdb/internal/database"
	"funcdb/internal/lenient"
)

// Commit describes one committed write transaction: the transaction, its
// response, and the database version it produced. Observers receive commits
// in engine sequence order, after the write's own future has resolved, on a
// notification chain that rides the lenient pipeline — unlike a Force in
// Submit, an observer never delays the merge or the transactions behind it.
type Commit struct {
	// Seq is the engine's version number after this commit (the value
	// Database.Version() reports for the resulting version).
	Seq int64
	// Tx is the committed transaction.
	Tx Transaction
	// Resp is the transaction's response.
	Resp Response

	version *lenient.Cell[*database.Database]
}

// Version materializes the database version this commit produced. The
// version is captured structurally at merge time (a snapshot of the
// per-relation cells), so it is exact even if later transactions have
// already been merged behind this one; forcing it blocks only on the cells
// this version depends on.
func (c Commit) Version() *database.Database { return c.version.Force() }

// NewCommit assembles a Commit from explicit parts: for tests, and for
// feeding commit consumers (an archive, a history) outside an engine —
// e.g. bulk imports that bypass transaction processing.
func NewCommit(seq int64, tx Transaction, resp Response, version func() *database.Database) Commit {
	return Commit{Seq: seq, Tx: tx, Resp: resp, version: lenient.Lazy(version)}
}

// CommitObserver is a post-commit hook. Observers run sequentially (in
// commit order) on the engine's notification goroutine chain; a slow
// observer delays later notifications, never the transaction pipeline
// itself. Barrier waits for all pending notifications.
type CommitObserver func(Commit)

// WithCommitObserver registers a post-commit observer on the engine. It is
// the durability hook: the archive subsystem logs the version stream from
// here, and Store history rides it too.
func WithCommitObserver(fn CommitObserver) EngineOption {
	return func(e *Engine) { e.observers = append(e.observers, fn) }
}

// pendingCommit is one published write waiting its turn in the observer
// sequence: lanes publish versions in CAS order, but the goroutines racing
// through notifyCommit may arrive out of order, so commits park here until
// every earlier version has been chained.
type pendingCommit struct {
	tx   Transaction
	resp *lenient.Cell[Response]
	snap *snapshot
}

// notifyCommit schedules the post-commit notification for a write that was
// just admitted, called right after the write's successor snapshot s won
// publication. The snapshot pins the exact version this commit produced —
// a capture of cell pointers, O(relations) regardless of size — even if
// later transactions are published behind it before the notification runs.
//
// Lane commits are re-serialized here: versions are dense (publish hands
// out cur.version+1 on every successful CAS), so the sequencer releases
// version v to the notification chain only once versions up to v-1 have
// been chained. Observers therefore see the one total version order no
// matter how many lanes produced it — the archive's group commit and the
// store's history depend on that.
func (e *Engine) notifyCommit(tx Transaction, resp *lenient.Cell[Response], s *snapshot) {
	if len(e.observers) == 0 {
		return
	}
	// Account for this commit's notification before Submit returns, so a
	// Barrier after the submitting call covers it even while the commit is
	// parked behind a neighbor lane's in-flight publication.
	e.wg.Add(1)

	e.seqMu.Lock()
	defer e.seqMu.Unlock()
	if e.parked == nil {
		e.parked = make(map[int64]pendingCommit)
	}
	e.parked[s.version] = pendingCommit{tx: tx, resp: resp, snap: s}
	for {
		pc, ok := e.parked[e.seqNext]
		if !ok {
			return
		}
		delete(e.parked, e.seqNext)
		e.seqNext++
		e.chainNotifyLocked(pc)
	}
}

// chainNotifyLocked appends one commit to the notification chain. Must
// hold e.seqMu; called in version order by the sequencer loop above. The
// chain rides the lenient pipeline: each link forces its predecessor, then
// the commit's own response, then runs the observers — a slow observer
// delays later notifications, never the transaction pipeline.
func (e *Engine) chainNotifyLocked(pc pendingCommit) {
	version := lenient.Lazy(pc.snap.materialize)
	prev := e.notifyTail
	e.notifyTail = lenient.Spawn(func() struct{} {
		defer e.wg.Done()
		if prev != nil {
			prev.Force()
		}
		c := Commit{Seq: pc.snap.version, Tx: pc.tx, Resp: pc.resp.Force(), version: version}
		for _, ob := range e.observers {
			ob(c)
		}
		return struct{}{}
	})
}
