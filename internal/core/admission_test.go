package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// respEqual compares the observable parts of two responses (everything a
// client can see, including error text).
func respEqual(a, b Response) bool {
	if a.Origin != b.Origin || a.Seq != b.Seq || a.Kind != b.Kind ||
		a.Found != b.Found || a.Count != b.Count || !a.Tuple.Equal(b.Tuple) {
		return false
	}
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil && a.Err.Error() != b.Err.Error() {
		return false
	}
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if !a.Tuples[i].Equal(b.Tuples[i]) {
			return false
		}
	}
	return true
}

// transferBody is a deterministic custom transaction: move the tuple at
// key k from one relation to another.
func transferBody(from, to string, k int64) Transaction {
	body := func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (Response, *database.Database, trace.Op) {
		tu, found, _, err := db.Find(ctx, from, value.Int(k), after)
		if err != nil || !found {
			return Response{Found: false}, db, trace.Op{}
		}
		next, _, _, err := db.Delete(ctx, from, value.Int(k), after)
		if err != nil {
			return Response{Err: err}, db, trace.Op{}
		}
		next, _, err = next.Insert(ctx, to, tu, after)
		if err != nil {
			return Response{Err: err}, db, trace.Op{}
		}
		return Response{Found: true, Tuple: tu}, next, trace.Op{}
	}
	return Custom(body, []string{from, to}, []string{from, to})
}

// randomWorkload builds a mixed stream over a growing directory: built-in
// reads and writes, creates, and custom read/write bodies.
func randomWorkload(r *rand.Rand, n int) []Transaction {
	names := []string{"R", "S", "T"}
	txns := make([]Transaction, 0, n)
	created := 0
	for i := 0; i < n; i++ {
		rel := names[r.Intn(len(names))]
		k := int64(r.Intn(12))
		var tx Transaction
		switch r.Intn(10) {
		case 0:
			tx = Insert(rel, tup(k, "v"))
		case 1:
			tx = Delete(rel, value.Int(k))
		case 2:
			tx = Find(rel, value.Int(k))
		case 3:
			tx = Count(rel)
		case 4:
			tx = Scan(rel)
		case 5:
			tx = Range(rel, value.Int(2), value.Int(9))
		case 6:
			// Sometimes a duplicate create (an error response), sometimes
			// a genuinely new relation that later transactions then use.
			if r.Intn(2) == 0 && created < 3 {
				name := fmt.Sprintf("N%d", created)
				created++
				tx = Create(name, relation.RepList)
				names = append(names, name)
			} else {
				tx = Create(names[r.Intn(len(names))], relation.RepList)
			}
		case 7:
			other := names[r.Intn(len(names))]
			tx = transferBody(rel, other, k)
		case 8:
			// Custom read-only over declared sets.
			rel := rel
			tx = Custom(func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (Response, *database.Database, trace.Op) {
				n, _, err := db.Count(ctx, rel, after)
				return Response{Count: n, Err: err}, db, trace.Op{}
			}, []string{rel}, nil)
		default:
			tx = Find("NOPE", value.Int(k)) // unknown relation: error response
		}
		tx.Origin, tx.Seq = "w", i
		txns = append(txns, tx)
	}
	return txns
}

// TestPropertyBatchEquivalentToSubmit is the admission-equivalence
// property: SubmitBatch (one merge arbitration), one-at-a-time Submit
// (with the lock-free read fast path), and Submit with serialized reads
// must produce identical responses and identical final databases on random
// mixed workloads. Run in CI under -race.
func TestPropertyBatchEquivalentToSubmit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		txns := randomWorkload(r, 40+r.Intn(40))
		init := database.New(relation.RepList, "R", "S", "T")

		run := func(submit func(e *Engine) []Response, opts ...EngineOption) ([]Response, *database.Database) {
			e := NewEngine(init, opts...)
			resps := submit(e)
			e.Barrier()
			return resps, e.Current()
		}
		force := forceAll

		batchResp, batchFinal := run(func(e *Engine) []Response {
			return force(e.SubmitBatch(txns))
		})
		oneResp, oneFinal := run(func(e *Engine) []Response {
			futs := make([]*lenient.Cell[Response], len(txns))
			for i, tx := range txns {
				futs[i] = e.Submit(tx)
			}
			return force(futs)
		})
		serResp, serFinal := run(func(e *Engine) []Response {
			futs := make([]*lenient.Cell[Response], len(txns))
			for i, tx := range txns {
				futs[i] = e.Submit(tx)
			}
			return force(futs)
		}, WithSerializedReads())
		lanedResp, lanedFinal := run(func(e *Engine) []Response {
			return force(e.SubmitBatch(txns))
		}, WithLanes(4))

		if !batchFinal.Equal(oneFinal) || !batchFinal.Equal(serFinal) || !batchFinal.Equal(lanedFinal) {
			return false
		}
		for i := range batchResp {
			if !respEqual(batchResp[i], oneResp[i]) || !respEqual(batchResp[i], serResp[i]) ||
				!respEqual(batchResp[i], lanedResp[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// forceAll forces a slice of response futures in order.
func forceAll(futs []*lenient.Cell[Response]) []Response {
	out := make([]Response, len(futs))
	for i, f := range futs {
		out[i] = f.Force()
	}
	return out
}

// readSweep issues a Find for every key a workload can touch, in every
// relation the final database holds: the per-key read responses the
// equivalence harness compares across lane counts.
func readSweep(e *Engine, db *database.Database, maxKey int64) []Response {
	var out []Response
	for _, rel := range db.RelationNames() {
		for k := int64(0); k <= maxKey; k++ {
			out = append(out, e.Submit(Find(rel, value.Int(k))).Force())
		}
	}
	return out
}

// TestLaneEquivalenceDeterministic is the admission-equivalence harness
// for sharded lanes: the same seeded mixed workload, submitted in program
// order, must produce identical responses, identical per-key read
// responses, and an identical final database under 1, 2, 4, and 8 lanes,
// and under serialized reads. Lane count may change which lock a commit
// takes, never what it commits. Runs under -race in CI.
func TestLaneEquivalenceDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			txns := randomWorkload(r, 80+r.Intn(60))
			init := database.New(relation.RepList, "R", "S", "T")

			type result struct {
				name   string
				resps  []Response
				sweep  []Response
				final  *database.Database
			}
			variants := []struct {
				name string
				opts []EngineOption
			}{
				{"lanes=1", []EngineOption{WithLanes(1)}},
				{"lanes=2", []EngineOption{WithLanes(2)}},
				{"lanes=4", []EngineOption{WithLanes(4)}},
				{"lanes=8", []EngineOption{WithLanes(8)}},
				{"lanes=4/serialized-reads", []EngineOption{WithLanes(4), WithSerializedReads()}},
			}
			var results []result
			for _, v := range variants {
				e := NewEngine(init, v.opts...)
				futs := make([]*lenient.Cell[Response], len(txns))
				for i, tx := range txns {
					futs[i] = e.Submit(tx)
				}
				resps := forceAll(futs)
				e.Barrier()
				final := e.Current()
				sweep := readSweep(e, final, 12)
				results = append(results, result{name: v.name, resps: resps, sweep: sweep, final: final})
			}

			base := results[0]
			for _, got := range results[1:] {
				if !got.final.Equal(base.final) {
					t.Errorf("%s: final database differs from %s", got.name, base.name)
				}
				if got.final.Version() != base.final.Version() {
					t.Errorf("%s: final version %d, %s has %d",
						got.name, got.final.Version(), base.name, base.final.Version())
				}
				for i := range base.resps {
					if !respEqual(base.resps[i], got.resps[i]) {
						t.Errorf("%s: response %d (%s) differs from %s",
							got.name, i, txns[i].Kind, base.name)
						break
					}
				}
				if len(got.sweep) != len(base.sweep) {
					t.Fatalf("%s: read sweep has %d responses, %s has %d",
						got.name, len(got.sweep), base.name, len(base.sweep))
				}
				for i := range base.sweep {
					if !respEqual(base.sweep[i], got.sweep[i]) {
						t.Errorf("%s: per-key read %d differs from %s", got.name, i, base.name)
						break
					}
				}
			}
		})
	}
}

// namesOnDistinctLanes generates n relation names that hash to n distinct
// lanes, so a test can construct a workload that is disjoint by
// construction. Requires n <= lanes.
func namesOnDistinctLanes(t testing.TB, n, lanes int) []string {
	t.Helper()
	if n > lanes {
		t.Fatalf("cannot place %d names on %d distinct lanes", n, lanes)
	}
	used := make(map[int]bool, n)
	var out []string
	for i := 0; len(out) < n; i++ {
		name := fmt.Sprintf("D%d", i)
		if l := LaneOf(name, lanes); !used[l] {
			used[l] = true
			out = append(out, name)
		}
		if i > 10000 {
			t.Fatal("lane hash never covered enough lanes")
		}
	}
	return out
}

// TestLaneDisjointConcurrentWriters: writers on relations that hash to
// distinct lanes commit concurrently, and the result is identical to what
// one lane produces — disjoint transactions commute, so any publication
// interleaving yields the same final contents, a dense version sequence,
// and a consistent directory epoch. Runs under -race in CI.
func TestLaneDisjointConcurrentWriters(t *testing.T) {
	const writers, ops = 4, 100
	for _, lanes := range []int{1, 4, 8} {
		lanes := lanes
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			names := namesOnDistinctLanes(t, min(writers, lanes), max(lanes, 1))
			for len(names) < writers {
				names = append(names, names[len(names)%max(lanes, 1)])
			}
			e := NewEngine(database.New(relation.RepAVL, names...), WithLanes(lanes))
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < ops; i++ {
						e.Submit(Insert(names[w], tup(int64(w*ops+i), "v")))
					}
				}(w)
			}
			wg.Wait()
			e.Barrier()
			final := e.Current()
			if got := final.TotalTuples(); got != writers*ops {
				t.Fatalf("final tuples = %d, want %d", got, writers*ops)
			}
			if got := final.Version(); got != int64(writers*ops) {
				t.Fatalf("final version = %d, want %d (publication must stay dense)", got, writers*ops)
			}
		})
	}
}

// TestLaneCrossingTransfers: cross-lane custom transactions take their
// lane locks in sorted order, so concurrent transfers in both directions
// between two lanes cannot deadlock and conserve tuples. Runs under -race
// in CI.
func TestLaneCrossingTransfers(t *testing.T) {
	const lanes = 4
	names := namesOnDistinctLanes(t, 2, lanes)
	a, b := names[0], names[1]
	init := database.FromData(relation.RepAVL, names, map[string][]value.Tuple{
		a: {tup(1, "x"), tup(2, "x"), tup(3, "x")},
		b: {tup(4, "x"), tup(5, "x"), tup(6, "x")},
	})
	e := NewEngine(init, WithLanes(lanes))
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := int64(1 + (g*50+i)%6)
				if g%2 == 0 {
					e.Submit(transferBody(a, b, k))
				} else {
					e.Submit(transferBody(b, a, k))
				}
			}
		}(g)
	}
	wg.Wait()
	e.Barrier()
	if got := e.Current().TotalTuples(); got != 6 {
		t.Fatalf("transfers lost or duplicated tuples: %d, want 6", got)
	}
}

// TestLaneSnapshotConsistency: lock-free readers loading the published
// snapshot must always see a consistent directory — the epoch stamp and
// the version advance monotonically even while creates in several lanes
// grow the directory concurrently. Runs under -race in CI.
func TestLaneSnapshotConsistency(t *testing.T) {
	e := NewEngine(database.New(relation.RepList, "R"), WithLanes(8))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			e.Submit(Create(fmt.Sprintf("C%d", i), relation.RepList))
			e.Submit(Insert("R", tup(int64(i), "v")))
		}
	}()
	lastVersion, lastEpoch := int64(-1), int64(-1)
	for i := 0; i < 2000; i++ {
		s := e.snap.Load()
		if len(s.cells) != s.dir.Len() {
			t.Fatalf("torn snapshot: %d cells for %d directory entries", len(s.cells), s.dir.Len())
		}
		if s.version < lastVersion {
			t.Fatalf("published version went backwards: %d after %d", s.version, lastVersion)
		}
		if ep := s.dir.Epoch(); ep < lastEpoch {
			t.Fatalf("directory epoch went backwards: %d after %d", ep, lastEpoch)
		} else {
			lastEpoch = ep
		}
		lastVersion = s.version
	}
	close(stop)
	wg.Wait()
	e.Barrier()
}

// TestReadFastPathSeesOwnWrites: a client that submits a write and then a
// read (in program order) must observe the write — the write's snapshot is
// published before its Submit returns.
func TestReadFastPathSeesOwnWrites(t *testing.T) {
	e := NewEngine(seedDB())
	e.Submit(Insert("R", tup(42, "new")))
	resp := e.Submit(Find("R", value.Int(42))).Force()
	if !resp.Found {
		t.Fatal("fast-path read missed the client's own preceding write")
	}
	e.Submit(Delete("R", value.Int(42)))
	resp = e.Submit(Find("R", value.Int(42))).Force()
	if resp.Found {
		t.Fatal("fast-path read observed a deleted tuple")
	}
}

// TestReadFastPathErrors: unknown relations and invalid transactions keep
// producing error responses on the lock-free path.
func TestReadFastPathErrors(t *testing.T) {
	e := NewEngine(seedDB())
	if resp := e.Submit(Find("NOPE", value.Int(1))).Force(); !errors.Is(resp.Err, database.ErrNoRelation) {
		t.Errorf("unknown relation err = %v", resp.Err)
	}
	if resp := e.Submit(Transaction{Kind: KindFind, Rel: "R"}).Force(); resp.Err == nil {
		t.Error("invalid read-only transaction produced no error")
	}
}

// TestConcurrentReadersAndWriters hammers the fast path under -race:
// writers advance the snapshot while readers load it lock-free, asserting
// only invariants that hold under any interleaving (monotonic counts, no
// torn versions).
func TestConcurrentReadersAndWriters(t *testing.T) {
	e := NewEngine(database.New(relation.RepAVL, "R", "S"))
	const writers, readers, ops = 4, 4, 200

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				e.Submit(Insert("R", tup(int64(w*ops+i), "v")))
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for i := 0; i < ops; i++ {
				resp := e.Submit(Count("R")).Force()
				if resp.Err != nil {
					t.Errorf("read error: %v", resp.Err)
					return
				}
				if resp.Count < last {
					t.Errorf("non-monotonic count: %d after %d", resp.Count, last)
					return
				}
				last = resp.Count
			}
		}()
	}
	wg.Wait()
	e.Barrier()
	if got := e.Current().TotalTuples(); got != writers*ops {
		t.Fatalf("final tuples = %d, want %d", got, writers*ops)
	}
}

// TestSubmitBatchCreateThenUse: a batch may create a relation and use it
// later in the same batch — directory membership is strict at merge time.
func TestSubmitBatchCreateThenUse(t *testing.T) {
	e := NewEngine(database.New(relation.RepList))
	futs := e.SubmitBatch([]Transaction{
		Create("X", relation.RepAVL),
		Insert("X", tup(1, "a")),
		Find("X", value.Int(1)),
		Count("X"),
	})
	if resp := futs[2].Force(); !resp.Found {
		t.Error("find in batch-created relation missed")
	}
	if resp := futs[3].Force(); resp.Count != 1 {
		t.Errorf("count = %d, want 1", resp.Count)
	}
}

// TestPlanAccessSets exercises the planning stage on its own.
func TestPlanAccessSets(t *testing.T) {
	e := NewEngine(seedDB())

	p := e.Plan(Find("R", value.Int(1)))
	if p.Err() != nil || !p.ReadOnly() {
		t.Fatalf("find plan: err=%v readonly=%v", p.Err(), p.ReadOnly())
	}
	if got := p.Touched(); len(got) != 1 || got[0] != "R" {
		t.Errorf("find touched = %v", got)
	}

	p = e.Plan(Insert("S", tup(1)))
	if p.ReadOnly() {
		t.Error("insert plan claims read-only")
	}

	p = e.Plan(transferBody("R", "S", 1))
	if got := p.Touched(); len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Errorf("custom touched = %v", got)
	}

	// Empty declaration: the full barrier touches the whole (sorted)
	// directory.
	p = e.Plan(Transaction{Kind: KindCustom, Custom: func(*eval.Ctx, *database.Database, trace.TaskID) (Response, *database.Database, trace.Op) {
		return Response{}, nil, trace.Op{}
	}, Writes: []string{"R"}, Reads: nil})
	if p.Err() == nil {
		// Writes={R}, Reads=nil: union is {R}, not a full barrier.
		if got := p.Touched(); len(got) != 1 {
			t.Errorf("declared-set touched = %v", got)
		}
	}

	p = e.Plan(Find("NOPE", value.Int(1)))
	if !errors.Is(p.Err(), database.ErrNoRelation) {
		t.Errorf("plan err = %v", p.Err())
	}
	if p.Version() != e.Current().Version() {
		t.Errorf("plan version = %d, engine at %d", p.Version(), e.Current().Version())
	}
}
