package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/metrics"
	"funcdb/internal/relation"
	"funcdb/internal/reqtrace"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// Engine is the runtime (goroutine-backed) form of apply-stream: the
// database is a directory of per-relation lenient cells, and every
// submitted transaction becomes a spawned future over exactly the cells it
// touches.
//
// Admission is a two-stage pipeline. Planning resolves a transaction's
// access set — the cells it reads, the names it replaces — against the
// engine's atomically published snapshot, without locks. Admission installs
// a write's output cells and publishes the successor snapshot under the
// engine mutex: the paper's "momentary 'locking' effect among transactions
// as transaction streams are merged; this establishes a definite sequence
// from which concurrent operations are extracted" (Section 2.4). After that
// moment there are no locks: transactions on different relations run
// concurrently because they share unchanged cells; transactions on the same
// relation pipeline because the later one's future forces the earlier one's
// output cell.
//
// Read-only transactions never install anything, so they skip the merge
// entirely: Submit loads the published snapshot and runs the read against
// it lock-free — the paper's read-only transactions "don't lock out each
// other" (Section 6), now with no mutex either. A fast-path read observes
// the newest version published at some instant during the call, reads are
// monotonic (the snapshot pointer only advances), and a client always sees
// its own earlier writes (a write's snapshot is published before its Submit
// returns).
//
// The merge point itself is sharded into admission lanes (lanes.go): a
// write locks only the lanes its access set hashes into, so writes to
// disjoint lanes admit concurrently, and the successor snapshot is
// published by compare-and-swap on the epoch-stamped pointer rather than
// under any global lock. Commit observers still see one total version
// order: publication assigns dense version numbers, and a sequencer
// (observer.go) re-serializes lane commits before notifying.
type Engine struct {
	nlanes     int
	lanes      []sync.Mutex             // the sharded merge point
	allLanes   laneSet                  // {0..nlanes-1}, the full-barrier set
	laneSingle []laneSet                // precomputed singletons, one per lane
	snap       atomic.Pointer[snapshot] // latest admitted version, lock-free readable

	stats   *eval.Stats
	evalCtx *eval.Ctx // shared transaction-body context (nil when untraced)
	wg      sync.WaitGroup

	// metrics, when non-nil, observes the admission path: commit latency,
	// CAS retries, cross-lane acquisitions, batch run lengths, per-lane
	// commits. Nil costs one pointer comparison per submission — the
	// recording helpers are nil-receiver-safe, and the clock reads are
	// guarded here so an uninstrumented engine never touches time.Now.
	metrics *metrics.Engine

	// serializedReads routes read-only transactions through the merge
	// mutex (the pre-pipeline behavior): a baseline for benchmarks and a
	// diagnostic escape hatch.
	serializedReads bool

	// Post-commit observation (observer.go): observers are notified of
	// every committed write in version order on a chained goroutine, so
	// durability and history ride the pipeline instead of serializing it.
	// The sequencer fields re-serialize lane commits into that one total
	// order.
	observers  []CommitObserver
	notifyTail *lenient.Cell[struct{}]
	seqMu      sync.Mutex
	seqNext    int64                   // next version to hand to observers
	parked     map[int64]pendingCommit // commits published ahead of seqNext
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithStats accumulates sharing statistics from all transaction bodies.
func WithStats(s *eval.Stats) EngineOption {
	return func(e *Engine) { e.stats = s }
}

// WithEngineMetrics records admission metrics into m.
func WithEngineMetrics(m *metrics.Engine) EngineOption {
	return func(e *Engine) { e.metrics = m }
}

// WithSerializedReads disables the lock-free read fast path: read-only
// transactions take the merge mutex like writes. This is the baseline the
// fast path is measured against; there is no correctness reason to use it.
func WithSerializedReads() EngineOption {
	return func(e *Engine) { e.serializedReads = true }
}

// NewEngine starts an engine over an initial database version.
func NewEngine(initial *database.Database, opts ...EngineOption) *Engine {
	e := &Engine{nlanes: DefaultLanes()}
	for _, opt := range opts {
		opt(e)
	}
	if e.stats != nil {
		e.evalCtx = &eval.Ctx{Stats: e.stats}
	}
	e.initLanes()
	e.metrics.SizeLanes(e.nlanes)
	names := initial.RelationNames()
	cells := make([]*lenient.Cell[relation.Relation], len(names))
	for i, name := range names {
		rel, _ := initial.RelationFast(name)
		cells[i] = lenient.Ready(rel)
	}
	e.snap.Store(&snapshot{
		dir:     database.NewDirectory(names...),
		cells:   cells,
		version: initial.Version(),
	})
	e.seqNext = initial.Version() + 1
	return e
}

// ctx returns the eval context used inside transaction bodies (no tracing;
// optional stats). The context is immutable — its counters are atomic — so
// one instance serves every transaction.
func (e *Engine) ctx() *eval.Ctx {
	return e.evalCtx
}

// txnOut is what one transaction future produces. Built-ins write at most
// one relation and report it in the scalar pair (no map); customs fill
// newRels.
type txnOut struct {
	resp      Response
	newRel    relation.Relation
	hasNewRel bool
	newRels   map[string]relation.Relation
}

// Plan resolves tx's access set against the engine's latest published
// version without admitting it: the planning stage on its own, for
// introspection and tests. The returned plan is a snapshot in time — the
// engine may advance before the transaction is submitted.
func (e *Engine) Plan(tx Transaction) Plan {
	return planAgainst(e.snap.Load(), tx)
}

// Submit admits tx into the merged stream and returns its response future.
// The call itself is brief (the merge arbitration); the transaction body
// runs in its own goroutine, demand-synchronized with its neighbors through
// the relation cells. Read-only transactions skip the merge: they are
// planned against the published snapshot and launched lock-free. Writes
// lock only the admission lanes their access set hashes into, so writes on
// disjoint lanes admit concurrently.
func (e *Engine) Submit(tx Transaction) *lenient.Cell[Response] {
	if !e.serializedReads && tx.IsReadOnly() {
		e.metrics.Read()
		if tx.Trace != nil {
			// Reads skip the merge, so planning is the only engine stage
			// a read's timeline gets.
			t0 := time.Now()
			p := planAgainst(e.snap.Load(), tx)
			tx.Trace.Span(reqtrace.StagePlan, t0, time.Now())
			return e.launchRead(p)
		}
		return e.launchRead(planAgainst(e.snap.Load(), tx))
	}
	ls := e.laneSetOf(tx)
	var start time.Time
	if e.metrics != nil || tx.Trace != nil {
		start = time.Now()
		if e.metrics != nil && len(ls) > 1 {
			e.metrics.CrossLaneAcq()
		}
	}
	e.lockLanes(ls)
	// Clock reads for the trace brackets happen inside the locked region,
	// but the span *records* (a mutex'd array write on the handle) wait
	// until the lanes are released.
	var locked, planned time.Time
	if tx.Trace != nil {
		locked = time.Now()
	}
	p := planAgainst(e.snap.Load(), tx)
	if tx.Trace != nil {
		planned = time.Now()
	}
	out := e.admitLocked(p)
	e.unlockLanes(ls)
	if tx.Trace != nil {
		end := time.Now()
		tx.Trace.Span(reqtrace.StageLaneWait, start, locked)
		tx.Trace.Span(reqtrace.StagePlan, locked, planned)
		tx.Trace.Span(reqtrace.StageLaneCommit, planned, end)
	}
	if e.metrics != nil {
		e.metrics.Admit(ls, 1, time.Since(start))
	}
	return out
}

// SubmitBatch admits a slice of transactions and returns their response
// futures in order. It is equivalent to submitting each transaction in
// sequence, but lane locks are amortized: the batch is split into maximal
// consecutive runs whose lane sets fit under one set of held locks, and
// each run pays a single multi-lane acquisition. A batch confined to one
// lane never blocks writers on other lanes.
func (e *Engine) SubmitBatch(txs []Transaction) []*lenient.Cell[Response] {
	out := make([]*lenient.Cell[Response], len(txs))
	sets := make([]laneSet, len(txs))
	for i := range txs {
		sets[i] = e.laneSetOf(txs[i])
	}
	for i := 0; i < len(txs); {
		ls := sets[i]
		j := i + 1
		for j < len(txs) && sets[j].subsetOf(ls) {
			j++
		}
		// A batch is one request, so its transactions share one trace
		// handle; the run's lane stages go to the first handle found (a
		// run mixing distinct traces attributes to the earliest, which
		// only a hand-built batch can produce).
		var tr *reqtrace.T
		for k := i; k < j; k++ {
			if txs[k].Trace != nil {
				tr = txs[k].Trace
				break
			}
		}
		var start time.Time
		if e.metrics != nil || tr != nil {
			start = time.Now()
			if e.metrics != nil && len(ls) > 1 {
				e.metrics.CrossLaneAcq()
			}
		}
		e.lockLanes(ls)
		var locked time.Time
		if tr != nil {
			locked = time.Now()
		}
		for k := i; k < j; k++ {
			out[k] = e.admitLocked(planAgainst(e.snap.Load(), txs[k]))
		}
		e.unlockLanes(ls)
		if tr != nil {
			// Planning happens per transaction inside the run, so the run's
			// lane-commit span covers plan+admit for the whole run.
			end := time.Now()
			tr.Span(reqtrace.StageLaneWait, start, locked)
			tr.Span(reqtrace.StageLaneCommit, locked, end)
		}
		if e.metrics != nil {
			e.metrics.Run(j - i)
			e.metrics.Admit(ls, j-i, time.Since(start))
		}
		i = j
	}
	return out
}

// admitLocked runs the admission stage for one plan: install the write's
// output cells, publish the successor snapshot, and schedule the
// post-commit notification. The caller must hold every lane lock covering
// p's access set, and p must have been planned under those locks — the
// locks pin the plan's input cells, so the plan cannot go stale before
// publication.
func (e *Engine) admitLocked(p Plan) *lenient.Cell[Response] {
	if p.err != nil {
		return p.errResponse()
	}
	if p.ReadOnly() {
		return e.launchRead(p)
	}
	s := p.snap

	if p.create {
		// The relation's contents (empty) are ready immediately; only the
		// directory grows. Publication rebases onto whatever snapshot is
		// current: directories only ever append, so concurrently created
		// relations in other lanes keep their positions.
		newCell := lenient.Ready(relation.New(p.tx.Rep))
		ns := e.publish(func(cur *snapshot) *snapshot {
			cells := make([]*lenient.Cell[relation.Relation], len(cur.cells), len(cur.cells)+1)
			copy(cells, cur.cells)
			cells = append(cells, newCell)
			return &snapshot{dir: cur.dir.With(p.tx.Rel), cells: cells, version: cur.version + 1}
		})
		resp := lenient.Ready(Response{Origin: p.tx.Origin, Seq: p.tx.Seq, Kind: p.tx.Kind})
		e.notifyCommit(p.tx, resp, ns)
		return resp
	}

	// Replace the written cells: later transactions on these relations
	// chain on this future; every other relation's cell is shared
	// untouched in the successor snapshot. The output cells and their
	// directory indices come from the plan — both are pinned by the held
	// lane locks (no other writer can touch these relations, and directory
	// positions are append-stable) — and are built once, outside the CAS
	// loop, so rebasing onto a concurrently advanced snapshot is just
	// re-copying the other lanes' cells.

	if p.writeOne {
		// Built-in single-relation write: no index/cell slices, no map
		// lookup in the output projection.
		out := e.spawnBuiltin(p)
		i, _ := s.dir.Index(p.tx.Rel)
		in := s.cells[i]
		wcell := lenient.Map(out, func(o txnOut) relation.Relation {
			if o.hasNewRel {
				return o.newRel
			}
			return in.Force() // miss (e.g. delete of absent key): old value
		})
		resp := lenient.Map(out, func(o txnOut) Response { return o.resp })
		ns := e.publish(func(cur *snapshot) *snapshot {
			cells := make([]*lenient.Cell[relation.Relation], len(cur.cells))
			copy(cells, cur.cells)
			cells[i] = wcell
			return &snapshot{dir: cur.dir, cells: cells, version: cur.version + 1}
		})
		e.notifyCommit(p.tx, resp, ns)
		return resp
	}

	out := e.spawnCustom(p)
	widx := make([]int, len(p.writes))
	wcells := make([]*lenient.Cell[relation.Relation], len(p.writes))
	for j, w := range p.writes {
		i, _ := s.dir.Index(w)
		in, name := s.cells[i], w
		widx[j] = i
		wcells[j] = lenient.Map(out, func(o txnOut) relation.Relation {
			if nr, ok := o.newRels[name]; ok {
				return nr
			}
			return in.Force() // miss (e.g. delete of absent key): old value
		})
	}
	resp := lenient.Map(out, func(o txnOut) Response { return o.resp })
	ns := e.publish(func(cur *snapshot) *snapshot {
		cells := make([]*lenient.Cell[relation.Relation], len(cur.cells))
		copy(cells, cur.cells)
		for j, i := range widx {
			cells[i] = wcells[j]
		}
		return &snapshot{dir: cur.dir, cells: cells, version: cur.version + 1}
	})
	e.notifyCommit(p.tx, resp, ns)
	return resp
}

// publish installs a successor snapshot by compare-and-swap on the
// epoch-stamped pointer, retrying on concurrent publications from other
// lanes. build must derive the successor from the snapshot it is given —
// on a retry it runs again against the new current snapshot — and must
// only replace cells whose lanes the caller has locked. Version numbers
// come out dense: every successful publication is exactly cur.version+1,
// which is what lets the commit sequencer re-serialize lane commits into
// one total order.
func (e *Engine) publish(build func(cur *snapshot) *snapshot) *snapshot {
	for {
		cur := e.snap.Load()
		ns := build(cur)
		if e.snap.CompareAndSwap(cur, ns) {
			return ns
		}
		e.metrics.CASRetry()
	}
}

// launchRead runs a read-only plan: no cells are installed, so no lock is
// needed. A point read whose input cell has already resolved is answered
// inline — no goroutine, no future machinery, just the lookup.
func (e *Engine) launchRead(p Plan) *lenient.Cell[Response] {
	if p.err != nil {
		return p.errResponse()
	}
	if p.tx.Kind == KindCustom {
		out := e.spawnCustom(p)
		return lenient.Map(out, func(o txnOut) Response { return o.resp })
	}
	if p.tx.Kind == KindFind {
		if rel, ok := p.in.Poll(); ok {
			return lenient.Ready(applyToRelation(e.ctx(), p.tx, rel).resp)
		}
	}
	out := e.spawnBuiltin(p)
	return lenient.Map(out, func(o txnOut) Response { return o.resp })
}

// spawnBuiltin starts the future for a single-relation built-in body.
func (e *Engine) spawnBuiltin(p Plan) *lenient.Cell[txnOut] {
	ctx := e.ctx()
	in, tx := p.in, p.tx
	e.wg.Add(1)
	return lenient.Spawn(func() txnOut {
		defer e.wg.Done()
		return applyToRelation(ctx, tx, in.Force())
	})
}

// applyToRelation interprets a built-in transaction against one relation
// value.
func applyToRelation(ctx *eval.Ctx, tx Transaction, rel relation.Relation) txnOut {
	resp := Response{Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind}
	switch tx.Kind {
	case KindInsert:
		nr, _ := rel.Insert(ctx, tx.Tuple, trace.None)
		resp.Tuple = tx.Tuple
		return txnOut{resp: resp, newRel: nr, hasNewRel: true}
	case KindDelete:
		nr, found, _ := rel.Delete(ctx, tx.Key, trace.None)
		resp.Found = found
		if !found {
			return txnOut{resp: resp}
		}
		return txnOut{resp: resp, newRel: nr, hasNewRel: true}
	case KindFind:
		tu, found, _ := rel.Find(ctx, tx.Key, trace.None)
		resp.Found, resp.Tuple = found, tu
		return txnOut{resp: resp}
	case KindScan:
		resp.Tuples = rel.Tuples()
		resp.Count = len(resp.Tuples)
		return txnOut{resp: resp}
	case KindCount:
		resp.Count = rel.Len()
		return txnOut{resp: resp}
	case KindRange:
		rel.Range(ctx, tx.Lo, tx.Hi, trace.None, func(tu value.Tuple) {
			resp.Tuples = append(resp.Tuples, tu)
		})
		resp.Count = len(resp.Tuples)
		return txnOut{resp: resp}
	default:
		resp.Err = fmt.Errorf("core: engine cannot interpret kind %v", tx.Kind)
		return txnOut{resp: resp}
	}
}

// spawnCustom starts the future for a custom body with declared read and
// write sets, running it over a scoped view of the planned version. The
// view's Version() is the plan-time version number: under concurrent
// cross-lane traffic the commit may publish as a later sequence number
// (other lanes can publish between planning and this write's CAS), but
// the *contents* the body sees are exactly the planned cells — the lane
// locks pin them — so what the transaction commits never depends on lane
// count, only the informational version stamp of its view can trail.
func (e *Engine) spawnCustom(p Plan) *lenient.Cell[txnOut] {
	ctx := e.ctx()
	tx, touched, ins, version := p.tx, p.touched, p.ins, p.snap.version
	e.wg.Add(1)
	return lenient.Spawn(func() (o txnOut) {
		defer e.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				o = txnOut{resp: Response{
					Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind,
					Err: fmt.Errorf("core: custom transaction panicked: %v", r),
				}}
			}
		}()
		rels := make([]relation.Relation, len(ins))
		for i, c := range ins {
			rels[i] = c.Force()
		}
		view := database.FromRelations(touched, rels, version)
		resp, next, _ := tx.Custom(ctx, view, trace.None)
		resp.Origin, resp.Seq = tx.Origin, tx.Seq
		if resp.Kind == 0 {
			resp.Kind = KindCustom
		}
		newRels := make(map[string]relation.Relation, len(tx.Writes))
		for _, w := range tx.Writes {
			if nr, ok := next.RelationFast(w); ok {
				newRels[w] = nr
			}
		}
		return txnOut{resp: resp, newRels: newRels}
	})
}

// Barrier blocks until every submitted transaction body has finished,
// including any pending post-commit observer notifications.
func (e *Engine) Barrier() { e.wg.Wait() }

// Current materializes the present database version, forcing every
// relation cell (a full barrier on the version stream). It is lock-free:
// the published snapshot is the present version.
func (e *Engine) Current() *database.Database {
	return e.snap.Load().materialize()
}

// Version returns the engine's published version number without
// materializing anything: a lock-free read of the snapshot pointer. It
// counts every admitted write (the value Database.Version() would report
// for Current()).
func (e *Engine) Version() int64 {
	return e.snap.Load().version
}

// ApplyStreamPipelined runs an already-merged transaction slice through a
// fresh Engine and returns the responses in merged order plus the final
// database. It is the batch form of the runtime engine, directly comparable
// with ApplySequential for the serializability tests.
func ApplyStreamPipelined(initial *database.Database, txns []Transaction, opts ...EngineOption) ([]Response, *database.Database) {
	e := NewEngine(initial, opts...)
	futures := e.SubmitBatch(txns)
	responses := make([]Response, 0, len(futures))
	for _, f := range futures {
		responses = append(responses, f.Force())
	}
	return responses, e.Current()
}
