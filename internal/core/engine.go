package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// Engine is the runtime (goroutine-backed) form of apply-stream: the
// database is a directory of per-relation lenient cells, and every
// submitted transaction becomes a spawned future over exactly the cells it
// touches.
//
// Submit is the serialization point — the pseudo-functional merge. Its
// mutex is the paper's "momentary 'locking' effect among transactions as
// transaction streams are merged; this establishes a definite sequence from
// which concurrent operations are extracted" (Section 2.4). After that
// moment there are no locks: transactions on different relations run
// concurrently because they share unchanged cells; transactions on the same
// relation pipeline because the later one's future forces the earlier one's
// output cell. Read-only transactions never replace a cell, so they "don't
// lock out each other" (Section 6).
type Engine struct {
	mu     sync.Mutex
	names  []string // directory membership in creation order
	cells  map[string]*lenient.Cell[relation.Relation]
	writes atomic.Int64 // committed write transactions (version counter)
	stats  *eval.Stats
	wg     sync.WaitGroup

	// Post-commit observation (observer.go): observers are notified of
	// every committed write in sequence order on a chained goroutine, so
	// durability and history ride the pipeline instead of serializing it.
	observers  []CommitObserver
	notifyTail *lenient.Cell[struct{}]
}

// EngineOption configures NewEngine.
type EngineOption func(*Engine)

// WithStats accumulates sharing statistics from all transaction bodies.
func WithStats(s *eval.Stats) EngineOption {
	return func(e *Engine) { e.stats = s }
}

// NewEngine starts an engine over an initial database version.
func NewEngine(initial *database.Database, opts ...EngineOption) *Engine {
	e := &Engine{cells: make(map[string]*lenient.Cell[relation.Relation])}
	for _, opt := range opts {
		opt(e)
	}
	for _, name := range initial.RelationNames() {
		rel, _ := initial.RelationFast(name)
		e.names = append(e.names, name)
		e.cells[name] = lenient.Ready(rel)
	}
	e.writes.Store(initial.Version())
	return e
}

// ctx returns the eval context used inside transaction bodies (no tracing;
// optional stats).
func (e *Engine) ctx() *eval.Ctx {
	if e.stats == nil {
		return nil
	}
	return &eval.Ctx{Stats: e.stats}
}

// txnOut is what one transaction future produces.
type txnOut struct {
	resp    Response
	newRels map[string]relation.Relation
}

// Submit admits tx into the merged stream and returns its response future.
// The call itself is brief (the merge arbitration); the transaction body
// runs in its own goroutine, demand-synchronized with its neighbors through
// the relation cells.
func (e *Engine) Submit(tx Transaction) *lenient.Cell[Response] {
	e.mu.Lock()
	defer e.mu.Unlock()

	if err := tx.Validate(); err != nil {
		return lenient.Ready(Response{Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind, Err: err})
	}

	switch tx.Kind {
	case KindCreate:
		// Directory membership is strict: later transactions must know
		// which relations exist the moment they are merged. The relation's
		// contents (empty) are ready immediately anyway.
		if _, exists := e.cells[tx.Rel]; exists {
			return lenient.Ready(Response{
				Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind,
				Err: fmt.Errorf("%w: %q", database.ErrRelationExists, tx.Rel),
			})
		}
		e.names = append(e.names, tx.Rel)
		e.cells[tx.Rel] = lenient.Ready(relation.New(tx.Rep))
		e.writes.Add(1)
		resp := lenient.Ready(Response{Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind})
		e.notifyCommit(tx, resp)
		return resp

	case KindCustom:
		return e.submitCustom(tx)

	default:
		return e.submitBuiltin(tx)
	}
}

// submitBuiltin handles the single-relation query kinds.
func (e *Engine) submitBuiltin(tx Transaction) *lenient.Cell[Response] {
	in, ok := e.cells[tx.Rel]
	if !ok {
		return lenient.Ready(Response{
			Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind,
			Err: fmt.Errorf("%w: %q", database.ErrNoRelation, tx.Rel),
		})
	}

	ctx := e.ctx()
	e.wg.Add(1)
	out := lenient.Spawn(func() txnOut {
		defer e.wg.Done()
		rel := in.Force()
		return applyToRelation(ctx, tx, rel)
	})

	resp := lenient.Map(out, func(o txnOut) Response { return o.resp })
	if !tx.IsReadOnly() {
		// Replace the cell: later transactions on this relation chain on
		// this future; all other relations' cells are shared untouched.
		e.cells[tx.Rel] = lenient.Map(out, func(o txnOut) relation.Relation {
			if nr, ok := o.newRels[tx.Rel]; ok {
				return nr
			}
			return in.Force() // miss (e.g. delete of absent key): old value
		})
		e.writes.Add(1)
		e.notifyCommit(tx, resp)
	}
	return resp
}

// applyToRelation interprets a built-in transaction against one relation
// value.
func applyToRelation(ctx *eval.Ctx, tx Transaction, rel relation.Relation) txnOut {
	resp := Response{Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind}
	switch tx.Kind {
	case KindInsert:
		nr, _ := rel.Insert(ctx, tx.Tuple, trace.None)
		resp.Tuple = tx.Tuple
		return txnOut{resp: resp, newRels: map[string]relation.Relation{tx.Rel: nr}}
	case KindDelete:
		nr, found, _ := rel.Delete(ctx, tx.Key, trace.None)
		resp.Found = found
		if !found {
			return txnOut{resp: resp}
		}
		return txnOut{resp: resp, newRels: map[string]relation.Relation{tx.Rel: nr}}
	case KindFind:
		tu, found, _ := rel.Find(ctx, tx.Key, trace.None)
		resp.Found, resp.Tuple = found, tu
		return txnOut{resp: resp}
	case KindScan:
		resp.Tuples = rel.Tuples()
		resp.Count = len(resp.Tuples)
		return txnOut{resp: resp}
	case KindCount:
		resp.Count = rel.Len()
		return txnOut{resp: resp}
	case KindRange:
		rel.Range(ctx, tx.Lo, tx.Hi, trace.None, func(tu value.Tuple) {
			resp.Tuples = append(resp.Tuples, tu)
		})
		resp.Count = len(resp.Tuples)
		return txnOut{resp: resp}
	default:
		resp.Err = fmt.Errorf("core: engine cannot interpret kind %v", tx.Kind)
		return txnOut{resp: resp}
	}
}

// submitCustom handles arbitrary functional bodies with declared read and
// write sets. An empty declaration means "touches everything" (a full
// barrier) — correct but unpipelined, so callers should declare sets.
func (e *Engine) submitCustom(tx Transaction) *lenient.Cell[Response] {
	touched := unionSorted(tx.Reads, tx.Writes)
	if len(touched) == 0 {
		touched = append([]string(nil), e.names...)
		sort.Strings(touched)
	}
	ins := make([]*lenient.Cell[relation.Relation], len(touched))
	for i, name := range touched {
		cell, ok := e.cells[name]
		if !ok {
			return lenient.Ready(Response{
				Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind,
				Err: fmt.Errorf("%w: %q", database.ErrNoRelation, name),
			})
		}
		ins[i] = cell
	}

	ctx := e.ctx()
	version := e.writes.Load()
	e.wg.Add(1)
	out := lenient.Spawn(func() (o txnOut) {
		defer e.wg.Done()
		defer func() {
			if r := recover(); r != nil {
				o = txnOut{resp: Response{
					Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind,
					Err: fmt.Errorf("core: custom transaction panicked: %v", r),
				}}
			}
		}()
		rels := make([]relation.Relation, len(ins))
		for i, c := range ins {
			rels[i] = c.Force()
		}
		view := database.FromRelations(touched, rels, version)
		resp, next, _ := tx.Custom(ctx, view, trace.None)
		resp.Origin, resp.Seq = tx.Origin, tx.Seq
		if resp.Kind == 0 {
			resp.Kind = KindCustom
		}
		newRels := make(map[string]relation.Relation, len(tx.Writes))
		for _, w := range tx.Writes {
			if nr, ok := next.RelationFast(w); ok {
				newRels[w] = nr
			}
		}
		return txnOut{resp: resp, newRels: newRels}
	})

	for i, name := range touched {
		if !contains(tx.Writes, name) {
			continue
		}
		in := ins[i]
		name := name
		e.cells[name] = lenient.Map(out, func(o txnOut) relation.Relation {
			if nr, ok := o.newRels[name]; ok {
				return nr
			}
			return in.Force()
		})
	}
	resp := lenient.Map(out, func(o txnOut) Response { return o.resp })
	if len(tx.Writes) > 0 {
		e.writes.Add(1)
		e.notifyCommit(tx, resp)
	}
	return resp
}

// Barrier blocks until every submitted transaction body has finished,
// including any pending post-commit observer notifications.
func (e *Engine) Barrier() { e.wg.Wait() }

// Current materializes the present database version, forcing every
// relation cell (a full barrier on the version stream).
func (e *Engine) Current() *database.Database {
	e.mu.Lock()
	names := append([]string(nil), e.names...)
	cells := make([]*lenient.Cell[relation.Relation], len(names))
	for i, n := range names {
		cells[i] = e.cells[n]
	}
	version := e.writes.Load()
	e.mu.Unlock()

	rels := make([]relation.Relation, len(cells))
	for i, c := range cells {
		rels[i] = c.Force()
	}
	return database.FromRelations(names, rels, version)
}

// ApplyStreamPipelined runs an already-merged transaction slice through a
// fresh Engine and returns the responses in merged order plus the final
// database. It is the batch form of the runtime engine, directly comparable
// with ApplySequential for the serializability tests.
func ApplyStreamPipelined(initial *database.Database, txns []Transaction, opts ...EngineOption) ([]Response, *database.Database) {
	e := NewEngine(initial, opts...)
	futures := make([]*lenient.Cell[Response], 0, len(txns))
	for _, tx := range txns {
		futures = append(futures, e.Submit(tx))
	}
	responses := make([]Response, 0, len(futures))
	for _, f := range futures {
		responses = append(responses, f.Force())
	}
	return responses, e.Current()
}

// unionSorted merges two name slices into a sorted, deduplicated union.
func unionSorted(a, b []string) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for _, s := range a {
		set[s] = struct{}{}
	}
	for _, s := range b {
		set[s] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
