package core

import "sort"

// Small sorted-string-set helpers shared by the planner (access-set
// resolution) and the admission stage. Access sets are tiny (a handful of
// relation names), so slices beat maps for both building and membership.

// unionSorted merges two name slices into a sorted, deduplicated union.
func unionSorted(a, b []string) []string {
	set := make(map[string]struct{}, len(a)+len(b))
	for _, s := range a {
		set[s] = struct{}{}
	}
	for _, s := range b {
		set[s] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// contains reports whether xs (a small name slice) contains s.
func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}
