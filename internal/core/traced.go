package core

import (
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/trace"
)

// TracedOptions tunes the simulated apply-stream.
type TracedOptions struct {
	// Strict disables leniency: transaction k+1's dispatch waits for
	// transaction k's completion, the way a conventional serially-executed
	// system would behave. This is the ablation contrasting Section 2.3's
	// implicit synchronization against strict sequencing; the recorded DAG
	// collapses to (nearly) a chain.
	Strict bool
	// History, when non-nil, records every database version.
	History *database.History
}

// ApplyStreamTraced runs the paper's apply-stream equations over an
// already-merged transaction slice, recording the dataflow DAG through ctx.
//
// Per transaction k the simulated evaluator records:
//
//   - a merge task (the arbitration admitting the request into the merged
//     stream; these form a chain — the paper's "momentary locking effect
//     among transactions as transaction streams are merged");
//   - an unfold task (one recursive unfolding of apply-stream; also a
//     chain, since the stream spine is produced in order);
//   - a dispatch task (the transaction beginning to evaluate);
//   - the transaction's own visits/constructs (recorded by the database
//     layer), which depend on the *constructor tasks of the cells they
//     touch* — this is where pipelining appears: a transaction reading a
//     version still under construction proceeds one wavefront behind it;
//   - a respond task depending on the operation's outcome.
//
// The returned responses are in merged order; the final database is the
// last version of the stream.
func ApplyStreamTraced(ctx *eval.Ctx, initial *database.Database, txns []Transaction, opts TracedOptions) ([]Response, *database.Database) {
	responses := make([]Response, 0, len(txns))
	db := initial
	if opts.History != nil {
		opts.History.Append(db)
	}
	mergeT, unfoldT := trace.None, trace.None
	prevDone := trace.None
	for _, tx := range txns {
		mergeT = ctx.Task(trace.KindMerge, mergeT)
		unfoldT = ctx.Task(trace.KindUnfold, unfoldT, mergeT)
		var dispatch trace.TaskID
		if opts.Strict {
			// Strict sequencing: wait for the previous transaction to be
			// fully finished before starting.
			dispatch = ctx.Task(trace.KindDispatch, unfoldT, prevDone)
		} else {
			dispatch = ctx.Task(trace.KindDispatch, unfoldT)
		}
		resp, next, op := tx.Apply(ctx, db, dispatch)
		respond := ctx.Task(trace.KindRespond, op.Done)
		prevDone = respond
		responses = append(responses, resp)
		if next != db && opts.History != nil {
			opts.History.Append(next)
		}
		db = next
	}
	return responses, db
}

// ApplySequential runs the transactions with no tracing and no leniency:
// the plain sequential reference semantics. Every engine must agree with
// it; the serializability tests rely on that.
func ApplySequential(initial *database.Database, txns []Transaction) ([]Response, *database.Database) {
	return ApplyStreamTraced(nil, initial, txns, TracedOptions{})
}
