package core

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

func tup(k int64, rest ...string) value.Tuple {
	items := []value.Item{value.Int(k)}
	for _, s := range rest {
		items = append(items, value.Str(s))
	}
	return value.NewTuple(items...)
}

func seedDB() *database.Database {
	return database.FromData(relation.RepList, []string{"R", "S"}, map[string][]value.Tuple{
		"R": {tup(1, "a"), tup(2, "b")},
		"S": {tup(10, "x")},
	})
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindFind, KindInsert, KindDelete, KindScan, KindCount, KindRange, KindCreate, KindCustom}
	want := []string{"find", "insert", "delete", "scan", "count", "range", "create", "custom"}
	for i, k := range kinds {
		if k.String() != want[i] {
			t.Errorf("Kind %d = %q, want %q", k, k.String(), want[i])
		}
	}
	if !strings.HasPrefix(Kind(77).String(), "Kind(") {
		t.Error("unknown kind string")
	}
}

func TestTransactionMetadata(t *testing.T) {
	tests := []struct {
		name     string
		tx       Transaction
		readOnly bool
		reads    int
		writes   int
	}{
		{"find", Find("R", value.Int(1)), true, 1, 0},
		{"insert", Insert("R", tup(1)), false, 1, 1},
		{"delete", Delete("R", value.Int(1)), false, 1, 1},
		{"scan", Scan("R"), true, 1, 0},
		{"count", Count("R"), true, 1, 0},
		{"range", Range("R", value.Int(0), value.Int(9)), true, 1, 0},
		{"create", Create("X", relation.RepList), false, 1, 1},
		{"custom r/w", Custom(nil, []string{"R"}, []string{"S"}), false, 1, 1},
		{"custom read-only", Custom(nil, []string{"R", "S"}, nil), true, 2, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.tx.IsReadOnly(); got != tc.readOnly {
				t.Errorf("IsReadOnly = %v", got)
			}
			if got := len(tc.tx.ReadSet()); got != tc.reads {
				t.Errorf("ReadSet size = %d, want %d", got, tc.reads)
			}
			if got := len(tc.tx.WriteSet()); got != tc.writes {
				t.Errorf("WriteSet size = %d, want %d", got, tc.writes)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	bad := []Transaction{
		{Kind: KindInsert},
		{Kind: KindInsert, Rel: "R"},
		{Kind: KindFind, Rel: "R"},
		{Kind: KindDelete},
		{Kind: KindScan},
		{Kind: KindCount},
		{Kind: KindRange, Rel: "R"},
		{Kind: KindCreate},
		{Kind: KindCreate, Rel: "X"},
		{Kind: KindCustom},
		{Kind: Kind(99)},
	}
	for i, tx := range bad {
		if err := tx.Validate(); err == nil {
			t.Errorf("case %d: invalid transaction validated: %+v", i, tx)
		}
	}
	good := []Transaction{
		Insert("R", tup(1)),
		Find("R", value.Int(1)),
		Delete("R", value.Int(1)),
		Scan("R"),
		Count("R"),
		Range("R", value.Int(0), value.Int(5)),
		Create("X", relation.RepAVL),
		Custom(func(*eval.Ctx, *database.Database, trace.TaskID) (Response, *database.Database, trace.Op) {
			return Response{}, nil, trace.Op{}
		}, nil, nil),
	}
	for i, tx := range good {
		if err := tx.Validate(); err != nil {
			t.Errorf("case %d: %v", i, err)
		}
	}
}

func TestTagging(t *testing.T) {
	tx := Insert("R", tup(1))
	tx.Origin, tx.Seq = "alice", 3
	if tx.Tag() != "alice#3" {
		t.Errorf("Tag = %q", tx.Tag())
	}
	resp, _, _ := tx.Apply(nil, seedDB(), trace.None)
	if resp.Origin != "alice" || resp.Seq != 3 {
		t.Errorf("response tag = %s", resp.Tag())
	}
}

func TestApplyKinds(t *testing.T) {
	db := seedDB()

	resp, db2, _ := Find("R", value.Int(1)).Apply(nil, db, trace.None)
	if !resp.Found || resp.Tuple.Field(1).AsString() != "a" {
		t.Errorf("find = %+v", resp)
	}
	if db2 != db {
		t.Error("find changed the database")
	}

	resp, db3, _ := Insert("R", tup(5, "e")).Apply(nil, db, trace.None)
	if resp.Err != nil || db3 == db || db3.TotalTuples() != db.TotalTuples()+1 {
		t.Errorf("insert: %+v", resp)
	}

	resp, db4, _ := Delete("R", value.Int(2)).Apply(nil, db3, trace.None)
	if !resp.Found || db4.TotalTuples() != db3.TotalTuples()-1 {
		t.Errorf("delete: %+v", resp)
	}

	resp, _, _ = Scan("R").Apply(nil, db, trace.None)
	if resp.Count != 2 || len(resp.Tuples) != 2 {
		t.Errorf("scan: %+v", resp)
	}

	resp, _, _ = Count("S").Apply(nil, db, trace.None)
	if resp.Count != 1 {
		t.Errorf("count: %+v", resp)
	}

	resp, _, _ = Range("R", value.Int(1), value.Int(1)).Apply(nil, db, trace.None)
	if resp.Count != 1 {
		t.Errorf("range: %+v", resp)
	}

	resp, db5, _ := Create("T", relation.Rep23).Apply(nil, db, trace.None)
	if resp.Err != nil || len(db5.RelationNames()) != 3 {
		t.Errorf("create: %+v", resp)
	}

	resp, db6, _ := Find("NOPE", value.Int(1)).Apply(nil, db, trace.None)
	if !errors.Is(resp.Err, database.ErrNoRelation) || db6 != db {
		t.Errorf("unknown relation: %+v", resp)
	}
}

func TestResponseString(t *testing.T) {
	cases := []struct {
		resp Response
		want string
	}{
		{Response{Origin: "a", Seq: 1, Kind: KindFind, Found: true, Tuple: tup(1)}, "found"},
		{Response{Origin: "a", Seq: 1, Kind: KindFind}, "not found"},
		{Response{Origin: "a", Seq: 2, Kind: KindInsert, Tuple: tup(1)}, "inserted"},
		{Response{Origin: "a", Seq: 3, Kind: KindDelete, Found: true}, "deleted"},
		{Response{Origin: "a", Seq: 4, Kind: KindCount, Count: 7}, "7"},
		{Response{Origin: "a", Seq: 5, Kind: KindScan, Count: 2, Tuples: []value.Tuple{tup(1), tup(2)}}, "2 tuples"},
		{Response{Origin: "a", Seq: 6, Kind: KindCreate}, "created"},
		{Response{Origin: "a", Seq: 7, Kind: KindCustom, Note: "moved"}, "moved"},
		{Response{Origin: "a", Seq: 8, Kind: KindFind, Err: errors.New("boom")}, "error"},
	}
	for _, tc := range cases {
		if got := tc.resp.String(); !strings.Contains(got, tc.want) {
			t.Errorf("String() = %q, want containing %q", got, tc.want)
		}
	}
}

func TestApplyStreamTracedBasic(t *testing.T) {
	g := trace.New()
	ctx := &eval.Ctx{Graph: g}
	txns := []Transaction{
		Insert("R", tup(3, "c")),
		Find("R", value.Int(3)),
		Insert("S", tup(11, "y")),
		Find("S", value.Int(11)),
	}
	responses, final := ApplyStreamTraced(ctx, seedDB(), txns, TracedOptions{})
	if len(responses) != 4 {
		t.Fatalf("%d responses", len(responses))
	}
	if !responses[1].Found || !responses[3].Found {
		t.Error("finds after inserts failed")
	}
	if final.TotalTuples() != 5 {
		t.Errorf("final tuples = %d", final.TotalTuples())
	}
	p := g.Analyze()
	if p.KindCounts[trace.KindMerge] != 4 || p.KindCounts[trace.KindUnfold] != 4 ||
		p.KindCounts[trace.KindDispatch] != 4 || p.KindCounts[trace.KindRespond] != 4 {
		t.Errorf("control task counts wrong: %v", p.KindCounts)
	}
	if p.MaxWidth < 2 {
		t.Errorf("MaxWidth = %d: no pipelining in a 4-txn stream", p.MaxWidth)
	}
}

func TestStrictAblationCollapsesConcurrency(t *testing.T) {
	// The leniency ablation: the same workload traced strictly must have
	// (near) zero overlap, i.e. markedly greater depth.
	txns := make([]Transaction, 0, 20)
	for i := int64(0); i < 20; i++ {
		txns = append(txns, Find("R", value.Int(i%3)))
	}
	gLenient := trace.New()
	ApplyStreamTraced(&eval.Ctx{Graph: gLenient}, seedDB(), txns, TracedOptions{})
	gStrict := trace.New()
	ApplyStreamTraced(&eval.Ctx{Graph: gStrict}, seedDB(), txns, TracedOptions{Strict: true})

	lenientPlies := gLenient.Analyze()
	strictPlies := gStrict.Analyze()
	if strictPlies.Depth <= lenientPlies.Depth {
		t.Errorf("strict depth %d not greater than lenient depth %d", strictPlies.Depth, lenientPlies.Depth)
	}
	if strictPlies.AvgWidth >= lenientPlies.AvgWidth {
		t.Errorf("strict avg width %.2f not below lenient %.2f", strictPlies.AvgWidth, lenientPlies.AvgWidth)
	}
}

func TestTracedHistoryRecordsVersions(t *testing.T) {
	h := database.NewHistory(0)
	txns := []Transaction{
		Insert("R", tup(7)),
		Find("R", value.Int(7)), // read-only: no new version
		Insert("S", tup(20)),
	}
	ApplyStreamTraced(nil, seedDB(), txns, TracedOptions{History: h})
	if h.Len() != 3 { // initial + 2 writes
		t.Errorf("history kept %d versions, want 3", h.Len())
	}
}

func TestEngineMatchesSequential(t *testing.T) {
	txns := []Transaction{
		Insert("R", tup(3, "c")),
		Find("R", value.Int(3)),
		Delete("R", value.Int(1)),
		Find("R", value.Int(1)),
		Insert("S", tup(12, "z")),
		Count("S"),
		Scan("R"),
	}
	for i := range txns {
		txns[i].Origin, txns[i].Seq = "t", i
	}
	seqResp, seqFinal := ApplySequential(seedDB(), txns)
	pipResp, pipFinal := ApplyStreamPipelined(seedDB(), txns)
	if !seqFinal.Equal(pipFinal) {
		t.Fatal("pipelined final state differs from sequential")
	}
	if len(seqResp) != len(pipResp) {
		t.Fatalf("response counts differ: %d vs %d", len(seqResp), len(pipResp))
	}
	for i := range seqResp {
		if seqResp[i].Found != pipResp[i].Found || seqResp[i].Count != pipResp[i].Count ||
			!seqResp[i].Tuple.Equal(pipResp[i].Tuple) {
			t.Errorf("response %d differs: %+v vs %+v", i, seqResp[i], pipResp[i])
		}
	}
}

func TestEngineErrorsSurfaceInResponses(t *testing.T) {
	e := NewEngine(seedDB())
	resp := e.Submit(Find("NOPE", value.Int(1))).Force()
	if !errors.Is(resp.Err, database.ErrNoRelation) {
		t.Errorf("err = %v", resp.Err)
	}
	resp = e.Submit(Transaction{Kind: KindInsert}).Force()
	if resp.Err == nil {
		t.Error("invalid transaction produced no error")
	}
	resp = e.Submit(Create("R", relation.RepList)).Force()
	if !errors.Is(resp.Err, database.ErrRelationExists) {
		t.Errorf("duplicate create err = %v", resp.Err)
	}
}

func TestEngineCreateThenUse(t *testing.T) {
	e := NewEngine(database.New(relation.RepList))
	if resp := e.Submit(Create("T", relation.RepPaged)).Force(); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := e.Submit(Insert("T", tup(1))).Force(); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := e.Submit(Find("T", value.Int(1))).Force(); !resp.Found {
		t.Error("insert into created relation lost")
	}
	if got := e.Current().TotalTuples(); got != 1 {
		t.Errorf("Current tuples = %d", got)
	}
}

func TestEngineCustomTransaction(t *testing.T) {
	// A transfer between R and S: the classic read-modify-write multi-
	// relation transaction, with declared read/write sets.
	transfer := Custom(func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (Response, *database.Database, trace.Op) {
		tu, found, _, err := db.Find(ctx, "R", value.Int(1), after)
		if err != nil || !found {
			return Response{Err: errors.New("source missing")}, db, trace.Op{}
		}
		db1, _, _, err := db.Delete(ctx, "R", value.Int(1), after)
		if err != nil {
			return Response{Err: err}, db, trace.Op{}
		}
		next, op, err := db1.Insert(ctx, "S", tu, after)
		if err != nil {
			return Response{Err: err}, db, trace.Op{}
		}
		return Response{Note: "moved"}, next, op
	}, []string{"R"}, []string{"R", "S"})
	transfer.Origin = "mover"

	e := NewEngine(seedDB())
	resp := e.Submit(transfer).Force()
	if resp.Err != nil || resp.Note != "moved" {
		t.Fatalf("transfer resp = %+v", resp)
	}
	final := e.Current()
	if _, found, _, _ := final.Find(nil, "R", value.Int(1), trace.None); found {
		t.Error("tuple still in R")
	}
	if _, found, _, _ := final.Find(nil, "S", value.Int(1), trace.None); !found {
		t.Error("tuple not moved to S")
	}
}

func TestEngineCustomPanicIsContained(t *testing.T) {
	boom := Custom(func(*eval.Ctx, *database.Database, trace.TaskID) (Response, *database.Database, trace.Op) {
		panic("kaboom")
	}, []string{"R"}, []string{"R"})
	e := NewEngine(seedDB())
	resp := e.Submit(boom).Force()
	if resp.Err == nil || !strings.Contains(resp.Err.Error(), "kaboom") {
		t.Errorf("panic not converted to error: %+v", resp)
	}
	// The engine must still work, with R's old value intact.
	if resp := e.Submit(Find("R", value.Int(1)).withTag("x", 1)).Force(); !resp.Found {
		t.Error("engine broken after contained panic")
	}
	e.Barrier()
}

// withTag is a test helper attaching an origin tag.
func (t Transaction) withTag(origin string, seq int) Transaction {
	t.Origin, t.Seq = origin, seq
	return t
}

func TestEngineReadsDoNotBlockOnOtherRelations(t *testing.T) {
	// A slow custom write on R must not delay a read on S.
	release := make(chan struct{})
	slow := Custom(func(ctx *eval.Ctx, db *database.Database, after trace.TaskID) (Response, *database.Database, trace.Op) {
		<-release
		next, op, _ := db.Insert(ctx, "R", tup(99), after)
		return Response{}, next, op
	}, []string{"R"}, []string{"R"})

	e := NewEngine(seedDB())
	slowResp := e.Submit(slow)
	fast := e.Submit(Find("S", value.Int(10)))
	// The fast read must complete while the slow write is still blocked.
	if resp := fast.Force(); !resp.Found {
		t.Error("read on S failed")
	}
	close(release)
	if resp := slowResp.Force(); resp.Err != nil {
		t.Error(resp.Err)
	}
	e.Barrier()
}

func TestEngineSameRelationPipelines(t *testing.T) {
	// Writes on the same relation are applied in submission order.
	e := NewEngine(seedDB())
	for i := 0; i < 10; i++ {
		e.Submit(Insert("R", tup(int64(100+i))))
	}
	scan := e.Submit(Scan("R")).Force()
	if scan.Count != 12 { // 2 seed + 10 inserts
		t.Errorf("scan count = %d, want 12", scan.Count)
	}
	e.Barrier()
}

func TestEngineStatsCollected(t *testing.T) {
	stats := &eval.Stats{}
	e := NewEngine(seedDB(), WithStats(stats))
	e.Submit(Insert("R", tup(5))).Force()
	e.Barrier()
	if stats.Created.Load() == 0 {
		t.Error("no allocations recorded")
	}
}

// The serializability property (Section 2.4): processing the merged stream
// through the pipelined engine is equivalent to processing it sequentially,
// for arbitrary workloads.
func TestPropertyPipelinedEquivalentToSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		names := []string{"R", "S", "T"}
		init := database.New(relation.RepList, names...)
		n := 30 + r.Intn(40)
		txns := make([]Transaction, 0, n)
		for i := 0; i < n; i++ {
			rel := names[r.Intn(len(names))]
			k := int64(r.Intn(15))
			var tx Transaction
			switch r.Intn(4) {
			case 0:
				tx = Insert(rel, tup(k, "v"))
			case 1:
				tx = Delete(rel, value.Int(k))
			case 2:
				tx = Find(rel, value.Int(k))
			case 3:
				tx = Count(rel)
			}
			tx.Origin, tx.Seq = "cli", i
			txns = append(txns, tx)
		}
		seqResp, seqFinal := ApplySequential(init, txns)
		pipResp, pipFinal := ApplyStreamPipelined(init, txns)
		if !seqFinal.Equal(pipFinal) {
			return false
		}
		for i := range seqResp {
			if seqResp[i].Found != pipResp[i].Found || seqResp[i].Count != pipResp[i].Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyTracedEquivalentToSequential(t *testing.T) {
	// Tracing must never change semantics: same responses, same final
	// state, regardless of graph recording.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		init := database.New(relation.RepList, "R", "S")
		n := 20 + r.Intn(20)
		txns := make([]Transaction, 0, n)
		for i := 0; i < n; i++ {
			rel := []string{"R", "S"}[r.Intn(2)]
			k := int64(r.Intn(10))
			switch r.Intn(3) {
			case 0:
				txns = append(txns, Insert(rel, tup(k)))
			case 1:
				txns = append(txns, Delete(rel, value.Int(k)))
			default:
				txns = append(txns, Find(rel, value.Int(k)))
			}
		}
		seqResp, seqFinal := ApplySequential(init, txns)
		g := trace.New()
		trResp, trFinal := ApplyStreamTraced(&eval.Ctx{Graph: g}, init, txns, TracedOptions{})
		if !seqFinal.Equal(trFinal) || g.Len() == 0 {
			return false
		}
		for i := range seqResp {
			if seqResp[i].Found != trResp[i].Found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
