package core

import (
	"funcdb/internal/database"
	"funcdb/internal/lenient"
	"funcdb/internal/trace"
)

// step is one element of the apply-stream recursion: the paper's lenient
// pair [response, new-database].
type step struct {
	resp Response
	db   *database.Database
}

// ApplyStreamEquations is the paper's top-level program of Figure 2-1,
// transcribed onto lenient streams:
//
//	old-databases = initial-database ^ new-databases
//	[responses, new-databases] = apply-stream:[transactions, old-databases]
//
// with apply-stream's recursive definition from Section 2.1:
//
//	apply-stream:[transactions, databases] =
//	  if transactions = [] then [[], []]
//	  else { [response, new-database] =
//	             (first:transactions):(first:databases),
//	         [more-responses, more-databases] =
//	             apply-stream:[rest:transactions, rest:databases],
//	         RESULT [response ^ more-responses,
//	                 new-database ^ more-databases] }
//
// It returns the response stream and the database stream
// (initial ^ new-databases). Both are projections of a single memoized
// recursion, so each transaction runs exactly once however the outputs are
// demanded — and the recursion is demand-driven: demanding the k-th
// response runs only the first k transactions, so the transaction stream
// may be unbounded ("input sequences of unknown or infinite length, called
// streams, are bona fide data objects"). Constructing the result computes
// the first element (Go's stream heads are strict); everything further is
// lazy.
//
// This form is the executable specification. ApplySequential — and through
// the equivalence tests, the traced and pipelined engines — must agree with
// it on every prefix.
func ApplyStreamEquations(initial *database.Database, txns *lenient.Stream[Transaction]) (*lenient.Stream[Response], *lenient.Stream[*database.Database]) {
	steps := unfoldSteps(txns, initial)
	responses := lenient.ApplyToAll(func(s step) Response { return s.resp }, steps)
	oldDBs := lenient.FollowedBy(initial, func() *lenient.Stream[*database.Database] {
		return lenient.ApplyToAll(func(s step) *database.Database { return s.db }, steps)
	})
	return responses, oldDBs
}

// unfoldSteps performs the recursion, threading each new database into the
// next application. Stream cells memoize, so each step is computed at most
// once regardless of how many projections traverse it.
func unfoldSteps(txns *lenient.Stream[Transaction], db *database.Database) *lenient.Stream[step] {
	if txns.IsEmpty() {
		return nil
	}
	resp, next, _ := txns.First().Apply(nil, db, trace.None)
	return lenient.FollowedBy(step{resp: resp, db: next}, func() *lenient.Stream[step] {
		return unfoldSteps(txns.Rest(), next)
	})
}
