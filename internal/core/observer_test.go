package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"funcdb/internal/database"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// TestObserverSeesCommitsInOrder hammers the engine from concurrent
// submitters and checks that the observer receives exactly the committed
// writes, in engine sequence order, with no gaps.
func TestObserverSeesCommitsInOrder(t *testing.T) {
	var mu sync.Mutex
	var seqs []int64
	e := NewEngine(database.New(relation.RepList, "R", "S", "T"),
		WithCommitObserver(func(c Commit) {
			mu.Lock()
			seqs = append(seqs, c.Seq)
			mu.Unlock()
		}))

	const workers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rels := []string{"R", "S", "T"}
			for i := 0; i < per; i++ {
				e.Submit(Insert(rels[(w+i)%3], value.NewTuple(value.Int(int64(w*1000+i)))))
				if i%5 == 0 {
					e.Submit(Find(rels[i%3], value.Int(int64(i)))) // reads never notify
				}
			}
		}(w)
	}
	wg.Wait()
	e.Barrier()

	if len(seqs) != workers*per {
		t.Fatalf("observed %d commits, want %d", len(seqs), workers*per)
	}
	for i, s := range seqs {
		if s != int64(i+1) {
			t.Fatalf("commit %d has seq %d (out of order or gapped)", i, s)
		}
	}
}

// TestObserverReserializesLaneCommits is TestObserverSeesCommitsInOrder
// with the merge point sharded: writers commit concurrently on distinct
// lanes, publication order is decided by CAS races, and the sequencer must
// still hand observers one dense, gap-free total version order. This is
// the property the archive's group commit and the store's history rely on.
func TestObserverReserializesLaneCommits(t *testing.T) {
	for _, lanes := range []int{2, 4, 8} {
		lanes := lanes
		t.Run(fmt.Sprintf("lanes=%d", lanes), func(t *testing.T) {
			var mu sync.Mutex
			var seqs []int64
			names := namesOnDistinctLanes(t, min(4, lanes), lanes)
			e := NewEngine(database.New(relation.RepAVL, names...),
				WithLanes(lanes),
				WithCommitObserver(func(c Commit) {
					mu.Lock()
					seqs = append(seqs, c.Seq)
					mu.Unlock()
				}))

			const per = 50
			var wg sync.WaitGroup
			for w := range names {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						e.Submit(Insert(names[w], value.NewTuple(value.Int(int64(w*1000+i)))))
					}
				}(w)
			}
			wg.Wait()
			e.Barrier()

			if len(seqs) != len(names)*per {
				t.Fatalf("observed %d commits, want %d", len(seqs), len(names)*per)
			}
			for i, s := range seqs {
				if s != int64(i+1) {
					t.Fatalf("commit %d has seq %d (lane commits not re-serialized)", i, s)
				}
			}
		})
	}
}

// TestObserverVersionIsExact checks that Commit.Version materializes the
// version the commit produced, even when later transactions were already
// merged behind it before the observer ran.
func TestObserverVersionIsExact(t *testing.T) {
	type seen struct {
		seq    int64
		tuples int
	}
	var mu sync.Mutex
	var got []seen
	e := NewEngine(database.New(relation.RepList, "R"),
		WithCommitObserver(func(c Commit) {
			db := c.Version()
			mu.Lock()
			got = append(got, seen{c.Seq, db.TotalTuples()})
			mu.Unlock()
		}))
	const n = 40
	for i := 0; i < n; i++ {
		e.Submit(Insert("R", value.NewTuple(value.Int(int64(i)))))
	}
	e.Barrier()
	if len(got) != n {
		t.Fatalf("observed %d commits", len(got))
	}
	for i, s := range got {
		if s.seq != int64(i+1) || s.tuples != i+1 {
			t.Fatalf("commit %d: seq %d with %d tuples (version not pinned)", i, s.seq, s.tuples)
		}
	}
}

// TestObserverCoversAllWriteKinds checks create, delete (including a
// miss), and custom writes all notify with correct responses.
func TestObserverCoversAllWriteKinds(t *testing.T) {
	var commits []Commit
	var mu sync.Mutex
	e := NewEngine(database.New(relation.RepList, "R"),
		WithCommitObserver(func(c Commit) {
			mu.Lock()
			commits = append(commits, c)
			mu.Unlock()
		}))
	e.Submit(Create("S", relation.RepAVL))
	e.Submit(Insert("R", value.NewTuple(value.Int(1))))
	e.Submit(Delete("R", value.Int(99))) // miss: still a commit
	e.Barrier()

	if len(commits) != 3 {
		t.Fatalf("observed %d commits", len(commits))
	}
	if commits[0].Tx.Kind != KindCreate || commits[1].Tx.Kind != KindInsert || commits[2].Tx.Kind != KindDelete {
		t.Fatalf("kinds: %v %v %v", commits[0].Tx.Kind, commits[1].Tx.Kind, commits[2].Tx.Kind)
	}
	if commits[2].Resp.Found {
		t.Error("delete miss reported Found")
	}
	if v := commits[2].Version(); v.Version() != 3 || v.TotalTuples() != 1 {
		t.Errorf("post-miss version %d with %d tuples", v.Version(), v.TotalTuples())
	}
}

// TestObserverDoesNotBlockPipeline submits from an observer-free path
// while a deliberately slow observer lags: Submit must keep returning
// without waiting for notifications, and Barrier must drain them.
func TestObserverDoesNotBlockPipeline(t *testing.T) {
	release := make(chan struct{})
	var notified atomic.Int64
	e := NewEngine(database.New(relation.RepList, "R"),
		WithCommitObserver(func(c Commit) {
			if c.Seq == 1 {
				<-release // first notification stalls the observer chain
			}
			notified.Add(1)
		}))

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			// Force the response: the transaction itself completes even
			// though its notification is stuck behind the stalled chain.
			e.Submit(Insert("R", value.NewTuple(value.Int(int64(i))))).Force()
		}
	}()
	<-done
	if n := notified.Load(); n != 0 {
		t.Fatalf("%d notifications ran while the chain was stalled", n)
	}
	close(release)
	e.Barrier()
	if n := notified.Load(); n != 10 {
		t.Fatalf("notified %d commits after barrier", n)
	}
}

// TestNoObserverNoOverhead: without observers the engine must not spawn
// notification goroutines (notifyTail stays nil).
func TestNoObserverNoOverhead(t *testing.T) {
	e := NewEngine(database.New(relation.RepList, "R"))
	e.Submit(Insert("R", value.NewTuple(value.Int(1))))
	e.Barrier()
	if e.notifyTail != nil {
		t.Error("notification chain grew without observers")
	}
}
