package core

import (
	"fmt"

	"funcdb/internal/database"
	"funcdb/internal/lenient"
	"funcdb/internal/relation"
)

// snapshot is one atomically published directory state: the membership
// (names) of a database version together with the per-relation cells that
// will eventually hold — or already hold — its relation values. A snapshot
// is immutable; the engine advances by publishing a successor. This is what
// makes the read fast path possible: loading the snapshot pointer observes
// one definite version of the merged stream without entering the merge.
type snapshot struct {
	dir     *database.Directory
	cells   []*lenient.Cell[relation.Relation] // parallel to dir.Names()
	version int64
}

// cell resolves a relation's cell by name.
func (s *snapshot) cell(name string) (*lenient.Cell[relation.Relation], bool) {
	i, ok := s.dir.Index(name)
	if !ok {
		return nil, false
	}
	return s.cells[i], true
}

// materialize forces every relation cell and assembles the database value
// this snapshot denotes.
func (s *snapshot) materialize() *database.Database {
	rels := make([]relation.Relation, len(s.cells))
	for i, c := range s.cells {
		rels[i] = c.Force()
	}
	return database.FromRelations(s.dir.Names(), rels, s.version)
}

// Plan is a transaction's resolved access set: the version it was planned
// against, the input cells its body will force, and the relation names its
// admission will replace (or create). Planning only reads a published
// snapshot — it takes no locks and installs nothing; admission (installing
// output cells and publishing the successor snapshot) is the serialized
// step. Splitting the two keeps the engine mutex down to the pure merge
// arbitration and lets read-only plans skip it entirely.
type Plan struct {
	tx   Transaction
	snap *snapshot
	err  error // validation/resolution failure -> immediate error response

	// Built-in transactions touch exactly one relation; their access set is
	// held in these two scalars so planning the hot path allocates nothing.
	in       *lenient.Cell[relation.Relation] // the single input cell
	writeOne bool                             // admission replaces tx.Rel's cell

	// Customs (and creates) use the general slice form.
	touched []string // input relation names (sorted union for customs)
	ins     []*lenient.Cell[relation.Relation]
	writes  []string // names whose cells admission replaces
	create  bool     // admission grows the directory by tx.Rel
}

// Err reports why the plan cannot run (unknown relation, invalid
// transaction); nil for admissible plans.
func (p Plan) Err() error { return p.err }

// ReadOnly reports whether admission would install nothing: the plan's
// transaction can run against the planned version without serializing.
func (p Plan) ReadOnly() bool { return !p.create && !p.writeOne && len(p.writes) == 0 }

// Touched returns the relation names the plan's body reads (including
// read-modify-write inputs).
func (p Plan) Touched() []string {
	if p.in != nil {
		return []string{p.tx.Rel}
	}
	return append([]string(nil), p.touched...)
}

// Version returns the database version the plan resolved against.
func (p Plan) Version() int64 { return p.snap.version }

// planAgainst resolves tx's access set against one published snapshot. It
// is pure: no engine state is read or written beyond s.
func planAgainst(s *snapshot, tx Transaction) Plan {
	p := Plan{tx: tx, snap: s}
	if err := tx.Validate(); err != nil {
		p.err = err
		return p
	}

	switch tx.Kind {
	case KindCreate:
		// Directory membership is strict: later transactions must know
		// which relations exist the moment they are merged.
		if s.dir.Has(tx.Rel) {
			p.err = fmt.Errorf("%w: %q", database.ErrRelationExists, tx.Rel)
			return p
		}
		p.create = true
		p.writes = []string{tx.Rel}
		return p

	case KindCustom:
		// An empty declaration means "touches everything" (a full
		// barrier) — correct but unpipelined, so callers should declare
		// sets. The directory caches its sorted order, so the full
		// barrier costs no per-plan sort.
		touched := unionSorted(tx.Reads, tx.Writes)
		if len(touched) == 0 {
			touched = s.dir.Sorted()
		}
		ins := make([]*lenient.Cell[relation.Relation], len(touched))
		for i, name := range touched {
			cell, ok := s.cell(name)
			if !ok {
				p.err = fmt.Errorf("%w: %q", database.ErrNoRelation, name)
				return p
			}
			ins[i] = cell
		}
		p.touched, p.ins, p.writes = touched, ins, tx.Writes
		return p

	default:
		in, ok := s.cell(tx.Rel)
		if !ok {
			p.err = fmt.Errorf("%w: %q", database.ErrNoRelation, tx.Rel)
			return p
		}
		p.in = in
		p.writeOne = !tx.IsReadOnly()
		return p
	}
}

// errResponse builds the immediate error response for an inadmissible plan.
func (p Plan) errResponse() *lenient.Cell[Response] {
	return lenient.Ready(Response{Origin: p.tx.Origin, Seq: p.tx.Seq, Kind: p.tx.Kind, Err: p.err})
}
