package core

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/relation"
	"funcdb/internal/trace"
	"funcdb/internal/value"
	"math/rand"
)

func TestEquationsMatchSequential(t *testing.T) {
	txns := []Transaction{
		Insert("R", tup(3, "c")),
		Find("R", value.Int(3)),
		Delete("R", value.Int(1)),
		Count("R"),
		Insert("S", tup(11)),
	}
	seqResp, seqFinal := ApplySequential(seedDB(), txns)

	respStream, dbStream := ApplyStreamEquations(seedDB(), lenient.FromSlice(txns))
	eqResp := lenient.ToSlice(respStream)
	if len(eqResp) != len(seqResp) {
		t.Fatalf("%d responses, want %d", len(eqResp), len(seqResp))
	}
	for i := range seqResp {
		if seqResp[i].Found != eqResp[i].Found || seqResp[i].Count != eqResp[i].Count {
			t.Errorf("response %d differs: %+v vs %+v", i, seqResp[i], eqResp[i])
		}
	}
	dbs := lenient.ToSlice(dbStream)
	if len(dbs) != len(txns)+1 {
		t.Fatalf("database stream has %d versions", len(dbs))
	}
	if !dbs[len(dbs)-1].Equal(seqFinal) {
		t.Error("final database differs from sequential")
	}
	// The database stream starts with the initial version.
	if dbs[0].Version() != 0 {
		t.Errorf("first version = %d", dbs[0].Version())
	}
}

func TestEquationsAreDemandDriven(t *testing.T) {
	// A counting transaction stream: only as many transactions run as
	// responses are demanded (plus the strict head).
	var ran atomic.Int32
	counting := lenient.Generate(func(i int) (Transaction, bool) {
		if i >= 1000 {
			return Transaction{}, false
		}
		tx := Custom(func(_ *eval.Ctx, db *database.Database, _ trace.TaskID) (Response, *database.Database, trace.Op) {
			ran.Add(1)
			return Response{Count: i}, db, trace.Op{}
		}, nil, nil)
		tx.Seq = i
		return tx, true
	})

	respStream, _ := ApplyStreamEquations(database.New(relation.RepList, "R"), counting)
	if got := ran.Load(); got != 1 {
		t.Fatalf("constructing the streams ran %d transactions, want 1 (the strict head)", got)
	}
	got := lenient.TakeSlice(respStream, 5)
	if len(got) != 5 {
		t.Fatalf("took %d", len(got))
	}
	if ran.Load() != 5 {
		t.Errorf("demanding 5 responses ran %d transactions", ran.Load())
	}
	// Each transaction ran exactly once even though two projections share
	// the recursion: demand the database stream for the same prefix.
	_, dbStream := ApplyStreamEquations(database.New(relation.RepList, "R"), counting)
	_ = dbStream
}

func TestEquationsShareTheRecursion(t *testing.T) {
	// Demanding BOTH output streams must not re-run transactions.
	var ran atomic.Int32
	txns := make([]Transaction, 10)
	for i := range txns {
		i := i
		txns[i] = Custom(func(_ *eval.Ctx, db *database.Database, _ trace.TaskID) (Response, *database.Database, trace.Op) {
			ran.Add(1)
			return Response{Count: i}, db, trace.Op{}
		}, nil, nil)
	}
	respStream, dbStream := ApplyStreamEquations(database.New(relation.RepList, "R"), lenient.FromSlice(txns))
	_ = lenient.ToSlice(respStream)
	_ = lenient.ToSlice(dbStream)
	if got := ran.Load(); got != 10 {
		t.Errorf("transactions ran %d times, want 10 (once each)", got)
	}
}

func TestEquationsEmptyStream(t *testing.T) {
	respStream, dbStream := ApplyStreamEquations(seedDB(), nil)
	if respStream != nil {
		t.Error("responses of empty stream not empty")
	}
	dbs := lenient.ToSlice(dbStream)
	if len(dbs) != 1 {
		t.Fatalf("database stream = %d versions, want 1 (initial)", len(dbs))
	}
}

func TestEquationsOldVersionsRemainQueryable(t *testing.T) {
	txns := []Transaction{
		Insert("R", tup(5)),
		Insert("R", tup(6)),
		Delete("R", value.Int(5)),
	}
	_, dbStream := ApplyStreamEquations(seedDB(), lenient.FromSlice(txns))
	dbs := lenient.ToSlice(dbStream)
	// dbs[1] is the version after the first insert: key 5 present.
	if _, found, _, _ := dbs[1].Find(nil, "R", value.Int(5), trace.None); !found {
		t.Error("version 1 lost key 5")
	}
	// dbs[3] is after the delete: key 5 absent, key 6 present.
	if _, found, _, _ := dbs[3].Find(nil, "R", value.Int(5), trace.None); found {
		t.Error("version 3 still has key 5")
	}
	if _, found, _, _ := dbs[3].Find(nil, "R", value.Int(6), trace.None); !found {
		t.Error("version 3 lost key 6")
	}
}

func TestPropertyEquationsEquivalentToSequential(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		init := database.New(relation.RepList, "R", "S")
		n := 10 + r.Intn(30)
		txns := make([]Transaction, 0, n)
		for i := 0; i < n; i++ {
			rel := []string{"R", "S"}[r.Intn(2)]
			k := int64(r.Intn(10))
			switch r.Intn(3) {
			case 0:
				txns = append(txns, Insert(rel, tup(k)))
			case 1:
				txns = append(txns, Delete(rel, value.Int(k)))
			default:
				txns = append(txns, Find(rel, value.Int(k)))
			}
		}
		seqResp, seqFinal := ApplySequential(init, txns)
		respStream, dbStream := ApplyStreamEquations(init, lenient.FromSlice(txns))
		eqResp := lenient.ToSlice(respStream)
		for i := range seqResp {
			if seqResp[i].Found != eqResp[i].Found {
				return false
			}
		}
		dbs := lenient.ToSlice(dbStream)
		return dbs[len(dbs)-1].Equal(seqFinal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
