package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket map: 0 → bucket 0, and each power
// of two opens a new bucket whose range is [2^(b-1), 2^b - 1].
func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{-5, 0}, {0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{1024, 11}, {2047, 11},
		{1 << 40, 41},
		{1<<62 - 1, 62}, {1 << 62, 63}, {1<<63 - 1, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.bucket)
		}
	}
	for b := 1; b < 63; b++ {
		lo, hi := bucketBounds(b)
		if lo != int64(1)<<(b-1) || hi != int64(1)<<b-1 {
			t.Errorf("bucketBounds(%d) = [%d,%d], want [%d,%d]", b, lo, hi, int64(1)<<(b-1), int64(1)<<b-1)
		}
		if bucketOf(lo) != b || bucketOf(hi) != b {
			t.Errorf("bounds of bucket %d do not map back: %d→%d %d→%d", b, lo, bucketOf(lo), hi, bucketOf(hi))
		}
	}
}

// TestQuantiles checks extraction against a known distribution: the
// interpolated estimate must land inside the covering bucket, and the
// bucket's bounds bracket the true value (the ≤2x contract).
func TestQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations of value 100 (bucket 7: [64,127]).
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 100_000 {
		t.Fatalf("count/sum = %d/%d", s.Count, s.Sum)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		v := s.Quantile(q)
		if v < 64 || v > 127 {
			t.Errorf("Quantile(%g) = %d, want within [64,127]", q, v)
		}
	}

	// Bimodal: 90 fast (≈1µs), 10 slow (≈1ms). p50 must sit in the fast
	// bucket, p99 in the slow one.
	var b Histogram
	for i := 0; i < 90; i++ {
		b.Observe(1000)
	}
	for i := 0; i < 10; i++ {
		b.Observe(1_000_000)
	}
	bs := b.Snapshot()
	if p50 := bs.P50; p50 < 512 || p50 > 1023 {
		t.Errorf("bimodal p50 = %d, want in [512,1023]", p50)
	}
	if p99 := bs.P99; p99 < 524288 || p99 > 1048575 {
		t.Errorf("bimodal p99 = %d, want in [524288,1048575]", p99)
	}
	if m := bs.Mean(); m < 100_000 || m > 101_000 {
		t.Errorf("bimodal mean = %g, want ≈100900", m)
	}
}

func TestQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram must quantile/mean to 0")
	}
	var h Histogram
	h.Observe(0)
	s := h.Snapshot()
	if s.P50 != 0 || s.P999 != 0 {
		t.Errorf("all-zero histogram: p50=%d p999=%d", s.P50, s.P999)
	}
	if len(s.Buckets) != 1 {
		t.Errorf("all-zero histogram buckets = %v, want [1]", s.Buckets)
	}
	var one Histogram
	one.Observe(5)
	if v := one.Snapshot().Quantile(1.0); v < 4 || v > 7 {
		t.Errorf("single-value q1.0 = %d, want in [4,7]", v)
	}
}

// TestConcurrentRecording hammers one histogram and counters from many
// goroutines; totals must be exact (run under -race in CI).
func TestConcurrentRecording(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(i % 1000))
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("histogram count = %d, want %d", s.Count, workers*per)
	}
	var bucketSum int64
	for _, n := range s.Buckets {
		bucketSum += n
	}
	if bucketSum != workers*per {
		t.Errorf("bucket total = %d, want %d", bucketSum, workers*per)
	}
	if c.Load() != workers*per {
		t.Errorf("counter = %d, want %d", c.Load(), workers*per)
	}
	if g.Load() != 0 {
		t.Errorf("gauge = %d, want 0", g.Load())
	}
}

// TestNilSafety: every recording and snapshot method must be a no-op on
// nil receivers — the zero-cost-when-absent contract.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter loads non-zero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Load() != 0 {
		t.Error("nil gauge loads non-zero")
	}
	var h *Histogram
	h.Observe(1)
	h.Since(time.Now())
	if h.Count() != 0 || h.Snapshot().Count != 0 {
		t.Error("nil histogram recorded")
	}
	var e *Engine
	e.SizeLanes(4)
	e.Read()
	e.Admit([]int{0}, 1, time.Millisecond)
	e.CASRetry()
	e.CrossLaneAcq()
	e.Run(3)
	if e.Snapshot().Admitted != 0 {
		t.Error("nil engine recorded")
	}
	var a *Archive
	a.Appended(10)
	a.Buffered()
	a.Flushed(2, 100)
	a.Fsync(time.Millisecond)
	a.SnapshotWritten(50)
	a.Recovered(time.Second)
	if a.Snapshot().Appends != 0 {
		t.Error("nil archive recorded")
	}
	var s *Session
	s.Flush(4)
	if s.Snapshot().Flushes != 0 {
		t.Error("nil session recorded")
	}
	var cl *Cluster
	cl.Forwarded(2)
	cl.Redirected()
	if cl.Snapshot().Forwards != 0 {
		t.Error("nil cluster recorded")
	}
	var srv *Server
	if srv.Snapshot().Execs != 0 {
		t.Error("nil server recorded")
	}
}

func TestEngineLayer(t *testing.T) {
	var e Engine
	e.SizeLanes(4)
	e.Read()
	e.Read()
	e.Admit([]int{1}, 1, 2*time.Microsecond)
	e.Admit([]int{0, 2}, 3, 5*time.Microsecond)
	e.CrossLaneAcq()
	e.CASRetry()
	e.Run(3)
	s := e.Snapshot()
	if s.Reads != 2 || s.Admitted != 4 || s.CrossLane != 1 || s.CASRetries != 1 {
		t.Errorf("engine snapshot = %+v", s)
	}
	want := []int64{3, 1, 3, 0}
	for i, w := range want {
		if s.LaneCommits[i] != w {
			t.Errorf("lane %d commits = %d, want %d", i, s.LaneCommits[i], w)
		}
	}
	if s.CommitLatency.Count != 2 || s.BatchRuns.Count != 1 {
		t.Errorf("hist counts: commit=%d runs=%d", s.CommitLatency.Count, s.BatchRuns.Count)
	}
}

// TestSnapshotJSON: the aggregate snapshot round-trips through JSON and
// omits sections the node does not run.
func TestSnapshotJSON(t *testing.T) {
	var e Engine
	e.SizeLanes(2)
	e.Admit([]int{0}, 1, time.Microsecond)
	snap := Snapshot{
		Origin:  "test",
		Version: 7,
		Lanes:   2,
		Durable: false,
		Engine:  e.Snapshot(),
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Version != 7 || back.Engine.Admitted != 1 || back.Origin != "test" {
		t.Errorf("round-trip mismatch: %+v", back)
	}
	if back.Archive != nil || back.Cluster != nil || back.Server != nil {
		t.Error("absent sections must stay nil through JSON")
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if _, present := m["archive"]; present {
		t.Error("nil archive section must be omitted from JSON")
	}
	if snap.Format() == "" {
		t.Error("Format returned empty report")
	}
}

// TestFailoverSnapshotJSONFields pins the failover observability surface
// to its wire names: these keys are what fdbload's StatsAll sweep, the
// /debug/vars document, and checked-in BENCH artifacts consume, so a
// rename here is a breaking change to every report reader.
func TestFailoverSnapshotJSONFields(t *testing.T) {
	var c Cluster
	c.Promotions.Inc()
	c.FencingRejections.Add(2)
	c.HeartbeatRTT.Observe(1500)
	cs := c.Snapshot()
	cs.Epochs = []uint64{0, 1}
	cs.Owners = []int{0, 2}
	snap := Snapshot{
		Cluster: &cs,
		Peers: []PeerSnapshot{
			{Peer: 1, Addr: "n1", ReplicaApplied: 41, HeartbeatAgeMs: 12.5, AppliedLag: 3},
			{Peer: 2, Addr: "n2", ReplicaApplied: -1, HeartbeatAgeMs: -1, AppliedLag: -1},
		},
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Cluster map[string]json.RawMessage   `json:"cluster"`
		Peers   []map[string]json.RawMessage `json:"peers"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"promotions", "fencing_rejections", "epochs", "owners", "heartbeat_rtt_ns"} {
		if _, ok := doc.Cluster[key]; !ok {
			t.Errorf("cluster section lost the %q field", key)
		}
	}
	for i, peer := range doc.Peers {
		for _, key := range []string{"heartbeat_age_ms", "applied_lag"} {
			if _, ok := peer[key]; !ok {
				t.Errorf("peer %d lost the %q field (it must be present even when -1)", i, key)
			}
		}
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Cluster.Promotions != 1 || back.Cluster.FencingRejections != 2 ||
		len(back.Cluster.Epochs) != 2 || back.Cluster.Epochs[1] != 1 || back.Cluster.Owners[1] != 2 {
		t.Errorf("failover cluster fields did not round-trip: %+v", back.Cluster)
	}
	if back.Peers[0].HeartbeatAgeMs != 12.5 || back.Peers[0].AppliedLag != 3 ||
		back.Peers[1].HeartbeatAgeMs != -1 || back.Peers[1].AppliedLag != -1 {
		t.Errorf("peer liveness fields did not round-trip: %+v", back.Peers)
	}
	if !strings.Contains(snap.Format(), "hb_age") {
		t.Error("Format() dropped the per-peer heartbeat line")
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		var i int64
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var h *Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
