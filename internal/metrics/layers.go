package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Engine instruments the sharded admission lanes (internal/core): the
// hot path of the whole system. All methods are nil-receiver-safe so an
// uninstrumented engine pays one pointer comparison per commit.
type Engine struct {
	Reads         Counter   // fast-path read-only submissions
	Admitted      Counter   // committed write transactions
	CASRetries    Counter   // snapshot publications that lost the CAS race
	CrossLane     Counter   // admissions that locked more than one lane
	CommitLatency Histogram // lock-acquire → snapshot-published, ns
	BatchRuns     Histogram // same-lane-set run lengths from SubmitBatch
	LaneCommits   []Counter // per-lane committed transaction counts
}

// SizeLanes allocates the per-lane counters for n lanes.
func (e *Engine) SizeLanes(n int) {
	if e != nil {
		e.LaneCommits = make([]Counter, n)
	}
}

// Read records a fast-path read-only submission.
func (e *Engine) Read() {
	if e != nil {
		e.Reads.Inc()
	}
}

// Admit records n transactions committed under the lane set ls, with the
// lock-to-publish latency d.
func (e *Engine) Admit(ls []int, n int, d time.Duration) {
	if e == nil {
		return
	}
	e.Admitted.Add(int64(n))
	e.CommitLatency.Observe(d.Nanoseconds())
	for _, lane := range ls {
		if lane >= 0 && lane < len(e.LaneCommits) {
			e.LaneCommits[lane].Add(int64(n))
		}
	}
}

// CASRetry records one lost snapshot-publication race.
func (e *Engine) CASRetry() {
	if e != nil {
		e.CASRetries.Inc()
	}
}

// CrossLaneAcq records an admission whose lane set spans >1 lane.
func (e *Engine) CrossLaneAcq() {
	if e != nil {
		e.CrossLane.Inc()
	}
}

// Run records the length of one same-lane-set run split out of a batch.
func (e *Engine) Run(n int) {
	if e != nil {
		e.BatchRuns.Observe(int64(n))
	}
}

// EngineSnapshot is the engine section of a Snapshot.
type EngineSnapshot struct {
	Reads         int64             `json:"reads"`
	Admitted      int64             `json:"admitted"`
	CASRetries    int64             `json:"cas_retries"`
	CrossLane     int64             `json:"cross_lane"`
	CommitLatency HistogramSnapshot `json:"commit_latency_ns"`
	BatchRuns     HistogramSnapshot `json:"batch_runs"`
	LaneCommits   []int64           `json:"lane_commits,omitempty"`
}

// Snapshot copies the engine metrics. Safe on nil (returns zeros).
func (e *Engine) Snapshot() EngineSnapshot {
	var s EngineSnapshot
	if e == nil {
		return s
	}
	s.Reads = e.Reads.Load()
	s.Admitted = e.Admitted.Load()
	s.CASRetries = e.CASRetries.Load()
	s.CrossLane = e.CrossLane.Load()
	s.CommitLatency = e.CommitLatency.Snapshot()
	s.BatchRuns = e.BatchRuns.Snapshot()
	if len(e.LaneCommits) > 0 {
		s.LaneCommits = make([]int64, len(e.LaneCommits))
		for i := range e.LaneCommits {
			s.LaneCommits[i] = e.LaneCommits[i].Load()
		}
	}
	return s
}

// Archive instruments the durability layer (internal/archive): group
// commit and recovery.
type Archive struct {
	Appends      Counter   // transactions appended to the log
	Bytes        Counter   // bytes written to the log (records + snapshots)
	Flushes      Counter   // group-commit window flushes
	Snapshots    Counter   // durable snapshots written
	FlushRecords Histogram // records per group-commit window (occupancy)
	FsyncLatency Histogram // fsync duration, ns
	RecoveryNS   Gauge     // duration of the last Open() replay, ns
}

// Appended records one log append of n payload bytes (non-grouped path).
func (a *Archive) Appended(bytes int) {
	if a == nil {
		return
	}
	a.Appends.Inc()
	a.Bytes.Add(int64(bytes))
}

// Buffered records one transaction entering the group-commit window.
func (a *Archive) Buffered() {
	if a != nil {
		a.Appends.Inc()
	}
}

// Flushed records one group-commit window flush of recs records and n bytes.
func (a *Archive) Flushed(recs, bytes int) {
	if a == nil {
		return
	}
	a.Flushes.Inc()
	a.FlushRecords.Observe(int64(recs))
	a.Bytes.Add(int64(bytes))
}

// Fsync records one fsync of duration d.
func (a *Archive) Fsync(d time.Duration) {
	if a != nil {
		a.FsyncLatency.Observe(d.Nanoseconds())
	}
}

// SnapshotWritten records one durable snapshot of n bytes.
func (a *Archive) SnapshotWritten(bytes int) {
	if a == nil {
		return
	}
	a.Snapshots.Inc()
	a.Bytes.Add(int64(bytes))
}

// Recovered records the duration of a completed Open() replay.
func (a *Archive) Recovered(d time.Duration) {
	if a != nil {
		a.RecoveryNS.Set(d.Nanoseconds())
	}
}

// ArchiveSnapshot is the archive section of a Snapshot.
type ArchiveSnapshot struct {
	Appends      int64             `json:"appends"`
	Bytes        int64             `json:"bytes"`
	Flushes      int64             `json:"flushes"`
	Snapshots    int64             `json:"snapshots"`
	FlushRecords HistogramSnapshot `json:"flush_records"`
	FsyncLatency HistogramSnapshot `json:"fsync_latency_ns"`
	RecoveryNS   int64             `json:"recovery_ns"`
}

// Snapshot copies the archive metrics. Safe on nil.
func (a *Archive) Snapshot() ArchiveSnapshot {
	var s ArchiveSnapshot
	if a == nil {
		return s
	}
	s.Appends = a.Appends.Load()
	s.Bytes = a.Bytes.Load()
	s.Flushes = a.Flushes.Load()
	s.Snapshots = a.Snapshots.Load()
	s.FlushRecords = a.FlushRecords.Snapshot()
	s.FsyncLatency = a.FsyncLatency.Snapshot()
	s.RecoveryNS = a.RecoveryNS.Load()
	return s
}

// Session instruments the statement batcher (internal/session).
type Session struct {
	Statements Counter   // statements submitted through sessions
	Flushes    Counter   // adaptive-batch flushes
	FlushDepth Histogram // statements per flush (pipeline depth seen)
}

// Flush records one batch flush of n statements.
func (s *Session) Flush(n int) {
	if s == nil {
		return
	}
	s.Statements.Add(int64(n))
	s.Flushes.Inc()
	s.FlushDepth.Observe(int64(n))
}

// SessionSnapshot is the session section of a Snapshot.
type SessionSnapshot struct {
	Statements int64             `json:"statements"`
	Flushes    int64             `json:"flushes"`
	FlushDepth HistogramSnapshot `json:"flush_depth"`
}

// Snapshot copies the session metrics. Safe on nil.
func (s *Session) Snapshot() SessionSnapshot {
	var out SessionSnapshot
	if s == nil {
		return out
	}
	out.Statements = s.Statements.Load()
	out.Flushes = s.Flushes.Load()
	out.FlushDepth = s.FlushDepth.Snapshot()
	return out
}

// Server instruments the wire front-end (internal/server): connections,
// per-frame-type request counts, and response latency by frame type
// (admission → response bytes handed to the writer).
type Server struct {
	ConnsTotal     Counter // connections accepted over the server's life
	Conns          Gauge   // connections open now
	Execs          Counter
	Batches        Counter
	Forwards       Counter
	Subscribes     Counter
	StatsReqs      Counter
	Prepares       Counter // FramePrepare registrations
	PreparedExecs  Counter // statements arriving by id/hash (ExecPrepared, BatchPrepared, ForwardPrepared)
	UnknownStmts   Counter // stale statement ids answered with ErrUnknownStmt
	ReqPerConn     Histogram // requests served per connection, at close
	LatencyExec    Histogram // FrameExec response latency, ns
	LatencyBatch   Histogram // FrameBatch response latency, ns
	LatencyForward Histogram // FrameForward response latency, ns
}

// ServerSnapshot is the server section of a Snapshot.
type ServerSnapshot struct {
	ConnsTotal     int64             `json:"conns_total"`
	Conns          int64             `json:"conns"`
	Execs          int64             `json:"execs"`
	Batches        int64             `json:"batches"`
	Forwards       int64             `json:"forwards"`
	Subscribes     int64             `json:"subscribes"`
	StatsReqs      int64             `json:"stats_reqs"`
	Prepares       int64             `json:"prepares"`
	PreparedExecs  int64             `json:"prepared_execs"`
	UnknownStmts   int64             `json:"unknown_stmts"`
	ReqPerConn     HistogramSnapshot `json:"req_per_conn"`
	LatencyExec    HistogramSnapshot `json:"latency_exec_ns"`
	LatencyBatch   HistogramSnapshot `json:"latency_batch_ns"`
	LatencyForward HistogramSnapshot `json:"latency_forward_ns"`
}

// Snapshot copies the server metrics. Safe on nil.
func (m *Server) Snapshot() ServerSnapshot {
	var s ServerSnapshot
	if m == nil {
		return s
	}
	s.ConnsTotal = m.ConnsTotal.Load()
	s.Conns = m.Conns.Load()
	s.Execs = m.Execs.Load()
	s.Batches = m.Batches.Load()
	s.Forwards = m.Forwards.Load()
	s.Subscribes = m.Subscribes.Load()
	s.StatsReqs = m.StatsReqs.Load()
	s.Prepares = m.Prepares.Load()
	s.PreparedExecs = m.PreparedExecs.Load()
	s.UnknownStmts = m.UnknownStmts.Load()
	s.ReqPerConn = m.ReqPerConn.Snapshot()
	s.LatencyExec = m.LatencyExec.Snapshot()
	s.LatencyBatch = m.LatencyBatch.Snapshot()
	s.LatencyForward = m.LatencyForward.Snapshot()
	return s
}

// Cluster instruments a cluster node's routing layer (internal/cluster).
type Cluster struct {
	Forwards     Counter // forward calls sent to peers
	ForwardStmts Counter // statements carried by those forwards
	Redirects    Counter // redirects received from peers

	// Failover instrumentation (zero without a FailoverConfig).
	Promotions        Counter   // slots this node promoted itself into
	FencingRejections Counter   // forwards refused for carrying a stale epoch
	HeartbeatRTT      Histogram // heartbeat round-trip time, per ack
}

// Forwarded records one forward call carrying n statements.
func (c *Cluster) Forwarded(n int) {
	if c == nil {
		return
	}
	c.Forwards.Inc()
	c.ForwardStmts.Add(int64(n))
}

// Redirected records one redirect received.
func (c *Cluster) Redirected() {
	if c != nil {
		c.Redirects.Inc()
	}
}

// ClusterSnapshot is the cluster section of a Snapshot.
type ClusterSnapshot struct {
	Forwards     int64 `json:"forwards"`
	ForwardStmts int64 `json:"forward_stmts"`
	Redirects    int64 `json:"redirects"`

	// Failover state (present only with a FailoverConfig): per-slot epochs
	// and serving owners as this node believes them, plus promotion and
	// fencing counters and the heartbeat round-trip histogram.
	Promotions        int64             `json:"promotions,omitempty"`
	FencingRejections int64             `json:"fencing_rejections,omitempty"`
	Epochs            []uint64          `json:"epochs,omitempty"`
	Owners            []int             `json:"owners,omitempty"`
	HeartbeatRTT      HistogramSnapshot `json:"heartbeat_rtt_ns"`
}

// Snapshot copies the cluster metrics. Safe on nil. The failover vectors
// (Epochs, Owners) are stamped by the node, which owns that state.
func (c *Cluster) Snapshot() ClusterSnapshot {
	var s ClusterSnapshot
	if c == nil {
		return s
	}
	s.Forwards = c.Forwards.Load()
	s.ForwardStmts = c.ForwardStmts.Load()
	s.Redirects = c.Redirects.Load()
	s.Promotions = c.Promotions.Load()
	s.FencingRejections = c.FencingRejections.Load()
	s.HeartbeatRTT = c.HeartbeatRTT.Snapshot()
	return s
}

// PeerSnapshot describes one remote peer as seen from this node: outbound
// forwarding and the inbound replication stream mirrored from it.
type PeerSnapshot struct {
	Peer int    `json:"peer"`
	Addr string `json:"addr"`
	// ForwardFrames counts forward frames sent to this peer; Dials counts
	// (re)connects of the forwarding connection.
	ForwardFrames int64 `json:"forward_frames"`
	Dials         int64 `json:"dials"`
	// ReplicaApplied is the last primary sequence applied to the local
	// mirror of this peer; primary seq − ReplicaApplied is the replication
	// lag. ReplicaRecords counts log records applied; ReplicaConnects
	// counts subscription (re)connects.
	ReplicaApplied  int64 `json:"replica_applied"`
	ReplicaRecords  int64 `json:"replica_records"`
	ReplicaConnects int64 `json:"replica_connects"`
	// HeartbeatAgeMs is how long ago this peer's last heartbeat (or ack)
	// arrived, in milliseconds; -1 when no heartbeat has ever been seen
	// (or failover is off). Ages beyond the lease mean the peer is
	// presumed dead.
	HeartbeatAgeMs float64 `json:"heartbeat_age_ms"`
	// AppliedLag is how many of THIS node's committed records the peer has
	// not yet applied to its mirror (per the peer's last heartbeat): the
	// data this node would strand if it died right now, and therefore the
	// peer's fitness as a promotion winner. -1 when unknown.
	AppliedLag int64 `json:"applied_lag"`
}

// SharingSnapshot is the structure-sharing evidence from the functional
// representation (eval.Stats): the paper's Section 3 argument in numbers.
type SharingSnapshot struct {
	NodesCreated int64 `json:"nodes_created"`
	NodesShared  int64 `json:"nodes_shared"`
	NodesVisited int64 `json:"nodes_visited"`
}

// Snapshot is one node's full metrics state: every instrumented layer,
// plain data, JSON-encodable. Sections a node does not run (archive on a
// memory-only store, cluster on a single node) are nil pointers and omit
// themselves from JSON.
type Snapshot struct {
	Origin  string `json:"origin,omitempty"`
	Version int64  `json:"version"`
	Lanes   int    `json:"lanes"`
	Durable bool   `json:"durable"`

	Engine  EngineSnapshot  `json:"engine"`
	Session SessionSnapshot `json:"session"`
	Sharing SharingSnapshot `json:"sharing"`

	Archive *ArchiveSnapshot `json:"archive,omitempty"`
	Server  *ServerSnapshot  `json:"server,omitempty"`
	Cluster *ClusterSnapshot `json:"cluster,omitempty"`
	Peers   []PeerSnapshot   `json:"peers,omitempty"`
	Trace   *TraceSnapshot   `json:"trace,omitempty"`
	Runtime *RuntimeSnapshot `json:"runtime,omitempty"`
}

// TraceSnapshot is the request-trace recorder's own accounting, present
// when tracing is enabled: how many traces were opened, how many the
// head sampler admitted to the ring, how many the slow reservoir kept,
// and how many arrived as a propagated wire context from another node.
type TraceSnapshot struct {
	Started    int64 `json:"started"`
	Sampled    int64 `json:"sampled"`
	Slow       int64 `json:"slow"`
	Propagated int64 `json:"propagated"`
}

// fmtDur renders a nanosecond metric as a rounded duration.
func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond / 10).String()
}

// fmtLatency renders a latency histogram's headline numbers.
func fmtLatency(h HistogramSnapshot) string {
	return fmt.Sprintf("n=%d p50=%s p99=%s p999=%s mean=%s",
		h.Count, fmtDur(h.P50), fmtDur(h.P99), fmtDur(h.P999), fmtDur(int64(h.Mean())))
}

// fmtSizes renders a size/count histogram's headline numbers.
func fmtSizes(h HistogramSnapshot) string {
	return fmt.Sprintf("n=%d p50=%d p99=%d max≤%d mean=%.1f",
		h.Count, h.P50, h.P99, upperBound(h), h.Mean())
}

func upperBound(h HistogramSnapshot) int64 {
	_, hi := bucketBounds(len(h.Buckets) - 1)
	return hi
}

// Format renders the snapshot as the human-readable report fdbrepl's
// .stats prints.
func (s Snapshot) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "origin=%s version=%d lanes=%d durable=%v\n", s.Origin, s.Version, s.Lanes, s.Durable)
	fmt.Fprintf(&b, "engine: reads=%d admitted=%d cas_retries=%d cross_lane=%d\n",
		s.Engine.Reads, s.Engine.Admitted, s.Engine.CASRetries, s.Engine.CrossLane)
	fmt.Fprintf(&b, "  commit latency: %s\n", fmtLatency(s.Engine.CommitLatency))
	if s.Engine.BatchRuns.Count > 0 {
		fmt.Fprintf(&b, "  batch runs:     %s\n", fmtSizes(s.Engine.BatchRuns))
	}
	if n := len(s.Engine.LaneCommits); n > 0 {
		// Lanes sorted by traffic, busiest first, capped to keep the
		// report one screen at 64 lanes.
		type laneCount struct {
			lane    int
			commits int64
		}
		lanes := make([]laneCount, 0, n)
		for i, c := range s.Engine.LaneCommits {
			if c > 0 {
				lanes = append(lanes, laneCount{i, c})
			}
		}
		sort.Slice(lanes, func(i, j int) bool { return lanes[i].commits > lanes[j].commits })
		fmt.Fprintf(&b, "  lanes active:   %d/%d", len(lanes), n)
		for i, lc := range lanes {
			if i == 8 {
				fmt.Fprintf(&b, " …")
				break
			}
			fmt.Fprintf(&b, " L%d:%d", lc.lane, lc.commits)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "session: statements=%d flushes=%d  depth: %s\n",
		s.Session.Statements, s.Session.Flushes, fmtSizes(s.Session.FlushDepth))
	fmt.Fprintf(&b, "sharing: created=%d shared=%d visited=%d\n",
		s.Sharing.NodesCreated, s.Sharing.NodesShared, s.Sharing.NodesVisited)
	if a := s.Archive; a != nil {
		fmt.Fprintf(&b, "archive: appends=%d bytes=%d flushes=%d snapshots=%d recovery=%s\n",
			a.Appends, a.Bytes, a.Flushes, a.Snapshots, fmtDur(a.RecoveryNS))
		if a.FsyncLatency.Count > 0 {
			fmt.Fprintf(&b, "  fsync latency:  %s\n", fmtLatency(a.FsyncLatency))
		}
		if a.FlushRecords.Count > 0 {
			fmt.Fprintf(&b, "  window records: %s\n", fmtSizes(a.FlushRecords))
		}
	}
	if sv := s.Server; sv != nil {
		fmt.Fprintf(&b, "server: conns=%d/%d execs=%d batches=%d forwards=%d subs=%d stats=%d\n",
			sv.Conns, sv.ConnsTotal, sv.Execs, sv.Batches, sv.Forwards, sv.Subscribes, sv.StatsReqs)
		if sv.Prepares > 0 || sv.PreparedExecs > 0 || sv.UnknownStmts > 0 {
			fmt.Fprintf(&b, "  prepared: registered=%d execs=%d unknown_stmts=%d\n",
				sv.Prepares, sv.PreparedExecs, sv.UnknownStmts)
		}
		if sv.LatencyExec.Count > 0 {
			fmt.Fprintf(&b, "  exec latency:    %s\n", fmtLatency(sv.LatencyExec))
		}
		if sv.LatencyBatch.Count > 0 {
			fmt.Fprintf(&b, "  batch latency:   %s\n", fmtLatency(sv.LatencyBatch))
		}
		if sv.LatencyForward.Count > 0 {
			fmt.Fprintf(&b, "  forward latency: %s\n", fmtLatency(sv.LatencyForward))
		}
	}
	if c := s.Cluster; c != nil {
		fmt.Fprintf(&b, "cluster: forwards=%d fwd_stmts=%d redirects=%d\n",
			c.Forwards, c.ForwardStmts, c.Redirects)
		if len(c.Epochs) > 0 {
			fmt.Fprintf(&b, "  failover: epochs=%v owners=%v promotions=%d fencing_rejections=%d\n",
				c.Epochs, c.Owners, c.Promotions, c.FencingRejections)
			if c.HeartbeatRTT.Count > 0 {
				fmt.Fprintf(&b, "  heartbeat rtt:   %s\n", fmtLatency(c.HeartbeatRTT))
			}
		}
	}
	for _, p := range s.Peers {
		fmt.Fprintf(&b, "  peer %d %s: fwd_frames=%d dials=%d replica_applied=%d records=%d connects=%d",
			p.Peer, p.Addr, p.ForwardFrames, p.Dials, p.ReplicaApplied, p.ReplicaRecords, p.ReplicaConnects)
		if p.HeartbeatAgeMs >= 0 {
			fmt.Fprintf(&b, " hb_age=%.0fms lag=%d", p.HeartbeatAgeMs, p.AppliedLag)
		}
		fmt.Fprintf(&b, "\n")
	}
	if t := s.Trace; t != nil {
		fmt.Fprintf(&b, "trace: started=%d sampled=%d slow=%d propagated=%d\n",
			t.Started, t.Sampled, t.Slow, t.Propagated)
	}
	if rt := s.Runtime; rt != nil {
		fmt.Fprintf(&b, "runtime: heap=%d goroutines=%d gc=%d pause=%s mallocs=%d\n",
			rt.HeapAllocBytes, rt.Goroutines, rt.NumGC, fmtDur(int64(rt.GCPauseTotalNs)), rt.Mallocs)
	}
	return b.String()
}
