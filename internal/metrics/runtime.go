package metrics

import "runtime"

// RuntimeSnapshot is the Go runtime's side of a metrics snapshot: the
// heap and GC numbers an allocation pass is judged by. Scraped from
// runtime.MemStats at snapshot time — a stop-the-world-free read — so
// every exposition surface (MetricsSnapshot, the wire Stats frame,
// /debug/stats and /debug/vars) carries the same fields fdbload's report
// aggregates.
type RuntimeSnapshot struct {
	// HeapAllocBytes is the live heap at snapshot time.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// TotalAllocBytes is cumulative bytes allocated since process start.
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	// Mallocs is the cumulative count of heap objects allocated; the
	// delta between two snapshots divided by ops is allocs-per-op.
	Mallocs uint64 `json:"mallocs"`
	// NumGC is the number of completed GC cycles.
	NumGC uint32 `json:"num_gc"`
	// GCPauseTotalNs is the cumulative stop-the-world pause time.
	GCPauseTotalNs uint64 `json:"gc_pause_total_ns"`
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
}

// ReadRuntime captures the current runtime numbers.
func ReadRuntime() RuntimeSnapshot {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeSnapshot{
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		Mallocs:         ms.Mallocs,
		NumGC:           ms.NumGC,
		GCPauseTotalNs:  ms.PauseTotalNs,
		Goroutines:      runtime.NumGoroutine(),
	}
}
