// Package metrics is the instrumentation core of the runtime: atomic
// counters and gauges, and fixed-bucket log-scaled latency histograms
// with quantile extraction, cheap enough to live on the admission and
// durability hot paths.
//
// The paper's evaluation (Section 4) measures the simulated system —
// ply-width concurrency profiles over the Rediflow interpreter — and
// internal/trace reproduces that for in-process runs. This package gives
// the *production* stack (lanes, group commit, wire server, cluster) the
// same measurability at runtime: every layer owns a small struct of these
// primitives (layers.go), funcdb.Store and cluster nodes aggregate them
// into one Snapshot, and the wire's Stats frame ships the snapshot to any
// client.
//
// Two cost disciplines, both load-bearing:
//
//   - zero-cost when absent: every recording method is nil-receiver-safe,
//     so an uninstrumented engine pays exactly one pointer comparison —
//     no allocation, no atomics, no clock reads;
//   - ~free when present: recording is one or two uncontended atomic adds
//     (a histogram observation is bucket-index arithmetic on bits.Len64
//     plus two adds). No locks, no maps, no allocation anywhere on a
//     record path.
package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonic atomic counter. The zero value is ready; a nil
// *Counter ignores recordings and loads as 0.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. The zero value is ready; a nil
// *Gauge ignores recordings and loads as 0.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (connection counts up and down).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// NumBuckets is the histogram's fixed bucket count: one bucket per
// power of two. Bucket 0 holds exactly 0; bucket b (b >= 1) holds values
// in [2^(b-1), 2^b - 1]. 64 buckets cover every non-negative int64, so
// an observation can never fall off the end — nanosecond latencies, batch
// sizes and byte counts all fit the same shape.
const NumBuckets = 64

// Histogram is a fixed-bucket, power-of-two log-scaled histogram. The
// zero value is ready; a nil *Histogram ignores observations. Recording
// is lock-free: a bucket index from bits.Len64 plus two atomic adds.
// Count and sum are recorded independently of the buckets, so a snapshot
// taken during concurrent recording may be off by in-flight observations
// — fine for monitoring, which is the contract.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps a value to its bucket index. Negative values (a clock
// stepping backwards) clamp to bucket 0 rather than corrupting an index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v)) // 1..63 for v >= 1
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Since records the elapsed time from start, in nanoseconds.
func (h *Histogram) Since(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot copies the histogram into its plain-data form, with the
// standard quantiles precomputed.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	top := -1
	var buckets [NumBuckets]int64
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			buckets[i] = n
			top = i
		}
	}
	if top >= 0 {
		s.Buckets = append([]int64(nil), buckets[:top+1]...)
	}
	s.P50 = s.Quantile(0.50)
	s.P99 = s.Quantile(0.99)
	s.P999 = s.Quantile(0.999)
	return s
}

// HistogramSnapshot is a histogram's state at one instant: plain data,
// JSON-encodable, comparable across nodes. Buckets are trimmed after the
// highest non-empty one (bucket b >= 1 covers [2^(b-1), 2^b - 1]).
type HistogramSnapshot struct {
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
	P50     int64   `json:"p50"`
	P99     int64   `json:"p99"`
	P999    int64   `json:"p999"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the covering bucket, returning 0 for an empty histogram. The
// estimate is bounded by the bucket's range, so it is never more than 2x
// off the true value — the precision log-scaled buckets buy.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for b, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= rank {
			lo, hi := bucketBounds(b)
			frac := (rank - cum) / float64(n)
			return lo + int64(frac*float64(hi-lo))
		}
		cum = next
	}
	// Rounding left the rank past the last bucket: its upper bound.
	_, hi := bucketBounds(len(s.Buckets) - 1)
	return hi
}

// Mean returns the average observed value, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// bucketBounds returns the inclusive value range bucket b covers.
func bucketBounds(b int) (lo, hi int64) {
	if b <= 0 {
		return 0, 0
	}
	lo = int64(1) << (b - 1)
	if b >= 63 {
		// Bucket 63 absorbs everything Len64 maps at or past it.
		return lo, 1<<63 - 1
	}
	return lo, int64(1)<<b - 1
}
