// Package lockdb is the conventional baseline the paper argues against:
// a mutable, in-place database protected by explicit locks.
//
// Section 2.3: "Conventional methods for accomplishing concurrent updates
// to a database required the systems programmer to program locks,
// semaphores, etc. In contrast, the functional approach to updating ...
// performs all necessary synchronization implicitly."
//
// The implementation is deliberately the textbook design: one RWMutex per
// relation, strict two-phase locking with ordered acquisition (so no
// deadlock), binary-searched in-place sorted slices. It exists so Ablation
// C can compare wall-clock throughput and programming model against the
// functional engine under identical workloads. Note what it cannot do that
// the functional engine gets for free: no version history, no time-travel
// reads, readers block writers on the same relation.
package lockdb

import (
	"fmt"
	"sort"
	"sync"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

// lockedRelation is a mutable sorted slice of tuples under a lock.
type lockedRelation struct {
	mu     sync.RWMutex
	tuples []value.Tuple
}

// find returns the index of key, or insertion position and false.
func (r *lockedRelation) find(key value.Item) (int, bool) {
	i := sort.Search(len(r.tuples), func(i int) bool {
		return r.tuples[i].Key().Compare(key) >= 0
	})
	if i < len(r.tuples) && r.tuples[i].Key().Equal(key) {
		return i, true
	}
	return i, false
}

// DB is a lock-based mutable database.
type DB struct {
	mu   sync.RWMutex // guards the directory
	rels map[string]*lockedRelation
}

// New builds a lock-based database with the given relation names.
func New(names ...string) *DB {
	db := &DB{rels: make(map[string]*lockedRelation, len(names))}
	for _, n := range names {
		db.rels[n] = &lockedRelation{}
	}
	return db
}

// FromDatabase copies the contents of a functional database version into a
// fresh lock-based database, so both baselines start from identical state.
func FromDatabase(src *database.Database) *DB {
	db := &DB{rels: map[string]*lockedRelation{}}
	for _, name := range src.RelationNames() {
		rel, _ := src.RelationFast(name)
		db.rels[name] = &lockedRelation{tuples: rel.Tuples()}
	}
	return db
}

// relation resolves a relation under the directory lock.
func (db *DB) relation(name string) (*lockedRelation, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.rels[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", database.ErrNoRelation, name)
	}
	return r, nil
}

// Exec runs one transaction with strict two-phase locking: all locks are
// acquired (in name order, writers exclusive) before any data is touched,
// and released when the operation completes.
func (db *DB) Exec(tx core.Transaction) core.Response {
	resp := core.Response{Origin: tx.Origin, Seq: tx.Seq, Kind: tx.Kind}
	if err := tx.Validate(); err != nil {
		resp.Err = err
		return resp
	}
	switch tx.Kind {
	case core.KindCreate:
		db.mu.Lock()
		defer db.mu.Unlock()
		if _, exists := db.rels[tx.Rel]; exists {
			resp.Err = fmt.Errorf("%w: %q", database.ErrRelationExists, tx.Rel)
			return resp
		}
		db.rels[tx.Rel] = &lockedRelation{}
		return resp
	case core.KindCustom:
		resp.Err = fmt.Errorf("lockdb: custom transactions are not supported by the baseline")
		return resp
	}

	r, err := db.relation(tx.Rel)
	if err != nil {
		resp.Err = err
		return resp
	}
	if tx.IsReadOnly() {
		r.mu.RLock()
		defer r.mu.RUnlock()
	} else {
		r.mu.Lock()
		defer r.mu.Unlock()
	}

	switch tx.Kind {
	case core.KindInsert:
		i, found := r.find(tx.Tuple.Key())
		if found {
			r.tuples[i] = tx.Tuple
		} else {
			r.tuples = append(r.tuples, value.Tuple{})
			copy(r.tuples[i+1:], r.tuples[i:])
			r.tuples[i] = tx.Tuple
		}
		resp.Tuple = tx.Tuple
	case core.KindDelete:
		i, found := r.find(tx.Key)
		resp.Found = found
		if found {
			r.tuples = append(r.tuples[:i], r.tuples[i+1:]...)
		}
	case core.KindFind:
		i, found := r.find(tx.Key)
		resp.Found = found
		if found {
			resp.Tuple = r.tuples[i]
		}
	case core.KindScan:
		resp.Tuples = append([]value.Tuple(nil), r.tuples...)
		resp.Count = len(resp.Tuples)
	case core.KindCount:
		resp.Count = len(r.tuples)
	case core.KindRange:
		lo, _ := r.find(tx.Lo)
		for i := lo; i < len(r.tuples) && r.tuples[i].Key().Compare(tx.Hi) <= 0; i++ {
			resp.Tuples = append(resp.Tuples, r.tuples[i])
		}
		resp.Count = len(resp.Tuples)
	}
	return resp
}

// Snapshot copies the current contents into a functional database value
// for equivalence checks. It locks every relation (shared) for the copy —
// the baseline has no cheap consistent snapshot, unlike the version stream.
func (db *DB) Snapshot() *database.Database {
	db.mu.RLock()
	names := make([]string, 0, len(db.rels))
	for n := range db.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	data := map[string][]value.Tuple{}
	for _, n := range names {
		r := db.rels[n]
		r.mu.RLock()
		data[n] = append([]value.Tuple(nil), r.tuples...)
		r.mu.RUnlock()
	}
	db.mu.RUnlock()
	return database.FromData(relation.RepList, names, data)
}
