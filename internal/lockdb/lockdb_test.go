package lockdb

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/relation"
	"funcdb/internal/value"
)

func tup(k int64) value.Tuple { return value.NewTuple(value.Int(k), value.Str("v")) }

func TestBasicOps(t *testing.T) {
	db := New("R")
	if resp := db.Exec(core.Insert("R", tup(2))); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := db.Exec(core.Insert("R", tup(1))); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := db.Exec(core.Find("R", value.Int(1))); !resp.Found {
		t.Error("find failed")
	}
	if resp := db.Exec(core.Count("R")); resp.Count != 2 {
		t.Errorf("count = %d", resp.Count)
	}
	if resp := db.Exec(core.Scan("R")); len(resp.Tuples) != 2 || !resp.Tuples[0].Key().Equal(value.Int(1)) {
		t.Errorf("scan = %v", resp.Tuples)
	}
	if resp := db.Exec(core.Delete("R", value.Int(1))); !resp.Found {
		t.Error("delete missed")
	}
	if resp := db.Exec(core.Find("R", value.Int(1))); resp.Found {
		t.Error("find after delete")
	}
	if resp := db.Exec(core.Range("R", value.Int(0), value.Int(5))); resp.Count != 1 {
		t.Errorf("range = %d", resp.Count)
	}
}

func TestUpsert(t *testing.T) {
	db := New("R")
	db.Exec(core.Insert("R", value.NewTuple(value.Int(1), value.Str("old"))))
	db.Exec(core.Insert("R", value.NewTuple(value.Int(1), value.Str("new"))))
	resp := db.Exec(core.Find("R", value.Int(1)))
	if resp.Tuple.Field(1).AsString() != "new" {
		t.Errorf("tuple = %v", resp.Tuple)
	}
	if db.Exec(core.Count("R")).Count != 1 {
		t.Error("upsert duplicated")
	}
}

func TestErrors(t *testing.T) {
	db := New("R")
	if resp := db.Exec(core.Find("X", value.Int(1))); !errors.Is(resp.Err, database.ErrNoRelation) {
		t.Errorf("err = %v", resp.Err)
	}
	if resp := db.Exec(core.Transaction{Kind: core.KindInsert}); resp.Err == nil {
		t.Error("invalid transaction accepted")
	}
	if resp := db.Exec(core.Custom(nil, nil, nil)); resp.Err == nil {
		t.Error("custom transaction accepted by baseline")
	}
	if resp := db.Exec(core.Create("R", relation.RepList)); !errors.Is(resp.Err, database.ErrRelationExists) {
		t.Errorf("duplicate create err = %v", resp.Err)
	}
	if resp := db.Exec(core.Create("S", relation.RepList)); resp.Err != nil {
		t.Error(resp.Err)
	}
}

func TestFromDatabaseAndSnapshot(t *testing.T) {
	src := database.FromData(relation.RepList, []string{"R", "S"}, map[string][]value.Tuple{
		"R": {tup(1), tup(2)},
		"S": {tup(9)},
	})
	db := FromDatabase(src)
	snap := db.Snapshot()
	if !snap.Equal(src) {
		t.Error("snapshot differs from source")
	}
	db.Exec(core.Insert("R", tup(3)))
	if snap2 := db.Snapshot(); snap2.TotalTuples() != 4 {
		t.Errorf("snapshot tuples = %d", snap2.TotalTuples())
	}
	// Unlike the functional version stream, the first snapshot was a copy:
	// it must NOT see the later write (we made it a copy precisely because
	// the baseline cannot share structure safely).
	if snap.TotalTuples() != 3 {
		t.Error("old snapshot mutated")
	}
}

func TestMatchesFunctionalEngineSequentially(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		init := database.New(relation.RepList, "R", "S")
		lk := FromDatabase(init)
		var txns []core.Transaction
		for i := 0; i < 60; i++ {
			rel := []string{"R", "S"}[r.Intn(2)]
			k := int64(r.Intn(12))
			switch r.Intn(3) {
			case 0:
				txns = append(txns, core.Insert(rel, tup(k)))
			case 1:
				txns = append(txns, core.Delete(rel, value.Int(k)))
			default:
				txns = append(txns, core.Find(rel, value.Int(k)))
			}
		}
		seqResp, seqFinal := core.ApplySequential(init, txns)
		for i, tx := range txns {
			resp := lk.Exec(tx)
			if resp.Found != seqResp[i].Found {
				return false
			}
		}
		return lk.Snapshot().Equal(seqFinal)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentMixedLoadIsSafe(t *testing.T) {
	// Run with -race: concurrent readers and writers over shared relations.
	db := New("R", "S")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				rel := []string{"R", "S"}[r.Intn(2)]
				k := int64(r.Intn(50))
				switch r.Intn(3) {
				case 0:
					db.Exec(core.Insert(rel, tup(k)))
				case 1:
					db.Exec(core.Delete(rel, value.Int(k)))
				default:
					db.Exec(core.Find(rel, value.Int(k)))
				}
			}
		}(w)
	}
	wg.Wait()
	snap := db.Snapshot()
	for _, name := range snap.RelationNames() {
		rel, _ := snap.RelationFast(name)
		tuples := rel.Tuples()
		for i := 1; i < len(tuples); i++ {
			if tuples[i-1].Key().Compare(tuples[i].Key()) >= 0 {
				t.Fatalf("relation %s out of order after concurrent load", name)
			}
		}
	}
}
