package value

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestItemRoundTrip(t *testing.T) {
	items := []Item{
		Int(0), Int(1), Int(-1), Int(1 << 40), Int(-(1 << 40)),
		Str(""), Str("a"), Str("hello world"), Str("quote\"backslash\\"),
		Str(string([]byte{0, 1, 2, 255})),
	}
	for _, it := range items {
		buf, err := AppendItem(nil, it)
		if err != nil {
			t.Fatalf("%v: %v", it, err)
		}
		got, rest, err := DecodeItem(buf)
		if err != nil {
			t.Fatalf("%v: %v", it, err)
		}
		if len(rest) != 0 {
			t.Errorf("%v: %d trailing bytes", it, len(rest))
		}
		if !got.Equal(it) {
			t.Errorf("round trip %v -> %v", it, got)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	for _, s := range []string{"", "a", "hello world", string([]byte{0, 255, 1})} {
		buf := AppendString([]byte{0xEE}, s)
		got, rest, err := DecodeString(buf[1:])
		if err != nil || got != s || len(rest) != 0 {
			t.Errorf("round trip %q -> %q (rest %d, err %v)", s, got, len(rest), err)
		}
	}
	if _, _, err := DecodeString(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("nil buffer: %v", err)
	}
	if _, _, err := DecodeString([]byte{5, 'a'}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short buffer: %v", err)
	}
}

func TestInvalidItemsNotEncodable(t *testing.T) {
	for _, it := range []Item{{}, MinKey(), MaxKey()} {
		if _, err := AppendItem(nil, it); err == nil {
			t.Errorf("%v encoded", it)
		}
	}
}

func TestTupleRoundTrip(t *testing.T) {
	tuples := []Tuple{
		NewTuple(),
		NewTuple(Int(1)),
		NewTuple(Int(1), Str("widget"), Int(-3)),
	}
	for _, tu := range tuples {
		buf, err := AppendTuple(nil, tu)
		if err != nil {
			t.Fatal(err)
		}
		got, rest, err := DecodeTuple(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(rest) != 0 || !got.Equal(tu) {
			t.Errorf("round trip %v -> %v (rest %d)", tu, got, len(rest))
		}
	}
}

func TestTupleStreamConcatenates(t *testing.T) {
	a := NewTuple(Int(1), Str("x"))
	b := NewTuple(Int(2))
	var buf []byte
	var err error
	if buf, err = AppendTuple(buf, a); err != nil {
		t.Fatal(err)
	}
	if buf, err = AppendTuple(buf, b); err != nil {
		t.Fatal(err)
	}
	gotA, rest, err := DecodeTuple(buf)
	if err != nil || !gotA.Equal(a) {
		t.Fatalf("first: %v %v", gotA, err)
	}
	gotB, rest, err := DecodeTuple(rest)
	if err != nil || !gotB.Equal(b) || len(rest) != 0 {
		t.Fatalf("second: %v %v rest=%d", gotB, err, len(rest))
	}
}

func TestEncodeDecodeTuples(t *testing.T) {
	tuples := []Tuple{NewTuple(Int(1)), NewTuple(Str("a"), Str("b"))}
	buf, err := EncodeTuples(tuples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTuples(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[0].Equal(tuples[0]) || !got[1].Equal(tuples[1]) {
		t.Errorf("got %v", got)
	}
	if _, err := DecodeTuples(append(buf, 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes accepted: %v", err)
	}
}

func TestDecodeCorruptInputs(t *testing.T) {
	cases := [][]byte{
		{},                    // empty
		{99},                  // unknown kind
		{byte(KindInt)},       // missing varint
		{byte(KindString), 5}, // length beyond buffer
		{byte(KindString), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, // unterminated uvarint
	}
	for i, buf := range cases {
		if _, _, err := DecodeItem(buf); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	if _, _, err := DecodeTuple(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tuple from nil: %v", err)
	}
	if _, err := DecodeTuples(nil); !errors.Is(err, ErrCorrupt) {
		t.Errorf("tuples from nil: %v", err)
	}
	// Huge declared arity must fail fast, not allocate.
	if _, _, err := DecodeTuple([]byte{0xFF, 0xFF, 0xFF, 0x7F}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("huge arity: %v", err)
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(10)
		tuples := make([]Tuple, 0, n)
		for i := 0; i < n; i++ {
			tuples = append(tuples, randomTuple(r))
		}
		buf, err := EncodeTuples(tuples)
		if err != nil {
			return false
		}
		got, err := DecodeTuples(buf)
		if err != nil || len(got) != len(tuples) {
			return false
		}
		for i := range got {
			if !got[i].Equal(tuples[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDecodeNeverPanics(t *testing.T) {
	f := func(buf []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("panic on %v", buf)
			}
		}()
		_, _, _ = DecodeItem(buf)
		_, _, _ = DecodeTuple(buf)
		_, _ = DecodeTuples(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
