package value

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestItemConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name     string
		item     Item
		kind     Kind
		asInt    int64
		asStr    string
		rendered string
	}{
		{"positive int", Int(42), KindInt, 42, "", "42"},
		{"negative int", Int(-7), KindInt, -7, "", "-7"},
		{"zero int", Int(0), KindInt, 0, "", "0"},
		{"plain string", Str("abc"), KindString, 0, "abc", `"abc"`},
		{"empty string", Str(""), KindString, 0, "", `""`},
		{"string needing quoting", Str(`a"b`), KindString, 0, `a"b`, `"a\"b"`},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.item.Kind(); got != tc.kind {
				t.Errorf("Kind() = %v, want %v", got, tc.kind)
			}
			if got := tc.item.AsInt(); got != tc.asInt {
				t.Errorf("AsInt() = %d, want %d", got, tc.asInt)
			}
			if got := tc.item.AsString(); got != tc.asStr {
				t.Errorf("AsString() = %q, want %q", got, tc.asStr)
			}
			if got := tc.item.String(); got != tc.rendered {
				t.Errorf("String() = %q, want %q", got, tc.rendered)
			}
			if !tc.item.IsValid() {
				t.Error("IsValid() = false, want true")
			}
		})
	}
}

func TestZeroItemIsInvalid(t *testing.T) {
	var it Item
	if it.IsValid() {
		t.Error("zero Item reported valid")
	}
	if got := it.String(); got != "<invalid item>" {
		t.Errorf("zero Item String() = %q", got)
	}
}

func TestItemCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Item
		want int
	}{
		{"int less", Int(1), Int(2), -1},
		{"int greater", Int(5), Int(2), 1},
		{"int equal", Int(3), Int(3), 0},
		{"string less", Str("a"), Str("b"), -1},
		{"string greater", Str("b"), Str("a"), 1},
		{"string equal", Str("x"), Str("x"), 0},
		{"int before string", Int(999), Str(""), -1},
		{"string after int", Str(""), Int(999), 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Compare(tc.b); got != tc.want {
				t.Errorf("Compare(%v, %v) = %d, want %d", tc.a, tc.b, got, tc.want)
			}
			if got, want := tc.a.Equal(tc.b), tc.want == 0; got != want {
				t.Errorf("Equal(%v, %v) = %v, want %v", tc.a, tc.b, got, want)
			}
		})
	}
}

func TestItemCompareIsAntisymmetric(t *testing.T) {
	items := []Item{Int(-1), Int(0), Int(1), Str(""), Str("a"), Str("z")}
	for _, a := range items {
		for _, b := range items {
			if a.Compare(b) != -b.Compare(a) {
				t.Errorf("Compare(%v,%v) and Compare(%v,%v) not antisymmetric", a, b, b, a)
			}
		}
	}
}

func TestTupleBasics(t *testing.T) {
	tu := NewTuple(Int(7), Str("widget"), Int(3))
	if got := tu.Arity(); got != 3 {
		t.Fatalf("Arity() = %d, want 3", got)
	}
	if got := tu.Key(); !got.Equal(Int(7)) {
		t.Errorf("Key() = %v, want 7", got)
	}
	if got := tu.Field(1); !got.Equal(Str("widget")) {
		t.Errorf("Field(1) = %v", got)
	}
	if got := tu.String(); got != `(7, "widget", 3)` {
		t.Errorf("String() = %q", got)
	}
	if tu.IsZero() {
		t.Error("IsZero() = true for non-empty tuple")
	}
	var zero Tuple
	if !zero.IsZero() {
		t.Error("IsZero() = false for zero tuple")
	}
	if zero.Key().IsValid() {
		t.Error("zero tuple Key() should be invalid")
	}
}

func TestNewTupleCopiesInput(t *testing.T) {
	items := []Item{Int(1), Int(2)}
	tu := NewTuple(items...)
	items[0] = Int(99)
	if !tu.Field(0).Equal(Int(1)) {
		t.Error("NewTuple did not copy its input slice")
	}
	fields := tu.Fields()
	fields[1] = Int(100)
	if !tu.Field(1).Equal(Int(2)) {
		t.Error("Fields() did not return a copy")
	}
}

func TestWithField(t *testing.T) {
	orig := NewTuple(Int(1), Str("a"))
	mod := orig.WithField(1, Str("b"))
	if !orig.Field(1).Equal(Str("a")) {
		t.Error("WithField mutated the original tuple")
	}
	if !mod.Field(1).Equal(Str("b")) {
		t.Error("WithField did not set the new field")
	}
	if !mod.Field(0).Equal(Int(1)) {
		t.Error("WithField clobbered an unrelated field")
	}
}

func TestWithFieldPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WithField out of range did not panic")
		}
	}()
	NewTuple(Int(1)).WithField(5, Int(2))
}

func TestTupleCompare(t *testing.T) {
	tests := []struct {
		name string
		a, b Tuple
		want int
	}{
		{"equal", NewTuple(Int(1), Int(2)), NewTuple(Int(1), Int(2)), 0},
		{"first field decides", NewTuple(Int(1), Int(9)), NewTuple(Int(2), Int(0)), -1},
		{"second field decides", NewTuple(Int(1), Int(2)), NewTuple(Int(1), Int(3)), -1},
		{"prefix sorts first", NewTuple(Int(1)), NewTuple(Int(1), Int(0)), -1},
		{"longer sorts after", NewTuple(Int(1), Int(0)), NewTuple(Int(1)), 1},
		{"empty vs empty", NewTuple(), NewTuple(), 0},
		{"empty vs non-empty", NewTuple(), NewTuple(Int(0)), -1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.a.Compare(tc.b); got != tc.want {
				t.Errorf("Compare = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestTupleHashDistinguishes(t *testing.T) {
	a := NewTuple(Int(1), Str("x"))
	b := NewTuple(Int(1), Str("y"))
	c := NewTuple(Int(1), Str("x"))
	if a.Hash() == b.Hash() {
		t.Error("different tuples hashed equal (possible but wildly unlikely)")
	}
	if a.Hash() != c.Hash() {
		t.Error("equal tuples hashed differently")
	}
	// Kind must participate: Int(0x61) vs Str("a") encode differently.
	if NewTuple(Int(0x61)).Hash() == NewTuple(Str("a")).Hash() {
		t.Error("kind not mixed into hash")
	}
}

// randomItem produces an arbitrary Item for property tests.
func randomItem(r *rand.Rand) Item {
	if r.Intn(2) == 0 {
		return Int(int64(r.Intn(2000) - 1000))
	}
	letters := []byte("abcdefgh")
	n := r.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return Str(string(b))
}

func randomTuple(r *rand.Rand) Tuple {
	n := 1 + r.Intn(4)
	items := make([]Item, n)
	for i := range items {
		items[i] = randomItem(r)
	}
	return NewTuple(items...)
}

func TestPropertyCompareTotalOrder(t *testing.T) {
	// Compare must be a total order: antisymmetric and transitive.
	cfg := &quick.Config{MaxCount: 300}
	anti := func(seed1, seed2 int64) bool {
		a := randomTuple(rand.New(rand.NewSource(seed1)))
		b := randomTuple(rand.New(rand.NewSource(seed2)))
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(anti, cfg); err != nil {
		t.Errorf("antisymmetry violated: %v", err)
	}
	trans := func(s1, s2, s3 int64) bool {
		a := randomTuple(rand.New(rand.NewSource(s1)))
		b := randomTuple(rand.New(rand.NewSource(s2)))
		c := randomTuple(rand.New(rand.NewSource(s3)))
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 {
			return a.Compare(c) <= 0
		}
		return true
	}
	if err := quick.Check(trans, cfg); err != nil {
		t.Errorf("transitivity violated: %v", err)
	}
}

func TestPropertyHashConsistentWithEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomTuple(r)
		b := NewTuple(a.Fields()...)
		return a.Equal(b) && a.Hash() == b.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
