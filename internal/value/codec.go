package value

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire format for items and tuples, so the data model can cross a
// real network or be spooled to the "complete archives" of Section 3.3.
//
//	item  := kind:uint8 payload
//	        KindInt:    zigzag varint
//	        KindString: uvarint length + bytes
//	tuple := uvarint arity, then that many items
//
// The format is self-delimiting: decoders return the remaining buffer, so
// streams of tuples concatenate.

// ErrCorrupt reports undecodable bytes.
var ErrCorrupt = errors.New("value: corrupt encoding")

// AppendString appends a length-prefixed string (uvarint length + bytes),
// the building block the framed archive records use for names, origins and
// query text.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeString decodes one length-prefixed string from the front of buf,
// returning it and the remaining bytes.
func DecodeString(buf []byte) (string, []byte, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 || uint64(len(buf)-n) < l {
		return "", buf, fmt.Errorf("%w: bad string length", ErrCorrupt)
	}
	return string(buf[n : n+int(l)]), buf[n+int(l):], nil
}

// AppendItem appends the wire form of it to dst and returns the extended
// slice. Only valid items (Int, Str) are encodable.
func AppendItem(dst []byte, it Item) ([]byte, error) {
	switch it.kind {
	case KindInt:
		dst = append(dst, byte(KindInt))
		return binary.AppendVarint(dst, it.i), nil
	case KindString:
		dst = append(dst, byte(KindString))
		dst = binary.AppendUvarint(dst, uint64(len(it.s)))
		return append(dst, it.s...), nil
	default:
		return dst, fmt.Errorf("value: cannot encode item of kind %v", it.kind)
	}
}

// DecodeItem decodes one item from the front of buf, returning it and the
// remaining bytes.
func DecodeItem(buf []byte) (Item, []byte, error) {
	if len(buf) == 0 {
		return Item{}, buf, fmt.Errorf("%w: empty buffer", ErrCorrupt)
	}
	kind := Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case KindInt:
		v, n := binary.Varint(buf)
		if n <= 0 {
			return Item{}, buf, fmt.Errorf("%w: bad varint", ErrCorrupt)
		}
		return Int(v), buf[n:], nil
	case KindString:
		l, n := binary.Uvarint(buf)
		if n <= 0 || uint64(len(buf)-n) < l {
			return Item{}, buf, fmt.Errorf("%w: bad string length", ErrCorrupt)
		}
		s := string(buf[n : n+int(l)])
		return Str(s), buf[n+int(l):], nil
	default:
		return Item{}, buf, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, kind)
	}
}

// AppendTuple appends the wire form of t to dst.
func AppendTuple(dst []byte, t Tuple) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(t.fields)))
	var err error
	for _, f := range t.fields {
		if dst, err = AppendItem(dst, f); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeTuple decodes one tuple from the front of buf, returning it and
// the remaining bytes.
func DecodeTuple(buf []byte) (Tuple, []byte, error) {
	arity, n := binary.Uvarint(buf)
	if n <= 0 {
		return Tuple{}, buf, fmt.Errorf("%w: bad arity", ErrCorrupt)
	}
	if arity > uint64(len(buf)) {
		// Each item needs at least one byte; an arity beyond the buffer
		// length is corrupt (and guards allocation).
		return Tuple{}, buf, fmt.Errorf("%w: arity %d exceeds buffer", ErrCorrupt, arity)
	}
	buf = buf[n:]
	fields := make([]Item, 0, arity)
	for i := uint64(0); i < arity; i++ {
		var it Item
		var err error
		if it, buf, err = DecodeItem(buf); err != nil {
			return Tuple{}, buf, err
		}
		fields = append(fields, it)
	}
	return Tuple{fields: fields}, buf, nil
}

// EncodeTuples encodes a tuple stream (uvarint count then tuples).
func EncodeTuples(tuples []Tuple) ([]byte, error) {
	out := binary.AppendUvarint(nil, uint64(len(tuples)))
	var err error
	for _, t := range tuples {
		if out, err = AppendTuple(out, t); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeTuples decodes a tuple stream encoded by EncodeTuples.
func DecodeTuples(buf []byte) ([]Tuple, error) {
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, fmt.Errorf("%w: bad count", ErrCorrupt)
	}
	if count > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: count %d exceeds buffer", ErrCorrupt, count)
	}
	buf = buf[n:]
	out := make([]Tuple, 0, count)
	for i := uint64(0); i < count; i++ {
		var t Tuple
		var err error
		if t, buf, err = DecodeTuple(buf); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return out, nil
}
