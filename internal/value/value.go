// Package value defines the data model of the functional database: scalar
// items, tuples of items, and a total ordering over both.
//
// The paper (Keller & Lindstrom 1985, Section 2.1) assumes a relational
// model: "a relational database is a set of relations ... Each relation is a
// set of tuples of data items." Items and tuples here are immutable values;
// every operation that appears to modify one returns a fresh value, in
// keeping with the applicative discipline of the rest of the system.
//
// By convention the first field of a tuple is its key within a relation.
package value

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Kind discriminates the scalar types an Item can hold.
type Kind uint8

// Item kinds. KindInt sorts before KindString so that heterogeneous keys
// still have a total order.
const (
	KindInt Kind = iota + 1
	KindString

	// kindMax is the internal kind of the MaxKey sentinel; it sorts after
	// every valid kind. The zero kind (invalid items, MinKey) sorts before
	// every valid kind.
	kindMax Kind = 0xFF
)

// MinKey returns a sentinel ordering strictly below every valid item, for
// unbounded range scans. It is not a storable value (IsValid is false).
func MinKey() Item { return Item{} }

// MaxKey returns a sentinel ordering strictly above every valid item, for
// unbounded range scans. It is not a storable value (IsValid is false).
func MaxKey() Item { return Item{kind: kindMax} }

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindString:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Item is one scalar data item: either an integer or a string. The zero
// Item is invalid; construct items with Int or Str.
type Item struct {
	kind Kind
	i    int64
	s    string
}

// Int returns an integer item.
func Int(v int64) Item { return Item{kind: KindInt, i: v} }

// Str returns a string item.
func Str(s string) Item { return Item{kind: KindString, s: s} }

// Kind reports the item's scalar kind.
func (it Item) Kind() Kind { return it.kind }

// IsValid reports whether the item was constructed with Int or Str.
func (it Item) IsValid() bool { return it.kind == KindInt || it.kind == KindString }

// AsInt returns the integer payload. It is only meaningful when Kind is
// KindInt.
func (it Item) AsInt() int64 { return it.i }

// AsString returns the string payload. It is only meaningful when Kind is
// KindString.
func (it Item) AsString() string { return it.s }

// Compare returns -1, 0 or +1 ordering it relative to other. Items of
// different kinds order by kind (ints before strings).
func (it Item) Compare(other Item) int {
	if it.kind != other.kind {
		if it.kind < other.kind {
			return -1
		}
		return 1
	}
	switch it.kind {
	case KindInt:
		switch {
		case it.i < other.i:
			return -1
		case it.i > other.i:
			return 1
		}
		return 0
	case KindString:
		return strings.Compare(it.s, other.s)
	default:
		return 0
	}
}

// Equal reports whether two items are identical in kind and payload.
func (it Item) Equal(other Item) bool { return it.Compare(other) == 0 }

// String renders the item as it would appear in the query language: bare
// digits for ints, double quotes for strings.
func (it Item) String() string {
	switch it.kind {
	case KindInt:
		return strconv.FormatInt(it.i, 10)
	case KindString:
		return strconv.Quote(it.s)
	case kindMax:
		return "<max-key>"
	default:
		return "<invalid item>"
	}
}

// Tuple is an immutable, ordered sequence of items. The first field is the
// tuple's key within a relation.
type Tuple struct {
	fields []Item
}

// NewTuple builds a tuple from the given items. The slice is copied, so the
// caller retains ownership of its argument.
func NewTuple(items ...Item) Tuple {
	fields := make([]Item, len(items))
	copy(fields, items)
	return Tuple{fields: fields}
}

// Arity returns the number of fields.
func (t Tuple) Arity() int { return len(t.fields) }

// IsZero reports whether the tuple has no fields (the zero Tuple).
func (t Tuple) IsZero() bool { return len(t.fields) == 0 }

// Field returns field i. It panics if i is out of range, mirroring slice
// indexing.
func (t Tuple) Field(i int) Item { return t.fields[i] }

// Key returns the tuple's key: its first field. The zero Item is returned
// for the zero Tuple.
func (t Tuple) Key() Item {
	if len(t.fields) == 0 {
		return Item{}
	}
	return t.fields[0]
}

// Fields returns a copy of the tuple's fields.
func (t Tuple) Fields() []Item {
	out := make([]Item, len(t.fields))
	copy(out, t.fields)
	return out
}

// WithField returns a copy of the tuple with field i replaced. It panics if
// i is out of range.
func (t Tuple) WithField(i int, item Item) Tuple {
	if i < 0 || i >= len(t.fields) {
		panic(fmt.Sprintf("value: WithField index %d out of range for arity %d", i, len(t.fields)))
	}
	fields := make([]Item, len(t.fields))
	copy(fields, t.fields)
	fields[i] = item
	return Tuple{fields: fields}
}

// Compare orders tuples lexicographically field by field; a shorter tuple
// that is a prefix of a longer one sorts first.
func (t Tuple) Compare(other Tuple) int {
	n := min(len(t.fields), len(other.fields))
	for i := 0; i < n; i++ {
		if c := t.fields[i].Compare(other.fields[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t.fields) < len(other.fields):
		return -1
	case len(t.fields) > len(other.fields):
		return 1
	}
	return 0
}

// Equal reports whether two tuples have identical fields.
func (t Tuple) Equal(other Tuple) bool { return t.Compare(other) == 0 }

// String renders the tuple as it would appear in the query language, e.g.
// (7, "widget", 3).
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, f := range t.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Hash returns a 64-bit FNV-1a hash of the tuple, used by property tests to
// compare large sets of tuples cheaply.
func (t Tuple) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range t.fields {
		buf[0] = byte(f.kind)
		_, _ = h.Write(buf[:1])
		switch f.kind {
		case KindInt:
			v := uint64(f.i)
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			_, _ = h.Write(buf[:8])
		case KindString:
			_, _ = h.Write([]byte(f.s))
		}
	}
	return h.Sum64()
}
