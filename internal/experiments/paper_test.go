package experiments

import (
	"strings"
	"testing"
)

func TestPaperLookups(t *testing.T) {
	c, ok := PaperTableI(0, 1)
	if !ok || c.Max != 39 || c.Avg != 17 {
		t.Errorf("PaperTableI(0,1) = %+v, %v", c, ok)
	}
	if _, ok := PaperTableI(7, 1); ok {
		t.Error("missing 7%/1-relation entry reported present")
	}
	if v, ok := PaperTableII(38, 5); !ok || v != 4.8 {
		t.Errorf("PaperTableII(38,5) = %v, %v", v, ok)
	}
	if _, ok := PaperTableII(7, 1); ok {
		t.Error("missing Table II entry reported present")
	}
	if v, ok := PaperTableIII(24, 3); !ok || v != 6.4 {
		t.Errorf("PaperTableIII(24,3) = %v, %v", v, ok)
	}
	if _, ok := PaperTableIII(7, 3); ok {
		t.Error("missing Table III entry reported present")
	}
}

func TestComparisonFormatters(t *testing.T) {
	grid, err := TableI(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatComparisonI(grid)
	for _, want := range []string{"paper", "measured", "39", "—"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison missing %q:\n%s", want, out)
		}
	}
	t2, err := TableII(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	out2 := FormatComparisonSpeedup(t2, PaperTableII)
	for _, want := range []string{"paper", "measured", "6.2", "—"} {
		if !strings.Contains(out2, want) {
			t.Errorf("speedup comparison missing %q:\n%s", want, out2)
		}
	}
}
