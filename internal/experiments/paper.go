package experiments

import (
	"fmt"
	"strings"
)

// The paper's published values, transcribed from Tables I-III (Keller &
// Lindstrom 1985, Section 4). The 7% row of the original prints only two
// column pairs; missing entries are represented by negative sentinels and
// rendered as "—".

// PaperCellI is one published Table I entry (max, avg ply).
type PaperCellI struct {
	Max, Avg int
}

// paperTableI[pct][rels].
var paperTableI = map[int]map[int]PaperCellI{
	0:  {5: {25, 14}, 3: {27, 15}, 1: {39, 17}},
	4:  {5: {25, 14}, 3: {28, 15}, 1: {45, 17}},
	7:  {5: {26, 14}, 3: {46, 15}, 1: {-1, -1}},
	14: {5: {26, 14}, 3: {29, 13}, 1: {42, 13}},
	24: {5: {24, 12}, 3: {28, 11}, 1: {36, 9}},
	38: {5: {24, 10}, 3: {24, 9}, 1: {22, 9}},
}

// paperTableII[pct][rels]: speedup on the 8-node hypercube.
var paperTableII = map[int]map[int]float64{
	0:  {5: 5.6, 3: 5.7, 1: 6.2},
	4:  {5: 5.6, 3: 5.7, 1: 6.1},
	7:  {5: 5.6, 3: 5.9, 1: -1},
	14: {5: 5.4, 3: 5.5, 1: 5.6},
	24: {5: 5.2, 3: 5.0, 1: 4.7},
	38: {5: 4.8, 3: 4.6, 1: 4.7},
}

// paperTableIII[pct][rels]: speedup on the 27-node Euclidean cube.
var paperTableIII = map[int]map[int]float64{
	0:  {5: 7.2, 3: 7.6, 1: 8.9},
	4:  {5: 7.2, 3: 7.6, 1: 8.9},
	7:  {5: 7.1, 3: -1, 1: 8.9},
	14: {5: 7.2, 3: 7.6, 1: 7.8},
	24: {5: 6.8, 3: 6.4, 1: 6.1},
	38: {5: 6.0, 3: 6.2, 1: 6.0},
}

// PaperTableI returns the published Table I cell, with ok=false for the
// entries missing from the original.
func PaperTableI(pct, rels int) (PaperCellI, bool) {
	c := paperTableI[pct][rels]
	return c, c.Max >= 0
}

// PaperTableII returns the published Table II speedup.
func PaperTableII(pct, rels int) (float64, bool) {
	v := paperTableII[pct][rels]
	return v, v >= 0
}

// PaperTableIII returns the published Table III speedup.
func PaperTableIII(pct, rels int) (float64, bool) {
	v := paperTableIII[pct][rels]
	return v, v >= 0
}

// FormatComparisonI renders measured Table I beside the paper's values.
func FormatComparisonI(g Grid) string {
	var b strings.Builder
	b.WriteString("Table I, paper vs measured (max ply / avg ply)\n\n")
	fmt.Fprintf(&b, "%-8s", "updates")
	for _, rels := range PaperRelationCounts {
		fmt.Fprintf(&b, " | %-21s", fmt.Sprintf("%d relations", rels))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "")
	for range PaperRelationCounts {
		fmt.Fprintf(&b, " | %-10s %-10s", "paper", "measured")
	}
	b.WriteString("\n")
	for _, pct := range PaperUpdatePcts {
		fmt.Fprintf(&b, "%6d%% ", pct)
		for _, rels := range PaperRelationCounts {
			c := g.Get(pct, rels)
			if p, ok := PaperTableI(pct, rels); ok {
				fmt.Fprintf(&b, " | %3d /%3d  %3d /%5.1f", p.Max, p.Avg, c.MaxPly, c.AvgPly)
			} else {
				fmt.Fprintf(&b, " | %-9s %3d /%5.1f", "   —", c.MaxPly, c.AvgPly)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatComparisonSpeedup renders a measured speedup grid beside the
// published one.
func FormatComparisonSpeedup(g Grid, paper func(pct, rels int) (float64, bool)) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s, paper vs measured (speedup)\n\n", g.Title)
	fmt.Fprintf(&b, "%-8s", "updates")
	for _, rels := range PaperRelationCounts {
		fmt.Fprintf(&b, " | %-17s", fmt.Sprintf("%d relations", rels))
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "")
	for range PaperRelationCounts {
		fmt.Fprintf(&b, " | %-8s %-8s", "paper", "measured")
	}
	b.WriteString("\n")
	for _, pct := range PaperUpdatePcts {
		fmt.Fprintf(&b, "%6d%% ", pct)
		for _, rels := range PaperRelationCounts {
			c := g.Get(pct, rels)
			if p, ok := paper(pct, rels); ok {
				fmt.Fprintf(&b, " | %8.1f %8.1f", p, c.Speedup)
			} else {
				fmt.Fprintf(&b, " | %8s %8.1f", "—", c.Speedup)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}
