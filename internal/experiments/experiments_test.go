package experiments

import (
	"strings"
	"testing"

	"funcdb/internal/sched"
	"funcdb/internal/topo"
)

func TestTableIShapes(t *testing.T) {
	grid, err := TableI(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Shape 1 (Table I): substantial concurrency everywhere — the paper's
	// headline claim that "a reasonable degree of concurrency is attainable
	// from the functional approach" even on a 50-transaction toy.
	for _, pct := range PaperUpdatePcts {
		for _, rels := range PaperRelationCounts {
			c := grid.Get(pct, rels)
			if c.MaxPly < 5 {
				t.Errorf("%d%%/%d rels: max ply %d too low", pct, rels, c.MaxPly)
			}
			if c.AvgPly < 2 {
				t.Errorf("%d%%/%d rels: avg ply %.1f too low", pct, rels, c.AvgPly)
			}
		}
	}
	// Shape 2: with the list representation, fewer relations means longer
	// scans and deeper pipelines: 1 relation beats 5 on max ply, at every
	// update percentage (the paper's column ordering 39 > 27 > 25 etc.).
	for _, pct := range PaperUpdatePcts {
		if grid.Get(pct, 1).MaxPly <= grid.Get(pct, 5).MaxPly {
			t.Errorf("%d%%: 1-relation max ply %d not above 5-relation %d",
				pct, grid.Get(pct, 1).MaxPly, grid.Get(pct, 5).MaxPly)
		}
	}
	// Shape 3: heavy updates reduce average concurrency relative to
	// read-only (the paper's rows decline from 0%% to 38%%).
	for _, rels := range PaperRelationCounts {
		if grid.Get(38, rels).AvgPly >= grid.Get(0, rels).AvgPly {
			t.Errorf("%d rels: avg ply did not decline with updates (%.1f -> %.1f)",
				rels, grid.Get(0, rels).AvgPly, grid.Get(38, rels).AvgPly)
		}
	}
}

func TestTableIIandIIIShapes(t *testing.T) {
	t2, err := TableII(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := TableIII(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, pct := range PaperUpdatePcts {
		for _, rels := range PaperRelationCounts {
			s2 := t2.Get(pct, rels).Speedup
			s3 := t3.Get(pct, rels).Speedup
			// Bounds: speedup within (1, PE count].
			if s2 <= 1 || s2 > 8 {
				t.Errorf("Table II %d%%/%d: speedup %.2f out of (1,8]", pct, rels, s2)
			}
			if s3 <= 1 || s3 > 27 {
				t.Errorf("Table III %d%%/%d: speedup %.2f out of (1,27]", pct, rels, s3)
			}
		}
	}
	// Shape: the 27-node cube beats the 8-node hypercube on the deepest
	// pipeline (1 relation), as in the paper (8.9 vs 6.2 at 0%).
	for _, pct := range PaperUpdatePcts {
		if t3.Get(pct, 1).Speedup <= t2.Get(pct, 1).Speedup {
			t.Errorf("%d%%: 27-node speedup %.2f not above 8-node %.2f",
				pct, t3.Get(pct, 1).Speedup, t2.Get(pct, 1).Speedup)
		}
	}
	// Shape: heavy updates cost speedup at 5 relations (paper: 5.6 -> 4.8).
	if t2.Get(38, 5).Speedup >= t2.Get(0, 5).Speedup {
		t.Errorf("Table II 5 rels: no decline with updates (%.2f -> %.2f)",
			t2.Get(0, 5).Speedup, t2.Get(38, 5).Speedup)
	}
}

func TestTablesDeterministic(t *testing.T) {
	a, err := TableI(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableI(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, pct := range PaperUpdatePcts {
		for _, rels := range PaperRelationCounts {
			if a.Get(pct, rels) != b.Get(pct, rels) {
				t.Fatalf("Table I not deterministic at %d%%/%d", pct, rels)
			}
		}
	}
}

func TestFormatters(t *testing.T) {
	grid, err := TableI(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatPlyGrid(grid)
	for _, want := range []string{"Table I", "38%", "max", "avg"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatPlyGrid missing %q:\n%s", want, out)
		}
	}
	t2, err := TableII(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	out2 := FormatSpeedupGrid(t2)
	if !strings.Contains(out2, "hypercube") || !strings.Contains(out2, "0%") {
		t.Errorf("FormatSpeedupGrid output:\n%s", out2)
	}
}

func TestLeniencyAblation(t *testing.T) {
	res, err := RunLeniencyAblation(14, 3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Strict.Depth <= res.Lenient.Depth {
		t.Errorf("strict depth %d not above lenient %d", res.Strict.Depth, res.Lenient.Depth)
	}
	if res.Strict.AvgWidth >= res.Lenient.AvgWidth {
		t.Errorf("strict avg %.2f not below lenient %.2f", res.Strict.AvgWidth, res.Lenient.AvgWidth)
	}
}

func TestRepresentationAblation(t *testing.T) {
	res, err := RunRepresentationAblation(14, 3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("%d representations", len(res))
	}
	byRep := map[string]RepresentationAblation{}
	for _, r := range res {
		byRep[r.Rep.String()] = r
	}
	// Trees allocate less than the list on update-heavy paths ("fewer
	// nodes need to be modified on insertion").
	if byRep["avl"].Created >= byRep["list"].Created {
		t.Errorf("avl created %d >= list %d", byRep["avl"].Created, byRep["list"].Created)
	}
	// And do less total work.
	if byRep["avl"].Plies.Work >= byRep["list"].Plies.Work {
		t.Errorf("avl work %d >= list work %d", byRep["avl"].Plies.Work, byRep["list"].Plies.Work)
	}
}

func TestPlacementAblation(t *testing.T) {
	res, err := RunPlacementAblation(14, 3, topo.NewHypercube(3), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	byPol := map[sched.Policy]sched.Result{}
	for _, r := range res {
		byPol[r.Policy] = r.Result
	}
	// Locality keeps everything on roughly one PE: speedup near 1 and far
	// below pressure diffusion.
	if byPol[sched.PolicyLocality].Speedup >= byPol[sched.PolicyPressure].Speedup {
		t.Errorf("locality %.2f not below pressure %.2f",
			byPol[sched.PolicyLocality].Speedup, byPol[sched.PolicyPressure].Speedup)
	}
	// Pressure must be competitive with the idealized global scheduler
	// (within 2x).
	if byPol[sched.PolicyPressure].Speedup*2 < byPol[sched.PolicyBestFit].Speedup {
		t.Errorf("pressure %.2f not within 2x of bestfit %.2f",
			byPol[sched.PolicyPressure].Speedup, byPol[sched.PolicyBestFit].Speedup)
	}
}

func TestDynamicAblation(t *testing.T) {
	res, err := RunDynamicAblation(14, 3, topo.NewHypercube(3), DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Static.Speedup <= 1 || res.Dynamic.Speedup <= 1 {
		t.Errorf("speedups = %.2f / %.2f", res.Static.Speedup, res.Dynamic.Speedup)
	}
	if res.Dynamic.Steals == 0 {
		t.Error("dynamic run never diffused work")
	}
	// Dynamic (no lookahead) should stay within 3x of static.
	if res.Dynamic.Speedup*3 < res.Static.Speedup {
		t.Errorf("dynamic %.2f far below static %.2f", res.Dynamic.Speedup, res.Static.Speedup)
	}
}

func TestMergeOrderAblation(t *testing.T) {
	res, err := RunMergeOrderAblation(24, 5, 4, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Arrival.Work == 0 || res.Grouped.Work == 0 {
		t.Fatal("empty traces")
	}
	// Both orders process the same transactions; work may differ slightly
	// because scan lengths depend on interleaving, but must be same scale.
	ratio := float64(res.Grouped.Work) / float64(res.Arrival.Work)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("grouped/arrival work ratio %.2f out of range", ratio)
	}
}

func TestHypercubeScaleSweep(t *testing.T) {
	pts, err := RunHypercubeScaleSweep(4, 1, 5, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].PEs != 1 || pts[5].PEs != 32 {
		t.Errorf("PE range %d..%d", pts[0].PEs, pts[5].PEs)
	}
	// Single PE: speedup exactly 1.
	if pts[0].Speedup != 1 {
		t.Errorf("1-PE speedup = %.2f", pts[0].Speedup)
	}
	// Speedup grows from 1 PE to 8 PEs.
	if pts[3].Speedup <= pts[0].Speedup {
		t.Error("no speedup growth with machine size")
	}
}

func TestSequentialDriver(t *testing.T) {
	final, resp, err := Sequential(14, 3, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp) != 50 {
		t.Errorf("%d responses", len(resp))
	}
	if final.TotalTuples() < 50 {
		t.Errorf("final tuples = %d", final.TotalTuples())
	}
}

func TestFigure21(t *testing.T) {
	summary, dot, err := Figure21()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(summary, "apply-stream") || !strings.Contains(summary, "max ply") {
		t.Errorf("summary:\n%s", summary)
	}
	if !strings.Contains(dot, "digraph") {
		t.Error("no DOT output")
	}
}

func TestFigure22LogOverN(t *testing.T) {
	sweep := Figure22Sweep(8, []int{64, 512, 4096})
	prev := 0.0
	for i, r := range sweep {
		if r.CopiedPages > r.TreeHeight+1 {
			t.Errorf("n=%d: copied %d pages, height %d", r.Tuples, r.CopiedPages, r.TreeHeight)
		}
		if r.SharedFraction <= prev && i > 0 {
			t.Errorf("shared fraction not increasing with n: %.3f then %.3f", prev, r.SharedFraction)
		}
		prev = r.SharedFraction
	}
	// At 4096 tuples the shared fraction must be overwhelming.
	if last := sweep[len(sweep)-1]; last.SharedFraction < 0.99 {
		t.Errorf("shared fraction %.3f < 0.99 at n=4096", last.SharedFraction)
	}
	out := FormatFigure22(sweep)
	if !strings.Contains(out, "shared frac") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestFigure23(t *testing.T) {
	res, err := Figure23()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Merged) != 5 {
		t.Fatalf("merged stream = %v", res.Merged)
	}
	if len(res.Tracks["R"]) != 2 || len(res.Tracks["S"]) != 3 {
		t.Errorf("tracks = %v", res.Tracks)
	}
	// The two tracks overlap: depth strictly below work.
	if res.Plies.Depth >= res.Plies.Work {
		t.Errorf("no overlap: depth %d work %d", res.Plies.Depth, res.Plies.Work)
	}
	if res.Plies.MaxWidth < 2 {
		t.Errorf("max ply %d", res.Plies.MaxWidth)
	}
	out := FormatFigure23(res)
	for _, want := range []string{"merged transaction stream", "track R", "track S"} {
		if !strings.Contains(out, want) {
			t.Errorf("format missing %q", want)
		}
	}
}

func TestFigure31(t *testing.T) {
	res, err := Figure31()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllSelected {
		t.Error("choose leaked messages across site tags")
	}
	// 12 greets: each needs a request and a reply = 24 messages.
	if res.Messages != 24 {
		t.Errorf("medium carried %d messages, want 24", res.Messages)
	}
	for site, msgs := range res.PerSite {
		if len(msgs) != 6 {
			t.Errorf("site %d chose %d messages, want 6", site, len(msgs))
		}
	}
	out := FormatFigure31(res)
	if !strings.Contains(out, "choose(medium, site 0)") {
		t.Errorf("format output:\n%s", out)
	}
}

func TestMergeDemoDeliversAll(t *testing.T) {
	out := MergeDemo()
	if len(out) != 5 {
		t.Errorf("MergeDemo = %v", out)
	}
}
