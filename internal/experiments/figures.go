package experiments

import (
	"fmt"
	"sort"
	"strings"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/lenient"
	"funcdb/internal/merge"
	"funcdb/internal/netsim"
	"funcdb/internal/ptree"
	"funcdb/internal/query"
	"funcdb/internal/relation"
	"funcdb/internal/topo"
	"funcdb/internal/trace"
	"funcdb/internal/value"
)

// Figure21 reproduces Figure 2-1 ("Transaction application in graphical
// form"): it runs a three-transaction stream through the traced engine and
// returns both the paper's equations and the recorded dataflow graph in
// DOT, demonstrating that the implementation *is* the equation system.
func Figure21() (equations string, dot string, err error) {
	queries := []string{
		"insert 15 into R1",
		"find 15 in R1",
		"insert 25 into R1",
	}
	txns, err := query.TranslateAll("term", queries)
	if err != nil {
		return "", "", err
	}
	init := database.FromData(relation.RepList, []string{"R1"}, map[string][]value.Tuple{
		"R1": {value.NewTuple(value.Int(10)), value.NewTuple(value.Int(20))},
	})
	g := trace.New()
	core.ApplyStreamTraced(&eval.Ctx{Graph: g}, init, txns, core.TracedOptions{})

	var b strings.Builder
	b.WriteString("Figure 2-1: transaction application as a functional program\n\n")
	b.WriteString("  old-databases = initial-database ^ new-databases\n")
	b.WriteString("  [responses, new-databases] = apply-stream:[transactions, old-databases]\n\n")
	fmt.Fprintf(&b, "executed for %d transactions: %v\n", len(txns), queries)
	p := g.Analyze()
	fmt.Fprintf(&b, "recorded dataflow graph: %d tasks, depth %d, max ply %d\n", p.Work, p.Depth, p.MaxWidth)

	var dotB strings.Builder
	if err := g.WriteDOT(&dotB, "figure 2-1"); err != nil {
		return "", "", err
	}
	return b.String(), dotB.String(), nil
}

// Figure22Result quantifies Figure 2-2 ("Sharing of pages through separate
// directories"): how many pages one insert copies versus shares.
type Figure22Result struct {
	PageCap     int
	Tuples      int
	TotalPages  int
	CopiedPages int
	SharedPages int
	TreeHeight  int
	// SharedFraction is shared/total — the paper's "all but a proportion
	// (log n)/n can be shared".
	SharedFraction float64
}

// Figure22 builds a paged relation of n tuples, performs one insert, and
// measures the old/new directory sharing of Figure 2-2.
func Figure22(pageCap, n int) Figure22Result {
	tuples := make([]value.Tuple, 0, n)
	for i := 0; i < n; i++ {
		tuples = append(tuples, value.NewTuple(value.Int(int64(i*2)), value.Str("d")))
	}
	tr := ptree.PagedFromTuples(pageCap, tuples)
	next, _ := tr.Insert(nil, value.NewTuple(value.Int(int64(n)), value.Str("new")), trace.None)
	shared := next.SharedPagesWith(tr)
	total := next.PageCount()
	return Figure22Result{
		PageCap:        pageCap,
		Tuples:         n,
		TotalPages:     total,
		CopiedPages:    total - shared,
		SharedPages:    shared,
		TreeHeight:     tr.Height(),
		SharedFraction: float64(shared) / float64(total),
	}
}

// Figure22Sweep runs Figure22 over growing relations, demonstrating the
// (log n)/n trend.
func Figure22Sweep(pageCap int, sizes []int) []Figure22Result {
	out := make([]Figure22Result, 0, len(sizes))
	for _, n := range sizes {
		out = append(out, Figure22(pageCap, n))
	}
	return out
}

// FormatFigure22 renders a sweep as a table.
func FormatFigure22(results []Figure22Result) string {
	var b strings.Builder
	b.WriteString("Figure 2-2: sharing of pages through separate directories\n")
	b.WriteString("(one insert into a paged relation; old directory left intact)\n\n")
	fmt.Fprintf(&b, "%8s %8s %8s %8s %8s %10s\n", "tuples", "pages", "height", "copied", "shared", "shared frac")
	for _, r := range results {
		fmt.Fprintf(&b, "%8d %8d %8d %8d %8d %9.1f%%\n",
			r.Tuples, r.TotalPages, r.TreeHeight, r.CopiedPages, r.SharedPages, 100*r.SharedFraction)
	}
	return b.String()
}

// Figure23Result reproduces Figure 2-3: the merge of two transaction
// streams and the de-facto parallel execution schedule extracted from the
// merged stream.
type Figure23Result struct {
	StreamA []string
	StreamB []string
	Merged  []string
	// Tracks decomposes the merged stream by target relation, the paper's
	// two-track schedule.
	Tracks map[string][]string
	Plies  trace.Plies
}

// Figure23 runs the paper's exact example:
//
//	stream A: insert x into R / find x in R / insert y into S
//	stream B: insert z into S / find z in S
//
// merged in the paper's printed order, and verifies that the R-track and
// the S-track overlap in the recorded DAG.
func Figure23() (Figure23Result, error) {
	streamA := []string{"insert x into R", "find x in R", "insert y into S"}
	streamB := []string{"insert z into S", "find z in S"}
	// The paper's printed merged order.
	mergedQ := []string{
		"insert x into R",
		"insert z into S",
		"find x in R",
		"insert y into S",
		"find z in S",
	}
	txnsA, err := query.TranslateAll("A", streamA)
	if err != nil {
		return Figure23Result{}, err
	}
	txnsB, err := query.TranslateAll("B", streamB)
	if err != nil {
		return Figure23Result{}, err
	}
	byQuery := map[string]core.Transaction{}
	for _, tx := range append(txnsA, txnsB...) {
		byQuery[tx.Query] = tx
	}
	txns := make([]core.Transaction, 0, len(mergedQ))
	for _, q := range mergedQ {
		txns = append(txns, byQuery[q])
	}

	init := database.FromData(relation.RepList, []string{"R", "S"}, map[string][]value.Tuple{
		"R": {value.NewTuple(value.Str("a"))},
		"S": {value.NewTuple(value.Str("b"))},
	})
	g := trace.New()
	responses, _ := core.ApplyStreamTraced(&eval.Ctx{Graph: g}, init, txns, core.TracedOptions{})
	for _, r := range responses {
		if r.Err != nil {
			return Figure23Result{}, fmt.Errorf("experiments: figure 2-3 transaction failed: %w", r.Err)
		}
	}

	tracks := map[string][]string{}
	for _, tx := range txns {
		tracks[tx.Rel] = append(tracks[tx.Rel], tx.Query)
	}
	return Figure23Result{
		StreamA: streamA,
		StreamB: streamB,
		Merged:  mergedQ,
		Tracks:  tracks,
		Plies:   g.Analyze(),
	}, nil
}

// FormatFigure23 renders the figure as text.
func FormatFigure23(r Figure23Result) string {
	var b strings.Builder
	b.WriteString("Figure 2-3: merging and decomposition of transaction streams\n\n")
	fmt.Fprintf(&b, "input stream A: %s\n", strings.Join(r.StreamA, " ; "))
	fmt.Fprintf(&b, "input stream B: %s\n\n", strings.Join(r.StreamB, " ; "))
	b.WriteString("merged transaction stream:\n")
	for _, q := range r.Merged {
		fmt.Fprintf(&b, "  %s\n", q)
	}
	b.WriteString("\nde-facto parallel execution schedule (per-relation tracks):\n")
	rels := make([]string, 0, len(r.Tracks))
	for rel := range r.Tracks {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		fmt.Fprintf(&b, "  track %s: %s\n", rel, strings.Join(r.Tracks[rel], " -> "))
	}
	fmt.Fprintf(&b, "\nrecorded DAG: work %d, depth %d, max ply %d (depth < work: the tracks overlap)\n",
		r.Plies.Work, r.Plies.Depth, r.Plies.MaxWidth)
	return b.String()
}

// Figure31Result reproduces Figure 3-1: the physical network as one large
// merge, with each site's logical substream selected by choose.
type Figure31Result struct {
	Sites       int
	MediumLog   []string // every message in medium (merge) order
	PerSite     map[netsim.SiteID][]string
	Messages    int64
	Hops        int64
	AllSelected bool // every medium message chosen by exactly its tag site
}

// Figure31 runs four sites on a hypercube exchanging tagged messages
// through the medium and decomposes the medium log with choose.
func Figure31() (Figure31Result, error) {
	n := netsim.NewNetwork(4, netsim.WithTopology(topo.NewHypercube(2)))
	n.EnableTap()
	defer n.Close()

	sites := make([]*netsim.Site, 4)
	for i := range sites {
		sites[i] = netsim.NewSite(n, netsim.SiteID(i))
		sites[i].RegisterFunc("greet", func(arg any) any {
			return fmt.Sprintf("ack:%v", arg)
		})
		go sites[i].Run()
	}
	defer func() {
		for _, s := range sites {
			s.Stop()
		}
	}()

	// Every site greets every other site via RESULT-ON; the medium merges
	// all requests and replies.
	var futures []*lenient.Cell[any]
	for _, s := range sites {
		for dst := netsim.SiteID(0); dst < 4; dst++ {
			if dst == s.MySite() {
				continue
			}
			futures = append(futures, s.ResultOn(dst, "greet", fmt.Sprintf("s%d->s%d", s.MySite(), dst)))
		}
	}
	for _, f := range futures {
		if v := f.Force(); v == nil {
			return Figure31Result{}, fmt.Errorf("experiments: figure 3-1 greet lost")
		}
	}

	log := n.Tap()
	res := Figure31Result{
		Sites:       4,
		PerSite:     map[netsim.SiteID][]string{},
		AllSelected: true,
	}
	res.Messages, res.Hops = n.Stats()
	for _, m := range log {
		res.MediumLog = append(res.MediumLog, fmt.Sprintf("%d->%d %s", m.Src, m.Dst, m.Kind))
	}
	chosenTotal := 0
	for site := netsim.SiteID(0); site < 4; site++ {
		for _, m := range netsim.Choose(log, site) {
			if m.Dst != site {
				res.AllSelected = false
			}
			chosenTotal++
			res.PerSite[site] = append(res.PerSite[site], fmt.Sprintf("%d->%d %s", m.Src, m.Dst, m.Kind))
		}
	}
	if chosenTotal != len(log) {
		res.AllSelected = false
	}
	return res, nil
}

// FormatFigure31 renders the figure as text.
func FormatFigure31(r Figure31Result) string {
	var b strings.Builder
	b.WriteString("Figure 3-1: site-based substream selection (network as merge/choose)\n\n")
	fmt.Fprintf(&b, "medium (one large merge): %d messages, %d hops on hypercube(2)\n", r.Messages, r.Hops)
	for site := netsim.SiteID(0); int(site) < r.Sites; site++ {
		fmt.Fprintf(&b, "  choose(medium, site %d): %d messages\n", site, len(r.PerSite[site]))
	}
	if r.AllSelected {
		b.WriteString("every message chosen by exactly the site its tag names\n")
	} else {
		b.WriteString("TAG SELECTION VIOLATED\n")
	}
	return b.String()
}

// MergeDemo exercises the live channel merge for the figure tooling: it
// feeds the two Figure 2-3 streams through merge.Merge and returns the
// arrival-order interleaving (which varies run to run — the operator is
// not a function).
func MergeDemo() []string {
	feed := func(queries []string) <-chan string {
		ch := make(chan string)
		go func() {
			defer close(ch)
			for _, q := range queries {
				ch <- q
			}
		}()
		return ch
	}
	a := feed([]string{"insert x into R", "find x in R", "insert y into S"})
	b := feed([]string{"insert z into S", "find z in S"})
	return merge.Collect(merge.Merge(a, b))
}
