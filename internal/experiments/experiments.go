// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4), plus the ablations listed in DESIGN.md. The same
// drivers back cmd/fdbsim and the repository-level benchmarks, so the
// printed tables and the bench metrics cannot diverge.
package experiments

import (
	"fmt"
	"strings"

	"funcdb/internal/core"
	"funcdb/internal/database"
	"funcdb/internal/eval"
	"funcdb/internal/merge"
	"funcdb/internal/relation"
	"funcdb/internal/sched"
	"funcdb/internal/topo"
	"funcdb/internal/trace"
	"funcdb/internal/workload"
)

// PaperRelationCounts is the paper's column order: 5, 3, 1 relations.
var PaperRelationCounts = []int{5, 3, 1}

// PaperUpdatePcts is the paper's row order.
var PaperUpdatePcts = []int{0, 4, 7, 14, 24, 38}

// DefaultSeed keeps every published number regenerable.
const DefaultSeed = 1985

// Cell is one (update%, relations) measurement.
type Cell struct {
	UpdatePct int
	Relations int

	// Mode 1 (Table I).
	MaxPly int
	AvgPly float64
	Work   int
	Depth  int

	// Mode 2 (Tables II and III).
	Speedup    float64
	Efficiency float64
}

// Grid is a full table of cells, indexed [updatePct][relations].
type Grid struct {
	Title string
	Cells map[int]map[int]Cell
}

// Get returns the cell for (updatePct, relations).
func (g Grid) Get(pct, rels int) Cell { return g.Cells[pct][rels] }

// traceCell builds and traces one workload cell, returning the recorded
// graph and its analysis.
func traceCell(pct, rels int, seed int64) (*trace.Graph, trace.Plies, error) {
	spec := workload.DefaultPaper(rels, pct, seed)
	txns, err := spec.TransactionStream()
	if err != nil {
		return nil, trace.Plies{}, fmt.Errorf("experiments: workload: %w", err)
	}
	g := trace.New()
	core.ApplyStreamTraced(&eval.Ctx{Graph: g}, spec.InitialDatabase(relation.RepList), txns, core.TracedOptions{})
	return g, g.Analyze(), nil
}

// CellI measures one (update%, relations) cell of Table I.
func CellI(pct, rels int, seed int64) (Cell, error) {
	_, plies, err := traceCell(pct, rels, seed)
	if err != nil {
		return Cell{}, err
	}
	return Cell{
		UpdatePct: pct,
		Relations: rels,
		MaxPly:    plies.MaxWidth,
		AvgPly:    plies.AvgWidth,
		Work:      plies.Work,
		Depth:     plies.Depth,
	}, nil
}

// CellSpeedup measures one cell of a mode-2 table under cfg.
func CellSpeedup(pct, rels int, cfg SpeedupConfig) (Cell, error) {
	cfg = cfg.defaulted()
	g, plies, err := traceCell(pct, rels, cfg.Seed)
	if err != nil {
		return Cell{}, err
	}
	res := sched.Schedule(g, sched.Config{
		Topo:     cfg.Topo,
		HopDelay: cfg.HopDelay,
		Policy:   cfg.Policy,
		Seed:     cfg.Seed,
	})
	return Cell{
		UpdatePct:  pct,
		Relations:  rels,
		MaxPly:     plies.MaxWidth,
		AvgPly:     plies.AvgWidth,
		Work:       res.Work,
		Depth:      plies.Depth,
		Speedup:    res.Speedup,
		Efficiency: res.Efficiency,
	}, nil
}

// TableI reproduces "Table I: Maximum and Average Degree of Concurrency":
// mode-1 ply analysis over the full experiment grid.
func TableI(seed int64) (Grid, error) {
	grid := Grid{Title: "Table I: Maximum and Average Degree of Concurrency (ply width)", Cells: map[int]map[int]Cell{}}
	for _, pct := range PaperUpdatePcts {
		grid.Cells[pct] = map[int]Cell{}
		for _, rels := range PaperRelationCounts {
			_, plies, err := traceCell(pct, rels, seed)
			if err != nil {
				return Grid{}, err
			}
			grid.Cells[pct][rels] = Cell{
				UpdatePct: pct,
				Relations: rels,
				MaxPly:    plies.MaxWidth,
				AvgPly:    plies.AvgWidth,
				Work:      plies.Work,
				Depth:     plies.Depth,
			}
		}
	}
	return grid, nil
}

// SpeedupConfig parameterizes the mode-2 tables.
type SpeedupConfig struct {
	Topo     topo.Topology
	HopDelay int
	Policy   sched.Policy
	Seed     int64
}

// defaulted fills in the paper-equivalent defaults: unit hop delay and the
// Rediflow pressure-diffusion placement.
func (c SpeedupConfig) defaulted() SpeedupConfig {
	if c.HopDelay == 0 {
		c.HopDelay = 1
	}
	if c.Policy == 0 {
		c.Policy = sched.PolicyPressure
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// SpeedupTable schedules the same recorded DAGs on a PE topology: Table II
// with an 8-node hypercube, Table III with a 27-node 3x3x3 mesh.
func SpeedupTable(title string, cfg SpeedupConfig) (Grid, error) {
	cfg = cfg.defaulted()
	grid := Grid{Title: title, Cells: map[int]map[int]Cell{}}
	for _, pct := range PaperUpdatePcts {
		grid.Cells[pct] = map[int]Cell{}
		for _, rels := range PaperRelationCounts {
			g, plies, err := traceCell(pct, rels, cfg.Seed)
			if err != nil {
				return Grid{}, err
			}
			res := sched.Schedule(g, sched.Config{
				Topo:     cfg.Topo,
				HopDelay: cfg.HopDelay,
				Policy:   cfg.Policy,
				Seed:     cfg.Seed,
			})
			grid.Cells[pct][rels] = Cell{
				UpdatePct:  pct,
				Relations:  rels,
				MaxPly:     plies.MaxWidth,
				AvgPly:     plies.AvgWidth,
				Work:       res.Work,
				Depth:      plies.Depth,
				Speedup:    res.Speedup,
				Efficiency: res.Efficiency,
			}
		}
	}
	return grid, nil
}

// TableII reproduces "Table II: Speedup, 8-node hypercube".
func TableII(seed int64) (Grid, error) {
	return SpeedupTable("Table II: Speedup, 8-node binary hypercube", SpeedupConfig{
		Topo: topo.NewHypercube(3),
		Seed: seed,
	})
}

// TableIII reproduces "Table III: Speedup, 27 node Euclidean cube".
func TableIII(seed int64) (Grid, error) {
	return SpeedupTable("Table III: Speedup, 27-node Euclidean cube (3x3x3)", SpeedupConfig{
		Topo: topo.NewMesh3D(3, 3, 3),
		Seed: seed,
	})
}

// FormatPlyGrid renders a mode-1 grid in the paper's layout.
func FormatPlyGrid(g Grid) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", g.Title)
	fmt.Fprintf(&b, "percent                number of relations\n")
	fmt.Fprintf(&b, "updates  %14s %14s %14s\n", "5", "3", "1")
	fmt.Fprintf(&b, "         %14s %14s %14s\n", "max    avg", "max    avg", "max    avg")
	for _, pct := range PaperUpdatePcts {
		fmt.Fprintf(&b, "%5d%%  ", pct)
		for _, rels := range PaperRelationCounts {
			c := g.Get(pct, rels)
			fmt.Fprintf(&b, "  %5d %6.1f ", c.MaxPly, c.AvgPly)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatSpeedupGrid renders a mode-2 grid in the paper's layout.
func FormatSpeedupGrid(g Grid) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", g.Title)
	fmt.Fprintf(&b, "percent     number of relations\n")
	fmt.Fprintf(&b, "updates  %8s %8s %8s\n", "5", "3", "1")
	for _, pct := range PaperUpdatePcts {
		fmt.Fprintf(&b, "%5d%%  ", pct)
		for _, rels := range PaperRelationCounts {
			fmt.Fprintf(&b, " %8.1f", g.Get(pct, rels).Speedup)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LeniencyAblation compares lenient and strict tracing of one workload
// cell: the quantified form of Section 2.3's implicit-synchronization
// claim.
type LeniencyAblation struct {
	Lenient trace.Plies
	Strict  trace.Plies
}

// RunLeniencyAblation traces one cell both ways.
func RunLeniencyAblation(pct, rels int, seed int64) (LeniencyAblation, error) {
	spec := workload.DefaultPaper(rels, pct, seed)
	txns, err := spec.TransactionStream()
	if err != nil {
		return LeniencyAblation{}, err
	}
	gl := trace.New()
	core.ApplyStreamTraced(&eval.Ctx{Graph: gl}, spec.InitialDatabase(relation.RepList), txns, core.TracedOptions{})
	gs := trace.New()
	core.ApplyStreamTraced(&eval.Ctx{Graph: gs}, spec.InitialDatabase(relation.RepList), txns, core.TracedOptions{Strict: true})
	return LeniencyAblation{Lenient: gl.Analyze(), Strict: gs.Analyze()}, nil
}

// RepresentationAblation measures ply concurrency and allocation for each
// relation representation on the same workload.
type RepresentationAblation struct {
	Rep     relation.Rep
	Plies   trace.Plies
	Created int64
	Shared  int64
}

// RunRepresentationAblation traces one workload cell per representation.
func RunRepresentationAblation(pct, rels int, seed int64) ([]RepresentationAblation, error) {
	spec := workload.DefaultPaper(rels, pct, seed)
	txns, err := spec.TransactionStream()
	if err != nil {
		return nil, err
	}
	var out []RepresentationAblation
	for _, rep := range []relation.Rep{relation.RepList, relation.RepAVL, relation.Rep23, relation.RepPaged} {
		g := trace.New()
		stats := &eval.Stats{}
		core.ApplyStreamTraced(&eval.Ctx{Graph: g, Stats: stats}, spec.InitialDatabase(rep), txns, core.TracedOptions{})
		out = append(out, RepresentationAblation{
			Rep:     rep,
			Plies:   g.Analyze(),
			Created: stats.Created.Load(),
			Shared:  stats.Shared.Load(),
		})
	}
	return out, nil
}

// PlacementAblation compares scheduler placement policies on one cell's
// DAG (Ablation D: the load-management question of paper reference [14]).
type PlacementAblation struct {
	Policy sched.Policy
	Result sched.Result
}

// RunPlacementAblation schedules one cell's DAG under every policy.
func RunPlacementAblation(pct, rels int, tp topo.Topology, seed int64) ([]PlacementAblation, error) {
	g, _, err := traceCell(pct, rels, seed)
	if err != nil {
		return nil, err
	}
	var out []PlacementAblation
	for _, pol := range []sched.Policy{
		sched.PolicyPressure, sched.PolicyBestFit, sched.PolicyLocality,
		sched.PolicyRoundRobin, sched.PolicyRandom,
	} {
		res := sched.Schedule(g, sched.Config{Topo: tp, HopDelay: 1, Policy: pol, Seed: seed})
		out = append(out, PlacementAblation{Policy: pol, Result: res})
	}
	return out, nil
}

// DynamicAblation compares static list scheduling against the dynamic
// work-diffusion simulation of one cell's DAG — the two readings of
// Rediflow's execution model (paper [14]).
type DynamicAblation struct {
	Static  sched.Result
	Dynamic sched.Result
}

// RunDynamicAblation schedules one cell both ways.
func RunDynamicAblation(pct, rels int, tp topo.Topology, seed int64) (DynamicAblation, error) {
	g, _, err := traceCell(pct, rels, seed)
	if err != nil {
		return DynamicAblation{}, err
	}
	cfg := sched.Config{Topo: tp, HopDelay: 1, Policy: sched.PolicyPressure, Seed: seed}
	return DynamicAblation{
		Static:  sched.Schedule(g, cfg),
		Dynamic: sched.ScheduleDynamic(g, cfg),
	}, nil
}

// MergeOrderAblation compares the arrival-order merge against the
// relation-grouped merge (Section 2.4's "judicious ordering" future work,
// Ablation E).
type MergeOrderAblation struct {
	Arrival trace.Plies
	Grouped trace.Plies
}

// RunMergeOrderAblation builds per-client streams, merges them both ways,
// and traces both merged streams.
func RunMergeOrderAblation(pct, rels, clients int, seed int64) (MergeOrderAblation, error) {
	spec := workload.DefaultPaper(rels, pct, seed)
	txns, err := spec.TransactionStream()
	if err != nil {
		return MergeOrderAblation{}, err
	}
	// Deal the stream to clients round-robin (preserving order within each
	// client), then re-merge two ways.
	streams := make([][]core.Transaction, clients)
	for i, tx := range txns {
		c := i % clients
		tx.Origin = fmt.Sprintf("cli%d", c)
		tx.Seq = len(streams[c])
		streams[c] = append(streams[c], tx)
	}
	arrival := merge.Interleave(seed, streams...)
	grouped := merge.InterleaveByKey(func(tx core.Transaction) string { return tx.Rel }, streams...)

	ga := trace.New()
	core.ApplyStreamTraced(&eval.Ctx{Graph: ga}, spec.InitialDatabase(relation.RepList), arrival, core.TracedOptions{})
	gg := trace.New()
	core.ApplyStreamTraced(&eval.Ctx{Graph: gg}, spec.InitialDatabase(relation.RepList), grouped, core.TracedOptions{})
	return MergeOrderAblation{Arrival: ga.Analyze(), Grouped: gg.Analyze()}, nil
}

// ScaleSweep measures speedup for one workload cell across machine sizes —
// the machine-scaling view the paper implies between Tables II and III.
type ScalePoint struct {
	PEs     int
	Speedup float64
}

// RunHypercubeScaleSweep schedules a cell's DAG on hypercubes of dimension
// 0..maxDim.
func RunHypercubeScaleSweep(pct, rels, maxDim int, seed int64) ([]ScalePoint, error) {
	g, _, err := traceCell(pct, rels, seed)
	if err != nil {
		return nil, err
	}
	out := make([]ScalePoint, 0, maxDim+1)
	for d := 0; d <= maxDim; d++ {
		tp := topo.NewHypercube(d)
		res := sched.Schedule(g, sched.Config{Topo: tp, HopDelay: 1, Policy: sched.PolicyPressure, Seed: seed})
		out = append(out, ScalePoint{PEs: tp.Size(), Speedup: res.Speedup})
	}
	return out, nil
}

// Sequential materializes one cell's workload and runs it without tracing,
// for equivalence checks and benches.
func Sequential(pct, rels int, seed int64) (*database.Database, []core.Response, error) {
	spec := workload.DefaultPaper(rels, pct, seed)
	txns, err := spec.TransactionStream()
	if err != nil {
		return nil, nil, err
	}
	resp, final := core.ApplySequential(spec.InitialDatabase(relation.RepList), txns)
	return final, resp, nil
}
