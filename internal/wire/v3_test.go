// Protocol version 3 codecs: the epoch-stamped failover frames
// (Forward/Redirect epoch suffixes, slot-scoped Subscribe, epoch-prefixed
// LogRecord, Heartbeat) must survive arbitrary bytes without panicking,
// and their un-epoched fields must decode identically through the
// version-2 decoders — the interop contract that lets a v2 peer share a
// cluster with v3 nodes for non-failover traffic.
package wire

import (
	"bytes"
	"testing"
)

// sampleHeartbeat is a representative 3-slot view after one promotion.
func sampleHeartbeat() Heartbeat {
	return Heartbeat{
		From:    1,
		Epochs:  []uint64{0, 1, 0},
		Owners:  []int{0, 2, 2},
		Applied: []int64{41, 7, -1},
		Bases:   []int64{0, 5, 0},
	}
}

// TestWireV2V3Equivalence pins the cross-version contract: a version-3
// epoch suffix never disturbs the version-2 fields, and an un-epoched
// frame is byte-identical whichever encoder built it.
func TestWireV2V3Equivalence(t *testing.T) {
	stmts := []ForwardStmt{
		{Origin: "c0", Seq: 3, Query: `insert (1, "x") into R`},
		{Origin: "c0", Seq: 4, Query: "count R"},
	}

	// Forward: the v3 encoder without FwdEpoch is the v2 encoder.
	v2 := AppendForward(nil, 9, FwdNoForward, stmts)
	if v3 := AppendForwardE(nil, 9, FwdNoForward, 77, stmts); !bytes.Equal(v2, v3) {
		t.Fatalf("un-epoched v3 forward differs from v2: %x vs %x", v2, v3)
	}
	// A v2 decode of an epoch-stamped frame sees identical un-epoched
	// fields; a v3 decode of a v2 frame sees epoch 0.
	stamped := AppendForwardE(nil, 9, FwdNoForward|FwdEpoch, 77, stmts)
	id, flags, got, err := DecodeForward(stamped)
	if err != nil || id != 9 || flags&^FwdEpoch != FwdNoForward || len(got) != len(stmts) {
		t.Fatalf("v2 decode of epoched forward diverged: id=%d flags=%x err=%v", id, flags, err)
	}
	for i := range got {
		if got[i] != stmts[i] {
			t.Fatalf("stmt %d diverged: %+v vs %+v", i, got[i], stmts[i])
		}
	}
	if _, _, epoch, _, err := DecodeForwardE(v2); err != nil || epoch != 0 {
		t.Fatalf("v3 decode of v2 forward: epoch=%d err=%v", epoch, err)
	}
	if _, _, epoch, _, err := DecodeForwardE(stamped); err != nil || epoch != 77 {
		t.Fatalf("epoch did not survive: epoch=%d err=%v", epoch, err)
	}

	// Redirect: same discipline via an optional suffix.
	r2 := AppendRedirect(nil, 5, "10.0.0.7:4150", "R")
	r3 := AppendRedirectE(nil, 5, "10.0.0.7:4150", "R", 12)
	for _, buf := range [][]byte{r2, r3} {
		id, addr, rel, err := DecodeRedirect(buf)
		if err != nil || id != 5 || addr != "10.0.0.7:4150" || rel != "R" {
			t.Fatalf("redirect fields diverged (%x): %d %q %q %v", buf, id, addr, rel, err)
		}
	}
	if _, _, _, epoch, err := DecodeRedirectE(r2); err != nil || epoch != 0 {
		t.Fatalf("v2 redirect should carry epoch 0, got %d (%v)", epoch, err)
	}
	if _, _, _, epoch, err := DecodeRedirectE(r3); err != nil || epoch != 12 {
		t.Fatalf("redirect epoch did not survive: %d (%v)", epoch, err)
	}

	// Subscribe: a bare v2 payload decodes as an anonymous own-log
	// subscription; the v3 form is refused by a v2 decoder (version
	// negotiation keeps it off v2 connections).
	s2 := AppendSubscribe(nil, 41)
	after, slot, sub, err := DecodeSubscribeEx(s2)
	if err != nil || after != 41 || slot != -1 || sub != -1 {
		t.Fatalf("v2 subscribe through v3 decoder: %d %d %d %v", after, slot, sub, err)
	}
	s3 := AppendSubscribeFrom(nil, 41, 2, 0)
	if after, slot, sub, err = DecodeSubscribeEx(s3); err != nil || after != 41 || slot != 2 || sub != 0 {
		t.Fatalf("v3 subscribe: %d %d %d %v", after, slot, sub, err)
	}
	if _, err := DecodeSubscribe(s3); err == nil {
		t.Fatal("v2 decoder accepted a v3 subscribe payload")
	}

	// LogRecordE: an epoch prefix ahead of the unchanged v2 record bytes.
	record := []byte("archive-record-bytes")
	l3 := AppendLogRecordE(nil, 3, record)
	epoch, rec, err := DecodeLogRecordE(l3)
	if err != nil || epoch != 3 || !bytes.Equal(rec, record) {
		t.Fatalf("log record: epoch=%d rec=%q err=%v", epoch, rec, err)
	}
	if un := AppendLogRecordE(nil, 0, record); !bytes.Equal(un[1:], record) {
		t.Fatal("epoch-0 log record does not wrap the v2 payload unchanged")
	}
}

// FuzzDecodeForwardE: the epoch-aware forward decoder must never panic
// on arbitrary bytes; every successful decode must re-encode to the same
// fields, and the v2 view must agree on everything but the epoch.
func FuzzDecodeForwardE(f *testing.F) {
	f.Add(AppendForwardE(nil, 1, FwdNoForward|FwdEpoch, 2, []ForwardStmt{{Origin: "c0", Seq: 0, Query: "count R"}}))
	f.Add(AppendForwardE(nil, 7, FwdEpoch, 1<<40, []ForwardStmt{
		{Origin: "c1", Seq: 4, Query: `insert (1, "x") into S`},
		{Origin: "c1", Seq: 5, Query: "delete 1 from S"},
	}))
	f.Add(AppendForward(nil, 3, 0, nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, flags, epoch, stmts, err := DecodeForwardE(data)
		if err != nil {
			return
		}
		if flags&FwdEpoch == 0 && epoch != 0 {
			t.Fatalf("epoch %d without FwdEpoch", epoch)
		}
		id2, flags2, stmts2, err := DecodeForward(data)
		if err != nil || id2 != id || flags2 != flags || len(stmts2) != len(stmts) {
			t.Fatalf("v2 view diverged: %v", err)
		}
		again := AppendForwardE(nil, id, flags, epoch, stmts)
		id3, flags3, epoch3, stmts3, err := DecodeForwardE(again)
		if err != nil || id3 != id || flags3 != flags || epoch3 != epoch || len(stmts3) != len(stmts) {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeRedirectE: redirect payloads with and without the epoch
// suffix cross trust boundaries.
func FuzzDecodeRedirectE(f *testing.F) {
	f.Add(AppendRedirectE(nil, 3, "10.0.0.7:4150", "R", 2))
	f.Add(AppendRedirect(nil, 3, "10.0.0.7:4150", "R"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, addr, rel, epoch, err := DecodeRedirectE(data)
		if err != nil {
			return
		}
		id2, addr2, rel2, err := DecodeRedirect(data)
		if err != nil || id2 != id || addr2 != addr || rel2 != rel {
			t.Fatalf("v2 view diverged: %v", err)
		}
		again := AppendRedirectE(nil, id, addr, rel, epoch)
		id3, addr3, rel3, epoch3, err := DecodeRedirectE(again)
		if err != nil || id3 != id || addr3 != addr || rel3 != rel || epoch3 != epoch {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeLogRecordE: the epoch prefix must split off cleanly for any
// input; the record bytes pass through unchanged.
func FuzzDecodeLogRecordE(f *testing.F) {
	f.Add(AppendLogRecordE(nil, 1, []byte("record")))
	f.Add(AppendLogRecordE(nil, 0, nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		epoch, rec, err := DecodeLogRecordE(data)
		if err != nil {
			return
		}
		epoch2, rec2, err := DecodeLogRecordE(AppendLogRecordE(nil, epoch, rec))
		if err != nil || epoch2 != epoch || !bytes.Equal(rec2, rec) {
			t.Fatalf("re-decode diverged: epoch %d vs %d, %v", epoch, epoch2, err)
		}
	})
}

// FuzzDecodeHeartbeat: peer views are attacker-controlled input to every
// node's failure detector; hostile slot counts must not over-allocate.
func FuzzDecodeHeartbeat(f *testing.F) {
	f.Add(AppendHeartbeat(nil, sampleHeartbeat()))
	f.Add(AppendHeartbeat(nil, Heartbeat{From: 0}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		hb, err := DecodeHeartbeat(data)
		if err != nil {
			return
		}
		if len(hb.Owners) != len(hb.Epochs) || len(hb.Applied) != len(hb.Epochs) || len(hb.Bases) != len(hb.Epochs) {
			t.Fatal("decoded heartbeat with ragged slot vectors")
		}
		hb2, err := DecodeHeartbeat(AppendHeartbeat(nil, hb))
		if err != nil || hb2.From != hb.From || len(hb2.Epochs) != len(hb.Epochs) {
			t.Fatalf("re-decode diverged: %v", err)
		}
		for i := range hb.Epochs {
			if hb2.Epochs[i] != hb.Epochs[i] || hb2.Owners[i] != hb.Owners[i] ||
				hb2.Applied[i] != hb.Applied[i] || hb2.Bases[i] != hb.Bases[i] {
				t.Fatalf("slot %d diverged after re-encode", i)
			}
		}
	})
}

// FuzzDecodeSubscribeEx: both subscribe forms through the one decoder.
func FuzzDecodeSubscribeEx(f *testing.F) {
	f.Add(AppendSubscribe(nil, 41))
	f.Add(AppendSubscribeFrom(nil, 41, 2, 0))
	f.Add(AppendSubscribeFrom(nil, -1, -1, -1))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		after, slot, sub, err := DecodeSubscribeEx(data)
		if err != nil {
			return
		}
		var again []byte
		if slot == -1 && sub == -1 {
			again = AppendSubscribe(nil, after)
		} else {
			again = AppendSubscribeFrom(nil, after, slot, sub)
		}
		after2, slot2, sub2, err := DecodeSubscribeEx(again)
		if err != nil || after2 != after {
			t.Fatalf("re-decode diverged: %v", err)
		}
		// The bare form re-decodes to (-1,-1) by definition; the explicit
		// form must hold its fields.
		if !(slot == -1 && sub == -1) && (slot2 != slot || sub2 != sub) {
			t.Fatalf("slot/sub diverged: (%d,%d) vs (%d,%d)", slot, sub, slot2, sub2)
		}
	})
}
