package wire

import "sync"

const (
	// defaultBufCap seeds fresh pooled encode buffers: big enough for
	// any ping-pong-sized frame without a grow.
	defaultBufCap = 4 << 10
	// maxPooledCap is the largest buffer PutBuf will retain. A scan
	// response can grow a buffer to megabytes; returning it to the pool
	// would pin that memory behind every future FrameQuit. Oversized
	// buffers are dropped for the GC instead.
	maxPooledCap = 1 << 20
)

// Buf is a pooled encode buffer. Callers append frames to B (typically
// via AppendFrame or BeginFrame/EndFrame plus the payload appenders),
// write it out, and return it with PutBuf.
type Buf struct {
	B []byte
}

var bufPool = sync.Pool{
	New: func() any { return &Buf{B: make([]byte, 0, defaultBufCap)} },
}

// GetBuf returns an empty encode buffer from the pool.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf returns a buffer to the pool. Buffers grown past maxPooledCap
// are dropped so one large response cannot pin memory indefinitely.
func PutBuf(b *Buf) {
	if b == nil || cap(b.B) > maxPooledCap {
		return
	}
	bufPool.Put(b)
}
