// Protocol version 4 codecs: the prepared-statement frames
// (Prepare/Prepared/ExecPrepared/BatchPrepared/ForwardPrepared) must
// survive arbitrary bytes without panicking, their scratch-reusing Into
// decoders must agree with the naive reference decoders on every input,
// and — the cross-version contract — every version-3 encoding must be
// byte-identical to what a v3 node produces, so un-prepared traffic
// between mixed-version nodes never changes on the wire.
package wire

import (
	"bytes"
	"testing"

	"funcdb/internal/value"
)

// samplePreparedArgs is a representative positional-argument vector.
func samplePreparedArgs() []value.Item {
	return []value.Item{value.Int(42), value.Str("x"), value.Int(-7)}
}

// TestWireV3V4Equivalence pins the cross-version contract: version 4 is
// purely additive (five new frame types), so every frame a v3 node can
// emit must still encode byte-for-byte identically, and the v4 scratch
// decoders must agree with the naive ones field-for-field.
func TestWireV3V4Equivalence(t *testing.T) {
	if Version < 4 {
		t.Fatalf("wire.Version = %d, expected at least 4", Version)
	}

	// The v3 encodings are pinned byte-for-byte: golden frames captured
	// from the version-3 encoders. If any of these change, a v3 peer can
	// no longer parse this node's un-prepared traffic.
	golden := []struct {
		name string
		got  []byte
		want []byte
	}{
		{"exec", AppendExec(nil, 7, "count R"),
			[]byte("\x07\x07count R")},
		{"forward", AppendForward(nil, 9, FwdNoForward, []ForwardStmt{{Origin: "c0", Seq: 3, Query: "count R"}}),
			[]byte("\x09\x01\x01\x02c0\x06\x07count R")},
		{"forwardE", AppendForwardE(nil, 9, FwdNoForward|FwdEpoch, 5, []ForwardStmt{{Origin: "c0", Seq: 3, Query: "count R"}}),
			[]byte("\x09\x05\x01\x02c0\x06\x07count R\x05"),
		},
		{"redirectE", AppendRedirectE(nil, 5, "h:1", "R", 2),
			[]byte("\x05\x03h:1\x01R\x02")},
	}
	for _, g := range golden {
		if !bytes.Equal(g.got, g.want) {
			t.Fatalf("v3 %s encoding changed:\n got %x\nwant %x", g.name, g.got, g.want)
		}
	}

	// Hello/Welcome: a v3 hello decodes under v4 (version auto-fills to
	// the node's own revision at encode time, and older is accepted).
	hello := AppendHello(nil, Hello{Version: 3, Origin: "c9", Database: "main"})
	h, err := DecodeHello(hello)
	if err != nil || h.Version != 3 || h.Origin != "c9" || h.Database != "main" {
		t.Fatalf("v3 hello through v4 decoder: %+v err=%v", h, err)
	}
	w, err := DecodeWelcome(AppendWelcome(nil, Welcome{Version: 3, Origin: "conn1", Lanes: 4, Database: "main"}))
	if err != nil || w.Version != 3 || w.Lanes != 4 {
		t.Fatalf("v3 welcome through v4 decoder: %+v err=%v", w, err)
	}

	// Prepare/Prepared round-trip.
	id, text, err := DecodePrepare(AppendPrepare(nil, 3, "find ? in R"))
	if err != nil || id != 3 || text != "find ? in R" {
		t.Fatalf("prepare round-trip: id=%d text=%q err=%v", id, text, err)
	}
	rid, stmt, np, err := DecodePrepared(AppendPrepared(nil, 3, 17, 1))
	if err != nil || rid != 3 || stmt != 17 || np != 1 {
		t.Fatalf("prepared round-trip: %d %d %d %v", rid, stmt, np, err)
	}

	// ExecPrepared: the naive decoder and the scratch decoder agree, and
	// scratch reuse across decodes never bleeds earlier arguments in.
	args := samplePreparedArgs()
	ep, err := AppendExecPrepared(nil, 11, 17, args)
	if err != nil {
		t.Fatal(err)
	}
	nid, nstmt, nargs, err := DecodeExecPrepared(ep)
	if err != nil || nid != 11 || nstmt != 17 || len(nargs) != len(args) {
		t.Fatalf("naive exec-prepared decode: %d %d %d %v", nid, nstmt, len(nargs), err)
	}
	scratch := make([]value.Item, 0, 8)
	for round := 0; round < 3; round++ {
		sid, sstmt, sargs, err := DecodeExecPreparedInto(ep, scratch[:0])
		if err != nil || sid != nid || sstmt != nstmt || len(sargs) != len(nargs) {
			t.Fatalf("scratch decode diverged round %d: %v", round, err)
		}
		for i := range nargs {
			if sargs[i] != nargs[i] {
				t.Fatalf("arg %d diverged: %+v vs %+v", i, sargs[i], nargs[i])
			}
		}
		scratch = sargs
	}

	// BatchPrepared: Args views must remain valid and correct even when
	// the shared item scratch grows (append-realloc safety).
	calls := []PreparedCall{
		{Stmt: 1, Args: args},
		{Stmt: 2, Args: nil},
		{Stmt: 1, Args: []value.Item{value.Str("long-enough-to-force-item-growth"), value.Int(1), value.Int(2), value.Int(3)}},
	}
	bp, err := AppendBatchPrepared(nil, 13, calls)
	if err != nil {
		t.Fatal(err)
	}
	bid, ncalls, err := DecodeBatchPrepared(bp)
	if err != nil || bid != 13 || len(ncalls) != len(calls) {
		t.Fatalf("naive batch-prepared decode: %d %d %v", bid, len(ncalls), err)
	}
	sbid, scalls, _, err := DecodeBatchPreparedInto(bp, nil, make([]value.Item, 0, 1))
	if err != nil || sbid != bid || len(scalls) != len(ncalls) {
		t.Fatalf("scratch batch-prepared decode: %v", err)
	}
	for i := range ncalls {
		if scalls[i].Stmt != ncalls[i].Stmt || len(scalls[i].Args) != len(ncalls[i].Args) {
			t.Fatalf("call %d diverged: %+v vs %+v", i, scalls[i], ncalls[i])
		}
		for j := range ncalls[i].Args {
			if scalls[i].Args[j] != ncalls[i].Args[j] {
				t.Fatalf("call %d arg %d diverged", i, j)
			}
		}
	}

	// ForwardPrepared: the epoch-suffix discipline matches ForwardE, and
	// hash/text resolution fields survive both decoders.
	stmts := []PreparedFwdStmt{
		{Origin: "c0", Seq: 3, Hash: 0xdeadbeefcafe, Text: "find ? in R", HasText: true, Args: args[:1]},
		{Origin: "c0", Seq: 4, Stmt: 9, Hash: 0xdeadbeefcafe, Args: args[1:]},
	}
	plain, err := AppendForwardPrepared(nil, 21, FwdNoForward, 0, stmts)
	if err != nil {
		t.Fatal(err)
	}
	stamped, err := AppendForwardPrepared(nil, 21, FwdNoForward|FwdEpoch, 77, stmts)
	if err != nil {
		t.Fatal(err)
	}
	// The stamped frame is the plain frame with the FwdEpoch bit set (the
	// flags byte sits right after the 1-byte id varint) plus the epoch
	// varint suffix — nothing in between moves.
	patched := append([]byte(nil), plain...)
	patched[1] |= FwdEpoch
	patched = append(patched, 77)
	if !bytes.Equal(patched, stamped) {
		t.Fatalf("epoch suffix disturbed the preceding forward-prepared bytes:\n got %x\nwant %x", stamped, patched)
	}
	fid, fflags, fepoch, fstmts, err := DecodeForwardPrepared(stamped)
	if err != nil || fid != 21 || fflags != FwdNoForward|FwdEpoch || fepoch != 77 || len(fstmts) != 2 {
		t.Fatalf("forward-prepared decode: id=%d flags=%x epoch=%d n=%d err=%v", fid, fflags, fepoch, len(fstmts), err)
	}
	_, _, _, sstmts, _, err := DecodeForwardPreparedInto(stamped, nil, nil)
	if err != nil || len(sstmts) != len(fstmts) {
		t.Fatalf("scratch forward-prepared decode: %v", err)
	}
	for i := range fstmts {
		a, b := fstmts[i], sstmts[i]
		if a.Origin != b.Origin || a.Seq != b.Seq || a.Stmt != b.Stmt || a.Hash != b.Hash ||
			a.Text != b.Text || a.HasText != b.HasText || len(a.Args) != len(b.Args) {
			t.Fatalf("forward-prepared stmt %d diverged:\n%+v\n%+v", i, a, b)
		}
	}
	if fstmts[0].Hash != 0xdeadbeefcafe || !fstmts[0].HasText || fstmts[1].Stmt != 9 || fstmts[1].HasText {
		t.Fatalf("resolution fields did not survive: %+v", fstmts)
	}
}

// FuzzDecodePrepare: prepare payloads cross the trust boundary from any
// client; the decoder must never panic and every accepted payload must
// round-trip.
func FuzzDecodePrepare(f *testing.F) {
	f.Add(AppendPrepare(nil, 1, "find ? in R"))
	f.Add(AppendPrepare(nil, 0, ""))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, text, err := DecodePrepare(data)
		if err != nil {
			return
		}
		id2, text2, err := DecodePrepare(AppendPrepare(nil, id, text))
		if err != nil || id2 != id || text2 != text {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeExecPrepared: the hot-path decoder and its scratch variant
// must agree on every input, accepted or refused, and accepted payloads
// must round-trip through the encoder.
func FuzzDecodeExecPrepared(f *testing.F) {
	seed, _ := AppendExecPrepared(nil, 1, 2, samplePreparedArgs())
	f.Add(seed)
	empty, _ := AppendExecPrepared(nil, 0, 0, nil)
	f.Add(empty)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, stmt, args, err := DecodeExecPrepared(data)
		sid, sstmt, sargs, serr := DecodeExecPreparedInto(data, make([]value.Item, 0, 4))
		if (err == nil) != (serr == nil) {
			t.Fatalf("decoders disagree on acceptance: %v vs %v", err, serr)
		}
		if err != nil {
			return
		}
		if sid != id || sstmt != stmt || len(sargs) != len(args) {
			t.Fatal("scratch decode diverged from naive decode")
		}
		for i := range args {
			if sargs[i] != args[i] {
				t.Fatalf("arg %d diverged", i)
			}
		}
		again, aerr := AppendExecPrepared(nil, id, stmt, args)
		if aerr != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", aerr)
		}
		id2, stmt2, args2, err := DecodeExecPrepared(again)
		if err != nil || id2 != id || stmt2 != stmt || len(args2) != len(args) {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeBatchPrepared: hostile call counts must not over-allocate,
// and the scratch decoder's aliased Args views must match the naive
// decoder's fresh slices exactly.
func FuzzDecodeBatchPrepared(f *testing.F) {
	seed, _ := AppendBatchPrepared(nil, 1, []PreparedCall{
		{Stmt: 1, Args: samplePreparedArgs()},
		{Stmt: 2},
	})
	f.Add(seed)
	empty, _ := AppendBatchPrepared(nil, 0, nil)
	f.Add(empty)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, calls, err := DecodeBatchPrepared(data)
		sid, scalls, _, serr := DecodeBatchPreparedInto(data, nil, nil)
		if (err == nil) != (serr == nil) {
			t.Fatalf("decoders disagree on acceptance: %v vs %v", err, serr)
		}
		if err != nil {
			return
		}
		if sid != id || len(scalls) != len(calls) {
			t.Fatal("scratch decode diverged from naive decode")
		}
		for i := range calls {
			if scalls[i].Stmt != calls[i].Stmt || len(scalls[i].Args) != len(calls[i].Args) {
				t.Fatalf("call %d diverged", i)
			}
			for j := range calls[i].Args {
				if scalls[i].Args[j] != calls[i].Args[j] {
					t.Fatalf("call %d arg %d diverged", i, j)
				}
			}
		}
		again, aerr := AppendBatchPrepared(nil, id, calls)
		if aerr != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", aerr)
		}
		id2, calls2, err := DecodeBatchPrepared(again)
		if err != nil || id2 != id || len(calls2) != len(calls) {
			t.Fatalf("re-decode diverged: %v", err)
		}
	})
}

// FuzzDecodeForwardPrepared: node-to-node prepared forwards carry the
// epoch suffix, the hash/text resolution fields, and attacker-reachable
// counts; the decoder must hold all three invariants on arbitrary bytes.
func FuzzDecodeForwardPrepared(f *testing.F) {
	seed, _ := AppendForwardPrepared(nil, 1, FwdNoForward, 0, []PreparedFwdStmt{
		{Origin: "c0", Seq: 0, Hash: 7, Text: "count R", HasText: true},
	})
	f.Add(seed)
	stamped, _ := AppendForwardPrepared(nil, 2, FwdNoForward|FwdEpoch, 1<<40, []PreparedFwdStmt{
		{Origin: "c1", Seq: 4, Stmt: 3, Hash: 9, Args: samplePreparedArgs()},
	})
	f.Add(stamped)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		id, flags, epoch, stmts, err := DecodeForwardPrepared(data)
		if err != nil {
			return
		}
		if flags&FwdEpoch == 0 && epoch != 0 {
			t.Fatalf("epoch %d without FwdEpoch", epoch)
		}
		for i := range stmts {
			if !stmts[i].HasText && stmts[i].Text != "" {
				t.Fatalf("stmt %d carries text without HasText", i)
			}
		}
		again, aerr := AppendForwardPrepared(nil, id, flags, epoch, stmts)
		if aerr != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", aerr)
		}
		id2, flags2, epoch2, stmts2, err := DecodeForwardPrepared(again)
		if err != nil || id2 != id || flags2 != flags || epoch2 != epoch || len(stmts2) != len(stmts) {
			t.Fatalf("re-decode diverged: %v", err)
		}
		for i := range stmts {
			a, b := stmts[i], stmts2[i]
			if a.Origin != b.Origin || a.Seq != b.Seq || a.Stmt != b.Stmt || a.Hash != b.Hash ||
				a.Text != b.Text || a.HasText != b.HasText || len(a.Args) != len(b.Args) {
				t.Fatalf("stmt %d diverged after re-encode", i)
			}
		}
	})
}

// TestExecPreparedDecodeAllocGate is the regression gate CI's bench-smoke
// job runs: decoding a prepared execution into warm per-connection
// scratch allocates NOTHING, amortized — the property that lets the
// server's hot path run parse-free and allocation-free.
func TestExecPreparedDecodeAllocGate(t *testing.T) {
	payload, err := AppendExecPrepared(nil, 11, 17, samplePreparedArgs())
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]value.Item, 0, 8)
	for i := 0; i < 16; i++ { // warm the scratch to the payload's width
		if _, _, scratch, err = DecodeExecPreparedInto(payload, scratch[:0]); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		var derr error
		if _, _, scratch, derr = DecodeExecPreparedInto(payload, scratch[:0]); derr != nil {
			t.Fatal(derr)
		}
	})
	if avg >= 0.5 {
		t.Fatalf("steady-state exec-prepared decode allocates %.2f/frame, want 0 amortized", avg)
	}
}

// TestExecPreparedEncodeAllocGate: assembling a prepared execution into a
// pre-grown request buffer allocates at most one object per frame (and in
// practice zero) — the client-side half of the parse-free hot path.
func TestExecPreparedEncodeAllocGate(t *testing.T) {
	args := samplePreparedArgs()
	buf := make([]byte, 0, 256)
	avg := testing.AllocsPerRun(200, func() {
		b, mark := BeginFrame(buf[:0], FrameExecPrepared)
		var err error
		if b, err = AppendExecPrepared(b, 11, 17, args); err != nil {
			t.Fatal(err)
		}
		if _, err = EndFrame(b, mark); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 1.0 {
		t.Fatalf("steady-state exec-prepared encode allocates %.2f/frame, want <= 1", avg)
	}
}

// TestBatchPreparedDecodeNoAlloc: the batch decoder reuses both scratches
// with zero steady-state allocation, Args views included.
func TestBatchPreparedDecodeNoAlloc(t *testing.T) {
	payload, err := AppendBatchPrepared(nil, 5, []PreparedCall{
		{Stmt: 1, Args: samplePreparedArgs()},
		{Stmt: 1, Args: samplePreparedArgs()[:1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	var calls []PreparedCall
	var items []value.Item
	for i := 0; i < 16; i++ {
		if _, calls, items, err = DecodeBatchPreparedInto(payload, calls[:0], items[:0]); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		var derr error
		if _, calls, items, derr = DecodeBatchPreparedInto(payload, calls[:0], items[:0]); derr != nil {
			t.Fatal(derr)
		}
	})
	if avg >= 0.5 {
		t.Fatalf("steady-state batch-prepared decode allocates %.2f/frame, want 0 amortized", avg)
	}
}
