package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"funcdb/internal/core"
	"funcdb/internal/value"
)

// Message payload codecs, built on the internal/value primitives (the
// same self-delimiting strings, items and tuples the archive logs).

// DefaultDatabase is the database name a version-1 Hello (which has no
// database field) implies, and the name a single-store server hosts its
// store under.
const DefaultDatabase = "main"

// Hello is the client's opening message.
type Hello struct {
	// Origin is the tag the server stamps on the connection's
	// transactions ("" lets the server pick one).
	Origin string
	// Database names the store this connection executes against
	// (version 2; "" and version-1 peers mean DefaultDatabase).
	Database string
	// Version is the peer's protocol revision: set by DecodeHello so the
	// server can gate version-3 extensions (epoch-stamped Redirects,
	// LogRecordE streams) per connection. AppendHello writes the current
	// Version when zero; tests may pin an older revision explicitly.
	Version byte
}

// AppendHello encodes a Hello payload.
func AppendHello(dst []byte, h Hello) []byte {
	ver := h.Version
	if ver == 0 {
		ver = Version
	}
	dst = append(dst, Magic...)
	dst = append(dst, ver)
	dst = value.AppendString(dst, h.Origin)
	if ver >= 2 {
		dst = value.AppendString(dst, h.Database)
	}
	return dst
}

// DecodeHello decodes a Hello payload. Version-1 payloads (no database
// field) are still accepted: their database defaults to DefaultDatabase,
// so a pre-cluster client keeps working against a multi-store listener.
// Version 2 and 3 share one layout — version 3 only unlocks the failover
// frames and field extensions elsewhere in the protocol.
func DecodeHello(buf []byte) (Hello, error) {
	if len(buf) < len(Magic)+1 || string(buf[:len(Magic)]) != Magic {
		return Hello{}, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	buf = buf[len(Magic):]
	ver := buf[0]
	if ver < 1 || ver > Version {
		return Hello{}, fmt.Errorf("wire: protocol version %d not supported", ver)
	}
	origin, rest, err := value.DecodeString(buf[1:])
	if err != nil {
		return Hello{}, fmt.Errorf("%w: bad hello origin", ErrCorrupt)
	}
	h := Hello{Origin: origin, Database: DefaultDatabase, Version: ver}
	if ver >= 2 {
		db, rest2, err := value.DecodeString(rest)
		if err != nil || len(rest2) != 0 {
			return Hello{}, fmt.Errorf("%w: bad hello database", ErrCorrupt)
		}
		if db != "" {
			h.Database = db
		}
		return h, nil
	}
	if len(rest) != 0 {
		return Hello{}, fmt.Errorf("%w: bad hello origin", ErrCorrupt)
	}
	return h, nil
}

// Welcome is the server's handshake acknowledgment.
type Welcome struct {
	// Lanes is the server store's admission lane count.
	Lanes int
	// Durable reports whether the server store writes an archive.
	Durable bool
	// Origin echoes the tag the server assigned to the connection.
	Origin string
	// Database echoes the store name the connection was bound to
	// (version 2; version-1 peers imply DefaultDatabase).
	Database string
	// Version is the server's protocol revision, set by DecodeWelcome (a
	// client knows from it whether the server speaks the failover
	// extensions). AppendWelcome writes the current Version when zero.
	Version byte
}

// AppendWelcome encodes a Welcome payload.
func AppendWelcome(dst []byte, w Welcome) []byte {
	ver := w.Version
	if ver == 0 {
		ver = Version
	}
	dst = append(dst, ver)
	dst = binary.AppendVarint(dst, int64(w.Lanes))
	if w.Durable {
		dst = append(dst, 1)
	} else {
		dst = append(dst, 0)
	}
	dst = value.AppendString(dst, w.Origin)
	if ver >= 2 {
		dst = value.AppendString(dst, w.Database)
	}
	return dst
}

// DecodeWelcome decodes a Welcome payload (version-1 payloads, which
// lack the database echo, are accepted and imply DefaultDatabase).
func DecodeWelcome(buf []byte) (Welcome, error) {
	if len(buf) < 1 {
		return Welcome{}, fmt.Errorf("%w: empty welcome", ErrCorrupt)
	}
	ver := buf[0]
	if ver < 1 || ver > Version {
		return Welcome{}, fmt.Errorf("wire: protocol version %d not supported", ver)
	}
	buf = buf[1:]
	lanes, n := binary.Varint(buf)
	if n <= 0 || len(buf[n:]) < 1 {
		return Welcome{}, fmt.Errorf("%w: bad welcome", ErrCorrupt)
	}
	durable := buf[n] == 1
	origin, rest, err := value.DecodeString(buf[n+1:])
	if err != nil {
		return Welcome{}, fmt.Errorf("%w: bad welcome origin", ErrCorrupt)
	}
	w := Welcome{Lanes: int(lanes), Durable: durable, Origin: origin, Database: DefaultDatabase, Version: ver}
	if ver >= 2 {
		db, rest2, err := value.DecodeString(rest)
		if err != nil || len(rest2) != 0 {
			return Welcome{}, fmt.Errorf("%w: bad welcome database", ErrCorrupt)
		}
		if db != "" {
			w.Database = db
		}
		return w, nil
	}
	if len(rest) != 0 {
		return Welcome{}, fmt.Errorf("%w: bad welcome origin", ErrCorrupt)
	}
	return w, nil
}

// AppendExec encodes a FrameExec payload: request id + query text.
func AppendExec(dst []byte, id uint64, query string) []byte {
	dst = binary.AppendUvarint(dst, id)
	return value.AppendString(dst, query)
}

// DecodeExec decodes a FrameExec payload.
func DecodeExec(buf []byte) (id uint64, query string, err error) {
	id, query, rest, err := decodeExecTail(buf)
	if err == nil && len(rest) != 0 {
		return 0, "", fmt.Errorf("%w: bad exec query", ErrCorrupt)
	}
	return id, query, err
}

// decodeExecTail decodes the exec fields and returns the unconsumed
// tail: the shared core under DecodeExec (which requires an empty tail)
// and DecodeExecT (which accepts a version-5 trace-context suffix).
func decodeExecTail(buf []byte) (id uint64, query string, rest []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, "", nil, fmt.Errorf("%w: bad request id", ErrCorrupt)
	}
	if query, rest, err = value.DecodeString(buf[n:]); err != nil {
		return 0, "", nil, fmt.Errorf("%w: bad exec query", ErrCorrupt)
	}
	return id, query, rest, nil
}

// AppendBatch encodes a FrameBatch payload: request id + count + queries.
func AppendBatch(dst []byte, id uint64, queries []string) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(queries)))
	for _, q := range queries {
		dst = value.AppendString(dst, q)
	}
	return dst
}

// DecodeBatch decodes a FrameBatch payload.
func DecodeBatch(buf []byte) (id uint64, queries []string, err error) {
	id, queries, rest, err := decodeBatchTail(buf)
	if err == nil && len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return id, queries, err
}

// decodeBatchTail decodes the batch fields and returns the unconsumed
// tail (see decodeExecTail).
func decodeBatchTail(buf []byte) (id uint64, queries []string, rest []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, nil, fmt.Errorf("%w: bad request id", ErrCorrupt)
	}
	buf = buf[n:]
	count, n := binary.Uvarint(buf)
	if n <= 0 || count > uint64(len(buf)) {
		return 0, nil, nil, fmt.Errorf("%w: bad batch count", ErrCorrupt)
	}
	buf = buf[n:]
	queries = make([]string, 0, count)
	for i := uint64(0); i < count; i++ {
		var q string
		if q, buf, err = value.DecodeString(buf); err != nil {
			return 0, nil, nil, fmt.Errorf("%w: bad batch query", ErrCorrupt)
		}
		queries = append(queries, q)
	}
	return id, queries, buf, nil
}

// AppendErrorMsg encodes a FrameError payload: request id, failing
// statement index (-1 when the request was not a batch), message text.
func AppendErrorMsg(dst []byte, id uint64, index int, msg string) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendVarint(dst, int64(index))
	return value.AppendString(dst, msg)
}

// DecodeErrorMsg decodes a FrameError payload.
func DecodeErrorMsg(buf []byte) (id uint64, index int, msg string, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, "", fmt.Errorf("%w: bad request id", ErrCorrupt)
	}
	buf = buf[n:]
	idx, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, "", fmt.Errorf("%w: bad error index", ErrCorrupt)
	}
	msg, rest, err := value.DecodeString(buf[n:])
	if err != nil || len(rest) != 0 {
		return 0, 0, "", fmt.Errorf("%w: bad error message", ErrCorrupt)
	}
	return id, int(idx), msg, nil
}

// Response flag bits.
const (
	respFound  = 1 << 0
	respErr    = 1 << 1
	respNote   = 1 << 2
	respTuple  = 1 << 3
	respTuples = 1 << 4
)

// AppendResponse encodes one core.Response:
//
//	resp := origin:string seq:varint kind:uint8 flags:uint8
//	        count:varint version:varint
//	        [tuple] [ntuples:uvarint tuples] [err:string] [note:string]
//
// An operation-level error crosses the wire as its text; the client
// rebuilds an opaque error with identical text, so a response renders
// byte-identically on both sides of the connection (error *identity* —
// errors.Is against sentinel values — does not cross, and is documented
// as a local-only affordance).
func AppendResponse(dst []byte, r core.Response) ([]byte, error) {
	dst = value.AppendString(dst, r.Origin)
	dst = binary.AppendVarint(dst, int64(r.Seq))
	dst = append(dst, byte(r.Kind))
	var flags byte
	if r.Found {
		flags |= respFound
	}
	if r.Err != nil {
		flags |= respErr
	}
	if r.Note != "" {
		flags |= respNote
	}
	if !r.Tuple.IsZero() {
		flags |= respTuple
	}
	if len(r.Tuples) > 0 {
		flags |= respTuples
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, int64(r.Count))
	dst = binary.AppendVarint(dst, r.Version)
	var err error
	if flags&respTuple != 0 {
		if dst, err = value.AppendTuple(dst, r.Tuple); err != nil {
			return dst, err
		}
	}
	if flags&respTuples != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(r.Tuples)))
		for _, tu := range r.Tuples {
			if dst, err = value.AppendTuple(dst, tu); err != nil {
				return dst, err
			}
		}
	}
	if flags&respErr != 0 {
		dst = value.AppendString(dst, r.Err.Error())
	}
	if flags&respNote != 0 {
		dst = value.AppendString(dst, r.Note)
	}
	return dst, nil
}

// DecodeResponse decodes one response from the front of buf, returning
// the remaining bytes (responses concatenate inside a batch frame).
func DecodeResponse(buf []byte) (core.Response, []byte, error) {
	fail := func(what string) (core.Response, []byte, error) {
		return core.Response{}, buf, fmt.Errorf("%w: response: bad %s", ErrCorrupt, what)
	}
	var r core.Response
	origin, buf, err := value.DecodeString(buf)
	if err != nil {
		return fail("origin")
	}
	r.Origin = origin
	seq, n := binary.Varint(buf)
	if n <= 0 {
		return fail("seq")
	}
	buf = buf[n:]
	if len(buf) < 2 {
		return fail("kind")
	}
	r.Seq = int(seq)
	r.Kind = core.Kind(buf[0])
	flags := buf[1]
	buf = buf[2:]
	count, n := binary.Varint(buf)
	if n <= 0 {
		return fail("count")
	}
	buf = buf[n:]
	r.Count = int(count)
	version, n := binary.Varint(buf)
	if n <= 0 {
		return fail("version")
	}
	buf = buf[n:]
	r.Version = version
	r.Found = flags&respFound != 0
	if flags&respTuple != 0 {
		if r.Tuple, buf, err = value.DecodeTuple(buf); err != nil {
			return fail("tuple")
		}
	}
	if flags&respTuples != 0 {
		ntuples, n := binary.Uvarint(buf)
		if n <= 0 || ntuples > uint64(len(buf)) {
			return fail("tuple count")
		}
		buf = buf[n:]
		r.Tuples = make([]value.Tuple, 0, ntuples)
		for i := uint64(0); i < ntuples; i++ {
			var tu value.Tuple
			if tu, buf, err = value.DecodeTuple(buf); err != nil {
				return fail("tuples")
			}
			r.Tuples = append(r.Tuples, tu)
		}
	}
	if flags&respErr != 0 {
		var msg string
		if msg, buf, err = value.DecodeString(buf); err != nil {
			return fail("error")
		}
		r.Err = errors.New(msg)
	}
	if flags&respNote != 0 {
		if r.Note, buf, err = value.DecodeString(buf); err != nil {
			return fail("note")
		}
	}
	return r, buf, nil
}

// AppendResponses encodes a batch reply: request id, count, responses.
func AppendResponses(dst []byte, id uint64, resps []core.Response) ([]byte, error) {
	dst = binary.AppendUvarint(dst, id)
	dst = binary.AppendUvarint(dst, uint64(len(resps)))
	var err error
	for _, r := range resps {
		if dst, err = AppendResponse(dst, r); err != nil {
			return dst, err
		}
	}
	return dst, nil
}

// DecodeResponses decodes a batch reply.
func DecodeResponses(buf []byte) (id uint64, resps []core.Response, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad request id", ErrCorrupt)
	}
	buf = buf[n:]
	count, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad response count", ErrCorrupt)
	}
	buf = buf[n:]
	// A response is at least 6 bytes; a count beyond that is corrupt (and
	// the check guards allocation on corrupt counts).
	if count > uint64(len(buf))/6+1 {
		return 0, nil, fmt.Errorf("%w: response count %d exceeds buffer", ErrCorrupt, count)
	}
	resps = make([]core.Response, 0, count)
	for i := uint64(0); i < count; i++ {
		var r core.Response
		if r, buf, err = DecodeResponse(buf); err != nil {
			return 0, nil, err
		}
		resps = append(resps, r)
	}
	if len(buf) != 0 {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return id, resps, nil
}

// ForwardStmt is one pre-tagged statement inside a FrameForward payload.
// The tag (Origin, Seq) was assigned by the sender's session — the
// receiver executes without retagging, so the response carries the tag
// the originating client expects.
type ForwardStmt struct {
	Origin string
	Seq    int
	Query  string
}

// AppendForward encodes a FrameForward payload:
//
//	fwd := id:uvarint flags:uint8 count:uvarint
//	       (origin:string seq:varint query:string)*
//	       [epoch:uvarint]                         (iff flags&FwdEpoch)
func AppendForward(dst []byte, id uint64, flags byte, stmts []ForwardStmt) []byte {
	return AppendForwardE(dst, id, flags&^(FwdEpoch|FwdTrace), 0, stmts)
}

// AppendForwardE encodes a FrameForward payload carrying the sender's
// epoch for the statements' slot (protocol version 3): the epoch varint
// trails the statements and is announced by FwdEpoch, so a version-2
// frame's byte layout is untouched. A FwdTrace sender must use
// AppendForwardT, which also writes the trace suffix.
func AppendForwardE(dst []byte, id uint64, flags byte, epoch uint64, stmts []ForwardStmt) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(stmts)))
	for _, st := range stmts {
		dst = value.AppendString(dst, st.Origin)
		dst = binary.AppendVarint(dst, int64(st.Seq))
		dst = value.AppendString(dst, st.Query)
	}
	if flags&FwdEpoch != 0 {
		dst = binary.AppendUvarint(dst, epoch)
	}
	return dst
}

// DecodeForward decodes a FrameForward payload, tolerating (and
// discarding) a version-3 epoch suffix — the un-epoched fields decode
// identically to DecodeForwardE.
func DecodeForward(buf []byte) (id uint64, flags byte, stmts []ForwardStmt, err error) {
	id, flags, _, stmts, err = DecodeForwardE(buf)
	return id, flags, stmts, err
}

// DecodeForwardE decodes a FrameForward payload together with its epoch
// suffix. epoch is meaningful only when flags&FwdEpoch is set (a
// version-2 sender never sets it). A FwdTrace-flagged payload fails here
// (its trace suffix reads as trailing bytes) — a version-5 receiver uses
// DecodeForwardT.
func DecodeForwardE(buf []byte) (id uint64, flags byte, epoch uint64, stmts []ForwardStmt, err error) {
	id, flags, epoch, stmts, rest, err := decodeForwardTail(buf)
	if err == nil && len(rest) != 0 {
		return 0, 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return id, flags, epoch, stmts, err
}

// decodeForwardTail decodes the forward fields — including the FwdEpoch
// suffix when flagged — and returns the unconsumed tail (see
// decodeExecTail).
func decodeForwardTail(buf []byte) (id uint64, flags byte, epoch uint64, stmts []ForwardStmt, rest []byte, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 || len(buf[n:]) < 1 {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: bad forward id", ErrCorrupt)
	}
	flags = buf[n]
	buf = buf[n+1:]
	count, n := binary.Uvarint(buf)
	// A statement is at least 3 bytes (two empty strings + a seq varint);
	// a count beyond that is corrupt, and the check bounds the allocation
	// a hostile count field can force before per-statement validation.
	if n <= 0 || count > uint64(len(buf))/3+1 {
		return 0, 0, 0, nil, nil, fmt.Errorf("%w: bad forward count", ErrCorrupt)
	}
	buf = buf[n:]
	stmts = make([]ForwardStmt, 0, count)
	for i := uint64(0); i < count; i++ {
		var st ForwardStmt
		if st.Origin, buf, err = value.DecodeString(buf); err != nil {
			return 0, 0, 0, nil, nil, fmt.Errorf("%w: bad forward origin", ErrCorrupt)
		}
		seq, n := binary.Varint(buf)
		if n <= 0 {
			return 0, 0, 0, nil, nil, fmt.Errorf("%w: bad forward seq", ErrCorrupt)
		}
		st.Seq = int(seq)
		buf = buf[n:]
		if st.Query, buf, err = value.DecodeString(buf); err != nil {
			return 0, 0, 0, nil, nil, fmt.Errorf("%w: bad forward query", ErrCorrupt)
		}
		stmts = append(stmts, st)
	}
	if flags&FwdEpoch != 0 {
		var n int
		epoch, n = binary.Uvarint(buf)
		if n <= 0 {
			return 0, 0, 0, nil, nil, fmt.Errorf("%w: bad forward epoch", ErrCorrupt)
		}
		buf = buf[n:]
	}
	return id, flags, epoch, stmts, buf, nil
}

// AppendRedirect encodes a FrameRedirect payload: request id, the owning
// node's address, and the relation whose placement is being reported.
func AppendRedirect(dst []byte, id uint64, addr, rel string) []byte {
	dst = binary.AppendUvarint(dst, id)
	dst = value.AppendString(dst, addr)
	return value.AppendString(dst, rel)
}

// AppendRedirectE encodes a FrameRedirect payload with the owner's
// serving epoch appended (protocol version 3): the receiver updates its
// placement cache only when the epoch is at least as new as what it
// already knows. Sent only on version-3 connections — a version-2
// decoder would reject the trailing bytes.
func AppendRedirectE(dst []byte, id uint64, addr, rel string, epoch uint64) []byte {
	dst = AppendRedirect(dst, id, addr, rel)
	return binary.AppendUvarint(dst, epoch)
}

// DecodeRedirect decodes a FrameRedirect payload, tolerating (and
// discarding) a version-3 epoch suffix.
func DecodeRedirect(buf []byte) (id uint64, addr, rel string, err error) {
	id, addr, rel, _, err = DecodeRedirectE(buf)
	return id, addr, rel, err
}

// DecodeRedirectE decodes a FrameRedirect payload together with its
// optional epoch suffix (epoch 0 means the sender did not stamp one —
// epoch numbering starts at 1 on the first promotion).
func DecodeRedirectE(buf []byte) (id uint64, addr, rel string, epoch uint64, err error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, "", "", 0, fmt.Errorf("%w: bad redirect id", ErrCorrupt)
	}
	addr, buf, err = value.DecodeString(buf[n:])
	if err != nil {
		return 0, "", "", 0, fmt.Errorf("%w: bad redirect address", ErrCorrupt)
	}
	rel, buf, err = value.DecodeString(buf)
	if err != nil {
		return 0, "", "", 0, fmt.Errorf("%w: bad redirect relation", ErrCorrupt)
	}
	if len(buf) > 0 {
		epoch, n = binary.Uvarint(buf)
		if n <= 0 || n != len(buf) {
			return 0, "", "", 0, fmt.Errorf("%w: bad redirect epoch", ErrCorrupt)
		}
	}
	return id, addr, rel, epoch, nil
}

// AppendSubscribe encodes a FrameSubscribe payload: stream committed
// transaction records with sequence > after.
func AppendSubscribe(dst []byte, after int64) []byte {
	return binary.AppendVarint(dst, after)
}

// DecodeSubscribe decodes a FrameSubscribe payload.
func DecodeSubscribe(buf []byte) (after int64, err error) {
	after, n := binary.Varint(buf)
	if n <= 0 || n != len(buf) {
		return 0, fmt.Errorf("%w: bad subscribe position", ErrCorrupt)
	}
	return after, nil
}

// AppendSubscribeFrom encodes the extended FrameSubscribe payload
// (protocol version 3): the starting position plus the slot being
// subscribed (the original owner's node index — under failover a slot's
// log may be served by its promoted winner) and the subscriber's own
// node index, which keys the serving node's replication-ack gate.
func AppendSubscribeFrom(dst []byte, after int64, slot, subscriber int) []byte {
	dst = binary.AppendVarint(dst, after)
	dst = binary.AppendVarint(dst, int64(slot))
	return binary.AppendVarint(dst, int64(subscriber))
}

// DecodeSubscribeEx decodes either FrameSubscribe form. A bare version-2
// payload yields slot = subscriber = -1: stream the serving node's own
// log, anonymously.
func DecodeSubscribeEx(buf []byte) (after int64, slot, subscriber int, err error) {
	after, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: bad subscribe position", ErrCorrupt)
	}
	if n == len(buf) {
		return after, -1, -1, nil
	}
	buf = buf[n:]
	s, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, 0, fmt.Errorf("%w: bad subscribe slot", ErrCorrupt)
	}
	buf = buf[n:]
	sub, n := binary.Varint(buf)
	if n <= 0 || n != len(buf) {
		return 0, 0, 0, fmt.Errorf("%w: bad subscribe subscriber", ErrCorrupt)
	}
	return after, int(s), int(sub), nil
}

// AppendSubAck encodes a FrameSubAck payload: the highest record
// sequence the subscriber has applied.
func AppendSubAck(dst []byte, seq int64) []byte {
	return binary.AppendVarint(dst, seq)
}

// DecodeSubAck decodes a FrameSubAck payload.
func DecodeSubAck(buf []byte) (seq int64, err error) {
	seq, n := binary.Varint(buf)
	if n <= 0 || n != len(buf) {
		return 0, fmt.Errorf("%w: bad subscriber ack", ErrCorrupt)
	}
	return seq, nil
}

// AppendLogRecordE encodes a FrameLogRecordE payload: the serving epoch
// for the streamed slot, then the archive record bytes unchanged — a
// version-2 LogRecord payload with an epoch prefix.
func AppendLogRecordE(dst []byte, epoch uint64, record []byte) []byte {
	dst = binary.AppendUvarint(dst, epoch)
	return append(dst, record...)
}

// DecodeLogRecordE splits a FrameLogRecordE payload into its epoch and
// the record bytes (decoded by archive.DecodeTxnRecord, exactly like a
// FrameLogRecord payload).
func DecodeLogRecordE(buf []byte) (epoch uint64, record []byte, err error) {
	epoch, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad log record epoch", ErrCorrupt)
	}
	return epoch, buf[n:], nil
}

// Heartbeat is one node's failover view, exchanged peer to peer: for
// every slot (original owner index) the newest epoch the node knows, who
// serves that slot in that epoch, the newest record sequence the node
// has applied for the slot, and the promotion base (the sequence the
// slot's current epoch started from — a rejoining node rewinds to it).
// A heartbeat in either direction refreshes the sender's lease at the
// receiver.
type Heartbeat struct {
	From    int      // sender's node index
	Epochs  []uint64 // per slot: newest known epoch
	Owners  []int    // per slot: serving node in that epoch
	Applied []int64  // per slot: sender's applied record sequence
	Bases   []int64  // per slot: promotion base of the current epoch
}

// AppendHeartbeat encodes a FrameHeartbeat / FrameHeartbeatAck payload:
//
//	hb := from:varint slots:uvarint
//	      (epoch:uvarint owner:varint applied:varint base:varint)*
func AppendHeartbeat(dst []byte, hb Heartbeat) []byte {
	dst = binary.AppendVarint(dst, int64(hb.From))
	dst = binary.AppendUvarint(dst, uint64(len(hb.Epochs)))
	for i := range hb.Epochs {
		dst = binary.AppendUvarint(dst, hb.Epochs[i])
		dst = binary.AppendVarint(dst, int64(hb.Owners[i]))
		dst = binary.AppendVarint(dst, hb.Applied[i])
		dst = binary.AppendVarint(dst, hb.Bases[i])
	}
	return dst
}

// DecodeHeartbeat decodes a FrameHeartbeat / FrameHeartbeatAck payload.
func DecodeHeartbeat(buf []byte) (Heartbeat, error) {
	var hb Heartbeat
	from, n := binary.Varint(buf)
	if n <= 0 {
		return hb, fmt.Errorf("%w: bad heartbeat sender", ErrCorrupt)
	}
	hb.From = int(from)
	buf = buf[n:]
	slots, n := binary.Uvarint(buf)
	// Each slot entry is at least 4 bytes; a count beyond that is corrupt
	// (and the check bounds allocation on hostile counts).
	if n <= 0 || slots > uint64(len(buf))/4+1 {
		return hb, fmt.Errorf("%w: bad heartbeat slot count", ErrCorrupt)
	}
	buf = buf[n:]
	hb.Epochs = make([]uint64, 0, slots)
	hb.Owners = make([]int, 0, slots)
	hb.Applied = make([]int64, 0, slots)
	hb.Bases = make([]int64, 0, slots)
	for i := uint64(0); i < slots; i++ {
		epoch, n := binary.Uvarint(buf)
		if n <= 0 {
			return hb, fmt.Errorf("%w: bad heartbeat epoch", ErrCorrupt)
		}
		buf = buf[n:]
		owner, n := binary.Varint(buf)
		if n <= 0 {
			return hb, fmt.Errorf("%w: bad heartbeat owner", ErrCorrupt)
		}
		buf = buf[n:]
		applied, n := binary.Varint(buf)
		if n <= 0 {
			return hb, fmt.Errorf("%w: bad heartbeat applied seq", ErrCorrupt)
		}
		buf = buf[n:]
		base, n := binary.Varint(buf)
		if n <= 0 {
			return hb, fmt.Errorf("%w: bad heartbeat base", ErrCorrupt)
		}
		buf = buf[n:]
		hb.Epochs = append(hb.Epochs, epoch)
		hb.Owners = append(hb.Owners, int(owner))
		hb.Applied = append(hb.Applied, applied)
		hb.Bases = append(hb.Bases, base)
	}
	if len(buf) != 0 {
		return hb, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(buf))
	}
	return hb, nil
}

// AppendSingleResponse encodes a FrameResponse payload: id + response.
func AppendSingleResponse(dst []byte, id uint64, r core.Response) ([]byte, error) {
	dst = binary.AppendUvarint(dst, id)
	return AppendResponse(dst, r)
}

// DecodeSingleResponse decodes a FrameResponse payload.
func DecodeSingleResponse(buf []byte) (uint64, core.Response, error) {
	id, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, core.Response{}, fmt.Errorf("%w: bad request id", ErrCorrupt)
	}
	r, rest, err := DecodeResponse(buf[n:])
	if err != nil {
		return 0, core.Response{}, err
	}
	if len(rest) != 0 {
		return 0, core.Response{}, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return id, r, nil
}
